// Tests for the wakeup-unit emulation (src/wakeup).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "wakeup/wakeup_unit.hpp"

namespace {

using bgq::wakeup::WaitGate;
using bgq::wakeup::WakeupUnit;

TEST(WaitGate, WakeBeforeCommitDoesNotBlock) {
  WaitGate g;
  const auto seen = g.prepare_wait();
  g.wake();
  g.commit_wait(seen);  // must return immediately
  SUCCEED();
}

TEST(WaitGate, CancelWaitLeavesNoWaiters) {
  WaitGate g;
  g.prepare_wait();
  EXPECT_TRUE(g.has_waiters());
  g.cancel_wait();
  EXPECT_FALSE(g.has_waiters());
}

TEST(WaitGate, SleeperIsWokenByProducer) {
  WaitGate g;
  std::atomic<bool> work{false};
  std::atomic<bool> processed{false};

  std::thread sleeper([&] {
    for (;;) {
      if (work.load(std::memory_order_acquire)) {
        processed.store(true, std::memory_order_release);
        return;
      }
      const auto seen = g.prepare_wait();
      if (work.load(std::memory_order_acquire)) {
        g.cancel_wait();
        continue;
      }
      g.commit_wait(seen);
    }
  });

  // Give the sleeper a chance to park (not required for correctness).
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  work.store(true, std::memory_order_release);
  g.wake();
  sleeper.join();
  EXPECT_TRUE(processed.load());
}

TEST(WaitGate, ManyIterationsNoLostWakeups) {
  // Stress the prepare/cancel/commit protocol: a producer-consumer pair
  // doing many short sleeps must never deadlock.
  WaitGate g;
  std::atomic<int> available{0};
  constexpr int kN = 20000;

  std::thread consumer([&] {
    int consumed = 0;
    while (consumed < kN) {
      if (available.load(std::memory_order_acquire) > consumed) {
        ++consumed;
        continue;
      }
      const auto seen = g.prepare_wait();
      if (available.load(std::memory_order_acquire) > consumed) {
        g.cancel_wait();
        continue;
      }
      g.commit_wait(seen);
    }
  });

  for (int i = 0; i < kN; ++i) {
    available.fetch_add(1, std::memory_order_release);
    g.wake();
  }
  consumer.join();
  SUCCEED();
}

TEST(WaitGate, MultipleSleepersAllWoken) {
  WaitGate g;
  std::atomic<bool> go{false};
  std::atomic<int> awake{0};
  std::vector<std::thread> sleepers;
  for (int t = 0; t < 4; ++t) {
    sleepers.emplace_back([&] {
      for (;;) {
        if (go.load(std::memory_order_acquire)) break;
        const auto seen = g.prepare_wait();
        if (go.load(std::memory_order_acquire)) {
          g.cancel_wait();
          break;
        }
        g.commit_wait(seen);
      }
      awake.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  go.store(true, std::memory_order_release);
  g.wake();
  for (auto& t : sleepers) t.join();
  EXPECT_EQ(awake.load(), 4);
}

TEST(WakeupUnit, GatesAreIndependent) {
  WakeupUnit wu(3);
  EXPECT_EQ(wu.gate_count(), 3u);
  const auto seen = wu.gate(1).prepare_wait();
  wu.gate(0).wake();  // different gate: must not satisfy gate 1
  EXPECT_TRUE(wu.gate(1).has_waiters());
  wu.gate(1).wake();
  wu.gate(1).commit_wait(seen);
  EXPECT_GE(wu.total_wakeups(), 1u);
}

}  // namespace
