// Tests for the torus topology (src/topology).
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "topology/torus.hpp"

namespace {

using bgq::topo::Coord;
using bgq::topo::NodeId;
using bgq::topo::Torus;

TEST(Torus, RankCoordRoundTrip) {
  Torus t({4, 3, 2});
  EXPECT_EQ(t.node_count(), 24u);
  std::set<NodeId> seen;
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 3; ++b) {
      for (int c = 0; c < 2; ++c) {
        Coord coord{};
        coord[0] = a; coord[1] = b; coord[2] = c;
        const NodeId r = t.rank_of(coord);
        EXPECT_LT(r, t.node_count());
        seen.insert(r);
        EXPECT_EQ(t.coord_of(r), coord);
      }
    }
  }
  EXPECT_EQ(seen.size(), 24u) << "rank_of must be a bijection";
}

TEST(Torus, DeltaIsMinimalWraparound) {
  Torus t({8});
  EXPECT_EQ(t.delta(0, 0, 3), 3);
  EXPECT_EQ(t.delta(0, 0, 5), -3);  // wrap backwards is shorter
  EXPECT_EQ(t.delta(0, 7, 0), 1);
  EXPECT_EQ(t.delta(0, 2, 2), 0);
  // Tie (distance 4 both ways on extent 8): either direction, magnitude 4.
  EXPECT_EQ(std::abs(t.delta(0, 0, 4)), 4);
}

TEST(Torus, HopsIsSymmetricAndTriangleBounded) {
  Torus t = Torus::bgq_partition(64);
  for (NodeId a = 0; a < 64; a += 7) {
    for (NodeId b = 0; b < 64; b += 5) {
      EXPECT_EQ(t.hops(a, b), t.hops(b, a));
      EXPECT_LE(t.hops(a, b), t.diameter());
      for (NodeId c = 0; c < 64; c += 13) {
        EXPECT_LE(t.hops(a, b), t.hops(a, c) + t.hops(c, b));
      }
    }
  }
}

TEST(Torus, HopsZeroIffSameNode) {
  Torus t({2, 2, 2});
  for (NodeId a = 0; a < 8; ++a) {
    for (NodeId b = 0; b < 8; ++b) {
      EXPECT_EQ(t.hops(a, b) == 0, a == b);
    }
  }
}

TEST(Torus, RouteLengthEqualsHopsAndEndsAtDestination) {
  Torus t = Torus::bgq_partition(128);
  for (NodeId a = 0; a < 128; a += 11) {
    for (NodeId b = 0; b < 128; b += 17) {
      const auto path = t.route(a, b);
      EXPECT_EQ(static_cast<int>(path.size()), t.hops(a, b));
      if (a == b) {
        EXPECT_TRUE(path.empty());
      } else {
        EXPECT_EQ(path.back(), b);
      }
      // Each consecutive pair is one hop apart.
      NodeId prev = a;
      for (NodeId n : path) {
        EXPECT_EQ(t.hops(prev, n), 1);
        prev = n;
      }
    }
  }
}

TEST(Torus, NeighborIsOneHop) {
  Torus t({4, 4, 4});
  for (NodeId r = 0; r < t.node_count(); r += 9) {
    for (int d = 0; d < t.ndims(); ++d) {
      for (int dir : {-1, +1}) {
        const NodeId n = t.neighbor(r, d, dir);
        EXPECT_EQ(t.hops(r, n), 1);
        // Stepping back returns home.
        EXPECT_EQ(t.neighbor(n, d, -dir), r);
      }
    }
  }
}

TEST(Torus, DiameterMatchesBruteForceOnSmallTorus) {
  Torus t({4, 3, 2});
  int max_h = 0;
  for (NodeId a = 0; a < t.node_count(); ++a) {
    for (NodeId b = 0; b < t.node_count(); ++b) {
      max_h = std::max(max_h, t.hops(a, b));
    }
  }
  EXPECT_EQ(max_h, t.diameter());
}

TEST(Torus, AverageHopsMatchesBruteForce) {
  Torus t({4, 4, 2});
  double total = 0;
  for (NodeId b = 0; b < t.node_count(); ++b) total += t.hops(0, b);
  EXPECT_NEAR(t.average_hops(), total / t.node_count(), 1e-12);
}

class BgqPartitions : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BgqPartitions, ShapeHasRightCountAndEEqualsTwo) {
  const std::size_t n = GetParam();
  Torus t = Torus::bgq_partition(n);
  EXPECT_EQ(t.node_count(), n);
  EXPECT_EQ(t.ndims(), 5);
  EXPECT_EQ(t.dims().back(), 2) << "BG/Q E dimension is always 2";
}

INSTANTIATE_TEST_SUITE_P(StandardSizes, BgqPartitions,
                         ::testing::Values(32, 64, 128, 256, 512, 1024,
                                           2048, 4096, 8192, 16384));

class BgpPartitions : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BgpPartitions, ShapeIs3DWithRightCount) {
  const std::size_t n = GetParam();
  Torus t = Torus::bgp_partition(n);
  EXPECT_EQ(t.node_count(), n);
  EXPECT_EQ(t.ndims(), 3);
}

INSTANTIATE_TEST_SUITE_P(StandardSizes, BgpPartitions,
                         ::testing::Values(32, 64, 128, 256, 512, 1024,
                                           2048, 4096));

TEST(Torus, FiveDTorusHasLowerDiameterThan3DAtEqualSize) {
  // The architectural argument of §II-A: 5D lowers max distance.
  Torus q = Torus::bgq_partition(4096);
  Torus p = Torus::bgp_partition(4096);
  EXPECT_LT(q.diameter(), p.diameter());
  EXPECT_LT(q.average_hops(), p.average_hops());
}

TEST(Torus, BisectionGrowsWithNodeCount) {
  EXPECT_GT(Torus::bgq_partition(1024).bisection_links(),
            Torus::bgq_partition(128).bisection_links());
}

TEST(Torus, NonStandardCountFactorizes) {
  Torus t = Torus::bgq_partition(96);
  EXPECT_EQ(t.node_count(), 96u);
}

TEST(Torus, InvalidDimensionsThrow) {
  EXPECT_THROW(Torus({}), std::invalid_argument);
  EXPECT_THROW(Torus({2, 0}), std::invalid_argument);
  EXPECT_THROW(Torus({2, 2, 2, 2, 2, 2, 2}), std::invalid_argument);
}

TEST(Torus, TotalLinksCountsDirections) {
  // 4-ring: every node has 2 unidirectional links per direction... extent 4
  // gives 2 dirs/node; extent 2 gives 1 (the +1 and -1 neighbours
  // coincide); extent 1 gives none.
  EXPECT_EQ(Torus({4}).total_links(), 8u);
  EXPECT_EQ(Torus({2}).total_links(), 2u);
  EXPECT_EQ(Torus({1, 4}).total_links(), 8u);
}

}  // namespace
