// Strict JSON validation for the tests.  The parser itself moved into
// the trace library (src/trace/json_read.hpp) so bgq-prof can read the
// flat-trace files it consumes; this header keeps the historical test
// namespace alive.
#pragma once

#include "trace/json_read.hpp"

namespace bgq {
namespace testjson = trace::json;
}  // namespace bgq
