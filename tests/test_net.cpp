// Tests for the in-process fabric (src/net).
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <tuple>

#include "net/fabric.hpp"
#include "net/fault.hpp"
#include "net/packet.hpp"
#include "net/params.hpp"
#include "topology/torus.hpp"

namespace {

using bgq::net::Fabric;
using bgq::net::MemRegion;
using bgq::net::NetworkParams;
using bgq::net::Packet;
using bgq::net::TransferKind;
using bgq::topo::Torus;

std::vector<std::byte> bytes_of(const char* s) {
  std::vector<std::byte> v(std::strlen(s));
  std::memcpy(v.data(), s, v.size());
  return v;
}

TEST(NetworkParams, PacketCountRoundsUp) {
  NetworkParams p;
  EXPECT_EQ(p.packets_for(0), 1u);
  EXPECT_EQ(p.packets_for(1), 1u);
  EXPECT_EQ(p.packets_for(512), 1u);
  EXPECT_EQ(p.packets_for(513), 2u);
  EXPECT_EQ(p.packets_for(5 * 512), 5u);
}

TEST(NetworkParams, WireTimeMonotoneInSizeAndHops) {
  NetworkParams p;
  EXPECT_LT(p.wire_time_ns(32, 1), p.wire_time_ns(4096, 1));
  EXPECT_LT(p.wire_time_ns(32, 1), p.wire_time_ns(32, 8));
  // Large transfers approach bandwidth-bound time: 1 MB at 1.8 GB/s is
  // about 580 us.
  const double us = static_cast<double>(p.wire_time_ns(1 << 20, 2)) * 1e-3;
  EXPECT_GT(us, 500.0);
  EXPECT_LT(us, 700.0);
}

TEST(NetworkParams, ShortMessageLatencyIsSubMicrosecond) {
  // Hardware MU-to-MU nearest neighbour is ~600 ns for tiny packets; the
  // software stack on top brings the paper's 2.9 us Converse figure.
  NetworkParams p;
  EXPECT_LT(p.wire_time_ns(32, 1), 1000u);
}

TEST(Fabric, MemFifoDeliversToCorrectNodeAndFifo) {
  Torus t({2, 2});
  Fabric f(t, NetworkParams{}, /*rec_fifos_per_node=*/2);

  auto* p = new Packet();
  p->kind = TransferKind::kMemFifo;
  p->src = 0;
  p->dst = 3;
  p->rec_fifo = 1;
  p->dispatch = 7;
  p->payload = bytes_of("hello");
  f.inject(p);

  EXPECT_EQ(f.reception_fifo(3, 0).poll(), nullptr);
  Packet* got = f.reception_fifo(3, 1).poll();
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->dispatch, 7);
  EXPECT_EQ(got->payload.size(), 5u);
  EXPECT_GT(got->wire_ns, 0u);
  EXPECT_EQ(got->num_packets, 1u);
  delete got;

  EXPECT_EQ(f.transfers(), 1u);
}

TEST(Fabric, WireTimeReflectsHopDistance) {
  Torus t({8, 1});
  Fabric f(t, NetworkParams{}, 1);

  auto send = [&](bgq::topo::NodeId dst) {
    auto* p = new Packet();
    p->src = 0;
    p->dst = dst;
    p->payload.resize(32);
    f.inject(p);
    Packet* got = f.reception_fifo(dst, 0).poll();
    const std::uint64_t w = got->wire_ns;
    delete got;
    return w;
  };
  EXPECT_LT(send(1), send(4));  // 1 hop vs 4 hops
}

TEST(Fabric, RdmaReadCopiesRemoteBuffer) {
  Torus t({2});
  Fabric f(t, NetworkParams{}, 1);

  std::vector<std::byte> src_buf = bytes_of("remote-data");
  std::vector<std::byte> dst_buf(src_buf.size());

  bool completed = false;
  auto* p = new Packet();
  p->kind = TransferKind::kRdmaRead;
  p->src = 1;  // data source
  p->dst = 0;  // requester, receives completion
  p->rdma_src = src_buf.data();
  p->rdma_dst = dst_buf.data();
  p->rdma_bytes = src_buf.size();
  p->on_delivered = [&] { completed = true; };
  f.inject(p);

  Packet* got = f.reception_fifo(0, 0).poll();
  ASSERT_NE(got, nullptr);
  ASSERT_TRUE(got->on_delivered != nullptr);
  got->on_delivered();
  delete got;

  EXPECT_TRUE(completed);
  EXPECT_EQ(std::memcmp(dst_buf.data(), src_buf.data(), src_buf.size()), 0);
}

TEST(Fabric, RdmaReadPaysSetupRoundTrip) {
  Torus t({2});
  Fabric f(t, NetworkParams{}, 1);
  std::vector<std::byte> buf(256);

  auto* eager = new Packet();
  eager->src = 0;
  eager->dst = 1;
  eager->payload.resize(256);
  f.inject(eager);
  Packet* e = f.reception_fifo(1, 0).poll();

  auto* rd = new Packet();
  rd->kind = TransferKind::kRdmaRead;
  rd->src = 0;
  rd->dst = 1;
  rd->rdma_src = buf.data();
  rd->rdma_dst = buf.data();
  rd->rdma_bytes = 0;  // copy of size 0 keeps src==dst harmless
  rd->rdma_bytes = 0;
  f.inject(rd);
  Packet* r = f.reception_fifo(1, 0).poll();

  EXPECT_GT(r->wire_ns, e->wire_ns) << "rget adds request round trip";
  delete e;
  delete r;
}

TEST(Fabric, PacketArrivalWakesGate) {
  Torus t({2});
  Fabric f(t, NetworkParams{}, 1);
  auto& fifo = f.reception_fifo(1, 0);

  std::atomic<bool> got_packet{false};
  std::thread commthread([&] {
    for (;;) {
      if (Packet* p = fifo.poll()) {
        delete p;
        got_packet.store(true);
        return;
      }
      const auto seen = fifo.gate().prepare_wait();
      if (!fifo.empty()) {
        fifo.gate().cancel_wait();
        continue;
      }
      fifo.gate().commit_wait(seen);
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  auto* p = new Packet();
  p->src = 0;
  p->dst = 1;
  f.inject(p);
  commthread.join();
  EXPECT_TRUE(got_packet.load());
}

TEST(Fabric, StatsAccumulate) {
  Torus t({2});
  Fabric f(t, NetworkParams{}, 1);
  for (int i = 0; i < 3; ++i) {
    auto* p = new Packet();
    p->src = 0;
    p->dst = 1;
    p->payload.resize(1024);
    f.inject(p);
  }
  EXPECT_EQ(f.transfers(), 3u);
  EXPECT_EQ(f.network_packets(), 6u);  // 1024 B = 2 packets each
  EXPECT_EQ(f.bytes_moved(), 3u * 1024u);
  // Fabric destructor frees the undelivered packets (ASan verifies).
}

TEST(Fabric, ZeroFifosRejected) {
  Torus t({2});
  EXPECT_THROW(Fabric(t, NetworkParams{}, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Fault injection (net/fault.hpp)
// ---------------------------------------------------------------------------

using bgq::net::FaultPlan;

Packet* make_mem_packet(std::size_t payload_bytes = 32) {
  auto* p = new Packet();
  p->kind = TransferKind::kMemFifo;
  p->src = 0;
  p->dst = 1;
  p->payload.resize(payload_bytes);
  return p;
}

TEST(FaultPlan, ParsesFullSpec) {
  const FaultPlan p = FaultPlan::parse(
      "drop=0.01,dup=0.02,delay=0.03,bitflip=0.004,maxdelay=5,reject=1,"
      "seed=42");
  EXPECT_DOUBLE_EQ(p.drop, 0.01);
  EXPECT_DOUBLE_EQ(p.duplicate, 0.02);
  EXPECT_DOUBLE_EQ(p.delay, 0.03);
  EXPECT_DOUBLE_EQ(p.bitflip, 0.004);
  EXPECT_EQ(p.max_delay_injects, 5u);
  EXPECT_TRUE(p.reject_on_full);
  EXPECT_EQ(p.seed, 42u);
  EXPECT_TRUE(p.enabled());
}

TEST(FaultPlan, EmptySpecIsDisabled) {
  EXPECT_FALSE(FaultPlan::parse("").enabled());
  EXPECT_FALSE(FaultPlan{}.enabled());
}

TEST(FaultPlan, MalformedSpecsThrow) {
  EXPECT_THROW(FaultPlan::parse("drop=2.0"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("drop=-0.1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("drop=abc"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("unknown=1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("drop"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("maxdelay=0"), std::invalid_argument);
}

TEST(FaultyFabric, DropEverythingDeliversNothing) {
  Torus t({2});
  Fabric f(t, NetworkParams{}, 1);
  f.set_fault_plan(FaultPlan::parse("drop=1.0"));
  for (int i = 0; i < 10; ++i) f.inject(make_mem_packet());
  EXPECT_EQ(f.reception_fifo(1, 0).poll(), nullptr);
  EXPECT_EQ(f.faults_dropped(), 10u);
  EXPECT_EQ(f.transfers(), 10u) << "stats still count injected transfers";
}

TEST(FaultyFabric, DuplicateDeliversTwice) {
  Torus t({2});
  Fabric f(t, NetworkParams{}, 1);
  f.set_fault_plan(FaultPlan::parse("dup=1.0"));
  f.inject(make_mem_packet());
  int delivered = 0;
  while (Packet* p = f.reception_fifo(1, 0).poll()) {
    ++delivered;
    delete p;
  }
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(f.faults_duplicated(), 1u);
}

TEST(FaultyFabric, BitflipCorruptsChecksummedPayload) {
  Torus t({2});
  Fabric f(t, NetworkParams{}, 1);
  f.set_fault_plan(FaultPlan::parse("bitflip=1.0"));
  Packet* p = make_mem_packet(64);
  const std::uint64_t clean = bgq::net::packet_checksum(*p);
  p->checksum = clean;
  f.inject(p);
  Packet* got = f.reception_fifo(1, 0).poll();
  ASSERT_NE(got, nullptr);
  EXPECT_NE(bgq::net::packet_checksum(*got), clean)
      << "one flipped bit must change the checksum";
  EXPECT_EQ(f.faults_corrupted(), 1u);
  delete got;
}

TEST(FaultyFabric, DelayedPacketMaturesOnLaterInjects) {
  Torus t({2});
  Fabric f(t, NetworkParams{}, 1);
  f.set_fault_plan(FaultPlan::parse("delay=1.0,maxdelay=1,seed=3"));
  // First packet is held back behind exactly one later inject.
  Packet* first = make_mem_packet();
  first->dispatch = 11;
  f.inject(first);
  EXPECT_EQ(f.reception_fifo(1, 0).poll(), nullptr);
  EXPECT_EQ(f.faults_delayed(), 1u);
  // The second inject matures it — but the second packet is itself
  // delayed, so only the first (reordered behind) comes out.
  Packet* second = make_mem_packet();
  second->dispatch = 22;
  f.inject(second);
  Packet* got = f.reception_fifo(1, 0).poll();
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->dispatch, 11);
  delete got;
  // Fabric destructor frees the still-delayed second packet (ASan checks).
}

TEST(FaultyFabric, RdmaTransfersAreNeverFaulted) {
  Torus t({2});
  Fabric f(t, NetworkParams{}, 1);
  f.set_fault_plan(FaultPlan::parse("drop=1.0,dup=1.0,delay=1.0"));
  std::vector<std::byte> src_buf = bytes_of("dma"), dst_buf(3);
  auto* p = new Packet();
  p->kind = TransferKind::kRdmaWrite;
  p->src = 0;
  p->dst = 1;
  p->rdma_src = src_buf.data();
  p->rdma_dst = dst_buf.data();
  p->rdma_bytes = src_buf.size();
  f.inject(p);
  Packet* got = f.reception_fifo(1, 0).poll();
  ASSERT_NE(got, nullptr) << "RDMA models the MU DMA engine: reliable";
  delete got;
  EXPECT_EQ(std::memcmp(dst_buf.data(), src_buf.data(), 3), 0);
  EXPECT_EQ(f.faults_dropped(), 0u);
}

TEST(FaultyFabric, RejectOnFullRefusesIntoFullFifo) {
  Torus t({2});
  Fabric f(t, NetworkParams{}, 1, 1, /*fifo_capacity=*/4);
  f.set_fault_plan(FaultPlan::parse("reject=1"));
  for (int i = 0; i < 10; ++i) f.inject(make_mem_packet());
  int delivered = 0;
  while (Packet* p = f.reception_fifo(1, 0).poll()) {
    ++delivered;
    delete p;
  }
  // The lockless ring holds capacity-1 entries; everything beyond it was
  // refused and counted.
  EXPECT_GT(delivered, 0);
  EXPECT_LT(delivered, 10);
  EXPECT_EQ(f.fifo_rejects(), 10u - static_cast<unsigned>(delivered));
}

TEST(FaultyFabric, LosslessModeSpillsBeyondCapacityAndCounts) {
  Torus t({2});
  Fabric f(t, NetworkParams{}, 1, 1, /*fifo_capacity=*/4);
  for (int i = 0; i < 10; ++i) f.inject(make_mem_packet());
  int delivered = 0;
  while (Packet* p = f.reception_fifo(1, 0).poll()) {
    ++delivered;
    delete p;
  }
  EXPECT_EQ(delivered, 10) << "default fabric is lossless: spills, not drops";
  EXPECT_GT(f.fifo_spills(), 0u);
}

TEST(FaultyFabric, SeededPlanIsDeterministic) {
  auto run = [](std::uint64_t seed) {
    Torus t({2});
    Fabric f(t, NetworkParams{}, 1);
    FaultPlan plan = FaultPlan::parse("drop=0.3,dup=0.3,delay=0.2");
    plan.seed = seed;
    f.set_fault_plan(plan);
    for (int i = 0; i < 200; ++i) f.inject(make_mem_packet());
    int delivered = 0;
    while (Packet* p = f.reception_fifo(1, 0).poll()) {
      ++delivered;
      delete p;
    }
    return std::tuple{delivered, f.faults_dropped(), f.faults_duplicated(),
                      f.faults_delayed()};
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8)) << "different seed, different fault schedule";
}

TEST(FaultyFabric, DisabledPlanRemovesChaosLayer) {
  Torus t({2});
  Fabric f(t, NetworkParams{}, 1);
  f.set_fault_plan(FaultPlan::parse("drop=1.0"));
  EXPECT_TRUE(f.faults_enabled());
  f.set_fault_plan(FaultPlan{});
  EXPECT_FALSE(f.faults_enabled());
  f.inject(make_mem_packet());
  Packet* got = f.reception_fifo(1, 0).poll();
  ASSERT_NE(got, nullptr);
  delete got;
}

}  // namespace
