// Post-mortem analysis pipeline: histogram bucket math, causal-id
// round-trips through the faulty fabric (exactly-once spans under
// retransmit), the analyzer on a synthetic trace with a known critical
// path, and strict-JSON validation of the bgq-prof-v1 document.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <unordered_map>

#include "converse/machine.hpp"
#include "net/fault.hpp"
#include "trace/analysis.hpp"
#include "trace/histogram.hpp"
#include "trace/json_read.hpp"
#include "trace/trace_io.hpp"

namespace {

using bgq::trace::Event;
using bgq::trace::EventKind;
using bgq::trace::FlatTrace;
using bgq::trace::Histogram;
using bgq::trace::Track;

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(Histogram, SmallValuesAreExact) {
  for (std::uint64_t v = 0; v < 64; ++v) {
    EXPECT_EQ(Histogram::bucket_index(v), v);
    EXPECT_EQ(Histogram::bucket_high(Histogram::bucket_index(v)), v);
  }
}

TEST(Histogram, BucketBoundsAreMonotoneAndTight) {
  std::uint64_t prev_idx = 0;
  for (std::uint64_t v : {64ull, 65ull, 127ull, 128ull, 1000ull, 4096ull,
                          65535ull, 1000000ull, 123456789ull,
                          (1ull << 40) + 17, (1ull << 62)}) {
    const unsigned idx = Histogram::bucket_index(v);
    EXPECT_GE(idx, prev_idx);
    prev_idx = idx;
    const std::uint64_t high = Histogram::bucket_high(idx);
    EXPECT_GE(high, v);
    // Log-linear with 32 sub-buckets per octave: <= ~3% relative error.
    EXPECT_LE(high - v, v / 16)
        << "bucket for " << v << " wider than the promised resolution";
    if (idx > 0) {
      EXPECT_LT(Histogram::bucket_high(idx - 1), v);
    }
  }
  EXPECT_LT(Histogram::bucket_index(UINT64_MAX), Histogram::kBuckets);
}

TEST(Histogram, PercentilesOverUniformRange) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.sum(), 500500u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  // percentile() reports the upper edge of the covering bucket, so it is
  // >= the exact order statistic and within one bucket width above it.
  EXPECT_GE(h.percentile(0.50), 500u);
  EXPECT_LE(h.percentile(0.50), 520u);
  EXPECT_GE(h.percentile(0.99), 990u);
  EXPECT_LE(h.percentile(0.99), 1024u);
  EXPECT_EQ(h.percentile(1.0), 1000u);  // capped at the observed max
  EXPECT_EQ(h.percentile(0.0), h.percentile(0.001));
}

TEST(Histogram, MergeMatchesSingleHistogram) {
  Histogram evens, odds, all;
  for (std::uint64_t v = 1; v <= 2000; ++v) {
    (v % 2 == 0 ? evens : odds).record(v);
    all.record(v);
  }
  evens.merge(odds);
  EXPECT_EQ(evens.count(), all.count());
  EXPECT_EQ(evens.sum(), all.sum());
  EXPECT_EQ(evens.min(), all.min());
  EXPECT_EQ(evens.max(), all.max());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(evens.percentile(q), all.percentile(q)) << "q=" << q;
  }
}

TEST(Histogram, WeightedRecord) {
  Histogram h;
  h.record(10, 3);
  h.record(100, 1);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 130u);
  EXPECT_EQ(h.percentile(0.5), 10u);
  EXPECT_EQ(h.percentile(1.0), 100u);
}

// ---------------------------------------------------------------------------
// Synthetic trace with a known critical path
// ---------------------------------------------------------------------------

// cid encoding mirrors the machine layer: ((origin_pe + 1) << 32) | seq.
constexpr std::uint64_t kCidA = (std::uint64_t{1} << 32) | 1;  // pe0 -> pe1
constexpr std::uint64_t kCidB = (std::uint64_t{2} << 32) | 1;  // pe1 -> pe0
constexpr std::uint64_t kCidC = (std::uint64_t{1} << 32) | 2;  // pe0 -> pe1

FlatTrace synthetic_trace() {
  // A's handler sends B; B's handler sends C: the causal chain A->B->C is
  // the critical path, with exact hand-written hop timestamps.
  FlatTrace flat;
  Track pe0;
  pe0.pid = 0;
  pe0.tid = 0;
  pe0.name = "pe0";
  pe0.events = {
      {100, 1, EventKind::kMsgSend, kCidA},
      {400, 0, EventKind::kHandlerBegin, kCidB},
      {450, 1, EventKind::kMsgSend, kCidC},
      {500, 0, EventKind::kHandlerEnd, kCidB},
  };
  Track pe1;
  pe1.pid = 0;
  pe1.tid = 1;
  pe1.name = "pe1";
  pe1.events = {
      {150, 1, EventKind::kMsgEnqueue, kCidA},
      {180, 0, EventKind::kMsgDequeue, kCidA},
      {200, 0, EventKind::kHandlerBegin, kCidA},
      {250, 0, EventKind::kMsgSend, kCidB},
      {300, 0, EventKind::kHandlerEnd, kCidA},
      {600, 0, EventKind::kHandlerBegin, kCidC},
      {700, 0, EventKind::kHandlerEnd, kCidC},
  };
  flat.tracks.push_back(std::move(pe0));
  flat.tracks.push_back(std::move(pe1));
  return flat;
}

TEST(Analyzer, DecompositionTelescopesOnSyntheticTrace) {
  const bgq::trace::Analysis an = bgq::trace::analyze(synthetic_trace());
  EXPECT_EQ(an.lifecycles.size(), 3u);
  EXPECT_EQ(an.decomp.messages, 3u);
  EXPECT_EQ(an.decomp.incomplete, 0u);
  // A: send 100 -> enqueue 150 -> dequeue 180 -> begin 200 -> end 300.
  using bgq::trace::kHopDequeue;
  using bgq::trace::kHopEnqueue;
  using bgq::trace::kHopHandlerBegin;
  using bgq::trace::kHopHandlerEnd;
  EXPECT_EQ(an.decomp.seg_sum_ns[kHopEnqueue - 1], 50);    // dispatch (A)
  EXPECT_EQ(an.decomp.seg_sum_ns[kHopDequeue - 1], 30);    // queueing (A)
  EXPECT_EQ(an.decomp.seg_sum_ns[kHopHandlerBegin - 1],
            20 + 150 + 150);                               // sched (A,B,C)
  EXPECT_EQ(an.decomp.seg_sum_ns[kHopHandlerEnd - 1], 300);  // handler x3
  EXPECT_EQ(an.decomp.end_to_end_sum_ns, 200 + 250 + 250);
  EXPECT_EQ(an.decomp.hop_sum_ns(), an.decomp.end_to_end_sum_ns)
      << "segments must telescope exactly to end-to-end";
}

TEST(Analyzer, CriticalPathFollowsCausalChain) {
  const bgq::trace::Analysis an = bgq::trace::analyze(synthetic_trace());
  ASSERT_EQ(an.critical.steps.size(), 3u);
  EXPECT_EQ(an.critical.steps[0].cid, kCidA);
  EXPECT_EQ(an.critical.steps[1].cid, kCidB);
  EXPECT_EQ(an.critical.steps[2].cid, kCidC);
  EXPECT_EQ(an.critical.span_ns, 600u);  // A sent at 100, C done at 700
  EXPECT_EQ(an.critical.steps[0].origin_pe, 0u);
  EXPECT_EQ(an.critical.steps[1].origin_pe, 1u);
}

TEST(Analyzer, LoadImbalanceFromHandlerSpans) {
  const bgq::trace::Analysis an = bgq::trace::analyze(synthetic_trace());
  ASSERT_EQ(an.imbalance.tracks.size(), 2u);  // both tracks ran handlers
  EXPECT_EQ(an.imbalance.max_busy_ns, 200u);  // pe1: A (100) + C (100)
  EXPECT_EQ(an.imbalance.min_busy_ns, 100u);  // pe0: B (100)
  EXPECT_NEAR(an.imbalance.imbalance, 200.0 / 150.0, 1e-9);
}

TEST(Analyzer, FlatTraceRoundTripPreservesAnalysis) {
  const FlatTrace orig = synthetic_trace();
  std::ostringstream ss;
  bgq::trace::write_flat_trace(ss, orig);
  const FlatTrace back = bgq::trace::read_flat_trace(ss.str());
  ASSERT_EQ(back.tracks.size(), orig.tracks.size());
  EXPECT_EQ(back.total_events(), orig.total_events());
  const bgq::trace::Analysis an = bgq::trace::analyze(back);
  EXPECT_EQ(an.decomp.messages, 3u);
  EXPECT_EQ(an.decomp.hop_sum_ns(), an.decomp.end_to_end_sum_ns);
  ASSERT_EQ(an.critical.steps.size(), 3u);
  EXPECT_EQ(an.critical.span_ns, 600u);  // timestamps re-based, deltas kept
}

TEST(Analyzer, RejectsWrongSchema) {
  EXPECT_THROW(bgq::trace::read_flat_trace(
                   R"({"schema":"not-a-trace","tracks":[]})"),
               std::exception);
  EXPECT_THROW(bgq::trace::read_flat_trace("{nonsense"), std::exception);
}

// ---------------------------------------------------------------------------
// bgq-prof-v1 JSON schema
// ---------------------------------------------------------------------------

TEST(ProfJson, StrictSchemaOnSyntheticTrace) {
  const bgq::trace::Analysis an = bgq::trace::analyze(synthetic_trace());
  std::ostringstream ss;
  bgq::trace::write_prof_json(ss, an);

  namespace json = bgq::trace::json;
  const json::ValuePtr doc = json::parse(ss.str());  // throws if malformed
  EXPECT_EQ(doc->at("schema").str, "bgq-prof-v1");
  EXPECT_EQ(doc->u64("span_events"), 6u);  // three begin/end pairs

  const json::Value& msgs = doc->at("messages");
  EXPECT_EQ(msgs.u64("traced"), 3u);
  EXPECT_EQ(msgs.u64("complete"), 3u);
  EXPECT_EQ(msgs.u64("retransmitted"), 0u);

  const json::Value& dec = doc->at("decomposition");
  EXPECT_EQ(dec.u64("hop_sum_ns"), dec.u64("end_to_end_sum_ns"));
  const json::Value& segs = dec.at("segments");
  EXPECT_NE(segs.get("queueing"), nullptr);
  EXPECT_NE(segs.get("handler"), nullptr);
  EXPECT_EQ(segs.at("handler").u64("count"), 3u);
  EXPECT_EQ(segs.get("network"), nullptr);  // no net hops: segment omitted

  const json::Value& cp = doc->at("critical_path");
  EXPECT_EQ(cp.u64("length"), 3u);
  EXPECT_EQ(cp.u64("span_ns"), 600u);
  ASSERT_EQ(cp.at("steps").arr.size(), 3u);
  EXPECT_EQ(cp.at("steps").arr[0]->u64("cid"), kCidA);

  const json::Value& li = doc->at("load_imbalance");
  EXPECT_EQ(li.u64("workers"), 2u);
  EXPECT_EQ(doc->at("time_profile").at("tracks").arr.size(), 2u);
}

// ---------------------------------------------------------------------------
// Causal ids through the real machine over a faulty fabric
// ---------------------------------------------------------------------------

using bgq::cvs::Machine;
using bgq::cvs::MachineConfig;
using bgq::cvs::Mode;

TEST(CausalTrace, ExactlyOnceSpansUnderDropDupRetransmit) {
  MachineConfig cfg;
  cfg.nodes = 2;
  cfg.mode = Mode::kSmp;
  cfg.workers_per_process = 2;
  cfg.processes_per_node = 1;
  cfg.comm_threads = 1;
  cfg.trace_events = true;
  cfg.trace_ring_events = 1 << 17;
  cfg.faults =
      bgq::net::FaultPlan::parse("drop=0.05,dup=0.02,delay=0.02,seed=42");
  cfg.reliability.rto_ns = 100'000;
  cfg.reliability.rto_max_ns = 5'000'000;
  Machine machine(cfg);
  const std::size_t senders = machine.pe_count() - 1;
  constexpr int kPer = 150;

  std::atomic<std::size_t> got{0};
  const bgq::cvs::HandlerId h =
      machine.register_handler([&](bgq::cvs::Pe& pe, bgq::cvs::Message* m) {
        pe.free_message(m);
        if (got.fetch_add(1) + 1 == senders * kPer) pe.exit_all();
      });
  machine.run([&](bgq::cvs::Pe& pe) {
    if (pe.rank() == 0) return;
    for (int i = 0; i < kPer; ++i) pe.send(0, h, &i, sizeof(i));
  });
  ASSERT_EQ(got.load(), senders * kPer);

  const auto report = machine.metrics_report();
  EXPECT_GT(report.value("net.retransmits"), 0u)
      << "fault plan must have forced retransmits";
  EXPECT_GT(report.value("trace.ring.hwm"), 0u)
      << "ring occupancy high-water mark must be surfaced";
  EXPECT_EQ(report.value("trace.ring.drops"), 0u);

  const FlatTrace& flat = machine.trace_session().collect();
  ASSERT_EQ(flat.total_dropped(), 0u) << "rings sized too small for test";

  // Causal-lifecycle assertions need the cid header fields, which only
  // BGQ_TRACE builds carry (the lean 16-byte header has nowhere to stamp
  // them).  The delivery/retransmit/ring checks above ran either way.
  if constexpr (bgq::cvs::MsgHeader::kTraced) {
    // Exactly-once: despite wire-level dups and retransmits, no cid may be
    // received past dedup or dispatched to its handler more than once.
    std::unordered_map<std::uint64_t, int> recvs, handled;
    for (const Track& tr : flat.tracks) {
      for (const Event& e : tr.events) {
        if (e.cid == 0) continue;
        if (e.kind == EventKind::kMsgRecv) ++recvs[e.cid];
        if (e.kind == EventKind::kHandlerBegin) ++handled[e.cid];
      }
    }
    for (const auto& [cid, n] : recvs) {
      EXPECT_EQ(n, 1) << "cid " << cid << " passed dedup " << n << " times";
    }
    for (const auto& [cid, n] : handled) {
      EXPECT_EQ(n, 1) << "cid " << cid << " dispatched " << n << " times";
    }

    // The analyzer folds retransmit detours into counters, never into the
    // segment math: the hop sum still telescopes exactly.
    const bgq::trace::Analysis an = bgq::trace::analyze(flat);
    EXPECT_GE(an.decomp.messages, senders * kPer);
    EXPECT_GT(an.decomp.retransmitted, 0u)
        << "retransmitted lifecycles must be visible to the analyzer";
    EXPECT_EQ(an.decomp.hop_sum_ns(), an.decomp.end_to_end_sum_ns);
  }
}

TEST(CausalTrace, TracingOffEmitsNoCidsAndZeroGauges) {
  MachineConfig cfg;
  cfg.nodes = 2;
  cfg.mode = Mode::kSmp;
  cfg.workers_per_process = 2;
  cfg.processes_per_node = 1;
  Machine machine(cfg);

  std::atomic<int> got{0};
  const bgq::cvs::HandlerId h =
      machine.register_handler([&](bgq::cvs::Pe& pe, bgq::cvs::Message* m) {
        EXPECT_EQ(m->header().cid(), 0u) << "trace off: no cid stamping";
        pe.free_message(m);
        if (got.fetch_add(1) + 1 == 20) pe.exit_all();
      });
  machine.run([&](bgq::cvs::Pe& pe) {
    if (pe.rank() != 0) return;
    for (int i = 0; i < 20; ++i) {
      pe.send(static_cast<bgq::cvs::PeRank>(machine.pe_count() - 1), h, &i,
              sizeof(i));
    }
  });
  ASSERT_EQ(got.load(), 20);

  const auto report = machine.metrics_report();
  EXPECT_EQ(report.value("trace.ring.drops"), 0u);
  EXPECT_EQ(report.value("trace.ring.hwm"), 0u);
  EXPECT_EQ(machine.trace_session().collect().total_events(), 0u);
}

}  // namespace
