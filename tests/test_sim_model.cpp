// Tests for the DES engine (src/sim) and the scale-out cost models
// (src/model): engine semantics, network-model monotonicities, and the
// qualitative shapes the paper's tables/figures rely on.
#include <gtest/gtest.h>

#include <vector>

#include "model/fft_model.hpp"
#include "model/namd_model.hpp"
#include "model/params.hpp"
#include "sim/engine.hpp"
#include "sim/phase_network.hpp"

namespace {

using namespace bgq;

TEST(SimEngine, EventsRunInTimeOrder) {
  sim::Engine eng;
  std::vector<int> order;
  eng.schedule(3.0, [&] { order.push_back(3); });
  eng.schedule(1.0, [&] { order.push_back(1); });
  eng.schedule(2.0, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(eng.now(), 3.0);
}

TEST(SimEngine, TiesBreakByInsertionOrder) {
  sim::Engine eng;
  std::vector<int> order;
  eng.schedule(1.0, [&] { order.push_back(0); });
  eng.schedule(1.0, [&] { order.push_back(1); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(SimEngine, EventsMayScheduleEvents) {
  sim::Engine eng;
  int fired = 0;
  eng.schedule(1.0, [&] {
    ++fired;
    eng.after(1.0, [&] { ++fired; });
  });
  eng.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(eng.now(), 2.0);
}

TEST(SimEngine, RunUntilStopsEarly) {
  sim::Engine eng;
  int fired = 0;
  eng.schedule(1.0, [&] { ++fired; });
  eng.schedule(5.0, [&] { ++fired; });
  eng.run(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(eng.pending(), 1u);
}

TEST(SimServer, SerializesWork) {
  sim::Server s;
  EXPECT_DOUBLE_EQ(s.submit(0.0, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(s.submit(0.0, 2.0), 4.0);  // queued behind the first
  EXPECT_DOUBLE_EQ(s.submit(10.0, 1.0), 11.0);  // idle gap honoured
  EXPECT_DOUBLE_EQ(s.busy_time(), 5.0);
}

TEST(PhaseNetwork, UncontendedLatencyMatchesAlphaBeta) {
  topo::Torus t = topo::Torus::bgq_partition(32);
  sim::PhaseNetwork net(t, net::NetworkParams{});
  const sim::Time a = net.deliver(0.0, 0, 1, 512);
  // base + ser + hop terms: sub-2us for one packet to a neighbour.
  EXPECT_GT(a, 0.5);
  EXPECT_LT(a, 2.0);
}

TEST(PhaseNetwork, ContentionDelaysSharedLinks) {
  topo::Torus t = topo::Torus::bgq_partition(32);
  sim::PhaseNetwork busy(t, net::NetworkParams{});
  sim::PhaseNetwork idle(t, net::NetworkParams{});
  // Ten large messages over the same link vs one.
  sim::Time last = 0;
  for (int i = 0; i < 10; ++i) {
    last = busy.deliver(0.0, 0, 1, 64 * 1024);
  }
  const sim::Time single = idle.deliver(0.0, 0, 1, 64 * 1024);
  EXPECT_GT(last, 5 * single);
}

TEST(PhaseNetwork, MoreHopsTakeLonger) {
  topo::Torus t = topo::Torus::bgq_partition(512);
  sim::PhaseNetwork net(t, net::NetworkParams{});
  const auto far =
      static_cast<topo::NodeId>(t.node_count() / 2 + 1);  // many hops
  EXPECT_GT(net.deliver(0.0, 0, far, 512), net.deliver(0.0, 0, 1, 512));
}

// ---------------------------------------------------------------------------
// Cost-model shape properties (the qualitative claims of Table I and the
// NAMD figures; quantitative comparisons live in the benches).
// ---------------------------------------------------------------------------

TEST(RuntimeParams, ModeLatencyOrderingMatchesFig4) {
  // Paper Fig. 4 short-message anchors: non-SMP < SMP < SMP+commthreads.
  model::RuntimeParams nonsmp;
  nonsmp.mode = model::Mode::kNonSmp;
  model::RuntimeParams smp;
  smp.mode = model::Mode::kSmp;
  model::RuntimeParams ct;
  ct.mode = model::Mode::kSmpCommThreads;

  auto one_way = [](const model::RuntimeParams& rt) {
    return rt.worker_send_cost() + rt.commthread_send_cost() +
           rt.poll_recv_cost() + rt.worker_sched_cost();
  };
  EXPECT_LT(one_way(nonsmp), one_way(smp));
  EXPECT_LT(one_way(smp), one_way(ct));
}

TEST(RuntimeParams, L2OffInflatesSoftwareCosts) {
  model::RuntimeParams on, off;
  off.use_l2_atomics = false;
  EXPECT_GT(off.worker_send_cost(), on.worker_send_cost());
  EXPECT_GT(off.poll_recv_cost(), on.poll_recv_cost());
}

TEST(MachineModel, SmtThroughputMatchesPaperAnchor) {
  // §IV-B.1: 2.3x with four threads per core vs one.
  model::MachineModel m = model::MachineModel::bgq();
  EXPECT_NEAR(m.node_throughput(64) / m.node_throughput(16), 2.3, 0.01);
  EXPECT_GT(m.node_throughput(32), m.node_throughput(16));
}

TEST(FftModel, M2MBeatsP2PAndGapGrowsWithNodes) {
  // Table I: m2m wins everywhere; the advantage grows with node count.
  auto ratio_at = [](std::size_t nodes) {
    model::FftRun p2p;
    p2p.n = 32;
    p2p.nodes = nodes;
    p2p.use_m2m = false;
    model::FftRun m2m = p2p;
    m2m.use_m2m = true;
    return simulate_fft(p2p).step_us / simulate_fft(m2m).step_us;
  };
  const double r64 = ratio_at(64);
  const double r1024 = ratio_at(1024);
  EXPECT_GT(r64, 1.0);
  EXPECT_GT(r1024, r64);
}

TEST(FftModel, M2MAdvantageShrinksForLargerProblems) {
  // Table I: 1.66x at 128^3/64 nodes vs 3.33x at 32^3/64 nodes.
  auto ratio_for = [](std::size_t n) {
    model::FftRun p2p;
    p2p.n = n;
    p2p.nodes = 64;
    p2p.use_m2m = false;
    model::FftRun m2m = p2p;
    m2m.use_m2m = true;
    return simulate_fft(p2p).step_us / simulate_fft(m2m).step_us;
  };
  EXPECT_GT(ratio_for(32), ratio_for(128));
}

TEST(FftModel, StrongScalingReducesStepTime) {
  model::FftRun run;
  run.n = 128;
  run.use_m2m = true;
  run.nodes = 64;
  const double t64 = simulate_fft(run).step_us;
  run.nodes = 1024;
  const double t1024 = simulate_fft(run).step_us;
  EXPECT_LT(t1024, t64);
}

TEST(NamdModel, ComputeBoundPrefersAllWorkerThreads) {
  // Fig. 7 at small node counts: 64 worker threads beat 32w+8c.
  model::NamdRun w64;
  w64.nodes = 32;
  w64.workers = 64;
  w64.runtime.mode = model::Mode::kSmp;
  model::NamdRun w32c8 = w64;
  w32c8.workers = 32;
  w32c8.runtime.mode = model::Mode::kSmpCommThreads;
  w32c8.runtime.comm_threads = 8;
  EXPECT_LT(simulate_namd_step(w64).total_us,
            simulate_namd_step(w32c8).total_us);
}

TEST(NamdModel, CommBoundPrefersCommThreads) {
  // Fig. 7 at scale: dedicated comm threads win.
  model::NamdRun w64;
  w64.nodes = 4096;
  w64.workers = 64;
  w64.runtime.mode = model::Mode::kSmp;
  model::NamdRun w32c8 = w64;
  w32c8.workers = 32;
  w32c8.runtime.mode = model::Mode::kSmpCommThreads;
  w32c8.runtime.comm_threads = 8;
  EXPECT_GT(simulate_namd_step(w64).total_us,
            simulate_namd_step(w32c8).total_us);
}

TEST(NamdModel, L2AtomicsSpeedUpCommBoundRuns) {
  // Fig. 8: disabling L2 atomics slows the 512-node run substantially.
  model::NamdRun on;
  on.nodes = 512;
  on.workers = 48;
  on.runtime.mode = model::Mode::kSmp;
  model::NamdRun off = on;
  off.runtime.use_l2_atomics = false;
  const double t_on = simulate_namd_step(on).total_us;
  const double t_off = simulate_namd_step(off).total_us;
  EXPECT_GT(t_off / t_on, 1.2);
}

TEST(NamdModel, M2MPmeImprovesScaling) {
  // Figs. 10/12: many-to-many PME shortens the PME phase.
  model::NamdRun p2p;
  p2p.nodes = 1024;
  p2p.workers = 32;
  p2p.runtime.mode = model::Mode::kSmpCommThreads;
  p2p.m2m_pme = false;
  model::NamdRun m2m = p2p;
  m2m.m2m_pme = true;
  EXPECT_LT(simulate_namd_step(m2m).pme_us,
            simulate_namd_step(p2p).pme_us);
}

TEST(NamdModel, BgqOutperformsBgpPerNode) {
  // Fig. 11: BG/Q steps are much faster than BG/P at equal node count.
  model::NamdRun q;
  q.nodes = 1024;
  q.workers = 48;
  q.runtime.mode = model::Mode::kSmpCommThreads;
  model::NamdRun p = q;
  p.machine = model::MachineModel::bgp();
  p.workers = 4;
  p.runtime.mode = model::Mode::kNonSmp;
  EXPECT_LT(simulate_namd_step(q).total_us,
            simulate_namd_step(p).total_us);
}

TEST(NamdModel, StmvScalesTo16kNodes) {
  // Fig. 12 / Table II: step time keeps dropping out to 16,384 nodes.
  model::NamdRun run;
  run.system = model::NamdSystem::stmv100m();
  run.workers = 48;
  run.m2m_pme = true;
  run.runtime.mode = model::Mode::kSmpCommThreads;
  double prev = 1e18;
  for (std::size_t nodes : {2048, 4096, 8192, 16384}) {
    run.nodes = nodes;
    const double t = simulate_namd_step(run).total_us;
    EXPECT_LT(t, prev) << nodes;
    prev = t;
  }
}

}  // namespace
