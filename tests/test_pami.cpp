// Tests for the PAMI-like messaging layer (src/pami).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>

#include "pami/comm_thread.hpp"
#include "pami/pami.hpp"

namespace {

using bgq::net::Fabric;
using bgq::net::NetworkParams;
using bgq::pami::Client;
using bgq::pami::CommThreadPool;
using bgq::pami::Context;
using bgq::pami::DispatchArgs;
using bgq::pami::SendParams;
using bgq::topo::Torus;

struct TwoNodeHarness {
  Torus torus{{2}};
  Fabric fabric{torus, NetworkParams{}, /*fifos=*/2};
  Client a{fabric, 0, 2};
  Client b{fabric, 1, 2};
};

TEST(Pami, SendImmediateInvokesDispatchWithPayload) {
  TwoNodeHarness h;
  std::string got;
  bgq::pami::EndpointId origin = 99;
  h.b.set_dispatch(5, [&](const DispatchArgs& args) {
    got.assign(reinterpret_cast<const char*>(args.payload),
               args.payload_bytes);
    origin = args.origin;
  });

  SendParams p;
  p.dest = 1;
  p.dispatch = 5;
  p.payload = "ping";
  p.payload_bytes = 4;
  h.a.context(0).send_immediate(p);

  EXPECT_EQ(h.b.context(0).advance(), 1u);
  EXPECT_EQ(got, "ping");
  EXPECT_EQ(origin, 0u);
  EXPECT_EQ(h.a.context(0).immediate_sends(), 1u);
  EXPECT_EQ(h.b.context(0).receives(), 1u);
}

TEST(Pami, SendImmediateRejectsOversize) {
  TwoNodeHarness h;
  std::vector<char> big(Context::kImmediateMax + 1);
  SendParams p;
  p.dest = 1;
  p.payload = big.data();
  p.payload_bytes = big.size();
  EXPECT_THROW(h.a.context(0).send_immediate(p), std::invalid_argument);
}

TEST(Pami, SendCarriesMetadataAndLargePayload) {
  TwoNodeHarness h;
  std::vector<char> payload(100000, 'x');
  payload.back() = 'z';
  std::uint64_t meta_in = 0xABCDEF, meta_out = 0;
  std::size_t got_bytes = 0;
  char last = 0;
  h.b.set_dispatch(7, [&](const DispatchArgs& args) {
    std::memcpy(&meta_out, args.metadata, sizeof(meta_out));
    got_bytes = args.payload_bytes;
    last = static_cast<char>(args.payload[args.payload_bytes - 1]);
  });

  SendParams p;
  p.dest = 1;
  p.dispatch = 7;
  p.metadata = &meta_in;
  p.metadata_bytes = sizeof(meta_in);
  p.payload = payload.data();
  p.payload_bytes = payload.size();

  bool done = false;
  p.local_done = [&] { done = true; };
  h.a.context(0).send(p);
  EXPECT_TRUE(done) << "payload copied: local completion is synchronous";

  EXPECT_EQ(h.b.context(0).advance(), 1u);
  EXPECT_EQ(meta_out, meta_in);
  EXPECT_EQ(got_bytes, payload.size());
  EXPECT_EQ(last, 'z');
}

TEST(Pami, SendTargetsRequestedDestContext) {
  TwoNodeHarness h;
  int ctx0 = 0, ctx1 = 0;
  h.b.set_dispatch(3, [&](const DispatchArgs& args) {
    (args.context->index() == 0 ? ctx0 : ctx1)++;
  });
  SendParams p;
  p.dest = 1;
  p.dispatch = 3;
  p.dest_context = 1;
  h.a.context(0).send_immediate(p);
  EXPECT_EQ(h.b.context(0).advance(), 0u);
  EXPECT_EQ(h.b.context(1).advance(), 1u);
  EXPECT_EQ(ctx0, 0);
  EXPECT_EQ(ctx1, 1);
}

TEST(Pami, RgetPullsRemoteDataAndCompletesLocally) {
  TwoNodeHarness h;
  std::vector<std::byte> remote(64);
  for (std::size_t i = 0; i < remote.size(); ++i) {
    remote[i] = static_cast<std::byte>(i);
  }
  std::vector<std::byte> local(64);
  bool complete = false;

  h.a.context(0).rget(1, remote.data(), local.data(), 64,
                      [&] { complete = true; });
  EXPECT_FALSE(complete);
  EXPECT_EQ(h.a.context(0).advance(), 1u);
  EXPECT_TRUE(complete);
  EXPECT_EQ(std::memcmp(local.data(), remote.data(), 64), 0);
}

TEST(Pami, RputPushesDataAndNotifiesRemote) {
  TwoNodeHarness h;
  std::vector<std::byte> local(32, std::byte{0x5A});
  std::vector<std::byte> remote(32);
  bool remote_seen = false;

  h.a.context(0).rput(1, remote.data(), local.data(), 32,
                      /*dest_context=*/0, [&] { remote_seen = true; });
  EXPECT_EQ(h.b.context(0).advance(), 1u);
  EXPECT_TRUE(remote_seen);
  EXPECT_EQ(remote[0], std::byte{0x5A});
  EXPECT_EQ(remote[31], std::byte{0x5A});
}

TEST(Pami, PostWorkRunsOnAdvancingThread) {
  TwoNodeHarness h;
  std::thread::id advancer, worker;
  h.a.context(0).post_work([&] { worker = std::this_thread::get_id(); });
  advancer = std::this_thread::get_id();
  EXPECT_EQ(h.a.context(0).advance(), 1u);
  EXPECT_EQ(worker, advancer);
  EXPECT_EQ(h.a.context(0).work_executed(), 1u);
}

TEST(Pami, AdvanceHonorsMaxEvents) {
  TwoNodeHarness h;
  for (int i = 0; i < 5; ++i) {
    h.a.context(0).post_work([] {});
  }
  EXPECT_EQ(h.a.context(0).advance(2), 2u);
  EXPECT_EQ(h.a.context(0).advance(), 3u);
}

TEST(Pami, UnregisteredDispatchThrows) {
  TwoNodeHarness h;
  SendParams p;
  p.dest = 1;
  p.dispatch = 42;  // never registered
  h.a.context(0).send_immediate(p);
  EXPECT_THROW(h.b.context(0).advance(), std::logic_error);
}

TEST(Pami, ContextCountValidated) {
  Torus t({2});
  Fabric f(t, NetworkParams{}, 2);
  EXPECT_THROW(Client(f, 0, 0), std::invalid_argument);
  EXPECT_THROW(Client(f, 0, 3), std::invalid_argument);  // only 2 FIFOs
}

TEST(CommThread, PoolProcessesPostedWorkWhileCallerSleeps) {
  TwoNodeHarness h;
  std::atomic<int> executed{0};
  {
    CommThreadPool pool({&h.a.context(0), &h.a.context(1)}, 2);
    for (int i = 0; i < 100; ++i) {
      h.a.context(i % 2).post_work([&] { executed.fetch_add(1); });
    }
    while (executed.load() < 100) std::this_thread::yield();
    pool.stop();
  }
  EXPECT_EQ(executed.load(), 100);
}

TEST(CommThread, WakesFromParkOnPacketArrival) {
  TwoNodeHarness h;
  std::atomic<int> received{0};
  h.b.set_dispatch(9, [&](const DispatchArgs&) { received.fetch_add(1); });

  CommThreadPool pool({&h.b.context(0), &h.b.context(1)}, 1);
  // Let the comm thread park.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GT(pool.parks(), 0u) << "idle comm thread should have parked";

  SendParams p;
  p.dest = 1;
  p.dispatch = 9;
  h.a.context(0).send_immediate(p);
  while (received.load() == 0) std::this_thread::yield();
  pool.stop();
  EXPECT_EQ(received.load(), 1);
}

TEST(CommThread, RouteSpreadsLoadEvenly) {
  // The paper's even distribution: each worker's traffic covers all
  // contexts over consecutive sends.
  constexpr unsigned kContexts = 4;
  int hits[kContexts] = {};
  for (unsigned w = 0; w < 8; ++w) {
    for (std::uint64_t seq = 0; seq < 100; ++seq) {
      ++hits[CommThreadPool::route(w, seq, kContexts)];
    }
  }
  for (unsigned c = 0; c < kContexts; ++c) EXPECT_EQ(hits[c], 200);
}

TEST(CommThread, StopIsIdempotent) {
  TwoNodeHarness h;
  CommThreadPool pool({&h.a.context(0)}, 1);
  pool.stop();
  pool.stop();
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Dispatch-table bounds checking
// ---------------------------------------------------------------------------

TEST(Pami, DispatchIdOutOfRangeFailsLoudly) {
  TwoNodeHarness h;
  EXPECT_THROW(h.a.set_dispatch(Client::kMaxDispatch, [](const DispatchArgs&) {}),
               std::invalid_argument);
  // The lookup side must also be checked: a dispatch id off the wire can
  // be anything (one bit flip away from valid).
  EXPECT_THROW(h.a.dispatch(Client::kMaxDispatch), std::out_of_range);
  EXPECT_THROW(h.a.dispatch(0xFFFF), std::out_of_range);
  EXPECT_NO_THROW(h.a.dispatch(Client::kMaxDispatch - 1));
}

// ---------------------------------------------------------------------------
// Reliability protocol (pami/reliability.hpp) over a faulty fabric
// ---------------------------------------------------------------------------

using bgq::net::FaultPlan;
using bgq::pami::ReliabilityParams;

ReliabilityParams fast_rto() {
  ReliabilityParams rp;
  rp.rto_ns = 50'000;  // this host schedules threads far apart; keep the
  rp.rto_max_ns = 2'000'000;  // test quick without retry storms
  return rp;
}

/// Advance both endpoints until `done` holds or `ms` elapses.
template <typename Done>
bool drive_until(TwoNodeHarness& h, Done done, int ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (std::chrono::steady_clock::now() < deadline) {
    h.a.context(0).advance();
    h.b.context(0).advance();
    if (done()) return true;
  }
  return done();
}

TEST(PamiReliability, ExactlyOnceUnderHeavyDrop) {
  TwoNodeHarness h;
  h.fabric.set_fault_plan(FaultPlan::parse("drop=0.5,seed=11"));
  h.a.enable_reliability(fast_rto());
  h.b.enable_reliability(fast_rto());

  std::atomic<int> delivered{0};
  h.b.set_dispatch(5, [&](const DispatchArgs&) { delivered.fetch_add(1); });

  constexpr int kMsgs = 50;
  for (int i = 0; i < kMsgs; ++i) {
    SendParams p;
    p.dest = 1;
    p.dispatch = 5;
    p.payload = &i;
    p.payload_bytes = sizeof(i);
    h.a.context(0).send_immediate(p);
  }
  ASSERT_TRUE(drive_until(h, [&] { return delivered.load() >= kMsgs; }))
      << "only " << delivered.load() << "/" << kMsgs << " delivered";
  EXPECT_EQ(delivered.load(), kMsgs) << "exactly once, never more";
  EXPECT_GT(h.a.context(0).retransmits(), 0u)
      << "half the packets dropped: the protocol must have retransmitted";
  EXPECT_GT(h.fabric.faults_dropped(), 0u);
}

TEST(PamiReliability, DedupUnderGuaranteedDuplication) {
  TwoNodeHarness h;
  h.fabric.set_fault_plan(FaultPlan::parse("dup=1.0,seed=12"));
  h.a.enable_reliability(fast_rto());
  h.b.enable_reliability(fast_rto());

  std::atomic<int> delivered{0};
  h.b.set_dispatch(5, [&](const DispatchArgs&) { delivered.fetch_add(1); });

  constexpr int kMsgs = 20;
  for (int i = 0; i < kMsgs; ++i) {
    SendParams p;
    p.dest = 1;
    p.dispatch = 5;
    h.a.context(0).send_immediate(p);
  }
  ASSERT_TRUE(drive_until(h, [&] { return delivered.load() >= kMsgs; }));
  // Let the duplicate copies flush through, then confirm none dispatched.
  drive_until(h, [&] { return false; }, 50);
  EXPECT_EQ(delivered.load(), kMsgs)
      << "every transfer delivered twice by the fabric, dispatched once";
  EXPECT_GT(h.b.context(0).dedup_drops(), 0u);
}

TEST(PamiReliability, ChecksumCatchesCorruptionAndRetransmitRecovers) {
  TwoNodeHarness h;
  // Half the transmissions take a bit flip; the clean retransmission
  // eventually lands.
  h.fabric.set_fault_plan(FaultPlan::parse("bitflip=0.5,seed=13"));
  h.a.enable_reliability(fast_rto());
  h.b.enable_reliability(fast_rto());

  std::atomic<int> delivered{0};
  std::atomic<int> bad_payloads{0};
  h.b.set_dispatch(5, [&](const DispatchArgs& a) {
    std::uint32_t v = 0;
    std::memcpy(&v, a.payload, sizeof(v));
    if (v != 0xC0FFEEu) bad_payloads.fetch_add(1);
    delivered.fetch_add(1);
  });

  constexpr int kMsgs = 20;
  for (int i = 0; i < kMsgs; ++i) {
    const std::uint32_t v = 0xC0FFEEu;
    SendParams p;
    p.dest = 1;
    p.dispatch = 5;
    p.payload = &v;
    p.payload_bytes = sizeof(v);
    h.a.context(0).send_immediate(p);
  }
  ASSERT_TRUE(drive_until(h, [&] { return delivered.load() >= kMsgs; }));
  EXPECT_EQ(delivered.load(), kMsgs);
  EXPECT_EQ(bad_payloads.load(), 0)
      << "corrupted packets must never reach dispatch";
  EXPECT_GT(h.b.context(0).corrupt_drops(), 0u);
  EXPECT_GT(h.fabric.faults_corrupted(), 0u);
}

TEST(PamiReliability, WindowFullTriggersBackpressureThenDrains) {
  TwoNodeHarness h;
  ReliabilityParams rp = fast_rto();
  rp.window = 4;
  rp.rto_ns = 500'000'000;  // no retransmit noise in this test
  h.a.enable_reliability(rp);
  h.b.enable_reliability(rp);

  std::atomic<int> delivered{0};
  h.b.set_dispatch(5, [&](const DispatchArgs&) { delivered.fetch_add(1); });

  constexpr int kMsgs = 40;
  for (int i = 0; i < kMsgs; ++i) {
    SendParams p;
    p.dest = 1;
    p.dispatch = 5;
    h.a.context(0).send_immediate(p);
  }
  // Only a window's worth may be in flight; the rest stalled locally.
  EXPECT_GT(h.a.context(0).backpressure_stalls(), 0u);
  ASSERT_TRUE(drive_until(h, [&] { return delivered.load() >= kMsgs; }));
  EXPECT_EQ(delivered.load(), kMsgs) << "backlog drains without loss";
}

TEST(PamiReliability, RetriesExhaustedFailsLoudlyInsteadOfHanging) {
  TwoNodeHarness h;
  h.fabric.set_fault_plan(FaultPlan::parse("drop=1.0"));
  ReliabilityParams rp = fast_rto();
  rp.rto_ns = 1'000;  // immediate expiry
  rp.rto_max_ns = 1'000;
  rp.max_retries = 3;
  h.a.enable_reliability(rp);
  h.b.enable_reliability(rp);

  SendParams p;
  p.dest = 1;
  p.dispatch = 5;
  h.a.context(0).send_immediate(p);

  EXPECT_THROW(
      {
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(5);
        while (std::chrono::steady_clock::now() < deadline) {
          h.a.context(0).advance();
        }
      },
      std::runtime_error)
      << "an unreachable peer must surface as an error, not a hang";
}

TEST(PamiReliability, BacklogOverflowThrowsInsteadOfUnboundedMemory) {
  TwoNodeHarness h;
  ReliabilityParams rp = fast_rto();
  rp.window = 1;
  rp.backlog_max = 8;
  rp.rto_ns = 500'000'000;
  h.a.enable_reliability(rp);
  h.b.enable_reliability(rp);

  auto send_one = [&] {
    SendParams p;
    p.dest = 1;
    p.dispatch = 5;
    h.a.context(0).send_immediate(p);
  };
  send_one();  // occupies the window
  for (int i = 0; i < 8; ++i) send_one();  // fills the backlog
  EXPECT_THROW(send_one(), std::runtime_error);
}

TEST(PamiReliability, LosslessFastPathKeepsCountersAtZero) {
  TwoNodeHarness h;  // no fault plan, no reliability: the seed fast path
  std::atomic<int> delivered{0};
  h.b.set_dispatch(5, [&](const DispatchArgs&) { delivered.fetch_add(1); });
  SendParams p;
  p.dest = 1;
  p.dispatch = 5;
  h.a.context(0).send_immediate(p);
  EXPECT_EQ(h.b.context(0).advance(), 1u);
  EXPECT_EQ(delivered.load(), 1);
  EXPECT_EQ(h.a.context(0).retransmits(), 0u);
  EXPECT_EQ(h.a.context(0).backpressure_stalls(), 0u);
  EXPECT_EQ(h.b.context(0).dedup_drops(), 0u);
  EXPECT_EQ(h.b.context(0).corrupt_drops(), 0u);
  EXPECT_EQ(h.b.context(0).dup_acks(), 0u);
  EXPECT_EQ(h.fabric.faults_dropped(), 0u);
  EXPECT_EQ(h.fabric.fifo_spills(), 0u);
}

TEST(PamiReliability, PiggybackedAcksRideReverseTraffic) {
  TwoNodeHarness h;
  h.a.enable_reliability(fast_rto());
  h.b.enable_reliability(fast_rto());

  std::atomic<int> pings{0}, pongs{0};
  // b's handler replies immediately: the reply (sent from inside the
  // dispatch, before b's advance() flushes standalone acks) must carry
  // the ack for the ping it answers.
  h.b.set_dispatch(5, [&](const DispatchArgs& a) {
    pings.fetch_add(1);
    SendParams r;
    r.dest = a.origin;
    r.dispatch = 6;
    a.context->send_immediate(r);
  });
  h.a.set_dispatch(6, [&](const DispatchArgs&) { pongs.fetch_add(1); });

  constexpr int kRounds = 10;
  for (int i = 0; i < kRounds; ++i) {
    SendParams p;
    p.dest = 1;
    p.dispatch = 5;
    h.a.context(0).send_immediate(p);
    ASSERT_TRUE(drive_until(h, [&] { return pongs.load() > i; }));
  }
  EXPECT_EQ(pings.load(), kRounds);
  EXPECT_GT(h.b.context(0).piggybacked_acks(), 0u)
      << "replies should carry acks instead of separate ack packets";
}

TEST(PamiReliability, DedupHorizonBoundsTableAndStillDedups) {
  TwoNodeHarness h;
  ReliabilityParams rp = fast_rto();
  rp.dedup_horizon = 4;  // tiny on purpose: age entries out fast
  h.a.enable_reliability(rp);
  h.b.enable_reliability(rp);

  std::atomic<int> delivered{0};
  h.b.set_dispatch(5, [&](const DispatchArgs&) { delivered.fetch_add(1); });

  // First packet vanishes: its seq becomes a persistent gap, so every
  // later seq sits in the above-watermark dedup table instead of folding
  // into the cumulative watermark.
  h.fabric.set_fault_plan(FaultPlan::parse("drop=1.0"));
  SendParams p;
  p.dest = 1;
  p.dispatch = 5;
  h.a.context(0).send_immediate(p);
  h.fabric.set_fault_plan(FaultPlan{});

  // Nine clean packets: the table grows past the horizon and the oldest
  // entries age out (that is the bound under test).
  constexpr int kLater = 9;
  for (int i = 0; i < kLater; ++i) h.a.context(0).send_immediate(p);
  ASSERT_TRUE(drive_until(h, [&] { return delivered.load() >= kLater; }));
  EXPECT_GT(h.b.context(0).dedup_evictions(), 0u)
      << "a >horizon backlog above a gap must evict aged entries";

  // The dropped packet's retransmit now arrives far below max_seen: the
  // horizon classifies it as an ancient duplicate (its would-be table
  // entry is long gone) and it is acked but never dispatched, so the
  // sender drains instead of retrying forever.
  drive_until(h, [&] { return h.a.context(0).outstanding() == 0; }, 200);
  EXPECT_EQ(h.a.context(0).outstanding(), 0u);
  EXPECT_EQ(delivered.load(), kLater) << "horizon must not re-dispatch";
  EXPECT_GT(h.b.context(0).dedup_drops(), 0u);
}

TEST(PamiReliability, DeadPeerPendingAndBacklogAreCulled) {
  TwoNodeHarness h;
  ReliabilityParams rp = fast_rto();
  rp.window = 2;  // force part of the burst into the backlog
  h.a.enable_reliability(rp);
  h.b.enable_reliability(rp);

  SendParams p;
  p.dest = 1;
  p.dispatch = 5;

  h.fabric.kill_endpoint(1);
  // A window's worth of sends injects straight into the blackhole; the
  // rest queue behind the (never-acked) window in the local backlog.
  for (int i = 0; i < 6; ++i) h.a.context(0).send_immediate(p);
  // Unacked copies and backlogged sends to the dead endpoint are culled
  // at the reliability tick — no retry storm, no retries-exhausted throw.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (std::chrono::steady_clock::now() < deadline &&
         (h.a.context(0).outstanding() != 0 ||
          h.a.context(0).backlog_size() != 0)) {
    h.a.context(0).advance();
  }
  EXPECT_EQ(h.a.context(0).outstanding(), 0u);
  EXPECT_EQ(h.a.context(0).backlog_size(), 0u);
  EXPECT_GT(h.a.context(0).dead_peer_drops(), 0u);
  EXPECT_GT(h.fabric.blackholed(), 0u)
      << "in-flight traffic to the dead endpoint is swallowed";
}

}  // namespace
