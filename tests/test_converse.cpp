// Integration tests for the Converse-like machine layer (src/converse):
// all three execution modes, eager + rendezvous protocols, intra-process
// pointer exchange, and the L2-atomics / allocator configuration axes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>

#include "converse/machine.hpp"

namespace {

using bgq::cvs::HandlerId;
using bgq::cvs::Machine;
using bgq::cvs::MachineConfig;
using bgq::cvs::Message;
using bgq::cvs::Mode;
using bgq::cvs::Pe;

MachineConfig base_config(Mode mode) {
  MachineConfig cfg;
  cfg.nodes = 2;
  cfg.mode = mode;
  cfg.workers_per_process = 2;
  cfg.processes_per_node = 2;
  cfg.comm_threads = 1;
  return cfg;
}

/// Ping-pong between the first and last PE; verifies payload integrity and
/// round-trip counting in every mode.
void run_pingpong(MachineConfig cfg, int rounds, std::size_t bytes) {
  Machine machine(cfg);
  const auto last = static_cast<bgq::cvs::PeRank>(machine.pe_count() - 1);
  std::atomic<int> bounces{0};

  const HandlerId bounce = machine.register_handler(
      [&, last](Pe& pe, Message* m) {
        // Verify pattern, increment the counter in the payload, reply.
        auto* fill = reinterpret_cast<unsigned char*>(m->payload());
        EXPECT_EQ(fill[m->payload_bytes() - 1],
                  static_cast<unsigned char>(0xC5));
        const int n = bounces.fetch_add(1) + 1;
        if (n >= rounds) {
          pe.free_message(m);
          pe.exit_all();
          return;
        }
        const auto peer = pe.rank() == 0 ? last : 0;
        pe.send_message(peer, m);  // re-use the same buffer: zero copies
      });

  machine.run([&, last](Pe& pe) {
    if (pe.rank() != 0) return;
    Message* m = pe.alloc_message(bytes, bounce);
    std::memset(m->payload(), 0xC5, bytes);
    pe.send_message(last, m);
  });

  EXPECT_GE(bounces.load(), rounds);
}

class AllModes : public ::testing::TestWithParam<Mode> {};

TEST_P(AllModes, PingPongShortMessages) {
  run_pingpong(base_config(GetParam()), 50, 32);
}

TEST_P(AllModes, PingPongEagerMediumMessages) {
  run_pingpong(base_config(GetParam()), 20, 2048);
}

TEST_P(AllModes, PingPongRendezvousLargeMessages) {
  run_pingpong(base_config(GetParam()), 10, 64 * 1024);
}

TEST_P(AllModes, PingPongWithMutexQueuesAndArenaAllocator) {
  MachineConfig cfg = base_config(GetParam());
  cfg.use_l2_atomics = false;
  cfg.use_pool_allocator = false;
  run_pingpong(cfg, 20, 512);
}

INSTANTIATE_TEST_SUITE_P(Modes, AllModes,
                         ::testing::Values(Mode::kNonSmp, Mode::kSmp,
                                           Mode::kSmpCommThreads),
                         [](const auto& info) {
                           switch (info.param) {
                             case Mode::kNonSmp: return "NonSmp";
                             case Mode::kSmp: return "Smp";
                             default: return "SmpCommThreads";
                           }
                         });

TEST(Converse, ConfigDerivations) {
  MachineConfig cfg = base_config(Mode::kNonSmp);
  EXPECT_EQ(cfg.effective_workers_per_process(), 1u);
  EXPECT_EQ(cfg.process_count(), 4u);  // 2 nodes x 2 processes
  EXPECT_EQ(cfg.pe_count(), 4u);
  EXPECT_EQ(cfg.effective_comm_threads(), 0u);

  cfg = base_config(Mode::kSmp);
  EXPECT_EQ(cfg.process_count(), 2u);
  EXPECT_EQ(cfg.pe_count(), 4u);
  EXPECT_EQ(cfg.contexts_per_process(), 2u);  // one per worker

  cfg = base_config(Mode::kSmpCommThreads);
  EXPECT_EQ(cfg.effective_comm_threads(), 1u);
  EXPECT_EQ(cfg.contexts_per_process(), 1u);  // one per comm thread
}

TEST(Converse, IntraProcessSendIsPointerExchange) {
  MachineConfig cfg = base_config(Mode::kSmp);
  cfg.nodes = 2;  // smallest standard partition shape users still 2 nodes
  Machine machine(cfg);

  std::atomic<void*> sent_ptr{nullptr};
  std::atomic<bool> same{false};

  const HandlerId h = machine.register_handler([&](Pe& pe, Message* m) {
    same.store(m->raw() == sent_ptr.load());
    pe.free_message(m);
    pe.exit_all();
  });

  machine.run([&](Pe& pe) {
    if (pe.rank() != 0) return;
    Message* m = pe.alloc_message(64, h);
    sent_ptr.store(m->raw());
    pe.send_message(1, m);  // PE 1 is in the same process (2 workers)
  });

  EXPECT_TRUE(same.load())
      << "same-process delivery must not copy the message";
  EXPECT_GE(machine.metrics().total("pe.sends.intra"), 1u);
}

TEST(Converse, NetworkSendCountsAndDelivers) {
  MachineConfig cfg = base_config(Mode::kSmp);
  Machine machine(cfg);
  const auto last = static_cast<bgq::cvs::PeRank>(machine.pe_count() - 1);

  std::atomic<int> got{0};
  const HandlerId h = machine.register_handler([&](Pe& pe, Message* m) {
    got.fetch_add(1);
    pe.free_message(m);
    if (got.load() == 10) pe.exit_all();
  });

  machine.run([&, last](Pe& pe) {
    if (pe.rank() != 0) return;
    for (int i = 0; i < 10; ++i) pe.send(last, h, &i, sizeof(i));
  });

  EXPECT_EQ(got.load(), 10);
  EXPECT_EQ(machine.metrics().total("pe.sends.network"), 10u);
}

TEST(Converse, BroadcastReachesEveryPe) {
  MachineConfig cfg = base_config(Mode::kSmp);
  Machine machine(cfg);
  const auto npes = machine.pe_count();

  std::atomic<std::size_t> got{0};
  const HandlerId h = machine.register_handler([&](Pe& pe, Message* m) {
    pe.free_message(m);
    if (got.fetch_add(1) + 1 == npes) pe.exit_all();
  });

  machine.run([&](Pe& pe) {
    if (pe.rank() != 0) return;
    const int v = 7;
    pe.broadcast(h, &v, sizeof(v));
  });

  EXPECT_EQ(got.load(), npes);
}

TEST(Converse, ManyToOneStressAllMessagesArrive) {
  // Every PE floods PE 0 — the contended pattern the lockless queues and
  // the pool allocator exist for.
  MachineConfig cfg = base_config(Mode::kSmp);
  cfg.nodes = 2;
  cfg.workers_per_process = 4;
  Machine machine(cfg);
  const std::size_t senders = machine.pe_count() - 1;
  constexpr int kPer = 200;

  std::atomic<std::size_t> got{0};
  const HandlerId h = machine.register_handler([&](Pe& pe, Message* m) {
    pe.free_message(m);
    if (got.fetch_add(1) + 1 == senders * kPer) pe.exit_all();
  });

  machine.run([&](Pe& pe) {
    if (pe.rank() == 0) return;
    for (int i = 0; i < kPer; ++i) pe.send(0, h, &i, sizeof(i));
  });

  EXPECT_EQ(got.load(), senders * kPer);
}

TEST(Converse, RendezvousPreservesLargePayloadIntegrity) {
  MachineConfig cfg = base_config(Mode::kSmpCommThreads);
  Machine machine(cfg);
  const auto last = static_cast<bgq::cvs::PeRank>(machine.pe_count() - 1);
  constexpr std::size_t kBytes = 256 * 1024;

  std::atomic<bool> ok{false};
  const HandlerId h = machine.register_handler([&](Pe& pe, Message* m) {
    const auto* p = reinterpret_cast<const std::uint32_t*>(m->payload());
    bool good = m->payload_bytes() == kBytes;
    for (std::size_t i = 0; good && i < kBytes / 4; i += 997) {
      good = p[i] == static_cast<std::uint32_t>(i);
    }
    ok.store(good);
    pe.free_message(m);
    pe.exit_all();
  });

  machine.run([&, last](Pe& pe) {
    if (pe.rank() != 0) return;
    Message* m = pe.alloc_message(kBytes, h);
    auto* p = reinterpret_cast<std::uint32_t*>(m->payload());
    for (std::size_t i = 0; i < kBytes / 4; ++i) {
      p[i] = static_cast<std::uint32_t>(i);
    }
    pe.send_message(last, m);
  });

  EXPECT_TRUE(ok.load());
}

TEST(Converse, BarrierAlignsWorkers) {
  MachineConfig cfg = base_config(Mode::kSmp);
  Machine machine(cfg);
  std::atomic<int> before{0}, after{0};
  std::atomic<bool> violated{false};

  machine.register_handler([](Pe&, Message*) {});
  machine.run([&](Pe& pe) {
    before.fetch_add(1);
    pe.barrier();
    // After the barrier, every PE must have done its pre-barrier step.
    if (before.load() != static_cast<int>(machine.pe_count())) {
      violated.store(true);
    }
    if (after.fetch_add(1) + 1 == static_cast<int>(machine.pe_count())) {
      pe.exit_all();
    }
  });

  EXPECT_FALSE(violated.load());
}

TEST(Converse, TraceRecordsBusyIntervals) {
  MachineConfig cfg = base_config(Mode::kSmp);
  cfg.trace_events = true;
  Machine machine(cfg);

  const HandlerId h = machine.register_handler([&](Pe& pe, Message* m) {
    pe.free_message(m);
    pe.exit_all();
  });
  machine.run([&](Pe& pe) {
    if (pe.rank() != 0) return;
    pe.send(1, h, nullptr, 0);
  });

  // PE 1 executed the handler: its track must carry a closed handler span
  // with a sane timestamp order.
  const auto& flat = machine.trace_session().collect();
  const bgq::trace::Track* pe1 = nullptr;
  for (const auto& t : flat.tracks) {
    if (t.name == "pe1") pe1 = &t;
  }
  ASSERT_NE(pe1, nullptr);
  const auto spans =
      bgq::trace::extract_spans(*pe1, bgq::trace::EventKind::kHandlerBegin);
  ASSERT_GE(spans.size(), 1u);
  EXPECT_EQ(spans[0].arg, h);
  EXPECT_GE(spans[0].t1, spans[0].t0);
}

TEST(Converse, MessageHeaderRoundTrip) {
  MachineConfig cfg = base_config(Mode::kSmp);
  Machine machine(cfg);
  const auto last = static_cast<bgq::cvs::PeRank>(machine.pe_count() - 1);

  std::atomic<std::uint32_t> seen_src{9999}, seen_dst{9999};
  const HandlerId h = machine.register_handler([&](Pe& pe, Message* m) {
    seen_src.store(m->header().src_pe);
    seen_dst.store(m->header().dst_pe);
    pe.free_message(m);
    pe.exit_all();
  });

  machine.run([&, last](Pe& pe) {
    if (pe.rank() != 0) return;
    pe.send(last, h, nullptr, 0);
  });

  EXPECT_EQ(seen_src.load(), 0u);
  EXPECT_EQ(seen_dst.load(), last);
}

// ---------------------------------------------------------------------------
// Chaos fabric: the machine layer over fault injection + reliability
// ---------------------------------------------------------------------------

using bgq::net::FaultPlan;

MachineConfig faulty_config(Mode mode, const char* plan) {
  MachineConfig cfg = base_config(mode);
  cfg.faults = FaultPlan::parse(plan);
  cfg.reliability.rto_ns = 100'000;  // this host's threads schedule far
  cfg.reliability.rto_max_ns = 5'000'000;  // apart; keep recovery quick
  return cfg;
}

class FaultyModes : public ::testing::TestWithParam<Mode> {};

TEST_P(FaultyModes, ManyToOneExactlyOnceUnderDropDupReorder) {
  MachineConfig cfg = faulty_config(
      GetParam(), "drop=0.01,dup=0.01,delay=0.02,seed=1234");
  Machine machine(cfg);
  const std::size_t senders = machine.pe_count() - 1;
  constexpr int kPer = 100;

  std::atomic<std::size_t> got{0};
  const HandlerId h = machine.register_handler([&](Pe& pe, Message* m) {
    pe.free_message(m);
    if (got.fetch_add(1) + 1 == senders * kPer) pe.exit_all();
  });

  machine.run([&](Pe& pe) {
    if (pe.rank() == 0) return;
    for (int i = 0; i < kPer; ++i) pe.send(0, h, &i, sizeof(i));
  });

  EXPECT_EQ(got.load(), senders * kPer)
      << "every message delivered exactly once despite drop+dup+reorder";
  const auto report = machine.metrics_report();
  EXPECT_GT(report.value("net.drops") + report.value("net.dups") +
                report.value("net.delays"),
            0u)
      << "the fault plan must actually have fired";
}

INSTANTIATE_TEST_SUITE_P(Modes, FaultyModes,
                         ::testing::Values(Mode::kNonSmp, Mode::kSmp,
                                           Mode::kSmpCommThreads),
                         [](const auto& info) {
                           switch (info.param) {
                             case Mode::kNonSmp: return "NonSmp";
                             case Mode::kSmp: return "Smp";
                             default: return "SmpCommThreads";
                           }
                         });

TEST(ConverseFaults, RetransmitCounterProvesProtocolExercised) {
  MachineConfig cfg =
      faulty_config(Mode::kSmp, "drop=0.05,dup=0.01,delay=0.02,seed=99");
  Machine machine(cfg);
  const std::size_t senders = machine.pe_count() - 1;
  constexpr int kPer = 200;

  std::atomic<std::size_t> got{0};
  const HandlerId h = machine.register_handler([&](Pe& pe, Message* m) {
    pe.free_message(m);
    if (got.fetch_add(1) + 1 == senders * kPer) pe.exit_all();
  });
  machine.run([&](Pe& pe) {
    if (pe.rank() == 0) return;
    for (int i = 0; i < kPer; ++i) pe.send(0, h, &i, sizeof(i));
  });

  ASSERT_EQ(got.load(), senders * kPer);
  const auto report = machine.metrics_report();
  EXPECT_GT(report.value("net.drops"), 0u);
  EXPECT_GT(report.value("net.retransmits"), 0u)
      << "5% drop over " << senders * kPer
      << " messages must have forced retransmits";
}

TEST(ConverseFaults, RendezvousSurvivesFaultyControlPackets) {
  // The rendezvous req/ack legs are mem-FIFO sends (faulted); the rget
  // data leg models the DMA engine (reliable).  End-to-end integrity must
  // hold with the control packets dropped and duplicated.
  MachineConfig cfg =
      faulty_config(Mode::kSmp, "drop=0.1,dup=0.1,delay=0.1,seed=5");
  Machine machine(cfg);
  const auto last = static_cast<bgq::cvs::PeRank>(machine.pe_count() - 1);
  constexpr std::size_t kBytes = 64 * 1024;

  std::atomic<bool> ok{false};
  const HandlerId h = machine.register_handler([&](Pe& pe, Message* m) {
    const auto* p = reinterpret_cast<const std::uint32_t*>(m->payload());
    bool good = m->payload_bytes() == kBytes;
    for (std::size_t i = 0; good && i < kBytes / 4; i += 97) {
      good = p[i] == static_cast<std::uint32_t>(i);
    }
    ok.store(good);
    pe.free_message(m);
    pe.exit_all();
  });

  machine.run([&, last](Pe& pe) {
    if (pe.rank() != 0) return;
    Message* m = pe.alloc_message(kBytes, h);
    auto* p = reinterpret_cast<std::uint32_t*>(m->payload());
    for (std::size_t i = 0; i < kBytes / 4; ++i) {
      p[i] = static_cast<std::uint32_t>(i);
    }
    pe.send_message(last, m);
  });
  EXPECT_TRUE(ok.load());
}

TEST(ConverseFaults, DefaultRunEmitsReliabilityCountersAsZeros) {
  MachineConfig cfg = base_config(Mode::kSmp);
  Machine machine(cfg);
  const HandlerId h = machine.register_handler(
      [&](Pe& pe, Message* m) { pe.free_message(m); pe.exit_all(); });
  machine.run([&](Pe& pe) {
    if (pe.rank() == 0) pe.send(1, h, nullptr, 0);
  });

  const auto report = machine.metrics_report();
  for (const char* key :
       {"net.drops", "net.dups", "net.delays", "net.bitflips",
        "net.fifo.rejects", "net.fifo.spills", "net.retransmits",
        "net.dup_acks", "net.acks.piggybacked", "net.acks.standalone",
        "net.corrupt_drops", "net.dedup_drops",
        "comm.backpressure_stalls"}) {
    EXPECT_TRUE(report.has(key)) << key << " missing from report";
    EXPECT_EQ(report.value(key), 0u) << key << " nonzero on lossless run";
  }
}

TEST(ConverseFaults, FifoCapacityIsConfigurableAndSpillsAreCounted) {
  MachineConfig cfg = base_config(Mode::kSmp);
  cfg.rec_fifo_capacity = 8;  // tiny ring: bursts must spill (lossless)
  Machine machine(cfg);
  const std::size_t senders = machine.pe_count() - 1;
  constexpr int kPer = 300;

  std::atomic<std::size_t> got{0};
  const HandlerId h = machine.register_handler([&](Pe& pe, Message* m) {
    pe.free_message(m);
    if (got.fetch_add(1) + 1 == senders * kPer) pe.exit_all();
  });
  machine.run([&](Pe& pe) {
    if (pe.rank() == 0) return;
    for (int i = 0; i < kPer; ++i) pe.send(0, h, &i, sizeof(i));
  });

  EXPECT_EQ(got.load(), senders * kPer) << "spilling stays lossless";
  const auto report = machine.metrics_report();
  EXPECT_GT(report.value("net.fifo.spills"), 0u);
}

}  // namespace
