// End-to-end crash / checkpoint / recovery tests (the PR's acceptance
// bar): a process is killed mid-run by an injected crash event, the
// failure detector declares it dead, the survivors roll back to the last
// committed in-memory checkpoint, re-home the dead process's chare
// elements, replay — and the run completes *bit-identical* to a
// crash-free run.  With checkpointing disabled, the hang watchdog must
// detect the same scenario and produce a diagnostic dump instead.
//
// Both mini-apps (ft_apps.hpp) are strictly deterministic: every
// iteration is a pure function of (state, iter), so FNV-1a digests of the
// final element state are comparable across runs and configurations.
#include <gtest/gtest.h>

#include <cstdint>

#include "charm/ft_apps.hpp"

namespace {

using bgq::charm::FtFft2D;
using bgq::charm::FtMdRing;
using bgq::charm::Runtime;
using bgq::cvs::Machine;
using bgq::cvs::MachineConfig;
using bgq::cvs::Mode;
using bgq::cvs::Pe;
using bgq::net::FaultPlan;

// Four single-worker SMP processes: each PE advances its own PAMI
// context, so PEs parked in the protocol barriers still execute inbound
// messages inline (what makes quiescence converge).
MachineConfig ft_config() {
  MachineConfig cfg;
  cfg.nodes = 4;
  cfg.mode = Mode::kSmp;
  cfg.workers_per_process = 1;
  cfg.ft.enabled = true;
  cfg.ft.checkpoint_period_ms = 5;
  cfg.ft.heartbeat_period_ms = 2;
  cfg.ft.failure_timeout_ms = 15;
  cfg.ft.watchdog_abort = false;  // a test failure must not abort ctest
  return cfg;
}

constexpr std::size_t kGrid = 16;    // FFT grid edge (2,3,5-smooth)
constexpr std::size_t kElems = 4;    // one element per PE
constexpr std::uint32_t kIters = 12;

constexpr std::size_t kPatches = 4;
constexpr std::size_t kParticles = 6;
// Enough steps that the run spans many 1 ms monitor ticks — a
// message-count crash fires on the first tick at/after its watermark,
// so the app must still be running then.
constexpr std::uint32_t kSteps = 160;

struct FftResult {
  std::uint64_t digest;
  double total;
  bool finished;
};

FftResult run_fft(MachineConfig cfg) {
  Machine machine(cfg);
  Runtime rt(machine);
  FtFft2D app(rt, kGrid, kElems, kIters);
  machine.run([&](Pe& pe) {
    if (pe.rank() == 0) app.start(pe);
  });
  return {app.digest(), app.final_total(), app.finished()};
}

struct MdResult {
  std::uint64_t digest;
  double energy;
  bool finished;
};

MdResult run_md(MachineConfig cfg) {
  Machine machine(cfg);
  Runtime rt(machine);
  FtMdRing app(rt, kPatches, kParticles, kSteps);
  machine.run([&](Pe& pe) {
    if (pe.rank() == 0) app.start(pe);
  });
  return {app.digest(), app.final_energy(), app.finished()};
}

TEST(Recovery, FftSurvivesCrashBitIdentical) {
  const FftResult ref = run_fft(ft_config());
  ASSERT_TRUE(ref.finished);

  // Kill process 1 once the 150th application message is sent — a
  // deterministic point a few iterations in, well past the seed
  // checkpoint at the first step boundary.
  MachineConfig cfg = ft_config();
  cfg.faults = FaultPlan::parse("crash@1:150msg");
  Machine machine(cfg);
  Runtime rt(machine);
  FtFft2D app(rt, kGrid, kElems, kIters);
  machine.run([&](Pe& pe) {
    if (pe.rank() == 0) app.start(pe);
  });

  ASSERT_TRUE(app.finished()) << "the crashed run must still complete";
  EXPECT_TRUE(machine.process_killed(1));
  EXPECT_TRUE(machine.process_dead(1)) << "heartbeat silence declared it";
  auto* mgr = machine.ft_manager();
  ASSERT_NE(mgr, nullptr);
  EXPECT_GE(mgr->crashes_fired(), 1u);
  EXPECT_GE(mgr->recoveries(), 1u);
  EXPECT_GE(mgr->checkpoints(), 1u);
  EXPECT_EQ(app.digest(), ref.digest)
      << "rollback + replay must reproduce the crash-free run exactly";
  EXPECT_EQ(app.final_total(), ref.total);

  const auto report = machine.metrics_report();
  EXPECT_GE(report.value("ft.recoveries"), 1u);
  EXPECT_GE(report.value("ft.crashes"), 1u);
  EXPECT_GT(report.value("ft.checkpoint_bytes"), 0u);
  EXPECT_GT(report.value("net.blackholed"), 0u);
}

TEST(Recovery, FftSurvivesLeaderCrash) {
  // Process 0 hosts the protocol leader AND the reduction root: killing
  // it forces leadership + reduction re-homing onto the survivors.
  const FftResult ref = run_fft(ft_config());
  ASSERT_TRUE(ref.finished);

  MachineConfig cfg = ft_config();
  cfg.faults = FaultPlan::parse("crash@0:150msg");
  Machine machine(cfg);
  Runtime rt(machine);
  FtFft2D app(rt, kGrid, kElems, kIters);
  machine.run([&](Pe& pe) {
    if (pe.rank() == 0) app.start(pe);
  });

  ASSERT_TRUE(app.finished());
  EXPECT_TRUE(machine.process_dead(0));
  EXPECT_NE(machine.lowest_live_pe(), 0u) << "leadership moved";
  EXPECT_GE(machine.ft_manager()->recoveries(), 1u);
  EXPECT_EQ(app.digest(), ref.digest);
  EXPECT_EQ(app.final_total(), ref.total);
}

TEST(Recovery, MdSurvivesCrashBitIdentical) {
  const MdResult ref = run_md(ft_config());
  ASSERT_TRUE(ref.finished);

  MachineConfig cfg = ft_config();
  cfg.faults = FaultPlan::parse("crash@2:100msg");
  Machine machine(cfg);
  Runtime rt(machine);
  FtMdRing app(rt, kPatches, kParticles, kSteps);
  machine.run([&](Pe& pe) {
    if (pe.rank() == 0) app.start(pe);
  });

  ASSERT_TRUE(app.finished());
  EXPECT_GE(machine.ft_manager()->recoveries(), 1u);
  EXPECT_EQ(app.digest(), ref.digest);
  EXPECT_EQ(app.final_energy(), ref.energy);
}

TEST(Recovery, ReductionDeliversExactlyOneCorrectTotalAcrossCrash) {
  // Satellite: a sum reduction interrupted by a crash must deliver
  // exactly one, correct total.  Every MD step ends in an energy
  // reduction; the crash lands mid-step, so contributions from the
  // pre-rollback attempt race the replayed ones.  The per-element
  // contribution slots either dropped them as duplicates or the epoch
  // guard discarded them — either way the final energy is bit-identical
  // and each step advanced exactly once (else the digest would diverge).
  const MdResult ref = run_md(ft_config());
  ASSERT_TRUE(ref.finished);

  MachineConfig cfg = ft_config();
  cfg.faults = FaultPlan::parse("crash@1:110msg");
  Machine machine(cfg);
  Runtime rt(machine);
  FtMdRing app(rt, kPatches, kParticles, kSteps);
  machine.run([&](Pe& pe) {
    if (pe.rank() == 0) app.start(pe);
  });

  ASSERT_TRUE(app.finished());
  EXPECT_GE(machine.ft_manager()->recoveries(), 1u);
  EXPECT_EQ(app.final_energy(), ref.energy)
      << "a double-folded or lost contribution would change the total";
  EXPECT_EQ(app.digest(), ref.digest)
      << "a double-delivered total would double-advance a step";
}

TEST(Recovery, CheckpointingIsTransparentWhenNothingCrashes) {
  // FT machinery on, no failures: periodic checkpoints must not perturb
  // the computation relative to a plain (FT-off) machine.
  MachineConfig plain;
  plain.nodes = 4;
  plain.mode = Mode::kSmp;
  plain.workers_per_process = 1;
  const FftResult ref = run_fft(plain);
  ASSERT_TRUE(ref.finished);

  const FftResult ft = run_fft(ft_config());
  ASSERT_TRUE(ft.finished);
  EXPECT_EQ(ft.digest, ref.digest);
  EXPECT_EQ(ft.total, ref.total);
}

TEST(Recovery, WatchdogDetectsHangWhenCheckpointingIsDisabled) {
  // Same crash, no checkpoint/restart protocol: the machine cannot heal,
  // so the hang watchdog must notice the stalled progress, dump
  // diagnostics, and stop the run (watchdog_abort=false keeps ctest
  // alive; production default aborts).
  MachineConfig cfg;
  cfg.nodes = 4;
  cfg.mode = Mode::kSmp;
  cfg.workers_per_process = 1;
  cfg.ft.enabled = false;
  cfg.ft.watchdog_ms = 60;
  cfg.ft.watchdog_abort = false;
  cfg.faults = FaultPlan::parse("crash@1:60msg");
  ASSERT_TRUE(cfg.ft.armed());

  Machine machine(cfg);
  Runtime rt(machine);
  FtFft2D app(rt, kGrid, kElems, /*iters=*/1000);  // can't finish pre-crash
  machine.run([&](Pe& pe) {
    if (pe.rank() == 0) app.start(pe);
  });

  EXPECT_FALSE(app.finished());
  auto* mgr = machine.ft_manager();
  ASSERT_NE(mgr, nullptr);
  EXPECT_GE(mgr->crashes_fired(), 1u);
  EXPECT_TRUE(mgr->hang_detected());
  EXPECT_GE(mgr->watchdog_dumps(), 1u);
  EXPECT_GE(machine.metrics_report().value("ft.watchdog_dumps"), 1u);
}

}  // namespace
