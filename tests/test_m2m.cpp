// Tests for the CmiDirectManytomany engine (src/m2m): all-to-all and
// neighbour exchanges in every runtime mode, persistence across epochs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "converse/machine.hpp"
#include "m2m/manytomany.hpp"

namespace {

using bgq::cvs::Machine;
using bgq::cvs::MachineConfig;
using bgq::cvs::Mode;
using bgq::cvs::Pe;
using bgq::cvs::PeRank;
using bgq::m2m::Coordinator;
using bgq::m2m::Handle;

MachineConfig config(Mode mode, std::size_t nodes = 2, unsigned workers = 2) {
  MachineConfig cfg;
  cfg.nodes = nodes;
  cfg.mode = mode;
  cfg.workers_per_process = workers;
  cfg.processes_per_node = workers;  // same PE count in non-SMP
  cfg.comm_threads = 1;
  return cfg;
}

/// Full all-to-all of one double per pair, repeated `epochs` times.
/// Verifies every element lands at its registered slot with correct data.
void run_alltoall(MachineConfig cfg, int epochs) {
  Machine machine(cfg);
  Coordinator coord(machine);
  const auto npes = static_cast<PeRank>(machine.pe_count());
  constexpr std::uint32_t kTag = 1;

  // Per-PE buffers: send[j] = my_rank*1000 + j + epoch; recv[j] from PE j.
  std::vector<std::vector<double>> send_bufs(npes, std::vector<double>(npes));
  std::vector<std::vector<double>> recv_bufs(npes, std::vector<double>(npes));

  for (PeRank r = 0; r < npes; ++r) {
    Handle& h = coord.create(r, kTag, npes, npes);
    h.set_send_base(reinterpret_cast<const std::byte*>(send_bufs[r].data()));
    h.set_recv_base(reinterpret_cast<std::byte*>(recv_bufs[r].data()));
    for (PeRank j = 0; j < npes; ++j) {
      // Send entry j goes to PE j, filling its slot r (data from r).
      h.set_send(j, j, r, j * sizeof(double), sizeof(double));
      h.set_recv(j, j * sizeof(double), sizeof(double));
    }
  }

  std::atomic<int> failures{0};
  std::atomic<int> epochs_done{0};

  machine.run([&](Pe& pe) {
    Handle& h = coord.handle(pe.rank(), kTag);
    for (int e = 1; e <= epochs; ++e) {
      for (PeRank j = 0; j < npes; ++j) {
        send_bufs[pe.rank()][j] = pe.rank() * 1000.0 + j + e;
      }
      pe.barrier();  // everyone's data ready before anyone starts
      h.start();
      while (!h.recv_done(static_cast<std::uint64_t>(e)) ||
             !h.send_done(static_cast<std::uint64_t>(e))) {
        // Keep the network progressing in no-comm modes; yield so comm
        // threads get cycles on hosts with fewer cores than threads.
        if (!pe.pump_one()) std::this_thread::yield();
      }
      for (PeRank j = 0; j < npes; ++j) {
        if (recv_bufs[pe.rank()][j] != j * 1000.0 + pe.rank() + e) {
          failures.fetch_add(1);
        }
      }
      pe.barrier();  // epoch fully checked before the next one starts
    }
    if (epochs_done.fetch_add(1) + 1 == static_cast<int>(npes)) {
      pe.exit_all();
    }
  });

  EXPECT_EQ(failures.load(), 0);
}

class M2MAllModes : public ::testing::TestWithParam<Mode> {};

TEST_P(M2MAllModes, AllToAllSingleEpoch) { run_alltoall(config(GetParam()), 1); }

TEST_P(M2MAllModes, AllToAllPersistentAcrossEpochs) {
  run_alltoall(config(GetParam()), 5);
}

INSTANTIATE_TEST_SUITE_P(Modes, M2MAllModes,
                         ::testing::Values(Mode::kNonSmp, Mode::kSmp,
                                           Mode::kSmpCommThreads),
                         [](const auto& info) {
                           switch (info.param) {
                             case Mode::kNonSmp: return "NonSmp";
                             case Mode::kSmp: return "Smp";
                             default: return "SmpCommThreads";
                           }
                         });

TEST(M2M, LargeChunksTakeTwoDescriptorPath) {
  // Chunks beyond the immediate limit must still arrive intact.
  MachineConfig cfg = config(Mode::kSmp);
  Machine machine(cfg);
  Coordinator coord(machine);
  const auto npes = static_cast<PeRank>(machine.pe_count());
  constexpr std::size_t kChunk = 8192;

  std::vector<std::vector<unsigned char>> send_bufs(
      npes, std::vector<unsigned char>(kChunk));
  std::vector<std::vector<unsigned char>> recv_bufs(
      npes, std::vector<unsigned char>(kChunk));

  // Ring: each PE sends one big chunk to (rank+1) % npes.
  for (PeRank r = 0; r < npes; ++r) {
    Handle& h = coord.create(r, 9, 1, 1);
    h.set_send_base(reinterpret_cast<const std::byte*>(send_bufs[r].data()));
    h.set_recv_base(reinterpret_cast<std::byte*>(recv_bufs[r].data()));
    h.set_send(0, (r + 1) % npes, 0, 0, kChunk);
    h.set_recv(0, 0, kChunk);
    std::memset(send_bufs[r].data(), 0x40 + r, kChunk);
  }

  std::atomic<int> bad{0};
  std::atomic<int> done{0};
  machine.run([&](Pe& pe) {
    Handle& h = coord.handle(pe.rank(), 9);
    pe.barrier();
    h.start();
    while (!h.recv_done(1)) {
      if (!pe.pump_one()) std::this_thread::yield();
    }
    const auto expect = static_cast<unsigned char>(
        0x40 + (pe.rank() + npes - 1) % npes);
    for (std::size_t i = 0; i < kChunk; i += 777) {
      if (recv_bufs[pe.rank()][i] != expect) bad.fetch_add(1);
    }
    if (done.fetch_add(1) + 1 == static_cast<int>(npes)) pe.exit_all();
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(M2M, CompletionCallbacksFireOncePerEpoch) {
  MachineConfig cfg = config(Mode::kSmp, 2, 1);
  Machine machine(cfg);
  Coordinator coord(machine);
  const auto npes = static_cast<PeRank>(machine.pe_count());
  ASSERT_EQ(npes, 2u);

  std::vector<double> bufs[2] = {std::vector<double>(1),
                                 std::vector<double>(1)};
  std::vector<double> rbufs[2] = {std::vector<double>(1),
                                  std::vector<double>(1)};
  std::atomic<int> send_cbs{0}, recv_cbs{0};

  for (PeRank r = 0; r < 2; ++r) {
    Handle& h = coord.create(r, 2, 1, 1);
    h.set_send_base(reinterpret_cast<const std::byte*>(bufs[r].data()));
    h.set_recv_base(reinterpret_cast<std::byte*>(rbufs[r].data()));
    h.set_send(0, 1 - r, 0, 0, sizeof(double));
    h.set_recv(0, 0, sizeof(double));
    h.on_sends_done = [&] { send_cbs.fetch_add(1); };
    h.on_recvs_done = [&] { recv_cbs.fetch_add(1); };
  }

  constexpr int kEpochs = 3;
  std::atomic<int> done{0};
  machine.run([&](Pe& pe) {
    Handle& h = coord.handle(pe.rank(), 2);
    for (int e = 1; e <= kEpochs; ++e) {
      pe.barrier();
      h.start();
      while (!h.recv_done(e) || !h.send_done(e)) {
        if (!pe.pump_one()) std::this_thread::yield();
      }
      pe.barrier();
    }
    if (done.fetch_add(1) + 1 == 2) pe.exit_all();
  });

  EXPECT_EQ(send_cbs.load(), 2 * kEpochs);
  EXPECT_EQ(recv_cbs.load(), 2 * kEpochs);
}

TEST(M2M, ChunkSizeMismatchDetected) {
  MachineConfig cfg = config(Mode::kSmp, 2, 2);
  Machine machine(cfg);
  Coordinator coord(machine);
  Handle& h0 = coord.create(0, 3, 1, 0);
  coord.create(1, 3, 0, 1).set_recv(0, 0, 16);  // expects 16 bytes

  std::vector<std::byte> buf(8);
  h0.set_send_base(buf.data());
  h0.set_send(0, 1, 0, 0, 8);  // sends 8: mismatch (intra-process => inline)
  EXPECT_THROW(h0.start(), std::logic_error);
}

TEST(M2M, DuplicateHandleRejected) {
  MachineConfig cfg = config(Mode::kSmp);
  Machine machine(cfg);
  Coordinator coord(machine);
  coord.create(0, 5, 1, 1);
  EXPECT_THROW(coord.create(0, 5, 1, 1), std::logic_error);
  EXPECT_THROW(coord.handle(0, 99), std::logic_error);
}

}  // namespace
