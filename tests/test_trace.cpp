// Unit + integration tests for the tracing & metrics subsystem
// (src/trace): ring wrap/drop accounting, cross-thread flush ordering,
// the counter registry, span reconstruction, and both exporters — the
// Chrome trace_event JSON is parsed with the strict test-side parser and
// checked for begin/end pairing, per-PE tracks, monotonic timestamps and
// drop counters.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "converse/machine.hpp"
#include "json_util.hpp"
#include "trace/trace.hpp"

namespace {

using bgq::trace::Event;
using bgq::trace::EventKind;
using bgq::trace::EventRing;
using bgq::trace::FlatTrace;
using bgq::trace::Registry;
using bgq::trace::Session;
using bgq::trace::Track;

// ---- ring -----------------------------------------------------------------

TEST(TraceRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(EventRing(5).capacity(), 8u);
  EXPECT_EQ(EventRing(8).capacity(), 8u);
  EXPECT_EQ(EventRing(1).capacity(), 2u);
}

TEST(TraceRing, DropsNewestWhenFullAndCounts) {
  EventRing ring(4);
  for (std::uint32_t i = 0; i < 10; ++i) {
    const bool ok = ring.emit({i, i, EventKind::kUser});
    EXPECT_EQ(ok, i < 4) << "event " << i;
  }
  EXPECT_EQ(ring.emitted(), 4u);
  EXPECT_EQ(ring.dropped(), 6u);

  // The survivors are the *oldest* four, in emission order — drop-newest,
  // never overwrite (the Projections rule: tracing must not disturb what
  // already happened).
  std::vector<Event> out;
  EXPECT_EQ(ring.drain(out), 4u);
  ASSERT_EQ(out.size(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) EXPECT_EQ(out[i].arg, i);
}

TEST(TraceRing, FifoAcrossInterleavedDrains) {
  EventRing ring(4);
  std::vector<Event> out;
  std::uint32_t next = 0;
  for (int round = 0; round < 50; ++round) {
    for (int k = 0; k < 3; ++k) {
      ring.emit({next, next, EventKind::kUser});
      ++next;
    }
    ring.drain(out);
  }
  EXPECT_EQ(ring.dropped(), 0u);
  ASSERT_EQ(out.size(), next);
  for (std::uint32_t i = 0; i < next; ++i) EXPECT_EQ(out[i].arg, i);
}

TEST(TraceRing, ConcurrentFlushLosesNothing) {
  // One producer hammers a tiny ring while the consumer drains
  // concurrently: everything emitted is either drained (in FIFO order) or
  // accounted as dropped — never silently lost, never duplicated.
  constexpr std::uint32_t kAttempts = 200000;
  EventRing ring(8);
  std::vector<Event> drained;
  std::atomic<bool> producing{true};

  std::thread producer([&] {
    for (std::uint32_t i = 0; i < kAttempts; ++i) {
      ring.emit({i, i, EventKind::kUser});
    }
    producing.store(false, std::memory_order_release);
  });
  while (producing.load(std::memory_order_acquire)) ring.drain(drained);
  ring.drain(drained);
  producer.join();
  ring.drain(drained);

  EXPECT_EQ(drained.size() + ring.dropped(), kAttempts);
  for (std::size_t i = 1; i < drained.size(); ++i) {
    ASSERT_LT(drained[i - 1].arg, drained[i].arg) << "FIFO violated at " << i;
  }
}

// ---- session --------------------------------------------------------------

TEST(TraceSession, DisabledSessionIsInert) {
  Session session(false);
  EXPECT_FALSE(session.enabled());
  EXPECT_EQ(session.make_ring(0, 0, "pe0"), nullptr);
  // Emitting through an unbound thread is a no-op, not a crash.
  Session::bind_thread(nullptr);
  bgq::trace::emit_here(EventKind::kUser, 7);
  EXPECT_EQ(session.collect().total_events(), 0u);
}

TEST(TraceSession, CollectAccumulatesFifoAcrossCollects) {
  Session session(true, 16);
  EventRing* a = session.make_ring(0, 0, "pe0");
  EventRing* b = session.make_ring(0, 1, "pe1");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  a->emit({10, 1, EventKind::kUser});
  b->emit({11, 2, EventKind::kUser});
  session.collect();
  a->emit({12, 3, EventKind::kUser});
  const FlatTrace& flat = session.collect();

  ASSERT_EQ(flat.tracks.size(), 2u);
  EXPECT_EQ(flat.tracks[0].name, "pe0");
  EXPECT_EQ(flat.tracks[0].pid, 0u);
  EXPECT_EQ(flat.tracks[0].tid, 0u);
  ASSERT_EQ(flat.tracks[0].events.size(), 2u);
  EXPECT_EQ(flat.tracks[0].events[0].arg, 1u);
  EXPECT_EQ(flat.tracks[0].events[1].arg, 3u);
  ASSERT_EQ(flat.tracks[1].events.size(), 1u);
  EXPECT_EQ(flat.tracks[1].events[0].arg, 2u);
  EXPECT_EQ(flat.total_events(), 3u);
}

TEST(TraceSession, CrossThreadFlushOrdering) {
  // Each of three worker threads binds its own ring and emits a strictly
  // increasing sequence while the main thread collects concurrently; the
  // accumulated per-track streams must preserve each thread's order.
  constexpr int kThreads = 3;
  constexpr std::uint32_t kPerThread = 20000;
  Session session(true, 1 << 16);
  std::vector<EventRing*> rings;
  for (int t = 0; t < kThreads; ++t) {
    rings.push_back(session.make_ring(0, static_cast<std::uint32_t>(t),
                                      "w" + std::to_string(t)));
  }

  std::atomic<int> live{kThreads};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Session::bind_thread(rings[t]);
      for (std::uint32_t i = 0; i < kPerThread; ++i) {
        bgq::trace::emit_here(EventKind::kUser, i);
      }
      live.fetch_sub(1, std::memory_order_release);
    });
  }
  while (live.load(std::memory_order_acquire) != 0) session.collect();
  for (auto& w : workers) w.join();
  const FlatTrace& flat = session.collect();

  ASSERT_EQ(flat.tracks.size(), static_cast<std::size_t>(kThreads));
  for (const Track& tr : flat.tracks) {
    EXPECT_EQ(tr.events.size() + tr.dropped, kPerThread) << tr.name;
    for (std::size_t i = 1; i < tr.events.size(); ++i) {
      ASSERT_LT(tr.events[i - 1].arg, tr.events[i].arg)
          << tr.name << " out of order at " << i;
    }
  }
}

// ---- registry -------------------------------------------------------------

TEST(TraceRegistry, ShardTotalsAndGauges) {
  Registry reg;
  const Registry::Id sent = reg.intern("pe.msgs.sent");
  const Registry::Id exec = reg.intern("pe.msgs.executed");
  EXPECT_EQ(reg.intern("pe.msgs.sent"), sent) << "intern is idempotent";
  EXPECT_EQ(reg.counter_count(), 2u);

  Registry::Shard* s0 = reg.make_shard("pe0");
  Registry::Shard* s1 = reg.make_shard("pe1");
  s0->add(sent, 3);
  s1->add(sent, 4);
  s1->add(exec);
  EXPECT_EQ(reg.total("pe.msgs.sent"), 7u);
  EXPECT_EQ(reg.total("pe.msgs.executed"), 1u);
  EXPECT_EQ(reg.total("no.such.counter"), 0u);

  reg.set_gauge("comm.parks", 5);
  reg.set_gauge("comm.parks", 9);  // overwrite, not accumulate
  EXPECT_EQ(reg.total("comm.parks"), 9u);
  // A gauge sharing a counter's name adds into its total.
  reg.set_gauge("pe.msgs.sent", 100);
  EXPECT_EQ(reg.total("pe.msgs.sent"), 107u);
}

TEST(TraceRegistry, ReportIsNameSorted) {
  Registry reg;
  const Registry::Id z = reg.intern("z.last");
  const Registry::Id a = reg.intern("a.first");
  Registry::Shard* s = reg.make_shard("pe0");
  s->add(z, 2);
  s->add(a, 1);
  reg.set_gauge("m.middle", 7);

  const bgq::trace::Report r = reg.report();
  ASSERT_EQ(r.entries.size(), 3u);
  EXPECT_EQ(r.entries[0].first, "a.first");
  EXPECT_EQ(r.entries[1].first, "m.middle");
  EXPECT_EQ(r.entries[2].first, "z.last");
  EXPECT_EQ(r.value("m.middle"), 7u);
  EXPECT_TRUE(r.has("z.last"));
  EXPECT_FALSE(r.has("nope"));
}

// ---- span reconstruction --------------------------------------------------

TEST(TraceSummary, ExtractSpansMatchesInnermostFirst) {
  Track tr;
  tr.events = {
      {100, 1, EventKind::kPhaseBegin},  // outer
      {110, 2, EventKind::kPhaseBegin},  // inner
      {120, 2, EventKind::kPhaseEnd},
      {130, 0, EventKind::kMsgDequeue},  // noise between spans
      {140, 1, EventKind::kPhaseEnd},
      {150, 3, EventKind::kPhaseBegin},  // unmatched begin: ignored
  };
  const auto spans = bgq::trace::extract_spans(tr, EventKind::kPhaseBegin);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].arg, 2u);  // inner closes first
  EXPECT_EQ(spans[0].t0, 110u);
  EXPECT_EQ(spans[0].t1, 120u);
  EXPECT_EQ(spans[1].arg, 1u);
  EXPECT_EQ(spans[1].duration_ns(), 40u);
}

// ---- Chrome export --------------------------------------------------------

// Walk a parsed trace_event document: checks the container shape, per-track
// B/E stack discipline, monotonic timestamps in emission order, and returns
// (track → dropped-counter value) for the caller to inspect.
std::map<std::pair<double, double>, double> validate_chrome(
    const bgq::testjson::Value& doc) {
  EXPECT_TRUE(doc.is_object());
  const auto& events = doc.at("traceEvents");
  EXPECT_TRUE(events.is_array());

  std::map<std::pair<double, double>, std::vector<std::string>> stacks;
  std::map<std::pair<double, double>, double> last_ts;
  std::map<std::pair<double, double>, double> dropped;

  for (const auto& ev : events.arr) {
    EXPECT_TRUE(ev->is_object());
    const std::string ph = ev->at("ph").str;
    const std::pair<double, double> track{ev->at("pid").num,
                                          ev->at("tid").num};
    if (ph == "M") continue;  // metadata carries no ts
    if (ph == "C") {
      EXPECT_EQ(ev->at("name").str, "dropped");
      dropped[track] = ev->at("args").at("events").num;
      continue;
    }
    const double ts = ev->at("ts").num;
    EXPECT_GE(ts, 0.0);
    auto it = last_ts.find(track);
    if (it != last_ts.end()) {
      EXPECT_GE(ts, it->second) << "ts went backwards on a track";
    }
    last_ts[track] = ts;
    const std::string name = ev->at("name").str;
    if (ph == "B") {
      stacks[track].push_back(name);
    } else if (ph == "E") {
      auto& st = stacks[track];
      if (st.empty()) {
        ADD_FAILURE() << "E without open B for " << name;
        continue;
      }
      EXPECT_EQ(st.back(), name) << "E closes the wrong span";
      st.pop_back();
    } else {
      EXPECT_EQ(ph, "i") << "unexpected phase " << ph;
    }
  }
  for (const auto& [track, st] : stacks) {
    EXPECT_TRUE(st.empty()) << "unclosed span left on a track";
  }
  return dropped;
}

TEST(TraceChromeExport, SyntheticTraceIsValidAndBalanced) {
  Session session(true, 8);
  EventRing* pe0 = session.make_ring(0, 0, "pe0");
  EventRing* pe1 = session.make_ring(0, 1, "pe1");

  pe0->emit({100, 0, EventKind::kHandlerBegin});
  pe0->emit({150, 0, EventKind::kMsgEnqueue});
  pe0->emit({200, 0, EventKind::kHandlerEnd});
  pe0->emit({210, 0, EventKind::kIdleBegin});  // truncated span: writer
                                               // must auto-close it
  pe1->emit({120, 1, EventKind::kHandlerBegin});
  pe1->emit({130, 1, EventKind::kHandlerEnd});
  pe1->emit({140, 9, EventKind::kHandlerEnd});  // orphan E: writer drops it
  // Overflow pe1's 8-slot ring so its drop counter is non-zero.
  for (std::uint32_t i = 0; i < 12; ++i) {
    pe1->emit({150 + i, i, EventKind::kUser});
  }

  std::ostringstream os;
  bgq::trace::write_chrome_trace(os, session.collect());
  const auto doc = bgq::testjson::parse(os.str());
  const auto dropped = validate_chrome(*doc);

  ASSERT_EQ(dropped.size(), 2u) << "one counter series per track";
  EXPECT_EQ(dropped.at({0.0, 0.0}), 0.0);
  EXPECT_EQ(dropped.at({0.0, 1.0}), 7.0);  // 12 + 3 emits into 8 slots

  // Both tracks are named via thread_name metadata.
  std::vector<std::string> names;
  for (const auto& ev : doc->at("traceEvents").arr) {
    if (ev->at("ph").str == "M") {
      EXPECT_EQ(ev->at("name").str, "thread_name");
      names.push_back(ev->at("args").at("name").str);
    }
  }
  EXPECT_EQ(names, (std::vector<std::string>{"pe0", "pe1"}));
}

TEST(TraceChromeExport, MachinePingPongEndToEnd) {
  using bgq::cvs::Machine;
  using bgq::cvs::MachineConfig;
  using bgq::cvs::Message;
  using bgq::cvs::Mode;
  using bgq::cvs::Pe;

  MachineConfig cfg;
  cfg.nodes = 2;
  cfg.mode = Mode::kSmp;
  cfg.workers_per_process = 2;
  cfg.processes_per_node = 1;
  cfg.trace_events = true;
  Machine machine(cfg);
  const auto last = static_cast<bgq::cvs::PeRank>(machine.pe_count() - 1);

  constexpr int kRounds = 50;
  std::atomic<int> bounces{0};
  const bgq::cvs::HandlerId bounce = machine.register_handler(
      [&, last](Pe& pe, Message* m) {
        if (bounces.fetch_add(1) + 1 >= kRounds) {
          pe.free_message(m);
          pe.exit_all();
          return;
        }
        pe.send_message(pe.rank() == 0 ? last : 0, m);
      });
  machine.run([&, last](Pe& pe) {
    if (pe.rank() != 0) return;
    pe.send_message(last, pe.alloc_message(32, bounce));
  });

  std::ostringstream os;
  machine.write_chrome_trace(os);
  const auto doc = bgq::testjson::parse(os.str());
  validate_chrome(*doc);

  // Per-PE tracks: every worker got a named track, and the two ping-pong
  // endpoints actually recorded handler slices.
  std::map<std::string, std::pair<double, double>> track_of;
  std::map<std::pair<double, double>, int> handler_begins;
  for (const auto& ev : doc->at("traceEvents").arr) {
    const std::pair<double, double> track{ev->at("pid").num,
                                          ev->at("tid").num};
    if (ev->at("ph").str == "M") {
      track_of[ev->at("args").at("name").str] = track;
    } else if (ev->at("ph").str == "B" && ev->at("name").str == "handler") {
      ++handler_begins[track];
    }
  }
  for (std::size_t pe = 0; pe < machine.pe_count(); ++pe) {
    EXPECT_TRUE(track_of.count("pe" + std::to_string(pe)))
        << "missing track for pe" << pe;
  }
  EXPECT_GE(handler_begins[track_of["pe0"]], kRounds / 2 - 1);
  EXPECT_GE(handler_begins[track_of["pe" + std::to_string(last)]],
            kRounds / 2 - 1);

  // The counter registry saw the same traffic the timeline recorded.
  EXPECT_GE(machine.metrics().total("pe.msgs.executed"),
            static_cast<std::uint64_t>(kRounds));
}

// ---- summary export -------------------------------------------------------

TEST(TraceSummary, SummaryJsonRoundTrips) {
  Session session(true, 64);
  EventRing* pe0 = session.make_ring(0, 0, "pe0");
  pe0->emit({100, 3, EventKind::kHandlerBegin});
  pe0->emit({400, 3, EventKind::kHandlerEnd});
  pe0->emit({400, 0, EventKind::kIdleBegin});
  pe0->emit({500, 0, EventKind::kIdleEnd});

  const auto summary = bgq::trace::summarize(session.collect());
  ASSERT_EQ(summary.tracks.size(), 1u);
  EXPECT_EQ(summary.tracks[0].events, 4u);
  EXPECT_DOUBLE_EQ(summary.tracks[0].busy_fraction, 300.0 / 400.0);
  EXPECT_EQ(summary.tracks[0].handler_ns.count(), 1u);
  EXPECT_DOUBLE_EQ(summary.tracks[0].handler_ns.mean(), 300.0);

  bgq::trace::Registry reg;
  const auto id = reg.intern("pe.msgs.executed");
  reg.make_shard("pe0")->add(id, 42);
  const auto counters = reg.report();

  std::ostringstream os;
  bgq::trace::write_summary_json(os, summary, &counters);
  const auto doc = bgq::testjson::parse(os.str());
  EXPECT_EQ(doc->at("schema").str, "bgq-trace-summary-v1");
  EXPECT_EQ(doc->at("total_events").num, 4.0);
  EXPECT_EQ(doc->at("total_dropped").num, 0.0);
  ASSERT_EQ(doc->at("tracks").arr.size(), 1u);
  const auto& t0 = *doc->at("tracks").arr[0];
  EXPECT_EQ(t0.at("name").str, "pe0");
  EXPECT_EQ(t0.at("kinds").at("handler").num, 1.0);
  EXPECT_EQ(doc->at("counters").at("pe.msgs.executed").num, 42.0);
}

}  // namespace
