// Tests for src/common utilities.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/cacheline.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/timing.hpp"

namespace {

TEST(Cacheline, AlignUp) {
  EXPECT_EQ(bgq::align_up(0, 64), 0u);
  EXPECT_EQ(bgq::align_up(1, 64), 64u);
  EXPECT_EQ(bgq::align_up(64, 64), 64u);
  EXPECT_EQ(bgq::align_up(65, 64), 128u);
}

TEST(Cacheline, Pow2Helpers) {
  EXPECT_TRUE(bgq::is_pow2(1));
  EXPECT_TRUE(bgq::is_pow2(64));
  EXPECT_FALSE(bgq::is_pow2(0));
  EXPECT_FALSE(bgq::is_pow2(12));
  EXPECT_EQ(bgq::next_pow2(1), 1u);
  EXPECT_EQ(bgq::next_pow2(3), 4u);
  EXPECT_EQ(bgq::next_pow2(64), 64u);
  EXPECT_EQ(bgq::next_pow2(65), 128u);
}

TEST(Cacheline, PaddedIsolatesLines) {
  bgq::Padded<int> a, b;
  EXPECT_GE(sizeof(a), bgq::kL2Line);
  *a = 1;
  *b = 2;
  EXPECT_EQ(*a, 1);
  EXPECT_EQ(*b, 2);
}

TEST(Rng, DeterministicForSameSeed) {
  bgq::Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  bgq::Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange) {
  bgq::Xoshiro256 r(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, BelowCoversFullRangeWithoutBias) {
  bgq::Xoshiro256 r(7);
  std::set<std::uint64_t> seen;
  int counts[7] = {};
  for (int i = 0; i < 70000; ++i) {
    const auto v = r.below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
    ++counts[v];
  }
  EXPECT_EQ(seen.size(), 7u);
  for (int c : counts) {
    EXPECT_GT(c, 8000);
    EXPECT_LT(c, 12000);
  }
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  bgq::Xoshiro256 r(11);
  double sum = 0, sq = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double g = r.gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sq / kN, 1.0, 0.03);
}

TEST(Stats, RunningStatsBasic) {
  bgq::RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(Stats, MergeMatchesCombinedStream) {
  bgq::RunningStats a, b, all;
  bgq::Xoshiro256 r(3);
  for (int i = 0; i < 500; ++i) {
    const double x = r.uniform(0, 10);
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Stats, SampleSetPercentiles) {
  bgq::SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(s.percentile(90), 90.1, 1e-9);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
}

TEST(Stats, EmptySetsAreSafe) {
  bgq::SampleSet s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.median(), 0.0);
  bgq::RunningStats rs;
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.stddev(), 0.0);
}

TEST(Timing, TimerMeasuresForwardTime) {
  bgq::Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + std::sqrt(i);
  EXPECT_GT(t.elapsed_ns(), 0u);
  EXPECT_GE(t.elapsed_us(), 0.0);
  (void)sink;
}

TEST(Table, PrintsAlignedRows) {
  bgq::TextTable tbl({"nodes", "p2p", "m2m"});
  tbl.row(64, 3030, 1826);
  tbl.row(1024, 1560, 583);
  std::ostringstream ss;
  tbl.print(ss);
  const std::string out = ss.str();
  EXPECT_NE(out.find("nodes"), std::string::npos);
  EXPECT_NE(out.find("3030"), std::string::npos);
  EXPECT_NE(out.find("1826"), std::string::npos);
  EXPECT_NE(out.find("583"), std::string::npos);
}

}  // namespace
