// Unit tests for the fault-tolerance building blocks (src/ft): the pup
// serializer, the double in-memory checkpoint store, crash-event parsing
// in fault plans, the metrics-epoch reset, and the machine-level failure
// primitives (kill_process, blackholing, the liveness-aware barrier).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "converse/machine.hpp"
#include "ft/pup.hpp"
#include "ft/store.hpp"
#include "net/fault.hpp"
#include "trace/registry.hpp"

namespace {

using bgq::cvs::Machine;
using bgq::cvs::MachineConfig;
using bgq::cvs::Mode;
using bgq::cvs::Pe;
using bgq::ft::CheckpointStore;
using bgq::ft::Pup;
using bgq::net::FaultPlan;

// ---------------------------------------------------------------------------
// Pup
// ---------------------------------------------------------------------------

TEST(Pup, RoundTripsScalarsAndVectors) {
  Pup pack;
  std::uint32_t a = 0xDEADBEEF;
  double b = 3.25;
  std::vector<double> v{1.0, -2.5, 1e300};
  pack(a);
  pack(b);
  pack.vec(v);

  std::uint32_t a2 = 0;
  double b2 = 0;
  std::vector<double> v2;
  Pup unpack(pack.bytes());
  EXPECT_TRUE(unpack.unpacking());
  unpack(a2);
  unpack(b2);
  unpack.vec(v2);
  EXPECT_EQ(a2, a);
  EXPECT_EQ(b2, b);
  EXPECT_EQ(v2, v);
  EXPECT_EQ(unpack.remaining(), 0u);
}

TEST(Pup, TruncatedBlobThrowsInsteadOfReadingGarbage) {
  Pup pack;
  std::uint64_t x = 7;
  pack(x);
  std::vector<std::byte> cut(pack.bytes().begin(),
                             pack.bytes().end() - 1);
  Pup unpack(cut);
  std::uint64_t y = 0;
  EXPECT_THROW(unpack(y), std::out_of_range);
}

// ---------------------------------------------------------------------------
// CheckpointStore
// ---------------------------------------------------------------------------

std::vector<std::byte> blob(unsigned tag, std::size_t n = 8) {
  return std::vector<std::byte>(n, static_cast<std::byte>(tag));
}

TEST(CheckpointStore, CommitSealsAndLatestTracksNewest) {
  CheckpointStore st;
  EXPECT_EQ(st.latest_complete(), 0u);
  st.put(1, 0, 1, blob(10));
  EXPECT_EQ(st.latest_complete(), 0u) << "uncommitted epochs not restorable";
  st.commit(1);
  EXPECT_EQ(st.latest_complete(), 1u);
  st.put(2, 0, 1, blob(20));
  st.commit(2);
  EXPECT_EQ(st.latest_complete(), 2u);
}

TEST(CheckpointStore, KeepsOnlyTwoCommittedEpochs) {
  CheckpointStore st;
  for (std::uint64_t e = 1; e <= 3; ++e) {
    st.put(e, 0, 1, blob(static_cast<unsigned>(e)));
    st.commit(e);
  }
  std::vector<std::byte> out;
  EXPECT_FALSE(st.fetch(1, 0, out)) << "double buffering prunes epoch 1";
  EXPECT_TRUE(st.fetch(2, 0, out));
  EXPECT_TRUE(st.fetch(3, 0, out));
  EXPECT_EQ(out, blob(3));
}

TEST(CheckpointStore, BuddyCopySurvivesHolderDeath) {
  CheckpointStore st;
  st.put(1, 0, 1, blob(1));  // proc 0's state, held by 0 and buddy 1
  st.put(1, 1, 2, blob(2));
  st.put(1, 2, 0, blob(3));
  st.commit(1);

  st.drop_holder(0);  // process 0 dies: its resident copies vanish
  std::vector<std::byte> out;
  EXPECT_TRUE(st.fetch(1, 0, out)) << "proc 0's blob survives on buddy 1";
  EXPECT_EQ(out, blob(1));
  EXPECT_TRUE(st.fetch(1, 2, out)) << "proc 2's own copy is intact";
  EXPECT_EQ(st.procs(1), (std::vector<unsigned>{0, 1, 2}));

  st.drop_holder(1);  // both holders of proc 0's blob now dead
  EXPECT_FALSE(st.fetch(1, 0, out))
      << "a blob with no surviving holder is honestly unrecoverable";
}

TEST(CheckpointStore, ResidentBytesCountsEveryCopy) {
  CheckpointStore st;
  st.put(1, 0, 1, blob(1, 16));  // two copies
  st.put(1, 1, 1, blob(2, 8));   // buddy == proc: single copy
  EXPECT_EQ(st.resident_bytes(), 16u * 2 + 8u);
}

// ---------------------------------------------------------------------------
// FaultPlan crash events
// ---------------------------------------------------------------------------

TEST(FaultPlanCrash, ParsesWallClockAndMessageCountEvents) {
  const FaultPlan p =
      FaultPlan::parse("drop=0.01,crash@1:50ms,crash@2:100msg");
  EXPECT_DOUBLE_EQ(p.drop, 0.01);
  ASSERT_EQ(p.crashes.size(), 2u);
  EXPECT_EQ(p.crashes[0].process, 1u);
  EXPECT_EQ(p.crashes[0].at_ms, 50u);
  EXPECT_EQ(p.crashes[0].at_msgs, 0u);
  EXPECT_EQ(p.crashes[1].process, 2u);
  EXPECT_EQ(p.crashes[1].at_ms, 0u);
  EXPECT_EQ(p.crashes[1].at_msgs, 100u);
  EXPECT_TRUE(p.enabled());
}

TEST(FaultPlanCrash, CrashOnlyPlanIsEnabled) {
  EXPECT_TRUE(FaultPlan::parse("crash@0:5ms").enabled());
  EXPECT_FALSE(FaultPlan::parse("").enabled());
}

TEST(FaultPlanCrash, MalformedEventsThrowNamingTheToken) {
  // Satellite guarantee: a typo'd crash spec fails loudly, naming the
  // bad token, instead of silently testing nothing.
  try {
    FaultPlan::parse("crash@x:5ms");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find('x'), std::string::npos);
  }
  try {
    FaultPlan::parse("crash@1:5sec");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("5sec"), std::string::npos);
  }
  EXPECT_THROW(FaultPlan::parse("crash@1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("crash@1:"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("crash@1:0msg"), std::invalid_argument);
}

using FaultPlanCrashDeathTest = ::testing::Test;

TEST(FaultPlanCrashDeathTest, BadEnvPlanRejectsAndExits) {
  // from_env must reject-and-exit(2) with a diagnostic naming the token —
  // never run a chaos experiment with a silently-empty plan.
  EXPECT_EXIT(
      {
        setenv("BGQ_FAULT_PLAN", "crash@1:nonsense", 1);
        bgq::net::FaultPlan::from_env();
      },
      ::testing::ExitedWithCode(2), "BGQ_FAULT_PLAN rejected.*nonsense");
}

// ---------------------------------------------------------------------------
// Registry::reset_epoch
// ---------------------------------------------------------------------------

TEST(RegistryEpoch, ResetRebasesCountersAndGauges) {
  bgq::trace::Registry reg;
  const auto id = reg.intern("pe.msgs.executed");
  auto* shard = reg.make_shard("pe0");
  shard->add(id, 40);
  reg.set_gauge("ft.crashes", 2);
  EXPECT_EQ(reg.report().value("pe.msgs.executed"), 40u);
  EXPECT_EQ(reg.report().value("ft.crashes"), 2u);

  reg.reset_epoch();
  EXPECT_EQ(reg.report().value("pe.msgs.executed"), 0u)
      << "post-reset reports are relative to the reset instant";
  EXPECT_EQ(reg.report().value("ft.crashes"), 0u);

  shard->add(id, 7);
  reg.set_gauge("ft.crashes", 5);
  EXPECT_EQ(reg.report().value("pe.msgs.executed"), 7u);
  EXPECT_EQ(reg.report().value("ft.crashes"), 3u)
      << "gauge deltas are relative to their reset baseline";
  EXPECT_EQ(reg.total("pe.msgs.executed"), 7u);
}

// ---------------------------------------------------------------------------
// Machine failure primitives
// ---------------------------------------------------------------------------

TEST(MachineFt, KillProcessBlackholesAndBarrierSkipsTheDead) {
  MachineConfig cfg;
  cfg.nodes = 2;
  cfg.mode = Mode::kSmp;
  cfg.workers_per_process = 1;
  cfg.ft.enabled = true;
  cfg.ft.failure_timeout_ms = 100000;  // detector must not race this test
  cfg.ft.watchdog_abort = false;
  // Explicit (inert) plan: an FT-armed machine honors crash events, so a
  // CI-wide BGQ_FAULT_PLAN must not leak into this test.  Process 9 does
  // not exist; the event can never fire.
  cfg.faults = FaultPlan::parse("crash@9:1000000msg");
  Machine machine(cfg);
  const auto h = machine.register_handler(
      [](Pe& pe, bgq::cvs::Message* m) { pe.free_message(m); });

  machine.run([&](Pe& pe) {
    if (pe.rank() != 0) return;
    machine.kill_process(1);
    machine.declare_dead(1);
    const char ping = '!';
    pe.send(1, h, &ping, sizeof(ping));  // into the blackhole
    // Completing at all is the assertion: the barrier must not wait for
    // the declared-dead process's PE.
    machine.worker_barrier(&pe);
    pe.exit_all();
  });

  EXPECT_TRUE(machine.process_killed(1));
  EXPECT_TRUE(machine.process_dead(1));
  EXPECT_EQ(machine.lowest_live_pe(), 0u);
  EXPECT_EQ(machine.live_process_count(), 1u);
  EXPECT_GT(machine.fabric().blackholed(), 0u);
  const auto report = machine.metrics_report();
  EXPECT_GT(report.value("net.blackholed"), 0u);
  EXPECT_TRUE(report.has("ft.recoveries"));
  EXPECT_TRUE(report.has("net.dedup.evicted"));
}

TEST(MachineFt, CrashPlanIsStrippedWhenFtIsNotArmed) {
  // An env-wide chaos plan may carry crash events; machines that did not
  // opt into fault tolerance must ignore them (or the whole existing
  // suite would die under a CI-wide BGQ_FAULT_PLAN).
  MachineConfig cfg;
  cfg.nodes = 2;
  cfg.mode = Mode::kSmp;
  cfg.workers_per_process = 1;
  cfg.faults = FaultPlan::parse("crash@1:1msg");
  Machine machine(cfg);
  ASSERT_FALSE(machine.ft_armed());
  std::atomic<int> delivered{0};
  const auto h = machine.register_handler([&](Pe& pe, bgq::cvs::Message* m) {
    delivered.fetch_add(1);
    pe.free_message(m);
  });

  constexpr int kPings = 50;
  machine.run([&](Pe& pe) {
    if (pe.rank() != 0) return;
    for (int i = 0; i < kPings; ++i) {
      const char ping = '!';
      pe.send(1, h, &ping, sizeof(ping));
    }
    while (delivered.load() < kPings) {
      if (!pe.pump_one()) std::this_thread::yield();
    }
    pe.exit_all();
  });
  EXPECT_EQ(delivered.load(), kPings);
  EXPECT_FALSE(machine.process_killed(1))
      << "crash events must be inert without MachineConfig::ft";
}

}  // namespace
