// Cross-cutting stress and property tests: randomized traffic over the
// full configuration matrix (mode x queue kind x allocator), randomized
// many-to-many patterns, and machine lifecycle properties.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "converse/machine.hpp"
#include "m2m/manytomany.hpp"
#include "test_seed.hpp"

namespace {

using bgq::cvs::HandlerId;
using bgq::cvs::Machine;
using bgq::cvs::MachineConfig;
using bgq::cvs::Message;
using bgq::cvs::Mode;
using bgq::cvs::Pe;
using bgq::cvs::PeRank;

struct StressCase {
  Mode mode;
  bool use_l2;
  bool use_pool;
};

class RandomTraffic : public ::testing::TestWithParam<StressCase> {};

/// Every PE fires a random mix of sizes (empty, short, eager, rendezvous)
/// at random destinations; payloads carry a seeded pattern that the
/// receiver checks byte-for-byte.  Catches protocol/queue/allocator
/// interactions no targeted test hits.
TEST_P(RandomTraffic, RandomizedFuzzDeliversEverythingIntact) {
  const auto [mode, use_l2, use_pool] = GetParam();
  MachineConfig cfg;
  cfg.nodes = 2;
  cfg.mode = mode;
  cfg.workers_per_process = 2;
  cfg.processes_per_node = 2;
  cfg.comm_threads = 1;
  cfg.use_l2_atomics = use_l2;
  cfg.use_pool_allocator = use_pool;
  Machine machine(cfg);
  const auto npes = static_cast<PeRank>(machine.pe_count());
  constexpr int kPerPe = 120;

  std::atomic<std::size_t> received{0};
  std::atomic<int> corrupt{0};
  const std::size_t expected = static_cast<std::size_t>(npes) * kPerPe;

  const HandlerId h = machine.register_handler([&](Pe& pe, Message* m) {
    // Payload = [u32 seed][seed-derived bytes...].
    const auto bytes = m->payload_bytes();
    if (bytes >= 4) {
      std::uint32_t seed;
      std::memcpy(&seed, m->payload(), 4);
      for (std::size_t i = 4; i < bytes; i += 97) {
        const auto want = static_cast<std::byte>((seed + i) & 0xFF);
        if (m->payload()[i] != want) {
          corrupt.fetch_add(1);
          break;
        }
      }
    }
    pe.free_message(m);
    if (received.fetch_add(1) + 1 == expected) pe.exit_all();
  });

  // Per-PE streams derive from one logged base seed so a failure replays
  // bit-for-bit with BGQ_TEST_SEED=<seed>.
  const std::uint64_t base_seed =
      bgq::test_support::announce_seed("Stress.RandomTraffic", 1000);
  machine.run([&](Pe& pe) {
    bgq::Xoshiro256 rng(base_seed + pe.rank());
    static constexpr std::size_t kSizes[] = {0,   4,    32,   100,
                                             512, 4000, 5000, 40000};
    for (int i = 0; i < kPerPe; ++i) {
      const std::size_t bytes = kSizes[rng.below(8)];
      const auto dst = static_cast<PeRank>(rng.below(npes));
      Message* m = pe.alloc_message(bytes, h);
      if (bytes >= 4) {
        const auto seed = static_cast<std::uint32_t>(rng.next());
        std::memcpy(m->payload(), &seed, 4);
        for (std::size_t b = 4; b < bytes; ++b) {
          m->payload()[b] = static_cast<std::byte>((seed + b) & 0xFF);
        }
      }
      pe.send_message(dst, m);
    }
  });

  EXPECT_EQ(received.load(), expected);
  EXPECT_EQ(corrupt.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, RandomTraffic,
    ::testing::Values(StressCase{Mode::kNonSmp, true, true},
                      StressCase{Mode::kSmp, true, true},
                      StressCase{Mode::kSmp, false, true},
                      StressCase{Mode::kSmp, true, false},
                      StressCase{Mode::kSmp, false, false},
                      StressCase{Mode::kSmpCommThreads, true, true},
                      StressCase{Mode::kSmpCommThreads, false, false}),
    [](const auto& info) {
      std::string s;
      switch (info.param.mode) {
        case Mode::kNonSmp: s = "NonSmp"; break;
        case Mode::kSmp: s = "Smp"; break;
        default: s = "CommThreads"; break;
      }
      s += info.param.use_l2 ? "_L2" : "_Mutex";
      s += info.param.use_pool ? "_Pool" : "_Arena";
      return s;
    });

TEST(Stress, RandomManyToManyPattern) {
  // Sparse random pattern with heterogeneous chunk sizes: every byte of
  // every registered chunk must land at the registered offset.
  MachineConfig cfg;
  cfg.nodes = 2;
  cfg.mode = Mode::kSmpCommThreads;
  cfg.workers_per_process = 2;
  cfg.comm_threads = 1;
  Machine machine(cfg);
  bgq::m2m::Coordinator coord(machine);
  const auto npes = static_cast<PeRank>(machine.pe_count());

  bgq::Xoshiro256 rng(
      bgq::test_support::announce_seed("Stress.RandomManyToMany", 77));
  struct Edge {
    PeRank src, dst;
    std::uint32_t dst_slot;
    std::size_t bytes;
    std::size_t src_off, dst_off;
  };
  std::vector<Edge> edges;
  std::vector<std::size_t> out_count(npes, 0), in_count(npes, 0);
  std::vector<std::size_t> out_bytes(npes, 0), in_bytes(npes, 0);
  for (PeRank s = 0; s < npes; ++s) {
    for (PeRank d = 0; d < npes; ++d) {
      if (rng.below(3) == 0) continue;  // sparse
      const std::size_t bytes = 8 + rng.below(300) * 8;
      edges.push_back({s, d, static_cast<std::uint32_t>(in_count[d]),
                       bytes, out_bytes[s], in_bytes[d]});
      ++out_count[s];
      ++in_count[d];
      out_bytes[s] += bytes;
      in_bytes[d] += bytes;
    }
  }

  std::vector<std::vector<unsigned char>> sendb(npes), recvb(npes);
  for (PeRank r = 0; r < npes; ++r) {
    sendb[r].resize(std::max<std::size_t>(out_bytes[r], 1));
    recvb[r].assign(std::max<std::size_t>(in_bytes[r], 1), 0);
    for (std::size_t i = 0; i < sendb[r].size(); ++i) {
      sendb[r][i] = static_cast<unsigned char>((r * 131 + i) & 0xFF);
    }
    bgq::m2m::Handle& h =
        coord.create(r, 5, out_count[r], in_count[r]);
    h.set_send_base(reinterpret_cast<const std::byte*>(sendb[r].data()));
    h.set_recv_base(reinterpret_cast<std::byte*>(recvb[r].data()));
  }
  std::vector<std::size_t> send_idx(npes, 0);
  for (const Edge& e : edges) {
    coord.handle(e.src, 5).set_send(send_idx[e.src]++, e.dst, e.dst_slot,
                                    e.src_off, e.bytes);
    coord.handle(e.dst, 5).set_recv(e.dst_slot, e.dst_off, e.bytes);
  }

  std::atomic<int> done{0};
  machine.run([&](Pe& pe) {
    auto& h = coord.handle(pe.rank(), 5);
    pe.barrier();
    h.start();
    while ((h.recv_count() != 0 && !h.recv_done(1)) ||
           (h.send_count() != 0 && !h.send_done(1))) {
      if (!pe.pump_one()) std::this_thread::yield();
    }
    if (done.fetch_add(1) + 1 == static_cast<int>(npes)) pe.exit_all();
  });

  int bad = 0;
  for (const Edge& e : edges) {
    for (std::size_t i = 0; i < e.bytes; ++i) {
      const auto want = static_cast<unsigned char>(
          (e.src * 131 + e.src_off + i) & 0xFF);
      if (recvb[e.dst][e.dst_off + i] != want) ++bad;
    }
  }
  EXPECT_EQ(bad, 0);
}

TEST(Stress, MachineRunsTwice) {
  // The scheduler must be re-enterable: a second run() after exit_all().
  MachineConfig cfg;
  cfg.nodes = 2;
  cfg.mode = Mode::kSmp;
  cfg.workers_per_process = 2;
  Machine machine(cfg);
  std::atomic<int> round{0};

  const HandlerId h = machine.register_handler([&](Pe& pe, Message* m) {
    pe.free_message(m);
    round.fetch_add(1);
    pe.exit_all();
  });
  for (int r = 0; r < 2; ++r) {
    machine.run([&](Pe& pe) {
      if (pe.rank() == 0) pe.send(1, h, nullptr, 0);
    });
  }
  EXPECT_EQ(round.load(), 2);
}

TEST(Stress, ManyHandlersCoexist) {
  MachineConfig cfg;
  cfg.nodes = 2;
  cfg.mode = Mode::kSmp;
  cfg.workers_per_process = 2;
  Machine machine(cfg);
  constexpr int kHandlers = 32;
  std::atomic<int> hits[kHandlers] = {};
  std::vector<HandlerId> ids;
  std::atomic<int> total{0};
  for (int i = 0; i < kHandlers; ++i) {
    ids.push_back(machine.register_handler([&, i](Pe& pe, Message* m) {
      hits[i].fetch_add(1);
      pe.free_message(m);
      if (total.fetch_add(1) + 1 == kHandlers) pe.exit_all();
    }));
  }
  machine.run([&](Pe& pe) {
    if (pe.rank() != 0) return;
    for (int i = 0; i < kHandlers; ++i) {
      pe.send(static_cast<PeRank>(i % machine.pe_count()), ids[i],
              nullptr, 0);
    }
  });
  for (int i = 0; i < kHandlers; ++i) EXPECT_EQ(hits[i].load(), 1);
}

}  // namespace
