// Tests for the §VII future-work extensions: topology-aware placement
// and the prioritized scheduler queue, plus the spin/backoff helpers.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/spin.hpp"
#include "queue/priority_queue.hpp"
#include "topology/placement.hpp"
#include "topology/torus.hpp"

namespace {

using bgq::queue::PriorityMsgQueue;
using bgq::topo::map_grid;
using bgq::topo::neighbor_hops;
using bgq::topo::NodeId;
using bgq::topo::Placement;
using bgq::topo::Torus;

// ---------------------------------------------------------------------------
// Placement
// ---------------------------------------------------------------------------

TEST(Placement, LinearMapIsIdentity) {
  Torus t = Torus::bgq_partition(64);
  const auto map = map_grid(t, 8, 8, Placement::kLinear);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(map[i], i);
}

TEST(Placement, FoldedMapIsAPermutation) {
  Torus t = Torus::bgq_partition(512);
  const auto map = map_grid(t, 16, 32, Placement::kFolded);
  std::set<NodeId> seen(map.begin(), map.end());
  EXPECT_EQ(seen.size(), map.size()) << "mapping must not collide";
  for (NodeId n : map) EXPECT_LT(n, t.node_count());
}

class PlacementSizes
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {
};

TEST_P(PlacementSizes, FoldedReducesNeighborHops) {
  // The paper's future-work claim: topological placement reduces the
  // distance between communicating partners.  For pencil grids on BG/Q
  // partitions the folded embedding must beat oblivious linear order.
  const auto [nodes, g1] = GetParam();
  const std::size_t g2 = nodes / g1;
  Torus t = Torus::bgq_partition(nodes);
  const auto lin = neighbor_hops(t, map_grid(t, g1, g2,
                                             Placement::kLinear),
                                 g1, g2);
  const auto fold = neighbor_hops(t, map_grid(t, g1, g2,
                                              Placement::kFolded),
                                  g1, g2);
  EXPECT_LE(fold.overall(), lin.overall() + 1e-12)
      << "folded " << fold.overall() << " vs linear " << lin.overall();
}

INSTANTIATE_TEST_SUITE_P(
    Grids, PlacementSizes,
    ::testing::Values(std::make_pair(std::size_t{64}, std::size_t{8}),
                      std::make_pair(std::size_t{256}, std::size_t{16}),
                      std::make_pair(std::size_t{512}, std::size_t{16}),
                      std::make_pair(std::size_t{1024}, std::size_t{32})),
    [](const auto& info) {
      return "n" + std::to_string(info.param.first) + "g" +
             std::to_string(info.param.second);
    });

TEST(Placement, RejectsOversizedGrid) {
  Torus t = Torus::bgq_partition(64);
  EXPECT_THROW(map_grid(t, 16, 16, Placement::kLinear),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Priority queue
// ---------------------------------------------------------------------------

std::uint64_t* tag(std::uint64_t v) {
  return reinterpret_cast<std::uint64_t*>(v + 1);
}
std::uint64_t untag(std::uint64_t* p) {
  return reinterpret_cast<std::uint64_t>(p) - 1;
}

TEST(PriorityMsgQueue, StrictPriorityOrder) {
  PriorityMsgQueue<std::uint64_t*> q;
  q.enqueue(tag(10), 5);
  q.enqueue(tag(20), -3);  // most urgent
  q.enqueue(tag(30), 0);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.top_priority(), -3);
  EXPECT_EQ(untag(q.try_dequeue()), 20u);
  EXPECT_EQ(untag(q.try_dequeue()), 30u);
  EXPECT_EQ(untag(q.try_dequeue()), 10u);
  EXPECT_EQ(q.try_dequeue(), nullptr);
  EXPECT_TRUE(q.empty());
}

TEST(PriorityMsgQueue, FifoWithinPriorityClass) {
  PriorityMsgQueue<std::uint64_t*> q;
  for (std::uint64_t i = 0; i < 10; ++i) q.enqueue(tag(i), 7);
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(untag(q.try_dequeue()), i);
  }
}

TEST(PriorityMsgQueue, InterleavedOperations) {
  PriorityMsgQueue<std::uint64_t*> q;
  q.enqueue(tag(1), 2);
  q.enqueue(tag(2), 1);
  EXPECT_EQ(untag(q.try_dequeue()), 2u);
  q.enqueue(tag(3), 0);
  q.enqueue(tag(4), 3);
  EXPECT_EQ(untag(q.try_dequeue()), 3u);
  EXPECT_EQ(untag(q.try_dequeue()), 1u);
  EXPECT_EQ(untag(q.try_dequeue()), 4u);
  EXPECT_EQ(q.classes(), 0u);
}

TEST(PriorityMsgQueue, ClassesTrackDistinctPriorities) {
  PriorityMsgQueue<std::uint64_t*> q;
  q.enqueue(tag(1), 1);
  q.enqueue(tag(2), 1);
  q.enqueue(tag(3), 9);
  EXPECT_EQ(q.classes(), 2u);
  q.try_dequeue();
  q.try_dequeue();
  EXPECT_EQ(q.classes(), 1u);
}

// ---------------------------------------------------------------------------
// Spin helpers
// ---------------------------------------------------------------------------

TEST(Spin, BackoffEscalatesToYield) {
  bgq::Backoff b;
  EXPECT_FALSE(b.saturated());
  for (int i = 0; i < 10; ++i) b.pause();
  EXPECT_TRUE(b.saturated());
  b.reset();
  EXPECT_FALSE(b.saturated());
}

TEST(Spin, SpinUntilObservesFlagUnderEveryPolicy) {
  using bgq::IdlePollPolicy;
  for (auto policy : {IdlePollPolicy::kHotSpin, IdlePollPolicy::kL2Paced,
                      IdlePollPolicy::kOsYield}) {
    std::atomic<bool> flag{false};
    std::thread setter([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      flag.store(true, std::memory_order_release);
    });
    bgq::spin_until(
        [&] { return flag.load(std::memory_order_acquire); }, policy);
    setter.join();
    SUCCEED();
  }
}

}  // namespace
