// Tests for the FFT library (src/fft): 1-D mixed-radix kernel against a
// naive DFT, and the distributed pencil 3-D FFT against a serial 3-D
// reference, over both transports and several runtime modes.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "common/rng.hpp"
#include "converse/machine.hpp"
#include "fft/fft1d.hpp"
#include "fft/pencil3d.hpp"
#include "m2m/manytomany.hpp"

namespace {

using bgq::fft::cplx;
using bgq::fft::Fft1D;
using bgq::fft::Pencil3DFFT;
using bgq::fft::Transport;

std::vector<cplx> random_signal(std::size_t n, std::uint64_t seed) {
  bgq::Xoshiro256 rng(seed);
  std::vector<cplx> v(n);
  for (auto& x : v) x = cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));
  return v;
}

std::vector<cplx> naive_dft(const std::vector<cplx>& x) {
  const std::size_t n = x.size();
  std::vector<cplx> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    cplx acc = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = -2.0 * std::numbers::pi *
                         static_cast<double>(j * k % n) /
                         static_cast<double>(n);
      acc += x[j] * cplx(std::cos(ang), std::sin(ang));
    }
    out[k] = acc;
  }
  return out;
}

class Fft1DSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Fft1DSizes, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, n * 7 + 1);
  const auto ref = naive_dft(x);
  Fft1D plan(n);
  plan.forward(x.data());
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(x[k].real(), ref[k].real(), 1e-9 * n) << "k=" << k;
    EXPECT_NEAR(x[k].imag(), ref[k].imag(), 1e-9 * n) << "k=" << k;
  }
}

TEST_P(Fft1DSizes, InverseRoundTrips) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, n + 3);
  const auto orig = x;
  Fft1D plan(n);
  plan.forward(x.data());
  plan.inverse(x.data());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i].real(), orig[i].real(), 1e-10 * n);
    EXPECT_NEAR(x[i].imag(), orig[i].imag(), 1e-10 * n);
  }
}

INSTANTIATE_TEST_SUITE_P(SmoothSizes, Fft1DSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 9, 10, 12,
                                           15, 16, 20, 24, 27, 30, 32, 45,
                                           60, 64, 125, 128, 216, 240),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

TEST(Fft1D, RejectsNonSmoothSizes) {
  EXPECT_THROW(Fft1D(7), std::invalid_argument);
  EXPECT_THROW(Fft1D(0), std::invalid_argument);
  EXPECT_THROW(Fft1D(34), std::invalid_argument);  // 2 * 17
  EXPECT_TRUE(Fft1D::smooth(1080));
  EXPECT_TRUE(Fft1D::smooth(864));
  EXPECT_TRUE(Fft1D::smooth(216));
  EXPECT_FALSE(Fft1D::smooth(1081));
}

TEST(Fft1D, ParsevalHolds) {
  constexpr std::size_t n = 360;
  auto x = random_signal(n, 99);
  double time_energy = 0;
  for (auto& v : x) time_energy += std::norm(v);
  Fft1D plan(n);
  plan.forward(x.data());
  double freq_energy = 0;
  for (auto& v : x) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / n, time_energy, 1e-9 * n);
}

TEST(Fft1D, LinearityHolds) {
  constexpr std::size_t n = 48;
  auto a = random_signal(n, 1), b = random_signal(n, 2);
  std::vector<cplx> sum(n);
  for (std::size_t i = 0; i < n; ++i) sum[i] = 2.0 * a[i] + 3.0 * b[i];
  Fft1D plan(n);
  auto fa = a, fb = b, fsum = sum;
  plan.forward(fa.data());
  plan.forward(fb.data());
  plan.forward(fsum.data());
  for (std::size_t k = 0; k < n; ++k) {
    const cplx expect = 2.0 * fa[k] + 3.0 * fb[k];
    EXPECT_NEAR(fsum[k].real(), expect.real(), 1e-9 * n);
    EXPECT_NEAR(fsum[k].imag(), expect.imag(), 1e-9 * n);
  }
}

TEST(Fft1D, ImpulseGivesFlatSpectrum) {
  constexpr std::size_t n = 30;
  std::vector<cplx> x(n, 0.0);
  x[0] = 1.0;
  Fft1D plan(n);
  plan.forward(x.data());
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(x[k].real(), 1.0, 1e-12);
    EXPECT_NEAR(x[k].imag(), 0.0, 1e-12);
  }
}

TEST(Fft1D, ForwardManyTransformsEachPencil) {
  constexpr std::size_t n = 16, count = 4;
  std::vector<cplx> base(n * count);
  for (std::size_t p = 0; p < count; ++p) base[p * n] = double(p + 1);
  Fft1D plan(n);
  plan.forward_many(base.data(), count);
  for (std::size_t p = 0; p < count; ++p) {
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_NEAR(base[p * n + k].real(), double(p + 1), 1e-12);
    }
  }
}

// ---------------------------------------------------------------------------
// Distributed 3-D pencil FFT
// ---------------------------------------------------------------------------

/// Serial 3-D DFT reference via three passes of the 1-D kernel.
/// ref layout: ref[(x*n + y)*n + z].
std::vector<cplx> serial_fft3d(std::vector<cplx> a, std::size_t n) {
  Fft1D plan(n);
  // z: contiguous
  for (std::size_t x = 0; x < n; ++x)
    for (std::size_t y = 0; y < n; ++y) plan.forward(&a[(x * n + y) * n]);
  // y: gather/scatter
  std::vector<cplx> line(n);
  for (std::size_t x = 0; x < n; ++x)
    for (std::size_t z = 0; z < n; ++z) {
      for (std::size_t y = 0; y < n; ++y) line[y] = a[(x * n + y) * n + z];
      plan.forward(line.data());
      for (std::size_t y = 0; y < n; ++y) a[(x * n + y) * n + z] = line[y];
    }
  // x
  for (std::size_t y = 0; y < n; ++y)
    for (std::size_t z = 0; z < n; ++z) {
      for (std::size_t x = 0; x < n; ++x) line[x] = a[(x * n + y) * n + z];
      plan.forward(line.data());
      for (std::size_t x = 0; x < n; ++x) a[(x * n + y) * n + z] = line[x];
    }
  return a;
}

struct P3Case {
  bgq::cvs::Mode mode;
  Transport transport;
};

class Pencil3D : public ::testing::TestWithParam<P3Case> {};

TEST_P(Pencil3D, MatchesSerialReferenceAndRoundTrips) {
  const auto [mode, transport] = GetParam();
  constexpr std::size_t kN = 8;

  bgq::cvs::MachineConfig cfg;
  cfg.nodes = 2;
  cfg.mode = mode;
  cfg.workers_per_process = 2;
  cfg.processes_per_node = 2;
  cfg.comm_threads = 1;
  bgq::cvs::Machine machine(cfg);
  ASSERT_EQ(machine.pe_count(), 4u);  // G = 2

  bgq::m2m::Coordinator coord(machine);
  Pencil3DFFT fft(machine, kN, transport, &coord);
  const std::size_t G = fft.grid(), B = fft.block();

  // Build the full grid and scatter it into PE-local Z-pencil layouts.
  auto full = random_signal(kN * kN * kN, 4242);
  for (bgq::cvs::PeRank p = 0; p < 4; ++p) {
    const std::size_t r = p / G, c = p % G;
    cplx* local = fft.local_data(p);
    for (std::size_t bx = 0; bx < B; ++bx)
      for (std::size_t by = 0; by < B; ++by)
        for (std::size_t z = 0; z < kN; ++z)
          local[fft.z_index(bx, by, z)] =
              full[((r * B + bx) * kN + (c * B + by)) * kN + z];
  }
  const auto ref = serial_fft3d(full, kN);

  std::atomic<int> bad_fwd{0}, bad_rt{0};
  std::atomic<int> done{0};
  machine.run([&](bgq::cvs::Pe& pe) {
    fft.forward(pe);
    // Check X layout: local[x_index(by,bz,x)] == ref[x, r*B+by, c*B+bz].
    const std::size_t r = pe.rank() / G, c = pe.rank() % G;
    const cplx* local = fft.local_data(pe.rank());
    for (std::size_t by = 0; by < B; ++by)
      for (std::size_t bz = 0; bz < B; ++bz)
        for (std::size_t x = 0; x < kN; ++x) {
          const cplx want =
              ref[(x * kN + (r * B + by)) * kN + (c * B + bz)];
          const cplx got = local[fft.x_index(by, bz, x)];
          if (std::abs(got - want) > 1e-8 * kN * kN) bad_fwd.fetch_add(1);
        }

    // Round-trip back to the input.
    fft.backward(pe);
    const double scale = 1.0 / double(kN * kN * kN);
    for (std::size_t bx = 0; bx < B; ++bx)
      for (std::size_t by = 0; by < B; ++by)
        for (std::size_t z = 0; z < kN; ++z) {
          const cplx want =
              full[((r * B + bx) * kN + (c * B + by)) * kN + z];
          const cplx got = local[fft.z_index(bx, by, z)] * scale;
          if (std::abs(got - want) > 1e-9 * kN * kN) bad_rt.fetch_add(1);
        }
    if (done.fetch_add(1) + 1 == 4) pe.exit_all();
  });

  EXPECT_EQ(bad_fwd.load(), 0) << "forward mismatch vs serial reference";
  EXPECT_EQ(bad_rt.load(), 0) << "round trip mismatch";
}

INSTANTIATE_TEST_SUITE_P(
    TransportsAndModes, Pencil3D,
    ::testing::Values(
        P3Case{bgq::cvs::Mode::kSmp, Transport::kP2P},
        P3Case{bgq::cvs::Mode::kSmp, Transport::kM2M},
        P3Case{bgq::cvs::Mode::kSmpCommThreads, Transport::kP2P},
        P3Case{bgq::cvs::Mode::kSmpCommThreads, Transport::kM2M},
        P3Case{bgq::cvs::Mode::kNonSmp, Transport::kP2P},
        P3Case{bgq::cvs::Mode::kNonSmp, Transport::kM2M}),
    [](const auto& info) {
      std::string s;
      switch (info.param.mode) {
        case bgq::cvs::Mode::kNonSmp: s = "NonSmp"; break;
        case bgq::cvs::Mode::kSmp: s = "Smp"; break;
        default: s = "SmpCommThreads"; break;
      }
      s += info.param.transport == Transport::kP2P ? "P2P" : "M2M";
      return s;
    });

TEST(Pencil3D, RepeatedRoundTripsStayStable) {
  bgq::cvs::MachineConfig cfg;
  cfg.nodes = 2;
  cfg.mode = bgq::cvs::Mode::kSmp;
  cfg.workers_per_process = 2;
  bgq::cvs::Machine machine(cfg);
  bgq::m2m::Coordinator coord(machine);
  Pencil3DFFT fft(machine, 8, Transport::kM2M, &coord);

  auto full = random_signal(8 * 8 * 8, 7);
  const std::size_t B = fft.block(), G = fft.grid();
  for (bgq::cvs::PeRank p = 0; p < 4; ++p) {
    const std::size_t r = p / G, c = p % G;
    for (std::size_t bx = 0; bx < B; ++bx)
      for (std::size_t by = 0; by < B; ++by)
        for (std::size_t z = 0; z < 8u; ++z)
          fft.local_data(p)[fft.z_index(bx, by, z)] =
              full[((r * B + bx) * 8 + (c * B + by)) * 8 + z];
  }

  std::atomic<int> bad{0}, done{0};
  machine.run([&](bgq::cvs::Pe& pe) {
    for (int iter = 0; iter < 5; ++iter) fft.roundtrip(pe);
    const std::size_t r = pe.rank() / G, c = pe.rank() % G;
    for (std::size_t bx = 0; bx < B; ++bx)
      for (std::size_t by = 0; by < B; ++by)
        for (std::size_t z = 0; z < 8u; ++z) {
          const cplx want = full[((r * B + bx) * 8 + (c * B + by)) * 8 + z];
          const cplx got = fft.local_data(pe.rank())[fft.z_index(bx, by, z)];
          if (std::abs(got - want) > 1e-8) bad.fetch_add(1);
        }
    if (done.fetch_add(1) + 1 == 4) pe.exit_all();
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(Pencil3D, NonPowerOfTwoGridWorks) {
  // G = 3 (9 PEs) with a 9-point grid: exercises the radix-3 kernel and
  // non-power-of-two pencil geometry end to end.
  bgq::cvs::MachineConfig cfg;
  cfg.nodes = 3;
  cfg.mode = bgq::cvs::Mode::kSmp;
  cfg.workers_per_process = 3;
  bgq::cvs::Machine machine(cfg);
  ASSERT_EQ(machine.pe_count(), 9u);
  bgq::m2m::Coordinator coord(machine);
  Pencil3DFFT fft(machine, 9, Transport::kM2M, &coord);
  ASSERT_EQ(fft.grid(), 3u);

  auto full = random_signal(9 * 9 * 9, 33);
  const std::size_t B = fft.block();
  for (bgq::cvs::PeRank p = 0; p < 9; ++p) {
    const std::size_t r = p / 3, c = p % 3;
    for (std::size_t bx = 0; bx < B; ++bx)
      for (std::size_t by = 0; by < B; ++by)
        for (std::size_t z = 0; z < 9u; ++z)
          fft.local_data(p)[fft.z_index(bx, by, z)] =
              full[((r * B + bx) * 9 + (c * B + by)) * 9 + z];
  }
  const auto ref = serial_fft3d(full, 9);

  std::atomic<int> bad{0}, done{0};
  machine.run([&](bgq::cvs::Pe& pe) {
    fft.forward(pe);
    const std::size_t r = pe.rank() / 3, c = pe.rank() % 3;
    for (std::size_t by = 0; by < B; ++by)
      for (std::size_t bz = 0; bz < B; ++bz)
        for (std::size_t x = 0; x < 9u; ++x) {
          const cplx want = ref[(x * 9 + (r * B + by)) * 9 + (c * B + bz)];
          const cplx got =
              fft.local_data(pe.rank())[fft.x_index(by, bz, x)];
          if (std::abs(got - want) > 1e-8) bad.fetch_add(1);
        }
    if (done.fetch_add(1) + 1 == 9) pe.exit_all();
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(Pencil3D, RejectsBadGeometry) {
  bgq::cvs::MachineConfig cfg;
  cfg.nodes = 2;
  cfg.mode = bgq::cvs::Mode::kSmp;
  cfg.workers_per_process = 2;  // 4 PEs, G=2
  bgq::cvs::Machine machine(cfg);
  bgq::m2m::Coordinator coord(machine);
  EXPECT_THROW(Pencil3DFFT(machine, 7, Transport::kP2P),
               std::invalid_argument);  // not smooth / not divisible
  EXPECT_THROW(Pencil3DFFT(machine, 8, Transport::kM2M, nullptr),
               std::invalid_argument);  // m2m needs coordinator

  cfg.workers_per_process = 3;  // 6 PEs: not a perfect square
  bgq::cvs::Machine m2(cfg);
  EXPECT_THROW(Pencil3DFFT(m2, 6, Transport::kP2P), std::invalid_argument);
}

}  // namespace
