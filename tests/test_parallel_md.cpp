// Integration tests for the parallel mini-NAMD driver (src/md): the
// distributed energies must match a serial reference computation, both
// PME transports must agree, and NVE energy must be conserved.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "converse/machine.hpp"
#include "m2m/manytomany.hpp"
#include "md/ewald_ref.hpp"
#include "md/kernels.hpp"
#include "md/parallel_md.hpp"
#include "md/pme_serial.hpp"
#include "md/system.hpp"
#include "test_seed.hpp"

namespace {

using namespace bgq::md;
using bgq::cvs::Machine;
using bgq::cvs::MachineConfig;
using bgq::cvs::Mode;
using bgq::cvs::Pe;

MachineConfig machine_config(Mode mode = Mode::kSmp) {
  MachineConfig cfg;
  cfg.nodes = 2;
  cfg.mode = mode;
  cfg.workers_per_process = 2;
  cfg.processes_per_node = 2;
  cfg.comm_threads = 1;
  return cfg;
}

System test_system(double box = 20.0) {
  BuildOptions opt;
  opt.box = box;
  opt.seed = bgq::test_support::seed_or(99);
  opt.with_bonds = true;
  return build_system(opt);
}

MdConfig md_config(bgq::fft::Transport transport) {
  MdConfig cfg;
  cfg.cutoff = 8.0;
  cfg.switch_dist = 7.0;
  cfg.beta = 0.4;
  cfg.pme_grid = 32;
  cfg.pme_every = 1;
  cfg.dt = 0.0;  // freeze positions: logged energies = initial state
  cfg.transport = transport;
  return cfg;
}

/// Serial reference of the full potential at the initial configuration.
double serial_potential(const System& sys, const MdConfig& cfg) {
  ForceTable table(cfg.cutoff, cfg.beta, cfg.switch_dist);
  LjPairTable lj(sys.lj_types);
  auto pairs = build_pairs(sys.pos, sys.type, lj, sys.box, cfg.cutoff,
                           sys.exclusions);
  std::vector<Vec3> f(sys.natoms());
  const auto nb = compute_nonbonded_scalar(sys.pos, sys.charge, pairs,
                                           table, sys.box, f);
  const double bond = compute_bonds(sys.pos, sys.bonds, sys.box, f);
  const double angle = compute_angles(sys.pos, sys.angles, sys.box, f);

  PmeSerial pme(cfg.pme_grid, cfg.beta, sys.box);
  const double recip = pme.compute(sys.pos, sys.charge).e_recip;

  double excl = 0;
  for (const auto& [a, b] : sys.exclusions) {
    const Vec3 d = sys.min_image(sys.pos[a], sys.pos[b]);
    const double r = std::sqrt(d.norm2());
    excl += -kCoulomb * sys.charge[a] * sys.charge[b] *
            std::erf(cfg.beta * r) / r;
  }
  return bond + angle + nb.vdw + nb.elec_real + recip + excl;
}

class ParallelMdTransport
    : public ::testing::TestWithParam<bgq::fft::Transport> {};

TEST_P(ParallelMdTransport, InitialEnergiesMatchSerialReference) {
  auto sys = test_system();
  const MdConfig mdcfg = md_config(GetParam());
  const double ref = serial_potential(sys, mdcfg);

  Machine machine(machine_config());
  bgq::m2m::Coordinator coord(machine);
  ParallelMd md(machine, &coord, sys, mdcfg);

  std::atomic<int> done{0};
  machine.run([&](Pe& pe) {
    md.run_steps(pe, 1);  // dt = 0: state frozen, energies logged
    if (done.fetch_add(1) + 1 == static_cast<int>(machine.pe_count())) {
      pe.exit_all();
    }
  });

  const StepEnergies tot = md.total_energies(0);
  EXPECT_NEAR(tot.potential(), ref, 1e-6 * std::abs(ref) + 1e-6)
      << "bond=" << tot.bond << " vdw=" << tot.vdw
      << " elec=" << tot.elec_real << " recip=" << tot.recip
      << " excl=" << tot.excl_corr;
}

INSTANTIATE_TEST_SUITE_P(Transports, ParallelMdTransport,
                         ::testing::Values(bgq::fft::Transport::kP2P,
                                           bgq::fft::Transport::kM2M),
                         [](const auto& info) {
                           return info.param == bgq::fft::Transport::kP2P
                                      ? "P2P"
                                      : "M2M";
                         });

TEST(ParallelMd, TransportsProduceIdenticalTrajectoryEnergies) {
  // p2p and m2m are different communication paths over identical maths;
  // a short dynamic run must produce identical energy ledgers.
  auto sys = test_system();
  auto run = [&](bgq::fft::Transport t) {
    MdConfig mdcfg = md_config(t);
    mdcfg.dt = 0.5;
    mdcfg.pme_every = 2;
    Machine machine(machine_config());
    bgq::m2m::Coordinator coord(machine);
    ParallelMd md(machine, &coord, sys, mdcfg);
    std::atomic<int> done{0};
    machine.run([&](Pe& pe) {
      md.run_steps(pe, 8);
      if (done.fetch_add(1) + 1 == static_cast<int>(machine.pe_count())) {
        pe.exit_all();
      }
    });
    std::vector<double> totals;
    for (std::size_t s = 0; s < md.steps_logged(); ++s) {
      totals.push_back(md.total_energies(s).total());
    }
    return totals;
  };

  const auto a = run(bgq::fft::Transport::kP2P);
  const auto b = run(bgq::fft::Transport::kM2M);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-7 * std::abs(a[i])) << "step " << i;
  }
}

TEST(ParallelMd, NveEnergyConservation) {
  // The jittered-lattice start is strained, so keep dt small; the check
  // is that Verlet + consistent forces conserve energy, and that drift
  // shrinks quadratically with dt (verified by the bound).
  auto sys = test_system();
  MdConfig mdcfg = md_config(bgq::fft::Transport::kM2M);
  mdcfg.dt = 0.2;
  mdcfg.pme_every = 1;

  Machine machine(machine_config());
  bgq::m2m::Coordinator coord(machine);
  ParallelMd md(machine, &coord, sys, mdcfg);

  std::atomic<int> done{0};
  machine.run([&](Pe& pe) {
    md.run_steps(pe, 30);
    if (done.fetch_add(1) + 1 == static_cast<int>(machine.pe_count())) {
      pe.exit_all();
    }
  });

  ASSERT_EQ(md.steps_logged(), 30u);
  const double e0 = md.total_energies(0).total();
  double max_dev = 0;
  for (std::size_t s = 1; s < 30; ++s) {
    max_dev = std::max(max_dev,
                       std::abs(md.total_energies(s).total() - e0));
  }
  // Drift bounded by a small fraction of the kinetic energy scale.
  const double ke = md.total_energies(0).kinetic;
  EXPECT_LT(max_dev, 0.05 * ke)
      << "e0=" << e0 << " ke=" << ke << " max_dev=" << max_dev;
}

TEST(ParallelMd, MultipleTimeSteppingRunsStable) {
  auto sys = test_system();
  MdConfig mdcfg = md_config(bgq::fft::Transport::kM2M);
  mdcfg.dt = 0.5;
  mdcfg.pme_every = 4;

  Machine machine(machine_config(Mode::kSmpCommThreads));
  bgq::m2m::Coordinator coord(machine);
  ParallelMd md(machine, &coord, sys, mdcfg);

  std::atomic<int> done{0};
  machine.run([&](Pe& pe) {
    md.run_steps(pe, 16);
    if (done.fetch_add(1) + 1 == static_cast<int>(machine.pe_count())) {
      pe.exit_all();
    }
  });

  ASSERT_EQ(md.steps_logged(), 4u);  // one log per PME cycle
  const double e0 = md.total_energies(0).total();
  const double e_last = md.total_energies(3).total();
  EXPECT_LT(std::abs(e_last - e0),
            0.10 * std::abs(md.total_energies(0).kinetic));
}

TEST(ParallelMd, AtomsPartitionAcrossPatches) {
  auto sys = test_system();
  Machine machine(machine_config());
  bgq::m2m::Coordinator coord(machine);
  ParallelMd md(machine, &coord, sys, md_config(bgq::fft::Transport::kP2P));
  std::size_t total = 0;
  for (bgq::cvs::PeRank r = 0; r < machine.pe_count(); ++r) {
    const std::size_t n = md.local_atoms(r);
    EXPECT_GT(n, 0u) << "empty patch " << r;
    total += n;
  }
  EXPECT_EQ(total, sys.natoms());
}

TEST(ParallelMd, RejectsBadConfigs) {
  auto sys = test_system();
  Machine machine(machine_config());
  bgq::m2m::Coordinator coord(machine);
  MdConfig bad = md_config(bgq::fft::Transport::kP2P);
  bad.pme_grid = 30;  // not divisible by G = 2... (30/2=15, ok) use odd
  bad.pme_grid = 9;   // 9/2 fails
  EXPECT_THROW(ParallelMd(machine, &coord, sys, bad),
               std::invalid_argument);
  bad = md_config(bgq::fft::Transport::kM2M);
  EXPECT_THROW(ParallelMd(machine, nullptr, sys, bad),
               std::invalid_argument);
}

}  // namespace
