// Tests for the mini-NAMD components (src/md): system builder, cell list,
// interpolation tables, scalar/QPX kernels, Ewald reference, serial PME.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.hpp"
#include "md/ewald_ref.hpp"
#include "md/kernels.hpp"
#include "md/pme_serial.hpp"
#include "md/system.hpp"
#include "md/tables.hpp"

namespace {

using namespace bgq::md;

System small_system(double box = 12.0, std::uint64_t seed = 7,
                    bool bonds = false) {
  BuildOptions opt;
  opt.box = box;
  opt.seed = seed;
  opt.with_bonds = bonds;
  return build_system(opt);
}

TEST(SystemBuilder, DensityAndNeutrality) {
  auto sys = small_system(16.0);
  const double volume = 16.0 * 16.0 * 16.0;
  EXPECT_NEAR(static_cast<double>(sys.natoms()) / volume, 0.1, 0.02);
  EXPECT_NEAR(sys.total_charge(), 0.0, 1e-9);
  EXPECT_EQ(sys.natoms() % 3, 0u) << "3-site molecules";
}

TEST(SystemBuilder, PositionsInsideBox) {
  auto sys = small_system();
  for (const auto& p : sys.pos) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, sys.box);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, sys.box);
    EXPECT_GE(p.z, 0.0);
    EXPECT_LT(p.z, sys.box);
  }
}

TEST(SystemBuilder, BondsConnectNearbyAtoms) {
  auto sys = small_system(12.0, 3, true);
  EXPECT_FALSE(sys.bonds.empty());
  for (const auto& b : sys.bonds) {
    const double r = std::sqrt(sys.min_image(sys.pos[b.i], sys.pos[b.j])
                                   .norm2());
    EXPECT_NEAR(r, b.r0, 0.01);
  }
  EXPECT_EQ(sys.exclusions.size(), sys.natoms());  // 3 per molecule
}

TEST(SystemBuilder, VelocitiesMatchTemperature) {
  BuildOptions opt;
  opt.box = 24.0;
  opt.temperature = 300.0;
  auto sys = build_system(opt);
  const double ke = kinetic_energy(sys.vel, sys.mass);
  const double expect =
      1.5 * static_cast<double>(sys.natoms()) * kBoltzmann * 300.0;
  EXPECT_NEAR(ke / expect, 1.0, 0.1);
}

TEST(SystemBuilder, ZeroNetMomentum) {
  auto sys = small_system(16.0);
  Vec3 p{};
  for (std::size_t i = 0; i < sys.natoms(); ++i) {
    p += sys.vel[i] * sys.mass[i];
  }
  EXPECT_NEAR(p.x, 0, 1e-9);
  EXPECT_NEAR(p.y, 0, 1e-9);
  EXPECT_NEAR(p.z, 0, 1e-9);
}

TEST(System, MinImageBounds) {
  System sys;
  sys.box = 10;
  const Vec3 d = sys.min_image({9.5, 0.5, 5.0}, {0.5, 9.5, 5.0});
  EXPECT_NEAR(d.x, -1.0, 1e-12);
  EXPECT_NEAR(d.y, 1.0, 1e-12);
  EXPECT_NEAR(d.z, 0.0, 1e-12);
}

TEST(CellList, MatchesBruteForceEnumeration) {
  bgq::Xoshiro256 rng(5);
  const double box = 20.0, cutoff = 4.0;
  std::vector<Vec3> pos(300);
  for (auto& p : pos) {
    p = {rng.uniform(0, box), rng.uniform(0, box), rng.uniform(0, box)};
  }
  System sys;
  sys.box = box;

  auto key = [](std::uint32_t a, std::uint32_t b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  };
  std::set<std::uint64_t> brute;
  for (std::uint32_t i = 0; i < pos.size(); ++i) {
    for (std::uint32_t j = i + 1; j < pos.size(); ++j) {
      if (sys.min_image(pos[i], pos[j]).norm2() <= cutoff * cutoff) {
        brute.insert(key(i, j));
      }
    }
  }
  std::set<std::uint64_t> listed;
  CellList cells(pos, box, cutoff);
  cells.for_each_pair([&](std::uint32_t i, std::uint32_t j) {
    if (sys.min_image(pos[i], pos[j]).norm2() <= cutoff * cutoff) {
      const bool inserted = listed.insert(key(i, j)).second;
      EXPECT_TRUE(inserted) << "pair enumerated twice: " << i << "," << j;
    }
  });
  EXPECT_EQ(listed, brute);
}

TEST(CellList, SmallBoxFallsBackToAllPairs) {
  std::vector<Vec3> pos = {{0.5, 0.5, 0.5}, {1.5, 1.5, 1.5}};
  CellList cells(pos, 4.0, 3.0);  // fewer than 3 cells -> single cell
  EXPECT_EQ(cells.cells_per_dim(), 1);
  int count = 0;
  cells.for_each_pair([&](std::uint32_t, std::uint32_t) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(ForceTable, ForceIsMinusEnergyDerivative) {
  ForceTable table(10.0, 0.34, 8.5, 8192);
  ForceTable::Terms lo, hi, mid;
  for (double r2 = 2.0; r2 < 99.0; r2 += 3.1) {
    const double h = 1e-4;
    table.lookup(r2 - h, lo);
    table.lookup(r2 + h, hi);
    table.lookup(r2, mid);
    // f = -2 dU/d(r^2) for each component, to within the linear-
    // interpolation error of the table (a few percent near the floor,
    // exactly as in NAMD's tables).
    EXPECT_NEAR(mid.f_vdwA, -2 * (hi.u_vdwA - lo.u_vdwA) / (2 * h),
                2.5e-2 * std::abs(mid.f_vdwA) + 1e-8)
        << "r2=" << r2;
    EXPECT_NEAR(mid.f_vdwB, -2 * (hi.u_vdwB - lo.u_vdwB) / (2 * h),
                2.5e-2 * std::abs(mid.f_vdwB) + 1e-8);
    EXPECT_NEAR(mid.f_elec, -2 * (hi.u_elec - lo.u_elec) / (2 * h),
                2.5e-2 * std::abs(mid.f_elec) + 1e-8);
  }
}

TEST(ForceTable, VdwVanishesAtCutoff) {
  ForceTable table(10.0, 0.34, 8.5);
  ForceTable::Terms t;
  table.lookup(100.0, t);
  EXPECT_NEAR(t.u_vdwA, 0.0, 1e-10);
  EXPECT_NEAR(t.u_vdwB, 0.0, 1e-10);
  EXPECT_NEAR(t.f_vdwA, 0.0, 1e-8);
}

TEST(ForceTable, RejectsBadParameters) {
  EXPECT_THROW(ForceTable(10.0, 0.3, 12.0), std::invalid_argument);
  EXPECT_THROW(ForceTable(10.0, 0.3, 8.0, 4), std::invalid_argument);
}

TEST(LjPairTable, LorentzBerthelot) {
  std::vector<LjType> types = {{0.2, 3.0}, {0.05, 1.0}};
  LjPairTable lj(types);
  const double eps = std::sqrt(0.2 * 0.05);
  const double rm = 2.0;
  const double rm6 = std::pow(rm, 6);
  EXPECT_NEAR(lj.a(0, 1), eps * rm6 * rm6, 1e-12);
  EXPECT_NEAR(lj.b(0, 1), 2 * eps * rm6, 1e-12);
  EXPECT_NEAR(lj.a(0, 1), lj.a(1, 0), 1e-15);
}

// ---------------------------------------------------------------------------
// Kernels
// ---------------------------------------------------------------------------

struct KernelSetup {
  System sys;
  ForceTable table{10.0, 0.34, 8.5};
  LjPairTable lj;
  PairBlock pairs;

  explicit KernelSetup(bool bonds = false)
      : sys(small_system(22.0, 11, bonds)), lj(sys.lj_types) {
    pairs = build_pairs(sys.pos, sys.type, lj, sys.box, 10.0,
                        sys.exclusions);
  }
};

TEST(Kernels, ScalarAndQpxAgree) {
  KernelSetup k;
  std::vector<Vec3> f1(k.sys.natoms()), f2(k.sys.natoms());
  const auto e1 = compute_nonbonded_scalar(k.sys.pos, k.sys.charge,
                                           k.pairs, k.table, k.sys.box, f1);
  const auto e2 = compute_nonbonded_qpx(k.sys.pos, k.sys.charge, k.pairs,
                                        k.table, k.sys.box, f2);
  EXPECT_NEAR(e1.vdw, e2.vdw, 1e-9 * (1 + std::abs(e1.vdw)));
  EXPECT_NEAR(e1.elec_real, e2.elec_real,
              1e-9 * (1 + std::abs(e1.elec_real)));
  for (std::size_t i = 0; i < f1.size(); ++i) {
    EXPECT_NEAR(f1[i].x, f2[i].x, 1e-9 * (1 + std::abs(f1[i].x)));
    EXPECT_NEAR(f1[i].y, f2[i].y, 1e-9 * (1 + std::abs(f1[i].y)));
    EXPECT_NEAR(f1[i].z, f2[i].z, 1e-9 * (1 + std::abs(f1[i].z)));
  }
}

TEST(Kernels, NewtonPairsConserveMomentum) {
  KernelSetup k;
  std::vector<Vec3> f(k.sys.natoms());
  compute_nonbonded_scalar(k.sys.pos, k.sys.charge, k.pairs, k.table,
                           k.sys.box, f);
  Vec3 sum{};
  for (const auto& v : f) sum += v;
  EXPECT_NEAR(sum.x, 0, 1e-9);
  EXPECT_NEAR(sum.y, 0, 1e-9);
  EXPECT_NEAR(sum.z, 0, 1e-9);
}

TEST(Kernels, ForceMatchesFiniteDifferenceOfEnergy) {
  // Bonded system: exclusions remove the sub-Angstrom intramolecular
  // pairs that sit below the table floor (where lookup clamps and the
  // force is intentionally not the energy slope).  A fine table keeps the
  // interpolation error below the finite-difference tolerance.
  KernelSetup k(true);
  k.table = ForceTable(10.0, 0.34, 8.5, 65536);
  auto energy_at = [&](const std::vector<Vec3>& pos) {
    std::vector<Vec3> f(pos.size());
    // Pair list rebuilt so moved atoms keep their in-range pairs exact.
    auto pairs =
        build_pairs(pos, k.sys.type, k.lj, k.sys.box, 10.0,
                    k.sys.exclusions);
    const auto e = compute_nonbonded_scalar(pos, k.sys.charge, pairs,
                                            k.table, k.sys.box, f);
    return e.vdw + e.elec_real;
  };

  std::vector<Vec3> f(k.sys.natoms());
  compute_nonbonded_scalar(k.sys.pos, k.sys.charge, k.pairs, k.table,
                           k.sys.box, f);

  const double h = 2e-6;
  bgq::Xoshiro256 rng(3);
  for (int trial = 0; trial < 6; ++trial) {
    const auto i = static_cast<std::size_t>(
        rng.below(k.sys.natoms()));
    auto pos = k.sys.pos;
    pos[i].x += h;
    const double ep = energy_at(pos);
    pos[i].x -= 2 * h;
    const double em = energy_at(pos);
    const double fd = -(ep - em) / (2 * h);
    EXPECT_NEAR(f[i].x, fd, 2e-2 * (1 + std::abs(fd))) << "atom " << i;
  }
}

TEST(Kernels, ExclusionsRemovePairs) {
  auto sys = small_system(14.0, 5, true);
  LjPairTable lj(sys.lj_types);
  auto with = build_pairs(sys.pos, sys.type, lj, sys.box, 8.0, {});
  auto without =
      build_pairs(sys.pos, sys.type, lj, sys.box, 8.0, sys.exclusions);
  EXPECT_EQ(with.size(), without.size() + sys.exclusions.size())
      << "every excluded (bonded) pair is within the cutoff";
}

TEST(Kernels, AngleAtEquilibriumHasZeroForceAndEnergy) {
  // 90-degree angle with theta0 = pi/2.
  std::vector<Vec3> pos = {{2, 1, 1}, {1, 1, 1}, {1, 2, 1}};
  std::vector<Angle> angles = {{0, 1, 2, 50.0, 3.14159265358979 / 2}};
  std::vector<Vec3> f(3);
  const double e = compute_angles(pos, angles, 20.0, f);
  EXPECT_NEAR(e, 0.0, 1e-9);
  for (const auto& v : f) {
    EXPECT_NEAR(v.x, 0, 1e-9);
    EXPECT_NEAR(v.y, 0, 1e-9);
    EXPECT_NEAR(v.z, 0, 1e-9);
  }
}

TEST(Kernels, AngleForceMatchesFiniteDifference) {
  std::vector<Vec3> pos = {{2, 1, 1}, {1, 1, 1}, {1.3, 2.1, 0.7}};
  std::vector<Angle> angles = {{0, 1, 2, 55.0, 1.911}};  // ~109.5 deg
  std::vector<Vec3> f(3);
  compute_angles(pos, angles, 20.0, f);

  const double h = 1e-6;
  for (std::size_t atom = 0; atom < 3; ++atom) {
    for (int axis = 0; axis < 3; ++axis) {
      auto perturb = [&](double delta) {
        auto p = pos;
        (axis == 0 ? p[atom].x : axis == 1 ? p[atom].y : p[atom].z) +=
            delta;
        std::vector<Vec3> tmp(3);
        return compute_angles(p, angles, 20.0, tmp);
      };
      const double fd = -(perturb(h) - perturb(-h)) / (2 * h);
      const double got = axis == 0   ? f[atom].x
                         : axis == 1 ? f[atom].y
                                     : f[atom].z;
      EXPECT_NEAR(got, fd, 1e-5 * (1 + std::abs(fd)))
          << "atom " << atom << " axis " << axis;
    }
  }
}

TEST(Kernels, AngleForcesConserveMomentum) {
  std::vector<Vec3> pos = {{2.2, 1, 1}, {1, 1.1, 1}, {1.4, 2.4, 0.9}};
  std::vector<Angle> angles = {{0, 1, 2, 55.0, 2.0}};
  std::vector<Vec3> f(3);
  compute_angles(pos, angles, 20.0, f);
  EXPECT_NEAR(f[0].x + f[1].x + f[2].x, 0, 1e-12);
  EXPECT_NEAR(f[0].y + f[1].y + f[2].y, 0, 1e-12);
  EXPECT_NEAR(f[0].z + f[1].z + f[2].z, 0, 1e-12);
}

TEST(Kernels, BuilderAnglesStartNearMinimum) {
  auto sys = small_system(12.0, 3, true);
  ASSERT_FALSE(sys.angles.empty());
  EXPECT_EQ(sys.angles.size(), sys.natoms() / 3);
  std::vector<Vec3> f(sys.natoms());
  const double e = compute_angles(sys.pos, sys.angles, sys.box, f);
  EXPECT_NEAR(e, 0.0, 1e-6 * sys.angles.size());
}

TEST(Kernels, BondForcesRestoreEquilibrium) {
  std::vector<Vec3> pos = {{1, 1, 1}, {2.2, 1, 1}};
  std::vector<Bond> bonds = {{0, 1, 100.0, 1.0}};
  std::vector<Vec3> f(2);
  const double e = compute_bonds(pos, bonds, 10.0, f);
  EXPECT_NEAR(e, 100.0 * 0.2 * 0.2, 1e-12);
  EXPECT_GT(f[0].x, 0) << "stretched bond pulls atom 0 toward atom 1";
  EXPECT_LT(f[1].x, 0);
  EXPECT_NEAR(f[0].x + f[1].x, 0, 1e-12);
}

// ---------------------------------------------------------------------------
// Ewald and PME
// ---------------------------------------------------------------------------

TEST(EwaldRef, TotalIndependentOfSplittingParameter) {
  auto sys = small_system(10.0, 17);
  // Use a subset to keep the naive sums fast.
  sys.pos.resize(30);
  sys.vel.resize(30);
  sys.mass.resize(30);
  sys.type.resize(30);
  sys.charge.resize(30);
  // Re-neutralize the truncated charge set.
  const double q = sys.total_charge() / 30.0;
  for (auto& c : sys.charge) c -= q;

  const auto a = ewald_reference(sys, 0.35, 12);
  const auto b = ewald_reference(sys, 0.45, 14);
  EXPECT_NEAR(a.total(), b.total(), 1e-3 * std::abs(a.total()) + 1e-4);
}

TEST(EwaldRef, ForcesSumToZero) {
  auto sys = small_system(10.0, 19);
  sys.pos.resize(24);
  sys.charge.resize(24);
  const double q = sys.total_charge() / 24.0;
  for (auto& c : sys.charge) c -= q;
  const auto r = ewald_reference(sys, 0.4, 10);
  Vec3 sum{};
  for (std::size_t i = 0; i < 24; ++i) sum += r.f_real[i] + r.f_recip[i];
  EXPECT_NEAR(sum.x, 0, 1e-6);
  EXPECT_NEAR(sum.y, 0, 1e-6);
  EXPECT_NEAR(sum.z, 0, 1e-6);
}

TEST(Bspline4, PartitionOfUnityAndDerivative) {
  double w[4], dw[4];
  for (double u : {0.0, 0.25, 0.5, 0.99, 3.7, 10.2}) {
    bspline4(u, w, dw);
    EXPECT_NEAR(w[0] + w[1] + w[2] + w[3], 1.0, 1e-12) << u;
    EXPECT_NEAR(dw[0] + dw[1] + dw[2] + dw[3], 0.0, 1e-12) << u;
    for (double x : w) EXPECT_GE(x, 0.0);
  }
}

TEST(PmeSerial, RecipEnergyMatchesNaiveEwald) {
  auto sys = small_system(10.0, 23);
  sys.pos.resize(45);
  sys.charge.resize(45);
  const double q = sys.total_charge() / 45.0;
  for (auto& c : sys.charge) c -= q;

  const double beta = 0.45;
  const auto ref = ewald_reference(sys, beta, 14);
  PmeSerial pme(32, beta, sys.box);
  const auto got = pme.compute(sys.pos, sys.charge);

  EXPECT_NEAR(got.e_recip, ref.e_recip,
              2e-3 * std::abs(ref.e_recip) + 1e-5);
  EXPECT_NEAR(pme.self_energy(sys.charge), ref.e_self, 1e-9);
}

TEST(PmeSerial, RecipForcesMatchNaiveEwald) {
  auto sys = small_system(10.0, 29);
  sys.pos.resize(30);
  sys.charge.resize(30);
  const double q = sys.total_charge() / 30.0;
  for (auto& c : sys.charge) c -= q;

  const double beta = 0.45;
  const auto ref = ewald_reference(sys, beta, 14);
  PmeSerial pme(32, beta, sys.box);
  const auto got = pme.compute(sys.pos, sys.charge);

  double max_f = 0;
  for (const auto& f : ref.f_recip) {
    max_f = std::max({max_f, std::abs(f.x), std::abs(f.y), std::abs(f.z)});
  }
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_NEAR(got.force[i].x, ref.f_recip[i].x, 5e-3 * max_f + 1e-5);
    EXPECT_NEAR(got.force[i].y, ref.f_recip[i].y, 5e-3 * max_f + 1e-5);
    EXPECT_NEAR(got.force[i].z, ref.f_recip[i].z, 5e-3 * max_f + 1e-5);
  }
}

TEST(PmeSerial, SpreadConservesTotalCharge) {
  auto sys = small_system(12.0, 31);
  PmeSerial pme(24, 0.4, sys.box);
  std::vector<double> grid;
  pme.spread(sys.pos, sys.charge, grid);
  const double total = std::accumulate(grid.begin(), grid.end(), 0.0);
  EXPECT_NEAR(total, sys.total_charge(), 1e-9);
}

TEST(PmeSerial, EnergyScalesAsChargeSquared) {
  auto sys = small_system(10.0, 37);
  sys.pos.resize(21);
  sys.charge.resize(21);
  const double q = sys.total_charge() / 21.0;
  for (auto& c : sys.charge) c -= q;
  PmeSerial pme(24, 0.4, sys.box);
  const double e1 = pme.compute(sys.pos, sys.charge).e_recip;
  for (auto& c : sys.charge) c *= 2.0;
  const double e2 = pme.compute(sys.pos, sys.charge).e_recip;
  EXPECT_NEAR(e2, 4.0 * e1, 1e-9 * std::abs(e2));
}

TEST(PmeSerial, RejectsBadGrid) {
  EXPECT_THROW(PmeSerial(7, 0.3, 10.0), std::invalid_argument);
  EXPECT_THROW(PmeSerial(2, 0.3, 10.0), std::invalid_argument);
}

}  // namespace
