// Additional coverage: fabric endpoint addressing, BG/P network
// parameters, message layout, allocator pool-hit accounting under
// threads, and ordered-queue total order under a concurrent consumer.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "alloc/pool_allocator.hpp"
#include "converse/message.hpp"
#include "net/fabric.hpp"
#include "net/params.hpp"
#include "queue/ordered_l2_queue.hpp"
#include "topology/torus.hpp"

namespace {

using bgq::net::Fabric;
using bgq::net::NetworkParams;
using bgq::net::Packet;
using bgq::topo::Torus;

TEST(FabricEndpoints, MultipleProcessesShareANode) {
  Torus t({2});
  Fabric f(t, NetworkParams{}, /*fifos=*/1, /*endpoints_per_node=*/4);
  EXPECT_EQ(f.endpoint_count(), 8u);
  EXPECT_EQ(f.node_of(0), 0u);
  EXPECT_EQ(f.node_of(3), 0u);
  EXPECT_EQ(f.node_of(4), 1u);
  EXPECT_EQ(f.node_of(7), 1u);
}

TEST(FabricEndpoints, SameNodeLoopbackPaysOnlyBaseLatency) {
  Torus t({2});
  Fabric f(t, NetworkParams{}, 1, 2);
  auto send = [&](bgq::topo::NodeId dst) {
    auto* p = new Packet();
    p->src = 0;
    p->dst = dst;
    p->payload.resize(32);
    f.inject(p);
    Packet* got = f.reception_fifo(dst, 0).poll();
    const auto w = got->wire_ns;
    delete got;
    return w;
  };
  const auto same_node = send(1);   // endpoint 1: node 0 (loopback)
  const auto next_node = send(2);   // endpoint 2: node 1 (one hop)
  EXPECT_LE(same_node, next_node);
  EXPECT_EQ(same_node, NetworkParams{}.wire_time_ns(32, 0));
}

TEST(NetworkParams, BgpIsSlowerThanBgq) {
  const auto q = NetworkParams{};
  const auto p = bgq::net::bgp_network_params();
  EXPECT_GT(p.base_latency_ns, q.base_latency_ns);
  EXPECT_LT(p.link_bandwidth_gb_s, q.link_bandwidth_gb_s);
  EXPECT_GT(p.wire_time_ns(65536, 4), q.wire_time_ns(65536, 4));
}

TEST(Message, HeaderLayoutAndAccessors) {
  // Dual compile-time layout: 16 bytes lean, 32 with the causal-trace
  // fields (BGQ_TRACE builds).
  using bgq::cvs::MsgHeader;
  static_assert(sizeof(MsgHeader) == (MsgHeader::kTraced ? 32 : 16));
  alignas(16) unsigned char raw[sizeof(MsgHeader) + 48] = {};
  auto* m = bgq::cvs::Message::from_raw(raw);
  m->header().payload_bytes = 48;
  m->header().handler = 7;
  m->header().src_pe = 3;
  m->header().dst_pe = 5;
  m->header().set_cid((std::uint64_t{4} << 32) | 9);
  EXPECT_EQ(m->payload_bytes(), 48u);
  EXPECT_EQ(m->total_bytes(), sizeof(MsgHeader) + 48u);
  EXPECT_EQ(reinterpret_cast<unsigned char*>(m->payload()),
            raw + sizeof(MsgHeader));
  if constexpr (MsgHeader::kTraced) {
    EXPECT_EQ(m->header().cid() >> 32, 4u);
  } else {
    EXPECT_EQ(m->header().cid(), 0u) << "lean layout: cid writes vanish";
  }
}

TEST(PoolAllocator, SteadyStateRecyclingIsAllPoolHits) {
  // The §III-B steady state: buffers freed (from another thread slot, the
  // paper's receiver-frees-sender's-buffer pattern) return to the owner's
  // pool, so subsequent allocations never touch the heap.
  bgq::alloc::PoolAllocator a(2, 256);
  constexpr int kRounds = 500;
  constexpr int kBatch = 32;

  // Warm: one batch through the cycle populates the pool.
  std::vector<void*> bufs;
  for (int i = 0; i < kBatch; ++i) bufs.push_back(a.allocate(0, 128));
  for (void* p : bufs) a.deallocate(1, p);  // cross-thread free
  const auto heap_before = a.heap_allocs();
  const auto hits_before = a.pool_hits();

  for (int round = 0; round < kRounds; ++round) {
    bufs.clear();
    for (int i = 0; i < kBatch; ++i) bufs.push_back(a.allocate(0, 128));
    for (void* p : bufs) a.deallocate(1, p);
  }

  EXPECT_EQ(a.heap_allocs(), heap_before)
      << "steady-state allocations must come from the pool";
  EXPECT_EQ(a.pool_hits() - hits_before,
            static_cast<std::uint64_t>(kRounds) * kBatch);
}

TEST(OrderedL2Queue, TotalOrderWithConcurrentConsumer) {
  // Single producer, tiny ring (constant overflow pressure), concurrent
  // consumer: delivery must be the exact production order.
  bgq::queue::OrderedL2Queue<std::uint64_t*> q(4);
  constexpr std::uint64_t kN = 50000;
  std::atomic<bool> ok{true};

  std::thread consumer([&] {
    std::uint64_t expect = 1;
    while (expect <= kN) {
      if (auto* p = q.try_dequeue()) {
        if (reinterpret_cast<std::uint64_t>(p) != expect) {
          ok.store(false);
          return;
        }
        ++expect;
      }
    }
  });
  for (std::uint64_t i = 1; i <= kN; ++i) {
    q.enqueue(reinterpret_cast<std::uint64_t*>(i));
  }
  consumer.join();
  EXPECT_TRUE(ok.load()) << "MPI-semantics queue must preserve FIFO";
}

}  // namespace
