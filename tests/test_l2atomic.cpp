// Tests for the emulated BG/Q L2 atomic operation set (src/l2atomic).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "l2atomic/completion.hpp"
#include "l2atomic/l2_atomic.hpp"

namespace {

using bgq::l2::AtomicWord;
using bgq::l2::BoundedCounter;
using bgq::l2::CompletionCounter;
using bgq::l2::kBoundedFailure;

TEST(AtomicWord, LoadIncrementReturnsOldValue) {
  AtomicWord w(41);
  EXPECT_EQ(w.load_increment(), 41u);
  EXPECT_EQ(w.load(), 42u);
}

TEST(AtomicWord, LoadDecrementReturnsOldValue) {
  AtomicWord w(10);
  EXPECT_EQ(w.load_decrement(), 10u);
  EXPECT_EQ(w.load(), 9u);
}

TEST(AtomicWord, LoadClearReturnsOldAndZeroes) {
  AtomicWord w(0xDEADBEEF);
  EXPECT_EQ(w.load_clear(), 0xDEADBEEFu);
  EXPECT_EQ(w.load(), 0u);
}

TEST(AtomicWord, StoreAddOrXor) {
  AtomicWord w(0b1000);
  w.store_add(2);
  EXPECT_EQ(w.load(), 0b1010u);
  w.store_or(0b0101);
  EXPECT_EQ(w.load(), 0b1111u);
  w.store_xor(0b0110);
  EXPECT_EQ(w.load(), 0b1001u);
}

TEST(AtomicWord, StoreMaxKeepsLarger) {
  AtomicWord w(100);
  w.store_max(50);
  EXPECT_EQ(w.load(), 100u);
  w.store_max(150);
  EXPECT_EQ(w.load(), 150u);
}

TEST(AtomicWord, AddFetchReturnsNewValue) {
  AtomicWord w(5);
  EXPECT_EQ(w.add_fetch(7), 12u);
}

TEST(AtomicWord, ConcurrentLoadIncrementIsExact) {
  AtomicWord w(0);
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) w.load_increment();
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(w.load(), static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(BoundedCounter, IncrementsUpToBoundThenFails) {
  BoundedCounter c(3);
  EXPECT_EQ(c.bounded_increment(), 0u);
  EXPECT_EQ(c.bounded_increment(), 1u);
  EXPECT_EQ(c.bounded_increment(), 2u);
  EXPECT_EQ(c.bounded_increment(), kBoundedFailure);
  EXPECT_TRUE(c.full());
}

TEST(BoundedCounter, AdvanceBoundReopensSlots) {
  BoundedCounter c(1);
  EXPECT_EQ(c.bounded_increment(), 0u);
  EXPECT_EQ(c.bounded_increment(), kBoundedFailure);
  c.advance_bound(1);
  EXPECT_EQ(c.bounded_increment(), 1u);
  EXPECT_EQ(c.bounded_increment(), kBoundedFailure);
}

TEST(BoundedCounter, ZeroBoundAlwaysFails) {
  BoundedCounter c(0);
  EXPECT_EQ(c.bounded_increment(), kBoundedFailure);
}

TEST(BoundedCounter, ConcurrentClaimsNeverExceedBound) {
  constexpr std::uint64_t kBound = 1000;
  BoundedCounter c(kBound);
  constexpr int kThreads = 8;
  std::atomic<std::uint64_t> successes{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < 400; ++i) {
        if (c.bounded_increment() != kBoundedFailure) {
          successes.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  // 8 * 400 = 3200 attempts against a bound of 1000: exactly 1000 succeed.
  EXPECT_EQ(successes.load(), kBound);
  EXPECT_EQ(c.counter(), kBound);
}

TEST(BoundedCounter, ConcurrentClaimsWithConsumerAdvancingBound) {
  BoundedCounter c(16);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  std::atomic<std::uint64_t> successes{0};
  std::atomic<bool> stop{false};

  std::thread consumer([&] {
    std::uint64_t drained = 0;
    while (!stop.load() ||
           drained < successes.load(std::memory_order_acquire)) {
      const std::uint64_t avail =
          successes.load(std::memory_order_acquire) - drained;
      if (avail > 0) {
        c.advance_bound(avail);
        drained += avail;
      } else {
        std::this_thread::yield();
      }
    }
  });

  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&] {
      int done = 0;
      while (done < kPerProducer) {
        if (c.bounded_increment() != kBoundedFailure) {
          successes.fetch_add(1, std::memory_order_release);
          ++done;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  stop.store(true);
  consumer.join();

  EXPECT_EQ(successes.load(),
            static_cast<std::uint64_t>(kProducers) * kPerProducer);
  // Every success consumed one slot below the final bound.
  EXPECT_LE(c.counter(), c.bound());
}

TEST(CompletionCounter, DoneWhenCountReachesTarget) {
  CompletionCounter cc;
  EXPECT_TRUE(cc.done());  // nothing expected
  const auto epoch = cc.expect(3);
  EXPECT_FALSE(cc.done());
  cc.complete();
  cc.complete(2);
  EXPECT_TRUE(cc.done());
  EXPECT_TRUE(cc.reached(epoch));
}

TEST(CompletionCounter, ReusableAcrossEpochsWithoutReset) {
  CompletionCounter cc;
  const auto e1 = cc.expect(2);
  cc.complete(2);
  EXPECT_TRUE(cc.reached(e1));
  const auto e2 = cc.expect(5);
  EXPECT_FALSE(cc.reached(e2));
  cc.complete(5);
  EXPECT_TRUE(cc.reached(e2));
  EXPECT_EQ(cc.count(), 7u);
  EXPECT_EQ(cc.target(), 7u);
}

TEST(CompletionCounter, ConcurrentCompletions) {
  CompletionCounter cc;
  constexpr int kThreads = 8;
  constexpr int kEach = 10000;
  const auto epoch = cc.expect(kThreads * kEach);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < kEach; ++i) cc.complete();
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_TRUE(cc.reached(epoch));
  EXPECT_EQ(cc.count(), static_cast<std::uint64_t>(kThreads) * kEach);
}

}  // namespace
