// Task Bench conformance: the dependence patterns as pure functions
// (sorted, deduped, in range, exact producer/consumer inverses), and the
// runner's digest invariance — aggregated vs plain runs of every pattern
// must be bit-identical, with a clean fabric, under a chaos plan, and
// across a crash + rollback replay.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "net/fault.hpp"
#include "taskbench/patterns.hpp"
#include "taskbench/runner.hpp"

namespace {

using bgq::net::FaultPlan;
using bgq::taskbench::dependencies;
using bgq::taskbench::dependents;
using bgq::taskbench::kAllPatterns;
using bgq::taskbench::message_count;
using bgq::taskbench::parse_pattern;
using bgq::taskbench::Params;
using bgq::taskbench::Pattern;
using bgq::taskbench::pattern_name;
using bgq::taskbench::TaskBenchApp;

// ---------------------------------------------------------------------------
// Patterns as pure functions
// ---------------------------------------------------------------------------

TEST(TaskbenchPatterns, NamesRoundTrip) {
  for (Pattern p : kAllPatterns) {
    const auto parsed = parse_pattern(pattern_name(p));
    ASSERT_TRUE(parsed.has_value()) << pattern_name(p);
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_FALSE(parse_pattern("no-such-pattern").has_value());
}

TEST(TaskbenchPatterns, StepZeroHasNoDependencies) {
  for (Pattern p : kAllPatterns) {
    for (std::uint32_t t = 0; t < 8; ++t) {
      EXPECT_TRUE(dependencies(p, 8, 0, t).empty()) << pattern_name(p);
    }
  }
}

TEST(TaskbenchPatterns, DependenciesAreSortedUniqueAndInRange) {
  constexpr std::uint32_t kWidth = 11;  // odd width stresses tree/fft edges
  for (Pattern p : kAllPatterns) {
    for (std::uint32_t s = 1; s < 10; ++s) {
      for (std::uint32_t t = 0; t < kWidth; ++t) {
        const auto deps = dependencies(p, kWidth, s, t);
        EXPECT_TRUE(std::is_sorted(deps.begin(), deps.end()));
        EXPECT_EQ(std::adjacent_find(deps.begin(), deps.end()), deps.end())
            << pattern_name(p) << " step " << s << " task " << t;
        for (std::uint32_t d : deps) EXPECT_LT(d, kWidth);
      }
    }
  }
}

TEST(TaskbenchPatterns, DependentsAreTheExactInverseOfDependencies) {
  constexpr std::uint32_t kWidth = 9;
  for (Pattern p : kAllPatterns) {
    for (std::uint32_t s = 0; s + 1 < 8; ++s) {
      for (std::uint32_t producer = 0; producer < kWidth; ++producer) {
        const auto outs = dependents(p, kWidth, s, producer);
        for (std::uint32_t consumer = 0; consumer < kWidth; ++consumer) {
          const auto deps = dependencies(p, kWidth, s + 1, consumer);
          const bool produces =
              std::binary_search(outs.begin(), outs.end(), consumer);
          const bool consumes =
              std::binary_search(deps.begin(), deps.end(), producer);
          EXPECT_EQ(produces, consumes)
              << pattern_name(p) << " step " << s << ": " << producer
              << " -> " << consumer;
        }
      }
    }
  }
}

TEST(TaskbenchPatterns, MessageCountMatchesDependencySum) {
  constexpr std::uint32_t kWidth = 8, kSteps = 6;
  for (Pattern p : kAllPatterns) {
    std::uint64_t expect = 0;
    for (std::uint32_t s = 1; s < kSteps; ++s) {
      for (std::uint32_t t = 0; t < kWidth; ++t) {
        expect += dependencies(p, kWidth, s, t).size();
      }
    }
    EXPECT_EQ(message_count(p, kWidth, kSteps), expect) << pattern_name(p);
  }
}

// ---------------------------------------------------------------------------
// Runner conformance: digests must be machine-configuration invariant
// ---------------------------------------------------------------------------

struct RunOut {
  std::uint64_t digest = 0;
  double total = 0;
  bool finished = false;
  std::uint64_t tram_appends = 0;
  std::uint64_t recoveries = 0;
};

RunOut run(Pattern p, bool aggregated, const FaultPlan& faults = {},
           bool ft_crash = false, std::uint32_t steps = 10) {
  bgq::cvs::MachineConfig cfg;
  if (ft_crash) {
    // The test_recovery idiom: frequent checkpoints, fast failure
    // detection, one injected crash mid-run.
    cfg.nodes = 4;
    cfg.mode = bgq::cvs::Mode::kSmp;
    cfg.workers_per_process = 1;
    cfg.ft.enabled = true;
    cfg.ft.checkpoint_period_ms = 5;
    cfg.ft.heartbeat_period_ms = 2;
    cfg.ft.failure_timeout_ms = 15;
    cfg.ft.watchdog_abort = false;
  } else {
    cfg.nodes = 2;
    cfg.mode = bgq::cvs::Mode::kSmp;
    cfg.workers_per_process = 2;
  }
  cfg.faults = faults;
  cfg.tram.enabled = aggregated;
  bgq::cvs::Machine machine(cfg);
  bgq::charm::Runtime rt(machine);
  Params prm;
  prm.pattern = p;
  prm.width = 8;
  prm.steps = steps;
  prm.payload_bytes = 24;
  prm.grain = 50;
  TaskBenchApp app(rt, prm);
  machine.run([&](bgq::cvs::Pe& pe) {
    if (pe.rank() == 0) app.start(pe);
  });
  const bgq::trace::Report rep = machine.metrics_report();
  RunOut out;
  out.digest = app.digest();
  out.total = app.final_total();
  out.finished = app.finished();
  out.tram_appends = rep.value("tram.appends");
  out.recoveries = rep.value("ft.recoveries");
  return out;
}

TEST(TaskbenchConformance, AggregationPreservesDigestsForEveryPattern) {
  for (Pattern p : kAllPatterns) {
    const RunOut plain = run(p, /*aggregated=*/false);
    const RunOut tram = run(p, /*aggregated=*/true);
    ASSERT_TRUE(plain.finished) << pattern_name(p);
    ASSERT_TRUE(tram.finished) << pattern_name(p);
    EXPECT_EQ(plain.digest, tram.digest) << pattern_name(p);
    EXPECT_EQ(plain.total, tram.total) << pattern_name(p);
    EXPECT_GT(tram.tram_appends, 0u)
        << pattern_name(p) << ": the aggregated run never batched anything";
  }
}

TEST(TaskbenchConformance, AggregationPreservesDigestsUnderChaos) {
  const FaultPlan chaos =
      FaultPlan::parse("drop=0.02,dup=0.02,delay=0.05,seed=77");
  for (Pattern p : kAllPatterns) {
    const RunOut ref = run(p, /*aggregated=*/false);
    const RunOut tram = run(p, /*aggregated=*/true, chaos);
    ASSERT_TRUE(ref.finished) << pattern_name(p);
    ASSERT_TRUE(tram.finished) << pattern_name(p);
    EXPECT_EQ(ref.digest, tram.digest) << pattern_name(p);
    EXPECT_EQ(ref.total, tram.total) << pattern_name(p);
  }
}

TEST(TaskbenchConformance, AggregatedRunSurvivesCrashBitIdentical) {
  // Crash one process mid-run with aggregation on; the rollback replay
  // must land on the same digest as a crash-free unaggregated run —
  // stale staged batches and in-flight pre-crash batches must all be
  // discarded by the epoch checks, never replayed into fresh state.
  constexpr std::uint32_t kSteps = 40;  // crash at ~200 msgs lands early
  const Pattern p = Pattern::kStencil;
  const RunOut ref = run(p, /*aggregated=*/false, {}, false, kSteps);
  ASSERT_TRUE(ref.finished);
  const FaultPlan crash = FaultPlan::parse("crash@1:200msg");
  const RunOut tram =
      run(p, /*aggregated=*/true, crash, /*ft_crash=*/true, kSteps);
  ASSERT_TRUE(tram.finished);
  EXPECT_GE(tram.recoveries, 1u) << "the crash never fired or never healed";
  EXPECT_EQ(ref.digest, tram.digest);
  EXPECT_EQ(ref.total, tram.total);
}

}  // namespace
