// Transport-subsystem conformance suite.
//
// Three layers of checks, cheapest first:
//
//   * the wire codec and the Config grammar (pure functions);
//   * direct backend contracts — delivery, per-pair ordering, the
//     control plane, shared liveness/death state, ring-full
//     backpressure — driven on transport pairs living in this process
//     (the shm segment and socket mesh don't care whether the ranks are
//     processes or threads);
//   * the machine-level oracle: the same deterministic FFT mini-app run
//     as a 2-rank job over shm and socket (two Machines on two threads,
//     one emulated process each) must reproduce the in-process run's
//     per-element digests bit-for-bit — including under a chaos fault
//     plan, where the reliability protocol hides the drops.
//
// The multi-OS-process version of the oracle (real fork/exec ranks,
// crash + recovery) lives in tools/bgq-run; CI drives it directly.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "charm/ft_apps.hpp"
#include "net/fault.hpp"
#include "transport/config.hpp"
#include "transport/shm.hpp"
#include "transport/socket.hpp"
#include "transport/transport.hpp"
#include "transport/wire.hpp"

namespace {

using bgq::charm::FtFft2D;
using bgq::charm::Runtime;
using bgq::cvs::Machine;
using bgq::cvs::MachineConfig;
using bgq::cvs::Mode;
using bgq::cvs::Pe;
using bgq::net::Packet;
using bgq::net::TransferKind;
using bgq::transport::Config;
using bgq::transport::CtrlMsg;
using bgq::transport::DeliverySink;
using bgq::transport::InProcTransport;
using bgq::transport::Kind;
using bgq::transport::ShmTransport;
using bgq::transport::SocketTransport;
using bgq::transport::Transport;

/// Job-unique session tag: concurrent ctest invocations must not share
/// shm segments or socket paths.
std::string session(const char* tag) {
  return std::string("t") + std::to_string(::getpid()) + tag;
}

Config pair_config(Kind kind, unsigned nprocs, unsigned rank,
                   const std::string& sess) {
  Config c;
  c.kind = kind;
  c.nprocs = nprocs;
  c.rank = rank;
  c.session = sess;
  return c;
}

/// Sink that keeps every delivered packet (order-preserving).
struct CaptureSink final : DeliverySink {
  std::mutex mu;
  std::vector<std::unique_ptr<Packet>> got;
  void deliver_remote(Packet* p) override {
    std::lock_guard<std::mutex> lock(mu);
    got.emplace_back(p);
  }
  std::size_t count() {
    std::lock_guard<std::mutex> lock(mu);
    return got.size();
  }
};

/// Ctrl handler that keeps every message.
struct CtrlCapture {
  std::mutex mu;
  std::vector<CtrlMsg> got;
  void attach(Transport& t) {
    t.set_ctrl_handler([this](const CtrlMsg& m) {
      std::lock_guard<std::mutex> lock(mu);
      got.push_back(m);
    });
  }
  std::size_t count() {
    std::lock_guard<std::mutex> lock(mu);
    return got.size();
  }
};

Packet* make_packet(unsigned src, unsigned dst, std::uint64_t seq,
                    std::size_t payload_bytes = 32) {
  auto* p = new Packet;
  p->kind = TransferKind::kMemFifo;
  p->src = static_cast<bgq::topo::NodeId>(src);
  p->dst = static_cast<bgq::topo::NodeId>(dst);
  p->dispatch = 7;
  p->seq = seq;
  p->payload.resize(payload_bytes);
  for (std::size_t i = 0; i < payload_bytes; ++i) {
    p->payload[i] = static_cast<std::byte>((seq * 131 + i) & 0xff);
  }
  p->checksum = bgq::net::packet_checksum(*p);
  return p;
}

/// Poll `t` until `done()` or the deadline; returns whether done() held.
template <typename Pred>
bool poll_until(Transport& t, Pred done,
                std::chrono::milliseconds limit = std::chrono::seconds(10)) {
  const auto deadline = std::chrono::steady_clock::now() + limit;
  while (!done()) {
    t.poll();
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

// ---- wire codec -----------------------------------------------------------

TEST(Wire, PacketRoundTripPreservesEveryField) {
  Packet p;
  p.kind = TransferKind::kMemFifo;
  p.src = 3;
  p.dst = 1;
  p.dispatch = 0x1234;
  p.rec_fifo = 2;
  p.src_ctx = 5;
  p.flags = bgq::net::kPktReliable;
  p.seq = 0x1122334455667788ull;
  p.checksum = 0xCAFEBABEDEADBEEFull;
  p.cid = 42;
  p.wire_ns = 1234567;
  p.num_packets = 9;
  for (int i = 0; i < 11; ++i) p.metadata.push_back(std::byte(i));
  for (int i = 0; i < 300; ++i) p.payload.push_back(std::byte(i & 0xff));
  p.acks = {1, 2, 1000000007};

  std::vector<std::byte> frame;
  bgq::transport::wire::encode_packet(p, frame);

  // Frame header: u32 body length (counting the type byte) + type byte.
  ASSERT_GT(frame.size(), bgq::transport::wire::kFrameOverhead);
  std::uint32_t body_len = 0;
  for (int i = 0; i < 4; ++i) {
    body_len |= static_cast<std::uint32_t>(frame[i]) << (8 * i);
  }
  EXPECT_EQ(body_len + 4u, frame.size());
  EXPECT_EQ(static_cast<std::uint8_t>(frame[4]),
            bgq::transport::wire::kFrameData);

  std::unique_ptr<Packet> q(bgq::transport::wire::decode_packet(
      frame.data() + bgq::transport::wire::kFrameOverhead,
      frame.size() - bgq::transport::wire::kFrameOverhead));
  EXPECT_EQ(q->kind, TransferKind::kMemFifo);
  EXPECT_EQ(q->src, p.src);
  EXPECT_EQ(q->dst, p.dst);
  EXPECT_EQ(q->dispatch, p.dispatch);
  EXPECT_EQ(q->rec_fifo, p.rec_fifo);
  EXPECT_EQ(q->src_ctx, p.src_ctx);
  EXPECT_EQ(q->flags, p.flags);
  EXPECT_EQ(q->seq, p.seq);
  EXPECT_EQ(q->checksum, p.checksum);
  EXPECT_EQ(q->cid, p.cid);
  EXPECT_EQ(q->wire_ns, p.wire_ns);
  EXPECT_EQ(q->num_packets, p.num_packets);
  EXPECT_EQ(q->metadata, p.metadata);
  EXPECT_EQ(q->payload, p.payload);
  EXPECT_EQ(q->acks, p.acks);
  // The receiver re-verifies the checksum over what it decoded — codec
  // transparency means recomputing on the decoded packet gives the same
  // value as on the original.
  EXPECT_EQ(bgq::net::packet_checksum(*q), bgq::net::packet_checksum(p));
}

TEST(Wire, CtrlRoundTrip) {
  CtrlMsg m;
  m.type = 19;
  m.origin = 3;
  m.a = 0xA5A5A5A5ull;
  m.b = 77;
  m.c = ~0ull;
  for (int i = 0; i < 1000; ++i) m.blob.push_back(std::byte(i * 7));

  std::vector<std::byte> frame;
  bgq::transport::wire::encode_ctrl(m, frame);
  EXPECT_EQ(static_cast<std::uint8_t>(frame[4]),
            bgq::transport::wire::kFrameCtrl);
  const CtrlMsg d = bgq::transport::wire::decode_ctrl(
      frame.data() + bgq::transport::wire::kFrameOverhead,
      frame.size() - bgq::transport::wire::kFrameOverhead);
  EXPECT_EQ(d.type, m.type);
  EXPECT_EQ(d.origin, m.origin);
  EXPECT_EQ(d.a, m.a);
  EXPECT_EQ(d.b, m.b);
  EXPECT_EQ(d.c, m.c);
  EXPECT_EQ(d.blob, m.blob);
}

TEST(Wire, TruncatedFrameIsALoudError) {
  CtrlMsg m;
  m.blob.resize(64);
  std::vector<std::byte> frame;
  bgq::transport::wire::encode_ctrl(m, frame);
  // Chop the body: the bounds-checked reader must throw, not wild-read.
  EXPECT_THROW(bgq::transport::wire::decode_ctrl(
                   frame.data() + bgq::transport::wire::kFrameOverhead,
                   frame.size() - bgq::transport::wire::kFrameOverhead - 10),
               std::runtime_error);
}

TEST(Wire, RdmaTransfersCannotBeEncoded) {
  Packet p;
  p.kind = TransferKind::kRdmaRead;
  std::vector<std::byte> frame;
  EXPECT_THROW(bgq::transport::wire::encode_packet(p, frame),
               std::logic_error);
}

// ---- config grammar -------------------------------------------------------

TEST(TransportConfig, EmptySpecIsInProc) {
  const Config c = Config::parse("");
  EXPECT_EQ(c.kind, Kind::kInProc);
  EXPECT_FALSE(c.remote());
  EXPECT_EQ(c.nprocs, 1u);
}

TEST(TransportConfig, FullSpecParses) {
  const Config c = Config::parse(
      "kind=shm,nprocs=4,rank=2,session=job17,ring_kb=256");
  EXPECT_EQ(c.kind, Kind::kShm);
  EXPECT_TRUE(c.remote());
  EXPECT_EQ(c.nprocs, 4u);
  EXPECT_EQ(c.rank, 2u);
  EXPECT_EQ(c.session, "job17");
  EXPECT_EQ(c.ring_bytes, 256u * 1024u);
}

TEST(TransportConfig, SocketSpecParses) {
  const Config c = Config::parse(
      "kind=socket,nprocs=2,rank=1,session=s,tcp=1,port=20000,dir=/tmp/x");
  EXPECT_EQ(c.kind, Kind::kSocket);
  EXPECT_TRUE(c.use_tcp);
  EXPECT_EQ(c.base_port, 20000);
  EXPECT_EQ(c.socket_dir, "/tmp/x");
}

TEST(TransportConfig, ToSpecRoundTrips) {
  Config c;
  c.kind = Kind::kSocket;
  c.nprocs = 3;
  c.rank = 2;
  c.session = "abc";
  c.ring_bytes = 1u << 15;
  c.use_tcp = true;
  const Config d = Config::parse(c.to_spec());
  EXPECT_EQ(d.kind, c.kind);
  EXPECT_EQ(d.nprocs, c.nprocs);
  EXPECT_EQ(d.rank, c.rank);
  EXPECT_EQ(d.session, c.session);
  EXPECT_EQ(d.ring_bytes, c.ring_bytes);
  EXPECT_EQ(d.use_tcp, c.use_tcp);
}

TEST(TransportConfig, MalformedSpecsThrow) {
  EXPECT_THROW(Config::parse("kind=carrierpigeon"), std::invalid_argument);
  EXPECT_THROW(Config::parse("kind=shm,nprocs=banana"),
               std::invalid_argument);
  EXPECT_THROW(Config::parse("kind=shm,wat=1"), std::invalid_argument);
  // A rank outside the job is a config error, not a later crash.
  EXPECT_THROW(Config::parse("kind=shm,nprocs=2,rank=5"),
               std::invalid_argument);
}

// ---- inproc backend -------------------------------------------------------

TEST(InProc, EveryEndpointIsLocalAndInjectIsIllegal) {
  InProcTransport t(4);
  EXPECT_EQ(t.kind(), Kind::kInProc);
  for (unsigned i = 0; i < 4; ++i) EXPECT_TRUE(t.endpoint_local(i));
  EXPECT_EQ(t.poll(), 0u);
  EXPECT_THROW(t.inject(make_packet(0, 1, 1)), std::logic_error);
  // Liveness/death state still works — the transport is the fabric's
  // single home for it regardless of backend.
  t.kill_endpoint(2);
  EXPECT_TRUE(t.endpoint_dead(2));
  EXPECT_FALSE(t.endpoint_dead(1));
  t.touch_liveness(1, 12345);
  EXPECT_EQ(t.last_heard(1), 12345u);
}

// ---- backend pair contracts -----------------------------------------------

/// A connected pair of transports of `kind` (ranks 0 and 1 of a 2-rank
/// job).  Socket constructors handshake with each other, so one runs on
/// a helper thread.
struct Pair {
  std::unique_ptr<Transport> a, b;  // rank 0, rank 1

  static Pair make(Kind kind, const std::string& sess,
                   std::size_t ring_bytes = 1u << 16) {
    Pair p;
    if (kind == Kind::kShm) {
      ShmTransport::unlink_session(sess);
      Config c0 = pair_config(kind, 2, 0, sess);
      Config c1 = pair_config(kind, 2, 1, sess);
      c0.ring_bytes = c1.ring_bytes = ring_bytes;
      p.a = std::make_unique<ShmTransport>(c0);
      p.b = std::make_unique<ShmTransport>(c1);
    } else {
      std::thread t0([&] {
        p.a = std::make_unique<SocketTransport>(pair_config(kind, 2, 0, sess));
      });
      p.b = std::make_unique<SocketTransport>(pair_config(kind, 2, 1, sess));
      t0.join();
    }
    return p;
  }
};

void check_delivery_and_ordering(Transport& tx, Transport& rx) {
  CaptureSink sink;
  rx.set_sink(&sink);
  constexpr std::uint64_t kN = 200;
  for (std::uint64_t i = 1; i <= kN; ++i) {
    tx.inject(make_packet(0, 1, i, 16 + (i % 97)));
  }
  tx.flush();
  ASSERT_TRUE(poll_until(rx, [&] { return sink.count() == kN; }))
      << "only " << sink.count() << "/" << kN << " packets arrived";
  // Per-pair FIFO: seq 1..kN in exactly injection order, payloads intact.
  for (std::uint64_t i = 0; i < kN; ++i) {
    const Packet& p = *sink.got[i];
    ASSERT_EQ(p.seq, i + 1);
    EXPECT_EQ(p.payload.size(), 16 + ((i + 1) % 97));
    EXPECT_EQ(bgq::net::packet_checksum(p), p.checksum);
  }
  EXPECT_EQ(tx.counters().injects.load(), kN);
  EXPECT_GE(rx.counters().frames_in.load(), kN);
}

void check_ctrl_plane(Transport& a, Transport& b) {
  CtrlCapture ca, cb;
  ca.attach(a);
  cb.attach(b);
  // Directed both ways; ctrl must interleave FIFO with data frames on the
  // same pair, so sandwich a ctrl between data packets.
  CaptureSink sink;
  b.set_sink(&sink);
  a.inject(make_packet(0, 1, 1));
  CtrlMsg m;
  m.type = 21;
  m.a = 7;
  m.b = 8;
  m.c = 9;
  m.blob = {std::byte{0xAB}, std::byte{0xCD}};
  a.send_ctrl(1, m);
  a.inject(make_packet(0, 1, 2));
  a.flush();
  ASSERT_TRUE(poll_until(b, [&] { return sink.count() == 2 && cb.count() == 1; }));
  EXPECT_EQ(cb.got[0].type, 21);
  EXPECT_EQ(cb.got[0].a, 7u);
  EXPECT_EQ(cb.got[0].blob, m.blob);

  CtrlMsg r;
  r.type = 22;
  b.send_ctrl(0, r);
  b.flush();
  ASSERT_TRUE(poll_until(a, [&] { return ca.count() == 1; }));
  EXPECT_EQ(ca.got[0].type, 22);

  // Broadcast (dst = -1) reaches every *other* rank, not the sender.
  CtrlMsg bc;
  bc.type = 23;
  a.send_ctrl(-1, bc);
  a.flush();
  ASSERT_TRUE(poll_until(b, [&] { return cb.count() == 2; }));
  a.poll();
  EXPECT_EQ(ca.count(), 1u) << "broadcast must not loop back to sender";
  EXPECT_EQ(cb.got[1].type, 23);
}

TEST(ShmPair, DeliveryAndPerPairOrdering) {
  const std::string s = session("shmord");
  Pair p = Pair::make(Kind::kShm, s);
  check_delivery_and_ordering(*p.a, *p.b);
}

TEST(ShmPair, CtrlPlaneDirectedAndBroadcast) {
  const std::string s = session("shmctl");
  Pair p = Pair::make(Kind::kShm, s);
  check_ctrl_plane(*p.a, *p.b);
}

TEST(ShmPair, LivenessAndDeathAreSharedAcrossRanks) {
  const std::string s = session("shmlive");
  Pair p = Pair::make(Kind::kShm, s);
  // Last-heard stamps live in the segment header: a stamp written through
  // one rank's transport is read by the other's failure detector.
  p.a->touch_liveness(0, 777);
  EXPECT_EQ(p.b->last_heard(0), 777u);
  // Death flags too — and a kill declared by either side blackholes
  // future sends instead of wedging the producer on a never-drained ring.
  p.b->kill_endpoint(1);
  EXPECT_TRUE(p.a->endpoint_dead(1));
  CaptureSink sink;
  p.b->set_sink(&sink);
  const std::uint64_t before = p.a->blackholed();
  // Fill well past the ring capacity: without the dead-consumer escape
  // this would deadlock the test.
  for (int i = 0; i < 50; ++i) p.a->inject(make_packet(0, 1, 100 + i, 2048));
  EXPECT_GT(p.a->blackholed(), before);
}

TEST(ShmPair, FullRingBackpressuresUntilConsumerDrains) {
  const std::string s = session("shmfull");
  // 4 KiB rings: a dozen 1 KiB payloads cannot fit at once.
  Pair p = Pair::make(Kind::kShm, s, /*ring_bytes=*/4096);
  CaptureSink sink;
  p.b->set_sink(&sink);
  constexpr std::uint64_t kN = 12;
  std::thread producer([&] {
    for (std::uint64_t i = 1; i <= kN; ++i) {
      p.a->inject(make_packet(0, 1, i, 1024));
    }
  });
  // Let the producer actually hit the wall before draining: ring_full is
  // the backpressure signal the metrics export.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (p.a->counters().ring_full.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_GE(p.a->counters().ring_full.load(), 1u);
  ASSERT_TRUE(poll_until(*p.b, [&] { return sink.count() == kN; }));
  producer.join();
  for (std::uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(sink.got[i]->seq, i + 1) << "backpressure must not reorder";
  }
}

TEST(ShmPair, OversizedFrameIsRejectedLoudly) {
  const std::string s = session("shmbig");
  Pair p = Pair::make(Kind::kShm, s, /*ring_bytes=*/4096);
  // A frame that can never fit must throw (raise ring_kb), not spin.
  EXPECT_THROW(p.a->inject(make_packet(0, 1, 1, 64 * 1024)),
               std::runtime_error);
}

TEST(SocketPair, DeliveryAndPerPairOrdering) {
  const std::string s = session("sockord");
  Pair p = Pair::make(Kind::kSocket, s);
  check_delivery_and_ordering(*p.a, *p.b);
}

TEST(SocketPair, CtrlPlaneDirectedAndBroadcast) {
  const std::string s = session("sockctl");
  Pair p = Pair::make(Kind::kSocket, s);
  check_ctrl_plane(*p.a, *p.b);
}

TEST(SocketPair, ArrivalStampsLiveness) {
  const std::string s = session("socklive");
  Pair p = Pair::make(Kind::kSocket, s);
  // On a socket, hearing from a peer is the only evidence it is alive: a
  // received ctrl frame (heartbeats ride the ctrl plane) must refresh the
  // local last-heard table.  (Data frames are stamped by the fabric sink
  // on delivery, same as the other backends.)
  p.b->enable_liveness();
  CtrlCapture cb;
  cb.attach(*p.b);
  EXPECT_EQ(p.b->last_heard(0), 0u);
  CtrlMsg hb;
  hb.type = 16;
  p.a->send_ctrl(1, hb);
  p.a->flush();
  ASSERT_TRUE(poll_until(*p.b, [&] { return cb.count() == 1; }));
  EXPECT_GT(p.b->last_heard(0), 0u);
}

// ---- machine-level digest parity ------------------------------------------

/// One rank's share of an FFT job: per-element digests of the elements
/// homed on it, plus completion state.
struct RankResult {
  bool ok = false;
  bool finished = false;
  std::string error;
  std::map<std::size_t, std::uint64_t> elems;
};

constexpr std::size_t kGrid = 8;
constexpr std::size_t kProcs = 2;
constexpr std::uint32_t kSteps = 6;

/// Run one rank (or, with an inproc config, the whole job) of the
/// deterministic FFT mini-app and report its locally-homed elements.
RankResult run_fft_rank(const Config& tc, const bgq::net::FaultPlan& faults) {
  RankResult out;
  try {
    MachineConfig cfg;
    cfg.nodes = kProcs;
    cfg.mode = Mode::kSmp;
    cfg.workers_per_process = 1;
    cfg.transport = tc;
    cfg.faults = faults;
    Machine machine(cfg);
    Runtime rt(machine);
    FtFft2D app(rt, kGrid, kProcs, kSteps);
    machine.run([&](Pe& pe) {
      if (pe.rank() == 0) app.start(pe);
    });
    out.finished = app.finished();
    const unsigned wpp = machine.config().effective_workers_per_process();
    for (std::size_t e = 0; e < app.element_count(); ++e) {
      const std::size_t owner = app.element_home(e) / wpp;
      if (!machine.process_local(owner)) continue;
      out.elems[e] = app.element_digest(e);
    }
    out.ok = true;
  } catch (const std::exception& ex) {
    out.error = ex.what();
  }
  return out;
}

/// Merge both ranks' reports and fold the per-element digests in element
/// order — the combined job digest (same fold as tools/bgq-app).
std::uint64_t merged_digest(const RankResult& r0, const RankResult& r1,
                            std::size_t expect_elems) {
  std::map<std::size_t, std::uint64_t> all = r0.elems;
  for (const auto& [i, d] : r1.elems) {
    EXPECT_EQ(all.count(i), 0u) << "element " << i << " reported twice";
    all[i] = d;
  }
  EXPECT_EQ(all.size(), expect_elems) << "element coverage has gaps";
  std::uint64_t h = 14695981039346656037ull;
  for (const auto& [i, d] : all) {
    (void)i;
    h = bgq::charm::fnv1a(h, &d, sizeof(d));
  }
  return h;
}

std::uint64_t run_twin_job(Kind kind, const std::string& sess,
                           const bgq::net::FaultPlan& faults) {
  if (kind == Kind::kShm) ShmTransport::unlink_session(sess);
  RankResult r0, r1;
  std::thread t0([&] { r0 = run_fft_rank(pair_config(kind, 2, 0, sess), faults); });
  std::thread t1([&] { r1 = run_fft_rank(pair_config(kind, 2, 1, sess), faults); });
  t0.join();
  t1.join();
  EXPECT_TRUE(r0.ok) << "rank 0: " << r0.error;
  EXPECT_TRUE(r1.ok) << "rank 1: " << r1.error;
  EXPECT_TRUE(r0.finished || r1.finished);
  return merged_digest(r0, r1, kProcs);
}

TEST(DigestParity, ShmAndSocketMatchInProcess) {
  // Reference: the whole job in this process over the classic fabric.
  const RankResult ref = run_fft_rank(Config{}, bgq::net::FaultPlan{});
  ASSERT_TRUE(ref.ok) << ref.error;
  ASSERT_TRUE(ref.finished);
  const std::uint64_t want = merged_digest(ref, RankResult{}, kProcs);

  const std::uint64_t shm =
      run_twin_job(Kind::kShm, session("parshm"), bgq::net::FaultPlan{});
  EXPECT_EQ(shm, want) << "shm transport changed application state";

  const std::uint64_t sock =
      run_twin_job(Kind::kSocket, session("parsock"), bgq::net::FaultPlan{});
  EXPECT_EQ(sock, want) << "socket transport changed application state";
}

TEST(DigestParity, ChaosFabricOverShmStillMatches) {
  // Chaos is injected on the sender's fabric *before* the transport hop;
  // the PAMI reliability protocol hides drop/dup/reorder, so the final
  // application state must still be bit-identical to a clean run.
  const RankResult ref = run_fft_rank(Config{}, bgq::net::FaultPlan{});
  ASSERT_TRUE(ref.ok) << ref.error;
  const std::uint64_t want = merged_digest(ref, RankResult{}, kProcs);

  bgq::net::FaultPlan chaos;
  chaos.drop = 0.02;
  chaos.duplicate = 0.02;
  chaos.delay = 0.05;
  chaos.seed = 0xBADC0FFEEull;
  const std::uint64_t got =
      run_twin_job(Kind::kShm, session("parchaos"), chaos);
  EXPECT_EQ(got, want) << "chaos over shm leaked into application state";
}

}  // namespace
