// Reproducible-seed support for randomized tests.
//
// Every randomized test derives its RNG seed through seed_or(): the
// BGQ_TEST_SEED environment variable overrides the built-in default, and
// the effective seed is printed on stderr so any failing run can be
// replayed exactly:
//
//   BGQ_TEST_SEED=12345 ctest -R Stress --output-on-failure
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace bgq::test_support {

/// The BGQ_TEST_SEED env override, or `fallback` when unset/unparsable.
inline std::uint64_t seed_or(std::uint64_t fallback) {
  if (const char* env = std::getenv("BGQ_TEST_SEED")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 0);
    if (end != env && end != nullptr && *end == '\0') {
      return static_cast<std::uint64_t>(v);
    }
    std::fprintf(stderr,
                 "[   SEED   ] ignoring unparsable BGQ_TEST_SEED=\"%s\"\n",
                 env);
  }
  return fallback;
}

/// seed_or() plus a stderr log line naming the consuming test, so the seed
/// of every randomized run appears in the log even on success.
inline std::uint64_t announce_seed(const char* what, std::uint64_t fallback) {
  const std::uint64_t s = seed_or(fallback);
  std::fprintf(stderr,
               "[   SEED   ] %s: seed=%llu (replay: BGQ_TEST_SEED=%llu)\n",
               what, static_cast<unsigned long long>(s),
               static_cast<unsigned long long>(s));
  return s;
}

/// Scale factor for schedule-count-heavy harness tests: BGQ_HARNESS_SCALE
/// divides the default schedule counts (sanitizer CI jobs set it to keep
/// wall time bounded).  Returns at least 1.
inline std::uint64_t harness_scale() {
  if (const char* env = std::getenv("BGQ_HARNESS_SCALE")) {
    const unsigned long long v = std::strtoull(env, nullptr, 0);
    if (v >= 1) return static_cast<std::uint64_t>(v);
  }
  return 1;
}

}  // namespace bgq::test_support
