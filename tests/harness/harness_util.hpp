// Shared driver for the concurrency-correctness harness tests: runs one
// set of thread bodies under the cooperative schedule fuzzer with a
// deadlock watchdog, and provides the generic fuzz-one-schedule loops for
// the queue family so the real structures and their seeded mutants go
// through identical machinery.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "verify/history.hpp"
#include "verify/linearize.hpp"
#include "verify/scheduler.hpp"

namespace bgq::harness {

using verify::FuzzScheduler;
using verify::History;
using verify::LinResult;
using verify::Op;
using verify::OpKind;
using verify::ScheduleTrace;

struct RunOptions {
  std::uint64_t seed = 1;
  const std::vector<std::uint8_t>* replay = nullptr;
  bool deterministic_fallback = false;
  std::uint64_t max_points = 200000;
  /// Watchdog: if the bodies have not finished after this long the run is
  /// declared deadlocked, the scheduler goes free-run, and `rescue` is
  /// invoked repeatedly (e.g. a rescue gate.wake()) until threads drain.
  std::chrono::milliseconds watchdog{10000};
  std::function<void()> rescue;
};

struct RunResult {
  ScheduleTrace trace;
  bool deadlocked = false;
};

/// Execute `bodies` (one per thread, slot = index) under a FuzzScheduler.
inline RunResult run_schedule(const RunOptions& opt,
                              const std::vector<std::function<void()>>& bodies) {
  FuzzScheduler::Options so;
  so.seed = opt.seed;
  so.replay = opt.replay;
  so.deterministic_fallback = opt.deterministic_fallback;
  so.max_points = opt.max_points;
  FuzzScheduler sched(so);
  sched.reserve(static_cast<int>(bodies.size()));
  sched.install();

  std::atomic<int> done{0};
  std::vector<std::thread> threads;
  threads.reserve(bodies.size());
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    threads.emplace_back([&, i] {
      {
        FuzzScheduler::ThreadGuard guard(sched, static_cast<int>(i));
        bodies[i]();
      }
      done.fetch_add(1, std::memory_order_release);
    });
  }
  sched.start();

  RunResult r;
  const auto deadline = std::chrono::steady_clock::now() + opt.watchdog;
  while (done.load(std::memory_order_acquire) <
         static_cast<int>(bodies.size())) {
    if (!r.deadlocked && std::chrono::steady_clock::now() > deadline) {
      r.deadlocked = true;
      sched.enter_free_run();
    }
    if (r.deadlocked && opt.rescue) opt.rescue();
    std::this_thread::yield();
  }
  for (auto& t : threads) t.join();
  sched.uninstall();
  r.trace = sched.trace();
  return r;
}

/// Replay line for a failing schedule: everything needed to reproduce it.
inline std::string describe_run(std::uint64_t seed, const RunResult& r) {
  std::string s = "seed=" + std::to_string(seed);
  s += r.deadlocked ? " DEADLOCK" : "";
  s += r.trace.truncated ? " TRUNCATED" : "";
  s += " points=" + std::to_string(r.trace.points);
  s += " decisions=[";
  for (std::size_t i = 0; i < r.trace.choices.size(); ++i) {
    if (i) s += ',';
    s += std::to_string(int(r.trace.choices[i]));
    s += '/';
    s += std::to_string(int(r.trace.arity[i]));
  }
  s += ']';
  return s;
}

// ---- generic queue fuzzing ------------------------------------------------

inline std::uint64_t* id_to_ptr(std::uint64_t id) {
  return reinterpret_cast<std::uint64_t*>(id);  // ids start at 1, never null
}
inline std::uint64_t ptr_to_id(std::uint64_t* p) {
  return reinterpret_cast<std::uint64_t>(p);
}

struct QueueFuzzConfig {
  std::size_t ring = 2;
  int producers = 2;
  int per_producer = 3;
  int consumer_attempt_cap = 400;
  std::uint64_t seed = 1;
  const std::vector<std::uint8_t>* replay = nullptr;
  bool deterministic_fallback = false;
  std::chrono::milliseconds watchdog{10000};
};

struct QueueFuzzOutcome {
  LinResult lin;
  RunResult run;
  std::vector<Op> history;
};

/// One fuzzed schedule over any queue with `bool enqueue(T)` /
/// `T try_dequeue()` (the L2AtomicQueue shape, including the mutants).
/// Producers are slots 0..P-1, the consumer is the last slot; after the
/// threads join, the driver drains the queue and records one final
/// dequeue-empty probe — the op that convicts any queue that lost a
/// message.
template <typename Queue, typename Spec = verify::BagQueueSpec>
QueueFuzzOutcome fuzz_queue_once(const QueueFuzzConfig& cfg) {
  Queue q(cfg.ring);
  History h(256);
  const int total = cfg.producers * cfg.per_producer;

  std::vector<std::function<void()>> bodies;
  for (int t = 0; t < cfg.producers; ++t) {
    bodies.emplace_back([&, t] {
      for (int i = 0; i < cfg.per_producer; ++i) {
        const std::uint64_t id =
            static_cast<std::uint64_t>(t) * cfg.per_producer + i + 1;
        const auto hd = h.begin(t, OpKind::kEnqueue, id);
        q.enqueue(id_to_ptr(id));
        h.end(hd);
      }
    });
  }
  bodies.emplace_back([&] {
    // Consumer: record successful dequeues; a failed poll keeps its handle
    // open so the eventual success carries the full interval, and a handle
    // still open at the attempt cap is abandoned (never closed).
    int got = 0;
    History::Handle hd = History::kNoHandle;
    for (int attempts = 0;
         got < total && attempts < cfg.consumer_attempt_cap; ++attempts) {
      if (hd == History::kNoHandle) {
        hd = h.begin(cfg.producers, OpKind::kDequeue);
      }
      if (std::uint64_t* p = q.try_dequeue()) {
        h.end(hd, ptr_to_id(p));
        hd = History::kNoHandle;
        ++got;
      }
    }
  });

  RunOptions ro;
  ro.seed = cfg.seed;
  ro.replay = cfg.replay;
  ro.deterministic_fallback = cfg.deterministic_fallback;
  ro.watchdog = cfg.watchdog;

  QueueFuzzOutcome out;
  out.run = run_schedule(ro, bodies);

  // Post-join drain from the (quiescent) driver, then the final emptiness
  // probe: with every enqueue completed and the queue drained dry, a bag
  // that is still non-empty means a message was lost.  The drain is capped:
  // a mutant whose emptiness protocol is broken (e.g. stale slots) would
  // otherwise hand out phantom messages forever — and the surplus dequeues
  // themselves convict it.
  const int drv = cfg.producers + 1;
  for (int d = 0; d < total + 4; ++d) {
    std::uint64_t* p = q.try_dequeue();
    if (!p) break;
    h.record(drv, OpKind::kDequeue, 0, ptr_to_id(p));
  }
  h.record(drv, OpKind::kDequeueEmpty);

  out.history = h.ops();
  out.lin = verify::check_linearizable<Spec>(out.history);
  if (h.overflowed()) {
    out.lin.verdict = verify::LinVerdict::kLimit;
    out.lin.message = "history capacity overflow";
  }
  return out;
}

// ---- generic gate fuzzing -------------------------------------------------

/// Take one unit of work if any is available.
inline bool take_one(std::atomic<int>& work) {
  int w = work.load(std::memory_order_acquire);
  while (w > 0) {
    if (work.compare_exchange_weak(w, w - 1, std::memory_order_acq_rel)) {
      return true;
    }
  }
  return false;
}

struct GateFuzzConfig {
  int rounds = 3;        ///< work items the producer posts
  int waiters = 1;
  int waiter_cap = 25;   ///< recorded iterations per waiter (history budget)
  std::uint64_t seed = 1;
  const std::vector<std::uint8_t>* replay = nullptr;
  bool deterministic_fallback = false;
  std::chrono::milliseconds watchdog{5000};
};

struct GateFuzzOutcome {
  LinResult lin;
  RunResult run;
  std::vector<Op> history;
};

/// One fuzzed schedule over any gate with the prepare/cancel/commit/wake
/// protocol (WaitGate and MutantLatchGate).  The producer posts `rounds`
/// work items, waking the gate after each, then sets `done` and issues a
/// final flush wake; each waiter consumes work and sleeps through the
/// two-phase protocol when it finds none.  The recorded history is checked
/// against GateSpec: every commit must be justified by a wake that advanced
/// the epoch past the prepare's snapshot.
template <typename Gate>
GateFuzzOutcome fuzz_gate_once(const GateFuzzConfig& cfg) {
  Gate gate;
  History h(256);
  std::atomic<int> work{0};
  std::atomic<int> consumed{0};
  std::atomic<bool> done{false};

  std::vector<std::function<void()>> bodies;
  for (int t = 0; t < cfg.waiters; ++t) {
    bodies.emplace_back([&, t] {
      for (int iter = 0;
           iter < cfg.waiter_cap &&
           consumed.load(std::memory_order_acquire) < cfg.rounds;
           ++iter) {
        verify::schedule_point("gatefuzz.waiter.iter");
        if (take_one(work)) {
          consumed.fetch_add(1, std::memory_order_acq_rel);
          continue;
        }
        if (done.load(std::memory_order_acquire)) break;
        const auto hp = h.begin(t, OpKind::kPrepare);
        const std::uint64_t seen = gate.prepare_wait();
        h.end(hp, seen);
        // The §II protocol: re-check for work after announcing intent.
        if (work.load(std::memory_order_acquire) > 0 ||
            done.load(std::memory_order_acquire)) {
          const auto hc = h.begin(t, OpKind::kCancel);
          gate.cancel_wait();
          h.end(hc);
          continue;
        }
        const auto hw = h.begin(t, OpKind::kCommit, seen);
        gate.commit_wait(seen);
        h.end(hw);
      }
    });
  }
  bodies.emplace_back([&] {
    const int t = cfg.waiters;
    for (int r = 0; r < cfg.rounds; ++r) {
      work.fetch_add(1, std::memory_order_acq_rel);
      const auto hw = h.begin(t, OpKind::kWake);
      gate.wake();
      h.end(hw);
      // Yield between rounds: without a point here the token could never
      // change hands between one wake's response and the next wake's
      // invocation, and no commit could ever be stamped inside that gap —
      // exactly where a spurious latch-commit must be caught.
      verify::schedule_point("gatefuzz.producer.gap");
    }
    done.store(true, std::memory_order_release);
    const auto hw = h.begin(t, OpKind::kWake);  // flush any parked waiter
    gate.wake();
    h.end(hw);
  });

  RunOptions ro;
  ro.seed = cfg.seed;
  ro.replay = cfg.replay;
  ro.deterministic_fallback = cfg.deterministic_fallback;
  ro.watchdog = cfg.watchdog;
  ro.rescue = [&] { gate.wake(); };

  GateFuzzOutcome out;
  out.run = run_schedule(ro, bodies);
  out.history = h.ops();
  out.lin = verify::check_linearizable<verify::GateSpec>(out.history);
  if (h.overflowed()) {
    out.lin.verdict = verify::LinVerdict::kLimit;
    out.lin.message = "history capacity overflow";
  }
  return out;
}

}  // namespace bgq::harness
