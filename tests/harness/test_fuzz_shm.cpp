// Schedule-fuzzed checks for the shared-memory transport's SPSC byte
// ring (transport/shm_ring.hpp).  The harness build compiles the ring's
// BGQ_SCHED_POINT markers (shmring.push.full / push.copied / peek.copied
// / consume) live, so the fuzzer can serialize producer and consumer
// inside the racy windows — between the data memcpy and the index
// publication — and prove the Lamport protocol holds there:
//
//   * the consumer sees a byte stream equal to the concatenation of the
//     pushed frames, in order (FIFO, never torn, never duplicated);
//   * a frame is visible all-or-nothing: a successful header peek means
//     the body peek succeeds with the right bytes, because try_push
//     publishes the whole frame with one release-store;
//   * a full ring fails the push without corrupting anything, and the
//     producer's retry eventually lands once the consumer frees space.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "harness_util.hpp"
#include "test_seed.hpp"
#include "transport/shm_ring.hpp"
#include "verify/scheduler.hpp"

namespace {

using bgq::harness::describe_run;
using bgq::harness::run_schedule;
using bgq::harness::RunOptions;
using bgq::test_support::announce_seed;
using bgq::test_support::harness_scale;
using bgq::transport::ShmRingCtrl;
using bgq::transport::ShmRingView;
using bgq::verify::exhaust_schedules;

/// Deterministic body byte for frame `f`, offset `j`.
std::uint8_t body_byte(std::size_t f, std::size_t j) {
  return static_cast<std::uint8_t>((f * 37 + j * 11 + 5) & 0xff);
}

/// Frame length for frame `f` (varied so wraparound happens constantly
/// on a small ring).
std::size_t body_len(std::size_t f, std::size_t max_body) {
  return 1 + (f * 3 + 1) % max_body;
}

struct TransferResult {
  bool ok = false;
  std::string error;
};

/// Producer/consumer bodies moving `frames` length-prefixed frames
/// through a ring of `cap` bytes; the consumer verifies content in-line.
/// Mirrors the transport's real access pattern: peek the 1-byte header,
/// peek the body at an offset, then consume the whole frame at once.
void make_bodies(ShmRingCtrl* ctrl, std::byte* data, std::size_t cap,
                 std::size_t frames, std::size_t max_body,
                 TransferResult* result,
                 std::vector<std::function<void()>>& bodies) {
  bodies.emplace_back([=] {
    ShmRingView tx(ctrl, data, cap);  // producer-side view
    std::vector<std::byte> frame;
    for (std::size_t f = 0; f < frames; ++f) {
      const std::size_t len = body_len(f, max_body);
      frame.clear();
      frame.push_back(static_cast<std::byte>(len));
      for (std::size_t j = 0; j < len; ++j) {
        frame.push_back(static_cast<std::byte>(body_byte(f, j)));
      }
      while (!tx.try_push(frame.data(), frame.size())) {
      }
    }
  });
  bodies.emplace_back([=] {
    ShmRingView rx(ctrl, data, cap);  // consumer-side view
    std::vector<std::byte> body(max_body);
    for (std::size_t f = 0; f < frames;) {
      std::byte head;
      if (!rx.peek(0, &head, 1)) continue;
      const std::size_t len = static_cast<std::size_t>(head);
      const std::size_t want = body_len(f, max_body);
      if (len != want) {
        result->error = "frame " + std::to_string(f) + ": header says " +
                        std::to_string(len) + ", expected " +
                        std::to_string(want);
        return;
      }
      // All-or-nothing visibility: the header was readable, so the body
      // must be too — try_push published them with one release-store.
      if (!rx.peek(1, body.data(), len)) {
        result->error = "frame " + std::to_string(f) + ": torn (header "
                        "visible, body not)";
        return;
      }
      for (std::size_t j = 0; j < len; ++j) {
        if (static_cast<std::uint8_t>(body[j]) != body_byte(f, j)) {
          result->error = "frame " + std::to_string(f) + ": byte " +
                          std::to_string(j) + " corrupted";
          return;
        }
      }
      rx.consume(1 + len);
      ++f;
    }
    result->ok = true;
  });
}

TEST(FuzzShmRing, FifoFramesSurviveFuzzedSchedules) {
  const std::uint64_t base = announce_seed("FuzzShmRing.Fifo", 0x5112);
  const std::uint64_t n =
      std::max<std::uint64_t>(2000 / harness_scale(), 10);
  // Ring barely larger than the biggest frame: the full/retry path and
  // the wraparound copies run on nearly every push.
  constexpr std::size_t kCap = 16;
  constexpr std::size_t kMaxBody = 7;
  constexpr std::size_t kFrames = 8;
  for (std::uint64_t i = 0; i < n; ++i) {
    ShmRingCtrl ctrl;
    std::vector<std::byte> data(kCap);
    TransferResult result;
    std::vector<std::function<void()>> bodies;
    make_bodies(&ctrl, data.data(), kCap, kFrames, kMaxBody, &result, bodies);
    RunOptions ro;
    ro.seed = base + i;
    const auto run = run_schedule(ro, bodies);
    ASSERT_FALSE(run.deadlocked) << describe_run(ro.seed, run);
    ASSERT_TRUE(result.ok) << describe_run(ro.seed, run) << "\n"
                           << result.error;
  }
}

TEST(FuzzShmRing, ExhaustiveSmallBound) {
  // Systematically enumerate every interleaving (up to the decision
  // bound) of 3 frames through an 8-byte ring — tight enough that full,
  // wrap and publication races all occur inside the enumerated window.
  constexpr std::size_t kCap = 8;
  constexpr std::size_t kMaxBody = 4;
  constexpr std::size_t kFrames = 3;
  std::uint64_t violations = 0;
  std::string first_bad;
  const std::uint64_t runs = exhaust_schedules(
      12, 30000, [&](const std::vector<std::uint8_t>& prefix) {
        ShmRingCtrl ctrl;
        std::vector<std::byte> data(kCap);
        TransferResult result;
        std::vector<std::function<void()>> bodies;
        make_bodies(&ctrl, data.data(), kCap, kFrames, kMaxBody, &result,
                    bodies);
        RunOptions ro;
        ro.seed = 13;
        ro.replay = &prefix;
        ro.deterministic_fallback = true;
        const auto run = run_schedule(ro, bodies);
        if (run.deadlocked || !result.ok) {
          ++violations;
          if (first_bad.empty()) {
            first_bad = describe_run(ro.seed, run) + "\n" + result.error;
          }
        }
        return run.trace;
      });
  EXPECT_EQ(violations, 0u) << first_bad;
  // The enumeration must actually branch; a handful of runs would mean
  // the ring's schedule points are dead in this build.
  EXPECT_GT(runs, 50u);
  std::fprintf(stderr, "[ EXHAUST  ] ShmRing: %llu schedules\n",
               static_cast<unsigned long long>(runs));
}

TEST(FuzzShmRing, FullRingRejectsWithoutCorruption) {
  // Single-threaded boundary check rides along: fill to exactly capacity,
  // verify the next push fails clean, drain and verify every byte.
  constexpr std::size_t kCap = 8;
  ShmRingCtrl ctrl;
  std::vector<std::byte> data(kCap);
  ShmRingView ring(&ctrl, data.data(), kCap);
  std::byte five[5] = {std::byte{1}, std::byte{2}, std::byte{3},
                       std::byte{4}, std::byte{5}};
  std::byte three[3] = {std::byte{6}, std::byte{7}, std::byte{8}};
  ASSERT_TRUE(ring.try_push(five, 5));
  ASSERT_TRUE(ring.try_push(three, 3));  // exactly full
  EXPECT_EQ(ring.writable(), 0u);
  EXPECT_FALSE(ring.try_push(three, 1));  // no room for even one byte
  std::byte out[8];
  ASSERT_TRUE(ring.peek(0, out, 8));
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(static_cast<int>(out[i]), i + 1);
  }
  ring.consume(8);
  EXPECT_EQ(ring.readable(), 0u);
  // Wrapped reuse after the drain: offsets past cap still read right.
  ASSERT_TRUE(ring.try_push(five, 5));
  ASSERT_TRUE(ring.peek(0, out, 5));
  EXPECT_EQ(static_cast<int>(out[4]), 5);
}

}  // namespace
