// Schedule-fuzzed exclusivity tests for the pool allocator (§III-B): under
// every explored interleaving of local allocs, local frees, and lockless
// cross-thread frees, no buffer may be live in two hands at once and no
// free may act on a dead buffer.  This target recompiles pool_allocator.cpp
// with BGQ_SCHEDULE_POINTS so the pool hot path itself yields to the
// fuzzer.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "alloc/pool_allocator.hpp"
#include "harness_util.hpp"
#include "test_seed.hpp"
#include "verify/scheduler.hpp"

namespace {

using bgq::alloc::PoolAllocator;
using bgq::harness::ptr_to_id;
using bgq::harness::RunOptions;
using bgq::harness::run_schedule;
using bgq::test_support::announce_seed;
using bgq::test_support::harness_scale;
using bgq::verify::AllocSpec;
using bgq::verify::check_linearizable;
using bgq::verify::exhaust_schedules;
using bgq::verify::History;
using bgq::verify::LinResult;
using bgq::verify::OpKind;
using bgq::verify::ScheduleTrace;

inline std::uint64_t pid(void* p) {
  return ptr_to_id(static_cast<std::uint64_t*>(p));
}

struct AllocFuzzConfig {
  int owner_allocs = 6;   ///< buffers the owning thread allocates
  int handoffs = 3;       ///< of those, how many are freed cross-thread
  std::size_t pool_slots = 2;  ///< tiny threshold: spill path exercised
  std::uint64_t seed = 1;
  const std::vector<std::uint8_t>* replay = nullptr;
  bool deterministic_fallback = false;
};

struct AllocFuzzOutcome {
  LinResult lin;
  bgq::harness::RunResult run;
};

/// One fuzzed schedule: thread 0 owns a pool, allocates, frees some
/// buffers locally and hands the rest to thread 1, which frees them
/// cross-thread (the lockless enqueue into thread 0's pool).  Thread 0
/// then re-allocates so pool reuse races against the remote frees.
AllocFuzzOutcome fuzz_alloc_once(const AllocFuzzConfig& cfg) {
  PoolAllocator pa(/*nthreads=*/2, cfg.pool_slots);
  History h(256);
  std::vector<std::atomic<void*>> mailbox(cfg.handoffs);
  for (auto& m : mailbox) m.store(nullptr, std::memory_order_relaxed);

  std::vector<std::function<void()>> bodies;
  bodies.emplace_back([&] {
    std::vector<void*> kept;
    for (int i = 0; i < cfg.owner_allocs; ++i) {
      const auto hd = h.begin(0, OpKind::kAlloc);
      void* p = pa.allocate(0, 64);
      h.end(hd, pid(p));
      kept.push_back(p);
    }
    for (int i = 0; i < cfg.handoffs; ++i) {
      mailbox[i].store(kept[i], std::memory_order_release);
    }
    for (int i = cfg.handoffs; i < cfg.owner_allocs; ++i) {
      const auto hd = h.begin(0, OpKind::kFree, pid(kept[i]));
      pa.deallocate(0, kept[i]);
      h.end(hd);
    }
    // Re-allocate while the remote frees are (possibly) mid-enqueue into
    // this thread's pool: the dequeue side of the §III-B race.
    for (int i = 0; i < 2; ++i) {
      const auto ha = h.begin(0, OpKind::kAlloc);
      void* p = pa.allocate(0, 64);
      h.end(ha, pid(p));
      const auto hf = h.begin(0, OpKind::kFree, pid(p));
      pa.deallocate(0, p);
      h.end(hf);
    }
  });
  bodies.emplace_back([&] {
    int got = 0;
    for (int attempts = 0; got < cfg.handoffs && attempts < 4000;
         ++attempts) {
      bgq::verify::schedule_point("test.mailbox.poll");
      void* p = mailbox[got].load(std::memory_order_acquire);
      if (!p) continue;
      const auto hd = h.begin(1, OpKind::kFree, pid(p));
      pa.deallocate(1, p);
      h.end(hd);
      ++got;
    }
  });

  RunOptions ro;
  ro.seed = cfg.seed;
  ro.replay = cfg.replay;
  ro.deterministic_fallback = cfg.deterministic_fallback;

  AllocFuzzOutcome out;
  out.run = run_schedule(ro, bodies);
  out.lin = check_linearizable<AllocSpec>(h.ops());
  if (h.overflowed()) {
    out.lin.verdict = bgq::verify::LinVerdict::kLimit;
    out.lin.message = "history capacity overflow";
  }
  return out;
}

TEST(FuzzAlloc, PoolAllocatorPassesFuzzedSchedules) {
  const std::uint64_t base = announce_seed("FuzzAlloc.PoolAllocator", 0xA110C);
  const std::uint64_t n =
      std::max<std::uint64_t>(2000 / harness_scale(), 10);
  for (std::uint64_t i = 0; i < n; ++i) {
    AllocFuzzConfig cfg;
    cfg.seed = base + i;
    const auto out = fuzz_alloc_once(cfg);
    ASSERT_FALSE(out.run.deadlocked)
        << bgq::harness::describe_run(cfg.seed, out.run);
    ASSERT_TRUE(out.lin.ok())
        << bgq::harness::describe_run(cfg.seed, out.run) << "\n"
        << out.lin.message;
  }
}

TEST(FuzzAlloc, PoolReuseIsExercised) {
  // Sanity that the fuzz scenario actually drives the pool fast path (not
  // just heap fallbacks): across a batch of schedules the allocator must
  // report pool hits.  Uses the instrumented allocator directly.
  std::uint64_t hits = 0;
  for (std::uint64_t i = 0; i < 50; ++i) {
    PoolAllocator pa(2, 4);
    void* a = pa.allocate(0, 64);
    pa.deallocate(0, a);
    void* b = pa.allocate(0, 64);
    pa.deallocate(0, b);
    hits += pa.pool_hits();
  }
  EXPECT_GT(hits, 0u);
}

TEST(FuzzAlloc, ExhaustiveSmallBoundPoolAllocator) {
  std::uint64_t violations = 0;
  std::string first_bad;
  const std::uint64_t runs = exhaust_schedules(
      10, 30000, [&](const std::vector<std::uint8_t>& prefix) {
        AllocFuzzConfig cfg;
        cfg.owner_allocs = 2;
        cfg.handoffs = 1;
        cfg.seed = 3;
        cfg.replay = &prefix;
        cfg.deterministic_fallback = true;
        const auto out = fuzz_alloc_once(cfg);
        if (!out.lin.ok() || out.run.deadlocked) {
          ++violations;
          if (first_bad.empty()) {
            first_bad = bgq::harness::describe_run(cfg.seed, out.run) + "\n" +
                        out.lin.message;
          }
        }
        return out.run.trace;
      });
  EXPECT_EQ(violations, 0u) << first_bad;
  EXPECT_GT(runs, 20u);
  std::fprintf(stderr, "[ EXHAUST  ] PoolAllocator: %llu schedules\n",
               static_cast<unsigned long long>(runs));
}

}  // namespace
