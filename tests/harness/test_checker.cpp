// Unit tests for the linearizability checker itself, on hand-written
// histories: known-good histories must pass, known-bad ones must be
// rejected, for each sequential spec the harness uses.
#include <gtest/gtest.h>

#include <vector>

#include "verify/history.hpp"
#include "verify/linearize.hpp"

namespace {

using bgq::verify::AllocSpec;
using bgq::verify::BagQueueSpec;
using bgq::verify::check_linearizable;
using bgq::verify::FifoQueueSpec;
using bgq::verify::GateSpec;
using bgq::verify::History;
using bgq::verify::LinVerdict;
using bgq::verify::Op;
using bgq::verify::OpKind;

/// Build an op with explicit interval stamps.
Op op(int thread, OpKind k, std::uint64_t value, std::uint64_t result,
      std::uint64_t inv, std::uint64_t res) {
  Op o;
  o.thread = thread;
  o.kind = k;
  o.value = value;
  o.result = result;
  o.inv = inv;
  o.res = res;
  return o;
}

TEST(Checker, EmptyHistoryIsLinearizable) {
  EXPECT_TRUE(check_linearizable<BagQueueSpec>({}).ok());
}

TEST(Checker, SequentialEnqueueDequeueOk) {
  std::vector<Op> h = {
      op(0, OpKind::kEnqueue, 7, 0, 1, 2),
      op(0, OpKind::kDequeue, 0, 7, 3, 4),
      op(0, OpKind::kDequeueEmpty, 0, 0, 5, 6),
  };
  EXPECT_TRUE(check_linearizable<BagQueueSpec>(h).ok());
}

TEST(Checker, DequeueOfNeverEnqueuedValueRejected) {
  std::vector<Op> h = {
      op(0, OpKind::kEnqueue, 7, 0, 1, 2),
      op(0, OpKind::kDequeue, 0, 9, 3, 4),
  };
  const auto r = check_linearizable<BagQueueSpec>(h);
  EXPECT_EQ(r.verdict, LinVerdict::kViolation);
  EXPECT_FALSE(r.message.empty());
}

TEST(Checker, DuplicateDeliveryRejected) {
  std::vector<Op> h = {
      op(0, OpKind::kEnqueue, 7, 0, 1, 2),
      op(1, OpKind::kDequeue, 0, 7, 3, 4),
      op(1, OpKind::kDequeue, 0, 7, 5, 6),
  };
  EXPECT_EQ(check_linearizable<BagQueueSpec>(h).verdict,
            LinVerdict::kViolation);
}

TEST(Checker, LostMessageConvictedByFinalEmptyProbe) {
  // enqueue completed, nothing ever dequeued it, and a later empty probe
  // (non-overlapping) found nothing: the message was lost.
  std::vector<Op> h = {
      op(0, OpKind::kEnqueue, 7, 0, 1, 2),
      op(1, OpKind::kDequeueEmpty, 0, 0, 3, 4),
  };
  EXPECT_EQ(check_linearizable<BagQueueSpec>(h).verdict,
            LinVerdict::kViolation);
}

TEST(Checker, EmptyProbeOverlappingEnqueueIsLegal) {
  // The probe's interval overlaps the enqueue: it may linearize first.
  std::vector<Op> h = {
      op(0, OpKind::kEnqueue, 7, 0, 2, 5),
      op(1, OpKind::kDequeueEmpty, 0, 0, 1, 3),
      op(1, OpKind::kDequeue, 0, 7, 6, 7),
  };
  EXPECT_TRUE(check_linearizable<BagQueueSpec>(h).ok());
}

TEST(Checker, ConcurrentEnqueuesAnyDequeueOrderLegalInBag) {
  // Two overlapping enqueues from different threads: the bag spec allows
  // the consumer to see them in either order.
  std::vector<Op> h = {
      op(0, OpKind::kEnqueue, 1, 0, 1, 4),
      op(1, OpKind::kEnqueue, 2, 0, 2, 5),
      op(2, OpKind::kDequeue, 0, 2, 6, 7),
      op(2, OpKind::kDequeue, 0, 1, 8, 9),
  };
  EXPECT_TRUE(check_linearizable<BagQueueSpec>(h).ok());
}

TEST(Checker, BagAllowsWhatFifoRejects) {
  // Non-overlapping enqueues dequeued in reverse: legal for the Charm++
  // unordered queue, a violation for the MPI-ordered spec.
  std::vector<Op> h = {
      op(0, OpKind::kEnqueue, 1, 0, 1, 2),
      op(0, OpKind::kEnqueue, 2, 0, 3, 4),
      op(1, OpKind::kDequeue, 0, 2, 5, 6),
      op(1, OpKind::kDequeue, 0, 1, 7, 8),
  };
  EXPECT_TRUE(check_linearizable<BagQueueSpec>(h).ok());
  EXPECT_EQ(check_linearizable<FifoQueueSpec>(h).verdict,
            LinVerdict::kViolation);
}

TEST(Checker, FifoInOrderOk) {
  std::vector<Op> h = {
      op(0, OpKind::kEnqueue, 1, 0, 1, 2),
      op(0, OpKind::kEnqueue, 2, 0, 3, 4),
      op(1, OpKind::kDequeue, 0, 1, 5, 6),
      op(1, OpKind::kDequeue, 0, 2, 7, 8),
  };
  EXPECT_TRUE(check_linearizable<FifoQueueSpec>(h).ok());
}

TEST(Checker, AllocDoubleIssueRejected) {
  // Buffer 42 issued twice with no intervening free: the pool handed the
  // same buffer to two callers.
  std::vector<Op> h = {
      op(0, OpKind::kAlloc, 0, 42, 1, 2),
      op(1, OpKind::kAlloc, 0, 42, 3, 4),
  };
  EXPECT_EQ(check_linearizable<AllocSpec>(h).verdict, LinVerdict::kViolation);
}

TEST(Checker, AllocReuseAfterFreeOk) {
  std::vector<Op> h = {
      op(0, OpKind::kAlloc, 0, 42, 1, 2),
      op(1, OpKind::kFree, 42, 0, 3, 4),
      op(0, OpKind::kAlloc, 0, 42, 5, 6),
      op(0, OpKind::kAllocFail, 0, 0, 7, 8),
  };
  EXPECT_TRUE(check_linearizable<AllocSpec>(h).ok());
}

TEST(Checker, DoubleFreeRejected) {
  std::vector<Op> h = {
      op(0, OpKind::kAlloc, 0, 42, 1, 2),
      op(0, OpKind::kFree, 42, 0, 3, 4),
      op(1, OpKind::kFree, 42, 0, 5, 6),
  };
  EXPECT_EQ(check_linearizable<AllocSpec>(h).verdict, LinVerdict::kViolation);
}

TEST(Checker, GateProperWakeCommitOk) {
  // wake -> epoch 1; prepare snapshots 1; second wake -> 2; commit(1) is
  // justified because the epoch advanced past the snapshot.
  std::vector<Op> h = {
      op(0, OpKind::kWake, 0, 0, 1, 2),
      op(1, OpKind::kPrepare, 0, 1, 3, 4),
      op(0, OpKind::kWake, 0, 0, 5, 6),
      op(1, OpKind::kCommit, 1, 0, 7, 8),
  };
  EXPECT_TRUE(check_linearizable<GateSpec>(h).ok());
}

TEST(Checker, GateCommitWithoutJustifyingWakeRejected) {
  // commit(1) returned but no wake after the prepare advanced the epoch:
  // the gate resumed a thread that should still be parked.
  std::vector<Op> h = {
      op(0, OpKind::kWake, 0, 0, 1, 2),
      op(1, OpKind::kPrepare, 0, 1, 3, 4),
      op(1, OpKind::kCommit, 1, 0, 5, 6),
  };
  EXPECT_EQ(check_linearizable<GateSpec>(h).verdict, LinVerdict::kViolation);
}

TEST(Checker, GateCancelAlwaysLegal) {
  std::vector<Op> h = {
      op(1, OpKind::kPrepare, 0, 0, 1, 2),
      op(1, OpKind::kCancel, 0, 0, 3, 4),
  };
  EXPECT_TRUE(check_linearizable<GateSpec>(h).ok());
}

TEST(Checker, OversizedHistoryReported) {
  std::vector<Op> h;
  for (int i = 0; i < 65; ++i) {
    h.push_back(op(0, OpKind::kEnqueue, i + 1, 0, 2 * i + 1, 2 * i + 2));
  }
  EXPECT_EQ(check_linearizable<BagQueueSpec>(h).verdict,
            LinVerdict::kTooLarge);
}

TEST(Checker, HistoryRecorderFiltersAbandonedOps) {
  History h(16);
  h.record(0, OpKind::kEnqueue, 1);
  (void)h.begin(1, OpKind::kDequeue);  // never ended: must be dropped
  h.record(1, OpKind::kDequeue, 0, 1);
  const auto ops = h.ops();
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_TRUE(check_linearizable<BagQueueSpec>(ops).ok());
}

TEST(Checker, HistoryOverflowFlagged) {
  History h(2);
  h.record(0, OpKind::kEnqueue, 1);
  h.record(0, OpKind::kEnqueue, 2);
  EXPECT_FALSE(h.overflowed());
  h.record(0, OpKind::kEnqueue, 3);
  EXPECT_TRUE(h.overflowed());
}

}  // namespace
