// Schedule-fuzzed tests of the wakeup gate (§II prepare/commit protocol).
// The property under test is the one the two-phase protocol exists for: a
// committed wait is always justified by a wake that advanced the epoch past
// the prepare's snapshot, and no schedule can lose a wakeup (deadlock).
#include <gtest/gtest.h>

#include <cstdint>

#include "harness_util.hpp"
#include "test_seed.hpp"
#include "verify/scheduler.hpp"
#include "wakeup/wakeup_unit.hpp"

namespace {

using bgq::harness::fuzz_gate_once;
using bgq::harness::GateFuzzConfig;
using bgq::test_support::announce_seed;
using bgq::test_support::harness_scale;
using bgq::verify::exhaust_schedules;
using bgq::wakeup::WaitGate;

TEST(FuzzWakeup, WaitGatePassesFuzzedSchedules) {
  const std::uint64_t base = announce_seed("FuzzWakeup.WaitGate", 0x6A7E);
  const std::uint64_t n =
      std::max<std::uint64_t>(2000 / harness_scale(), 10);
  for (std::uint64_t i = 0; i < n; ++i) {
    GateFuzzConfig cfg;
    cfg.rounds = 3;
    cfg.waiters = 1;
    cfg.seed = base + i;
    const auto out = fuzz_gate_once<WaitGate>(cfg);
    ASSERT_FALSE(out.run.deadlocked)
        << "lost wakeup: " << bgq::harness::describe_run(cfg.seed, out.run);
    ASSERT_TRUE(out.lin.ok())
        << bgq::harness::describe_run(cfg.seed, out.run) << "\n"
        << out.lin.message;
  }
}

TEST(FuzzWakeup, TwoWaitersOneWakerNoLostWakeup) {
  const std::uint64_t base = announce_seed("FuzzWakeup.TwoWaiters", 0x2A17);
  const std::uint64_t n =
      std::max<std::uint64_t>(1500 / harness_scale(), 10);
  for (std::uint64_t i = 0; i < n; ++i) {
    GateFuzzConfig cfg;
    cfg.rounds = 3;
    cfg.waiters = 2;
    cfg.waiter_cap = 12;  // keep the history inside the checker's op bound
    cfg.seed = base + i;
    const auto out = fuzz_gate_once<WaitGate>(cfg);
    ASSERT_FALSE(out.run.deadlocked)
        << "lost wakeup: " << bgq::harness::describe_run(cfg.seed, out.run);
    ASSERT_TRUE(out.lin.ok())
        << bgq::harness::describe_run(cfg.seed, out.run) << "\n"
        << out.lin.message;
  }
}

TEST(FuzzWakeup, ExhaustiveSmallBoundWaitGate) {
  std::uint64_t violations = 0;
  std::string first_bad;
  const std::uint64_t runs = exhaust_schedules(
      12, 30000, [&](const std::vector<std::uint8_t>& prefix) {
        GateFuzzConfig cfg;
        cfg.rounds = 2;
        cfg.waiters = 1;
        cfg.seed = 5;
        cfg.replay = &prefix;
        cfg.deterministic_fallback = true;
        cfg.watchdog = std::chrono::milliseconds(3000);
        const auto out = fuzz_gate_once<WaitGate>(cfg);
        if (!out.lin.ok() || out.run.deadlocked) {
          ++violations;
          if (first_bad.empty()) {
            first_bad = bgq::harness::describe_run(cfg.seed, out.run) + "\n" +
                        out.lin.message;
          }
        }
        return out.run.trace;
      });
  EXPECT_EQ(violations, 0u) << first_bad;
  EXPECT_GT(runs, 50u);
  std::fprintf(stderr, "[ EXHAUST  ] WaitGate: %llu schedules\n",
               static_cast<unsigned long long>(runs));
}

}  // namespace
