// Schedule-fuzzed exactly-once test of the PAMI ack/retransmit reliability
// protocol over a chaos fabric.  Two peers exchange sequenced messages
// while the fault layer drops, duplicates, and delays (reorders) packets
// and the cooperative scheduler drives adversarial interleavings of the
// two advancing threads.  The property under test is the one the protocol
// exists for: every message is dispatched exactly once — no loss, no
// double delivery — on every fuzzed schedule, and the run quiesces (all
// retransmit timers drain) instead of deadlocking.
//
// Both the schedule decisions and the fault coin-flips derive from
// BGQ_TEST_SEED, so any failing run replays exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "harness_util.hpp"
#include "net/fault.hpp"
#include "pami/pami.hpp"
#include "test_seed.hpp"
#include "verify/schedule_point.hpp"

namespace {

using bgq::net::Fabric;
using bgq::net::FaultPlan;
using bgq::net::NetworkParams;
using bgq::pami::Client;
using bgq::pami::Context;
using bgq::pami::DispatchArgs;
using bgq::pami::ReliabilityParams;
using bgq::pami::SendParams;
using bgq::test_support::announce_seed;
using bgq::test_support::harness_scale;
using bgq::topo::Torus;

constexpr std::uint16_t kDispatch = 7;
constexpr int kMsgs = 8;  // per direction, per schedule

struct FuzzOutcome {
  std::vector<std::uint64_t> got_a;  // ids delivered to endpoint 0
  std::vector<std::uint64_t> got_b;  // ids delivered to endpoint 1
  bgq::harness::RunResult run;
  std::uint64_t retransmits = 0;
  std::uint64_t dedup_drops = 0;
  bool timed_out = false;
  std::string error;  // reliability throw (retries exhausted etc.)
};

/// One fuzzed schedule: both peers send kMsgs messages to each other over
/// a lossy fabric and keep advancing until both sides delivered everything
/// and every retransmit timer drained.
FuzzOutcome fuzz_once(std::uint64_t seed, const std::string& plan_spec,
                      std::size_t fifo_capacity) {
  Torus torus{{2}};
  Fabric fabric{torus, NetworkParams{}, /*fifos=*/2, /*endpoints=*/1,
                fifo_capacity};
  fabric.set_fault_plan(
      FaultPlan::parse(plan_spec + ",seed=" + std::to_string(seed)));

  Client a{fabric, 0, 2};
  Client b{fabric, 1, 2};
  ReliabilityParams rp;
  rp.rto_ns = 100'000;  // serialized token-passing is slow; keep retries sane
  rp.rto_max_ns = 5'000'000;
  a.enable_reliability(rp);
  b.enable_reliability(rp);

  FuzzOutcome out;
  a.set_dispatch(kDispatch, [&](const DispatchArgs& args) {
    std::uint64_t id = 0;
    std::memcpy(&id, args.payload, sizeof id);
    out.got_a.push_back(id);
  });
  b.set_dispatch(kDispatch, [&](const DispatchArgs& args) {
    std::uint64_t id = 0;
    std::memcpy(&id, args.payload, sizeof id);
    out.got_b.push_back(id);
  });

  // Cross-thread progress flags: each body publishes its delivery count
  // and timer state; both exit only once BOTH sides are fully delivered
  // and drained, so no peer stops advancing while the other still needs
  // its acks or retransmits.
  std::atomic<int> recv[2] = {0, 0};
  std::atomic<bool> timers[2] = {true, true};

  auto body = [&](int me, Context& ctx, std::vector<std::uint64_t>& got) {
    const int peer = 1 - me;
    for (int i = 0; i < kMsgs; ++i) {
      const std::uint64_t id =
          static_cast<std::uint64_t>(me + 1) * 1000 + static_cast<std::uint64_t>(i);
      SendParams p;
      p.dest = static_cast<bgq::pami::EndpointId>(peer);
      p.dispatch = kDispatch;
      p.payload = &id;
      p.payload_bytes = sizeof id;
      ctx.send_immediate(p);
    }
    for (std::uint64_t iter = 0;; ++iter) {
      bgq::verify::schedule_point("faultfuzz.drive");
      try {
        ctx.advance();
      } catch (const std::exception& e) {
        out.error = e.what();
        timers[me].store(false, std::memory_order_release);
        return;
      }
      recv[me].store(static_cast<int>(got.size()), std::memory_order_release);
      timers[me].store(ctx.has_timers(), std::memory_order_release);
      const bool done =
          recv[0].load(std::memory_order_acquire) >= kMsgs &&
          recv[1].load(std::memory_order_acquire) >= kMsgs &&
          !timers[0].load(std::memory_order_acquire) &&
          !timers[1].load(std::memory_order_acquire);
      if (done) return;
      if (iter > 2'000'000) {  // free-run backstop; watchdog fires first
        out.timed_out = true;
        timers[me].store(false, std::memory_order_release);
        return;
      }
    }
  };

  bgq::harness::RunOptions ro;
  ro.seed = seed;
  ro.max_points = 500000;
  out.run = bgq::harness::run_schedule(
      ro, {[&] { body(0, a.context(0), out.got_a); },
           [&] { body(1, b.context(0), out.got_b); }});
  out.retransmits =
      a.context(0).retransmits() + b.context(0).retransmits();
  out.dedup_drops = a.context(0).dedup_drops() + b.context(0).dedup_drops();
  return out;
}

/// Every id 1..kMsgs from the expected sender, each exactly once.
testing::AssertionResult exactly_once(const std::vector<std::uint64_t>& got,
                                      int sender) {
  std::vector<std::uint64_t> want;
  for (int i = 0; i < kMsgs; ++i) {
    want.push_back(static_cast<std::uint64_t>(sender + 1) * 1000 +
                   static_cast<std::uint64_t>(i));
  }
  std::vector<std::uint64_t> sorted = got;
  std::sort(sorted.begin(), sorted.end());
  if (sorted == want) return testing::AssertionSuccess();
  auto describe = [](const std::vector<std::uint64_t>& v) {
    std::string s = "[";
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i) s += ',';
      s += std::to_string(v[i]);
    }
    return s + "]";
  };
  return testing::AssertionFailure()
         << "delivered " << got.size() << " of " << kMsgs
         << " exactly-once ids: got " << describe(sorted) << " want "
         << describe(want);
}

TEST(FuzzFaults, ExactlyOnceUnderDropDupReorderOnFuzzedSchedules) {
  const std::uint64_t base = announce_seed("FuzzFaults.ExactlyOnce", 0xFA17);
  const std::uint64_t n = std::max<std::uint64_t>(60 / harness_scale(), 5);
  std::uint64_t total_retransmits = 0;
  std::uint64_t total_dedups = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t seed = base + i;
    const auto out =
        fuzz_once(seed, "drop=0.15,dup=0.15,delay=0.2", /*fifo=*/4096);
    ASSERT_EQ(out.error, "") << bgq::harness::describe_run(seed, out.run);
    ASSERT_FALSE(out.timed_out)
        << "quiescence never reached: "
        << bgq::harness::describe_run(seed, out.run);
    ASSERT_TRUE(exactly_once(out.got_a, /*sender=*/1))
        << bgq::harness::describe_run(seed, out.run);
    ASSERT_TRUE(exactly_once(out.got_b, /*sender=*/0))
        << bgq::harness::describe_run(seed, out.run);
    total_retransmits += out.retransmits;
    total_dedups += out.dedup_drops;
  }
  // Aggregate proof the chaos actually bit: with 15% drop and 15% dup over
  // n schedules the protocol must have retransmitted and deduplicated.
  EXPECT_GT(total_retransmits, 0u);
  EXPECT_GT(total_dedups, 0u);
}

TEST(FuzzFaults, ExactlyOnceWhenOverloadedFifoRefusesDelivery) {
  const std::uint64_t base = announce_seed("FuzzFaults.Overload", 0x0F1F);
  const std::uint64_t n = std::max<std::uint64_t>(40 / harness_scale(), 5);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t seed = base + i;
    // reject=1 with a tiny reception FIFO: overload refusals behave like
    // drops and the retransmit path must still deliver everything.
    const auto out =
        fuzz_once(seed, "drop=0.05,dup=0.1,delay=0.1,reject=1", /*fifo=*/4);
    ASSERT_EQ(out.error, "") << bgq::harness::describe_run(seed, out.run);
    ASSERT_FALSE(out.timed_out)
        << "quiescence never reached: "
        << bgq::harness::describe_run(seed, out.run);
    ASSERT_TRUE(exactly_once(out.got_a, /*sender=*/1))
        << bgq::harness::describe_run(seed, out.run);
    ASSERT_TRUE(exactly_once(out.got_b, /*sender=*/0))
        << bgq::harness::describe_run(seed, out.run);
  }
}

}  // namespace
