// Schedule-fuzzed correctness tests for the trace event ring: concurrent
// emitters and a flusher are serialized at the BGQ_SCHED_POINT markers in
// EventRing::emit/drain, and every schedule must conserve events —
// everything emitted is either drained in FIFO order or counted as a
// drop, with nothing lost or duplicated no matter where the drain
// snapshot lands relative to a publish.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "harness_util.hpp"
#include "test_seed.hpp"
#include "trace/ring.hpp"
#include "trace/session.hpp"

namespace {

using bgq::harness::describe_run;
using bgq::harness::RunOptions;
using bgq::harness::run_schedule;
using bgq::test_support::announce_seed;
using bgq::test_support::harness_scale;
using bgq::trace::Event;
using bgq::trace::EventKind;
using bgq::trace::EventRing;
using bgq::trace::Session;

/// Check one drained stream: per-producer args strictly increase (FIFO)
/// and the total count balances against emits and drops.
void check_stream(const std::vector<Event>& drained, std::uint64_t dropped,
                  std::uint32_t attempts, const char* what) {
  ASSERT_EQ(drained.size() + dropped, attempts) << what << ": lost events";
  for (std::size_t i = 1; i < drained.size(); ++i) {
    ASSERT_LT(drained[i - 1].arg, drained[i].arg)
        << what << ": FIFO violated at index " << i;
  }
}

TEST(FuzzTrace, EmittersAndFlusherConserveEvents) {
  const std::uint64_t base = announce_seed("FuzzTrace.Conserve", 0x7ACE);
  const std::uint64_t schedules =
      std::max<std::uint64_t>(1500 / harness_scale(), 10);
  constexpr int kEmitters = 2;
  constexpr std::uint32_t kPerEmitter = 6;

  for (std::uint64_t s = 0; s < schedules; ++s) {
    // Tiny rings so the full-ring drop path runs in most schedules, not
    // just the occasional unlucky one.
    std::vector<std::unique_ptr<EventRing>> rings;
    for (int e = 0; e < kEmitters; ++e) {
      rings.push_back(std::make_unique<EventRing>(4));
    }
    std::vector<std::vector<Event>> drained(kEmitters);

    std::vector<std::function<void()>> bodies;
    for (int e = 0; e < kEmitters; ++e) {
      bodies.push_back([&, e] {
        for (std::uint32_t i = 0; i < kPerEmitter; ++i) {
          rings[e]->emit({i, i, EventKind::kUser});
        }
      });
    }
    bodies.push_back([&] {  // flusher races both rings
      for (int round = 0; round < 3; ++round) {
        for (int e = 0; e < kEmitters; ++e) rings[e]->drain(drained[e]);
      }
    });

    RunOptions opt;
    opt.seed = base + s;
    const auto run = run_schedule(opt, bodies);
    ASSERT_FALSE(run.deadlocked) << describe_run(opt.seed, run);

    // Quiesced: a final drain picks up whatever the racing flusher missed.
    for (int e = 0; e < kEmitters; ++e) {
      rings[e]->drain(drained[e]);
      check_stream(drained[e], rings[e]->dropped(), kPerEmitter,
                   describe_run(opt.seed, run).c_str());
      ASSERT_EQ(rings[e]->pending(), 0u);
    }
  }
}

TEST(FuzzTrace, SessionCollectRacesEmitHere) {
  // Same conservation property through the full Session path the runtime
  // uses: emitters bind thread-local rings and go through emit_here();
  // the flusher calls Session::collect(), which drains every ring under
  // the session mutex while producers are still publishing.
  const std::uint64_t base = announce_seed("FuzzTrace.Session", 0x5E55);
  const std::uint64_t schedules =
      std::max<std::uint64_t>(1000 / harness_scale(), 10);
  constexpr std::uint32_t kPerEmitter = 5;

  for (std::uint64_t s = 0; s < schedules; ++s) {
    Session session(true, 4);
    EventRing* r0 = session.make_ring(0, 0, "w0");
    EventRing* r1 = session.make_ring(0, 1, "w1");

    auto emitter = [&](EventRing* ring) {
      return [&, ring] {
        Session::bind_thread(ring);
        for (std::uint32_t i = 0; i < kPerEmitter; ++i) {
          // emit_here stamps host time; arg carries the sequence the
          // checks below need.
          ::bgq::trace::emit_here(EventKind::kUser, i);
        }
        Session::bind_thread(nullptr);
      };
    };
    std::vector<std::function<void()>> bodies;
    bodies.push_back(emitter(r0));
    bodies.push_back(emitter(r1));
    bodies.push_back([&] {
      for (int round = 0; round < 2; ++round) session.collect();
    });

    RunOptions opt;
    opt.seed = base + s;
    const auto run = run_schedule(opt, bodies);
    ASSERT_FALSE(run.deadlocked) << describe_run(opt.seed, run);

    const auto& flat = session.collect();
    ASSERT_EQ(flat.tracks.size(), 2u);
    for (const auto& tr : flat.tracks) {
      check_stream(tr.events, tr.dropped, kPerEmitter,
                   describe_run(opt.seed, run).c_str());
    }
  }
}

}  // namespace
