// Schedule-fuzzed message-conservation test for TRAM batches riding the
// ack/retransmit reliability protocol over a chaos fabric.  Two peers
// stream sequenced records at each other, coalesced kPerBatch at a time
// through BatchWriter exactly the way the Router stages them, with each
// batch traveling as ONE reliable PAMI message.  The fault layer drops,
// duplicates, and delays whole batches; the property is that every
// *record* still arrives exactly once — a dropped batch loses nothing
// (retransmit), a duplicated batch delivers nothing twice (dedup), and
// for_each_record never tears or invents a record at a batch boundary.
//
// Schedule decisions and fault coin-flips both derive from BGQ_TEST_SEED,
// so any failing run replays exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "harness_util.hpp"
#include "net/fault.hpp"
#include "pami/pami.hpp"
#include "test_seed.hpp"
#include "tram/batch.hpp"
#include "verify/schedule_point.hpp"

namespace {

using bgq::cvs::MsgHeader;
using bgq::net::Fabric;
using bgq::net::FaultPlan;
using bgq::net::NetworkParams;
using bgq::pami::Client;
using bgq::pami::Context;
using bgq::pami::DispatchArgs;
using bgq::pami::ReliabilityParams;
using bgq::pami::SendParams;
using bgq::test_support::announce_seed;
using bgq::test_support::harness_scale;
using bgq::topo::Torus;
using bgq::tram::BatchWriter;
using bgq::tram::for_each_record;

constexpr std::uint16_t kDispatch = 9;
constexpr int kPerBatch = 3;
constexpr int kBatches = 3;
constexpr int kMsgs = kPerBatch * kBatches;  // records per direction

struct FuzzOutcome {
  std::vector<std::uint64_t> got_a;  // record ids delivered to endpoint 0
  std::vector<std::uint64_t> got_b;  // record ids delivered to endpoint 1
  std::size_t torn_batches = 0;      // walks that stopped short of a header
  bgq::harness::RunResult run;
  std::uint64_t retransmits = 0;
  std::uint64_t dedup_drops = 0;
  bool timed_out = false;
  std::string error;
};

FuzzOutcome fuzz_once(std::uint64_t seed, const std::string& plan_spec) {
  Torus torus{{2}};
  Fabric fabric{torus, NetworkParams{}, /*fifos=*/2, /*endpoints=*/1,
                /*fifo_capacity=*/4096};
  fabric.set_fault_plan(
      FaultPlan::parse(plan_spec + ",seed=" + std::to_string(seed)));

  Client a{fabric, 0, 2};
  Client b{fabric, 1, 2};
  ReliabilityParams rp;
  rp.rto_ns = 100'000;
  rp.rto_max_ns = 5'000'000;
  a.enable_reliability(rp);
  b.enable_reliability(rp);

  FuzzOutcome out;
  auto deagg = [&](const DispatchArgs& args,
                   std::vector<std::uint64_t>& got) {
    std::size_t walked = 0;
    const std::size_t n = for_each_record(
        static_cast<const std::byte*>(args.payload), args.payload_bytes,
        [&](const MsgHeader& h, const std::byte* payload) {
          std::uint64_t id = 0;
          std::memcpy(&id, payload, sizeof id);
          got.push_back(id);
          walked += bgq::tram::record_bytes(h.payload_bytes);
        });
    // Reliability delivers whole batches: a walk that consumed fewer
    // records or bytes than the batch carries means a torn record.
    if (n != kPerBatch || walked != args.payload_bytes) ++out.torn_batches;
  };
  a.set_dispatch(kDispatch,
                 [&](const DispatchArgs& args) { deagg(args, out.got_a); });
  b.set_dispatch(kDispatch,
                 [&](const DispatchArgs& args) { deagg(args, out.got_b); });

  std::atomic<int> recv[2] = {0, 0};
  std::atomic<bool> timers[2] = {true, true};

  auto body = [&](int me, Context& ctx, std::vector<std::uint64_t>& got) {
    const int peer = 1 - me;
    BatchWriter w;
    int next_id = 0;
    for (int batch = 0; batch < kBatches; ++batch) {
      for (int r = 0; r < kPerBatch; ++r) {
        const std::uint64_t id =
            static_cast<std::uint64_t>(me + 1) * 1000 +
            static_cast<std::uint64_t>(next_id++);
        MsgHeader h{};
        h.payload_bytes = sizeof id;
        h.handler = kDispatch;
        h.src_pe = static_cast<std::uint32_t>(me);
        h.dst_pe = static_cast<std::uint32_t>(peer);
        w.append(h, &id);
        bgq::verify::schedule_point("tramfuzz.stage");
      }
      SendParams p;
      p.dest = static_cast<bgq::pami::EndpointId>(peer);
      p.dispatch = kDispatch;
      p.payload = w.data();
      p.payload_bytes = w.bytes();
      ctx.send_immediate(p);
      w.clear();
    }
    for (std::uint64_t iter = 0;; ++iter) {
      bgq::verify::schedule_point("tramfuzz.drive");
      try {
        ctx.advance();
      } catch (const std::exception& e) {
        out.error = e.what();
        timers[me].store(false, std::memory_order_release);
        return;
      }
      recv[me].store(static_cast<int>(got.size()), std::memory_order_release);
      timers[me].store(ctx.has_timers(), std::memory_order_release);
      const bool done =
          recv[0].load(std::memory_order_acquire) >= kMsgs &&
          recv[1].load(std::memory_order_acquire) >= kMsgs &&
          !timers[0].load(std::memory_order_acquire) &&
          !timers[1].load(std::memory_order_acquire);
      if (done) return;
      if (iter > 2'000'000) {  // free-run backstop; watchdog fires first
        out.timed_out = true;
        timers[me].store(false, std::memory_order_release);
        return;
      }
    }
  };

  bgq::harness::RunOptions ro;
  ro.seed = seed;
  ro.max_points = 500000;
  out.run = bgq::harness::run_schedule(
      ro, {[&] { body(0, a.context(0), out.got_a); },
           [&] { body(1, b.context(0), out.got_b); }});
  out.retransmits =
      a.context(0).retransmits() + b.context(0).retransmits();
  out.dedup_drops = a.context(0).dedup_drops() + b.context(0).dedup_drops();
  return out;
}

/// Every record id 0..kMsgs-1 from the expected sender, exactly once.
testing::AssertionResult exactly_once(const std::vector<std::uint64_t>& got,
                                      int sender) {
  std::vector<std::uint64_t> want;
  for (int i = 0; i < kMsgs; ++i) {
    want.push_back(static_cast<std::uint64_t>(sender + 1) * 1000 +
                   static_cast<std::uint64_t>(i));
  }
  std::vector<std::uint64_t> sorted = got;
  std::sort(sorted.begin(), sorted.end());
  if (sorted == want) return testing::AssertionSuccess();
  auto describe = [](const std::vector<std::uint64_t>& v) {
    std::string s = "[";
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i) s += ',';
      s += std::to_string(v[i]);
    }
    return s + "]";
  };
  return testing::AssertionFailure()
         << "delivered " << got.size() << " of " << kMsgs
         << " exactly-once record ids: got " << describe(sorted) << " want "
         << describe(want);
}

TEST(FuzzTram, RecordsConservedWhenChaosDropsAndDupsWholeBatches) {
  const std::uint64_t base = announce_seed("FuzzTram.Conservation", 0x7BA7);
  const std::uint64_t n = std::max<std::uint64_t>(50 / harness_scale(), 5);
  std::uint64_t total_retransmits = 0;
  std::uint64_t total_dedups = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t seed = base + i;
    const auto out = fuzz_once(seed, "drop=0.15,dup=0.15,delay=0.2");
    ASSERT_EQ(out.error, "") << bgq::harness::describe_run(seed, out.run);
    ASSERT_FALSE(out.timed_out)
        << "quiescence never reached: "
        << bgq::harness::describe_run(seed, out.run);
    ASSERT_EQ(out.torn_batches, 0u)
        << bgq::harness::describe_run(seed, out.run);
    ASSERT_TRUE(exactly_once(out.got_a, /*sender=*/1))
        << bgq::harness::describe_run(seed, out.run);
    ASSERT_TRUE(exactly_once(out.got_b, /*sender=*/0))
        << bgq::harness::describe_run(seed, out.run);
    total_retransmits += out.retransmits;
    total_dedups += out.dedup_drops;
  }
  // With 15% drop and 15% dup over n schedules, the chaos must have bit:
  // batches were retransmitted and deduplicated, records still unique.
  EXPECT_GT(total_retransmits, 0u);
  EXPECT_GT(total_dedups, 0u);
}

}  // namespace
