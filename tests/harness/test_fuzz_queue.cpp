// Schedule-fuzzed linearizability tests for the queue family.  Each
// schedule serializes the threads at the BGQ_SCHED_POINT markers compiled
// into the queue hot paths and checks the recorded history against the
// structure's sequential spec; a failure prints the seed and decision
// vector for replay.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "harness_util.hpp"
#include "queue/l2_atomic_queue.hpp"
#include "queue/ordered_l2_queue.hpp"
#include "queue/spsc_ring.hpp"
#include "test_seed.hpp"
#include "verify/scheduler.hpp"

namespace {

using bgq::harness::fuzz_queue_once;
using bgq::harness::QueueFuzzConfig;
using bgq::harness::RunOptions;
using bgq::harness::run_schedule;
using bgq::queue::L2AtomicQueue;
using bgq::queue::OrderedL2Queue;
using bgq::queue::SpscRing;
using bgq::test_support::announce_seed;
using bgq::test_support::harness_scale;
using bgq::verify::exhaust_schedules;
using bgq::verify::FifoQueueSpec;
using bgq::verify::History;
using bgq::verify::Op;
using bgq::verify::OpKind;

TEST(FuzzQueue, L2AtomicQueuePassesFuzzedSchedules) {
  const std::uint64_t base = announce_seed("FuzzQueue.L2AtomicQueue", 0xBC1);
  struct Shape {
    std::size_t ring;
    int producers, per_producer;
    std::uint64_t seeds;
  };
  // Ring sizes small enough that the overflow spill and bound re-raise are
  // exercised constantly, not just the fast path.
  const Shape shapes[] = {
      {2, 3, 3, 3000},
      {4, 2, 4, 2000},
      {8, 4, 2, 1000},
  };
  for (const Shape& s : shapes) {
    const std::uint64_t n = std::max<std::uint64_t>(s.seeds / harness_scale(), 10);
    for (std::uint64_t i = 0; i < n; ++i) {
      QueueFuzzConfig cfg;
      cfg.ring = s.ring;
      cfg.producers = s.producers;
      cfg.per_producer = s.per_producer;
      cfg.seed = base + i;
      const auto out = fuzz_queue_once<L2AtomicQueue<std::uint64_t*>>(cfg);
      ASSERT_FALSE(out.run.deadlocked)
          << bgq::harness::describe_run(cfg.seed, out.run);
      ASSERT_TRUE(out.lin.ok())
          << "ring=" << s.ring << " "
          << bgq::harness::describe_run(cfg.seed, out.run) << "\n"
          << out.lin.message;
    }
  }
}

TEST(FuzzQueue, OrderedL2QueueIsFifoUnderFuzzedSchedules) {
  const std::uint64_t base = announce_seed("FuzzQueue.OrderedL2Queue", 0xFEED);
  const std::uint64_t n =
      std::max<std::uint64_t>(2000 / harness_scale(), 10);
  for (std::uint64_t i = 0; i < n; ++i) {
    QueueFuzzConfig cfg;
    cfg.ring = 2;
    cfg.producers = 2;
    cfg.per_producer = 3;
    cfg.seed = base + i;
    // The MPI-semantics variant must satisfy the strict FIFO spec even
    // across the ring -> overflow spill boundary.
    const auto out =
        fuzz_queue_once<OrderedL2Queue<std::uint64_t*>, FifoQueueSpec>(cfg);
    ASSERT_FALSE(out.run.deadlocked)
        << bgq::harness::describe_run(cfg.seed, out.run);
    ASSERT_TRUE(out.lin.ok())
        << bgq::harness::describe_run(cfg.seed, out.run) << "\n"
        << out.lin.message;
  }
}

TEST(FuzzQueue, SpscRingIsFifoUnderFuzzedSchedules) {
  const std::uint64_t base = announce_seed("FuzzQueue.SpscRing", 0x5B5C);
  const std::uint64_t n =
      std::max<std::uint64_t>(2000 / harness_scale(), 10);
  constexpr int kMsgs = 6;
  for (std::uint64_t i = 0; i < n; ++i) {
    SpscRing<std::uint64_t> ring(2);  // capacity 2: constant full/empty edges
    History h(128);
    std::vector<std::function<void()>> bodies;
    bodies.emplace_back([&] {
      for (std::uint64_t v = 1; v <= kMsgs;) {
        const auto hd = h.begin(0, OpKind::kEnqueue, v);
        if (ring.try_enqueue(v)) {
          h.end(hd);
          ++v;
        }
        // Failed push: the open handle is reused by the next attempt via
        // abandonment (never ended -> dropped from the history).
      }
    });
    bodies.emplace_back([&] {
      int got = 0;
      History::Handle hd = History::kNoHandle;
      for (int attempts = 0; got < kMsgs && attempts < 600; ++attempts) {
        if (hd == History::kNoHandle) hd = h.begin(1, OpKind::kDequeue);
        if (auto v = ring.try_dequeue()) {
          h.end(hd, *v);
          hd = History::kNoHandle;
          ++got;
        }
      }
    });
    RunOptions ro;
    ro.seed = base + i;
    const auto run = run_schedule(ro, bodies);
    ASSERT_FALSE(run.deadlocked) << bgq::harness::describe_run(ro.seed, run);
    h.record(2, OpKind::kDequeueEmpty);
    const auto lin = bgq::verify::check_linearizable<FifoQueueSpec>(h.ops());
    ASSERT_TRUE(lin.ok()) << bgq::harness::describe_run(ro.seed, run) << "\n"
                          << lin.message;
  }
}

TEST(FuzzQueue, ExhaustiveSmallBoundL2Queue) {
  // Systematically enumerate every interleaving (up to the decision bound)
  // of 2 producers x 2 messages against the consumer on a ring of 2 — the
  // bound-overflow window included — and require a legal linearization of
  // all of them.
  std::uint64_t violations = 0;
  std::string first_bad;
  const std::uint64_t runs = exhaust_schedules(
      10, 30000, [&](const std::vector<std::uint8_t>& prefix) {
        QueueFuzzConfig cfg;
        cfg.ring = 2;
        cfg.producers = 2;
        cfg.per_producer = 2;
        cfg.seed = 7;
        cfg.replay = &prefix;
        cfg.deterministic_fallback = true;
        const auto out = fuzz_queue_once<L2AtomicQueue<std::uint64_t*>>(cfg);
        if (!out.lin.ok() || out.run.deadlocked) {
          ++violations;
          if (first_bad.empty()) {
            first_bad = bgq::harness::describe_run(cfg.seed, out.run) + "\n" +
                        out.lin.message;
          }
        }
        return out.run.trace;
      });
  EXPECT_EQ(violations, 0u) << first_bad;
  // The enumeration must actually branch; a handful of runs would mean the
  // schedule points are dead.
  EXPECT_GT(runs, 100u);
  std::fprintf(stderr, "[ EXHAUST  ] L2AtomicQueue: %llu schedules\n",
               static_cast<unsigned long long>(runs));
}

TEST(FuzzQueue, ExhaustiveSmallBoundSpscRing) {
  std::uint64_t violations = 0;
  std::string first_bad;
  const std::uint64_t runs = exhaust_schedules(
      12, 30000, [&](const std::vector<std::uint8_t>& prefix) {
        SpscRing<std::uint64_t> ring(2);
        History h(64);
        std::vector<std::function<void()>> bodies;
        bodies.emplace_back([&] {
          for (std::uint64_t v = 1; v <= 3;) {
            const auto hd = h.begin(0, OpKind::kEnqueue, v);
            if (ring.try_enqueue(v)) {
              h.end(hd);
              ++v;
            }
          }
        });
        bodies.emplace_back([&] {
          int got = 0;
          History::Handle hd = History::kNoHandle;
          for (int attempts = 0; got < 3 && attempts < 200; ++attempts) {
            if (hd == History::kNoHandle) hd = h.begin(1, OpKind::kDequeue);
            if (auto v = ring.try_dequeue()) {
              h.end(hd, *v);
              hd = History::kNoHandle;
              ++got;
            }
          }
        });
        RunOptions ro;
        ro.seed = 11;
        ro.replay = &prefix;
        ro.deterministic_fallback = true;
        const auto run = run_schedule(ro, bodies);
        h.record(2, OpKind::kDequeueEmpty);
        const auto lin =
            bgq::verify::check_linearizable<FifoQueueSpec>(h.ops());
        if (!lin.ok() || run.deadlocked) {
          ++violations;
          if (first_bad.empty()) {
            first_bad =
                bgq::harness::describe_run(ro.seed, run) + "\n" + lin.message;
          }
        }
        return run.trace;
      });
  EXPECT_EQ(violations, 0u) << first_bad;
  EXPECT_GT(runs, 50u);
  std::fprintf(stderr, "[ EXHAUST  ] SpscRing: %llu schedules\n",
               static_cast<unsigned long long>(runs));
}

TEST(FuzzQueue, PerProducerOrderPreservedByOrderedQueue) {
  // Directly assert the MPI match-ordering property on the dequeue stream:
  // each producer's messages arrive in the order it sent them.
  const std::uint64_t base = announce_seed("FuzzQueue.PerProducerOrder", 0xA11);
  const std::uint64_t n = std::max<std::uint64_t>(500 / harness_scale(), 5);
  for (std::uint64_t i = 0; i < n; ++i) {
    QueueFuzzConfig cfg;
    cfg.ring = 2;
    cfg.producers = 3;
    cfg.per_producer = 3;
    cfg.seed = base + i;
    const auto out =
        fuzz_queue_once<OrderedL2Queue<std::uint64_t*>, FifoQueueSpec>(cfg);
    ASSERT_TRUE(out.lin.ok())
        << bgq::harness::describe_run(cfg.seed, out.run) << "\n"
        << out.lin.message;
    std::map<int, std::uint64_t> last_seen;  // producer -> last id
    for (const Op& op : out.history) {
      if (op.kind != OpKind::kDequeue) continue;
      const int producer = static_cast<int>((op.result - 1) / cfg.per_producer);
      ASSERT_GT(op.result, last_seen[producer])
          << "per-producer order broken: "
          << bgq::harness::describe_run(cfg.seed, out.run);
      last_seen[producer] = op.result;
    }
  }
}

}  // namespace
