// The harness must have teeth: each seeded mutant in src/verify/mutants.hpp
// re-creates a bug class the real lockless structures defend against, and
// the linearizability checker (or the deadlock watchdog) must flag it
// within a bounded number of fuzzed schedules.  If one of these tests
// fails, the harness has gone vacuous — not the runtime.
#include <gtest/gtest.h>

#include <cstdint>

#include "harness_util.hpp"
#include "test_seed.hpp"
#include "verify/mutants.hpp"

namespace {

using bgq::harness::fuzz_gate_once;
using bgq::harness::fuzz_queue_once;
using bgq::harness::GateFuzzConfig;
using bgq::harness::QueueFuzzConfig;
using bgq::test_support::announce_seed;
using bgq::verify::MutantLatchGate;
using bgq::verify::MutantNoDrainQueue;
using bgq::verify::MutantRacyTicketQueue;
using bgq::verify::MutantStaleSlotQueue;

/// Fuzz `Queue` until the checker flags a schedule (or the budget runs
/// out).  Returns the number of schedules needed, or 0 if undetected.
template <typename Queue>
std::uint64_t schedules_to_detect(std::uint64_t base_seed,
                                  std::uint64_t budget, std::size_t ring,
                                  int producers, int per_producer) {
  for (std::uint64_t i = 0; i < budget; ++i) {
    QueueFuzzConfig cfg;
    cfg.ring = ring;
    cfg.producers = producers;
    cfg.per_producer = per_producer;
    cfg.seed = base_seed + i;
    const auto out = fuzz_queue_once<Queue>(cfg);
    if (!out.lin.ok() || out.run.deadlocked) return i + 1;
  }
  return 0;
}

TEST(Mutants, RacyTicketClaimLosesMessages) {
  // Non-atomic read-check-write ticket claim: two producers claim the same
  // ticket, one slot store overwrites the other, and the post-drain empty
  // probe convicts the queue of losing a message.
  const std::uint64_t n = schedules_to_detect<MutantRacyTicketQueue<
      std::uint64_t*>>(announce_seed("Mutants.RacyTicket", 0x7AC3), 2000,
                       /*ring=*/4, /*producers=*/3, /*per_producer=*/2);
  ASSERT_NE(n, 0u) << "racy ticket mutant survived 2000 fuzzed schedules";
  std::fprintf(stderr, "[ MUTANT   ] racy-ticket detected after %llu schedules\n",
               static_cast<unsigned long long>(n));
}

TEST(Mutants, DroppedOverflowDrainLosesSpilledMessages) {
  // The consumer never drains the overflow queue, so every message that
  // spilled past the L2 bound vanishes.  Tiny ring + more messages than
  // slots forces the spill on essentially every schedule.
  const std::uint64_t n = schedules_to_detect<MutantNoDrainQueue<
      std::uint64_t*>>(announce_seed("Mutants.NoDrain", 0xD7A1), 2000,
                       /*ring=*/2, /*producers=*/3, /*per_producer=*/3);
  ASSERT_NE(n, 0u) << "no-drain mutant survived 2000 fuzzed schedules";
  std::fprintf(stderr, "[ MUTANT   ] no-drain detected after %llu schedules\n",
               static_cast<unsigned long long>(n));
}

TEST(Mutants, StaleSlotDeliversDuplicates) {
  // The consumer skips the slot clear, breaking the nulled-slot emptiness
  // protocol: after the ring wraps, a stale pointer is delivered twice
  // (bag-spec duplicate violation).
  const std::uint64_t n = schedules_to_detect<MutantStaleSlotQueue<
      std::uint64_t*>>(announce_seed("Mutants.StaleSlot", 0x57A1E), 2000,
                       /*ring=*/2, /*producers=*/2, /*per_producer=*/3);
  ASSERT_NE(n, 0u) << "stale-slot mutant survived 2000 fuzzed schedules";
  std::fprintf(stderr, "[ MUTANT   ] stale-slot detected after %llu schedules\n",
               static_cast<unsigned long long>(n));
}

TEST(Mutants, LatchGateCommitsWithoutJustifyingWake) {
  // Sticky-latch gate: a wake with no waiter leaves the latch set, so a
  // later commit returns even though no wake advanced the epoch past its
  // snapshot — a GateSpec violation.  (The same latch can also swallow a
  // wake meant for another waiter; that shows up as a watchdog deadlock.)
  const std::uint64_t base = announce_seed("Mutants.LatchGate", 0x1A7C4);
  std::uint64_t detected_at = 0;
  for (std::uint64_t i = 0; i < 2000 && !detected_at; ++i) {
    GateFuzzConfig cfg;
    cfg.rounds = 3;
    cfg.waiters = 1;
    cfg.seed = base + i;
    cfg.watchdog = std::chrono::milliseconds(3000);
    const auto out = fuzz_gate_once<MutantLatchGate>(cfg);
    if (!out.lin.ok() || out.run.deadlocked) detected_at = i + 1;
  }
  ASSERT_NE(detected_at, 0u)
      << "latch-gate mutant survived 2000 fuzzed schedules";
  std::fprintf(stderr, "[ MUTANT   ] latch-gate detected after %llu schedules\n",
               static_cast<unsigned long long>(detected_at));
}

TEST(Mutants, LatchGateLosesWakeupWithTwoWaiters) {
  // Two waiters, one latch: one waiter consumes the other's wake, parking
  // it forever.  Detection is either the watchdog deadlock (the rescue
  // wake un-wedges the run afterwards) or a spec violation.
  const std::uint64_t base = announce_seed("Mutants.LatchGate2", 0x1A7C5);
  std::uint64_t detected_at = 0;
  for (std::uint64_t i = 0; i < 2000 && !detected_at; ++i) {
    GateFuzzConfig cfg;
    cfg.rounds = 3;
    cfg.waiters = 2;
    cfg.waiter_cap = 12;
    cfg.seed = base + i;
    cfg.watchdog = std::chrono::milliseconds(3000);
    const auto out = fuzz_gate_once<MutantLatchGate>(cfg);
    if (!out.lin.ok() || out.run.deadlocked) detected_at = i + 1;
  }
  ASSERT_NE(detected_at, 0u)
      << "two-waiter latch-gate mutant survived 2000 fuzzed schedules";
  std::fprintf(stderr, "[ MUTANT   ] latch-gate-2w detected after %llu schedules\n",
               static_cast<unsigned long long>(detected_at));
}

}  // namespace
