// Tests for the chare layer (src/charm).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>

#include "charm/chare.hpp"

namespace {

using bgq::charm::Chare;
using bgq::charm::EntryContext;
using bgq::charm::Runtime;
using bgq::cvs::Machine;
using bgq::cvs::MachineConfig;
using bgq::cvs::Mode;
using bgq::cvs::Pe;

MachineConfig config() {
  MachineConfig cfg;
  cfg.nodes = 2;
  cfg.mode = Mode::kSmp;
  cfg.workers_per_process = 2;
  return cfg;
}

/// Rings a token around the array until its hop budget is spent.
class RingChare : public Chare {
 public:
  explicit RingChare(std::atomic<int>& visits) : visits_(visits) {}

  void entry(int entry, const void* data, std::size_t bytes,
             EntryContext& ctx) override {
    ASSERT_EQ(entry, 0);
    ASSERT_EQ(bytes, sizeof(int));
    int hops_left;
    std::memcpy(&hops_left, data, sizeof(int));
    visits_.fetch_add(1);
    if (hops_left == 0) return;
    const int next = hops_left - 1;
    ctx.send((ctx.index() + 1) % ctx.array_size(), 0, &next, sizeof(next));
  }

 private:
  std::atomic<int>& visits_;
};

/// Contributes its index when poked.
class ContributorChare : public Chare {
 public:
  void entry(int, const void*, std::size_t, EntryContext& ctx) override {
    ctx.contribute(static_cast<double>(ctx.index()) + 1.0);
  }
};

TEST(Charm, RingTokenVisitsEveryElement) {
  Machine machine(config());
  Runtime rt(machine);
  std::atomic<int> visits{0};
  constexpr int kHops = 16;

  auto& ring = rt.create_array(8, [&](std::size_t) {
    return std::make_unique<RingChare>(visits);
  });
  std::atomic<int> stop_guard{0};
  machine.run([&](Pe& pe) {
    if (pe.rank() == 0 && stop_guard.fetch_add(1) == 0) {
      const int hops = kHops;
      ring.send_from(pe, 0, 0, &hops, sizeof(hops));
    }
    // Exit once the token has made its hops.
    while (visits.load() < kHops + 1) {
      if (!pe.pump_one()) std::this_thread::yield();
    }
    pe.exit_all();
  });

  EXPECT_EQ(visits.load(), kHops + 1);
}

TEST(Charm, ReductionSumsAllElements) {
  Machine machine(config());
  Runtime rt(machine);
  constexpr std::size_t kN = 10;

  auto& arr = rt.create_array(
      kN, [](std::size_t) { return std::make_unique<ContributorChare>(); });
  std::atomic<double> total{0};
  arr.set_reduction_client([&](double sum, Pe& pe) {
    total.store(sum);
    pe.exit_all();
  });

  machine.run([&](Pe& pe) {
    if (pe.rank() != 0) return;
    // Poke every element; each contributes index+1: sum = 55.
    for (std::size_t e = 0; e < kN; ++e) {
      arr.send_from(pe, e, 0, nullptr, 0);
    }
  });

  EXPECT_DOUBLE_EQ(total.load(), 55.0);
}

TEST(Charm, ElementsArePlacedRoundRobin) {
  Machine machine(config());
  Runtime rt(machine);
  auto& arr = rt.create_array(
      9, [](std::size_t) { return std::make_unique<ContributorChare>(); });
  for (std::size_t e = 0; e < 9; ++e) {
    EXPECT_EQ(arr.home(e), e % machine.pe_count());
  }
}

TEST(Charm, OutOfRangeSendThrows) {
  Machine machine(config());
  Runtime rt(machine);
  auto& arr = rt.create_array(
      4, [](std::size_t) { return std::make_unique<ContributorChare>(); });
  machine.register_handler([](Pe&, bgq::cvs::Message*) {});
  machine.run([&](Pe& pe) {
    if (pe.rank() == 0) {
      EXPECT_THROW(arr.send_from(pe, 99, 0, nullptr, 0),
                   std::out_of_range);
    }
    pe.exit_all();
  });
}

}  // namespace
