// Tests for the allocators (src/alloc): the paper's lockless pool
// allocator and the GNU-arena-style baseline.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "alloc/arena_allocator.hpp"
#include "alloc/pool_allocator.hpp"

namespace {

using bgq::alloc::ArenaAllocator;
using bgq::alloc::IAllocator;
using bgq::alloc::PoolAllocator;

// Both allocators must satisfy the same contract; run the shared suite
// against each.
enum class Kind { kArena, kPool };

std::unique_ptr<IAllocator> make(Kind k, unsigned nthreads) {
  if (k == Kind::kArena) return std::make_unique<ArenaAllocator>(nthreads);
  return std::make_unique<PoolAllocator>(nthreads);
}

class AllocatorContract : public ::testing::TestWithParam<Kind> {};

TEST_P(AllocatorContract, AllocateGivesWritableAlignedMemory) {
  auto a = make(GetParam(), 4);
  void* p = a->allocate(0, 100);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 16, 0u);
  std::memset(p, 0xAB, 100);
  a->deallocate(0, p);
}

TEST_P(AllocatorContract, ManySizesIncludingHuge) {
  auto a = make(GetParam(), 2);
  std::vector<void*> ptrs;
  for (std::size_t sz : {1u, 31u, 32u, 33u, 4096u, 65536u, 65537u,
                         1u << 20}) {
    void* p = a->allocate(1, sz);
    ASSERT_NE(p, nullptr) << sz;
    std::memset(p, 1, sz);
    ptrs.push_back(p);
  }
  for (void* p : ptrs) a->deallocate(1, p);
}

TEST_P(AllocatorContract, ReuseAfterFree) {
  auto a = make(GetParam(), 1);
  void* p1 = a->allocate(0, 256);
  a->deallocate(0, p1);
  void* p2 = a->allocate(0, 256);
  a->deallocate(0, p2);
  SUCCEED();  // contract: no crash, no corruption (ASan-visible)
}

TEST_P(AllocatorContract, DistinctLiveBuffersDoNotAlias) {
  auto a = make(GetParam(), 1);
  constexpr int kN = 100;
  std::vector<char*> ptrs;
  for (int i = 0; i < kN; ++i) {
    auto* p = static_cast<char*>(a->allocate(0, 64));
    std::memset(p, i, 64);
    ptrs.push_back(p);
  }
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(ptrs[i][0], static_cast<char>(i));
    EXPECT_EQ(ptrs[i][63], static_cast<char>(i));
  }
  for (auto* p : ptrs) a->deallocate(0, p);
}

TEST_P(AllocatorContract, CrossThreadFreeIsSafe) {
  // The paper's contended pattern: thread 0 allocates (a message source),
  // other threads free (the receivers).
  auto a = make(GetParam(), 4);
  constexpr int kRounds = 200;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<void*> bufs;
    for (int i = 0; i < 12; ++i) bufs.push_back(a->allocate(0, 512));
    std::vector<std::thread> ts;
    for (unsigned t = 1; t <= 3; ++t) {
      ts.emplace_back([&, t] {
        for (int i = static_cast<int>(t) - 1; i < 12; i += 3) {
          a->deallocate(t, bufs[static_cast<std::size_t>(i)]);
        }
      });
    }
    for (auto& t : ts) t.join();
  }
  SUCCEED();
}

TEST_P(AllocatorContract, ParallelChurnDeliversDistinctBuffers) {
  auto a = make(GetParam(), 4);
  std::atomic<bool> failed{false};
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < 4; ++t) {
    ts.emplace_back([&, t] {
      std::vector<void*> mine;
      for (int round = 0; round < 500; ++round) {
        for (int i = 0; i < 20; ++i) {
          auto* p = static_cast<unsigned char*>(a->allocate(t, 128));
          p[0] = static_cast<unsigned char>(t);
          mine.push_back(p);
        }
        for (void* p : mine) {
          if (static_cast<unsigned char*>(p)[0] !=
              static_cast<unsigned char>(t)) {
            failed.store(true);
          }
          a->deallocate(t, p);
        }
        mine.clear();
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_FALSE(failed.load()) << "two threads observed the same live buffer";
}

INSTANTIATE_TEST_SUITE_P(Allocators, AllocatorContract,
                         ::testing::Values(Kind::kArena, Kind::kPool),
                         [](const auto& info) {
                           return info.param == Kind::kArena ? "Arena"
                                                             : "Pool";
                         });

TEST(PoolAllocator, SecondAllocComesFromPool) {
  PoolAllocator a(1);
  void* p1 = a.allocate(0, 256);
  a.deallocate(0, p1);
  EXPECT_EQ(a.pool_hits(), 0u);
  void* p2 = a.allocate(0, 256);
  EXPECT_EQ(a.pool_hits(), 1u);
  EXPECT_EQ(p1, p2) << "pool should return the pooled buffer";
  a.deallocate(0, p2);
}

TEST(PoolAllocator, FreeBeyondThresholdSpillsToHeap) {
  PoolAllocator a(1, /*pool_slots=*/4);
  std::vector<void*> bufs;
  for (int i = 0; i < 10; ++i) bufs.push_back(a.allocate(0, 64));
  for (void* p : bufs) a.deallocate(0, p);
  EXPECT_GE(a.heap_frees(), 6u) << "only 4 slots fit in the pool";
}

TEST(PoolAllocator, HugeBuffersBypassPools) {
  PoolAllocator a(1);
  void* p = a.allocate(0, 1 << 20);
  a.deallocate(0, p);
  void* p2 = a.allocate(0, 1 << 20);
  a.deallocate(0, p2);
  EXPECT_EQ(a.pool_hits(), 0u);
}

TEST(PoolAllocator, DoubleFreeDetected) {
  PoolAllocator a(1, 16);
  void* p = a.allocate(0, 64);
  a.deallocate(0, p);
  EXPECT_THROW(a.deallocate(0, p), std::logic_error);
}

TEST(PoolAllocator, CrossThreadFreeReturnsBufferToOwnerPool) {
  PoolAllocator a(2);
  void* p = a.allocate(0, 128);      // owned by thread 0
  a.deallocate(1, p);                // freed by thread 1
  void* p2 = a.allocate(0, 128);     // thread 0 allocates again
  EXPECT_EQ(p, p2) << "buffer must return to the creating thread's pool";
  EXPECT_EQ(a.pool_hits(), 1u);
  a.deallocate(0, p2);
}

TEST(ArenaAllocator, DefaultArenaCountScalesDown) {
  ArenaAllocator a(16);
  EXPECT_EQ(a.arena_count(), 4u);  // one arena per four threads
  ArenaAllocator b(2);
  EXPECT_EQ(b.arena_count(), 1u);
}

TEST(ArenaAllocator, ContentionCounterMovesUnderPressure) {
  // Many threads freeing into one arena must record contention events —
  // the effect Fig. 6 quantifies.  (Timesharing hosts may serialize
  // perfectly, so only assert the counter is readable and monotone.)
  ArenaAllocator a(8, /*narenas=*/1);
  const auto before = a.contention_events();
  std::vector<void*> bufs;
  for (int i = 0; i < 64; ++i) bufs.push_back(a.allocate(0, 256));
  std::vector<std::thread> ts;
  std::atomic<std::size_t> next{0};
  for (unsigned t = 0; t < 4; ++t) {
    ts.emplace_back([&, t] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= bufs.size()) return;
        a.deallocate(t, bufs[i]);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_GE(a.contention_events(), before);
}

TEST(ArenaAllocator, RejectsZeroThreads) {
  EXPECT_THROW(ArenaAllocator(0), std::invalid_argument);
}

TEST(PoolAllocator, RejectsZeroThreads) {
  EXPECT_THROW(PoolAllocator(0), std::invalid_argument);
}

}  // namespace
