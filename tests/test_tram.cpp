// TRAM-style aggregation: batch codec units and Router edge cases — the
// paths a throughput bench never exercises.  Conservation when batches
// carry the traffic, the timeout flush for an idle sender, the oversize
// bypass, the worker-barrier drain, epoch-stale staging discard, and
// exactly-once delivery when the chaos fabric drops/dups whole batches.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "converse/machine.hpp"
#include "net/fault.hpp"
#include "tram/aggregator.hpp"
#include "tram/batch.hpp"

namespace {

using bgq::cvs::Machine;
using bgq::cvs::MachineConfig;
using bgq::cvs::Message;
using bgq::cvs::Mode;
using bgq::cvs::MsgHeader;
using bgq::cvs::Pe;
using bgq::net::FaultPlan;
using bgq::tram::BatchWriter;
using bgq::tram::for_each_record;
using bgq::tram::record_bytes;

// ---------------------------------------------------------------------------
// Batch codec
// ---------------------------------------------------------------------------

TEST(TramBatch, RecordBytesPadToHeaderAlignment) {
  EXPECT_EQ(record_bytes(0) % alignof(MsgHeader), 0u);
  EXPECT_GE(record_bytes(0), sizeof(MsgHeader));
  EXPECT_EQ(record_bytes(1), record_bytes(16 - sizeof(MsgHeader) % 16));
  for (std::size_t p : {0u, 1u, 15u, 16u, 17u, 100u, 512u}) {
    EXPECT_EQ(record_bytes(p) % alignof(MsgHeader), 0u);
    EXPECT_GE(record_bytes(p), sizeof(MsgHeader) + p);
  }
}

TEST(TramBatch, WriterRoundTripsRecordsInOrder) {
  BatchWriter w;
  for (std::uint32_t i = 0; i < 5; ++i) {
    MsgHeader h{};
    h.payload_bytes = 8 + i;  // deliberately unaligned sizes
    h.handler = static_cast<std::uint16_t>(10 + i);
    h.src_pe = i;
    h.dst_pe = 100 + i;
    std::vector<std::byte> payload(h.payload_bytes,
                                   static_cast<std::byte>(i));
    w.append(h, payload.data());
  }
  EXPECT_EQ(w.count(), 5u);
  std::uint32_t seen = 0;
  const std::size_t n = for_each_record(
      w.data(), w.bytes(), [&](const MsgHeader& h, const std::byte* p) {
        EXPECT_EQ(h.handler, 10 + seen);
        EXPECT_EQ(h.dst_pe, 100 + seen);
        EXPECT_EQ(h.payload_bytes, 8 + seen);
        for (std::uint32_t b = 0; b < h.payload_bytes; ++b) {
          EXPECT_EQ(p[b], static_cast<std::byte>(seen));
        }
        ++seen;
      });
  EXPECT_EQ(n, 5u);
}

TEST(TramBatch, TruncatedTailStopsTheWalkInsteadOfOverreading) {
  BatchWriter w;
  MsgHeader h{};
  h.payload_bytes = 32;
  std::vector<std::byte> payload(32, std::byte{0xAB});
  w.append(h, payload.data());
  w.append(h, payload.data());
  // Chop the second record's payload: the walk must deliver only the
  // first record and stop.
  const std::size_t cut = w.bytes() - 8;
  const std::size_t n =
      for_each_record(w.data(), cut, [](const MsgHeader&, const std::byte*) {});
  EXPECT_EQ(n, 1u);
}

TEST(TramBatch, EmptyBatchAlwaysFitsOneRecord) {
  BatchWriter w;
  EXPECT_TRUE(w.fits(10'000, /*limit_bytes=*/64));
  MsgHeader h{};
  h.payload_bytes = 40;
  std::vector<std::byte> p(40);
  w.append(h, p.data());
  EXPECT_FALSE(w.fits(40, /*limit_bytes=*/64));
  EXPECT_TRUE(w.fits(40, /*limit_bytes=*/4096));
}

// ---------------------------------------------------------------------------
// Router over a live machine
// ---------------------------------------------------------------------------

MachineConfig tram_config() {
  MachineConfig cfg;
  cfg.nodes = 2;
  cfg.mode = Mode::kSmp;
  cfg.workers_per_process = 2;
  cfg.tram.enabled = true;
  return cfg;
}

struct FloodResult {
  std::size_t received = 0;
  bgq::trace::Report report;
};

/// PE 0 sends `count` messages of `bytes` to `sink`; the sink acks when
/// it has them all and the machine exits.
FloodResult flood(MachineConfig cfg, std::size_t count, std::size_t bytes,
                  bool sink_remote = true,
                  const std::function<void(Pe&)>& after_send = {}) {
  Machine machine(cfg);
  const bgq::cvs::PeRank sink =
      sink_remote ? static_cast<bgq::cvs::PeRank>(machine.pe_count() - 1)
                  : 1;  // PE 1 shares PE 0's process in SMP mode
  std::atomic<std::size_t> received{0};
  bgq::cvs::HandlerId ack{};
  const bgq::cvs::HandlerId recv = machine.register_handler(
      [&](Pe& pe, Message* m) {
        const bool last =
            received.fetch_add(1, std::memory_order_relaxed) + 1 == count;
        pe.free_message(m);
        if (last) {
          // Oversize on purpose: the completion ack bypasses aggregation,
          // so tram.* counters reflect the flood alone.
          pe.send_message(0, pe.alloc_message(1024, ack));
        }
      });
  ack = machine.register_handler([&](Pe& pe, Message* m) {
    pe.free_message(m);
    pe.exit_all();
  });
  machine.run([&](Pe& pe) {
    if (pe.rank() == 0) {
      for (std::size_t i = 0; i < count; ++i) {
        Message* m = pe.alloc_message(bytes, recv);
        std::memset(m->payload(), static_cast<int>(i & 0xFF), bytes);
        pe.send_message(sink, m);
      }
    }
    if (after_send) after_send(pe);  // every PE: barriers are collective
  });
  return {received.load(), machine.metrics_report()};
}

TEST(TramRouter, RemoteSmallMessagesTravelInBatches) {
  const FloodResult r = flood(tram_config(), 400, 32);
  EXPECT_EQ(r.received, 400u);
  EXPECT_EQ(r.report.value("tram.appends"), 400u);
  EXPECT_GT(r.report.value("tram.batches"), 0u);
  EXPECT_LT(r.report.value("tram.batches"), 400u)
      << "batching must actually coalesce, not ship 1-record batches";
  EXPECT_EQ(r.report.value("tram.deagg_msgs"), 400u);
}

TEST(TramRouter, IntraProcessSendsNeverAggregate) {
  // SMP pointer exchange already beats any batch: the Router must not
  // touch same-process traffic.
  const FloodResult r = flood(tram_config(), 100, 32, /*sink_remote=*/false);
  EXPECT_EQ(r.received, 100u);
  EXPECT_EQ(r.report.value("tram.appends"), 0u);
  EXPECT_EQ(r.report.value("tram.batches"), 0u);
}

TEST(TramRouter, IdleSenderFlushesOnTimeout) {
  // A single staged message with no follow-up traffic must still arrive:
  // the scheduler's idle tick flushes buffers older than flush_ns.
  MachineConfig cfg = tram_config();
  cfg.tram.flush_ns = 50'000;  // don't make the test wait long
  const FloodResult r = flood(cfg, 1, 32);
  EXPECT_EQ(r.received, 1u);
  EXPECT_GE(r.report.value("tram.flush.timeout"), 1u);
}

TEST(TramRouter, OversizedMessagesBypassAggregation) {
  MachineConfig cfg = tram_config();  // default max_msg_bytes = 512
  const FloodResult r = flood(cfg, 10, 1024);
  EXPECT_EQ(r.received, 10u);
  EXPECT_EQ(r.report.value("tram.bypass.oversize"), 11u);  // 10 + the ack
  EXPECT_EQ(r.report.value("tram.appends"), 0u);
}

TEST(TramRouter, WorkerBarrierDrainsStagedRecords) {
  // Far fewer records than any flush threshold, then a machine-wide
  // barrier: the drain at barrier entry must flush them (a collective
  // alignment point never waits on a lazy buffer).
  MachineConfig cfg = tram_config();
  cfg.tram.flush_ns = 10'000'000'000ull;  // timeout can never fire
  const FloodResult r =
      flood(cfg, 5, 32, /*sink_remote=*/true, [](Pe& pe) { pe.barrier(); });
  EXPECT_EQ(r.received, 5u);
  EXPECT_GE(r.report.value("tram.flush.barrier"), 1u);
  EXPECT_EQ(r.report.value("tram.flush.timeout"), 0u);
}

TEST(TramRouter, ExactlyOnceWhenChaosDropsAndDupsBatches) {
  // The reliability layer retransmits/dedups whole batches; records must
  // arrive exactly once — no loss when a batch is dropped, no double
  // delivery when one is duplicated.
  MachineConfig cfg = tram_config();
  cfg.faults = FaultPlan::parse("drop=0.05,dup=0.05,delay=0.1,seed=99");
  const FloodResult r = flood(cfg, 500, 32);
  EXPECT_EQ(r.received, 500u);
  EXPECT_EQ(r.report.value("tram.appends"), 500u);
}

TEST(TramRouter, EpochBumpDiscardsStaleStagedRecords) {
  // Records staged before a rollback epoch bump must never ship: replay
  // comes from the checkpoint, and these were already un-counted when
  // the quiescence counters reset.
  MachineConfig cfg = tram_config();
  cfg.workers_per_process = 1;
  cfg.ft.enabled = true;
  cfg.ft.checkpoint_period_ms = 10'000;  // no checkpoint interference
  cfg.ft.watchdog_abort = false;
  std::atomic<std::size_t> received{0};
  std::uint64_t staged_before = 0, staged_after = 0;
  Machine machine(cfg);
  const bgq::cvs::HandlerId recv = machine.register_handler(
      [&](Pe& pe, Message* m) {
        received.fetch_add(1);
        pe.free_message(m);
      });
  machine.run([&](Pe& pe) {
    if (pe.rank() != 0) {
      pe.exit_all();
      return;
    }
    bgq::tram::Router* tr = machine.tram_router();
    ASSERT_NE(tr, nullptr);
    const bgq::cvs::PeRank sink =
        static_cast<bgq::cvs::PeRank>(machine.pe_count() - 1);
    pe.send_message(sink, pe.alloc_message(32, recv));
    staged_before = tr->staged(0);
    machine.bump_msg_epoch();  // what a rollback does
    pe.send_message(sink, pe.alloc_message(32, recv));
    staged_after = tr->staged(0);
    pe.exit_all();
  });
  EXPECT_EQ(staged_before, 1u);
  EXPECT_EQ(staged_after, 1u)
      << "the pre-bump record must be discarded, the post-bump one staged";
  EXPECT_EQ(machine.metrics_report().value("tram.stale_discards"), 1u);
}

}  // namespace
