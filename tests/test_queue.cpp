// Tests for the lockless queue family (src/queue): the paper's L2 atomic
// queue with overflow, the MPI-ordered variant, the mutex baseline and the
// SPSC work ring.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "l2atomic/l2_atomic.hpp"
#include "queue/l2_atomic_queue.hpp"
#include "queue/mutex_queue.hpp"
#include "queue/ordered_l2_queue.hpp"
#include "queue/spsc_ring.hpp"

namespace {

using bgq::queue::L2AtomicQueue;
using bgq::queue::MutexQueue;
using bgq::queue::OrderedL2Queue;
using bgq::queue::SpscRing;

std::uint64_t* tag(std::uint64_t v) {
  return reinterpret_cast<std::uint64_t*>(v + 1);  // +1: never nullptr
}
std::uint64_t untag(std::uint64_t* p) {
  return reinterpret_cast<std::uint64_t>(p) - 1;
}

TEST(L2AtomicQueue, EmptyDequeuesNull) {
  L2AtomicQueue<int*> q(8);
  EXPECT_EQ(q.try_dequeue(), nullptr);
  EXPECT_TRUE(q.empty());
}

TEST(L2AtomicQueue, FifoWithinSingleProducer) {
  L2AtomicQueue<std::uint64_t*> q(16);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_TRUE(q.enqueue(tag(i)));
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(untag(q.try_dequeue()), i);
  }
  EXPECT_EQ(q.try_dequeue(), nullptr);
}

TEST(L2AtomicQueue, CapacityRoundsToPowerOfTwo) {
  L2AtomicQueue<int*> q(100);
  EXPECT_EQ(q.capacity(), 128u);
}

TEST(L2AtomicQueue, OverflowsToMutexQueueWhenRingFull) {
  L2AtomicQueue<std::uint64_t*> q(4);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_TRUE(q.enqueue(tag(i)));
  // Ring full: the next enqueues take the overflow path.
  EXPECT_FALSE(q.enqueue(tag(4)));
  EXPECT_FALSE(q.enqueue(tag(5)));
  EXPECT_EQ(q.overflow_count(), 2u);

  // Consumer drains the lockless ring first, then overflow.
  std::vector<std::uint64_t> order;
  while (auto* p = q.try_dequeue()) order.push_back(untag(p));
  ASSERT_EQ(order.size(), 6u);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{0, 1, 2, 3, 4, 5}));
}

TEST(L2AtomicQueue, RingReopensAfterDrain) {
  L2AtomicQueue<std::uint64_t*> q(4);
  for (int round = 0; round < 10; ++round) {
    for (std::uint64_t i = 0; i < 4; ++i) {
      EXPECT_TRUE(q.enqueue(tag(i))) << "round " << round;
    }
    for (std::uint64_t i = 0; i < 4; ++i) {
      EXPECT_EQ(untag(q.try_dequeue()), i);
    }
  }
  EXPECT_TRUE(q.empty());
}

TEST(L2AtomicQueue, TryEnqueueFailsWhenFullInsteadOfSpilling) {
  L2AtomicQueue<std::uint64_t*> q(2);
  EXPECT_TRUE(q.try_enqueue(tag(0)));
  EXPECT_TRUE(q.try_enqueue(tag(1)));
  EXPECT_FALSE(q.try_enqueue(tag(2)));
  EXPECT_EQ(q.overflow_count(), 0u);
}

// --- direct overflow-path protocol coverage (§III-A, Fig. 2) ---------------

TEST(L2AtomicQueue, BoundedIncrementReturnsAllOnesSentinelAtBound) {
  // The failure protocol of the L2 bounded load-increment: once the counter
  // reaches the bound every attempt returns 0xFFFF'FFFF'FFFF'FFFF, and
  // raising the bound re-admits producers at the next ticket.
  bgq::l2::BoundedCounter bc(2);
  EXPECT_EQ(bc.bounded_increment(), 0u);
  EXPECT_EQ(bc.bounded_increment(), 1u);
  EXPECT_EQ(bc.bounded_increment(), bgq::l2::kBoundedFailure);
  EXPECT_EQ(bc.bounded_increment(), bgq::l2::kBoundedFailure);
  EXPECT_EQ(bc.bounded_increment(), 0xFFFF'FFFF'FFFF'FFFFull);
  EXPECT_TRUE(bc.full());
  bc.advance_bound(1);  // consumer drained one slot
  EXPECT_EQ(bc.bounded_increment(), 2u);
  EXPECT_EQ(bc.bounded_increment(), bgq::l2::kBoundedFailure);
}

TEST(L2AtomicQueue, FillToBoundThenSpillKeepsRingIntact) {
  L2AtomicQueue<std::uint64_t*> q(4);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_TRUE(q.enqueue(tag(i)));
  EXPECT_EQ(q.ring_size(), 4u);
  EXPECT_EQ(q.overflow_count(), 0u);
  // At the bound: enqueue reports the slow path was taken and the ring is
  // untouched.
  EXPECT_FALSE(q.enqueue(tag(4)));
  EXPECT_EQ(q.ring_size(), 4u);
  EXPECT_EQ(q.overflow_count(), 1u);
}

TEST(L2AtomicQueue, DrainRaisesBoundAndReopensFastPath) {
  L2AtomicQueue<std::uint64_t*> q(2);
  EXPECT_TRUE(q.enqueue(tag(0)));
  EXPECT_TRUE(q.enqueue(tag(1)));
  EXPECT_FALSE(q.enqueue(tag(2)));  // spill
  EXPECT_FALSE(q.enqueue(tag(3)));  // spill
  // Each ring dequeue advances the bound by one, so the fast path reopens
  // even while messages still sit in overflow (Charm++ needs no ordering).
  EXPECT_EQ(untag(q.try_dequeue()), 0u);
  EXPECT_TRUE(q.enqueue(tag(4))) << "drained slot must reopen the ring";
  EXPECT_EQ(q.overflow_count(), 2u);

  std::set<std::uint64_t> rest;
  while (auto* p = q.try_dequeue()) rest.insert(untag(p));
  EXPECT_EQ(rest, (std::set<std::uint64_t>{1, 2, 3, 4}));
  EXPECT_TRUE(q.empty());
}

TEST(L2AtomicQueue, RepeatedSpillDrainCyclesLoseNothing) {
  // Push the ring through many full->spill->drain cycles; every message
  // must come out exactly once whatever path it took.
  L2AtomicQueue<std::uint64_t*> q(2);
  std::set<std::uint64_t> seen;
  std::uint64_t next = 0;
  for (int cycle = 0; cycle < 50; ++cycle) {
    for (int i = 0; i < 5; ++i) q.enqueue(tag(next++));  // 2 fast, 3 spill
    while (auto* p = q.try_dequeue()) {
      EXPECT_TRUE(seen.insert(untag(p)).second) << "duplicate delivery";
    }
  }
  EXPECT_EQ(seen.size(), next);
  EXPECT_EQ(q.overflow_count(), 0u);
  EXPECT_TRUE(q.empty());
}

// Property: N producers x M messages, single consumer — every message is
// delivered exactly once regardless of ring size (overflow pressure is the
// parameter).
class L2QueueMpsc : public ::testing::TestWithParam<std::size_t> {};

TEST_P(L2QueueMpsc, AllMessagesDeliveredExactlyOnce) {
  const std::size_t ring_capacity = GetParam();
  constexpr int kProducers = 4;
  constexpr std::uint64_t kPerProducer = 10000;

  L2AtomicQueue<std::uint64_t*> q(ring_capacity);
  std::atomic<bool> done{false};
  std::vector<std::uint64_t> seen;
  seen.reserve(kProducers * kPerProducer);

  std::thread consumer([&] {
    while (true) {
      if (auto* p = q.try_dequeue()) {
        seen.push_back(untag(p));
      } else if (done.load(std::memory_order_acquire) && q.empty()) {
        // One final sweep: producers have finished and queue reads empty.
        while (auto* p2 = q.try_dequeue()) seen.push_back(untag(p2));
        return;
      }
    }
  });

  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        q.enqueue(tag(static_cast<std::uint64_t>(t) * kPerProducer + i));
      }
    });
  }
  for (auto& p : producers) p.join();
  done.store(true, std::memory_order_release);
  consumer.join();

  ASSERT_EQ(seen.size(), kProducers * kPerProducer);
  std::set<std::uint64_t> unique(seen.begin(), seen.end());
  EXPECT_EQ(unique.size(), seen.size()) << "duplicate delivery";
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), kProducers * kPerProducer - 1);
}

INSTANTIATE_TEST_SUITE_P(RingSizes, L2QueueMpsc,
                         ::testing::Values(2, 8, 64, 1024),
                         [](const auto& info) {
                           return "ring" + std::to_string(info.param);
                         });

TEST(OrderedL2Queue, PreservesFifoAcrossOverflow) {
  OrderedL2Queue<std::uint64_t*> q(2);
  // Fill ring, spill to overflow, then drain: order must be global FIFO.
  for (std::uint64_t i = 0; i < 6; ++i) q.enqueue(tag(i));
  std::vector<std::uint64_t> order;
  while (auto* p = q.try_dequeue()) order.push_back(untag(p));
  EXPECT_EQ(order, (std::vector<std::uint64_t>{0, 1, 2, 3, 4, 5}));
}

TEST(OrderedL2Queue, LaterEnqueueCannotOvertakeOverflow) {
  OrderedL2Queue<std::uint64_t*> q(2);
  q.enqueue(tag(0));
  q.enqueue(tag(1));
  q.enqueue(tag(2));  // overflow
  // Drain one from the ring; slot opens, but message 3 must still queue
  // behind 2 (which sits in overflow).
  EXPECT_EQ(untag(q.try_dequeue()), 0u);
  q.enqueue(tag(3));
  std::vector<std::uint64_t> order;
  while (auto* p = q.try_dequeue()) order.push_back(untag(p));
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(OrderedL2Queue, MpscDeliversAll) {
  OrderedL2Queue<std::uint64_t*> q(8);
  constexpr int kProducers = 4;
  constexpr std::uint64_t kPerProducer = 5000;
  std::atomic<bool> done{false};
  std::size_t count = 0;

  std::thread consumer([&] {
    while (true) {
      if (q.try_dequeue()) {
        ++count;
      } else if (done.load() && q.empty()) {
        while (q.try_dequeue()) ++count;
        return;
      }
    }
  });
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) q.enqueue(tag(i));
    });
  }
  for (auto& p : producers) p.join();
  done.store(true);
  consumer.join();
  EXPECT_EQ(count, kProducers * kPerProducer);
}

TEST(MutexQueue, BasicFifo) {
  MutexQueue<std::uint64_t*> q;
  for (std::uint64_t i = 0; i < 5; ++i) q.enqueue(tag(i));
  EXPECT_EQ(q.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(untag(q.try_dequeue()), i);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.try_dequeue(), nullptr);
}

TEST(SpscRing, FillDrain) {
  SpscRing<int> r(4);
  EXPECT_TRUE(r.try_enqueue(1));
  EXPECT_TRUE(r.try_enqueue(2));
  EXPECT_TRUE(r.try_enqueue(3));
  EXPECT_TRUE(r.try_enqueue(4));
  EXPECT_FALSE(r.try_enqueue(5)) << "ring of 4 must reject the 5th";
  EXPECT_EQ(r.try_dequeue().value(), 1);
  EXPECT_TRUE(r.try_enqueue(5));
  for (int expect : {2, 3, 4, 5}) EXPECT_EQ(r.try_dequeue().value(), expect);
  EXPECT_FALSE(r.try_dequeue().has_value());
}

TEST(SpscRing, StreamingPairPreservesOrderAndCount) {
  SpscRing<std::uint64_t> r(64);
  constexpr std::uint64_t kN = 200000;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kN;) {
      if (r.try_enqueue(i)) ++i;
    }
  });
  std::uint64_t expect = 0;
  while (expect < kN) {
    if (auto v = r.try_dequeue()) {
      ASSERT_EQ(*v, expect);
      ++expect;
    }
  }
  producer.join();
  EXPECT_TRUE(r.empty());
}

TEST(SpscRing, MoveOnlyPayload) {
  SpscRing<std::unique_ptr<int>> r(4);
  EXPECT_TRUE(r.try_enqueue(std::make_unique<int>(7)));
  auto v = r.try_dequeue();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 7);
}

}  // namespace
