// Mini-NAMD example: a scaled-down ApoA1-like solvated system simulated
// with the full parallel pipeline — spatial patches over 4 PEs, halo
// exchange, QPX-style nonbonded kernels, and many-to-many PME — printing
// the per-cycle energy ledger (the same quantities NAMD logs).
#include <atomic>
#include <cstdio>

#include "common/table.hpp"
#include "common/timing.hpp"
#include "converse/machine.hpp"
#include "m2m/manytomany.hpp"
#include "md/parallel_md.hpp"

using namespace bgq;

int main() {
  cvs::MachineConfig cfg;
  cfg.nodes = 2;
  cfg.mode = cvs::Mode::kSmpCommThreads;
  cfg.workers_per_process = 2;
  cfg.comm_threads = 1;
  cvs::Machine machine(cfg);
  m2m::Coordinator coord(machine);

  // ApoA1-like density in a 24 A box (~1400 atoms) so the example runs
  // in seconds; scale=1 would be the full 92k-atom system.
  auto sys = md::apoa1_like(/*scale=*/90.0);
  std::printf("== mini-NAMD: %zu atoms, box %.1f A, %zu bonds ==\n",
              sys.natoms(), sys.box, sys.bonds.size());

  md::MdConfig mdcfg;
  mdcfg.cutoff = 8.0;
  mdcfg.switch_dist = 7.0;
  mdcfg.beta = 0.4;
  mdcfg.pme_grid = 32;
  mdcfg.pme_every = 4;  // the paper's multiple-timestepping setting
  mdcfg.dt = 0.5;
  mdcfg.transport = fft::Transport::kM2M;
  md::ParallelMd sim(machine, &coord, std::move(sys), mdcfg);

  for (cvs::PeRank r = 0; r < machine.pe_count(); ++r) {
    std::printf("patch %u: %zu atoms\n", r, sim.local_atoms(r));
  }

  constexpr unsigned kSteps = 24;
  std::atomic<double> wall_us{0};
  std::atomic<int> done{0};
  machine.run([&](cvs::Pe& pe) {
    Timer t;
    sim.run_steps(pe, kSteps);
    if (pe.rank() == 0) wall_us.store(t.elapsed_us());
    if (done.fetch_add(1) + 1 == static_cast<int>(machine.pe_count())) {
      pe.exit_all();
    }
  });

  std::printf("\n%u steps in %.1f ms (%.0f us/step)\n\n", kSteps,
              wall_us.load() * 1e-3, wall_us.load() / kSteps);

  TextTable tbl({"cycle", "bond", "angle", "vdw", "elec_real", "recip",
                 "excl_corr", "kinetic", "total"});
  for (std::size_t s = 0; s < sim.steps_logged(); ++s) {
    const auto e = sim.total_energies(s);
    tbl.row(s, e.bond, e.angle, e.vdw, e.elec_real, e.recip, e.excl_corr,
            e.kinetic, e.total());
  }
  tbl.print();
  std::printf("\n(energies in kcal/mol; 'total' should stay flat — NVE "
              "conservation)\n");
  return 0;
}
