// Machine explorer: the BG/Q partitions the paper ran on, their torus
// shapes, diameters, bisection, what topology-aware placement would buy
// the FFT/PME pencil grids (§II-A and §VII), and a live look at the
// runtime's counter registry after a short traced run.
#include <cstdio>
#include <cstring>

#include "common/table.hpp"
#include "converse/machine.hpp"
#include "topology/placement.hpp"
#include "topology/torus.hpp"

using namespace bgq;

namespace {

// Boot the smallest SMP machine, ring a token around it, and dump every
// counter the runtime kept — the Projections-style summary view.
void runtime_counters_section() {
  std::printf("\n== Runtime metrics registry (2 nodes, SMP, traced) ==\n\n");

  cvs::MachineConfig cfg;
  cfg.nodes = 2;
  cfg.mode = cvs::Mode::kSmp;
  cfg.workers_per_process = 2;
  cfg.trace_events = true;
  cvs::Machine machine(cfg);

  const cvs::HandlerId ring = machine.register_handler(
      [](cvs::Pe& pe, cvs::Message* m) {
        int hops;
        std::memcpy(&hops, m->payload(), sizeof(hops));
        if (hops == 0) {
          pe.free_message(m);
          pe.exit_all();
          return;
        }
        --hops;
        std::memcpy(m->payload(), &hops, sizeof(hops));
        pe.send_message(
            static_cast<cvs::PeRank>((pe.rank() + 1) %
                                     pe.machine().pe_count()),
            m);
      });
  machine.run([&](cvs::Pe& pe) {
    if (pe.rank() != 0) return;
    cvs::Message* m = pe.alloc_message(sizeof(int), ring);
    const int hops = 3 * static_cast<int>(machine.pe_count());
    std::memcpy(m->payload(), &hops, sizeof(hops));
    pe.send_message(1, m);
  });

  TextTable counters({"counter", "total"});
  for (const auto& [name, value] : machine.metrics_report().entries) {
    counters.row(name, value);
  }
  counters.print();
  std::printf("\n(same data every bench serializes with --json; the "
              "timeline view is Machine::write_chrome_trace)\n");
}

}  // namespace

int main() {
  std::printf("== BG/Q partitions (5D torus, E = 2) vs BG/P (3D) ==\n\n");

  TextTable tbl({"nodes", "BGQ shape", "diam", "avg_hops", "bisection",
                 "BGP shape", "diam", "avg_hops"});
  for (std::size_t n : {32, 128, 512, 1024, 4096, 16384}) {
    topo::Torus q = topo::Torus::bgq_partition(n);
    std::string qshape, pshape;
    for (int d : q.dims()) qshape += std::to_string(d) + " ";
    std::string p_diam = "-", p_hops = "-";
    if (n <= 4096) {
      topo::Torus p = topo::Torus::bgp_partition(n);
      for (int d : p.dims()) pshape += std::to_string(d) + " ";
      p_diam = std::to_string(p.diameter());
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%.1f", p.average_hops());
      p_hops = buf;
    }
    char qh[16];
    std::snprintf(qh, sizeof(qh), "%.1f", q.average_hops());
    tbl.row(n, qshape, q.diameter(), qh, q.bisection_links(), pshape,
            p_diam, p_hops);
  }
  tbl.print();

  std::printf("\nThe 5D torus's lower diameter and higher bisection are "
              "the architectural basis of §II-A; the paper notes NAMD "
              "scaled well even with oblivious placement, which the "
              "modest folded-placement gains below corroborate:\n\n");

  TextTable pl({"nodes", "grid", "oblivious_hops", "folded_hops"});
  for (std::size_t n : {256, 1024, 4096}) {
    std::size_t g1 = 1;
    while (g1 * g1 < n) g1 <<= 1;
    const std::size_t g2 = n / g1;
    topo::Torus t = topo::Torus::bgq_partition(n);
    const auto lin = topo::neighbor_hops(
        t, topo::map_grid(t, g1, g2, topo::Placement::kLinear), g1, g2);
    const auto fold = topo::neighbor_hops(
        t, topo::map_grid(t, g1, g2, topo::Placement::kFolded), g1, g2);
    char grid[32];
    std::snprintf(grid, sizeof(grid), "%zux%zu", g1, g2);
    pl.row(n, grid, lin.overall(), fold.overall());
  }
  pl.print();

  runtime_counters_section();
  return 0;
}
