// Chare-layer example: a Charm++-style program on the runtime.
//
// An array of "worker" chares, each holding a partial dot-product;
// element 0 broadcasts a "go", every element computes its slice and
// contributes to a sum reduction, and the reduction client prints the
// result and stops the machine — the canonical Charm++ intro program.
#include <cstdio>
#include <cstring>
#include <vector>

#include "charm/chare.hpp"

using namespace bgq;

namespace {

constexpr std::size_t kElements = 12;
constexpr std::size_t kSlice = 10000;

class DotWorker : public charm::Chare {
 public:
  explicit DotWorker(std::size_t index) : index_(index) {}

  void entry(int entry, const void*, std::size_t,
             charm::EntryContext& ctx) override {
    if (entry != 0) return;
    // Partial dot product of x[i] = 1, y[i] = 2 over my slice: exact
    // result per element = 2 * kSlice.
    double acc = 0;
    for (std::size_t i = 0; i < kSlice; ++i) acc += 1.0 * 2.0;
    std::printf("chare %zu (on PE %u): partial = %.0f\n", index_,
                ctx.pe().rank(), acc);
    ctx.contribute(acc);
  }

 private:
  std::size_t index_;
};

}  // namespace

int main() {
  cvs::MachineConfig cfg;
  cfg.nodes = 2;
  cfg.mode = cvs::Mode::kSmp;
  cfg.workers_per_process = 2;
  cvs::Machine machine(cfg);
  charm::Runtime rt(machine);

  auto& workers = rt.create_array(kElements, [](std::size_t i) {
    return std::make_unique<DotWorker>(i);
  });

  workers.set_reduction_client([&](double total, cvs::Pe& pe) {
    std::printf("\nreduction complete: dot product = %.0f (expected "
                "%.0f)\n",
                total, 2.0 * kSlice * kElements);
    pe.exit_all();
  });

  machine.run([&](cvs::Pe& pe) {
    if (pe.rank() != 0) return;
    for (std::size_t e = 0; e < workers.size(); ++e) {
      workers.send_from(pe, e, 0, nullptr, 0);
    }
  });
  return 0;
}
