// Quickstart: the smallest complete program on the runtime.
//
// Boots a simulated 2-node BG/Q job in SMP mode with communication
// threads, registers a Converse handler, and rings a message through
// every PE.  Build and run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <cstring>

#include "converse/machine.hpp"

using namespace bgq;

int main() {
  // 1. Describe the machine: 2 nodes, one SMP process per node with two
  //    worker PEs and one dedicated communication thread each.
  cvs::MachineConfig cfg;
  cfg.nodes = 2;
  cfg.mode = cvs::Mode::kSmpCommThreads;
  cfg.workers_per_process = 2;
  cfg.comm_threads = 1;
  cvs::Machine machine(cfg);

  std::printf("machine: %zu nodes (5D torus ", machine.config().nodes);
  for (int d : machine.torus().dims()) std::printf("%d ", d);
  std::printf("), %zu PEs\n", machine.pe_count());

  // 2. Register a handler: forward the token to the next PE; when it has
  //    visited everyone, stop the machine.
  const cvs::HandlerId ring = machine.register_handler(
      [](cvs::Pe& pe, cvs::Message* m) {
        int hops;
        std::memcpy(&hops, m->payload(), sizeof(hops));
        std::printf("PE %u got the token (hops left: %d)\n", pe.rank(),
                    hops);
        if (hops == 0) {
          pe.free_message(m);
          pe.exit_all();
          return;
        }
        --hops;
        std::memcpy(m->payload(), &hops, sizeof(hops));
        const auto next = static_cast<cvs::PeRank>(
            (pe.rank() + 1) % pe.machine().pe_count());
        pe.send_message(next, m);  // ownership moves with the message
      });

  // 3. Launch: each PE runs the init function and then its scheduler
  //    loop until exit_all().
  machine.run([&](cvs::Pe& pe) {
    if (pe.rank() != 0) return;
    cvs::Message* m = pe.alloc_message(sizeof(int), ring);
    const int hops = 2 * static_cast<int>(machine.pe_count()) - 1;
    std::memcpy(m->payload(), &hops, sizeof(hops));
    pe.send_message(1, m);
  });

  // 4. Report: every runtime counter lives in the machine's metrics
  //    registry; ask for the whole thing or a single dotted name.
  const trace::Report report = machine.metrics_report();
  std::printf("done: %llu messages executed, %llu over the network, "
              "%llu by intra-node pointer exchange\n",
              static_cast<unsigned long long>(
                  report.value("pe.msgs.executed")),
              static_cast<unsigned long long>(
                  report.value("pe.sends.network")),
              static_cast<unsigned long long>(
                  report.value("pe.sends.intra")));
  return 0;
}
