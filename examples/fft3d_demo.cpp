// Distributed 3-D FFT demo: plant plane waves in a 16^3 grid spread over
// 4 PEs, run the pencil-decomposed FFT with both transports, and locate
// the spectral peaks — the workload behind Table I and the PME solver.
#include <atomic>
#include <cmath>
#include <complex>
#include <cstdio>
#include <numbers>

#include "common/timing.hpp"
#include "converse/machine.hpp"
#include "fft/pencil3d.hpp"
#include "m2m/manytomany.hpp"

using namespace bgq;

namespace {

constexpr std::size_t kN = 16;

void fill_signal(fft::Pencil3DFFT& f3d, std::size_t G) {
  // x-direction plane wave with frequency 3 plus a DC offset: the
  // spectrum must show peaks at (0,0,0) and (+-3,0,0).
  const std::size_t B = f3d.block();
  for (cvs::PeRank p = 0; p < G * G; ++p) {
    const std::size_t r = p / G;
    fft::cplx* local = f3d.local_data(p);
    for (std::size_t bx = 0; bx < B; ++bx) {
      const double x = static_cast<double>(r * B + bx);
      const double v =
          0.5 + std::cos(2.0 * std::numbers::pi * 3.0 * x / kN);
      for (std::size_t by = 0; by < B; ++by)
        for (std::size_t z = 0; z < kN; ++z)
          local[f3d.z_index(bx, by, z)] = v;
    }
  }
}

void run(fft::Transport transport, const char* label) {
  cvs::MachineConfig cfg;
  cfg.nodes = 2;
  cfg.mode = cvs::Mode::kSmpCommThreads;
  cfg.workers_per_process = 2;
  cfg.comm_threads = 1;
  cvs::Machine machine(cfg);
  m2m::Coordinator coord(machine);
  fft::Pencil3DFFT f3d(machine, kN, transport, &coord);
  const std::size_t G = f3d.grid();
  fill_signal(f3d, G);

  std::atomic<double> us{0};
  std::atomic<int> done{0};
  machine.run([&](cvs::Pe& pe) {
    Timer t;
    f3d.forward(pe);
    if (pe.rank() == 0) us.store(t.elapsed_us());
    if (done.fetch_add(1) + 1 == static_cast<int>(G * G)) pe.exit_all();
  });

  std::printf("%s: forward 3D FFT of %zu^3 in %.0f us\n", label, kN,
              us.load());
  // The X layout leaves every PE with all kx for its (y, z) block; the
  // peaks live at ky = kz = 0, which PE (0, 0) owns.
  const fft::cplx* local = f3d.local_data(0);
  std::printf("  spectrum magnitude along kx (ky=kz=0): ");
  for (std::size_t kx = 0; kx < 8; ++kx) {
    std::printf("%.0f ", std::abs(local[f3d.x_index(0, 0, kx)]));
  }
  std::printf("... expect peaks at kx=0 (DC) and kx=3\n");
}

}  // namespace

int main() {
  std::printf("== Distributed pencil FFT demo (4 PEs in-process) ==\n\n");
  run(fft::Transport::kP2P, "point-to-point transport  ");
  run(fft::Transport::kM2M, "many-to-many transport    ");
  return 0;
}
