file(REMOVE_RECURSE
  "CMakeFiles/bench_alloc.dir/bench_alloc.cpp.o"
  "CMakeFiles/bench_alloc.dir/bench_alloc.cpp.o.d"
  "bench_alloc"
  "bench_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
