file(REMOVE_RECURSE
  "CMakeFiles/bench_m2m.dir/bench_m2m.cpp.o"
  "CMakeFiles/bench_m2m.dir/bench_m2m.cpp.o.d"
  "bench_m2m"
  "bench_m2m.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_m2m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
