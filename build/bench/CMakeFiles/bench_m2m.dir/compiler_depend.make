# Empty compiler generated dependencies file for bench_m2m.
# This may be replaced when dependencies are built.
