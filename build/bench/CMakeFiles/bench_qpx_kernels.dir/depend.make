# Empty dependencies file for bench_qpx_kernels.
# This may be replaced when dependencies are built.
