file(REMOVE_RECURSE
  "CMakeFiles/bench_qpx_kernels.dir/bench_qpx_kernels.cpp.o"
  "CMakeFiles/bench_qpx_kernels.dir/bench_qpx_kernels.cpp.o.d"
  "bench_qpx_kernels"
  "bench_qpx_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qpx_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
