file(REMOVE_RECURSE
  "CMakeFiles/bench_namd_timeprofile.dir/bench_namd_timeprofile.cpp.o"
  "CMakeFiles/bench_namd_timeprofile.dir/bench_namd_timeprofile.cpp.o.d"
  "bench_namd_timeprofile"
  "bench_namd_timeprofile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_namd_timeprofile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
