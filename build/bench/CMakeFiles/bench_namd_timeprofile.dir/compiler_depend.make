# Empty compiler generated dependencies file for bench_namd_timeprofile.
# This may be replaced when dependencies are built.
