file(REMOVE_RECURSE
  "CMakeFiles/bench_idlepoll.dir/bench_idlepoll.cpp.o"
  "CMakeFiles/bench_idlepoll.dir/bench_idlepoll.cpp.o.d"
  "bench_idlepoll"
  "bench_idlepoll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_idlepoll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
