# Empty dependencies file for bench_idlepoll.
# This may be replaced when dependencies are built.
