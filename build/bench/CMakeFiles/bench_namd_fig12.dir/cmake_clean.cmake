file(REMOVE_RECURSE
  "CMakeFiles/bench_namd_fig12.dir/bench_namd_fig12.cpp.o"
  "CMakeFiles/bench_namd_fig12.dir/bench_namd_fig12.cpp.o.d"
  "bench_namd_fig12"
  "bench_namd_fig12.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_namd_fig12.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
