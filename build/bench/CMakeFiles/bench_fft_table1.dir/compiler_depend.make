# Empty compiler generated dependencies file for bench_fft_table1.
# This may be replaced when dependencies are built.
