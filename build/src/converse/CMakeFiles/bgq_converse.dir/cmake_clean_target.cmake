file(REMOVE_RECURSE
  "libbgq_converse.a"
)
