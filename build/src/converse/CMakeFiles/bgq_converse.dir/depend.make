# Empty dependencies file for bgq_converse.
# This may be replaced when dependencies are built.
