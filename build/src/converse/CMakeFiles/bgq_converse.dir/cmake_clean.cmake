file(REMOVE_RECURSE
  "CMakeFiles/bgq_converse.dir/machine.cpp.o"
  "CMakeFiles/bgq_converse.dir/machine.cpp.o.d"
  "libbgq_converse.a"
  "libbgq_converse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgq_converse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
