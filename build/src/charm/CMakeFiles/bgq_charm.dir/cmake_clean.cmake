file(REMOVE_RECURSE
  "CMakeFiles/bgq_charm.dir/chare.cpp.o"
  "CMakeFiles/bgq_charm.dir/chare.cpp.o.d"
  "libbgq_charm.a"
  "libbgq_charm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgq_charm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
