# Empty dependencies file for bgq_charm.
# This may be replaced when dependencies are built.
