file(REMOVE_RECURSE
  "libbgq_charm.a"
)
