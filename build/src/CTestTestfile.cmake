# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("l2atomic")
subdirs("queue")
subdirs("alloc")
subdirs("wakeup")
subdirs("topology")
subdirs("net")
subdirs("pami")
subdirs("converse")
subdirs("m2m")
subdirs("charm")
subdirs("fft")
subdirs("qpx")
subdirs("md")
subdirs("sim")
subdirs("model")
