file(REMOVE_RECURSE
  "libbgq_model.a"
)
