file(REMOVE_RECURSE
  "CMakeFiles/bgq_model.dir/fft_model.cpp.o"
  "CMakeFiles/bgq_model.dir/fft_model.cpp.o.d"
  "CMakeFiles/bgq_model.dir/namd_model.cpp.o"
  "CMakeFiles/bgq_model.dir/namd_model.cpp.o.d"
  "CMakeFiles/bgq_model.dir/params.cpp.o"
  "CMakeFiles/bgq_model.dir/params.cpp.o.d"
  "libbgq_model.a"
  "libbgq_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgq_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
