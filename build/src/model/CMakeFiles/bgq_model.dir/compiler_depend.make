# Empty compiler generated dependencies file for bgq_model.
# This may be replaced when dependencies are built.
