file(REMOVE_RECURSE
  "libbgq_net.a"
)
