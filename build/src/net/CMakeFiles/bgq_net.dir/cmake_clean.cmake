file(REMOVE_RECURSE
  "CMakeFiles/bgq_net.dir/fabric.cpp.o"
  "CMakeFiles/bgq_net.dir/fabric.cpp.o.d"
  "libbgq_net.a"
  "libbgq_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgq_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
