# Empty compiler generated dependencies file for bgq_net.
# This may be replaced when dependencies are built.
