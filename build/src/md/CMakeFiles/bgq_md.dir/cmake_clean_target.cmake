file(REMOVE_RECURSE
  "libbgq_md.a"
)
