file(REMOVE_RECURSE
  "CMakeFiles/bgq_md.dir/ewald_ref.cpp.o"
  "CMakeFiles/bgq_md.dir/ewald_ref.cpp.o.d"
  "CMakeFiles/bgq_md.dir/kernels.cpp.o"
  "CMakeFiles/bgq_md.dir/kernels.cpp.o.d"
  "CMakeFiles/bgq_md.dir/parallel_md.cpp.o"
  "CMakeFiles/bgq_md.dir/parallel_md.cpp.o.d"
  "CMakeFiles/bgq_md.dir/pme_serial.cpp.o"
  "CMakeFiles/bgq_md.dir/pme_serial.cpp.o.d"
  "CMakeFiles/bgq_md.dir/system.cpp.o"
  "CMakeFiles/bgq_md.dir/system.cpp.o.d"
  "CMakeFiles/bgq_md.dir/tables.cpp.o"
  "CMakeFiles/bgq_md.dir/tables.cpp.o.d"
  "libbgq_md.a"
  "libbgq_md.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgq_md.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
