# Empty compiler generated dependencies file for bgq_md.
# This may be replaced when dependencies are built.
