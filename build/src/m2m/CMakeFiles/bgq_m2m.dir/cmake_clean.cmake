file(REMOVE_RECURSE
  "CMakeFiles/bgq_m2m.dir/manytomany.cpp.o"
  "CMakeFiles/bgq_m2m.dir/manytomany.cpp.o.d"
  "libbgq_m2m.a"
  "libbgq_m2m.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgq_m2m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
