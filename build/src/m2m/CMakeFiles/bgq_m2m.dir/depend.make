# Empty dependencies file for bgq_m2m.
# This may be replaced when dependencies are built.
