file(REMOVE_RECURSE
  "libbgq_m2m.a"
)
