# CMake generated Testfile for 
# Source directory: /root/repo/src/l2atomic
# Build directory: /root/repo/build/src/l2atomic
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
