# Empty dependencies file for bgq_fft.
# This may be replaced when dependencies are built.
