file(REMOVE_RECURSE
  "libbgq_fft.a"
)
