file(REMOVE_RECURSE
  "CMakeFiles/bgq_fft.dir/fft1d.cpp.o"
  "CMakeFiles/bgq_fft.dir/fft1d.cpp.o.d"
  "CMakeFiles/bgq_fft.dir/pencil3d.cpp.o"
  "CMakeFiles/bgq_fft.dir/pencil3d.cpp.o.d"
  "libbgq_fft.a"
  "libbgq_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgq_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
