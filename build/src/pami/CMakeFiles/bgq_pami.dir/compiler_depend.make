# Empty compiler generated dependencies file for bgq_pami.
# This may be replaced when dependencies are built.
