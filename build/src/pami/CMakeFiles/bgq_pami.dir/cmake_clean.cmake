file(REMOVE_RECURSE
  "CMakeFiles/bgq_pami.dir/comm_thread.cpp.o"
  "CMakeFiles/bgq_pami.dir/comm_thread.cpp.o.d"
  "CMakeFiles/bgq_pami.dir/pami.cpp.o"
  "CMakeFiles/bgq_pami.dir/pami.cpp.o.d"
  "libbgq_pami.a"
  "libbgq_pami.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgq_pami.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
