file(REMOVE_RECURSE
  "libbgq_pami.a"
)
