file(REMOVE_RECURSE
  "libbgq_alloc.a"
)
