file(REMOVE_RECURSE
  "CMakeFiles/bgq_alloc.dir/arena_allocator.cpp.o"
  "CMakeFiles/bgq_alloc.dir/arena_allocator.cpp.o.d"
  "CMakeFiles/bgq_alloc.dir/pool_allocator.cpp.o"
  "CMakeFiles/bgq_alloc.dir/pool_allocator.cpp.o.d"
  "libbgq_alloc.a"
  "libbgq_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgq_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
