# Empty dependencies file for bgq_alloc.
# This may be replaced when dependencies are built.
