# Empty dependencies file for bgq_topology.
# This may be replaced when dependencies are built.
