file(REMOVE_RECURSE
  "libbgq_topology.a"
)
