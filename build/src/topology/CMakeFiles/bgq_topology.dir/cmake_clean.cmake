file(REMOVE_RECURSE
  "CMakeFiles/bgq_topology.dir/placement.cpp.o"
  "CMakeFiles/bgq_topology.dir/placement.cpp.o.d"
  "CMakeFiles/bgq_topology.dir/torus.cpp.o"
  "CMakeFiles/bgq_topology.dir/torus.cpp.o.d"
  "libbgq_topology.a"
  "libbgq_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgq_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
