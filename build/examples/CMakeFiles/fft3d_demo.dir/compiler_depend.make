# Empty compiler generated dependencies file for fft3d_demo.
# This may be replaced when dependencies are built.
