# Empty dependencies file for md_minicluster.
# This may be replaced when dependencies are built.
