file(REMOVE_RECURSE
  "CMakeFiles/md_minicluster.dir/md_minicluster.cpp.o"
  "CMakeFiles/md_minicluster.dir/md_minicluster.cpp.o.d"
  "md_minicluster"
  "md_minicluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_minicluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
