# Empty dependencies file for test_m2m.
# This may be replaced when dependencies are built.
