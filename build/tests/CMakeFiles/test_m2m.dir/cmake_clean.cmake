file(REMOVE_RECURSE
  "CMakeFiles/test_m2m.dir/test_m2m.cpp.o"
  "CMakeFiles/test_m2m.dir/test_m2m.cpp.o.d"
  "test_m2m"
  "test_m2m.pdb"
  "test_m2m[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_m2m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
