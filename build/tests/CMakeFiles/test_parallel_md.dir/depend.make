# Empty dependencies file for test_parallel_md.
# This may be replaced when dependencies are built.
