file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_md.dir/test_parallel_md.cpp.o"
  "CMakeFiles/test_parallel_md.dir/test_parallel_md.cpp.o.d"
  "test_parallel_md"
  "test_parallel_md.pdb"
  "test_parallel_md[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_md.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
