file(REMOVE_RECURSE
  "CMakeFiles/test_l2atomic.dir/test_l2atomic.cpp.o"
  "CMakeFiles/test_l2atomic.dir/test_l2atomic.cpp.o.d"
  "test_l2atomic"
  "test_l2atomic.pdb"
  "test_l2atomic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_l2atomic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
