# Empty dependencies file for test_l2atomic.
# This may be replaced when dependencies are built.
