# Empty dependencies file for test_converse.
# This may be replaced when dependencies are built.
