file(REMOVE_RECURSE
  "CMakeFiles/test_converse.dir/test_converse.cpp.o"
  "CMakeFiles/test_converse.dir/test_converse.cpp.o.d"
  "test_converse"
  "test_converse.pdb"
  "test_converse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_converse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
