file(REMOVE_RECURSE
  "CMakeFiles/test_pami.dir/test_pami.cpp.o"
  "CMakeFiles/test_pami.dir/test_pami.cpp.o.d"
  "test_pami"
  "test_pami.pdb"
  "test_pami[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pami.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
