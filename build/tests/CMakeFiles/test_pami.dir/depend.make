# Empty dependencies file for test_pami.
# This may be replaced when dependencies are built.
