# Empty compiler generated dependencies file for test_sim_model.
# This may be replaced when dependencies are built.
