# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_l2atomic[1]_include.cmake")
include("/root/repo/build/tests/test_queue[1]_include.cmake")
include("/root/repo/build/tests/test_alloc[1]_include.cmake")
include("/root/repo/build/tests/test_wakeup[1]_include.cmake")
include("/root/repo/build/tests/test_topology[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_pami[1]_include.cmake")
include("/root/repo/build/tests/test_converse[1]_include.cmake")
include("/root/repo/build/tests/test_m2m[1]_include.cmake")
include("/root/repo/build/tests/test_fft[1]_include.cmake")
include("/root/repo/build/tests/test_md[1]_include.cmake")
include("/root/repo/build/tests/test_parallel_md[1]_include.cmake")
include("/root/repo/build/tests/test_charm[1]_include.cmake")
include("/root/repo/build/tests/test_sim_model[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_stress[1]_include.cmake")
include("/root/repo/build/tests/test_more[1]_include.cmake")
