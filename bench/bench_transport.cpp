// Per-backend transport overhead comparison (Task Bench methodology:
// identical communication pattern, different substrate — the measured
// delta *is* the substrate's per-message cost).
//
// For each backend the same 2-rank Converse ping-pong runs with PE 0 and
// PE 1 in different OS processes (fork; see transport_pingpong.hpp), so
// a message traverses the full stack: scheduler -> PAMI -> fabric ->
// transport hop -> remote fabric -> remote scheduler, and back.  The
// in-process run is the baseline: its "hop" is the classic in-memory
// handoff, so   overhead_x = backend_us / inproc_us   isolates what the
// byte-moving discipline itself costs on top of the runtime software
// stack the paper optimizes.
//
// Emits bgq-bench-v1 JSON: transport.<kind>.us.<bytes>, the per-backend
// injects/polls counters, and the overhead ratios vs inproc.
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/table.hpp"
#include "transport_pingpong.hpp"

using namespace bgq;
using bench_transport::PingPongResult;
using bench_transport::run_pingpong_ranked;
using bench_transport::with_ranks;

namespace {

constexpr std::size_t kSizes[] = {16, 512, 4096, 16384};

struct BackendRow {
  transport::Kind kind;
  bool ok = false;
  PingPongResult at[std::size(kSizes)];
};

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport json = bench::parse_args(argc, argv, "bench_transport");
  int rounds = 200;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--rounds=", 9) == 0) {
      rounds = std::atoi(argv[i] + 9);
    }
  }

  std::printf("== transport backends: per-message overhead "
              "(2 ranks, ping-pong, %d rounds) ==\n", rounds);
  std::printf("inproc = classic single-process fabric (baseline); shm and "
              "socket cross real OS processes\n\n");

  BackendRow rows[] = {{transport::Kind::kInProc},
                       {transport::Kind::kShm},
                       {transport::Kind::kSocket}};
  for (BackendRow& row : rows) {
    const char* name = transport::kind_name(row.kind);
    row.ok = with_ranks(row.kind, name, [&](auto make_config) {
      for (std::size_t s = 0; s < std::size(kSizes); ++s) {
        const PingPongResult r = run_pingpong_ranked(
            make_config(static_cast<int>(s)), kSizes[s], rounds);
        row.at[s] = r;
      }
    });
    if (!row.ok) {
      std::fprintf(stderr, "bench_transport: %s sweep failed\n", name);
      return 1;
    }
  }

  TextTable table({"bytes", "inproc_us", "shm_us", "socket_us",
                   "shm_x", "socket_x"});
  for (std::size_t s = 0; s < std::size(kSizes); ++s) {
    const double base = rows[0].at[s].one_way_us;
    const double shm = rows[1].at[s].one_way_us;
    const double sock = rows[2].at[s].one_way_us;
    table.row(kSizes[s], base, shm, sock,
              base > 0 ? shm / base : 0.0, base > 0 ? sock / base : 0.0);
    const std::string sz = std::to_string(kSizes[s]);
    json.add("transport.inproc.us." + sz, base);
    json.add("transport.shm.us." + sz, shm);
    json.add("transport.socket.us." + sz, sock);
    if (base > 0) {
      json.add("transport.shm.overhead_x." + sz, shm / base);
      json.add("transport.socket.overhead_x." + sz, sock / base);
    }
  }
  table.print();

  // Counters from the largest-size run: the remote backends must have
  // actually moved every message over the transport (injects > 0), and
  // the inproc baseline must not have touched it at all.
  const std::size_t last = std::size(kSizes) - 1;
  json.add("transport.inproc.injects", rows[0].at[last].injects);
  json.add("transport.shm.injects", rows[1].at[last].injects);
  json.add("transport.shm.polls", rows[1].at[last].polls);
  json.add("transport.shm.ring_full", rows[1].at[last].ring_full);
  json.add("transport.socket.injects", rows[2].at[last].injects);
  json.add("transport.socket.polls", rows[2].at[last].polls);

  std::printf("\nper-backend counters (rank 0, %zu B run): "
              "inproc injects=%llu, shm injects=%llu polls=%llu, "
              "socket injects=%llu polls=%llu\n",
              kSizes[last],
              static_cast<unsigned long long>(rows[0].at[last].injects),
              static_cast<unsigned long long>(rows[1].at[last].injects),
              static_cast<unsigned long long>(rows[1].at[last].polls),
              static_cast<unsigned long long>(rows[2].at[last].injects),
              static_cast<unsigned long long>(rows[2].at[last].polls));

  return json.write();
}
