// Figures 3, 9 and 10: mini-NAMD time profiles (functional runtime).
//
// Fig. 9 — CPU utilization with and without communication threads.
// Fig. 10 / Fig. 3 — the PME step with standard point-to-point messages
// vs the CmiDirectManytomany persistent burst (the paper counts nine m2m
// timesteps vs seven standard ones in a 15 ms window; the m2m PME region
// is visibly shorter and the per-thread message count drops from 36
// small messages per FFT phase to one burst).
//
// This bench runs the real parallel mini-NAMD on 4 in-process PEs with
// phase tracing and reports: step rate, busy utilization, the mean PME
// phase length, per-step runtime message counts, and an ASCII profile
// ('=' cutoff work, '#' PME work, ' ' idle) — the in-repo analogue of
// the paper's Projections charts.  On this 1-core host wall-clock gains
// cannot appear (all threads share the core), so the message-count and
// PME-span columns carry the Fig. 10 comparison.
#include <atomic>
#include <cstdio>

#include "bench_json.hpp"
#include "common/table.hpp"
#include "common/timing.hpp"
#include "converse/machine.hpp"
#include "m2m/manytomany.hpp"
#include "md/parallel_md.hpp"
#include "trace/trace.hpp"

using namespace bgq;

namespace {

struct ProfileResult {
  double steps_per_s = 0;
  double utilization = 0;
  double pme_share = 0;       ///< PME fraction of busy time
  double pme_span_ms = 0;     ///< mean PME phase duration
  double msgs_per_step = 0;   ///< runtime messages per step
  std::string profile;
};

ProfileResult run_profile(cvs::Mode mode, fft::Transport transport,
                          unsigned steps) {
  cvs::MachineConfig cfg;
  cfg.nodes = 2;
  cfg.mode = mode;
  cfg.workers_per_process = 2;
  cfg.comm_threads = 1;
  cfg.trace_events = true;
  cfg.trace_ring_events = 1 << 17;  // phases + per-message handler events
  cvs::Machine machine(cfg);
  m2m::Coordinator coord(machine);

  md::BuildOptions bo;
  bo.box = 20.0;
  bo.seed = 7;
  auto sys = md::build_system(bo);

  md::MdConfig mdcfg;
  mdcfg.cutoff = 8.0;
  mdcfg.switch_dist = 7.0;
  mdcfg.beta = 0.4;
  mdcfg.pme_grid = 16;
  mdcfg.pme_every = 1;  // emphasize the PME phase, as in Fig. 10
  mdcfg.dt = 0.2;
  mdcfg.transport = transport;
  md::ParallelMd sim(machine, &coord, std::move(sys), mdcfg);

  std::atomic<std::uint64_t> t_begin{0}, t_end{0};
  std::atomic<std::uint64_t> msgs0{0};
  std::atomic<int> done{0};
  machine.run([&](cvs::Pe& pe) {
    sim.run_steps(pe, 2);  // warmup
    pe.barrier();
    if (pe.rank() == 0) {
      t_begin.store(now_ns());
      msgs0.store(machine.metrics().total("pe.msgs.sent"));
    }
    sim.run_steps(pe, steps);
    pe.barrier();
    if (pe.rank() == 0) t_end.store(now_ns());
    if (done.fetch_add(1) + 1 == 4) pe.exit_all();
  });

  ProfileResult out;
  const double wall_ns =
      static_cast<double>(t_end.load() - t_begin.load());
  out.steps_per_s = steps / (wall_ns * 1e-9);
  out.msgs_per_step =
      static_cast<double>(machine.metrics().total("pe.msgs.sent") -
                          msgs0.load()) /
      steps;

  // Phase spans come back from the per-PE trace rings (ParallelMd emits
  // kPhaseBegin/kPhaseEnd; arg = md::kPhaseCutoff / md::kPhasePme) and
  // are binned by the post-mortem analyzer, windowed to the measured
  // steps so warmup stays out of the profile.
  const auto& flat = machine.trace_session().collect();
  if (flat.total_dropped() != 0) {
    std::fprintf(stderr, "warning: %llu trace events dropped "
                 "(raise trace_ring_events)\n",
                 static_cast<unsigned long long>(flat.total_dropped()));
  }
  constexpr unsigned kBuckets = 64;
  const trace::Analysis an =
      trace::analyze(flat, kBuckets, t_begin.load(), t_end.load());
  const auto& tp = an.profile;
  auto stat = [&](std::uint32_t arg) {
    const auto it = tp.phase_stats.find(arg);
    return it != tp.phase_stats.end() ? it->second
                                      : trace::TimeProfile::PhaseStat{};
  };
  const auto cut = stat(md::kPhaseCutoff);
  const auto pme = stat(md::kPhasePme);
  const double total_busy = static_cast<double>(cut.total_ns + pme.total_ns);
  out.utilization = total_busy / (wall_ns * machine.pe_count());
  out.pme_share =
      total_busy > 0 ? static_cast<double>(pme.total_ns) / total_busy : 0;
  out.pme_span_ms =
      pme.spans != 0
          ? static_cast<double>(pme.total_ns) / pme.spans * 1e-6
          : 0.0;

  // Machine-wide phase coverage per bin (tracks-in-phase), averaged over
  // the PEs, rendered as the paper's cutoff/PME/idle strip.
  auto coverage = [&](std::uint32_t arg, unsigned b) {
    const auto it = tp.phases.find(arg);
    return it != tp.phases.end() ? it->second[b] : 0.0;
  };
  out.profile.resize(tp.bins);
  for (unsigned b = 0; b < tp.bins; ++b) {
    const double c = coverage(md::kPhaseCutoff, b) / machine.pe_count();
    const double p = coverage(md::kPhasePme, b) / machine.pe_count();
    out.profile[b] = (c + p) < 0.08 ? ' ' : (p > c ? '#' : '=');
  }
  return out;
}

void print_profile(const char* label, const ProfileResult& r) {
  std::printf("%-26s %6.1f steps/s  util %5.1f%%  PME share %4.0f%%  "
              "PME span %.2f ms  msgs/step %.0f\n",
              label, r.steps_per_s, 100 * r.utilization,
              100 * r.pme_share, r.pme_span_ms, r.msgs_per_step);
  std::printf("  |%s|\n", r.profile.c_str());
}

}  // namespace

void report(bench::JsonReport& json, const char* prefix,
            const ProfileResult& r) {
  const std::string p(prefix);
  json.add(p + ".steps_per_s", r.steps_per_s);
  json.add(p + ".utilization", r.utilization);
  json.add(p + ".pme_share", r.pme_share);
  json.add(p + ".pme_span_ms", r.pme_span_ms);
  json.add(p + ".msgs_per_step", r.msgs_per_step);
}

int main(int argc, char** argv) {
  bench::JsonReport json =
      bench::parse_args(argc, argv, "bench_namd_timeprofile");
  constexpr unsigned kSteps = 24;

  std::printf("== Figure 9: utilization with vs without comm threads ==\n");
  std::printf("paper: comm threads raise utilization (more step peaks in "
              "the same window); '=' cutoff work, '#' PME, ' ' idle\n\n");
  const auto no_ct =
      run_profile(cvs::Mode::kSmp, fft::Transport::kP2P, kSteps);
  const auto with_ct = run_profile(cvs::Mode::kSmpCommThreads,
                                   fft::Transport::kP2P, kSteps);
  print_profile("SMP (no comm threads)", no_ct);
  print_profile("SMP + comm threads", with_ct);

  std::printf("\n== Figures 3/10: standard PME (p2p) vs many-to-many "
              "PME ==\n");
  std::printf("paper: shorter PME region and far fewer per-thread "
              "messages with m2m (36 p2p messages -> 1 burst per "
              "phase)\n\n");
  const auto p2p = run_profile(cvs::Mode::kSmpCommThreads,
                               fft::Transport::kP2P, kSteps);
  const auto m2m = run_profile(cvs::Mode::kSmpCommThreads,
                               fft::Transport::kM2M, kSteps);
  print_profile("standard PME (p2p)", p2p);
  print_profile("optimized PME (m2m)", m2m);
  std::printf("\nm2m vs p2p: %.1fx fewer runtime messages per step, "
              "PME span ratio %.2f (paper window: 9 m2m steps vs 7)\n",
              p2p.msgs_per_step / std::max(1.0, m2m.msgs_per_step),
              m2m.pme_span_ms / p2p.pme_span_ms);

  report(json, "fig9.smp", no_ct);
  report(json, "fig9.smp_ct", with_ct);
  report(json, "fig10.p2p", p2p);
  report(json, "fig10.m2m", m2m);
  return json.write();
}
