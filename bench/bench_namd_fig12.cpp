// Figure 12: STMV 20M-atom scaling with PME every 4 steps.
//
// The paper: the 216x1080x864 PME grid limits standard-PME scaling; the
// CmiDirectManytomany PME with eight comm threads scales to 16,384 nodes
// at 5.8 ms/step (best published for this system at the time).
#include <cstdio>
#include <string>

#include "bench_json.hpp"
#include "common/table.hpp"
#include "model/namd_model.hpp"

using namespace bgq::model;
namespace bench = bgq::bench;

int main(int argc, char** argv) {
  bench::JsonReport json = bench::parse_args(argc, argv, "bench_namd_fig12");
  std::printf("== Figure 12 (simulated): STMV 20M ms/step, PME every 4 "
              "==\n");
  std::printf("paper anchor: 5.8 ms/step at 16,384 nodes with m2m PME; "
              "standard PME stops scaling earlier\n\n");

  bgq::TextTable tbl({"nodes", "std_PME_ms", "m2m_PME_ms", "m2m_gain"});
  for (std::size_t nodes : {1024, 2048, 4096, 8192, 16384}) {
    NamdRun std_pme;
    std_pme.system = NamdSystem::stmv20m();
    std_pme.nodes = nodes;
    std_pme.workers = 32;
    std_pme.runtime.mode = Mode::kSmpCommThreads;
    std_pme.runtime.comm_threads = 8;
    std_pme.m2m_pme = false;

    NamdRun m2m = std_pme;
    m2m.m2m_pme = true;

    const double a = simulate_namd_step(std_pme).total_us * 1e-3;
    const double b = simulate_namd_step(m2m).total_us * 1e-3;
    tbl.row(nodes, a, b, a / b);
    const std::string n = std::to_string(nodes);
    json.add("fig12.std_pme_ms." + n, a);
    json.add("fig12.m2m_pme_ms." + n, b);
  }
  tbl.print();
  return json.write();
}
