// Figure 7: ApoA1 step time for three process/thread configurations
// across node counts.
//
// The paper compares (a) 1 process x 64 worker threads, (b) 1 process x
// 32 workers + 8 comm threads, (c) non-SMP (one process per hardware
// thread); compute-bound counts favour all-worker configs, communication-
// bound counts favour dedicated comm threads.
#include <cstdio>
#include <string>

#include "bench_json.hpp"
#include "common/table.hpp"
#include "model/namd_model.hpp"

using namespace bgq::model;
namespace bench = bgq::bench;

int main(int argc, char** argv) {
  bench::JsonReport json = bench::parse_args(argc, argv, "bench_namd_fig7");
  std::printf("== Figure 7 (simulated): ApoA1 us/step, PME every 4 ==\n");
  std::printf("paper shape: 64 threads/node wins while compute-bound; "
              "dedicated comm threads win once communication-bound\n\n");

  bgq::TextTable tbl({"nodes", "64wk_us", "32wk+8ct_us", "nonSMP64_us",
                      "best"});
  for (std::size_t nodes : {32, 64, 128, 256, 512, 1024, 2048, 4096}) {
    NamdRun w64;
    w64.nodes = nodes;
    w64.workers = 64;
    w64.runtime.mode = Mode::kSmp;

    NamdRun mixed = w64;
    mixed.workers = 32;
    mixed.runtime.mode = Mode::kSmpCommThreads;
    mixed.runtime.comm_threads = 8;

    NamdRun nonsmp = w64;
    nonsmp.workers = 64;
    nonsmp.runtime.mode = Mode::kNonSmp;

    const double a = simulate_namd_step(w64).total_us;
    const double b = simulate_namd_step(mixed).total_us;
    const double c = simulate_namd_step(nonsmp).total_us;
    const char* best = a <= b && a <= c ? "64wk"
                       : b <= c         ? "32wk+8ct"
                                        : "nonSMP";
    tbl.row(nodes, a, b, c, best);
    const std::string n = std::to_string(nodes);
    json.add("fig7.w64_us." + n, a);
    json.add("fig7.w32_ct8_us." + n, b);
    json.add("fig7.nonsmp_us." + n, c);
  }
  tbl.print();
  std::printf("\npaper anchor: best ApoA1 timestep 683 us on 4096 nodes "
              "(PME every 4 steps)\n");
  return json.write();
}
