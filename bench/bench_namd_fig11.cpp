// Figure 11: ApoA1 scaling comparison, BG/P vs BG/Q, PME every 4 steps.
//
// The paper picks the best configuration per node count on BG/Q (all 64
// threads up to 128 nodes; 32 workers + 8 comm threads from 256 to 1024;
// 16 workers + 8 comm threads at 2048/4096; m2m PME from 128 nodes) and
// reports a best timestep of 683 us at 4096 nodes, with speedups of 2495
// at 1024 and 3981 at 4096 nodes over one core.
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_json.hpp"
#include "common/table.hpp"
#include "model/namd_model.hpp"

using namespace bgq::model;
namespace bench = bgq::bench;

namespace {

double best_bgq(std::size_t nodes, std::string& cfg_name) {
  struct Cfg {
    const char* name;
    unsigned workers;
    Mode mode;
    unsigned ct;
    bool m2m;
  };
  const Cfg cfgs[] = {
      {"64wk", 64, Mode::kSmp, 0, false},
      {"64wk+m2m", 64, Mode::kSmp, 0, true},
      {"32wk+8ct", 32, Mode::kSmpCommThreads, 8, true},
      {"16wk+8ct", 16, Mode::kSmpCommThreads, 8, true},
  };
  double best = 1e18;
  for (const Cfg& c : cfgs) {
    NamdRun run;
    run.nodes = nodes;
    run.workers = c.workers;
    run.runtime.mode = c.mode;
    run.runtime.comm_threads = c.ct;
    run.m2m_pme = c.m2m && nodes >= 128;
    const double t = simulate_namd_step(run).total_us;
    if (t < best) {
      best = t;
      cfg_name = c.name;
    }
  }
  return best;
}

double bgp_time(std::size_t nodes) {
  NamdRun run;
  run.nodes = nodes;
  run.machine = MachineModel::bgp();
  run.workers = 4;
  run.runtime.mode = Mode::kNonSmp;
  return simulate_namd_step(run).total_us;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport json = bench::parse_args(argc, argv, "bench_namd_fig11");
  std::printf("== Figure 11 (simulated): ApoA1 us/step, BG/P vs BG/Q, "
              "PME every 4 ==\n");
  std::printf("paper anchors: BG/Q best 683us at 4096 nodes; speedup "
              "2495 at 1024 nodes, 3981 at 4096 over one core\n\n");

  // One-core reference for speedups: one worker, one node.
  NamdRun one;
  one.nodes = 1;
  one.workers = 1;
  one.runtime.mode = Mode::kNonSmp;
  const double t1 = simulate_namd_step(one).compute_us;  // serial compute

  bgq::TextTable tbl({"nodes", "BG/P_us", "BG/Q_us", "BGQ_cfg",
                      "BGQ_speedup_vs_1core", "P/Q_ratio"});
  for (std::size_t nodes : {128, 256, 512, 1024, 2048, 4096}) {
    std::string cfg;
    const double q = best_bgq(nodes, cfg);
    const double p = bgp_time(nodes);
    tbl.row(nodes, p, q, cfg, t1 / q, p / q);
    const std::string n = std::to_string(nodes);
    json.add("fig11.bgp_us." + n, p);
    json.add("fig11.bgq_us." + n, q);
    json.add("fig11.speedup." + n, t1 / q);
  }
  tbl.print();
  return json.write();
}
