// Ablation for §III-E: the CmiDirectManytomany burst interface vs
// point-to-point Converse messages on the functional runtime — per-burst
// wall time for all-to-all patterns of varying chunk size and the effect
// of comm-thread parallel injection.
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "common/table.hpp"
#include "common/timing.hpp"
#include "converse/machine.hpp"
#include "l2atomic/completion.hpp"
#include "m2m/manytomany.hpp"

using namespace bgq;

namespace {

/// All-to-all over every PE through the m2m engine; returns us/epoch.
double m2m_alltoall_us(cvs::Mode mode, std::size_t chunk_bytes,
                       int epochs) {
  cvs::MachineConfig cfg;
  cfg.nodes = 2;
  cfg.mode = mode;
  cfg.workers_per_process = 2;
  cfg.comm_threads = 1;
  cvs::Machine machine(cfg);
  m2m::Coordinator coord(machine);
  const auto npes = static_cast<cvs::PeRank>(machine.pe_count());

  std::vector<std::vector<std::byte>> send(npes), recv(npes);
  for (cvs::PeRank r = 0; r < npes; ++r) {
    send[r].assign(npes * chunk_bytes, std::byte{1});
    recv[r].assign(npes * chunk_bytes, std::byte{0});
    m2m::Handle& h = coord.create(r, 1, npes, npes);
    h.set_send_base(send[r].data());
    h.set_recv_base(recv[r].data());
    for (cvs::PeRank j = 0; j < npes; ++j) {
      h.set_send(j, j, r, j * chunk_bytes, chunk_bytes);
      h.set_recv(j, j * chunk_bytes, chunk_bytes);
    }
  }

  std::atomic<double> us{0};
  std::atomic<int> done{0};
  machine.run([&](cvs::Pe& pe) {
    m2m::Handle& h = coord.handle(pe.rank(), 1);
    pe.barrier();
    Timer t;
    for (int e = 1; e <= epochs; ++e) {
      h.start();
      while (!h.recv_done(e) || !h.send_done(e)) {
        if (!pe.pump_one()) std::this_thread::yield();
      }
      pe.barrier();
    }
    if (pe.rank() == 0) us.store(t.elapsed_us() / epochs);
    if (done.fetch_add(1) + 1 == static_cast<int>(npes)) pe.exit_all();
  });
  return us.load();
}

/// Same pattern with one Converse message per chunk.
double p2p_alltoall_us(cvs::Mode mode, std::size_t chunk_bytes,
                       int epochs) {
  cvs::MachineConfig cfg;
  cfg.nodes = 2;
  cfg.mode = mode;
  cfg.workers_per_process = 2;
  cfg.comm_threads = 1;
  cvs::Machine machine(cfg);
  const auto npes = static_cast<cvs::PeRank>(machine.pe_count());

  std::vector<std::unique_ptr<l2::CompletionCounter>> got(npes);
  for (auto& g : got) g = std::make_unique<l2::CompletionCounter>();
  const cvs::HandlerId h = machine.register_handler(
      [&](cvs::Pe& pe, cvs::Message* m) {
        pe.free_message(m);
        got[pe.rank()]->complete();
      });

  std::vector<std::byte> chunk(chunk_bytes, std::byte{1});
  std::atomic<double> us{0};
  std::atomic<int> done{0};
  machine.run([&](cvs::Pe& pe) {
    pe.barrier();
    Timer t;
    for (int e = 1; e <= epochs; ++e) {
      for (cvs::PeRank j = 0; j < npes; ++j) {
        pe.send(j, h, chunk.data(), chunk.size());
      }
      while (!got[pe.rank()]->reached(
          static_cast<std::uint64_t>(e) * npes)) {
        if (!pe.pump_one()) std::this_thread::yield();
      }
      pe.barrier();
    }
    if (pe.rank() == 0) us.store(t.elapsed_us() / epochs);
    if (done.fetch_add(1) + 1 == static_cast<int>(npes)) pe.exit_all();
  });
  return us.load();
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport json = bench::parse_args(argc, argv, "bench_m2m");
  std::printf("== Sec III-E ablation: all-to-all burst, p2p vs m2m "
              "(functional, 4 PEs) ==\n");
  std::printf("m2m removes per-message allocation + scheduling; the gap "
              "is largest for small chunks (the paper's 32-byte PME "
              "messages)\n\n");

  constexpr int kEpochs = 50;
  TextTable tbl({"chunk_B", "mode", "p2p_us", "m2m_us", "speedup"});
  for (std::size_t bytes : {32u, 256u, 4096u}) {
    for (cvs::Mode mode :
         {cvs::Mode::kSmp, cvs::Mode::kSmpCommThreads}) {
      const char* mname =
          mode == cvs::Mode::kSmp ? "SMP" : "SMP+ct";
      const double p = p2p_alltoall_us(mode, bytes, kEpochs);
      const double m = m2m_alltoall_us(mode, bytes, kEpochs);
      tbl.row(bytes, mname, p, m, p / m);
      const std::string key = std::string(mode == cvs::Mode::kSmp
                                              ? "smp."
                                              : "smp_ct.") +
                              std::to_string(bytes);
      json.add("m2m.p2p_us." + key, p);
      json.add("m2m.m2m_us." + key, m);
    }
  }
  tbl.print();
  return json.write();
}
