// Shared machine-readable reporting for the bench_* binaries.
//
// Every bench accepts `--json <path>` (or `--json=<path>`): alongside its
// human-readable tables it then writes a flat metric dictionary
//
//   {"schema": "bgq-bench-v1",
//    "bench":  "bench_idlepoll",
//    "metrics": {"l2_paced.active_mops": 123.4, ...}}
//
// so CI can smoke-test numbers without scraping stdout.  Metric names
// follow the registry scheme (lowercase dotted, see src/trace/registry.hpp).
//
// Usage:
//   int main(int argc, char** argv) {
//     bgq::bench::JsonReport json =
//         bgq::bench::parse_args(argc, argv, "bench_foo");
//     ...
//     json.add("pingpong.small.rtt_us", rtt);
//     return json.write();  // no-op (success) when --json was not given
//   }
//
// parse_args() strips the flag from argv so benches built on
// google-benchmark can hand the remaining args to benchmark::Initialize.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "trace/json.hpp"

namespace bgq::bench {

class JsonReport {
 public:
  JsonReport(std::string bench, std::string path)
      : bench_(std::move(bench)), path_(std::move(path)) {}

  /// True when --json was given (metrics will actually be written).
  bool enabled() const noexcept { return !path_.empty(); }

  void add(std::string name, double v) {
    metrics_.push_back({std::move(name), v, 0, false});
  }
  void add(std::string name, std::uint64_t v) {
    metrics_.push_back({std::move(name), 0.0, v, true});
  }
  void add(std::string name, int v) {
    add(std::move(name), static_cast<std::uint64_t>(v));
  }

  /// Write the report (if --json was given).  Returns a main()-ready exit
  /// code: 0 on success or when disabled, 1 when the file can't be opened.
  int write() const {
    if (!enabled()) return 0;
    std::ofstream os(path_);
    if (!os) {
      std::fprintf(stderr, "%s: cannot open --json path %s\n",
                   bench_.c_str(), path_.c_str());
      return 1;
    }
    trace::JsonWriter w(os);
    w.begin_object();
    w.kv("schema", "bgq-bench-v1");
    w.kv("bench", bench_);
    w.key("metrics");
    w.begin_object();
    for (const auto& m : metrics_) {
      if (m.is_int) {
        w.kv(m.name, m.uval);
      } else {
        w.kv(m.name, m.dval);
      }
    }
    w.end_object();
    w.end_object();
    os << "\n";
    return os.good() ? 0 : 1;
  }

 private:
  struct Metric {
    std::string name;
    double dval;
    std::uint64_t uval;
    bool is_int;
  };

  std::string bench_;
  std::string path_;
  std::vector<Metric> metrics_;
};

/// Extract `--json <path>` / `--json=<path>` from argv (removing it, so
/// google-benchmark's own flag parsing never sees it) and build a report.
inline JsonReport parse_args(int& argc, char** argv, std::string bench) {
  std::string path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      path = argv[++i];
      continue;
    }
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      path = argv[i] + 7;
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  argv[argc] = nullptr;
  return JsonReport(std::move(bench), std::move(path));
}

}  // namespace bgq::bench
