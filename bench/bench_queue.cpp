// Ablation for §III-A: the lockless L2 atomic queue vs the mutex-guarded
// baseline vs the MPI-ordered variant whose overflow handling PAMI must
// use.  The paper's argument: Charm++'s lack of ordering requirements
// permits the cheapest queue; this bench quantifies each design point.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "common/table.hpp"
#include "common/timing.hpp"
#include "queue/l2_atomic_queue.hpp"
#include "queue/mutex_queue.hpp"
#include "queue/ordered_l2_queue.hpp"

using namespace bgq;

namespace {

/// N producers flood one consumer with `total` messages; returns ns/msg.
template <typename Q>
double mpsc_ns_per_msg(unsigned producers, std::size_t total) {
  Q q(1024);
  std::atomic<bool> start{false};
  std::atomic<std::size_t> sent{0};
  std::vector<std::thread> ts;
  for (unsigned p = 0; p < producers; ++p) {
    ts.emplace_back([&] {
      while (!start.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      while (true) {
        const std::size_t n = sent.fetch_add(1);
        if (n >= total) return;
        q.enqueue(reinterpret_cast<std::uint64_t*>(n + 1));
      }
    });
  }
  Timer t;
  start.store(true, std::memory_order_release);
  std::size_t got = 0;
  while (got < total) {
    if (q.try_dequeue() != nullptr) {
      ++got;
    } else {
      std::this_thread::yield();
    }
  }
  const double ns = static_cast<double>(t.elapsed_ns()) /
                    static_cast<double>(total);
  for (auto& th : ts) th.join();
  return ns;
}

// MutexQueue has no capacity constructor; adapt.
struct MutexQ : queue::MutexQueue<std::uint64_t*> {
  explicit MutexQ(std::size_t) {}
};

void run_comparison(bench::JsonReport& json) {
  std::printf("== Sec III-A ablation: MPSC queue cost (ns/message) ==\n");
  std::printf("paper: L2 lockless < ordered (PAMI/MPI semantics) < "
              "mutex under contention\n\n");
  constexpr std::size_t kTotal = 200000;
  TextTable tbl({"producers", "l2_lockless", "ordered_l2", "mutex"});
  for (unsigned p : {1u, 2u, 4u, 8u}) {
    const double l2 =
        mpsc_ns_per_msg<queue::L2AtomicQueue<std::uint64_t*>>(p, kTotal);
    const double ord =
        mpsc_ns_per_msg<queue::OrderedL2Queue<std::uint64_t*>>(p, kTotal);
    const double mtx = mpsc_ns_per_msg<MutexQ>(p, kTotal);
    tbl.row(p, l2, ord, mtx);
    const std::string np = std::to_string(p);
    json.add("mpsc.l2_lockless_ns." + np, l2);
    json.add("mpsc.ordered_l2_ns." + np, ord);
    json.add("mpsc.mutex_ns." + np, mtx);
  }
  tbl.print();
  std::printf("\n");
}

void BM_L2QueueUncontended(benchmark::State& state) {
  queue::L2AtomicQueue<std::uint64_t*> q(1024);
  std::uint64_t x = 1;
  for (auto _ : state) {
    q.enqueue(&x);
    benchmark::DoNotOptimize(q.try_dequeue());
  }
}
BENCHMARK(BM_L2QueueUncontended);

void BM_OrderedQueueUncontended(benchmark::State& state) {
  queue::OrderedL2Queue<std::uint64_t*> q(1024);
  std::uint64_t x = 1;
  for (auto _ : state) {
    q.enqueue(&x);
    benchmark::DoNotOptimize(q.try_dequeue());
  }
}
BENCHMARK(BM_OrderedQueueUncontended);

void BM_MutexQueueUncontended(benchmark::State& state) {
  queue::MutexQueue<std::uint64_t*> q;
  std::uint64_t x = 1;
  for (auto _ : state) {
    q.enqueue(&x);
    benchmark::DoNotOptimize(q.try_dequeue());
  }
}
BENCHMARK(BM_MutexQueueUncontended);

void BM_L2QueueOverflowPressure(benchmark::State& state) {
  // Tiny ring forces the overflow path on a fraction of enqueues.
  queue::L2AtomicQueue<std::uint64_t*> q(4);
  std::uint64_t x = 1;
  for (auto _ : state) {
    for (int i = 0; i < 8; ++i) q.enqueue(&x);
    while (q.try_dequeue() != nullptr) {
    }
  }
}
BENCHMARK(BM_L2QueueOverflowPressure);

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport json = bench::parse_args(argc, argv, "bench_queue");
  run_comparison(json);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return json.write();
}
