// Figure 6: malloc/free performance with many threads, lockless pool
// allocator vs GNU-arena-style allocator.
//
// The paper's benchmark: all 64 threads on a node simultaneously allocate
// 100 buffers and free all 100, for a sweep of buffer sizes; the lockless
// pool removes the arena-mutex contention on the free path.  This host
// has 1 core, so we run the paper's thread count (the contention pattern
// is preserved through the futex path) and also a google-benchmark single-
// thread section for the uncontended costs.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "alloc/arena_allocator.hpp"
#include "alloc/pool_allocator.hpp"
#include "bench_json.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/timing.hpp"

using namespace bgq;

namespace {

/// Paper's kernel, iterated so thread startup amortizes on this 1-core
/// host: every thread repeatedly allocates 100 buffers; the frees are
/// issued by the *next* thread (the paper's contended pattern — message
/// receivers free the sender's buffers).  Returns ns per alloc+free pair.
double episode_ns_per_op(alloc::IAllocator& a, unsigned threads,
                         std::size_t bytes, int inner) {
  std::vector<std::vector<void*>> handoff(threads,
                                          std::vector<void*>(100));
  std::atomic<int> alloc_done{0}, free_done{0};
  std::vector<std::thread> ts;
  Timer t;
  for (unsigned tid = 0; tid < threads; ++tid) {
    ts.emplace_back([&, tid] {
      for (int it = 0; it < inner; ++it) {
        for (auto& b : handoff[tid]) b = a.allocate(tid, bytes);
        // Round barrier, then each thread frees a distinct victim's
        // buffers (cross-thread frees, no two threads share a victim).
        alloc_done.fetch_add(1);
        while (alloc_done.load() < static_cast<int>(threads) * (it + 1)) {
          std::this_thread::yield();
        }
        const unsigned victim = (tid + 1) % threads;
        for (auto& b : handoff[victim]) a.deallocate(tid, b);
        // Second barrier: nobody re-allocates into a slot that a peer is
        // still draining.
        free_done.fetch_add(1);
        while (free_done.load() < static_cast<int>(threads) * (it + 1)) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& th : ts) th.join();
  const double ops = 100.0 * threads * inner;
  return static_cast<double>(t.elapsed_ns()) / ops;
}

void run_figure6(bench::JsonReport& json) {
  std::printf("== Figure 6: contended malloc + cross-thread free "
              "(ns per alloc+free pair) ==\n");
  std::printf("paper: the lockless pool removes arena-mutex contention "
              "on the free path (multi-x on 64 BG/Q threads); on this "
              "1-core host residual contention shows as arena futex "
              "waits\n\n");
  constexpr unsigned kThreads = 8;
  constexpr int kInner = 100;

  TextTable tbl({"bytes", "arena_ns", "pool_ns", "speedup",
                 "arena_waits"});
  for (std::size_t bytes : {64u, 256u, 1024u, 4096u, 16384u}) {
    alloc::ArenaAllocator arena(kThreads);
    alloc::PoolAllocator pool(kThreads);
    episode_ns_per_op(pool, kThreads, bytes, 4);   // warm the pools
    episode_ns_per_op(arena, kThreads, bytes, 4);  // warm the free lists
    const double ta = episode_ns_per_op(arena, kThreads, bytes, kInner);
    const double tp = episode_ns_per_op(pool, kThreads, bytes, kInner);
    tbl.row(bytes, ta, tp, ta / tp, arena.contention_events());
    const std::string sz = std::to_string(bytes);
    json.add("fig6.arena_ns." + sz, ta);
    json.add("fig6.pool_ns." + sz, tp);
    json.add("fig6.arena_waits." + sz, arena.contention_events());
  }
  tbl.print();
  std::printf("\n");
}

// ---- single-thread micro costs (google-benchmark) -------------------------

void BM_ArenaAllocFree(benchmark::State& state) {
  alloc::ArenaAllocator a(1);
  const auto bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    void* p = a.allocate(0, bytes);
    benchmark::DoNotOptimize(p);
    a.deallocate(0, p);
  }
}
BENCHMARK(BM_ArenaAllocFree)->Arg(256)->Arg(4096);

void BM_PoolAllocFree(benchmark::State& state) {
  alloc::PoolAllocator a(1);
  const auto bytes = static_cast<std::size_t>(state.range(0));
  // Prime the pool.
  a.deallocate(0, a.allocate(0, bytes));
  for (auto _ : state) {
    void* p = a.allocate(0, bytes);
    benchmark::DoNotOptimize(p);
    a.deallocate(0, p);
  }
}
BENCHMARK(BM_PoolAllocFree)->Arg(256)->Arg(4096);

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport json = bench::parse_args(argc, argv, "bench_alloc");
  run_figure6(json);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return json.write();
}
