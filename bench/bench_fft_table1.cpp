// Table I: forward+backward complex-to-complex 3-D FFT time (us) with
// pencil decomposition — Charm++ point-to-point messages vs the
// CmiDirectManytomany interface, for 128^3 / 64^3 / 32^3 grids on
// 64..1024 nodes.
//
// The machine-scale rows come from the calibrated simulator (src/model);
// a functional section then runs the *real* distributed FFT (src/fft)
// over both transports at in-process scale, demonstrating the same
// ordering with genuinely executed code.
#include <atomic>
#include <cstdio>
#include <string>

#include "bench_json.hpp"
#include "common/table.hpp"
#include "common/timing.hpp"
#include "converse/machine.hpp"
#include "fft/pencil3d.hpp"
#include "m2m/manytomany.hpp"
#include "model/fft_model.hpp"

using namespace bgq;

namespace {

struct PaperCell {
  int p2p, m2m;
};

// Table I as published (microseconds).
const PaperCell kPaper128[5] = {{3030, 1826}, {2019, 1426}, {1930, 944},
                                {1785, 677},  {1560, 583}};
const PaperCell kPaper64[5] = {{787, 507}, {731, 459}, {625, 268},
                               {625, 229}, {621, 208}};
const PaperCell kPaper32[5] = {{457, 142}, {398, 127}, {379, 110},
                               {376, 93},  {377, 74}};

void simulated_table(bench::JsonReport& json) {
  std::printf("== Table I (simulated): fwd+bwd c2c 3D FFT step (us) ==\n");
  std::printf("paper values in parentheses; target is the shape — m2m "
              "wins everywhere, more at small grids / large counts\n\n");

  const std::size_t node_counts[5] = {64, 128, 256, 512, 1024};
  TextTable tbl({"nodes", "128^3 p2p", "(paper)", "128^3 m2m", "(paper)",
                 "64^3 p2p", "64^3 m2m", "32^3 p2p", "32^3 m2m"});

  for (int row = 0; row < 5; ++row) {
    const std::size_t nodes = node_counts[row];
    auto run = [&](std::size_t n, bool m2m) {
      model::FftRun r;
      r.n = n;
      r.nodes = nodes;
      r.use_m2m = m2m;
      r.workers = 16;
      r.runtime.mode =
          m2m ? model::Mode::kSmpCommThreads : model::Mode::kSmp;
      r.runtime.comm_threads = 8;
      return simulate_fft(r).step_us;
    };
    char paper_p2p[32], paper_m2m[32];
    std::snprintf(paper_p2p, sizeof(paper_p2p), "(%d)",
                  kPaper128[row].p2p);
    std::snprintf(paper_m2m, sizeof(paper_m2m), "(%d)",
                  kPaper128[row].m2m);
    tbl.row(nodes, run(128, false), paper_p2p, run(128, true), paper_m2m,
            run(64, false), run(64, true), run(32, false), run(32, true));
  }
  tbl.print();

  std::printf("\npaper 64^3:  p2p {787 731 625 625 621}  m2m {507 459 "
              "268 229 208}\n");
  std::printf("paper 32^3:  p2p {457 398 379 376 377}  m2m {142 127 110 "
              "93 74}\n\n");

  // Speedup summary (the paper's headline ratios).
  TextTable sp({"case", "sim p2p/m2m", "paper p2p/m2m"});
  auto ratio = [&](std::size_t n, std::size_t nodes) {
    model::FftRun a;
    a.n = n;
    a.nodes = nodes;
    a.use_m2m = false;
    a.workers = 16;
    a.runtime.mode = model::Mode::kSmp;
    model::FftRun b = a;
    b.use_m2m = true;
    b.runtime.mode = model::Mode::kSmpCommThreads;
    b.runtime.comm_threads = 8;
    return simulate_fft(a).step_us / simulate_fft(b).step_us;
  };
  const double r128_64 = ratio(128, 64);
  const double r32_64 = ratio(32, 64);
  const double r32_1024 = ratio(32, 1024);
  sp.row("128^3 on 64", r128_64, 3030.0 / 1826.0);
  sp.row("32^3 on 64", r32_64, 457.0 / 142.0);
  sp.row("32^3 on 1024", r32_1024, 377.0 / 74.0);
  sp.print();
  json.add("table1.ratio.128_64", r128_64);
  json.add("table1.ratio.32_64", r32_64);
  json.add("table1.ratio.32_1024", r32_1024);
}

double functional_roundtrip_us(fft::Transport transport, std::size_t n,
                               int iters) {
  cvs::MachineConfig cfg;
  cfg.nodes = 2;
  cfg.mode = cvs::Mode::kSmp;
  cfg.workers_per_process = 2;
  cvs::Machine machine(cfg);
  m2m::Coordinator coord(machine);
  fft::Pencil3DFFT f3d(machine, n, transport, &coord);

  std::atomic<double> us{0};
  std::atomic<int> done{0};
  machine.run([&](cvs::Pe& pe) {
    f3d.roundtrip(pe);  // warmup
    Timer t;
    for (int i = 0; i < iters; ++i) f3d.roundtrip(pe);
    if (pe.rank() == 0) us.store(t.elapsed_us() / iters);
    if (done.fetch_add(1) + 1 == 4) pe.exit_all();
  });
  return us.load();
}

void functional_section(bench::JsonReport& json) {
  std::printf("\n== Functional cross-check: real Pencil3DFFT, 4 PEs ==\n");
  std::printf("(in-process scale; demonstrates the executed code paths "
              "behind the simulated rows)\n\n");
  TextTable tbl({"grid", "p2p_us", "m2m_us"});
  for (std::size_t n : {8u, 16u, 32u}) {
    const double p = functional_roundtrip_us(fft::Transport::kP2P, n, 5);
    const double m = functional_roundtrip_us(fft::Transport::kM2M, n, 5);
    tbl.row(n, p, m);
    const std::string g = std::to_string(n);
    json.add("functional.p2p_us." + g, p);
    json.add("functional.m2m_us." + g, m);
  }
  tbl.print();
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport json = bench::parse_args(argc, argv, "bench_fft_table1");
  simulated_table(json);
  functional_section(json);
  return json.write();
}
