// §VII future work: topology-aware placement.
//
// "On larger BG/Q configurations we expect topological placement will
//  improve performance."  This bench quantifies it: for the Table-I FFT
// pencil grids, compare the oblivious linear rank order against the
// folded embedding — first by the average torus distance between
// transpose partners, then by feeding the mapping's hop statistics into
// the FFT cost model.
#include <cstdio>
#include <string>

#include "bench_json.hpp"
#include "common/table.hpp"
#include "model/fft_model.hpp"
#include "topology/placement.hpp"
#include "topology/torus.hpp"

using namespace bgq;

int main(int argc, char** argv) {
  bench::JsonReport json = bench::parse_args(argc, argv, "bench_placement");
  std::printf("== Sec VII (future work): topology-aware pencil placement "
              "==\n");
  std::printf("average torus hops between FFT transpose partners, "
              "oblivious linear order vs folded embedding\n\n");

  TextTable tbl({"nodes", "grid", "linear_hops", "folded_hops",
                 "reduction"});
  struct Case {
    std::size_t nodes, g1, g2;
  };
  for (const Case& c : {Case{64, 8, 8}, Case{256, 16, 16},
                        Case{512, 32, 16}, Case{1024, 32, 32},
                        Case{4096, 64, 64}}) {
    topo::Torus t = topo::Torus::bgq_partition(c.nodes);
    const auto lin = topo::neighbor_hops(
        t, topo::map_grid(t, c.g1, c.g2, topo::Placement::kLinear), c.g1,
        c.g2);
    const auto fold = topo::neighbor_hops(
        t, topo::map_grid(t, c.g1, c.g2, topo::Placement::kFolded), c.g1,
        c.g2);
    char grid[32];
    std::snprintf(grid, sizeof(grid), "%zux%zu", c.g1, c.g2);
    tbl.row(c.nodes, grid, lin.overall(), fold.overall(),
            lin.overall() / fold.overall());
    json.add("placement.hop_reduction." + std::to_string(c.nodes),
             lin.overall() / fold.overall());
  }
  tbl.print();

  std::printf("\nhop-weighted FFT model (32^3, m2m) with each mapping's "
              "mean partner distance:\n\n");
  TextTable t2({"nodes", "oblivious_us", "placed_us"});
  for (std::size_t nodes : {256, 1024, 4096}) {
    model::FftRun run;
    run.n = 32;
    run.nodes = nodes;
    run.use_m2m = true;
    run.workers = 16;
    const double base = simulate_fft(run).step_us;
    // The folded mapping shortens partner routes; approximate its effect
    // by the measured hop reduction applied to the per-hop latency term.
    topo::Torus t = topo::Torus::bgq_partition(nodes);
    std::size_t g1 = 1;
    while (g1 * g1 < nodes) g1 <<= 1;
    const std::size_t g2 = nodes / g1;
    const auto lin = topo::neighbor_hops(
        t, topo::map_grid(t, g1, g2, topo::Placement::kLinear), g1, g2);
    const auto fold = topo::neighbor_hops(
        t, topo::map_grid(t, g1, g2, topo::Placement::kFolded), g1, g2);
    const double hop_gain = fold.overall() / lin.overall();
    model::FftRun placed = run;
    placed.machine.net.hop_latency_ns = static_cast<std::uint64_t>(
        placed.machine.net.hop_latency_ns * hop_gain);
    const double placed_us = simulate_fft(placed).step_us;
    t2.row(nodes, base, placed_us);
    const std::string n = std::to_string(nodes);
    json.add("placement.oblivious_us." + n, base);
    json.add("placement.placed_us." + n, placed_us);
  }
  t2.print();
  return json.write();
}
