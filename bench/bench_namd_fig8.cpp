// Figure 8: ApoA1 step time with and without L2 atomics, two
// configurations.
//
// The paper: lockless queues + pool allocator (both built on L2 atomics)
// vs mutex queues + GNU allocator; at 512 nodes with one process per node
// the L2-atomic build is ~67% faster.
#include <cstdio>
#include <string>

#include "bench_json.hpp"
#include "common/table.hpp"
#include "model/namd_model.hpp"

using namespace bgq::model;
namespace bench = bgq::bench;

int main(int argc, char** argv) {
  bench::JsonReport json = bench::parse_args(argc, argv, "bench_namd_fig8");
  std::printf("== Figure 8 (simulated): ApoA1 us/step, L2 atomics "
              "on/off ==\n");
  std::printf("paper anchor: at 512 nodes, one process per node, L2 "
              "atomics speed the step up by ~67%%\n\n");

  bgq::TextTable tbl({"nodes", "1ppn_L2on", "1ppn_L2off", "speedup",
                      "2ppn_L2on", "2ppn_L2off", "speedup"});
  for (std::size_t nodes : {128, 256, 512, 1024}) {
    // Config A: one process per node, 48 workers (the contended case —
    // every thread shares one process's queues and allocator).
    NamdRun a_on;
    a_on.nodes = nodes;
    a_on.workers = 48;
    a_on.runtime.mode = Mode::kSmp;
    NamdRun a_off = a_on;
    a_off.runtime.use_l2_atomics = false;

    // Config B: two processes per node halves the sharing (modelled as
    // half the contention multiplier's effect).
    NamdRun b_on = a_on;
    b_on.workers = 24;  // per process; model takes per-node throughput
    b_on.runtime.l2_off_multiplier = 1.75;
    NamdRun b_off = b_on;
    b_off.runtime.use_l2_atomics = false;

    const double ta_on = simulate_namd_step(a_on).total_us;
    const double ta_off = simulate_namd_step(a_off).total_us;
    const double tb_on = simulate_namd_step(b_on).total_us;
    const double tb_off = simulate_namd_step(b_off).total_us;
    tbl.row(nodes, ta_on, ta_off, ta_off / ta_on, tb_on, tb_off,
            tb_off / tb_on);
    const std::string n = std::to_string(nodes);
    json.add("fig8.1ppn.speedup." + n, ta_off / ta_on);
    json.add("fig8.2ppn.speedup." + n, tb_off / tb_on);
  }
  tbl.print();
  return json.write();
}
