// Section IV-B.1: QPX vectorization of the NAMD nonbonded inner loop.
//
// The paper reports a 15.8% serial improvement on ApoA1 from QPX
// intrinsics + interpolation-table load scheduling.  This bench times the
// scalar and QPX-style kernels on identical pair lists (google-benchmark)
// and prints the measured speedup next to the paper's.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_json.hpp"
#include "md/kernels.hpp"
#include "md/system.hpp"
#include "md/tables.hpp"

using namespace bgq::md;
namespace bench = bgq::bench;

namespace {

struct Setup {
  System sys;
  ForceTable table{12.0, 0.32, 10.0};
  LjPairTable lj;
  PairBlock pairs;
  std::vector<Vec3> force;

  Setup() : sys(make()), lj(sys.lj_types) {
    pairs =
        build_pairs(sys.pos, sys.type, lj, sys.box, 12.0, sys.exclusions);
    force.resize(sys.natoms());
  }

  static System make() {
    BuildOptions opt;
    opt.box = 28.0;  // ~2200 atoms, ApoA1-like density
    opt.seed = 92224;
    opt.with_bonds = true;
    return build_system(opt);
  }
};

Setup& setup() {
  static Setup s;
  return s;
}

void BM_NonbondedScalar(benchmark::State& state) {
  Setup& s = setup();
  for (auto _ : state) {
    std::fill(s.force.begin(), s.force.end(), Vec3{});
    auto e = compute_nonbonded_scalar(s.sys.pos, s.sys.charge, s.pairs,
                                      s.table, s.sys.box, s.force);
    benchmark::DoNotOptimize(e);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(s.pairs.size()));
}
BENCHMARK(BM_NonbondedScalar);

void BM_NonbondedQpx(benchmark::State& state) {
  Setup& s = setup();
  for (auto _ : state) {
    std::fill(s.force.begin(), s.force.end(), Vec3{});
    auto e = compute_nonbonded_qpx(s.sys.pos, s.sys.charge, s.pairs,
                                   s.table, s.sys.box, s.force);
    benchmark::DoNotOptimize(e);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(s.pairs.size()));
}
BENCHMARK(BM_NonbondedQpx);

void BM_PairListBuild(benchmark::State& state) {
  Setup& s = setup();
  for (auto _ : state) {
    auto pairs = build_pairs(s.sys.pos, s.sys.type, s.lj, s.sys.box, 12.0,
                             s.sys.exclusions);
    benchmark::DoNotOptimize(pairs.size());
  }
}
BENCHMARK(BM_PairListBuild);

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport json = bench::parse_args(argc, argv, "bench_qpx_kernels");
  std::printf("== Sec IV-B.1: nonbonded kernel, scalar vs QPX-style ==\n");
  std::printf("paper anchor: QPX + unrolling gave 15.8%% serial speedup "
              "on ApoA1 (and 2.3x from 4 SMT threads/core, which the "
              "scale models encode)\n");
  std::printf("pairs in list: %zu\n\n", setup().pairs.size());
  json.add("pairs", static_cast<std::uint64_t>(setup().pairs.size()));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return json.write();
}
