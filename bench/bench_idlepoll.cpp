// Ablation for §III-D: idle-poll pacing.
//
// On BG/Q an idle worker spinning hot steals pipeline slots from the
// sibling hardware threads on its core; the optimized poll stalls on an
// L2 atomic load (~60 cycles) instead.  On this host the analogue is a
// busy PE sharing the core with an active one: we run one "active"
// thread doing fixed arithmetic while a second thread idles under each
// policy, and report the active thread's throughput plus the idle
// thread's wake latency when work finally arrives.
#include <atomic>
#include <cstdio>
#include <thread>

#include "common/spin.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/timing.hpp"
#include "queue/l2_atomic_queue.hpp"

using namespace bgq;

namespace {

struct Result {
  double active_mops = 0;   ///< active thread's Mops/s with the idler beside it
  double wake_us = 0;       ///< idle thread's median reaction latency
};

Result run_policy(IdlePollPolicy policy) {
  queue::L2AtomicQueue<std::uint64_t*> q(64);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> posted_at{0};
  SampleSet wakes;

  std::thread idler([&] {
    while (!stop.load(std::memory_order_acquire)) {
      // The §III-D loop: probe the message-queue counter, pace per policy.
      if (auto* m = q.try_dequeue()) {
        (void)m;
        wakes.add((now_ns() - posted_at.load(std::memory_order_acquire)) *
                  1e-3);
        continue;
      }
      switch (policy) {
        case IdlePollPolicy::kHotSpin: cpu_relax(); break;
        case IdlePollPolicy::kL2Paced: l2_paced_delay(); break;
        case IdlePollPolicy::kOsYield: std::this_thread::yield(); break;
      }
    }
  });

  // Active thread (this one): arithmetic throughput while the idler
  // shares the core, with a few message arrivals sprinkled in.
  static std::uint64_t token_storage = 1;
  double ops = 0;
  volatile double sink = 1.0;
  Timer t;
  for (int burst = 0; burst < 20; ++burst) {
    for (int i = 0; i < 400000; ++i) sink = sink * 1.0000001 + 1e-9;
    ops += 400000;
    posted_at.store(now_ns(), std::memory_order_release);
    q.enqueue(&token_storage);
  }
  const double secs = t.elapsed_s();
  stop.store(true, std::memory_order_release);
  idler.join();

  Result r;
  r.active_mops = ops / secs * 1e-6;
  r.wake_us = wakes.median();
  (void)sink;
  return r;
}

}  // namespace

int main() {
  std::printf("== Sec III-D ablation: idle-poll pacing ==\n");
  std::printf("paper: the optimized poll stalls on L2 atomic loads so an "
              "idle thread leaves the core's pipeline to active "
              "threads\n\n");
  TextTable tbl({"policy", "active_Mops", "idle_wake_us"});
  const auto hot = run_policy(IdlePollPolicy::kHotSpin);
  const auto paced = run_policy(IdlePollPolicy::kL2Paced);
  const auto yield = run_policy(IdlePollPolicy::kOsYield);
  tbl.row("hot_spin", hot.active_mops, hot.wake_us);
  tbl.row("l2_paced", paced.active_mops, paced.wake_us);
  tbl.row("os_yield", yield.active_mops, yield.wake_us);
  tbl.print();
  std::printf("\nexpected shape: paced/yield give the active thread more "
              "of the core than hot spin, at modestly higher wake "
              "latency\n");
  return 0;
}
