// Ablation for §III-D: idle-poll pacing.
//
// On BG/Q an idle worker spinning hot steals pipeline slots from the
// sibling hardware threads on its core; the optimized poll stalls on an
// L2 atomic load (~60 cycles) instead.  On this host the analogue is a
// busy PE sharing the core with an active one: we run one "active"
// thread doing fixed arithmetic while a second thread idles under each
// policy, and report the active thread's throughput plus the idle
// thread's wake latency when work finally arrives.
//
// Wake latency is measured through the trace subsystem: each post is a
// causal-id-stamped synthetic lifecycle (kMsgSend+kMsgEnqueue on the
// poster's ring, kMsgDequeue+handler span on the idler's — the queue is
// SPSC, so ordinal i on one side is ordinal i on the other), and the
// post-mortem analyzer's "queueing" segment is the wake latency — the
// same pipeline a traced Machine run feeds.
#include <atomic>
#include <cstdio>
#include <thread>

#include "bench_json.hpp"
#include "common/spin.hpp"
#include "common/table.hpp"
#include "common/timing.hpp"
#include "queue/l2_atomic_queue.hpp"
#include "trace/trace.hpp"

using namespace bgq;

namespace {

struct Result {
  double active_mops = 0;  ///< active thread's Mops/s with the idler beside it
  double wake_us = 0;      ///< idle thread's median reaction latency
  std::uint64_t wakes = 0; ///< matched post->receive pairs
};

Result run_policy(IdlePollPolicy policy) {
  queue::L2AtomicQueue<std::uint64_t*> q(64);
  std::atomic<bool> stop{false};
  trace::Session session(true, 1 << 10);
  trace::EventRing* post_ring = session.make_ring(0, 0, "poster");
  trace::EventRing* idle_ring = session.make_ring(0, 1, "idler");

  std::thread idler([&] {
    trace::Session::bind_thread(idle_ring);
    std::uint64_t taken = 0;
    while (!stop.load(std::memory_order_acquire)) {
      // The §III-D loop: probe the message-queue counter, pace per policy.
      if (auto* m = q.try_dequeue()) {
        (void)m;
        // SPSC: the i-th dequeue pairs with the i-th post's cid.
        const std::uint64_t cid = (std::uint64_t{1} << 32) | ++taken;
        trace::emit_here(trace::EventKind::kMsgDequeue, 0, cid);
        trace::emit_here(trace::EventKind::kHandlerBegin, 0, cid);
        trace::emit_here(trace::EventKind::kHandlerEnd, 0, cid);
        continue;
      }
      switch (policy) {
        case IdlePollPolicy::kHotSpin: cpu_relax(); break;
        case IdlePollPolicy::kL2Paced: l2_paced_delay(); break;
        case IdlePollPolicy::kOsYield: std::this_thread::yield(); break;
      }
    }
  });

  // Active thread (this one): arithmetic throughput while the idler
  // shares the core, with a few message arrivals sprinkled in.
  static std::uint64_t token_storage = 1;
  double ops = 0;
  volatile double sink = 1.0;
  Timer t;
  for (int burst = 0; burst < 20; ++burst) {
    for (int i = 0; i < 400000; ++i) sink = sink * 1.0000001 + 1e-9;
    ops += 400000;
    // Stamp-then-publish, so the dequeue timestamp is always later.
    const std::uint64_t cid =
        (std::uint64_t{1} << 32) | static_cast<std::uint64_t>(burst + 1);
    const std::uint64_t t = now_ns();
    post_ring->emit({t, 0, trace::EventKind::kMsgSend, cid});
    post_ring->emit({t, 0, trace::EventKind::kMsgEnqueue, cid});
    q.enqueue(&token_storage);
  }
  const double secs = t.elapsed_s();
  stop.store(true, std::memory_order_release);
  idler.join();

  // The analyzer reassembles each cid across the two tracks; the
  // enqueue->dequeue ("queueing") segment is the idler's wake latency.
  const trace::Analysis an = trace::analyze(session.collect());
  const trace::Histogram& wake =
      an.decomp.segments[trace::kHopDequeue - 1];

  Result r;
  r.active_mops = ops / secs * 1e-6;
  r.wake_us = static_cast<double>(wake.percentile(0.5)) * 1e-3;
  r.wakes = wake.count();
  (void)sink;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport json = bench::parse_args(argc, argv, "bench_idlepoll");
  std::printf("== Sec III-D ablation: idle-poll pacing ==\n");
  std::printf("paper: the optimized poll stalls on L2 atomic loads so an "
              "idle thread leaves the core's pipeline to active "
              "threads\n\n");
  TextTable tbl({"policy", "active_Mops", "idle_wake_us"});
  const auto hot = run_policy(IdlePollPolicy::kHotSpin);
  const auto paced = run_policy(IdlePollPolicy::kL2Paced);
  const auto yield = run_policy(IdlePollPolicy::kOsYield);
  tbl.row("hot_spin", hot.active_mops, hot.wake_us);
  tbl.row("l2_paced", paced.active_mops, paced.wake_us);
  tbl.row("os_yield", yield.active_mops, yield.wake_us);
  tbl.print();
  std::printf("\nexpected shape: paced/yield give the active thread more "
              "of the core than hot spin, at modestly higher wake "
              "latency\n");
  json.add("hot_spin.active_mops", hot.active_mops);
  json.add("hot_spin.wake_us", hot.wake_us);
  json.add("hot_spin.wakes", hot.wakes);
  json.add("l2_paced.active_mops", paced.active_mops);
  json.add("l2_paced.wake_us", paced.wake_us);
  json.add("l2_paced.wakes", paced.wakes);
  json.add("os_yield.active_mops", yield.active_mops);
  json.add("os_yield.wake_us", yield.wake_us);
  json.add("os_yield.wakes", yield.wakes);
  return json.write();
}
