// Chaos ablation: what does reliability cost when the fabric misbehaves?
//
// Runs the Converse ping-pong (Fig. 4 shape, 512 B, far peer) and a one-way
// flood under injected drop rates of 0%, 0.1%, 1%, and 10%, reporting
// one-way latency, delivered throughput, and the protocol counters
// (retransmits, backpressure stalls) that explain the slowdown.  The 0% row
// runs the zero-fault fast path — no sequencing, no acks — so the gap to
// the 0.1% row is the full price of turning the reliability layer on.
//
// --crash switches to the checkpoint-period ablation: the FT mini-FFT runs
// with an injected mid-run process crash at checkpoint periods of 2, 5, 20,
// and 50 ms, reporting total runtime, restore-protocol time, detection
// time, and checkpoint volume.  Shorter periods pay more snapshot overhead
// but lose less work to the rollback; every row must still reproduce the
// crash-free digest bit-identically.
#include <atomic>
#include <cstring>
#include <string>

#include "bench_json.hpp"
#include "charm/ft_apps.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/timing.hpp"
#include "converse/machine.hpp"
#include "net/fault.hpp"

using namespace bgq;

namespace {

struct FaultResult {
  double oneway_us = 0;
  double msgs_per_s = 0;
  std::uint64_t net_drops = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t stalls = 0;
};

cvs::MachineConfig faulty_config(double drop_rate) {
  cvs::MachineConfig cfg;
  cfg.nodes = 2;
  cfg.mode = cvs::Mode::kNonSmp;
  cfg.workers_per_process = 2;
  cfg.processes_per_node = 1;
  cfg.comm_threads = 1;
  if (drop_rate > 0.0) {
    cfg.faults.drop = drop_rate;
    cfg.faults.seed = 42;
    // Recover promptly on the timeshared host: the default 200us RTO is
    // tuned for suites, not latency benches.
    cfg.reliability.rto_ns = 100'000;
    cfg.reliability.rto_max_ns = 5'000'000;
  }
  return cfg;
}

void harvest(cvs::Machine& machine, FaultResult& r) {
  const trace::Report rep = machine.metrics_report();
  r.net_drops = rep.value("net.drops");
  r.retransmits = rep.value("net.retransmits");
  r.stalls = rep.value("comm.backpressure_stalls");
}

/// Median one-way ping-pong latency (RTT/2 + modeled wire time).
void run_latency(const cvs::MachineConfig& cfg, std::size_t bytes,
                 int rounds, FaultResult& r) {
  cvs::Machine machine(cfg);
  const auto peer = static_cast<cvs::PeRank>(machine.pe_count() - 1);

  SampleSet rtts;
  std::atomic<int> remaining{rounds};
  std::uint64_t t0 = 0;
  const cvs::HandlerId bounce = machine.register_handler(
      [&](cvs::Pe& pe, cvs::Message* m) {
        if (pe.rank() == 0) {
          rtts.add(static_cast<double>(now_ns() - t0) * 1e-3);
          if (remaining.fetch_sub(1) - 1 <= 0) {
            pe.free_message(m);
            pe.exit_all();
            return;
          }
          t0 = now_ns();
          pe.send_message(peer, m);
        } else {
          pe.send_message(0, m);
        }
      });
  machine.run([&](cvs::Pe& pe) {
    if (pe.rank() != 0) return;
    cvs::Message* m = pe.alloc_message(bytes, bounce);
    std::memset(m->payload(), 7, bytes);
    t0 = now_ns();
    pe.send_message(peer, m);
  });

  auto& fab = machine.fabric();
  const auto ep0 = static_cast<topo::NodeId>(machine.process_of(0));
  const auto epp = static_cast<topo::NodeId>(machine.process_of(peer));
  const int hops = machine.torus().hops(fab.node_of(ep0), fab.node_of(epp));
  r.oneway_us =
      rtts.median() / 2.0 +
      fab.params().wire_time_ns(bytes + sizeof(cvs::MsgHeader), hops) * 1e-3;
  harvest(machine, r);
}

/// Delivered one-way throughput: PE 0 floods `msgs` messages at the far
/// peer; the peer bounces one "done" back once everything arrived.
void run_flood(const cvs::MachineConfig& cfg, std::size_t bytes, int msgs,
               FaultResult& r) {
  cvs::Machine machine(cfg);
  const auto peer = static_cast<cvs::PeRank>(machine.pe_count() - 1);

  std::atomic<int> got{0};
  std::uint64_t t0 = 0;
  std::uint64_t t1 = 0;
  cvs::HandlerId sink = 0;
  sink = machine.register_handler([&](cvs::Pe& pe, cvs::Message* m) {
    if (pe.rank() == 0) {
      t1 = now_ns();
      pe.free_message(m);
      pe.exit_all();
      return;
    }
    pe.free_message(m);
    if (got.fetch_add(1) + 1 == msgs) {
      pe.send_message(0, pe.alloc_message(8, sink));
    }
  });
  machine.run([&](cvs::Pe& pe) {
    if (pe.rank() != 0) return;
    t0 = now_ns();
    for (int i = 0; i < msgs; ++i) {
      cvs::Message* m = pe.alloc_message(bytes, sink);
      std::memset(m->payload(), 9, bytes);
      pe.send_message(peer, m);
    }
  });

  r.msgs_per_s = static_cast<double>(msgs) /
                 (static_cast<double>(t1 - t0) * 1e-9);
  harvest(machine, r);
}

// ---------------------------------------------------------------------------
// --crash: checkpoint-period vs recovery-time ablation
// ---------------------------------------------------------------------------

struct CrashResult {
  double total_ms = 0;
  double recovery_us = 0;
  double detect_us = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t ckpt_bytes = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t digest = 0;
  bool finished = false;
};

// Big enough that the run spans many checkpoint periods and the mid-run
// crash lands several iterations past the seed checkpoint.
constexpr std::size_t kFtGrid = 32;
constexpr std::size_t kFtElems = 4;
constexpr std::uint32_t kFtIters = 100;
constexpr const char* kCrashPlan = "crash@1:1500msg";

CrashResult run_crash(std::uint32_t period_ms, const char* plan) {
  cvs::MachineConfig cfg;
  cfg.nodes = 4;
  cfg.mode = cvs::Mode::kSmp;
  cfg.workers_per_process = 1;
  cfg.ft.enabled = true;
  cfg.ft.checkpoint_period_ms = period_ms;
  cfg.ft.heartbeat_period_ms = 2;
  cfg.ft.failure_timeout_ms = 15;
  cfg.ft.watchdog_abort = false;
  if (plan != nullptr) cfg.faults = net::FaultPlan::parse(plan);

  cvs::Machine machine(cfg);
  charm::Runtime rt(machine);
  charm::FtFft2D app(rt, kFtGrid, kFtElems, kFtIters);
  const std::uint64_t t0 = now_ns();
  machine.run([&](cvs::Pe& pe) {
    if (pe.rank() == 0) app.start(pe);
  });
  const std::uint64_t t1 = now_ns();

  CrashResult r;
  r.total_ms = static_cast<double>(t1 - t0) * 1e-6;
  r.digest = app.digest();
  r.finished = app.finished();
  const auto* mgr = machine.ft_manager();
  if (mgr != nullptr) {
    r.recovery_us = static_cast<double>(mgr->recovery_ns()) * 1e-3;
    r.detect_us = static_cast<double>(mgr->detect_ns()) * 1e-3;
    r.checkpoints = mgr->checkpoints();
    r.ckpt_bytes = mgr->checkpoint_bytes();
    r.recoveries = mgr->recoveries();
  }
  return r;
}

int run_crash_ablation(bench::JsonReport& json) {
  std::printf("== Checkpoint-period ablation: FT mini-FFT with a mid-run "
              "crash ==\n");
  std::printf("plan %s on a 4-process machine; every row must match the "
              "crash-free digest\n\n", kCrashPlan);

  const CrashResult ref = run_crash(/*period_ms=*/5, /*plan=*/nullptr);
  if (!ref.finished) {
    std::fprintf(stderr, "crash-free reference run did not finish\n");
    return 1;
  }

  constexpr std::uint32_t kPeriodsMs[] = {2, 5, 20, 50};
  TextTable table({"period_ms", "total_ms", "recovery_us", "detect_us",
                   "checkpoints", "ckpt_kb", "recoveries", "digest_ok"});
  bool all_ok = true;
  for (const std::uint32_t period : kPeriodsMs) {
    const CrashResult r = run_crash(period, kCrashPlan);
    const bool ok = r.finished && r.digest == ref.digest;
    all_ok = all_ok && ok;
    table.row(period, r.total_ms, r.recovery_us, r.detect_us, r.checkpoints,
              static_cast<double>(r.ckpt_bytes) / 1024.0, r.recoveries,
              ok ? 1 : 0);
    const std::string prefix =
        "faults.crash.period_" + std::to_string(period) + "ms";
    json.add(prefix + ".total_ms", r.total_ms);
    json.add(prefix + ".recovery_us", r.recovery_us);
    json.add(prefix + ".detect_us", r.detect_us);
    json.add(prefix + ".checkpoints", r.checkpoints);
    json.add(prefix + ".checkpoint_bytes", r.ckpt_bytes);
    json.add(prefix + ".recoveries", r.recoveries);
    json.add(prefix + ".digest_ok", static_cast<std::uint64_t>(ok ? 1 : 0));
  }
  table.print();
  std::printf("\ncrash-free reference: %.2f ms, digest %016llx\n",
              ref.total_ms, static_cast<unsigned long long>(ref.digest));
  if (!all_ok) {
    std::fprintf(stderr, "FAIL: a crashed run diverged from the crash-free "
                         "digest\n");
    return 1;
  }
  const int rc = json.write();
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport json = bench::parse_args(argc, argv, "bench_faults");
  bool crash_mode = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--crash") == 0) {
      crash_mode = true;
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  argv[argc] = nullptr;
  if (crash_mode) return run_crash_ablation(json);

  std::printf("== Chaos ablation: ping-pong + flood vs injected drop rate "
              "==\n");
  std::printf("0%% runs the zero-fault fast path (no acks); faulted rows "
              "pay sequencing, acks, and retransmits\n\n");

  constexpr double kDropRates[] = {0.0, 0.001, 0.01, 0.1};
  constexpr const char* kLabels[] = {"0pct", "0p1pct", "1pct", "10pct"};
  constexpr std::size_t kBytes = 512;
  constexpr int kRounds = 200;
  constexpr int kFloodMsgs = 1000;

  TextTable table({"drop", "oneway_us", "msgs_per_s", "retransmits",
                   "net_drops", "bp_stalls"});
  for (std::size_t i = 0; i < 4; ++i) {
    const cvs::MachineConfig cfg = faulty_config(kDropRates[i]);
    FaultResult lat;
    run_latency(cfg, kBytes, kRounds, lat);
    FaultResult thr;
    run_flood(cfg, kBytes, kFloodMsgs, thr);

    table.row(kLabels[i], lat.oneway_us, thr.msgs_per_s,
              lat.retransmits + thr.retransmits,
              lat.net_drops + thr.net_drops, lat.stalls + thr.stalls);
    const std::string prefix = std::string("faults.drop_") + kLabels[i];
    json.add(prefix + ".oneway_us", lat.oneway_us);
    json.add(prefix + ".msgs_per_s", thr.msgs_per_s);
    json.add(prefix + ".retransmits", lat.retransmits + thr.retransmits);
    json.add(prefix + ".net_drops", lat.net_drops + thr.net_drops);
    json.add(prefix + ".backpressure_stalls", lat.stalls + thr.stalls);
  }
  table.print();
  return json.write();
}
