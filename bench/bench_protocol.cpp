// Ablation for §III: eager vs rendezvous protocol crossover.
//
// The machine layer sends small/medium messages eagerly (payload copied
// through the network) and large ones by rendezvous (header + RDMA rget
// + ack, §III).  This bench sweeps the eager/rendezvous threshold over a
// range of message sizes on the functional runtime and reports the
// one-way cost of each protocol, locating the crossover the default
// threshold (4 KB) encodes.
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_json.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/timing.hpp"
#include "converse/machine.hpp"

using namespace bgq;

namespace {

/// One-way software cost of sending `bytes` under a forced protocol
/// (threshold far above / below the size).
double one_way_us(std::size_t bytes, bool force_rendezvous, int rounds) {
  cvs::MachineConfig cfg;
  cfg.nodes = 2;
  cfg.mode = cvs::Mode::kSmp;
  cfg.workers_per_process = 2;
  cfg.eager_max = force_rendezvous ? 0 : 1u << 30;
  cvs::Machine machine(cfg);
  const auto peer = static_cast<cvs::PeRank>(machine.pe_count() - 1);

  SampleSet rtts;
  std::atomic<int> remaining{rounds};
  std::uint64_t t0 = 0;

  const cvs::HandlerId bounce = machine.register_handler(
      [&](cvs::Pe& pe, cvs::Message* m) {
        if (pe.rank() == 0) {
          rtts.add((now_ns() - t0) * 1e-3);
          if (remaining.fetch_sub(1) - 1 <= 0) {
            pe.free_message(m);
            pe.exit_all();
            return;
          }
          t0 = now_ns();
          pe.send_message(peer, m);
        } else {
          pe.send_message(0, m);
        }
      });

  machine.run([&](cvs::Pe& pe) {
    if (pe.rank() != 0) return;
    cvs::Message* m = pe.alloc_message(bytes, bounce);
    std::memset(m->payload(), 1, bytes);
    t0 = now_ns();
    pe.send_message(peer, m);
  });
  return rtts.median() / 2.0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport json = bench::parse_args(argc, argv, "bench_protocol");
  std::printf("== Sec III ablation: eager vs rendezvous protocol ==\n");
  std::printf("eager copies payload through the fabric (one transfer); "
              "rendezvous sends a header, rgets the payload, and acks "
              "(three transfers but no intermediate payload copy on the "
              "send side)\n\n");

  constexpr int kRounds = 200;
  TextTable tbl({"bytes", "eager_us", "rendezvous_us", "cheaper"});
  for (std::size_t bytes :
       {256u, 1024u, 4096u, 16384u, 65536u, 262144u, 1048576u}) {
    const double e = one_way_us(bytes, false, kRounds);
    const double r = one_way_us(bytes, true, kRounds);
    tbl.row(bytes, e, r, e <= r ? "eager" : "rendezvous");
    const std::string sz = std::to_string(bytes);
    json.add("protocol.eager_us." + sz, e);
    json.add("protocol.rendezvous_us." + sz, r);
  }
  tbl.print();
  std::printf("\nthe machine layer's default threshold is 4096 bytes "
              "(MachineConfig::eager_max)\n");
  return json.write();
}
