// Table II: STMV 100M-atom step time and speedup, PME every 4 steps.
//
// Paper (1 process/node, 48 or 32 threads):
//   nodes  cores   timestep(ms)  speedup
//   2048   32768   98.8          32,768   (efficiency 1 by definition)
//   4096   65536   55.4          58,438
//   8192   131072  30.3          106,847
//   16384  262144  17.9          180,864
#include <cstdio>
#include <string>

#include "bench_json.hpp"
#include "common/table.hpp"
#include "model/namd_model.hpp"

using namespace bgq::model;
namespace bench = bgq::bench;

int main(int argc, char** argv) {
  bench::JsonReport json = bench::parse_args(argc, argv, "bench_namd_table2");
  std::printf("== Table II (simulated): STMV 100M step (ms), PME every 4 "
              "==\n");
  std::printf("speedup convention: parallel efficiency 1 at 2048 nodes "
              "(32768 cores), as in the paper\n\n");

  const double paper_ms[4] = {98.8, 55.4, 30.3, 17.9};
  const double paper_speedup[4] = {32768, 58438, 106847, 180864};
  const std::size_t node_counts[4] = {2048, 4096, 8192, 16384};
  const unsigned workers[4] = {48, 48, 48, 32};

  double t2048 = 0;
  bgq::TextTable tbl({"nodes", "cores", "threads", "sim_ms", "paper_ms",
                      "sim_speedup", "paper_speedup"});
  for (int i = 0; i < 4; ++i) {
    NamdRun run;
    run.system = NamdSystem::stmv100m();
    run.nodes = node_counts[i];
    run.workers = workers[i];
    run.runtime.mode = Mode::kSmpCommThreads;
    run.runtime.comm_threads = 8;
    run.m2m_pme = true;
    const double ms = simulate_namd_step(run).total_us * 1e-3;
    if (i == 0) t2048 = ms;
    const double speedup = 32768.0 * t2048 / ms;
    tbl.row(node_counts[i], node_counts[i] * 16, workers[i], ms,
            paper_ms[i], speedup, paper_speedup[i]);
    const std::string n = std::to_string(node_counts[i]);
    json.add("table2.sim_ms." + n, ms);
    json.add("table2.sim_speedup." + n, speedup);
  }
  tbl.print();
  return json.write();
}
