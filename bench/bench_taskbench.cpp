// Task Bench-style per-message runtime overhead, aggregated vs not.
//
// For every dependence pattern (stencil, fft, tree, random, spread) the
// bench runs the identical task graph twice — once with plain
// per-message sends, once with TRAM-style aggregation — and reports the
// runtime's per-message overhead for each: the wall-clock time minus
// the (measured) task compute, divided by the number of application
// messages.  The end-of-run digests of the two configurations must be
// bit-identical: aggregation may only change *when* bytes move, never
// *what* the application computes.  A chaos plan (--faults) layers
// drop/dup/delay on top; digests must still match.
//
// The interesting regime is the paper's: many tiny messages (16-64 B),
// where per-message software overhead dominates wire time and batching
// amortizes it (EXPERIMENTS.md records the shape criterion).
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_json.hpp"
#include "common/table.hpp"
#include "common/timing.hpp"
#include "net/fault.hpp"
#include "taskbench/runner.hpp"

using namespace bgq;

namespace {

net::FaultPlan g_faults;

struct RunResult {
  std::uint64_t digest = 0;
  double total = 0;
  bool finished = false;
  std::uint64_t elapsed_ns = 0;
  std::uint64_t busy_ns = 0;
  std::uint64_t msgs = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t tram_batches = 0;
  std::uint64_t tram_batched = 0;
};

cvs::MachineConfig make_config(bool aggregated) {
  cvs::MachineConfig cfg;
  cfg.nodes = 2;
  cfg.mode = cvs::Mode::kSmp;
  cfg.workers_per_process = 2;
  cfg.processes_per_node = 1;
  cfg.faults = g_faults;
  cfg.tram.enabled = aggregated;
  return cfg;
}

RunResult run_pattern(const taskbench::Params& prm, bool aggregated) {
  cvs::MachineConfig cfg = make_config(aggregated);
  cvs::Machine machine(cfg);
  charm::Runtime rt(machine);
  taskbench::TaskBenchApp app(rt, prm);
  Timer timer;
  machine.run([&](cvs::Pe& pe) {
    if (pe.rank() == 0) app.start(pe);
  });
  RunResult r;
  r.elapsed_ns = timer.elapsed_ns();
  r.digest = app.digest();
  r.total = app.final_total();
  r.finished = app.finished();
  r.busy_ns = app.busy_ns();
  r.msgs = app.data_messages();
  r.payload_bytes = app.data_payload_bytes();
  const trace::Report rep = machine.metrics_report();
  r.tram_batches = rep.value("tram.batches");
  r.tram_batched = rep.value("tram.batched_msgs");
  return r;
}

/// Wall time not spent in task kernels, amortized per app message.  The
/// compute term divides by the worker count (tasks run in parallel), so
/// this is pessimistic about overlap — fine for A/B comparison.
double overhead_ns_per_msg(const RunResult& r, unsigned workers) {
  if (r.msgs == 0) return 0.0;
  const double compute =
      static_cast<double>(r.busy_ns) / static_cast<double>(workers);
  const double oh = static_cast<double>(r.elapsed_ns) - compute;
  return (oh < 0 ? 0.0 : oh) / static_cast<double>(r.msgs);
}

/// Streaming small-message flood PE 0 -> PE (other process): delivered
/// messages per second.  This is the regime aggregation exists for — the
/// dependence patterns above are barrier-paced (latency-bound), but a
/// flood keeps batch buffers full so TRAM flushes on the byte/count
/// thresholds and the per-message network cost amortizes.
double flood_rate_mps(std::size_t bytes, std::size_t count,
                      bool aggregated) {
  cvs::MachineConfig cfg = make_config(aggregated);
  // One worker per process: the flood is a two-party pipeline, and on a
  // timeshared host idle sibling PEs would spin whole scheduler quanta
  // away from the sender and sink.
  cfg.workers_per_process = 1;
  // Deep batches for the streaming regime: the flood keeps buffers full,
  // so flushes ride the byte threshold, not the timeout.
  cfg.eager_max = 16384;
  cfg.tram.batch_bytes = 16384;
  cfg.tram.batch_msgs = 512;
  cvs::Machine machine(cfg);
  const cvs::PeRank sink =
      static_cast<cvs::PeRank>(machine.pe_count() - 1);
  std::atomic<std::size_t> received{0};
  cvs::HandlerId ack{};
  const cvs::HandlerId recv = machine.register_handler(
      [&](cvs::Pe& pe, cvs::Message* m) {
        const bool last =
            received.fetch_add(1, std::memory_order_relaxed) + 1 == count;
        pe.free_message(m);
        if (last) {
          cvs::Message* done = pe.alloc_message(8, ack);
          pe.send_message(0, done);
        }
      });
  ack = machine.register_handler([&](cvs::Pe& pe, cvs::Message* m) {
    pe.free_message(m);
    pe.exit_all();
  });
  Timer timer;
  machine.run([&](cvs::Pe& pe) {
    if (pe.rank() != 0) return;
    for (std::size_t i = 0; i < count; ++i) {
      cvs::Message* m = pe.alloc_message(bytes, recv);
      std::memset(m->payload(), static_cast<int>(i & 0xFF), bytes);
      pe.send_message(sink, m);
    }
  });
  const double secs = static_cast<double>(timer.elapsed_ns()) * 1e-9;
  return secs > 0 ? static_cast<double>(count) / secs / 1e6 : 0.0;
}

/// Peak of three floods — one flood is a few ms, so a scheduler hiccup
/// on the timeshared host can halve a single sample.
double flood_peak_mps(std::size_t bytes, std::size_t count,
                      bool aggregated) {
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const double r = flood_rate_mps(bytes, count, aggregated);
    if (r > best) best = r;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport json = bench::parse_args(argc, argv, "bench_taskbench");
  taskbench::Params prm;
  prm.width = 16;
  prm.steps = 24;
  prm.payload_bytes = 32;
  prm.grain = 400;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--faults") == 0) {
      g_faults = net::FaultPlan::parse("drop=0.01,dup=0.01,delay=0.02,"
                                       "seed=1234");
    } else if (std::strncmp(argv[i], "--faults=", 9) == 0) {
      g_faults = net::FaultPlan::parse(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--width=", 8) == 0) {
      prm.width = static_cast<std::uint32_t>(std::atoi(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--steps=", 8) == 0) {
      prm.steps = static_cast<std::uint32_t>(std::atoi(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--bytes=", 8) == 0) {
      prm.payload_bytes = static_cast<std::uint32_t>(std::atoi(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--grain=", 8) == 0) {
      prm.grain = static_cast<std::uint32_t>(std::atoi(argv[i] + 8));
    }
  }
  std::printf("== Task Bench dependence patterns: per-message overhead ==\n");
  std::printf("width=%u steps=%u payload=%uB grain=%u%s\n\n", prm.width,
              prm.steps, prm.payload_bytes, prm.grain,
              g_faults.enabled() ? "  ** chaos plan active **" : "");

  const unsigned workers = 4;  // 2 nodes x 1 process x 2 workers
  TextTable table({"pattern", "msgs", "plain_ns/msg", "tram_ns/msg",
                   "batches", "digest_ok"});
  bool all_match = true;
  for (taskbench::Pattern p : taskbench::kAllPatterns) {
    prm.pattern = p;
    const RunResult plain = run_pattern(prm, /*aggregated=*/false);
    const RunResult tram = run_pattern(prm, /*aggregated=*/true);
    const bool ok = plain.finished && tram.finished &&
                    plain.digest == tram.digest &&
                    plain.total == tram.total;
    all_match = all_match && ok;
    const double oh_plain = overhead_ns_per_msg(plain, workers);
    const double oh_tram = overhead_ns_per_msg(tram, workers);
    table.row(taskbench::pattern_name(p), plain.msgs, oh_plain, oh_tram,
              tram.tram_batches, ok ? 1 : 0);
    const std::string key =
        std::string("taskbench.") + taskbench::pattern_name(p);
    json.add(key + ".msgs", plain.msgs);
    json.add(key + ".payload_bytes", plain.payload_bytes);
    json.add(key + ".plain.overhead_ns_per_msg", oh_plain);
    json.add(key + ".plain.elapsed_us",
             static_cast<double>(plain.elapsed_ns) * 1e-3);
    json.add(key + ".tram.overhead_ns_per_msg", oh_tram);
    json.add(key + ".tram.elapsed_us",
             static_cast<double>(tram.elapsed_ns) * 1e-3);
    json.add(key + ".tram.batches", tram.tram_batches);
    json.add(key + ".tram.batched_msgs", tram.tram_batched);
    json.add(key + ".digest_match", std::uint64_t{ok ? 1u : 0u});
  }
  table.print();

  std::printf("\n== small-message rate: streaming flood, PE0 -> far PE ==\n");
  std::printf("shape criterion (EXPERIMENTS.md): tram >= 3x plain at "
              "16-64 B\n\n");
  TextTable rates({"bytes", "plain_Mmsg/s", "tram_Mmsg/s", "speedup"});
  constexpr std::size_t kFlood = 20000;
  for (std::size_t bytes : {16u, 32u, 64u}) {
    const double plain = flood_peak_mps(bytes, kFlood, false);
    const double tram = flood_peak_mps(bytes, kFlood, true);
    const double speedup = plain > 0 ? tram / plain : 0.0;
    rates.row(bytes, plain, tram, speedup);
    const std::string key =
        "taskbench.rate." + std::to_string(bytes);
    json.add(key + ".plain_mmsgs", plain);
    json.add(key + ".tram_mmsgs", tram);
    json.add(key + ".speedup", speedup);
  }
  rates.print();

  if (!all_match) {
    std::fprintf(stderr, "bench_taskbench: DIGEST MISMATCH — aggregation "
                         "changed application results\n");
  }
  json.add("taskbench.all_digests_match",
           std::uint64_t{all_match ? 1u : 0u});
  const int rc = json.write();
  return all_match ? rc : 1;
}
