// Figure 4 + Figure 5: Converse-level ping-pong latency.
//
// Fig. 4 — one-way latency to a *neighbouring node* for the three modes
// (non-SMP, SMP, SMP + comm threads), message sizes 16 B .. 64 KB.
// Fig. 5 — intra-node latency: (I) threads in different processes on the
// same node, (II) threads in the same Charm++ SMP process, each with and
// without comm threads.
//
// Measurement model (DESIGN.md): the in-process fabric delivers packets
// synchronously and stamps the *modeled* wire time, so a measured round
// trip gives the pure software overhead the paper's optimizations target;
// one-way latency = RTT/2 (software) + modeled one-way wire time.  The
// paper's BG/Q numbers are printed alongside.  The host timeshares all
// runtime threads on one core, so absolute values exceed BG/Q's; the mode
// *ordering* and the size scaling are the reproduction targets.
#include <atomic>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>

#include "bench_json.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/timing.hpp"
#include "converse/machine.hpp"
#include "net/fault.hpp"
#include "trace/analysis.hpp"
#include "transport_pingpong.hpp"

using namespace bgq;

namespace {

struct Result {
  double one_way_us = 0;
  double wire_us = 0;
};

/// `--faults[=spec]`: chaos plan applied to every machine in the run.
net::FaultPlan g_faults;

/// Reliability/fault counters accumulated across every machine, emitted in
/// the JSON report unconditionally — all zeros on a lossless run, so CI
/// can assert both the schema and the fault-free fast path.
constexpr const char* kNetKeys[] = {
    "net.drops",          "net.dups",
    "net.delays",         "net.bitflips",
    "net.fifo.rejects",   "net.fifo.spills",
    "net.retransmits",    "net.dup_acks",
    "net.acks.piggybacked", "net.acks.standalone",
    "net.corrupt_drops",  "net.dedup_drops",
    "comm.backpressure_stalls"};
std::uint64_t g_net[std::size(kNetKeys)] = {};

/// Ping-pong between PE 0 and a peer; returns median one-way latency.
/// `near_peer`: PE 1 (same process in SMP modes, the second process on
/// the same node in non-SMP); otherwise the farthest PE (another node).
Result run_pingpong(cvs::MachineConfig cfg, std::size_t bytes, int rounds,
                    bool near_peer,
                    const std::function<void(cvs::Machine&)>& post = {}) {
  cvs::Machine machine(cfg);
  const cvs::PeRank peer =
      near_peer ? 1 : static_cast<cvs::PeRank>(machine.pe_count() - 1);

  SampleSet rtts;
  std::atomic<int> remaining{rounds};
  std::uint64_t t0 = 0;

  const cvs::HandlerId bounce = machine.register_handler(
      [&](cvs::Pe& pe, cvs::Message* m) {
        if (pe.rank() == 0) {
          const std::uint64_t t1 = now_ns();
          rtts.add(static_cast<double>(t1 - t0) * 1e-3);
          if (remaining.fetch_sub(1) - 1 <= 0) {
            pe.free_message(m);
            pe.exit_all();
            return;
          }
          t0 = now_ns();
          pe.send_message(peer, m);
        } else {
          pe.send_message(0, m);  // echo
        }
      });

  machine.run([&](cvs::Pe& pe) {
    if (pe.rank() != 0) return;
    cvs::Message* m = pe.alloc_message(bytes, bounce);
    std::memset(m->payload(), 7, bytes);
    t0 = now_ns();
    pe.send_message(peer, m);
  });

  Result r;
  if (machine.process_of(peer) == machine.process_of(0)) {
    r.wire_us = 0.0;  // SMP pointer exchange: no network at all
  } else {
    auto& fab = machine.fabric();
    const auto ep0 = static_cast<bgq::topo::NodeId>(machine.process_of(0));
    const auto epp =
        static_cast<bgq::topo::NodeId>(machine.process_of(peer));
    const int hops =
        machine.torus().hops(fab.node_of(ep0), fab.node_of(epp));
    r.wire_us =
        fab.params().wire_time_ns(bytes + sizeof(cvs::MsgHeader), hops) * 1e-3;
  }
  r.one_way_us = rtts.median() / 2.0 + r.wire_us;

  const trace::Report rep = machine.metrics_report();
  for (std::size_t i = 0; i < std::size(kNetKeys); ++i) {
    g_net[i] += rep.value(kNetKeys[i]);
  }
  if (post) post(machine);  // e.g. drain the trace before teardown
  return r;
}

cvs::MachineConfig mode_config(cvs::Mode mode);

/// `--trace[=path]`: rerun one inter-node SMP ping-pong with lifecycle
/// tracing on, dump the bgq-trace-v1 flat trace, and print the analyzer's
/// per-hop decomposition inline.  The per-hop percentiles (from the online
/// lat.* histograms) and the hop-sum/end-to-end coverage land in the JSON
/// report so CI can assert the decomposition telescopes.
void run_traced(bench::JsonReport& json, const std::string& trace_path,
                int rounds) {
  std::printf("\n== traced run: message-lifecycle decomposition "
              "(SMP, inter-node, 512 B) ==\n");
  std::fflush(stdout);
  cvs::MachineConfig cfg = mode_config(cvs::Mode::kSmp);
  cfg.trace_events = true;
  run_pingpong(cfg, 512, rounds, false, [&](cvs::Machine& m) {
    for (const auto& [name, h] : m.metrics().hist_report()) {
      if (h.count() == 0) continue;
      json.add(name + ".p50", h.percentile(0.50));
      json.add(name + ".p99", h.percentile(0.99));
      json.add(name + ".max", h.max());
    }
    const trace::FlatTrace& flat = m.trace_session().collect();
    const trace::Analysis an = trace::analyze(flat);
    trace::write_prof_text(std::cout, an);
    std::cout.flush();
    json.add("traced.messages",
             static_cast<std::uint64_t>(an.decomp.messages));
    json.add("traced.end_to_end_ns",
             static_cast<std::uint64_t>(an.decomp.end_to_end_sum_ns));
    json.add("traced.hop_sum_ns",
             static_cast<std::uint64_t>(an.decomp.hop_sum_ns()));
    if (!trace_path.empty()) {
      std::ofstream f(trace_path);
      if (f) {
        m.write_flat_trace(f);
        std::printf("flat trace written to %s (feed it to bgq-prof)\n",
                    trace_path.c_str());
      } else {
        std::fprintf(stderr, "bench_pingpong: cannot write %s\n",
                     trace_path.c_str());
      }
    }
  });
}

cvs::MachineConfig mode_config(cvs::Mode mode) {
  cvs::MachineConfig cfg;
  cfg.nodes = 2;
  cfg.mode = mode;
  cfg.workers_per_process = 2;
  cfg.processes_per_node = 1;
  cfg.comm_threads = 1;
  cfg.faults = g_faults;
  return cfg;
}

}  // namespace

/// `--transport=shm|socket`: the ping-pong with the two PEs in two real
/// OS processes over the named backend (fork; see transport_pingpong.hpp)
/// instead of the in-process Fig. 4/5 mode sweeps — the per-mode figures
/// are meaningless across processes, but the latency-vs-size curve over
/// a real transport hop is exactly what the backends trade off.
int run_transport_sweep(bench::JsonReport& json, transport::Kind kind,
                        int rounds) {
  const char* name = transport::kind_name(kind);
  std::printf("== one-way latency over the %s transport "
              "(2 OS processes, 1 PE each) ==\n\n", name);
  constexpr std::size_t kSizes[] = {16u, 512u, 2048u, 8192u, 65536u};
  bgq::bench_transport::PingPongResult at[std::size(kSizes)];
  const bool ok =
      bgq::bench_transport::with_ranks(kind, "pp", [&](auto make_config) {
        for (std::size_t s = 0; s < std::size(kSizes); ++s) {
          at[s] = bgq::bench_transport::run_pingpong_ranked(
              make_config(static_cast<int>(s)), kSizes[s], rounds);
        }
      });
  if (!ok) return 1;
  TextTable table({"bytes", "one_way_us"});
  for (std::size_t s = 0; s < std::size(kSizes); ++s) {
    table.row(kSizes[s], at[s].one_way_us);
    json.add("transport." + std::string(name) + ".us." +
                 std::to_string(kSizes[s]),
             at[s].one_way_us);
  }
  table.print();
  json.add("transport." + std::string(name) + ".injects",
           at[std::size(kSizes) - 1].injects);
  return json.write();
}

int main(int argc, char** argv) {
  bench::JsonReport json = bench::parse_args(argc, argv, "bench_pingpong");
  bool want_trace = false;
  std::string trace_path = "pingpong_trace.json";
  transport::Kind kind = transport::Kind::kInProc;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--faults") == 0) {
      g_faults = net::FaultPlan::parse("drop=0.01,dup=0.01,delay=0.02,"
                                       "seed=1234");
    } else if (std::strncmp(argv[i], "--faults=", 9) == 0) {
      g_faults = net::FaultPlan::parse(argv[i] + 9);
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      want_trace = true;
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      want_trace = true;
      trace_path = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--transport=", 12) == 0) {
      const std::string v = argv[i] + 12;
      if (v == "inproc") {
        kind = transport::Kind::kInProc;
      } else if (v == "shm") {
        kind = transport::Kind::kShm;
      } else if (v == "socket") {
        kind = transport::Kind::kSocket;
      } else {
        std::fprintf(stderr,
                     "bench_pingpong: --transport=inproc|shm|socket\n");
        return 2;
      }
    }
  }
  if (kind != transport::Kind::kInProc) {
    return run_transport_sweep(json, kind, 300);
  }
  if (g_faults.enabled()) {
    std::printf("** chaos plan active: latencies include ack/retransmit "
                "overhead **\n");
  }
  std::printf("== Figure 4: one-way latency to neighbouring node ==\n");
  std::printf("paper anchors (<32B): nonSMP 2.9us, SMP 3.3us, "
              "SMP+comm 3.7us; modes converge above 16KB\n\n");

  constexpr int kRounds = 300;
  TextTable fig4({"bytes", "nonSMP_us", "SMP_us", "SMP+comm_us"});
  for (std::size_t bytes : {16u, 32u, 128u, 512u, 2048u, 8192u, 16384u,
                            65536u}) {
    const auto a =
        run_pingpong(mode_config(cvs::Mode::kNonSmp), bytes, kRounds,
                     false);
    const auto b =
        run_pingpong(mode_config(cvs::Mode::kSmp), bytes, kRounds, false);
    const auto c = run_pingpong(mode_config(cvs::Mode::kSmpCommThreads),
                                bytes, kRounds, false);
    fig4.row(bytes, a.one_way_us, b.one_way_us, c.one_way_us);
    const std::string sz = std::to_string(bytes);
    json.add("fig4.nonsmp.us." + sz, a.one_way_us);
    json.add("fig4.smp.us." + sz, b.one_way_us);
    json.add("fig4.smp_ct.us." + sz, c.one_way_us);
  }
  fig4.print();

  std::printf("\n== Figure 5: intra-node one-way latency ==\n");
  std::printf("paper anchors: same SMP process ~1.1us (no comm thread), "
              "~1.3us (comm threads); different processes higher and "
              "size-independent only for SMP pointer exchange\n\n");

  TextTable fig5({"bytes", "diff_process_us", "same_SMP_us",
                  "same_SMP+comm_us"});
  for (std::size_t bytes : {16u, 512u, 8192u, 65536u}) {
    // Mode I: two processes on one node (non-SMP, 2 processes).
    cvs::MachineConfig p2 = mode_config(cvs::Mode::kNonSmp);
    p2.nodes = 2;
    p2.processes_per_node = 2;  // PE 1 = second process, same node
    const auto i = run_pingpong(p2, bytes, kRounds, true);
    // Mode II: same SMP process (pointer exchange).
    const auto ii =
        run_pingpong(mode_config(cvs::Mode::kSmp), bytes, kRounds, true);
    const auto iic = run_pingpong(mode_config(cvs::Mode::kSmpCommThreads),
                                  bytes, kRounds, true);
    fig5.row(bytes, i.one_way_us, ii.one_way_us, iic.one_way_us);
    const std::string sz = std::to_string(bytes);
    json.add("fig5.diff_proc.us." + sz, i.one_way_us);
    json.add("fig5.same_smp.us." + sz, ii.one_way_us);
    json.add("fig5.same_smp_ct.us." + sz, iic.one_way_us);
  }
  fig5.print();
  // --trace runs the traced decomposition and writes the flat trace; a
  // --json report always includes the lat.* percentiles, so run the
  // traced pass (without the file) for it too.
  if (want_trace || json.enabled()) {
    run_traced(json, want_trace ? trace_path : std::string(), kRounds);
  }
  for (std::size_t i = 0; i < std::size(kNetKeys); ++i) {
    json.add(kNetKeys[i], g_net[i]);
  }
  return json.write();
}
