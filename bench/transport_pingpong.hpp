// Shared driver for the transport benches: a 2-rank Converse ping-pong
// where PE 0 and PE 1 live in *different OS processes*, so every message
// crosses the selected transport backend for real.
//
// The bench binary forks itself: the parent hosts rank 0 (and measures),
// the child hosts rank 1 (and echoes).  Both ranks execute the same
// sweep loop in lockstep — the transport constructors' attach/connect
// handshakes are the synchronization, exactly as bgq-run-launched ranks
// synchronize.  With Kind::kInProc no fork happens and the whole job
// runs in-process: that run is the overhead baseline the remote
// backends are compared against (Task Bench's methodology: same
// task graph, different communication substrate).
#pragma once

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/stats.hpp"
#include "common/timing.hpp"
#include "converse/machine.hpp"
#include "transport/config.hpp"

namespace bgq::bench_transport {

struct PingPongResult {
  double one_way_us = 0;   ///< median RTT/2 (software overhead incl. hop)
  std::uint64_t injects = 0;
  std::uint64_t polls = 0;
  std::uint64_t ring_full = 0;
};

/// Run one ping-pong machine over `tc` (both ranks must call this with
/// the same bytes/rounds).  Only rank 0's result is meaningful.
inline PingPongResult run_pingpong_ranked(const transport::Config& tc,
                                          std::size_t bytes, int rounds) {
  cvs::MachineConfig cfg;
  cfg.nodes = 2;
  cfg.mode = cvs::Mode::kSmp;
  cfg.workers_per_process = 1;
  cfg.transport = tc;
  cvs::Machine machine(cfg);

  SampleSet rtts;
  std::atomic<int> remaining{rounds};
  std::uint64_t t0 = 0;

  const cvs::HandlerId bounce = machine.register_handler(
      [&](cvs::Pe& pe, cvs::Message* m) {
        if (pe.rank() == 0) {
          const std::uint64_t t1 = now_ns();
          rtts.add(static_cast<double>(t1 - t0) * 1e-3);
          if (remaining.fetch_sub(1) - 1 <= 0) {
            pe.free_message(m);
            pe.exit_all();
            return;
          }
          t0 = now_ns();
          pe.send_message(1, m);
        } else {
          pe.send_message(0, m);  // echo
        }
      });

  machine.run([&](cvs::Pe& pe) {
    if (pe.rank() != 0) return;  // rank 1's machine just echoes
    cvs::Message* m = pe.alloc_message(bytes, bounce);
    std::memset(m->payload(), 7, bytes);
    t0 = now_ns();
    pe.send_message(1, m);
  });

  PingPongResult r;
  r.one_way_us = rtts.median() / 2.0;
  const trace::Report rep = machine.metrics_report();
  r.injects = rep.value("net.transport.injects");
  r.polls = rep.value("net.transport.polls");
  r.ring_full = rep.value("net.transport.ring_full");
  return r;
}

/// Sweep driver: calls `body(make_config)` once with this process as
/// rank 0, forking a child that runs the identical body as rank 1 and
/// then exits.  `body` receives a factory producing the per-machine
/// transport config for a sweep step (unique session per step so
/// back-to-back machines never collide); with kInProc no child is
/// forked and the factory returns an inproc config.
template <typename Body>
inline bool with_ranks(transport::Kind kind, const char* tag, Body body) {
  const std::string base =
      std::string("pp") + std::to_string(::getpid()) + tag;
  if (kind == transport::Kind::kInProc) {
    body([&](int /*step*/) { return transport::Config{}; });
    return true;
  }
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t child = ::fork();
  if (child < 0) {
    std::perror("bench transport: fork");
    return false;
  }
  const unsigned rank = child == 0 ? 1u : 0u;
  body([&](int step) {
    transport::Config tc;
    tc.kind = kind;
    tc.nprocs = 2;
    tc.rank = rank;
    tc.session = base + "s" + std::to_string(step);
    return tc;
  });
  if (child == 0) ::_exit(0);  // rank 1: no report, no stdio flush
  int status = 0;
  ::waitpid(child, &status, 0);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "bench transport: rank 1 exited abnormally\n");
    return false;
  }
  return true;
}

}  // namespace bgq::bench_transport
