// Machine configuration: the paper's execution modes (§III).
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/spin.hpp"
#include "ft/config.hpp"
#include "net/fault.hpp"
#include "net/params.hpp"
#include "pami/reliability.hpp"
#include "tram/config.hpp"
#include "transport/config.hpp"

namespace bgq::cvs {

/// The three Charm++ modes the paper studies.
enum class Mode {
  kNonSmp,          ///< one PE per process; PE does compute + comm
  kSmp,             ///< one multi-worker process per node, workers advance
                    ///< their own PAMI contexts
  kSmpCommThreads,  ///< one process per node, dedicated comm threads
};

struct MachineConfig {
  /// Physical nodes (torus size).  The functional runtime runs real host
  /// threads, so keep nodes * threads modest; machine scale is src/sim.
  std::size_t nodes = 2;

  Mode mode = Mode::kSmp;

  /// Worker PEs per process.  In kNonSmp this is forced to 1 and
  /// `processes_per_node` processes share each node.
  unsigned workers_per_process = 2;

  /// Processes per node (kNonSmp only; 1 otherwise).
  unsigned processes_per_node = 2;

  /// Comm threads per process (kSmpCommThreads only).  The paper's rule of
  /// thumb: one per four worker threads.
  unsigned comm_threads = 1;

  /// Use L2-atomic lockless queues for PE queues (Fig. 8 ablation: false
  /// swaps in the mutex queue).
  bool use_l2_atomics = true;

  /// Use the lockless pool allocator (false: GNU-arena-style baseline).
  bool use_pool_allocator = true;

  /// Idle-poll pacing (§III-D ablation).  Default OsYield: this host has
  /// fewer cores than the runtime has threads, so yielding is what keeps
  /// functional runs live; benches set L2Paced/HotSpin explicitly.
  IdlePollPolicy idle_policy = IdlePollPolicy::kOsYield;

  /// Messages up to this payload size go eager; larger use the rendezvous
  /// rget protocol (§III: "For large messages, we explored a rendezvous
  /// protocol").
  std::size_t eager_max = 4096;

  /// Record per-PE event traces — handler begin/end, message
  /// enqueue/dequeue, idle-poll transitions — into the machine's trace
  /// session (Fig. 9/10 time profiles; export via write_chrome_trace or
  /// trace::summarize).  Counters are always on; this gates the rings.
  bool trace_events = false;

  /// Per-thread trace ring capacity in events (rounded up to a power of
  /// two); a full ring drops new events and counts the loss.
  std::size_t trace_ring_events = 1 << 14;

  net::NetworkParams net{};

  /// Fault-injection plan for the fabric (chaos testing; net/fault.hpp).
  /// Disabled by default.  When left disabled, the machine consults the
  /// BGQ_FAULT_PLAN environment variable instead, so an existing binary's
  /// whole run can be made faulty from the outside.
  net::FaultPlan faults{};

  /// Force the PAMI ack/retransmit reliability protocol on even without
  /// faults (to measure protocol overhead on a lossless fabric).  It is
  /// auto-enabled whenever a fault plan is active — the runtime cannot
  /// survive drops without it.
  bool reliable = false;

  /// Reliability tuning (windows, timeouts; pami/reliability.hpp).
  pami::ReliabilityParams reliability{};

  /// TRAM-style streaming aggregation of small remote messages
  /// (src/tram/): opt-in; a default config sends everything direct.
  tram::Config tram{};

  /// Fault tolerance: checkpoint/restart protocol and hang watchdog
  /// (ft/config.hpp).  Crash events in a fault plan fire only when
  /// `ft.armed()` — otherwise they are stripped, so an env-wide plan with
  /// crashes is safe for non-FT machines.
  ft::Config ft{};

  /// Lockless-ring capacity of each reception FIFO, in packets.  Beyond
  /// it, deliveries spill to a mutex-protected overflow queue (counted as
  /// net.fifo.spills) — or are refused outright under
  /// FaultPlan::reject_on_full.
  std::size_t rec_fifo_capacity = 4096;

  /// Transport backend (src/transport/).  Default inproc: the whole job in
  /// this OS process, exactly as before.  A remote kind (shm / socket)
  /// makes this OS process host *one* emulated process — transport.rank —
  /// of a transport.nprocs-rank job; the machine layer validates
  /// nprocs == process_count().  When left at inproc, the machine consults
  /// the BGQ_TRANSPORT environment variable (how the bgq-run launcher
  /// configures the ranks it spawns); an explicit config wins.
  transport::Config transport{};

  // ---- derived ----------------------------------------------------------
  unsigned effective_processes_per_node() const {
    return mode == Mode::kNonSmp ? processes_per_node : 1;
  }
  unsigned effective_workers_per_process() const {
    return mode == Mode::kNonSmp ? 1 : workers_per_process;
  }
  unsigned effective_comm_threads() const {
    return mode == Mode::kSmpCommThreads ? comm_threads : 0;
  }
  std::size_t process_count() const {
    return nodes * effective_processes_per_node();
  }
  std::size_t pe_count() const {
    return process_count() * effective_workers_per_process();
  }
  /// PAMI contexts per process: one per comm thread when they exist,
  /// otherwise one per worker (each worker advances its own).
  unsigned contexts_per_process() const {
    return effective_comm_threads() != 0 ? effective_comm_threads()
                                         : effective_workers_per_process();
  }
};

}  // namespace bgq::cvs
