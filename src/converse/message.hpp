// Converse message layout.
//
// A message is a single allocation: a fixed-size header followed by
// payload.  Within an SMP process, messages move between PEs by pointer
// exchange (the paper's "local communication within the process is via
// pointer exchange"); across processes the header travels as PAMI
// metadata and the payload as the PAMI payload.
//
// The header has two compile-time layouts.  Trace-off builds (the
// default) carry only what delivery needs — 16 bytes, half the metadata
// on every wire packet and every batch record.  Builds configured with
// -DBGQ_TRACE grow it to 32 bytes with the causal trace id and the
// hop-to-hop timestamp, which is what the message-lifecycle analyzer
// feeds on.  All code reads the trace fields through the cid()/stamp()
// accessors below, which compile to constants when the fields are absent,
// so the runtime has exactly one source tree for both layouts.
#pragma once

#include <cstddef>
#include <cstdint>

namespace bgq::cvs {

/// Global processing-element rank.
using PeRank = std::uint32_t;

/// Registered handler index.
using HandlerId = std::uint16_t;

struct alignas(16) MsgHeader {
  /// True when this build carries the causal-trace fields (BGQ_TRACE).
#if defined(BGQ_TRACE)
  static constexpr bool kTraced = true;
#else
  static constexpr bool kTraced = false;
#endif

  std::uint32_t payload_bytes = 0;
  HandlerId handler = 0;
  /// Checkpoint epoch the message belongs to (fault-tolerant machines
  /// only; 0 otherwise).  Recovery bumps the machine epoch, so in-flight
  /// messages from before the rollback carry a stale tag and are
  /// discarded at execute time instead of double-applying.  Wraps at
  /// 2^16 — fine, since at most two epochs are ever live at once.
  std::uint16_t epoch = 0;
  PeRank src_pe = 0;
  PeRank dst_pe = 0;

#if defined(BGQ_TRACE)
  /// Causal trace id, stamped at send time when tracing is on; 0 means
  /// untraced.  Encoded as ((src_pe+1) << 32) | seq so it stays below
  /// 2^53 (exactly representable in the JSON exports' doubles) for any
  /// realistic PE count and message volume.
  std::uint64_t trace_id = 0;
  /// Timestamp of the previous lifecycle hop, re-stamped hop-to-hop so
  /// each stage can compute its latency with both endpoints visible on
  /// one thread (no cross-thread clock handoff; travels as metadata).
  std::uint64_t stamp_ns = 0;
#endif

  // Accessors valid in both layouts: reads are 0 and writes vanish when
  // the build carries no trace fields, so every call site stays
  // branch-free-correct without its own #if.
  std::uint64_t cid() const noexcept {
#if defined(BGQ_TRACE)
    return trace_id;
#else
    return 0;
#endif
  }
  void set_cid(std::uint64_t id) noexcept {
#if defined(BGQ_TRACE)
    trace_id = id;
#else
    (void)id;
#endif
  }
  std::uint64_t stamp() const noexcept {
#if defined(BGQ_TRACE)
    return stamp_ns;
#else
    return 0;
#endif
  }
  void set_stamp(std::uint64_t t) noexcept {
#if defined(BGQ_TRACE)
    stamp_ns = t;
#else
    (void)t;
#endif
  }
};
static_assert(sizeof(MsgHeader) == (MsgHeader::kTraced ? 32 : 16));

/// A Converse message.  Never constructed directly — allocated by
/// Pe::alloc_message / Process::alloc_message so the buffer comes from the
/// node's message allocator (pool or arena).
class Message {
 public:
  MsgHeader& header() noexcept { return *reinterpret_cast<MsgHeader*>(this); }
  const MsgHeader& header() const noexcept {
    return *reinterpret_cast<const MsgHeader*>(this);
  }

  std::byte* payload() noexcept {
    return reinterpret_cast<std::byte*>(this) + sizeof(MsgHeader);
  }
  const std::byte* payload() const noexcept {
    return reinterpret_cast<const std::byte*>(this) + sizeof(MsgHeader);
  }

  std::size_t payload_bytes() const noexcept {
    return header().payload_bytes;
  }
  std::size_t total_bytes() const noexcept {
    return sizeof(MsgHeader) + header().payload_bytes;
  }

  /// Reinterpret a raw allocation of total_bytes as a Message.
  static Message* from_raw(void* raw) { return static_cast<Message*>(raw); }
  void* raw() noexcept { return this; }
};

}  // namespace bgq::cvs
