// The Converse-like machine layer (§III): processes, worker PEs, the
// scheduler loop, intra-node pointer-exchange queues, and the PAMI machine
// layer with eager + rendezvous protocols.
//
// A Machine hosts every simulated node of the job in one host process.
// Layout:
//
//   Machine
//     └─ Process (one per Charm++ OS process; = PAMI endpoint)
//          ├─ pami::Client (contexts = comm threads, or one per worker)
//          ├─ IAllocator   (pool or arena; shared by the process's threads)
//          ├─ Pe x W       (worker threads, each with its scheduler queue)
//          └─ CommThreadPool (kSmpCommThreads mode only)
//
// Pe ranks are global and dense: process p owns PEs [p*W, (p+1)*W).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "alloc/allocator.hpp"
#include "converse/config.hpp"
#include "converse/message.hpp"
#include "net/fabric.hpp"
#include "pami/comm_thread.hpp"
#include "pami/pami.hpp"
#include "queue/l2_atomic_queue.hpp"
#include "queue/mutex_queue.hpp"
#include "topology/torus.hpp"
#include "trace/trace.hpp"

namespace bgq::ft {
class Manager;
}  // namespace bgq::ft

namespace bgq::tram {
class Router;
}  // namespace bgq::tram

namespace bgq::cvs {

class Machine;
class Process;
class Pe;

/// Control-message type registry for the transport's out-of-band plane
/// (transport::CtrlMsg::type).  The machine layer owns types below
/// kFtBase and routes everything at or above it to the FT manager.
namespace ctrl {
inline constexpr std::uint16_t kStop = 1;     ///< request_stop broadcast
inline constexpr std::uint16_t kBarrier = 2;  ///< a=pe rank, b=arrival count
inline constexpr std::uint16_t kFtBase = 16;
inline constexpr std::uint16_t kFtRegs = 16;      ///< a=sent b=executed c=gen
inline constexpr std::uint16_t kCkptReq = 17;     ///< pull ranks into ckpt
inline constexpr std::uint16_t kCkptPlan = 18;    ///< a=seq b=go c=members
inline constexpr std::uint16_t kCkptBlob = 19;    ///< a=seq b=proc, blob
inline constexpr std::uint16_t kCkptDone = 20;    ///< a=seq, to the leader
inline constexpr std::uint16_t kCkptCommit = 21;  ///< a=seq c=members
inline constexpr std::uint16_t kRecBlob = 22;     ///< a=seq b=proc, blob
}  // namespace ctrl

/// A Converse handler.  Owns the message: it must either free it
/// (pe.free_message) or forward it (pe.send_message).
using HandlerFn = std::function<void(Pe&, Message*)>;

/// Dense ids of the per-PE counters the machine layer maintains in the
/// metrics registry (interned once at Machine construction; see
/// src/trace/registry.hpp for the naming scheme).
struct CounterIds {
  trace::Registry::Id msgs_executed;  ///< pe.msgs.executed
  trace::Registry::Id msgs_sent;      ///< pe.msgs.sent
  trace::Registry::Id sends_intra;    ///< pe.sends.intra
  trace::Registry::Id sends_network;  ///< pe.sends.network
  trace::Registry::Id idle_probes;    ///< pe.idle.probes
  trace::Registry::Id busy_ns;        ///< pe.busy_ns
};

/// Dense ids of the message-aggregation counters (src/tram/).  Interned
/// unconditionally — like every machine-layer counter — so reports keep a
/// stable key set; all zeros when MachineConfig::tram is off.
struct TramIds {
  trace::Registry::Id appends;         ///< tram.appends
  trace::Registry::Id batches;         ///< tram.batches
  trace::Registry::Id batched_msgs;    ///< tram.batched_msgs
  trace::Registry::Id deagg_msgs;      ///< tram.deagg_msgs
  trace::Registry::Id flush_bytes;     ///< tram.flush.bytes
  trace::Registry::Id flush_count;     ///< tram.flush.count
  trace::Registry::Id flush_timeout;   ///< tram.flush.timeout
  trace::Registry::Id flush_barrier;   ///< tram.flush.barrier
  trace::Registry::Id bypass_oversize; ///< tram.bypass.oversize
  trace::Registry::Id stale_discards;  ///< tram.stale_discards
};

/// Dense ids of the per-hop latency histograms recorded online while a
/// traced message moves through its lifecycle (see message.hpp: the
/// header's stamp_ns is re-stamped at every hop, so each stage sees both
/// endpoints of its own interval).  All zero-sample when tracing is off.
struct HistIds {
  trace::Registry::Id inject_ns;   ///< lat.inject_ns: send -> PAMI inject
  trace::Registry::Id network_ns;  ///< lat.network_ns: inject -> dispatch
  trace::Registry::Id queue_ns;    ///< lat.queue_ns: enqueue -> dequeue
  trace::Registry::Id handler_ns;  ///< lat.handler_ns: handler begin -> end
};

/// One worker processing element.
class Pe {
 public:
  Pe(Process& process, PeRank rank, unsigned local_index);

  Pe(const Pe&) = delete;
  Pe& operator=(const Pe&) = delete;

  PeRank rank() const noexcept { return rank_; }
  unsigned local_index() const noexcept { return local_; }
  Process& process() noexcept { return process_; }
  Machine& machine() noexcept;

  // ---- messaging (the CmiSyncSend family) --------------------------------

  /// Allocate a message with room for `payload_bytes`.
  Message* alloc_message(std::size_t payload_bytes, HandlerId handler);

  /// Free a message (handlers call this when done).
  void free_message(Message* m);

  /// Send-and-free: ownership of `m` passes to the runtime.
  void send_message(PeRank dst, Message* m);

  /// Copying send convenience: allocates, copies `bytes`, sends.
  void send(PeRank dst, HandlerId handler, const void* payload,
            std::size_t bytes);

  /// Send a copy to every PE (including self unless skip_self).
  void broadcast(HandlerId handler, const void* payload, std::size_t bytes,
                 bool skip_self = false);

  /// Direct enqueue to this PE (used by dispatch callbacks and intra-node
  /// senders; thread-safe MPSC).
  void enqueue(Message* m);

  // ---- scheduler ---------------------------------------------------------

  /// Process queued messages until the machine stops.
  void scheduler_loop();

  /// Run at most one queued message; returns true if one ran.  Lets user
  /// init functions interleave their own work with message processing.
  bool pump_one();

  /// Ask every PE's scheduler to return (CsdExitScheduler, machine-wide).
  void exit_all();

  /// Machine-wide worker barrier (benchmark phase alignment).
  void barrier();

  /// This PE's counter shard in the machine's metrics registry (owner
  /// thread writes; read whole-machine totals via Machine::metrics()).
  const trace::Registry::Shard& counters() const noexcept {
    return *counters_;
  }

  /// Mutable shard handle for runtime services that account on behalf
  /// of this PE (the tram Router).  Owner-thread writes only.
  trace::Registry::Shard* counters_shard() noexcept { return counters_; }

  /// This PE's event ring, or nullptr when the run was configured
  /// without tracing (MachineConfig::trace_events).  Layers above the
  /// machine (e.g. the parallel MD driver's phase markers) emit here.
  trace::EventRing* trace_ring() noexcept { return ring_; }

  /// The PAMI context this worker advances itself (modes without comm
  /// threads), or nullptr when comm threads own all contexts.  Exposed for
  /// layers (many-to-many, FFT) that inject bursts directly.
  pami::Context* owned_context() noexcept { return owned_context_; }

 private:
  friend class Process;
  friend class Machine;
  friend class tram::Router;  // same-PE records execute inline on deagg

  void execute(Message* m);
  bool queue_empty_probe();

  Process& process_;
  const PeRank rank_;
  const unsigned local_;

  // One of the two is active, per MachineConfig::use_l2_atomics.
  std::unique_ptr<queue::L2AtomicQueue<void*>> l2_queue_;
  std::unique_ptr<queue::MutexQueue<void*>> mutex_queue_;

  // Context this worker advances (modes without comm threads), else null.
  pami::Context* owned_context_ = nullptr;

  trace::Registry::Shard* counters_;       // owned by the machine registry
  trace::EventRing* ring_ = nullptr;       // owned by the trace session
  std::uint64_t send_seq_ = 0;   // round-robin context routing
  std::uint64_t trace_seq_ = 0;  // per-PE causal-id allocation
};

/// One Charm++ OS process (PAMI endpoint).
class Process {
 public:
  Process(Machine& machine, pami::EndpointId endpoint);

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  Machine& machine() noexcept { return machine_; }
  pami::EndpointId endpoint() const noexcept { return endpoint_; }
  pami::Client& client() noexcept { return *client_; }
  alloc::IAllocator& allocator() noexcept { return *allocator_; }

  Pe& pe(unsigned local) { return *pes_[local]; }
  unsigned worker_count() const {
    return static_cast<unsigned>(pes_.size());
  }

  /// Allocator thread-slot of the calling thread (workers then comm
  /// threads); set per-thread by the machine at launch.
  static alloc::ThreadId current_tid() noexcept { return tls_tid_; }
  static void set_current_tid(alloc::ThreadId t) noexcept { tls_tid_ = t; }

  /// Machine-layer send of a fully-built message to a remote PE.  Chooses
  /// immediate / eager / rendezvous and routes through the right context.
  /// Takes ownership of `m`.
  void net_send(Pe& src_pe, PeRank dst, Message* m);

  /// Start comm threads (kSmpCommThreads mode); called by Machine.
  void start_comm_threads(unsigned n);
  void stop_comm_threads();
  pami::CommThreadPool* comm_pool() { return comm_pool_.get(); }

  /// Queue one round of best-effort peer heartbeats onto this process's
  /// context-0 work queue (FT monitor thread calls this periodically).
  void post_heartbeats();

 private:
  friend class Pe;
  friend class Machine;
  friend class tram::Router;  // deaggregation re-enters deliver()

  void register_dispatches();
  void send_on_context(pami::Context& ctx, PeRank dst, Message* m);

  /// Hand a received message to its destination PE (inline in non-SMP).
  void deliver(Message* m);

  // Dispatch handlers (run on whichever thread advances the context).
  void on_eager(const pami::DispatchArgs& a);
  void on_rendezvous_req(const pami::DispatchArgs& a);
  void on_rendezvous_ack(const pami::DispatchArgs& a);

  Machine& machine_;
  const pami::EndpointId endpoint_;
  std::unique_ptr<alloc::IAllocator> allocator_;
  std::unique_ptr<pami::Client> client_;
  std::vector<std::unique_ptr<Pe>> pes_;
  std::unique_ptr<pami::CommThreadPool> comm_pool_;

  static thread_local alloc::ThreadId tls_tid_;
};

/// The whole simulated job.
class Machine {
 public:
  explicit Machine(MachineConfig cfg);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  const MachineConfig& config() const noexcept { return cfg_; }
  const topo::Torus& torus() const noexcept { return torus_; }
  net::Fabric& fabric() noexcept { return *fabric_; }

  std::size_t pe_count() const noexcept { return cfg_.pe_count(); }
  Process& process(std::size_t i) { return *processes_[i]; }
  std::size_t process_count() const noexcept { return processes_.size(); }

  /// Register a handler on all PEs; returns its id.  Do this before run().
  HandlerId register_handler(HandlerFn fn);
  const HandlerFn& handler(HandlerId id) const { return handlers_[id]; }

  /// Launch: one host thread per PE runs `init(pe)` then the scheduler
  /// loop; comm threads run alongside.  Returns when every PE's scheduler
  /// has exited (someone called pe.exit_all()).
  void run(const std::function<void(Pe&)>& init);

  /// Map global PE rank -> owning process index / local worker index.
  std::size_t process_of(PeRank pe) const noexcept {
    return pe / cfg_.effective_workers_per_process();
  }
  unsigned local_of(PeRank pe) const noexcept {
    return pe % cfg_.effective_workers_per_process();
  }
  Pe& pe(PeRank rank) {
    return processes_[process_of(rank)]->pe(local_of(rank));
  }

  bool stopping() const noexcept {
    return stop_.load(std::memory_order_acquire);
  }
  /// Stop every PE's scheduler.  In a multi-process job the first call
  /// also broadcasts a kStop control frame so the other ranks stop too.
  void request_stop() noexcept;

  // ---- multi-process transport (src/transport/) --------------------------

  /// True when this OS process hosts only one emulated process of a
  /// larger job (MachineConfig::transport, or BGQ_TRANSPORT).
  bool multiproc() const noexcept { return multiproc_; }
  /// The transport rank this OS process hosts (0 when single-process).
  unsigned local_rank() const noexcept { return cfg_.transport.rank; }
  /// Emulated process `p`'s threads run in this OS process.
  bool process_local(std::size_t p) const noexcept {
    return !multiproc_ || p == cfg_.transport.rank;
  }
  /// Send a machine-layer control message (`dst` = transport rank, -1 =
  /// every other rank).  Stamps the origin; no-op single-process.
  void send_ctrl(int dst, transport::CtrlMsg m);

  /// Worker barrier: callable only from PE threads during run().  Pass the
  /// calling PE so the barrier can keep advancing its PAMI context while
  /// waiting — a PE blocked without network progress could never
  /// retransmit, which deadlocks barrier-synchronized apps on a lossy
  /// fabric (the reason this is not a std::barrier).  Liveness-aware: PEs
  /// of a declared-dead process are not waited for, and the caller bails
  /// out if its own process dies or the machine stops.
  void worker_barrier(Pe* self);

  // ---- message aggregation (src/tram/) -----------------------------------

  /// The streaming aggregator, or nullptr when MachineConfig::tram is
  /// off.  Created before any application handler registers, so its
  /// deaggregation handler always gets the first id.
  tram::Router* tram_router() noexcept { return tram_.get(); }
  const TramIds& tram_ids() const noexcept { return tram_ids_; }

  /// Timeout-flush hook for wait loops outside the scheduler (the FT
  /// quiescence wait): no-op without a router.
  void tram_tick(Pe& pe);

  // ---- fault tolerance (src/ft/) -----------------------------------------

  /// True when the run has any FT service armed (checkpoint/restart or
  /// the hang watchdog) — gates every FT hook on the hot paths.
  bool ft_armed() const noexcept { return ft_armed_; }
  ft::Manager* ft_manager() noexcept { return ft_.get(); }

  /// Current message epoch.  Stamped (truncated to 16 bits) into every
  /// application message when FT is armed; execute() discards mismatches.
  std::uint32_t msg_epoch() const noexcept {
    return msg_epoch_.load(std::memory_order_acquire);
  }
  void bump_msg_epoch() noexcept {
    msg_epoch_.fetch_add(1, std::memory_order_acq_rel);
  }

  /// Global quiescence counters: application messages sent vs executed
  /// (FT-armed runs only; stale discards touch neither).
  std::uint64_t ft_sent() const noexcept {
    return ft_sent_.load(std::memory_order_acquire);
  }
  std::uint64_t ft_executed() const noexcept {
    return ft_executed_.load(std::memory_order_acquire);
  }
  void note_sent() noexcept {
    ft_sent_.fetch_add(1, std::memory_order_acq_rel);
  }
  void note_executed() noexcept {
    ft_executed_.fetch_add(1, std::memory_order_acq_rel);
  }
  /// Recovery leader only, with every live worker parked: post-restart
  /// quiescence accounting starts from zero (in-flight pre-crash messages
  /// are stale and will touch neither counter).
  void reset_ft_counters() noexcept {
    ft_sent_.store(0, std::memory_order_release);
    ft_executed_.store(0, std::memory_order_release);
  }
  std::uint64_t stale_drops() const noexcept {
    return stale_drops_.load(std::memory_order_relaxed);
  }
  void note_stale_drop() noexcept {
    stale_drops_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Crash a process: its fabric endpoints blackhole, its comm threads
  /// stop, its workers break out of their scheduler loops.  Idempotent.
  /// Survival is the FT manager's job — this is only the failure itself.
  void kill_process(std::size_t p);

  /// The process was killed (crash injection / true failure) — known
  /// immediately, machine-internally.
  bool process_killed(std::size_t p) const noexcept {
    return fabric_->endpoint_dead(static_cast<topo::NodeId>(p));
  }

  /// The failure detector *declared* the process dead (heartbeat
  /// silence).  Barriers, re-homing, and recovery key off this, not off
  /// process_killed — survivors only act on what they could observe.
  bool process_dead(std::size_t p) const noexcept {
    return (dead_mask_.load(std::memory_order_acquire) >> p) & 1;
  }
  void declare_dead(std::size_t p) noexcept {
    dead_mask_.fetch_or(1ull << p, std::memory_order_acq_rel);
  }
  std::uint64_t dead_mask() const noexcept {
    return dead_mask_.load(std::memory_order_acquire);
  }

  /// Lowest PE rank on a live (not declared-dead) process — the protocol
  /// leader and the reduction root.  Falls back to 0 if all are dead.
  PeRank lowest_live_pe() const noexcept {
    const std::uint64_t mask = dead_mask_.load(std::memory_order_acquire);
    for (std::size_t p = 0; p < processes_.size(); ++p) {
      if (((mask >> p) & 1) == 0) {
        return static_cast<PeRank>(p * cfg_.effective_workers_per_process());
      }
    }
    return 0;
  }
  std::size_t live_process_count() const noexcept {
    std::size_t n = 0;
    const std::uint64_t mask = dead_mask_.load(std::memory_order_acquire);
    for (std::size_t p = 0; p < processes_.size(); ++p) {
      n += ((mask >> p) & 1) == 0 ? 1 : 0;
    }
    return n;
  }

  // ---- tracing & metrics (src/trace/) ------------------------------------

  /// The machine-wide counter/gauge registry.  Per-PE counters live in
  /// shards owned by the PEs; totals are exact once run() has returned.
  trace::Registry& metrics() noexcept { return metrics_; }
  const CounterIds& counter_ids() const noexcept { return ids_; }
  const HistIds& hist_ids() const noexcept { return hist_ids_; }

  /// Snapshot of every counter (summed over PEs) and gauge, including the
  /// allocator and comm-thread gauges gathered from each process.
  trace::Report metrics_report();

  /// The event-trace session (per-PE + per-comm-thread rings).  Disabled
  /// (empty) unless the config set trace_events.
  trace::Session& trace_session() noexcept { return trace_; }

  /// Flush all rings and write a Chrome trace_event JSON timeline
  /// (about://tracing, Perfetto).
  void write_chrome_trace(std::ostream& os);

  /// Flush all rings and write the flat causal trace (bgq-trace-v1 JSON),
  /// the input format of the bgq-prof post-mortem analyzer.
  void write_flat_trace(std::ostream& os);

 private:
  /// Inbound control frames (runs on the transport poller thread).
  void on_ctrl(const transport::CtrlMsg& m);

  MachineConfig cfg_;
  topo::Torus torus_;
  trace::Registry metrics_;
  CounterIds ids_;
  TramIds tram_ids_;
  HistIds hist_ids_;
  std::unique_ptr<tram::Router> tram_;
  trace::Session trace_;
  // Declared before the fabric: the fabric holds a raw pointer to the
  // transport, so the transport must outlive it.
  std::unique_ptr<transport::Transport> transport_;
  bool multiproc_ = false;
  std::unique_ptr<net::Fabric> fabric_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<HandlerFn> handlers_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> stop_sent_{false};

  // Transport poller (multiproc only): drains inbound frames into local
  // reception FIFOs and runs the ctrl handler for the whole run.
  std::thread poller_;
  std::atomic<bool> poller_stop_{false};

  // Liveness-aware per-PE-slot barrier (see worker_barrier): each PE
  // counts its own arrivals in a padded slot; a barrier completes when
  // every *live* PE's count reaches the caller's.  Per-slot arrival
  // counting is what lets the barrier skip dead PEs without a shared
  // counter ever going stale.
  struct alignas(64) BarrierSlot {
    std::atomic<std::uint64_t> n{0};
  };
  std::vector<BarrierSlot> barrier_slots_;

  // ---- fault tolerance ---------------------------------------------------
  std::unique_ptr<ft::Manager> ft_;
  bool ft_armed_ = false;
  std::atomic<std::uint32_t> msg_epoch_{0};
  std::atomic<std::uint64_t> ft_sent_{0};
  std::atomic<std::uint64_t> ft_executed_{0};
  std::atomic<std::uint64_t> stale_drops_{0};
  // Declared-dead process bitmask (functional machines are tiny; 64
  // processes is far beyond what one host can thread anyway).
  std::atomic<std::uint64_t> dead_mask_{0};
};

}  // namespace bgq::cvs
