#include "converse/machine.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "alloc/arena_allocator.hpp"
#include "alloc/pool_allocator.hpp"
#include "common/timing.hpp"
#include "ft/manager.hpp"
#include "trace/trace_io.hpp"
#include "tram/aggregator.hpp"
#include "transport/shm.hpp"
#include "transport/socket.hpp"

namespace bgq::cvs {

namespace {

// PAMI dispatch ids used by the machine layer.
constexpr std::uint16_t kDispatchEager = 1;
constexpr std::uint16_t kDispatchRzvReq = 2;
constexpr std::uint16_t kDispatchRzvAck = 3;
// Best-effort peer heartbeat (fault tolerance): the packet's arrival
// already refreshed the sender's last-heard stamp at inject time, so the
// dispatch itself is a no-op.
constexpr std::uint16_t kDispatchHeartbeat = 4;

/// Rendezvous control payload: the source message, read back by rget and
/// freed on ack (same address space stands in for the memory-region
/// handle + offset the real protocol ships).
struct RzvToken {
  Message* src_msg;
};

/// Clamped hop latency: stamps cross threads, and while the single global
/// steady clock makes true negatives impossible on a correct handoff, a
/// clamp keeps one reordered read from poisoning a histogram.
std::uint64_t hop_ns(std::uint64_t now, std::uint64_t stamp) noexcept {
  return now >= stamp ? now - stamp : 0;
}

}  // namespace

thread_local alloc::ThreadId Process::tls_tid_ = 0;

// ---------------------------------------------------------------------------
// Pe
// ---------------------------------------------------------------------------

Pe::Pe(Process& process, PeRank rank, unsigned local_index)
    : process_(process), rank_(rank), local_(local_index) {
  Machine& mach = process_.machine();
  const auto& cfg = mach.config();
  if (cfg.use_l2_atomics) {
    l2_queue_ = std::make_unique<queue::L2AtomicQueue<void*>>(2048);
  } else {
    mutex_queue_ = std::make_unique<queue::MutexQueue<void*>>();
  }
  counters_ = mach.metrics().make_shard("pe" + std::to_string(rank_));
  ring_ = mach.trace_session().make_ring(
      static_cast<std::uint32_t>(process_.endpoint()), local_,
      "pe" + std::to_string(rank_));
}

Machine& Pe::machine() noexcept { return process_.machine(); }

Message* Pe::alloc_message(std::size_t payload_bytes, HandlerId handler) {
  void* raw = process_.allocator().allocate(
      Process::current_tid(), sizeof(MsgHeader) + payload_bytes);
  auto* m = Message::from_raw(raw);
  m->header() = MsgHeader{};
  m->header().payload_bytes = static_cast<std::uint32_t>(payload_bytes);
  m->header().handler = handler;
  m->header().src_pe = rank_;
  return m;
}

void Pe::free_message(Message* m) {
  process_.allocator().deallocate(Process::current_tid(), m->raw());
}

void Pe::send_message(PeRank dst, Message* m) {
  m->header().dst_pe = dst;
  m->header().src_pe = rank_;
  Machine& mach = machine();
  const CounterIds& ids = mach.counter_ids();
  counters_->add(ids.msgs_sent);
  if (mach.ft_armed()) {
    m->header().epoch = static_cast<std::uint16_t>(mach.msg_epoch());
    mach.note_sent();
  }
  if (ring_ != nullptr) {
    // Stamp the causal id (origin PE + per-PE sequence, kept below 2^53 so
    // it survives the JSON exports' doubles) and open the lifecycle.  In
    // trace-off *builds* the header carries no causal fields: the setters
    // vanish and the event goes out with cid 0 (a plain instant).
    m->header().set_cid(
        (static_cast<std::uint64_t>(rank_ + 1) << 32) | ++trace_seq_);
    const std::uint64_t t = now_ns();
    m->header().set_stamp(t);
    ring_->emit({t, dst, trace::EventKind::kMsgSend, m->header().cid()});
  }
  if (mach.process_of(dst) == mach.process_of(rank_)) {
    // Same SMP process: pointer exchange straight into the peer's queue.
    counters_->add(ids.sends_intra);
    mach.pe(dst).enqueue(m);
    return;
  }
  // Remote destination: the aggregation router may absorb a small message
  // into a per-destination batch (it re-sends via this same path, as a
  // batch message the router declines to re-batch).
  if (tram::Router* tr = mach.tram_router();
      tr != nullptr && tr->offer(*this, dst, m)) {
    return;
  }
  counters_->add(ids.sends_network);
  process_.net_send(*this, dst, m);
}

void Pe::send(PeRank dst, HandlerId handler, const void* payload,
              std::size_t bytes) {
  Message* m = alloc_message(bytes, handler);
  if (bytes != 0) std::memcpy(m->payload(), payload, bytes);
  send_message(dst, m);
}

void Pe::broadcast(HandlerId handler, const void* payload, std::size_t bytes,
                   bool skip_self) {
  const auto n = static_cast<PeRank>(machine().pe_count());
  for (PeRank p = 0; p < n; ++p) {
    if (skip_self && p == rank_) continue;
    send(p, handler, payload, bytes);
  }
}

void Pe::enqueue(Message* m) {
  // Producer-side trace tick, on the *sender's* track (null-bound
  // threads skip at the cost of one thread-local load).
  MsgHeader& h = m->header();
  if (h.cid() != 0) {
    const std::uint64_t t =
        trace::emit_here(trace::EventKind::kMsgEnqueue, rank_, h.cid());
    h.set_stamp(t != 0 ? t : now_ns());  // queue-wait baseline for dequeue
  } else {
    trace::emit_here(trace::EventKind::kMsgEnqueue, rank_);
  }
  if (l2_queue_) {
    l2_queue_->enqueue(m->raw());
  } else {
    mutex_queue_->enqueue(m->raw());
  }
}

void Pe::execute(Message* m) {
  Machine& mach = machine();
  if (mach.ft_armed()) {
    // Stale-epoch discard: the message was sent before a rollback, so
    // executing it would double-apply pre-crash work.  Touches neither
    // quiescence counter — the rollback already re-zeroed them.
    if (m->header().epoch !=
        static_cast<std::uint16_t>(mach.msg_epoch())) {
      mach.note_stale_drop();
      free_message(m);
      return;
    }
  }
  const HandlerId h = m->header().handler;
  // The handler owns (and may free or forward) the message: capture the
  // causal id before invoking it.
  const std::uint64_t cid = m->header().cid();
  const std::uint64_t t0 = now_ns();
  if (ring_) ring_->emit({t0, h, trace::EventKind::kHandlerBegin, cid});
  machine().handler(h)(*this, m);
  const std::uint64_t t1 = now_ns();
  const CounterIds& ids = machine().counter_ids();
  counters_->add(ids.busy_ns, t1 - t0);
  counters_->add(ids.msgs_executed);
  if (mach.ft_armed()) mach.note_executed();
  if (ring_) {
    ring_->emit({t1, h, trace::EventKind::kHandlerEnd, cid});
    if (cid != 0) {
      counters_->record(machine().hist_ids().handler_ns, t1 - t0);
    }
  }
}

bool Pe::pump_one() {
  void* raw = l2_queue_ ? l2_queue_->try_dequeue()
                        : mutex_queue_->try_dequeue();
  if (raw != nullptr) {
    Message* m = Message::from_raw(raw);
    if (ring_) {
      const MsgHeader& h = m->header();
      const std::uint64_t t = now_ns();
      ring_->emit({t, h.handler, trace::EventKind::kMsgDequeue, h.cid()});
      if (h.cid() != 0) {
        counters_->record(machine().hist_ids().queue_ns,
                          hop_ns(t, h.stamp()));
      }
    }
    execute(m);
    return true;
  }
  // No queued message: progress the network if this worker owns a context
  // (non-SMP and SMP-without-comm-threads modes).
  if (owned_context_ != nullptr) {
    return owned_context_->advance() != 0;
  }
  return false;
}

void Pe::scheduler_loop() {
  Machine& mach = machine();
  const IdlePollPolicy policy = mach.config().idle_policy;
  const CounterIds& ids = mach.counter_ids();
  const bool ft = mach.ft_armed();
  ft::Manager* mgr = ft ? mach.ft_manager() : nullptr;
  tram::Router* tr = mach.tram_router();
  bool idle = false;
  while (!mach.stopping()) {
    if (ft && mach.process_killed(process_.endpoint())) break;  // crashed
    if (pump_one()) {
      if (idle) {
        idle = false;
        if (ring_) ring_->emit({now_ns(), 0, trace::EventKind::kIdleEnd});
      }
      continue;
    }
    // No local work: flush aggregation buffers whose timeout expired —
    // before FT protocol work, since quiescence counts staged records as
    // sent-but-unexecuted and would otherwise wait on them.
    if (tr != nullptr && tr->tick(*this)) {
      if (idle) {
        idle = false;
        if (ring_) ring_->emit({now_ns(), 0, trace::EventKind::kIdleEnd});
      }
      continue;
    }
    // FT protocol work (checkpoint / recovery) only once the local queue
    // is drained — rendezvous with the queue's messages already applied.
    if (mgr != nullptr && mgr->poll(*this)) {
      if (idle) {
        idle = false;
        if (ring_) ring_->emit({now_ns(), 0, trace::EventKind::kIdleEnd});
      }
      continue;
    }
    if (!idle) {
      idle = true;
      if (ring_) ring_->emit({now_ns(), 0, trace::EventKind::kIdleBegin});
    }
    // Idle poll (§III-D): pace the re-probe so sibling hardware threads
    // keep the core's pipeline (emulated by pause bursts / yields).
    counters_->add(ids.idle_probes);
    switch (policy) {
      case IdlePollPolicy::kHotSpin: cpu_relax(); break;
      case IdlePollPolicy::kL2Paced: l2_paced_delay(); break;
      case IdlePollPolicy::kOsYield: std::this_thread::yield(); break;
    }
  }
  if (idle && ring_) {
    ring_->emit({now_ns(), 0, trace::EventKind::kIdleEnd});
  }
}

void Pe::exit_all() { machine().request_stop(); }

void Pe::barrier() { machine().worker_barrier(this); }

// ---------------------------------------------------------------------------
// Process
// ---------------------------------------------------------------------------

Process::Process(Machine& machine, pami::EndpointId endpoint)
    : machine_(machine), endpoint_(endpoint) {
  const MachineConfig& cfg = machine.config();
  const unsigned workers = cfg.effective_workers_per_process();
  const unsigned commthreads = cfg.effective_comm_threads();
  const unsigned nthreads = workers + std::max(1u, commthreads);

  if (cfg.use_pool_allocator) {
    allocator_ = std::make_unique<alloc::PoolAllocator>(nthreads);
  } else {
    allocator_ = std::make_unique<alloc::ArenaAllocator>(nthreads);
  }

  client_ = std::make_unique<pami::Client>(machine.fabric(), endpoint,
                                           cfg.contexts_per_process());
  if (cfg.reliable) client_->enable_reliability(cfg.reliability);
  register_dispatches();

  pes_.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    const auto rank = static_cast<PeRank>(
        static_cast<std::size_t>(endpoint) * workers + w);
    pes_.push_back(std::make_unique<Pe>(*this, rank, w));
    if (commthreads == 0) {
      // Each worker advances its own context.
      pes_.back()->owned_context_ = &client_->context(w);
    }
  }
}

void Process::register_dispatches() {
  client_->set_dispatch(kDispatchEager, [this](const pami::DispatchArgs& a) {
    on_eager(a);
  });
  client_->set_dispatch(kDispatchRzvReq,
                        [this](const pami::DispatchArgs& a) {
                          on_rendezvous_req(a);
                        });
  client_->set_dispatch(kDispatchRzvAck,
                        [this](const pami::DispatchArgs& a) {
                          on_rendezvous_ack(a);
                        });
  // Heartbeats carry no data: their inject already refreshed the fabric's
  // last-heard stamp for the sender, which is all the detector reads.
  client_->set_dispatch(kDispatchHeartbeat, [](const pami::DispatchArgs&) {});
}

void Process::post_heartbeats() {
  // Runs on the monitor thread: hand the sends to whichever thread
  // advances context 0 (the PAMI thread contract's post_work exception).
  pami::Context& ctx = client_->context(0);
  Machine* mach = &machine_;
  const auto self = endpoint_;
  ctx.post_work([mach, self, &ctx] {
    for (std::size_t p = 0; p < mach->process_count(); ++p) {
      if (p == self || mach->process_killed(p)) continue;
      pami::SendParams hb;
      hb.dest = static_cast<pami::EndpointId>(p);
      hb.dispatch = kDispatchHeartbeat;
      hb.best_effort = true;  // losing one is fine; the next refreshes
      ctx.send_immediate(hb);
    }
  });
}

void Process::net_send(Pe& src_pe, PeRank dst, Message* m) {
  if (comm_pool_ != nullptr) {
    // Offload to a comm thread; spread this worker's traffic over all of
    // them (§III-C even distribution).
    const unsigned idx = pami::CommThreadPool::route(
        src_pe.local_index(), src_pe.send_seq_++,
        client_->context_count());
    pami::Context& ctx = client_->context(idx);
    ctx.post_work([this, &ctx, dst, m] { send_on_context(ctx, dst, m); });
    return;
  }
  send_on_context(*src_pe.owned_context_, dst, m);
}

void Process::send_on_context(pami::Context& ctx, PeRank dst, Message* m) {
  const auto dst_ep =
      static_cast<pami::EndpointId>(machine_.process_of(dst));
  const auto dest_ctx = static_cast<std::uint16_t>(
      m->header().src_pe % machine_.config().contexts_per_process());
  const std::size_t bytes = m->payload_bytes();

  MsgHeader& hdr = m->header();
  if (hdr.cid() != 0) {
    // Injection hop closes here (send -> this context picking the message
    // up); re-stamp *before* the header is copied into packet metadata so
    // the network hop's baseline crosses the wire with the message.
    const std::uint64_t t = now_ns();
    trace::Registry::record_here(machine_.hist_ids().inject_ns,
                                 hop_ns(t, hdr.stamp()));
    hdr.set_stamp(t);
  }

  pami::SendParams p;
  p.dest = dst_ep;
  p.dest_context = dest_ctx;
  p.metadata = &m->header();
  p.metadata_bytes = sizeof(MsgHeader);
  p.cid = hdr.cid();

  // Rendezvous ships a raw source-buffer pointer and pulls it with rget —
  // meaningless across address spaces, so remote-process destinations go
  // eager at any size (the eager path copies the payload either way).
  const bool rzv = bytes > machine_.config().eager_max &&
                   machine_.process_local(dst_ep);
  if (rzv) {
    // Rendezvous (§III): ship a short request carrying the source buffer
    // token; the receiver rgets the payload and acks so we can free.
    RzvToken token{m};
    p.dispatch = kDispatchRzvReq;
    p.payload = &token;
    p.payload_bytes = sizeof(token);
    ctx.send_immediate(p);
    return;  // m stays alive until the ack
  }

  p.dispatch = kDispatchEager;
  p.payload = m->payload();
  p.payload_bytes = bytes;
  if (sizeof(MsgHeader) + bytes <= pami::Context::kImmediateMax) {
    ctx.send_immediate(p);
  } else {
    ctx.send(p);
  }
  // Both send flavours copied the payload: the message is free to go.
  allocator_->deallocate(current_tid(), m->raw());
}

void Process::on_eager(const pami::DispatchArgs& a) {
  MsgHeader hdr;
  std::memcpy(&hdr, a.metadata, sizeof(hdr));
  if (hdr.cid() != 0) {
    // Network hop closes at dispatch on the receive side.
    const std::uint64_t t = now_ns();
    trace::Registry::record_here(machine_.hist_ids().network_ns,
                                 hop_ns(t, hdr.stamp()));
    hdr.set_stamp(t);
  }
  void* raw = allocator_->allocate(current_tid(),
                                   sizeof(MsgHeader) + a.payload_bytes);
  auto* m = Message::from_raw(raw);
  m->header() = hdr;
  if (a.payload_bytes != 0) {
    std::memcpy(m->payload(), a.payload, a.payload_bytes);
  }
  deliver(m);
}

void Process::deliver(Message* m) {
  const unsigned local = machine_.local_of(m->header().dst_pe);
  if (comm_pool_ == nullptr && pes_.size() == 1) {
    // Non-SMP: the advancing thread *is* the PE; invoke the handler inline
    // straight from the network poll (no cross-thread queue — the source
    // of non-SMP's latency edge in Fig. 4).
    pes_[0]->execute(m);
    return;
  }
  pes_[local]->enqueue(m);
}

void Process::on_rendezvous_req(const pami::DispatchArgs& a) {
  MsgHeader hdr;
  std::memcpy(&hdr, a.metadata, sizeof(hdr));
  if (hdr.cid() != 0) {
    // Rendezvous: the network hop closes when the request lands; the rget
    // payload pull shows up between here and the enqueue that follows it.
    const std::uint64_t t = now_ns();
    trace::Registry::record_here(machine_.hist_ids().network_ns,
                                 hop_ns(t, hdr.stamp()));
    hdr.set_stamp(t);
  }
  RzvToken token;
  std::memcpy(&token, a.payload, sizeof(token));

  void* raw = allocator_->allocate(current_tid(),
                                   sizeof(MsgHeader) + hdr.payload_bytes);
  auto* m = Message::from_raw(raw);
  m->header() = hdr;

  pami::Context* ctx = a.context;
  const pami::EndpointId origin = a.origin;
  const auto src_ctx = static_cast<std::uint16_t>(
      hdr.src_pe % machine_.config().contexts_per_process());

  // Pull the payload from the source buffer, then hand the message to the
  // destination PE and ack the sender so it can free.
  ctx->rget(origin,
            reinterpret_cast<const std::byte*>(token.src_msg->payload()),
            m->payload(), hdr.payload_bytes,
            [this, ctx, origin, src_ctx, token, m] {
              deliver(m);
              pami::SendParams ack;
              ack.dest = origin;
              ack.dest_context = src_ctx;
              ack.dispatch = kDispatchRzvAck;
              ack.payload = &token;
              ack.payload_bytes = sizeof(token);
              ctx->send_immediate(ack);
            });
}

void Process::on_rendezvous_ack(const pami::DispatchArgs& a) {
  RzvToken token;
  std::memcpy(&token, a.payload, sizeof(token));
  allocator_->deallocate(current_tid(), token.src_msg->raw());
}

void Process::start_comm_threads(unsigned n) {
  std::vector<pami::Context*> ctxs;
  for (unsigned i = 0; i < client_->context_count(); ++i) {
    ctxs.push_back(&client_->context(i));
  }
  const unsigned workers = worker_count();
  Machine* mach = &machine_;
  const auto ep = static_cast<std::uint32_t>(endpoint_);
  comm_pool_ = std::make_unique<pami::CommThreadPool>(
      std::move(ctxs), n, [workers, mach, ep](unsigned comm_tid) {
        // Comm threads use allocator slots after the workers'.
        set_current_tid(workers + comm_tid);
        const std::string label =
            "comm" + std::to_string(ep) + "." + std::to_string(comm_tid);
        trace::Registry::bind_thread(mach->metrics().make_shard(label));
        if (mach->trace_session().enabled()) {
          mach->trace_session().adopt_thread(ep, workers + comm_tid, label);
        }
      });
}

void Process::stop_comm_threads() {
  if (comm_pool_) comm_pool_->stop();
}

// ---------------------------------------------------------------------------
// Machine
// ---------------------------------------------------------------------------

Machine::Machine(MachineConfig cfg)
    : cfg_(cfg),
      torus_(topo::Torus::bgq_partition(cfg.nodes)),
      trace_(cfg.trace_events, cfg.trace_ring_events) {
  // Intern every machine-layer counter before any Pe makes its shard, so
  // shards are born full-size and never resize on the hot path.
  ids_.msgs_executed = metrics_.intern("pe.msgs.executed");
  ids_.msgs_sent = metrics_.intern("pe.msgs.sent");
  ids_.sends_intra = metrics_.intern("pe.sends.intra");
  ids_.sends_network = metrics_.intern("pe.sends.network");
  ids_.idle_probes = metrics_.intern("pe.idle.probes");
  ids_.busy_ns = metrics_.intern("pe.busy_ns");
  tram_ids_.appends = metrics_.intern("tram.appends");
  tram_ids_.batches = metrics_.intern("tram.batches");
  tram_ids_.batched_msgs = metrics_.intern("tram.batched_msgs");
  tram_ids_.deagg_msgs = metrics_.intern("tram.deagg_msgs");
  tram_ids_.flush_bytes = metrics_.intern("tram.flush.bytes");
  tram_ids_.flush_count = metrics_.intern("tram.flush.count");
  tram_ids_.flush_timeout = metrics_.intern("tram.flush.timeout");
  tram_ids_.flush_barrier = metrics_.intern("tram.flush.barrier");
  tram_ids_.bypass_oversize = metrics_.intern("tram.bypass.oversize");
  tram_ids_.stale_discards = metrics_.intern("tram.stale_discards");
  hist_ids_.inject_ns = metrics_.intern_hist("lat.inject_ns");
  hist_ids_.network_ns = metrics_.intern_hist("lat.network_ns");
  hist_ids_.queue_ns = metrics_.intern_hist("lat.queue_ns");
  hist_ids_.handler_ns = metrics_.intern_hist("lat.handler_ns");
  // Transport backend: an explicit config wins; otherwise BGQ_TRANSPORT
  // lets the bgq-run launcher make any existing binary host one rank of a
  // multi-process job.
  if (!cfg_.transport.remote()) {
    cfg_.transport = transport::Config::from_env();
  }
  multiproc_ = cfg_.transport.remote();
  if (multiproc_) {
    if (cfg_.transport.nprocs != cfg_.process_count()) {
      throw std::invalid_argument(
          "transport nprocs does not match the machine's process count");
    }
    if (cfg_.effective_workers_per_process() != 1) {
      // Ranks coordinate through one protocol PE each; SMP workers would
      // need a per-rank sub-barrier nothing here exercises.
      throw std::invalid_argument(
          "multi-process transports require one worker per process");
    }
    switch (cfg_.transport.kind) {
      case transport::Kind::kShm:
        transport_ = std::make_unique<transport::ShmTransport>(cfg_.transport);
        break;
      case transport::Kind::kSocket:
        transport_ =
            std::make_unique<transport::SocketTransport>(cfg_.transport);
        break;
      case transport::Kind::kInProc:
        break;  // unreachable: remote() gated above
    }
  }
  fabric_ = std::make_unique<net::Fabric>(
      torus_, cfg_.net, cfg_.contexts_per_process(),
      cfg_.effective_processes_per_node(), cfg_.rec_fifo_capacity,
      transport_.get());
  if (multiproc_) {
    fabric_->transport().set_ctrl_handler(
        [this](const transport::CtrlMsg& m) { on_ctrl(m); });
  }
  // Chaos layer: an explicit plan in the config wins; otherwise the
  // BGQ_FAULT_PLAN environment variable lets any existing run go faulty.
  net::FaultPlan plan =
      cfg_.faults.enabled() ? cfg_.faults : net::FaultPlan::from_env();
  // Crash events only fire on runs that armed fault tolerance: an
  // environment-wide plan (the CI recovery job sets one) must not kill
  // processes under tests that have no checkpoint/restart or watchdog to
  // survive or even notice it.
  if (!cfg_.ft.armed()) plan.crashes.clear();
  if (plan.enabled()) {
    fabric_->set_fault_plan(plan);
    cfg_.reliable = true;  // the runtime cannot survive drops without it
  }
  ft_armed_ = cfg_.ft.armed();
  barrier_slots_ = std::vector<BarrierSlot>(cfg_.pe_count());
  if (ft_armed_) {
    if (cfg_.ft.enabled) fabric_->enable_liveness();
    ft_ = std::make_unique<ft::Manager>(*this, cfg_.ft,
                                        std::move(plan.crashes));
  }
  // The aggregation router registers its deaggregation handler here,
  // before any application handler, so it deterministically owns id 0.
  if (cfg_.tram.enabled) {
    tram_ = std::make_unique<tram::Router>(*this, cfg_.tram);
  }
  const std::size_t nproc = cfg_.process_count();
  processes_.reserve(nproc);
  for (std::size_t p = 0; p < nproc; ++p) {
    processes_.push_back(std::make_unique<Process>(
        *this, static_cast<pami::EndpointId>(p)));
  }
}

Machine::~Machine() {
  for (auto& p : processes_) p->stop_comm_threads();
}

HandlerId Machine::register_handler(HandlerFn fn) {
  handlers_.push_back(std::move(fn));
  return static_cast<HandlerId>(handlers_.size() - 1);
}

void Machine::request_stop() noexcept {
  stop_.store(true, std::memory_order_release);
  if (multiproc_ && !stop_sent_.exchange(true, std::memory_order_acq_rel)) {
    // Receivers store stop_ directly (no re-broadcast), so the exchange
    // guard means each rank originates at most one kStop storm.
    transport::CtrlMsg m;
    m.type = ctrl::kStop;
    try {
      send_ctrl(-1, std::move(m));
    } catch (...) {
      // A peer torn down mid-shutdown is fine; its own exit stops it.
    }
  }
}

void Machine::send_ctrl(int dst, transport::CtrlMsg m) {
  if (!multiproc_) return;
  m.origin = cfg_.transport.rank;
  fabric_->transport().send_ctrl(dst, m);
}

void Machine::on_ctrl(const transport::CtrlMsg& m) {
  switch (m.type) {
    case ctrl::kStop:
      stop_.store(true, std::memory_order_release);
      return;
    case ctrl::kBarrier: {
      // Merge a remote PE's arrival count (monotone max: counts only
      // grow, and re-deliveries must never move a slot backwards).
      if (m.a >= barrier_slots_.size()) return;
      auto& slot = barrier_slots_[m.a].n;
      std::uint64_t cur = slot.load(std::memory_order_acquire);
      while (cur < m.b &&
             !slot.compare_exchange_weak(cur, m.b,
                                         std::memory_order_acq_rel)) {
      }
      return;
    }
    default:
      if (m.type >= ctrl::kFtBase && ft_ != nullptr) ft_->on_ctrl(m);
      return;
  }
}

void Machine::worker_barrier(Pe* self) {
  // Per-PE-slot barrier that keeps the caller's network progressing.  A PE
  // parked in a blocking barrier could never run its reliability
  // retransmit timer; on a faulty fabric, peers still waiting on a dropped
  // message from that PE would then wait forever.
  //
  // Each PE counts its own arrivals; the barrier completes when every
  // *live* PE's count has reached the caller's.  Per-slot counting (vs a
  // shared sense-reversing counter) is what lets the barrier skip PEs of a
  // declared-dead process without the shared count going permanently
  // short.  The caller bails out if its own process was killed or the
  // machine is stopping — its peers will stop waiting for it once the
  // failure detector declares the process dead.
  // Collective alignment drains this PE's aggregation buffers first: a
  // barrier-synchronized peer may be waiting on exactly the messages a
  // lazy batch is holding back.
  if (tram_ != nullptr) tram_->drain(*self);
  const std::size_t me = self->rank();
  const std::uint64_t target =
      barrier_slots_[me].n.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (multiproc_) {
    // Remote PEs' slots are fed by their ranks' kBarrier broadcasts (the
    // poller merges them with a monotone max); ship ours out.
    transport::CtrlMsg bm;
    bm.type = ctrl::kBarrier;
    bm.a = me;
    bm.b = target;
    send_ctrl(-1, std::move(bm));
  }
  pami::Context* ctx = self->owned_context();
  const unsigned wpp = cfg_.effective_workers_per_process();
  for (std::size_t i = 0; i < barrier_slots_.size(); ++i) {
    while (barrier_slots_[i].n.load(std::memory_order_acquire) < target) {
      if (stopping()) return;
      // Handlers executed inline from advance() (non-SMP delivery) can
      // stage fresh records while we park: keep the timeout flush live.
      if (tram_ != nullptr) tram_->tick(*self);
      if (ft_armed_) {
        // A declared-dead or killed process's PEs are never arriving; a
        // killed-but-undeclared slot must be skipped too, or a crash that
        // lands mid-protocol wedges every survivor in this loop before
        // the detector (which needs them to keep running) can declare it.
        if (process_dead(i / wpp) || process_killed(i / wpp)) break;
        if (process_killed(process_of(me))) return;  // we crashed
      }
      if (ctx != nullptr) ctx->advance();
      std::this_thread::yield();
    }
  }
}

void Machine::tram_tick(Pe& pe) {
  if (tram_ != nullptr) tram_->tick(pe);
}

void Machine::kill_process(std::size_t p) {
  // The failure itself, nothing more: endpoints blackhole (fabric refuses
  // transfers to/from the process), comm threads stop, and the process's
  // workers notice process_killed() at the top of their scheduler loops.
  // Survivors learn of the death only through heartbeat silence — the
  // detector, not this call, sets the declared-dead mask.
  if (fabric_->endpoint_dead(static_cast<topo::NodeId>(p))) return;
  fabric_->kill_endpoint(static_cast<topo::NodeId>(p));
  processes_[p]->stop_comm_threads();
  if (ft_) ft_->on_killed(static_cast<unsigned>(p));
}

void Machine::run(const std::function<void(Pe&)>& init) {
  stop_.store(false, std::memory_order_release);
  stop_sent_.store(false, std::memory_order_release);

  const unsigned commthreads = cfg_.effective_comm_threads();
  if (commthreads != 0) {
    for (auto& p : processes_) {
      if (process_local(p->endpoint())) p->start_comm_threads(commthreads);
    }
  }
  if (multiproc_) {
    // The poller drains transport frames into local reception FIFOs and
    // runs the ctrl handler; it must be live before the first barrier.
    poller_stop_.store(false, std::memory_order_release);
    poller_ = std::thread([this] {
      while (!poller_stop_.load(std::memory_order_acquire)) {
        if (fabric_->progress() == 0) std::this_thread::yield();
      }
    });
  }
  if (ft_) ft_->start();  // monitor thread: crashes, heartbeats, watchdog

  // Every Process object exists on every rank (so endpoint addressing,
  // placement and checkpoint re-homing stay global computations), but
  // only the local rank's PEs get threads in a multi-process job.
  std::vector<std::thread> workers;
  workers.reserve(pe_count());
  for (auto& proc : processes_) {
    if (!process_local(proc->endpoint())) continue;
    for (unsigned w = 0; w < proc->worker_count(); ++w) {
      Pe* pe = &proc->pe(w);
      workers.emplace_back([this, pe, w, &init] {
        Process::set_current_tid(w);
        trace::Session::bind_thread(pe->ring_);
        trace::Registry::bind_thread(pe->counters_);
        worker_barrier(pe);  // everyone exists before any traffic flows
        init(*pe);
        pe->scheduler_loop();
      });
    }
  }
  for (auto& t : workers) t.join();

  if (ft_) ft_->stop();
  if (multiproc_) {
    // Keep draining briefly after our workers exit: peers finishing a
    // beat later may still be flushing frames (a blocked socket writer on
    // the far side would wedge its shutdown otherwise).
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    poller_stop_.store(true, std::memory_order_release);
    if (poller_.joinable()) poller_.join();
    fabric_->transport().flush();
  }
  for (auto& p : processes_) p->stop_comm_threads();
}

trace::Report Machine::metrics_report() {
  // Fold the allocator and comm-thread counters in as gauges so one
  // report covers the whole machine (summing across processes).
  std::uint64_t pool_hits = 0, heap_allocs = 0, heap_frees = 0;
  std::uint64_t slab_hits = 0, slab_carves = 0;
  std::uint64_t arena_contention = 0, sweeps = 0, parks = 0;
  bool any_pool = false, any_arena = false, any_comm = false;
  for (const auto& proc : processes_) {
    if (auto* pool =
            dynamic_cast<alloc::PoolAllocator*>(&proc->allocator())) {
      any_pool = true;
      pool_hits += pool->pool_hits();
      heap_allocs += pool->heap_allocs();
      heap_frees += pool->heap_frees();
      slab_hits += pool->slab_hits();
      slab_carves += pool->slab_carves();
    } else if (auto* arena = dynamic_cast<alloc::ArenaAllocator*>(
                   &proc->allocator())) {
      any_arena = true;
      arena_contention += arena->contention_events();
    }
    if (proc->comm_pool() != nullptr) {
      any_comm = true;
      sweeps += proc->comm_pool()->sweeps();
      parks += proc->comm_pool()->parks();
    }
  }
  if (any_pool) {
    metrics_.set_gauge("alloc.pool.hits", pool_hits);
    metrics_.set_gauge("alloc.heap.allocs", heap_allocs);
    metrics_.set_gauge("alloc.heap.frees", heap_frees);
    metrics_.set_gauge("alloc.slab.hits", slab_hits);
    metrics_.set_gauge("alloc.slab.carves", slab_carves);
  }
  if (any_arena) {
    metrics_.set_gauge("alloc.arena.contention", arena_contention);
  }
  if (any_comm) {
    metrics_.set_gauge("comm.sweeps", sweeps);
    metrics_.set_gauge("comm.parks", parks);
  }

  // Fault-injection and reliability counters: emitted unconditionally —
  // all zeros on a lossless run — so dashboards and the bench JSON schema
  // see a stable key set whether or not chaos was enabled.
  metrics_.set_gauge("net.drops", fabric_->faults_dropped());
  metrics_.set_gauge("net.dups", fabric_->faults_duplicated());
  metrics_.set_gauge("net.delays", fabric_->faults_delayed());
  metrics_.set_gauge("net.bitflips", fabric_->faults_corrupted());
  metrics_.set_gauge("net.fifo.rejects", fabric_->fifo_rejects());
  metrics_.set_gauge("net.fifo.spills", fabric_->fifo_spills());
  std::uint64_t retx = 0, dup_acks = 0, piggy = 0, alone = 0;
  std::uint64_t corrupt = 0, dedup = 0, stalls = 0;
  std::uint64_t evicted = 0, dead_drops = 0;
  for (const auto& proc : processes_) {
    pami::Client& cl = proc->client();
    for (unsigned i = 0; i < cl.context_count(); ++i) {
      const pami::Context& ctx = cl.context(i);
      retx += ctx.retransmits();
      dup_acks += ctx.dup_acks();
      piggy += ctx.piggybacked_acks();
      alone += ctx.standalone_acks();
      corrupt += ctx.corrupt_drops();
      dedup += ctx.dedup_drops();
      stalls += ctx.backpressure_stalls();
      evicted += ctx.dedup_evictions();
      dead_drops += ctx.dead_peer_drops();
    }
  }
  metrics_.set_gauge("net.retransmits", retx);
  metrics_.set_gauge("net.dup_acks", dup_acks);
  metrics_.set_gauge("net.acks.piggybacked", piggy);
  metrics_.set_gauge("net.acks.standalone", alone);
  metrics_.set_gauge("net.corrupt_drops", corrupt);
  metrics_.set_gauge("net.dedup_drops", dedup);
  metrics_.set_gauge("comm.backpressure_stalls", stalls);
  metrics_.set_gauge("net.dedup.evicted", evicted);
  metrics_.set_gauge("net.dead_peer_drops", dead_drops);
  metrics_.set_gauge("net.blackholed", fabric_->blackholed());

  // Transport counters: stable keys, all zeros for in-process runs.
  const transport::Counters& tc = fabric_->transport().counters();
  metrics_.set_gauge("net.transport.injects",
                     tc.injects.load(std::memory_order_relaxed));
  metrics_.set_gauge("net.transport.polls",
                     tc.polls.load(std::memory_order_relaxed));
  metrics_.set_gauge("net.transport.ring_full",
                     tc.ring_full.load(std::memory_order_relaxed));
  metrics_.set_gauge("net.transport.reconnects",
                     tc.reconnects.load(std::memory_order_relaxed));

  // Fault-tolerance counters: same stable-key-set policy — all zeros on a
  // run with no FT armed.
  metrics_.set_gauge("ft.checkpoints", ft_ ? ft_->checkpoints() : 0);
  metrics_.set_gauge("ft.checkpoints_skipped",
                     ft_ ? ft_->checkpoints_skipped() : 0);
  metrics_.set_gauge("ft.recoveries", ft_ ? ft_->recoveries() : 0);
  metrics_.set_gauge("ft.crashes", ft_ ? ft_->crashes_fired() : 0);
  metrics_.set_gauge("ft.heartbeats", ft_ ? ft_->heartbeats() : 0);
  metrics_.set_gauge("ft.watchdog_dumps", ft_ ? ft_->watchdog_dumps() : 0);
  metrics_.set_gauge("ft.checkpoint_bytes",
                     ft_ ? ft_->checkpoint_bytes() : 0);
  metrics_.set_gauge("ft.recovery_ns", ft_ ? ft_->recovery_ns() : 0);
  metrics_.set_gauge("ft.detect_ns", ft_ ? ft_->detect_ns() : 0);
  metrics_.set_gauge("ft.stale_drops", stale_drops());

  // Trace-ring health: total events lost to full rings and the worst
  // per-ring occupancy high-water mark.  Emitted unconditionally (zeros
  // when tracing is off) so a truncated trace is visible in any report
  // instead of silently biasing the analyzer.
  std::uint64_t ring_drops = 0, ring_hwm = 0;
  for (const auto& rs : trace_.ring_stats()) {
    ring_drops += rs.dropped;
    ring_hwm = std::max(ring_hwm, rs.high_water);
  }
  metrics_.set_gauge("trace.ring.drops", ring_drops);
  metrics_.set_gauge("trace.ring.hwm", ring_hwm);
  return metrics_.report();
}

void Machine::write_chrome_trace(std::ostream& os) {
  trace::write_chrome_trace(os, trace_.collect());
}

void Machine::write_flat_trace(std::ostream& os) {
  trace::write_flat_trace(os, trace_.collect());
}

}  // namespace bgq::cvs
