#include "converse/machine.hpp"

#include <cstring>
#include <stdexcept>

#include "alloc/arena_allocator.hpp"
#include "alloc/pool_allocator.hpp"
#include "common/timing.hpp"

namespace bgq::cvs {

namespace {

// PAMI dispatch ids used by the machine layer.
constexpr std::uint16_t kDispatchEager = 1;
constexpr std::uint16_t kDispatchRzvReq = 2;
constexpr std::uint16_t kDispatchRzvAck = 3;

/// Rendezvous control payload: the source message, read back by rget and
/// freed on ack (same address space stands in for the memory-region
/// handle + offset the real protocol ships).
struct RzvToken {
  Message* src_msg;
};

}  // namespace

thread_local alloc::ThreadId Process::tls_tid_ = 0;

// ---------------------------------------------------------------------------
// Pe
// ---------------------------------------------------------------------------

Pe::Pe(Process& process, PeRank rank, unsigned local_index)
    : process_(process), rank_(rank), local_(local_index) {
  const auto& cfg = process_.machine().config();
  if (cfg.use_l2_atomics) {
    l2_queue_ = std::make_unique<queue::L2AtomicQueue<void*>>(2048);
  } else {
    mutex_queue_ = std::make_unique<queue::MutexQueue<void*>>();
  }
}

Machine& Pe::machine() noexcept { return process_.machine(); }

Message* Pe::alloc_message(std::size_t payload_bytes, HandlerId handler) {
  void* raw = process_.allocator().allocate(
      Process::current_tid(), sizeof(MsgHeader) + payload_bytes);
  auto* m = Message::from_raw(raw);
  m->header() = MsgHeader{};
  m->header().payload_bytes = static_cast<std::uint32_t>(payload_bytes);
  m->header().handler = handler;
  m->header().src_pe = rank_;
  return m;
}

void Pe::free_message(Message* m) {
  process_.allocator().deallocate(Process::current_tid(), m->raw());
}

void Pe::send_message(PeRank dst, Message* m) {
  m->header().dst_pe = dst;
  m->header().src_pe = rank_;
  ++stats_.messages_sent;
  Machine& mach = machine();
  if (mach.process_of(dst) == mach.process_of(rank_)) {
    // Same SMP process: pointer exchange straight into the peer's queue.
    ++stats_.intra_process_sends;
    mach.pe(dst).enqueue(m);
    return;
  }
  ++stats_.network_sends;
  process_.net_send(*this, dst, m);
}

void Pe::send(PeRank dst, HandlerId handler, const void* payload,
              std::size_t bytes) {
  Message* m = alloc_message(bytes, handler);
  if (bytes != 0) std::memcpy(m->payload(), payload, bytes);
  send_message(dst, m);
}

void Pe::broadcast(HandlerId handler, const void* payload, std::size_t bytes,
                   bool skip_self) {
  const auto n = static_cast<PeRank>(machine().pe_count());
  for (PeRank p = 0; p < n; ++p) {
    if (skip_self && p == rank_) continue;
    send(p, handler, payload, bytes);
  }
}

void Pe::enqueue(Message* m) {
  if (l2_queue_) {
    l2_queue_->enqueue(m->raw());
  } else {
    mutex_queue_->enqueue(m->raw());
  }
}

void Pe::execute(Message* m) {
  const HandlerId h = m->header().handler;
  const std::uint64_t t0 = now_ns();
  if (trace_enabled_) trace_.push_back({t0, true, h});
  machine().handler(h)(*this, m);
  const std::uint64_t t1 = now_ns();
  stats_.busy_ns += t1 - t0;
  ++stats_.messages_executed;
  if (trace_enabled_) trace_.push_back({t1, false, h});
}

bool Pe::pump_one() {
  void* raw = l2_queue_ ? l2_queue_->try_dequeue()
                        : mutex_queue_->try_dequeue();
  if (raw != nullptr) {
    execute(Message::from_raw(raw));
    return true;
  }
  // No queued message: progress the network if this worker owns a context
  // (non-SMP and SMP-without-comm-threads modes).
  if (owned_context_ != nullptr) {
    return owned_context_->advance() != 0;
  }
  return false;
}

void Pe::scheduler_loop() {
  Machine& mach = machine();
  const IdlePollPolicy policy = mach.config().idle_policy;
  while (!mach.stopping()) {
    if (pump_one()) continue;
    // Idle poll (§III-D): pace the re-probe so sibling hardware threads
    // keep the core's pipeline (emulated by pause bursts / yields).
    ++stats_.idle_probes;
    switch (policy) {
      case IdlePollPolicy::kHotSpin: cpu_relax(); break;
      case IdlePollPolicy::kL2Paced: l2_paced_delay(); break;
      case IdlePollPolicy::kOsYield: std::this_thread::yield(); break;
    }
  }
}

void Pe::exit_all() { machine().request_stop(); }

void Pe::barrier() { machine().worker_barrier(); }

// ---------------------------------------------------------------------------
// Process
// ---------------------------------------------------------------------------

Process::Process(Machine& machine, pami::EndpointId endpoint)
    : machine_(machine), endpoint_(endpoint) {
  const MachineConfig& cfg = machine.config();
  const unsigned workers = cfg.effective_workers_per_process();
  const unsigned commthreads = cfg.effective_comm_threads();
  const unsigned nthreads = workers + std::max(1u, commthreads);

  if (cfg.use_pool_allocator) {
    allocator_ = std::make_unique<alloc::PoolAllocator>(nthreads);
  } else {
    allocator_ = std::make_unique<alloc::ArenaAllocator>(nthreads);
  }

  client_ = std::make_unique<pami::Client>(machine.fabric(), endpoint,
                                           cfg.contexts_per_process());
  register_dispatches();

  pes_.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    const auto rank = static_cast<PeRank>(
        static_cast<std::size_t>(endpoint) * workers + w);
    pes_.push_back(std::make_unique<Pe>(*this, rank, w));
    pes_.back()->trace_enabled_ = cfg.trace_utilization;
    if (commthreads == 0) {
      // Each worker advances its own context.
      pes_.back()->owned_context_ = &client_->context(w);
    }
  }
}

void Process::register_dispatches() {
  client_->set_dispatch(kDispatchEager, [this](const pami::DispatchArgs& a) {
    on_eager(a);
  });
  client_->set_dispatch(kDispatchRzvReq,
                        [this](const pami::DispatchArgs& a) {
                          on_rendezvous_req(a);
                        });
  client_->set_dispatch(kDispatchRzvAck,
                        [this](const pami::DispatchArgs& a) {
                          on_rendezvous_ack(a);
                        });
}

void Process::net_send(Pe& src_pe, PeRank dst, Message* m) {
  if (comm_pool_ != nullptr) {
    // Offload to a comm thread; spread this worker's traffic over all of
    // them (§III-C even distribution).
    const unsigned idx = pami::CommThreadPool::route(
        src_pe.local_index(), src_pe.send_seq_++,
        client_->context_count());
    pami::Context& ctx = client_->context(idx);
    ctx.post_work([this, &ctx, dst, m] { send_on_context(ctx, dst, m); });
    return;
  }
  send_on_context(*src_pe.owned_context_, dst, m);
}

void Process::send_on_context(pami::Context& ctx, PeRank dst, Message* m) {
  const auto dst_ep =
      static_cast<pami::EndpointId>(machine_.process_of(dst));
  const auto dest_ctx = static_cast<std::uint16_t>(
      m->header().src_pe % machine_.config().contexts_per_process());
  const std::size_t bytes = m->payload_bytes();

  pami::SendParams p;
  p.dest = dst_ep;
  p.dest_context = dest_ctx;
  p.metadata = &m->header();
  p.metadata_bytes = sizeof(MsgHeader);

  if (bytes > machine_.config().eager_max) {
    // Rendezvous (§III): ship a short request carrying the source buffer
    // token; the receiver rgets the payload and acks so we can free.
    RzvToken token{m};
    p.dispatch = kDispatchRzvReq;
    p.payload = &token;
    p.payload_bytes = sizeof(token);
    ctx.send_immediate(p);
    return;  // m stays alive until the ack
  }

  p.dispatch = kDispatchEager;
  p.payload = m->payload();
  p.payload_bytes = bytes;
  if (sizeof(MsgHeader) + bytes <= pami::Context::kImmediateMax) {
    ctx.send_immediate(p);
  } else {
    ctx.send(p);
  }
  // Both send flavours copied the payload: the message is free to go.
  allocator_->deallocate(current_tid(), m->raw());
}

void Process::on_eager(const pami::DispatchArgs& a) {
  MsgHeader hdr;
  std::memcpy(&hdr, a.metadata, sizeof(hdr));
  void* raw = allocator_->allocate(current_tid(),
                                   sizeof(MsgHeader) + a.payload_bytes);
  auto* m = Message::from_raw(raw);
  m->header() = hdr;
  if (a.payload_bytes != 0) {
    std::memcpy(m->payload(), a.payload, a.payload_bytes);
  }
  deliver(m);
}

void Process::deliver(Message* m) {
  const unsigned local = machine_.local_of(m->header().dst_pe);
  if (comm_pool_ == nullptr && pes_.size() == 1) {
    // Non-SMP: the advancing thread *is* the PE; invoke the handler inline
    // straight from the network poll (no cross-thread queue — the source
    // of non-SMP's latency edge in Fig. 4).
    pes_[0]->execute(m);
    return;
  }
  pes_[local]->enqueue(m);
}

void Process::on_rendezvous_req(const pami::DispatchArgs& a) {
  MsgHeader hdr;
  std::memcpy(&hdr, a.metadata, sizeof(hdr));
  RzvToken token;
  std::memcpy(&token, a.payload, sizeof(token));

  void* raw = allocator_->allocate(current_tid(),
                                   sizeof(MsgHeader) + hdr.payload_bytes);
  auto* m = Message::from_raw(raw);
  m->header() = hdr;

  pami::Context* ctx = a.context;
  const pami::EndpointId origin = a.origin;
  const auto src_ctx = static_cast<std::uint16_t>(
      hdr.src_pe % machine_.config().contexts_per_process());

  // Pull the payload from the source buffer, then hand the message to the
  // destination PE and ack the sender so it can free.
  ctx->rget(origin,
            reinterpret_cast<const std::byte*>(token.src_msg->payload()),
            m->payload(), hdr.payload_bytes,
            [this, ctx, origin, src_ctx, token, m] {
              deliver(m);
              pami::SendParams ack;
              ack.dest = origin;
              ack.dest_context = src_ctx;
              ack.dispatch = kDispatchRzvAck;
              ack.payload = &token;
              ack.payload_bytes = sizeof(token);
              ctx->send_immediate(ack);
            });
}

void Process::on_rendezvous_ack(const pami::DispatchArgs& a) {
  RzvToken token;
  std::memcpy(&token, a.payload, sizeof(token));
  allocator_->deallocate(current_tid(), token.src_msg->raw());
}

void Process::start_comm_threads(unsigned n) {
  std::vector<pami::Context*> ctxs;
  for (unsigned i = 0; i < client_->context_count(); ++i) {
    ctxs.push_back(&client_->context(i));
  }
  const unsigned workers = worker_count();
  comm_pool_ = std::make_unique<pami::CommThreadPool>(
      std::move(ctxs), n, [workers](unsigned comm_tid) {
        // Comm threads use allocator slots after the workers'.
        set_current_tid(workers + comm_tid);
      });
}

void Process::stop_comm_threads() {
  if (comm_pool_) comm_pool_->stop();
}

// ---------------------------------------------------------------------------
// Machine
// ---------------------------------------------------------------------------

Machine::Machine(MachineConfig cfg)
    : cfg_(cfg), torus_(topo::Torus::bgq_partition(cfg.nodes)) {
  fabric_ = std::make_unique<net::Fabric>(
      torus_, cfg_.net, cfg_.contexts_per_process(),
      cfg_.effective_processes_per_node());
  const std::size_t nproc = cfg_.process_count();
  processes_.reserve(nproc);
  for (std::size_t p = 0; p < nproc; ++p) {
    processes_.push_back(std::make_unique<Process>(
        *this, static_cast<pami::EndpointId>(p)));
  }
}

Machine::~Machine() {
  for (auto& p : processes_) p->stop_comm_threads();
}

HandlerId Machine::register_handler(HandlerFn fn) {
  handlers_.push_back(std::move(fn));
  return static_cast<HandlerId>(handlers_.size() - 1);
}

void Machine::worker_barrier() { barrier_->arrive_and_wait(); }

void Machine::run(const std::function<void(Pe&)>& init) {
  stop_.store(false, std::memory_order_release);
  barrier_ = std::make_unique<std::barrier<>>(
      static_cast<std::ptrdiff_t>(pe_count()));

  const unsigned commthreads = cfg_.effective_comm_threads();
  if (commthreads != 0) {
    for (auto& p : processes_) p->start_comm_threads(commthreads);
  }

  std::vector<std::thread> workers;
  workers.reserve(pe_count());
  for (auto& proc : processes_) {
    for (unsigned w = 0; w < proc->worker_count(); ++w) {
      Pe* pe = &proc->pe(w);
      workers.emplace_back([this, pe, w, &init] {
        Process::set_current_tid(w);
        worker_barrier();  // everyone exists before any traffic flows
        init(*pe);
        pe->scheduler_loop();
      });
    }
  }
  for (auto& t : workers) t.join();

  for (auto& p : processes_) p->stop_comm_threads();
}

PeStats Machine::aggregate_stats() const {
  PeStats total;
  for (const auto& proc : processes_) {
    for (unsigned w = 0; w < proc->worker_count(); ++w) {
      const PeStats& s =
          const_cast<Process&>(*proc).pe(w).stats();
      total.messages_executed += s.messages_executed;
      total.messages_sent += s.messages_sent;
      total.intra_process_sends += s.intra_process_sends;
      total.network_sends += s.network_sends;
      total.idle_probes += s.idle_probes;
      total.busy_ns += s.busy_ns;
    }
  }
  return total;
}

}  // namespace bgq::cvs
