// QPX (Quad Processing eXtension) emulation (§IV-B.1).
//
// The BG/Q A2 core has a 4-wide double-precision SIMD unit programmed
// through XL compiler intrinsics (vector4double, vec_ld/vec_st/vec_madd
// ...).  The paper vectorizes NAMD's nonbonded inner loop with these
// intrinsics for a 15.8 % serial speedup.
//
// This header reproduces the intrinsic surface over a plain 4-lane value
// type so the MD kernels in src/md are written exactly as QPX code.  The
// operations are expressed lane-wise so the host compiler's auto-
// vectorizer maps them onto SSE/AVX; the *code shape* (manual 4-way
// vectorization, fused multiply-add accumulators, unrolled interpolation
// loads) is the paper's.
#pragma once

#include <cmath>
#include <cstddef>

namespace bgq::qpx {

/// The XL `vector4double`.
struct alignas(32) v4d {
  double v[4];

  double operator[](std::size_t i) const noexcept { return v[i]; }
  double& operator[](std::size_t i) noexcept { return v[i]; }
};

/// vec_splats: broadcast a scalar to all four lanes.
inline v4d vec_splats(double x) noexcept { return v4d{{x, x, x, x}}; }

/// vec_ld: load four contiguous doubles (alignment handled by the host).
inline v4d vec_ld(const double* p) noexcept {
  return v4d{{p[0], p[1], p[2], p[3]}};
}

/// vec_st: store four contiguous doubles.
inline void vec_st(const v4d& a, double* p) noexcept {
  p[0] = a.v[0];
  p[1] = a.v[1];
  p[2] = a.v[2];
  p[3] = a.v[3];
}

/// vec_gather: the emulation's stand-in for four scalar lds feeding a
/// register (QPX code gathers interpolation-table entries this way).
inline v4d vec_gather(const double* p, const int idx[4]) noexcept {
  return v4d{{p[idx[0]], p[idx[1]], p[idx[2]], p[idx[3]]}};
}

inline v4d vec_add(const v4d& a, const v4d& b) noexcept {
  v4d r;
  for (int i = 0; i < 4; ++i) r.v[i] = a.v[i] + b.v[i];
  return r;
}

inline v4d vec_sub(const v4d& a, const v4d& b) noexcept {
  v4d r;
  for (int i = 0; i < 4; ++i) r.v[i] = a.v[i] - b.v[i];
  return r;
}

inline v4d vec_mul(const v4d& a, const v4d& b) noexcept {
  v4d r;
  for (int i = 0; i < 4; ++i) r.v[i] = a.v[i] * b.v[i];
  return r;
}

/// vec_madd: a*b + c (the QPX FMA).
inline v4d vec_madd(const v4d& a, const v4d& b, const v4d& c) noexcept {
  v4d r;
  for (int i = 0; i < 4; ++i) r.v[i] = a.v[i] * b.v[i] + c.v[i];
  return r;
}

/// vec_msub: a*b - c.
inline v4d vec_msub(const v4d& a, const v4d& b, const v4d& c) noexcept {
  v4d r;
  for (int i = 0; i < 4; ++i) r.v[i] = a.v[i] * b.v[i] - c.v[i];
  return r;
}

/// vec_nmsub: c - a*b.
inline v4d vec_nmsub(const v4d& a, const v4d& b, const v4d& c) noexcept {
  v4d r;
  for (int i = 0; i < 4; ++i) r.v[i] = c.v[i] - a.v[i] * b.v[i];
  return r;
}

inline v4d vec_neg(const v4d& a) noexcept {
  v4d r;
  for (int i = 0; i < 4; ++i) r.v[i] = -a.v[i];
  return r;
}

inline v4d vec_min(const v4d& a, const v4d& b) noexcept {
  v4d r;
  for (int i = 0; i < 4; ++i) r.v[i] = a.v[i] < b.v[i] ? a.v[i] : b.v[i];
  return r;
}

inline v4d vec_max(const v4d& a, const v4d& b) noexcept {
  v4d r;
  for (int i = 0; i < 4; ++i) r.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
  return r;
}

/// vec_swdiv: software divide (QPX has no hardware divide; XL emits a
/// reciprocal-estimate + Newton iteration sequence).
inline v4d vec_swdiv(const v4d& a, const v4d& b) noexcept {
  v4d r;
  for (int i = 0; i < 4; ++i) r.v[i] = a.v[i] / b.v[i];
  return r;
}

/// vec_rsqrte + Newton refinement, packaged as the full-accuracy rsqrt the
/// kernels use.
inline v4d vec_rsqrt(const v4d& a) noexcept {
  v4d r;
  for (int i = 0; i < 4; ++i) r.v[i] = 1.0 / std::sqrt(a.v[i]);
  return r;
}

/// Lane select: r[i] = mask[i] >= 0 ? b[i] : a[i]  (QPX vec_sel semantics
/// with sign-based predicates).
inline v4d vec_sel(const v4d& a, const v4d& b, const v4d& mask) noexcept {
  v4d r;
  for (int i = 0; i < 4; ++i) r.v[i] = mask.v[i] >= 0.0 ? b.v[i] : a.v[i];
  return r;
}

/// Compare greater-or-equal: lane = +1.0 where a >= b else -1.0 (QPX
/// predicates are sign encoded).
inline v4d vec_cmpge(const v4d& a, const v4d& b) noexcept {
  v4d r;
  for (int i = 0; i < 4; ++i) r.v[i] = a.v[i] >= b.v[i] ? 1.0 : -1.0;
  return r;
}

/// Horizontal sum (the reduction QPX codes do with vec_sldw shuffles).
inline double vec_reduce_add(const v4d& a) noexcept {
  return (a.v[0] + a.v[1]) + (a.v[2] + a.v[3]);
}

}  // namespace bgq::qpx
