// Shared-memory transport: the job's OS processes map one POSIX shm
// segment holding a P×P matrix of SPSC byte rings (ring[i][j] carries
// frames from rank i to rank j), modeled after the MU reception FIFOs.
//
// Rank 0 creates and initializes the segment and publishes a ready flag;
// the other ranks retry-attach until it appears.  Endpoint death flags
// and last-heard stamps live in the segment header, so the sender-side
// liveness stamping performed by each rank's fabric is observed by every
// other rank's failure detector — the same single-writer-per-slot
// discipline as the in-process fabric, just in a shared mapping.
//
// Frames larger than the ring capacity can never be pushed; the
// transport rejects them loudly (raise ring_kb) instead of deadlocking.
// A full ring backpressures the producer (net.transport.ring_full); the
// stall breaks if the consumer's endpoint is declared dead.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "transport/shm_ring.hpp"
#include "transport/transport.hpp"

namespace bgq::transport {

struct ShmHeader;

class ShmTransport final : public Transport {
 public:
  /// Attaches (rank != 0) or creates (rank 0) the session's segment.
  /// Throws std::runtime_error on shm/mmap failure or attach timeout.
  explicit ShmTransport(const Config& cfg);
  ~ShmTransport() override;

  Kind kind() const noexcept override { return Kind::kShm; }
  bool endpoint_local(topo::NodeId ep) const noexcept override {
    return static_cast<unsigned>(ep) == rank_;
  }

  void inject(net::Packet* p) override;
  std::size_t poll() override;
  void send_ctrl(int dst, const CtrlMsg& m) override;

  // Liveness and death state is shared across the job (segment header).
  void kill_endpoint(topo::NodeId ep) override;
  bool endpoint_dead(topo::NodeId ep) const noexcept override;
  std::uint64_t last_heard(topo::NodeId ep) const noexcept override;
  void touch_liveness(topo::NodeId ep, std::uint64_t t) noexcept override;

  const std::string& segment_name() const noexcept { return name_; }

  /// Remove a session's segment from the namespace (launcher cleanup;
  /// idempotent, missing segment is not an error).
  static void unlink_session(const std::string& session);

 private:
  void push_frame(unsigned dst, const std::vector<std::byte>& frame,
                  bool ctrl);
  std::size_t drain_ring(unsigned src);

  const unsigned rank_;
  const unsigned nprocs_;
  std::string name_;
  int fd_ = -1;
  void* base_ = nullptr;
  std::size_t map_bytes_ = 0;
  ShmHeader* hdr_ = nullptr;

  std::vector<ShmRingView> tx_;  ///< ring(rank_ -> j), indexed by j
  std::vector<ShmRingView> rx_;  ///< ring(i -> rank_), indexed by i
  /// Process-local producer serialization per outbound ring (workers and
  /// comm threads inject concurrently; the ring itself is SPSC).
  std::vector<std::unique_ptr<std::mutex>> tx_mu_;
  std::mutex poll_mu_;  ///< single-consumer guard (try_lock in poll)
  std::vector<std::byte> rx_scratch_;
};

}  // namespace bgq::transport
