#include "transport/config.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace bgq::transport {

namespace {

[[noreturn]] void bad(std::string_view spec, const std::string& why) {
  throw std::invalid_argument("transport spec \"" + std::string(spec) +
                              "\": " + why);
}

unsigned long parse_ul(std::string_view spec, std::string_view tok,
                       const std::string& key) {
  std::size_t used = 0;
  unsigned long v = 0;
  try {
    v = std::stoul(std::string(tok), &used);
  } catch (const std::exception&) {
    bad(spec, "bad number for " + key + ": \"" + std::string(tok) + "\"");
  }
  if (used != tok.size()) {
    bad(spec, "bad number for " + key + ": \"" + std::string(tok) + "\"");
  }
  return v;
}

}  // namespace

Config Config::parse(std::string_view spec) {
  Config c;
  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    std::string_view tok = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (tok.empty()) continue;
    const std::size_t eq = tok.find('=');
    if (eq == std::string_view::npos) {
      bad(spec, "token \"" + std::string(tok) + "\" is not key=value");
    }
    const std::string key(tok.substr(0, eq));
    const std::string_view val = tok.substr(eq + 1);
    if (key == "kind") {
      if (val == "inproc") {
        c.kind = Kind::kInProc;
      } else if (val == "shm") {
        c.kind = Kind::kShm;
      } else if (val == "socket") {
        c.kind = Kind::kSocket;
      } else {
        bad(spec, "unknown kind \"" + std::string(val) + "\"");
      }
    } else if (key == "nprocs") {
      c.nprocs = static_cast<unsigned>(parse_ul(spec, val, key));
      if (c.nprocs == 0) bad(spec, "nprocs must be >= 1");
    } else if (key == "rank") {
      c.rank = static_cast<unsigned>(parse_ul(spec, val, key));
    } else if (key == "session") {
      if (val.empty()) bad(spec, "empty session");
      c.session = std::string(val);
    } else if (key == "ring_kb") {
      const unsigned long kb = parse_ul(spec, val, key);
      if (kb == 0) bad(spec, "ring_kb must be >= 1");
      c.ring_bytes = static_cast<std::size_t>(kb) * 1024;
    } else if (key == "tcp") {
      const unsigned long v = parse_ul(spec, val, key);
      if (v > 1) bad(spec, "tcp must be 0 or 1");
      c.use_tcp = v != 0;
    } else if (key == "port") {
      const unsigned long v = parse_ul(spec, val, key);
      if (v == 0 || v > 65535) bad(spec, "port out of range");
      c.base_port = static_cast<std::uint16_t>(v);
    } else if (key == "dir") {
      if (val.empty()) bad(spec, "empty dir");
      c.socket_dir = std::string(val);
    } else {
      bad(spec, "unknown key \"" + key + "\"");
    }
  }
  if (c.rank >= c.nprocs) {
    bad(spec, "rank " + std::to_string(c.rank) + " out of range for nprocs " +
                  std::to_string(c.nprocs));
  }
  return c;
}

Config Config::from_env() {
  const char* env = std::getenv("BGQ_TRANSPORT");
  if (env == nullptr || *env == '\0') return Config{};
  try {
    return parse(env);
  } catch (const std::invalid_argument& e) {
    // A typo'd BGQ_TRANSPORT must not silently run the job single-process:
    // the other ranks of the launch would hang waiting for this one.
    std::fprintf(stderr, "BGQ_TRANSPORT: %s\n", e.what());
    std::exit(2);
  }
}

std::string Config::to_spec() const {
  std::string s = "kind=";
  s += kind_name(kind);
  s += ",nprocs=" + std::to_string(nprocs);
  s += ",rank=" + std::to_string(rank);
  s += ",session=" + session;
  s += ",ring_kb=" + std::to_string(ring_bytes / 1024);
  if (kind == Kind::kSocket) {
    s += ",tcp=" + std::to_string(use_tcp ? 1 : 0);
    s += ",port=" + std::to_string(base_port);
    s += ",dir=" + socket_dir;
  }
  return s;
}

}  // namespace bgq::transport
