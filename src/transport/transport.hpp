// The fabric's delivery contract, extracted behind an interface so the
// emulated machine can run over different byte-moving disciplines
// without the layers above (PAMI reliability, fault plans, causal
// tracing, FT heartbeats and buddy checkpoints) noticing.
//
// A Transport owns four things:
//
//   * the *data plane*: inject() ships a fabric Packet whose destination
//     endpoint lives in another OS process; poll() drains inbound frames
//     and hands reassembled packets to the DeliverySink (the fabric),
//     which performs the local reception-FIFO handoff exactly as for an
//     in-process transfer;
//   * the *control plane*: small reliable ordered frames the machine
//     layer uses for its distributed services (barrier merges, stop,
//     checkpoint blobs).  Control frames bypass the chaos layer — they
//     model the out-of-band service network, not the torus;
//   * *endpoint liveness*: per-endpoint death flags, last-heard stamps
//     and the blackhole counter used to live in Fabric; they are
//     delivery-discipline state (a shared-memory job shares the stamps,
//     a socket job learns liveness from frame arrivals), so they live
//     here and the fabric forwards;
//   * *counters*: injects/polls/ring_full/reconnects, exported as
//     net.transport.* gauges.
//
// Dependency direction: this header depends only on the header-only
// packet descriptor; backends never include fabric.hpp.  The fabric
// depends on the transport (bgq_net links bgq_transport), implements
// DeliverySink, and defaults to an InProcTransport that reproduces the
// old behavior bit-identically.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "net/packet.hpp"
#include "transport/config.hpp"

namespace bgq::transport {

/// One machine-layer control message.  `type` is owned by the machine
/// layer (converse/machine.cpp defines the registry); a/b/c are small
/// scalar arguments and `blob` carries bulk payloads (checkpoint blobs).
struct CtrlMsg {
  std::uint16_t type = 0;
  std::uint32_t origin = 0;  ///< sender's transport rank
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  std::vector<std::byte> blob;
};

/// Where inbound data-plane packets go (the fabric implements this with
/// its reception-FIFO handoff).
class DeliverySink {
 public:
  virtual ~DeliverySink() = default;
  /// Takes ownership of `p` (kMemFifo only — RDMA kinds never cross
  /// address spaces; the machine layer forces the eager protocol for
  /// remote-process destinations).
  virtual void deliver_remote(net::Packet* p) = 0;
};

using CtrlHandler = std::function<void(const CtrlMsg&)>;

/// Transport counters (net.transport.* gauges).  Plain atomics: writers
/// are the injecting threads and the polling thread.
struct Counters {
  std::atomic<std::uint64_t> injects{0};    ///< data packets shipped out
  std::atomic<std::uint64_t> polls{0};      ///< poll() calls
  std::atomic<std::uint64_t> frames_in{0};  ///< data+ctrl frames received
  std::atomic<std::uint64_t> bytes_out{0};
  std::atomic<std::uint64_t> bytes_in{0};
  std::atomic<std::uint64_t> ring_full{0};   ///< producer stalls on a full ring
  std::atomic<std::uint64_t> reconnects{0};  ///< socket connect retries
  std::atomic<std::uint64_t> ctrl_out{0};
  std::atomic<std::uint64_t> ctrl_in{0};
};

class Transport {
 public:
  explicit Transport(std::size_t endpoints) : endpoints_(endpoints) {
    dead_ = std::vector<std::atomic<bool>>(endpoints);
    last_heard_ = std::vector<std::atomic<std::uint64_t>>(endpoints);
  }
  virtual ~Transport() = default;

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  virtual Kind kind() const noexcept = 0;
  std::size_t endpoint_count() const noexcept { return endpoints_; }

  /// True when packets to endpoint `ep` are delivered by the local
  /// fabric's in-memory handoff (no transport hop).
  virtual bool endpoint_local(topo::NodeId ep) const noexcept = 0;

  // ---- data plane --------------------------------------------------------

  /// Ship a packet whose destination endpoint is remote.  Takes
  /// ownership.  Lossless and per-pair ordered (chaos is injected on the
  /// sender's fabric *before* this call, exactly where the in-process
  /// fabric rolls its dice).
  virtual void inject(net::Packet* p) = 0;

  /// Drain inbound frames: data packets go to the sink, control messages
  /// to the ctrl handler.  Returns frames processed.  Single consumer.
  virtual std::size_t poll() = 0;

  /// Push out any locally queued bytes (socket write backlogs).  Called
  /// around barriers and at shutdown; lossless transports may no-op.
  virtual void flush() {}

  // ---- control plane -----------------------------------------------------

  /// Send a control message to rank `dst` (-1 = every other rank).
  /// Reliable, per-pair FIFO with respect to other ctrl *and* data
  /// frames on the same pair.  No-op for in-process transports.
  virtual void send_ctrl(int dst, const CtrlMsg& m) {
    (void)dst;
    (void)m;
  }

  void set_sink(DeliverySink* s) noexcept { sink_ = s; }
  void set_ctrl_handler(CtrlHandler h) { on_ctrl_ = std::move(h); }

  // ---- endpoint liveness & death (backend-agnostic home) -----------------

  /// Blackhole an endpoint: every future transfer from or to it is
  /// swallowed, modeling a dead node's NIC.  Irreversible for the run.
  virtual void kill_endpoint(topo::NodeId ep) {
    dead_[ep].store(true, std::memory_order_release);
  }
  virtual bool endpoint_dead(topo::NodeId ep) const noexcept {
    return dead_[ep].load(std::memory_order_acquire);
  }

  /// Turn on last-heard stamping (one clock read per transfer; off by
  /// default, the failure detector enables it).
  virtual void enable_liveness() noexcept {
    liveness_.store(true, std::memory_order_release);
  }
  bool liveness_enabled() const noexcept {
    return liveness_.load(std::memory_order_acquire);
  }
  /// Last ns timestamp endpoint `ep` was heard from (0 = never).
  virtual std::uint64_t last_heard(topo::NodeId ep) const noexcept {
    return last_heard_[ep].load(std::memory_order_acquire);
  }
  virtual void touch_liveness(topo::NodeId ep, std::uint64_t t) noexcept {
    last_heard_[ep].store(t, std::memory_order_release);
  }

  /// Transfers swallowed because an endpoint on either side was dead.
  std::uint64_t blackholed() const noexcept {
    return blackholed_.load(std::memory_order_relaxed);
  }
  void note_blackholed() noexcept {
    blackholed_.fetch_add(1, std::memory_order_relaxed);
  }

  const Counters& counters() const noexcept { return counters_; }

 protected:
  void handle_ctrl(const CtrlMsg& m) {
    counters_.ctrl_in.fetch_add(1, std::memory_order_relaxed);
    if (on_ctrl_) on_ctrl_(m);
  }

  const std::size_t endpoints_;
  DeliverySink* sink_ = nullptr;
  CtrlHandler on_ctrl_;
  Counters counters_;

  std::vector<std::atomic<bool>> dead_;
  std::vector<std::atomic<std::uint64_t>> last_heard_;
  std::atomic<bool> liveness_{false};
  std::atomic<std::uint64_t> blackholed_{0};
};

/// The in-process "transport": every endpoint is local, so the data and
/// control planes are never exercised.  Exists so the fabric has exactly
/// one home for death/liveness state regardless of backend — with this
/// default the refactored fabric is bit-identical to the old one.
class InProcTransport final : public Transport {
 public:
  explicit InProcTransport(std::size_t endpoints) : Transport(endpoints) {}

  Kind kind() const noexcept override { return Kind::kInProc; }
  bool endpoint_local(topo::NodeId) const noexcept override { return true; }

  void inject(net::Packet* p) override {
    delete p;
    throw std::logic_error(
        "InProcTransport::inject: every endpoint is local");
  }
  std::size_t poll() override {
    counters_.polls.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
};

}  // namespace bgq::transport
