#include "transport/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "common/timing.hpp"
#include "transport/wire.hpp"

namespace bgq::transport {

namespace {

[[noreturn]] void die(const std::string& what) {
  throw std::runtime_error("socket transport: " + what + ": " +
                           std::strerror(errno));
}

/// Blocking write of the whole buffer (EINTR-safe).  Returns false when
/// the peer is gone (EPIPE/ECONNRESET) — any other failure throws.
bool send_all(int fd, const std::byte* p, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) return false;
      die("send");
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

/// Blocking read of exactly `n` bytes (handshake only).
bool recv_all(int fd, std::byte* p, std::size_t n) {
  while (n > 0) {
    const ssize_t r = ::recv(fd, p, n, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

std::string SocketTransport::uds_path(unsigned rank) const {
  return cfg_.socket_dir + "/" + cfg_.session + "." + std::to_string(rank) +
         ".sock";
}

SocketTransport::SocketTransport(const Config& cfg)
    : Transport(cfg.nprocs), cfg_(cfg), rank_(cfg.rank), nprocs_(cfg.nprocs) {
  peers_.resize(nprocs_);
  for (auto& p : peers_) p.write_mu = std::make_unique<std::mutex>();

  // Listener first: lower ranks must be accept-ready before higher ranks
  // connect, and bringing it up before any connect() makes the mesh
  // bring-up order-free across concurrently launched ranks.
  if (cfg_.use_tcp) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) die("socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(cfg_.base_port + rank_));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
        0) {
      die("bind(port " + std::to_string(cfg_.base_port + rank_) + ")");
    }
  } else {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) die("socket");
    const std::string path = uds_path(rank_);
    ::unlink(path.c_str());
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path) {
      throw std::runtime_error("socket transport: path too long: " + path);
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
        0) {
      die("bind(" + path + ")");
    }
  }
  if (::listen(listen_fd_, static_cast<int>(nprocs_)) != 0) die("listen");

  for (unsigned q = 0; q < rank_; ++q) connect_to(q);
  accept_from_higher();
}

void SocketTransport::connect_to(unsigned peer) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  for (;;) {
    int fd = -1;
    if (cfg_.use_tcp) {
      fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) die("socket");
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port =
          htons(static_cast<std::uint16_t>(cfg_.base_port + peer));
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) ==
          0) {
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      } else {
        ::close(fd);
        fd = -1;
      }
    } else {
      fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd < 0) die("socket");
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      const std::string path = uds_path(peer);
      std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
          0) {
        ::close(fd);
        fd = -1;
      }
    }
    if (fd >= 0) {
      std::byte hello[4];
      for (int i = 0; i < 4; ++i) {
        hello[i] = static_cast<std::byte>((rank_ >> (8 * i)) & 0xff);
      }
      if (send_all(fd, hello, sizeof hello)) {
        peers_[peer].fd = fd;
        peers_[peer].open = true;
        return;
      }
      ::close(fd);
    }
    counters_.reconnects.fetch_add(1, std::memory_order_relaxed);
    if (std::chrono::steady_clock::now() > deadline) {
      throw std::runtime_error("socket transport: rank " +
                               std::to_string(rank_) +
                               " could not reach rank " +
                               std::to_string(peer));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void SocketTransport::accept_from_higher() {
  for (unsigned n = rank_ + 1; n < nprocs_; ++n) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) die("accept");
    std::byte hello[4];
    if (!recv_all(fd, hello, sizeof hello)) {
      ::close(fd);
      throw std::runtime_error("socket transport: peer vanished in hello");
    }
    unsigned peer = 0;
    for (int i = 0; i < 4; ++i) {
      peer |= static_cast<unsigned>(hello[i]) << (8 * i);
    }
    if (peer <= rank_ || peer >= nprocs_ || peers_[peer].open) {
      ::close(fd);
      throw std::runtime_error("socket transport: bad hello rank " +
                               std::to_string(peer));
    }
    if (cfg_.use_tcp) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    }
    peers_[peer].fd = fd;
    peers_[peer].open = true;
  }
}

SocketTransport::~SocketTransport() {
  for (auto& p : peers_) {
    if (p.fd >= 0) ::close(p.fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (!cfg_.use_tcp) ::unlink(uds_path(rank_).c_str());
}

void SocketTransport::send_frame(unsigned dst,
                                 const std::vector<std::byte>& frame,
                                 bool ctrl) {
  Peer& peer = peers_[dst];
  std::lock_guard<std::mutex> lock(*peer.write_mu);
  if (!peer.open) {
    note_blackholed();
    return;
  }
  if (!send_all(peer.fd, frame.data(), frame.size())) {
    // The peer process is gone.  Park the connection; the failure
    // detector declares the death from heartbeat silence.
    peer.open = false;
    note_blackholed();
    return;
  }
  counters_.bytes_out.fetch_add(frame.size(), std::memory_order_relaxed);
  if (ctrl) {
    counters_.ctrl_out.fetch_add(1, std::memory_order_relaxed);
  } else {
    counters_.injects.fetch_add(1, std::memory_order_relaxed);
  }
}

void SocketTransport::inject(net::Packet* p) {
  const unsigned dst = static_cast<unsigned>(p->dst);
  std::vector<std::byte> frame;
  try {
    wire::encode_packet(*p, frame);
  } catch (...) {
    delete p;
    throw;
  }
  delete p;
  send_frame(dst, frame, /*ctrl=*/false);
}

void SocketTransport::send_ctrl(int dst, const CtrlMsg& m) {
  std::vector<std::byte> frame;
  wire::encode_ctrl(m, frame);
  if (dst >= 0) {
    send_frame(static_cast<unsigned>(dst), frame, /*ctrl=*/true);
    return;
  }
  for (unsigned j = 0; j < nprocs_; ++j) {
    if (j != rank_) send_frame(j, frame, /*ctrl=*/true);
  }
}

std::size_t SocketTransport::parse_frames(unsigned src) {
  Peer& peer = peers_[src];
  std::size_t frames = 0;
  std::size_t off = 0;
  while (peer.rxbuf.size() - off >= wire::kFrameOverhead) {
    const std::byte* h = peer.rxbuf.data() + off;
    std::uint32_t body_len = 0;
    for (int i = 0; i < 4; ++i) {
      body_len |= static_cast<std::uint32_t>(h[i]) << (8 * i);
    }
    if (body_len == 0) {
      throw std::runtime_error("socket transport: zero-length frame");
    }
    if (peer.rxbuf.size() - off < 4u + body_len) break;  // partial frame
    const std::uint8_t type = static_cast<std::uint8_t>(h[4]);
    const std::byte* body = h + wire::kFrameOverhead;
    const std::size_t body_bytes = body_len - 1;
    counters_.frames_in.fetch_add(1, std::memory_order_relaxed);
    ++frames;
    if (type == wire::kFrameData) {
      // The sink (fabric) stamps the origin's liveness on delivery.
      net::Packet* p = wire::decode_packet(body, body_bytes);
      if (sink_ != nullptr) {
        sink_->deliver_remote(p);
      } else {
        delete p;
      }
    } else {
      const CtrlMsg m = wire::decode_ctrl(body, body_bytes);
      if (liveness_enabled() && m.origin < nprocs_) {
        touch_liveness(static_cast<topo::NodeId>(m.origin), now_ns());
      }
      handle_ctrl(m);
    }
    off += 4u + body_len;
  }
  if (off > 0) {
    peer.rxbuf.erase(peer.rxbuf.begin(),
                     peer.rxbuf.begin() + static_cast<std::ptrdiff_t>(off));
  }
  return frames;
}

std::size_t SocketTransport::drain_peer(unsigned src) {
  Peer& peer = peers_[src];
  if (!peer.open) return 0;
  std::byte chunk[16384];
  for (;;) {
    const ssize_t r = ::recv(peer.fd, chunk, sizeof chunk, MSG_DONTWAIT);
    if (r > 0) {
      counters_.bytes_in.fetch_add(static_cast<std::uint64_t>(r),
                                   std::memory_order_relaxed);
      peer.rxbuf.insert(peer.rxbuf.end(), chunk, chunk + r);
      continue;
    }
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (r < 0 && errno == EINTR) continue;
    // EOF or reset: the peer process exited.  Keep whatever complete
    // frames already arrived; the detector handles the death.
    peer.open = false;
    break;
  }
  return parse_frames(src);
}

std::size_t SocketTransport::poll() {
  std::unique_lock<std::mutex> lock(poll_mu_, std::try_to_lock);
  if (!lock.owns_lock()) return 0;
  counters_.polls.fetch_add(1, std::memory_order_relaxed);
  if (liveness_enabled()) touch_liveness(rank_, now_ns());
  std::size_t frames = 0;
  for (unsigned i = 0; i < nprocs_; ++i) {
    if (i != rank_) frames += drain_peer(i);
  }
  return frames;
}

}  // namespace bgq::transport
