#include "transport/shm.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "common/timing.hpp"
#include "transport/wire.hpp"

namespace bgq::transport {

namespace {

constexpr std::uint64_t kShmMagic = 0x42475153484d3031ull;  // "BGQSHM01"
constexpr unsigned kMaxShmEndpoints = 64;

std::size_t align64(std::size_t n) { return (n + 63) & ~std::size_t{63}; }

std::string segment_path(const std::string& session) {
  return "/bgq-" + session;
}

}  // namespace

/// Segment header: creation handshake + the job-shared liveness state.
struct ShmHeader {
  std::uint64_t magic;
  std::uint32_t nprocs;
  std::uint64_t ring_bytes;
  std::atomic<std::uint32_t> ready;
  std::atomic<std::uint32_t> attached;
  alignas(64) std::atomic<std::uint32_t> dead[kMaxShmEndpoints];
  alignas(64) std::atomic<std::uint64_t> last_heard[kMaxShmEndpoints];
};

static_assert(std::atomic<std::uint64_t>::is_always_lock_free &&
                  std::atomic<std::uint32_t>::is_always_lock_free,
              "shared-segment atomics must be address-free");

ShmTransport::ShmTransport(const Config& cfg)
    : Transport(cfg.nprocs), rank_(cfg.rank), nprocs_(cfg.nprocs) {
  if (nprocs_ > kMaxShmEndpoints) {
    throw std::runtime_error("shm transport: nprocs > " +
                             std::to_string(kMaxShmEndpoints));
  }
  name_ = segment_path(cfg.session);

  const std::size_t slice =
      align64(sizeof(ShmRingCtrl)) + align64(cfg.ring_bytes);
  const std::size_t rings_off = align64(sizeof(ShmHeader));
  map_bytes_ = rings_off + static_cast<std::size_t>(nprocs_) * nprocs_ * slice;

  if (rank_ == 0) {
    // A stale segment from a crashed prior job with the same session tag
    // would hand us garbage indices; always start from a fresh one.
    ::shm_unlink(name_.c_str());
    fd_ = ::shm_open(name_.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
    if (fd_ < 0) {
      throw std::runtime_error("shm_open(create " + name_ +
                               "): " + std::strerror(errno));
    }
    if (::ftruncate(fd_, static_cast<off_t>(map_bytes_)) != 0) {
      throw std::runtime_error("ftruncate(" + name_ +
                               "): " + std::strerror(errno));
    }
  } else {
    // Retry-attach: our launcher starts all ranks at once, so rank 0 may
    // not have created the segment yet.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    for (;;) {
      fd_ = ::shm_open(name_.c_str(), O_RDWR, 0600);
      if (fd_ >= 0) {
        struct stat st {};
        if (::fstat(fd_, &st) == 0 &&
            static_cast<std::size_t>(st.st_size) >= map_bytes_) {
          break;  // created and sized; header handshake below
        }
        ::close(fd_);
        fd_ = -1;
      }
      if (std::chrono::steady_clock::now() > deadline) {
        throw std::runtime_error("shm transport: timed out attaching to " +
                                 name_);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  base_ = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE, MAP_SHARED,
                 fd_, 0);
  if (base_ == MAP_FAILED) {
    base_ = nullptr;
    throw std::runtime_error("mmap(" + name_ + "): " + std::strerror(errno));
  }
  hdr_ = static_cast<ShmHeader*>(base_);

  auto* bytes = static_cast<std::byte*>(base_);
  auto ring_at = [&](unsigned i, unsigned j) {
    std::byte* p = bytes + rings_off +
                   (static_cast<std::size_t>(i) * nprocs_ + j) * slice;
    return ShmRingView(reinterpret_cast<ShmRingCtrl*>(p),
                       p + align64(sizeof(ShmRingCtrl)), cfg.ring_bytes);
  };

  if (rank_ == 0) {
    // ftruncate zero-fills, so the ring indices, death flags and stamps
    // are already in their initial state; placement-construction would
    // re-zero the same bits.  Publish the header last.
    hdr_->nprocs = nprocs_;
    hdr_->ring_bytes = cfg.ring_bytes;
    hdr_->magic = kShmMagic;
    hdr_->ready.store(1, std::memory_order_release);
  } else {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (hdr_->ready.load(std::memory_order_acquire) == 0) {
      if (std::chrono::steady_clock::now() > deadline) {
        throw std::runtime_error("shm transport: segment " + name_ +
                                 " never became ready");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (hdr_->magic != kShmMagic || hdr_->nprocs != nprocs_ ||
        hdr_->ring_bytes != cfg.ring_bytes) {
      throw std::runtime_error(
          "shm transport: segment " + name_ +
          " does not match this rank's config (session collision?)");
    }
  }
  hdr_->attached.fetch_add(1, std::memory_order_acq_rel);

  tx_.resize(nprocs_);
  rx_.resize(nprocs_);
  tx_mu_.resize(nprocs_);
  for (unsigned j = 0; j < nprocs_; ++j) {
    tx_[j] = ring_at(rank_, j);
    rx_[j] = ring_at(j, rank_);
    tx_mu_[j] = std::make_unique<std::mutex>();
  }
  rx_scratch_.resize(cfg.ring_bytes);
}

ShmTransport::~ShmTransport() {
  if (base_ != nullptr) ::munmap(base_, map_bytes_);
  if (fd_ >= 0) ::close(fd_);
  if (rank_ == 0) ::shm_unlink(name_.c_str());
}

void ShmTransport::unlink_session(const std::string& session) {
  ::shm_unlink(segment_path(session).c_str());
}

void ShmTransport::kill_endpoint(topo::NodeId ep) {
  hdr_->dead[ep].store(1, std::memory_order_release);
}

bool ShmTransport::endpoint_dead(topo::NodeId ep) const noexcept {
  return hdr_->dead[ep].load(std::memory_order_acquire) != 0;
}

std::uint64_t ShmTransport::last_heard(topo::NodeId ep) const noexcept {
  return hdr_->last_heard[ep].load(std::memory_order_acquire);
}

void ShmTransport::touch_liveness(topo::NodeId ep, std::uint64_t t) noexcept {
  hdr_->last_heard[ep].store(t, std::memory_order_release);
}

void ShmTransport::push_frame(unsigned dst,
                              const std::vector<std::byte>& frame,
                              bool ctrl) {
  if (frame.size() > tx_[dst].capacity()) {
    throw std::runtime_error(
        "shm transport: frame of " + std::to_string(frame.size()) +
        " bytes exceeds ring capacity " + std::to_string(tx_[dst].capacity()) +
        " (raise ring_kb)");
  }
  std::lock_guard<std::mutex> lock(*tx_mu_[dst]);
  bool counted_full = false;
  while (!tx_[dst].try_push(frame.data(), frame.size())) {
    if (!counted_full) {
      counters_.ring_full.fetch_add(1, std::memory_order_relaxed);
      counted_full = true;
    }
    // A dead consumer will never drain its ring; dropping mirrors the
    // in-process fabric's blackhole.  Control frames to a declared-dead
    // rank are equally undeliverable.
    if (endpoint_dead(static_cast<topo::NodeId>(dst))) {
      note_blackholed();
      return;
    }
    std::this_thread::yield();
  }
  counters_.bytes_out.fetch_add(frame.size(), std::memory_order_relaxed);
  if (ctrl) {
    counters_.ctrl_out.fetch_add(1, std::memory_order_relaxed);
  } else {
    counters_.injects.fetch_add(1, std::memory_order_relaxed);
  }
}

void ShmTransport::inject(net::Packet* p) {
  const unsigned dst = static_cast<unsigned>(p->dst);
  std::vector<std::byte> frame;
  try {
    wire::encode_packet(*p, frame);
  } catch (...) {
    delete p;
    throw;
  }
  delete p;
  push_frame(dst, frame, /*ctrl=*/false);
}

void ShmTransport::send_ctrl(int dst, const CtrlMsg& m) {
  std::vector<std::byte> frame;
  wire::encode_ctrl(m, frame);
  if (dst >= 0) {
    push_frame(static_cast<unsigned>(dst), frame, /*ctrl=*/true);
    return;
  }
  for (unsigned j = 0; j < nprocs_; ++j) {
    if (j != rank_) push_frame(j, frame, /*ctrl=*/true);
  }
}

std::size_t ShmTransport::drain_ring(unsigned src) {
  ShmRingView& ring = rx_[src];
  std::size_t frames = 0;
  std::byte head[wire::kFrameOverhead];
  while (ring.peek(0, head, sizeof head)) {
    std::uint32_t body_len = 0;
    for (int i = 0; i < 4; ++i) {
      body_len |= static_cast<std::uint32_t>(head[i]) << (8 * i);
    }
    const std::uint8_t type = static_cast<std::uint8_t>(head[4]);
    if (body_len == 0) {
      throw std::runtime_error("shm transport: zero-length frame in ring");
    }
    if (body_len + 1u > rx_scratch_.size()) rx_scratch_.resize(body_len + 1);
    // body_len counts the type byte; the remaining body follows the header.
    const std::size_t body = body_len - 1;
    if (!ring.peek(sizeof head, rx_scratch_.data(), body)) {
      // Cannot happen: try_push publishes whole frames.  Treat a torn
      // frame as corruption rather than spinning forever.
      throw std::runtime_error("shm transport: torn frame in ring");
    }
    ring.consume(sizeof head - 1 + body_len);
    counters_.frames_in.fetch_add(1, std::memory_order_relaxed);
    counters_.bytes_in.fetch_add(sizeof head + body, std::memory_order_relaxed);
    ++frames;
    if (type == wire::kFrameData) {
      net::Packet* p = wire::decode_packet(rx_scratch_.data(), body);
      if (sink_ != nullptr) {
        sink_->deliver_remote(p);
      } else {
        delete p;
      }
    } else {
      handle_ctrl(wire::decode_ctrl(rx_scratch_.data(), body));
    }
  }
  return frames;
}

std::size_t ShmTransport::poll() {
  std::unique_lock<std::mutex> lock(poll_mu_, std::try_to_lock);
  if (!lock.owns_lock()) return 0;
  counters_.polls.fetch_add(1, std::memory_order_relaxed);
  std::size_t frames = 0;
  for (unsigned i = 0; i < nprocs_; ++i) {
    if (i != rank_) frames += drain_ring(i);
  }
  return frames;
}

}  // namespace bgq::transport
