// Stream-socket transport: a full mesh of Unix-domain (or TCP loopback)
// connections with length-prefixed framing, for jobs whose ranks cannot
// share memory.
//
// Connection establishment is deadlock-free by construction: every rank
// brings up its listener first, then connects to all lower ranks
// (retrying until their listeners appear), then accepts from all higher
// ranks; a connector identifies itself with a 4-byte hello.  Writes are
// blocking and serialized per peer, so a frame is never interleaved;
// reads are non-blocking drains in poll().
//
// Liveness: the receiver stamps a frame's origin on arrival — on a
// socket, hearing from a peer *is* the only evidence it is alive — so
// heartbeats refresh the local last-heard table exactly as the shared
// fabric stamps do for the in-process and shm backends.  A peer that
// dies mid-run reads as EOF; its connection is parked and later writes
// to it are swallowed as blackholed, while the failure detector learns
// of the death from heartbeat silence as usual.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "transport/transport.hpp"

namespace bgq::transport {

class SocketTransport final : public Transport {
 public:
  /// Binds, connects the mesh and completes the hello handshake; throws
  /// std::runtime_error if any peer cannot be reached within the window.
  explicit SocketTransport(const Config& cfg);
  ~SocketTransport() override;

  Kind kind() const noexcept override { return Kind::kSocket; }
  bool endpoint_local(topo::NodeId ep) const noexcept override {
    return static_cast<unsigned>(ep) == rank_;
  }

  void inject(net::Packet* p) override;
  std::size_t poll() override;
  void send_ctrl(int dst, const CtrlMsg& m) override;

 private:
  struct Peer {
    int fd = -1;
    bool open = false;
    std::unique_ptr<std::mutex> write_mu;
    std::vector<std::byte> rxbuf;  ///< partial-frame accumulation
  };

  std::string uds_path(unsigned rank) const;
  void connect_to(unsigned peer);
  void accept_from_higher();
  void send_frame(unsigned dst, const std::vector<std::byte>& frame,
                  bool ctrl);
  std::size_t drain_peer(unsigned src);
  std::size_t parse_frames(unsigned src);

  const Config cfg_;
  const unsigned rank_;
  const unsigned nprocs_;
  int listen_fd_ = -1;
  std::vector<Peer> peers_;  ///< indexed by rank; self entry unused
  std::mutex poll_mu_;
};

}  // namespace bgq::transport
