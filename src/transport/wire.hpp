// Length-prefixed frame codec shared by the shared-memory and socket
// transports.
//
// Frame layout on the wire / in a ring:
//
//   u32  body_len          (bytes after this field)
//   u8   frame type        (kFrameData | kFrameCtrl)
//   ...  body
//
// A data body is a serialized fabric Packet — every field the receiver
// acts on, including the reliability protocol's seq/flags/acks/checksum
// and the causal-trace cid sidecar, so the PAMI layers on both sides see
// exactly the packets an in-process run would.  RDMA kinds are never
// encoded: raw pointers cannot cross address spaces, and the machine
// layer forces the eager protocol for remote-process destinations.
//
// Fixed little-endian-style byte order via explicit shifts: both ends of
// a job run on the same host today, but a codec that depends on host
// endianness would silently break the first multi-host run.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

#include "net/packet.hpp"
#include "transport/transport.hpp"

namespace bgq::transport::wire {

constexpr std::uint8_t kFrameData = 0;
constexpr std::uint8_t kFrameCtrl = 1;

/// Frame header bytes preceding the body: u32 length + u8 type.
constexpr std::size_t kFrameOverhead = 5;

inline void put_u16(std::vector<std::byte>& o, std::uint16_t v) {
  o.push_back(static_cast<std::byte>(v & 0xff));
  o.push_back(static_cast<std::byte>(v >> 8));
}
inline void put_u32(std::vector<std::byte>& o, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    o.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}
inline void put_u64(std::vector<std::byte>& o, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    o.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}
inline void put_bytes(std::vector<std::byte>& o, const std::byte* p,
                      std::size_t n) {
  o.insert(o.end(), p, p + n);
}

/// Bounds-checked cursor over a received body: a frame off the wire can
/// be anything, so truncation must be a loud error, not a wild read.
class Reader {
 public:
  Reader(const std::byte* p, std::size_t n) : p_(p), n_(n) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(p_[pos_++]);
  }
  std::uint16_t u16() {
    need(2);
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) {
      v |= static_cast<std::uint16_t>(p_[pos_ + i]) << (8 * i);
    }
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(p_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(p_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  std::vector<std::byte> bytes(std::size_t n) {
    need(n);
    std::vector<std::byte> out(p_ + pos_, p_ + pos_ + n);
    pos_ += n;
    return out;
  }
  std::size_t remaining() const noexcept { return n_ - pos_; }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > n_) {
      throw std::runtime_error("transport wire: truncated frame");
    }
  }
  const std::byte* p_;
  std::size_t n_;
  std::size_t pos_ = 0;
};

/// Append one framed data packet to `out`.
inline void encode_packet(const net::Packet& p, std::vector<std::byte>& out) {
  if (p.kind != net::TransferKind::kMemFifo) {
    throw std::logic_error(
        "transport wire: RDMA transfers cannot cross processes");
  }
  const std::size_t mark = out.size();
  put_u32(out, 0);  // body length, patched below
  out.push_back(static_cast<std::byte>(kFrameData));
  put_u32(out, static_cast<std::uint32_t>(p.src));
  put_u32(out, static_cast<std::uint32_t>(p.dst));
  put_u16(out, p.dispatch);
  put_u16(out, p.rec_fifo);
  put_u16(out, p.src_ctx);
  out.push_back(static_cast<std::byte>(p.flags));
  put_u64(out, p.seq);
  put_u64(out, p.checksum);
  put_u64(out, p.cid);
  put_u64(out, p.wire_ns);
  put_u32(out, p.num_packets);
  put_u32(out, static_cast<std::uint32_t>(p.metadata.size()));
  put_bytes(out, p.metadata.data(), p.metadata.size());
  put_u32(out, static_cast<std::uint32_t>(p.payload.size()));
  put_bytes(out, p.payload.data(), p.payload.size());
  put_u32(out, static_cast<std::uint32_t>(p.acks.size()));
  for (const std::uint64_t a : p.acks) put_u64(out, a);
  const std::uint32_t body =
      static_cast<std::uint32_t>(out.size() - mark - 4);
  for (int i = 0; i < 4; ++i) {
    out[mark + i] = static_cast<std::byte>((body >> (8 * i)) & 0xff);
  }
}

/// Decode a data body (after the type byte) into a fresh Packet.
inline net::Packet* decode_packet(const std::byte* body, std::size_t n) {
  Reader r(body, n);
  auto p = std::make_unique<net::Packet>();
  p->kind = net::TransferKind::kMemFifo;
  p->src = static_cast<topo::NodeId>(r.u32());
  p->dst = static_cast<topo::NodeId>(r.u32());
  p->dispatch = r.u16();
  p->rec_fifo = r.u16();
  p->src_ctx = r.u16();
  p->flags = r.u8();
  p->seq = r.u64();
  p->checksum = r.u64();
  p->cid = r.u64();
  p->wire_ns = r.u64();
  p->num_packets = r.u32();
  p->metadata = r.bytes(r.u32());
  p->payload = r.bytes(r.u32());
  const std::uint32_t nacks = r.u32();
  p->acks.reserve(nacks);
  for (std::uint32_t i = 0; i < nacks; ++i) p->acks.push_back(r.u64());
  return p.release();
}

/// Append one framed control message to `out`.
inline void encode_ctrl(const CtrlMsg& m, std::vector<std::byte>& out) {
  const std::size_t mark = out.size();
  put_u32(out, 0);
  out.push_back(static_cast<std::byte>(kFrameCtrl));
  put_u16(out, m.type);
  put_u32(out, m.origin);
  put_u64(out, m.a);
  put_u64(out, m.b);
  put_u64(out, m.c);
  put_u32(out, static_cast<std::uint32_t>(m.blob.size()));
  put_bytes(out, m.blob.data(), m.blob.size());
  const std::uint32_t body =
      static_cast<std::uint32_t>(out.size() - mark - 4);
  for (int i = 0; i < 4; ++i) {
    out[mark + i] = static_cast<std::byte>((body >> (8 * i)) & 0xff);
  }
}

inline CtrlMsg decode_ctrl(const std::byte* body, std::size_t n) {
  Reader r(body, n);
  CtrlMsg m;
  m.type = r.u16();
  m.origin = r.u32();
  m.a = r.u64();
  m.b = r.u64();
  m.c = r.u64();
  m.blob = r.bytes(r.u32());
  return m;
}

}  // namespace bgq::transport::wire
