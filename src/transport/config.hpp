// Transport selection for the emulated machine.
//
// By default every "node" of the emulated job is a thread in one OS
// process and the fabric copies packets in memory (kInProc).  The two
// remote kinds split the job across real OS processes on one host: each
// transport rank hosts exactly one emulated process (PAMI endpoint), and
// packets destined for a remote rank cross a shared-memory ring (kShm,
// modeled after the MU reception FIFOs) or a length-prefixed socket
// stream (kSocket).
//
// Mirroring the BGQ_FAULT_PLAN pattern, the config can be supplied via
// the BGQ_TRANSPORT environment variable — which is how the bgq-run
// launcher distributes per-rank configuration to the processes it spawns:
//
//   BGQ_TRANSPORT="kind=shm,nprocs=4,rank=2,session=job17,ring_kb=256"
//   BGQ_TRANSPORT="kind=socket,nprocs=2,rank=0,session=job17,tcp=0"
//
// An explicit MachineConfig::transport wins; otherwise the machine layer
// consults the environment, so any existing binary can be launched as a
// rank of a multi-process job without code changes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace bgq::transport {

enum class Kind : std::uint8_t {
  kInProc,  ///< today's single-address-space fabric (default)
  kShm,     ///< per-endpoint-pair shared-memory SPSC rings
  kSocket,  ///< Unix-domain (or TCP loopback) stream sockets
};

inline const char* kind_name(Kind k) noexcept {
  switch (k) {
    case Kind::kInProc: return "inproc";
    case Kind::kShm: return "shm";
    case Kind::kSocket: return "socket";
  }
  return "?";
}

struct Config {
  Kind kind = Kind::kInProc;

  /// Transport ranks in the job == emulated processes of the machine.
  /// The machine layer validates nprocs == MachineConfig::process_count().
  unsigned nprocs = 1;

  /// This OS process's rank (which emulated process it hosts).
  unsigned rank = 0;

  /// Job-unique session tag: names the shm segment / socket paths so
  /// concurrent jobs (and concurrent tests) never collide.
  std::string session = "bgq";

  /// Per-endpoint-pair ring capacity in bytes (kShm).  A full ring
  /// backpressures the producer (counted in net.transport.ring_full).
  std::size_t ring_bytes = 1u << 18;

  /// kSocket: use TCP loopback instead of Unix-domain sockets.
  bool use_tcp = false;

  /// TCP base port (rank r listens on base_port + r) when use_tcp.
  std::uint16_t base_port = 17470;

  /// Directory for Unix-domain socket paths.
  std::string socket_dir = "/tmp";

  bool remote() const noexcept { return kind != Kind::kInProc; }

  /// Parse "kind=shm,nprocs=4,rank=1,session=x,ring_kb=256,tcp=1,
  /// port=17470,dir=/tmp".  Unknown keys or malformed values throw
  /// std::invalid_argument naming the bad token; empty spec = inproc.
  static Config parse(std::string_view spec);

  /// The BGQ_TRANSPORT environment override, or an inproc config when the
  /// variable is unset.  A malformed value prints a diagnostic to stderr
  /// and exits(2) — a typo'd launch must not silently run single-process.
  static Config from_env();

  /// Serialize for a child's BGQ_TRANSPORT (bgq-run sets this per rank).
  std::string to_spec() const;
};

}  // namespace bgq::transport
