// SPSC byte ring living in a shared-memory segment, modeled after the
// MU reception FIFOs: the producer memcpys variable-length frames in,
// the consumer drains them, and head/tail are monotonically increasing
// 64-bit counters so wrap-around needs no modular arithmetic beyond the
// offset computation.
//
// The control block and the data bytes are both inside the mmap'd
// segment; this class is a process-local *view* (a pair of pointers) and
// holds no state of its own, so every process can construct views over
// the same ring.  Exactly one process produces into a given ring and
// exactly one consumes from it (the segment holds a P×P matrix of rings,
// one per ordered endpoint-pair), which makes the classic Lamport
// protocol sufficient: release-store on the index you own, acquire-load
// on the one you don't.
//
// std::atomic<u64> on both sides of a shared mapping is valid here: the
// type is lock-free on every 64-bit target the repo builds on, and
// address-free per the standard's guarantee for lock-free atomics.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "verify/schedule_point.hpp"

namespace bgq::transport {

/// Per-ring control block, placed at the front of the ring's slice of
/// the shared segment and followed by `capacity` data bytes.
struct ShmRingCtrl {
  alignas(64) std::atomic<std::uint64_t> head{0};  ///< producer-owned
  alignas(64) std::atomic<std::uint64_t> tail{0};  ///< consumer-owned
};

class ShmRingView {
 public:
  ShmRingView() = default;
  ShmRingView(ShmRingCtrl* ctrl, std::byte* data, std::size_t capacity)
      : ctrl_(ctrl), data_(data), cap_(capacity) {}

  std::size_t capacity() const noexcept { return cap_; }

  /// Bytes available to read right now (consumer-side estimate).
  std::size_t readable() const noexcept {
    return ctrl_->head.load(std::memory_order_acquire) -
           ctrl_->tail.load(std::memory_order_relaxed);
  }

  /// Bytes of free space right now (producer-side estimate).
  std::size_t writable() const noexcept {
    return cap_ - (ctrl_->head.load(std::memory_order_relaxed) -
                   ctrl_->tail.load(std::memory_order_acquire));
  }

  /// Producer: copy `n` bytes in if they fit, else change nothing and
  /// return false.  All-or-nothing so a frame is never torn across a
  /// failed push.  Single producer per ring.
  bool try_push(const std::byte* src, std::size_t n) {
    const std::uint64_t head = ctrl_->head.load(std::memory_order_relaxed);
    const std::uint64_t tail = ctrl_->tail.load(std::memory_order_acquire);
    if (cap_ - (head - tail) < n) {
      BGQ_SCHED_POINT("shmring.push.full");
      return false;
    }
    copy_in(head, src, n);
    BGQ_SCHED_POINT("shmring.push.copied");
    ctrl_->head.store(head + n, std::memory_order_release);
    return true;
  }

  /// Consumer: copy `n` bytes starting `offset` past the tail without
  /// consuming them.  Returns false when that range is not readable yet.
  /// The consumer peeks the frame header, then the body, then consume()s
  /// the whole frame; a frame is never seen half-published because
  /// try_push makes header and body visible with one release-store.
  bool peek(std::uint64_t offset, std::byte* dst, std::size_t n) const {
    const std::uint64_t tail = ctrl_->tail.load(std::memory_order_relaxed);
    const std::uint64_t head = ctrl_->head.load(std::memory_order_acquire);
    if (head - tail < offset + n) {
      BGQ_SCHED_POINT("shmring.peek.empty");
      return false;
    }
    copy_out(tail + offset, dst, n);
    BGQ_SCHED_POINT("shmring.peek.copied");
    return true;
  }

  /// Consumer: release `n` bytes back to the producer.
  void consume(std::size_t n) {
    const std::uint64_t tail = ctrl_->tail.load(std::memory_order_relaxed);
    BGQ_SCHED_POINT("shmring.consume");
    ctrl_->tail.store(tail + n, std::memory_order_release);
  }

 private:
  void copy_in(std::uint64_t pos, const std::byte* src, std::size_t n) {
    const std::size_t off = static_cast<std::size_t>(pos % cap_);
    const std::size_t first = off + n <= cap_ ? n : cap_ - off;
    std::memcpy(data_ + off, src, first);
    if (first < n) std::memcpy(data_, src + first, n - first);
  }
  void copy_out(std::uint64_t pos, std::byte* dst, std::size_t n) const {
    const std::size_t off = static_cast<std::size_t>(pos % cap_);
    const std::size_t first = off + n <= cap_ ? n : cap_ - off;
    std::memcpy(dst, data_ + off, first);
    if (first < n) std::memcpy(dst + first, data_, n - first);
  }

  ShmRingCtrl* ctrl_ = nullptr;
  std::byte* data_ = nullptr;
  std::size_t cap_ = 0;
};

}  // namespace bgq::transport
