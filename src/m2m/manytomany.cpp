#include "m2m/manytomany.hpp"

#include <cstring>
#include <stdexcept>

namespace bgq::m2m {

namespace {

/// Wire metadata for one many-to-many chunk.
struct ChunkMeta {
  std::uint32_t tag;
  std::uint32_t dst_pe;
  std::uint32_t slot;
  std::uint32_t reserved = 0;
};
static_assert(sizeof(ChunkMeta) == 16);

}  // namespace

// ---------------------------------------------------------------------------
// Handle
// ---------------------------------------------------------------------------

Handle::Handle(Coordinator& coord, cvs::PeRank rank, std::uint32_t tag,
               std::size_t nsends, std::size_t nrecvs)
    : coord_(coord), rank_(rank), tag_(tag), sends_(nsends),
      recvs_(nrecvs) {}

void Handle::set_send(std::size_t idx, cvs::PeRank dst,
                      std::uint32_t dst_slot, std::size_t displ,
                      std::size_t bytes) {
  sends_.at(idx) = SendEntry{dst, dst_slot, displ, bytes};
}

void Handle::set_recv(std::size_t slot, std::size_t displ,
                      std::size_t bytes) {
  recvs_.at(slot) = RecvEntry{displ, bytes};
}

std::uint64_t Handle::expect_epoch() {
  return recv_epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
}

void Handle::on_chunk(std::uint32_t slot, const std::byte* data,
                      std::size_t bytes) {
  const RecvEntry& r = recvs_.at(slot);
  if (bytes != r.bytes) {
    throw std::logic_error("many-to-many chunk size mismatch");
  }
  std::memcpy(recv_base_ + r.displ, data, bytes);
  const std::uint64_t n = recvs_complete_.complete_fetch();
  if (on_recvs_done && n % recvs_.size() == 0) on_recvs_done();
}

void Handle::send_range(pami::Context& ctx, std::size_t begin,
                        std::size_t end) {
  cvs::Machine& mach = coord_.machine();
  const unsigned nctx = mach.config().contexts_per_process();
  std::uint64_t sent = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const SendEntry& s = sends_[i];
    ChunkMeta meta{tag_, s.dst, s.dst_slot, 0};

    pami::SendParams p;
    p.dest = static_cast<pami::EndpointId>(mach.process_of(s.dst));
    p.dest_context = static_cast<std::uint16_t>(s.dst % nctx);
    p.dispatch = kDispatchM2M;
    p.metadata = &meta;
    p.metadata_bytes = sizeof(meta);
    p.payload = send_base_ + s.displ;
    p.payload_bytes = s.bytes;
    if (sizeof(meta) + s.bytes <= pami::Context::kImmediateMax) {
      ctx.send_immediate(p);
    } else {
      ctx.send(p);
    }
    ++sent;
  }
  const std::uint64_t n = sends_complete_.complete_fetch(sent);
  if (on_sends_done && n % sends_.size() == 0) on_sends_done();
}

void Handle::start() {
  cvs::Machine& mach = coord_.machine();
  send_epoch_.fetch_add(1, std::memory_order_acq_rel);

  // Local (same-process) entries complete inline: a memcpy between the two
  // registered buffers — the SMP pointer-exchange analogue.
  std::vector<std::size_t> remote;
  remote.reserve(sends_.size());
  const std::size_t my_proc = mach.process_of(rank_);
  std::uint64_t local_done = 0;
  for (std::size_t i = 0; i < sends_.size(); ++i) {
    const SendEntry& s = sends_[i];
    if (mach.process_of(s.dst) == my_proc) {
      coord_.handle(s.dst, tag_).on_chunk(
          s.dst_slot, send_base_ + s.displ, s.bytes);
      ++local_done;
    } else {
      remote.push_back(i);
    }
  }
  if (local_done != 0) {
    const std::uint64_t n = sends_complete_.complete_fetch(local_done);
    if (on_sends_done && n % sends_.size() == 0) on_sends_done();
  }
  if (remote.empty()) return;

  cvs::Process& proc = mach.process(my_proc);
  if (proc.comm_pool() == nullptr) {
    // No comm threads: inject the whole burst on the caller's context.
    pami::Context* ctx = mach.pe(rank_).owned_context();
    for (std::size_t i : remote) send_range(*ctx, i, i + 1);
    return;
  }

  // Split the burst across every context so all comm threads inject in
  // parallel (§III-E: "posting work on multiple communication threads").
  const unsigned nctx = proc.client().context_count();
  const std::size_t per =
      (remote.size() + nctx - 1) / nctx;
  auto shared = std::make_shared<std::vector<std::size_t>>(std::move(remote));
  for (unsigned c = 0; c < nctx; ++c) {
    const std::size_t lo = c * per;
    if (lo >= shared->size()) break;
    const std::size_t hi = std::min(shared->size(), lo + per);
    pami::Context& ctx = proc.client().context(c);
    ctx.post_work([this, &ctx, shared, lo, hi] {
      for (std::size_t k = lo; k < hi; ++k) {
        send_range(ctx, (*shared)[k], (*shared)[k] + 1);
      }
    });
  }
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

Coordinator::Coordinator(cvs::Machine& machine) : machine_(machine) {
  for (std::size_t p = 0; p < machine_.process_count(); ++p) {
    machine_.process(p).client().set_dispatch(
        kDispatchM2M,
        [this](const pami::DispatchArgs& a) { on_packet(a); });
  }
}

Handle& Coordinator::create(cvs::PeRank rank, std::uint32_t tag,
                            std::size_t nsends, std::size_t nrecvs) {
  std::lock_guard<std::mutex> g(mutex_);
  auto [it, inserted] = handles_.try_emplace(
      key(rank, tag),
      std::unique_ptr<Handle>(new Handle(*this, rank, tag, nsends, nrecvs)));
  if (!inserted) throw std::logic_error("m2m handle already exists");
  return *it->second;
}

Handle& Coordinator::handle(cvs::PeRank rank, std::uint32_t tag) {
  // Handles are created collectively before traffic; lookups during the
  // run are read-only and need no lock.
  const auto it = handles_.find(key(rank, tag));
  if (it == handles_.end()) throw std::logic_error("unknown m2m handle");
  return *it->second;
}

void Coordinator::on_packet(const pami::DispatchArgs& a) {
  ChunkMeta meta;
  std::memcpy(&meta, a.metadata, sizeof(meta));
  handle(meta.dst_pe, meta.tag).on_chunk(meta.slot, a.payload,
                                         a.payload_bytes);
}

}  // namespace bgq::m2m
