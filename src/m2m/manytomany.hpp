// CmiDirectManytomany: persistent neighbourhood-collective burst messaging
// (paper §III-E).
//
// "It is a persistent interface where messages with base addresses and
//  offsets are setup ahead of time and registered with a handle.  When the
//  data is ready to be sent the application just calls start on the handle.
//  Our implementation on BG/Q generates a list of sends and receives and
//  completes them by posting work on multiple communication threads."
//
// Why it is fast (and what this implementation preserves):
//   * no per-message Converse header allocation — payloads are described
//     once at setup;
//   * no per-message scheduler enqueue at the receiver — arriving chunks
//     are copied straight into the registered receive buffer at their
//     registered offset;
//   * the send burst is partitioned across all communication threads, so
//     several threads inject simultaneously (message-rate acceleration).
//
// Matching model (same as CmiDirect_manytomany): each send is registered
// with the *receive-slot index* it fills at the destination; the receiver
// registers (slot -> displacement, bytes).  Completion is counted per
// epoch: start() on the sender and expect_epoch() on the receiver advance
// matching epochs, so a persistent handle is reused every iteration with
// no reset races.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "converse/machine.hpp"
#include "l2atomic/completion.hpp"

namespace bgq::m2m {

/// PAMI dispatch id claimed by the many-to-many engine (the Converse
/// machine layer uses 1..3 for its protocols and 4 for FT heartbeats —
/// claiming 4 here used to silently overwrite the heartbeat dispatch on
/// machines that ran both).
inline constexpr std::uint16_t kDispatchM2M = 5;

class Coordinator;

/// One PE's persistent handle for one communication pattern.
class Handle {
 public:
  /// Registered send: `bytes` at send_base+displ go to PE `dst`, filling
  /// receive slot `dst_slot` of the handle with the same tag there.
  struct SendEntry {
    cvs::PeRank dst;
    std::uint32_t dst_slot;
    std::size_t displ;
    std::size_t bytes;
  };

  /// Registered receive slot: arriving data lands at recv_base+displ.
  struct RecvEntry {
    std::size_t displ = 0;
    std::size_t bytes = 0;
  };

  void set_send_base(const std::byte* base) { send_base_ = base; }
  void set_recv_base(std::byte* base) { recv_base_ = base; }

  /// Register send entry `idx` (idx < nsends from creation).
  void set_send(std::size_t idx, cvs::PeRank dst, std::uint32_t dst_slot,
                std::size_t displ, std::size_t bytes);

  /// Register receive slot `slot` (slot < nrecvs from creation).
  void set_recv(std::size_t slot, std::size_t displ, std::size_t bytes);

  /// Fire the whole registered burst.  With comm threads the send list is
  /// split across every context (each comm thread injects its share); the
  /// calling PE returns immediately.  Without comm threads the burst is
  /// sent inline on the caller's context.
  void start();

  /// Arm the receive side for one more epoch.  Returns the epoch target to
  /// poll with recv_done(epoch).  (start() arms the send side itself.)
  std::uint64_t expect_epoch();

  bool send_done(std::uint64_t epoch) const {
    return sends_complete_.reached(epoch * sends_.size());
  }
  bool recv_done(std::uint64_t epoch) const {
    return recvs_complete_.reached(epoch * recvs_.size());
  }

  /// Epochs started so far (sender side).
  std::uint64_t epoch() const {
    return send_epoch_.load(std::memory_order_acquire);
  }

  /// Completion hooks, run on the thread that finishes the last event of
  /// an epoch (a comm thread when they exist).  Optional.
  std::function<void()> on_sends_done;
  std::function<void()> on_recvs_done;

  cvs::PeRank rank() const noexcept { return rank_; }
  std::uint32_t tag() const noexcept { return tag_; }
  std::size_t send_count() const noexcept { return sends_.size(); }
  std::size_t recv_count() const noexcept { return recvs_.size(); }

 private:
  friend class Coordinator;

  Handle(Coordinator& coord, cvs::PeRank rank, std::uint32_t tag,
         std::size_t nsends, std::size_t nrecvs);

  void send_range(pami::Context& ctx, std::size_t begin, std::size_t end);
  void on_chunk(std::uint32_t slot, const std::byte* data,
                std::size_t bytes);

  Coordinator& coord_;
  const cvs::PeRank rank_;
  const std::uint32_t tag_;

  const std::byte* send_base_ = nullptr;
  std::byte* recv_base_ = nullptr;
  std::vector<SendEntry> sends_;
  std::vector<RecvEntry> recvs_;

  std::atomic<std::uint64_t> send_epoch_{0};
  std::atomic<std::uint64_t> recv_epoch_{0};
  l2::CompletionCounter sends_complete_;
  l2::CompletionCounter recvs_complete_;
};

/// Machine-wide many-to-many engine: owns the handles and the PAMI
/// dispatch.  Create one per Machine, before run().
class Coordinator {
 public:
  explicit Coordinator(cvs::Machine& machine);

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Create (collectively, before traffic) the handle for PE `rank` and
  /// pattern `tag` with fixed send/recv counts.
  Handle& create(cvs::PeRank rank, std::uint32_t tag, std::size_t nsends,
                 std::size_t nrecvs);

  /// Look up an existing handle.
  Handle& handle(cvs::PeRank rank, std::uint32_t tag);

  cvs::Machine& machine() noexcept { return machine_; }

 private:
  friend class Handle;

  static std::uint64_t key(cvs::PeRank rank, std::uint32_t tag) {
    return (static_cast<std::uint64_t>(rank) << 32) | tag;
  }

  void on_packet(const pami::DispatchArgs& a);

  cvs::Machine& machine_;
  std::mutex mutex_;  // guards creation only; lookups after setup are const
  std::unordered_map<std::uint64_t, std::unique_ptr<Handle>> handles_;
};

}  // namespace bgq::m2m
