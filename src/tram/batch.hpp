// Batch wire format for TRAM-style message aggregation.
//
// A batch is an ordinary Converse message whose payload is a sequence of
// *records*, each a verbatim MsgHeader followed by that message's payload,
// padded to the header's 16-byte alignment:
//
//   [MsgHeader | payload | pad][MsgHeader | payload | pad]...
//
// Shipping the full header per record keeps every per-message property —
// destination PE, handler, checkpoint epoch, causal trace id — intact
// across aggregation, so the receive side can re-materialize each message
// and hand it to the normal delivery path unchanged.  The codec is
// header-only and machine-independent: the schedule fuzzer drives it over
// raw PAMI clients with no cvs::Machine around.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "converse/message.hpp"

namespace bgq::tram {

/// Records are padded to the header's alignment so each record's header
/// lands naturally aligned within the batch payload.
inline constexpr std::size_t kRecordAlign = alignof(cvs::MsgHeader);

/// Bytes one record occupies in a batch (header + payload + pad).
inline constexpr std::size_t record_bytes(std::size_t payload) noexcept {
  return (sizeof(cvs::MsgHeader) + payload + (kRecordAlign - 1)) &
         ~(kRecordAlign - 1);
}

/// Walk the records of a batch payload, invoking `fn(header, payload)`
/// per record.  Returns the record count.  A truncated or malformed tail
/// (a record extending past `bytes`) stops the walk instead of reading
/// out of bounds — the reliability layer's checksums make that a
/// shouldn't-happen, but the chaos fabric exists to make shouldn't-
/// happens happen.
template <class Fn>
inline std::size_t for_each_record(const std::byte* data, std::size_t bytes,
                                   Fn&& fn) {
  std::size_t off = 0;
  std::size_t n = 0;
  while (off + sizeof(cvs::MsgHeader) <= bytes) {
    cvs::MsgHeader h;
    std::memcpy(&h, data + off, sizeof h);
    if (off + sizeof(cvs::MsgHeader) + h.payload_bytes > bytes) break;
    fn(h, data + off + sizeof(cvs::MsgHeader));
    off += record_bytes(h.payload_bytes);
    ++n;
  }
  return n;
}

/// Append-only batch builder: one per (source PE, destination process)
/// staging slot in the Router, also used standalone by tests and the
/// fuzzer.  Owns its bytes; capacity is a soft target (reserve), not a
/// hard wall — the Router checks fits() before appending.
class BatchWriter {
 public:
  BatchWriter() = default;
  explicit BatchWriter(std::size_t capacity_bytes) { buf_.reserve(capacity_bytes); }

  /// Would appending a `payload`-byte message keep the batch within
  /// `limit_bytes`?  An empty batch always fits one record — a message
  /// small enough to aggregate must never be unsendable.
  bool fits(std::size_t payload, std::size_t limit_bytes) const noexcept {
    return buf_.empty() || buf_.size() + record_bytes(payload) <= limit_bytes;
  }

  /// Append one record (header copied verbatim, then payload, then pad).
  void append(const cvs::MsgHeader& h, const void* payload) {
    const std::size_t rb = record_bytes(h.payload_bytes);
    const std::size_t at = buf_.size();
    buf_.resize(at + rb);
    std::memcpy(buf_.data() + at, &h, sizeof h);
    if (h.payload_bytes != 0) {
      std::memcpy(buf_.data() + at + sizeof h, payload, h.payload_bytes);
    }
    ++count_;
  }

  bool empty() const noexcept { return count_ == 0; }
  unsigned count() const noexcept { return count_; }
  std::size_t bytes() const noexcept { return buf_.size(); }
  const std::byte* data() const noexcept { return buf_.data(); }

  void clear() noexcept {
    buf_.clear();
    count_ = 0;
  }

 private:
  std::vector<std::byte> buf_;
  unsigned count_ = 0;
};

}  // namespace bgq::tram
