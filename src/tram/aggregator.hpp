// TRAM-style streaming aggregation: coalesce small remote messages into
// per-destination-process batches (§III-E generalized).
//
// The paper's CmiDirectManytomany amortizes per-message machine-layer
// cost for one pre-registered communication pattern.  The Router makes
// that amortization an always-available runtime service: any small
// Converse/chare send to a remote process is absorbed into a staging
// buffer for that destination, and a single batch message carries many
// records across the wire.  The receive side re-materializes each record
// and hands it to the normal delivery path, so handlers, checkpoint
// epochs, FT quiescence accounting, and causal trace ids all behave
// exactly as if the messages had traveled alone.
//
// Threading: every staging slot belongs to exactly one PE, and offer /
// tick / drain run only on that PE's thread (the scheduler loop and the
// worker barrier).  No locks anywhere.
//
// Flush triggers, in the order they can fire:
//   * byte threshold  — batch reached Config::batch_bytes (clamped to
//                       the eager limit so a batch never trips the
//                       rendezvous round-trip);
//   * count threshold — batch holds Config::batch_msgs records;
//   * timeout tick    — the scheduler found no work and a non-empty
//                       buffer is older than Config::flush_ns;
//   * barrier drain   — worker_barrier / FT quiescence flushes
//                       everything staged, so collective alignment
//                       points never wait on a lazy buffer.
//
// Fault tolerance: a buffer tagged with a pre-rollback epoch is
// discarded whole (tram.stale_discards) — its records were already
// counted in quiescence epochs that reset_ft_counters() zeroed, and
// replay comes from the checkpoint, not from stale staging.  Records
// that do ship keep their per-message epoch, so the existing
// stale-discard in Pe::execute covers batches that were in flight when
// a crash hit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/timing.hpp"
#include "converse/machine.hpp"
#include "tram/batch.hpp"
#include "tram/config.hpp"
#include "trace/trace.hpp"

namespace bgq::tram {

class Router {
 public:
  Router(cvs::Machine& mach, Config cfg)
      : mach_(mach),
        cfg_(cfg),
        limit_bytes_(cfg.batch_bytes < mach.config().eager_max
                         ? cfg.batch_bytes
                         : mach.config().eager_max),
        state_(mach.config().pe_count()) {
    for (auto& st : state_) {
      st.by_proc.resize(mach.config().process_count());
    }
    // Registered in the Machine constructor, before any application
    // handler: the deaggregator travels as an ordinary Converse handler
    // id, nothing below the machine layer knows batches exist.
    handler_ = mach.register_handler(
        [this](cvs::Pe& pe, cvs::Message* m) { deaggregate(pe, m); });
  }

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  cvs::HandlerId deagg_handler() const noexcept { return handler_; }

  /// Hot-path hook from Pe::send_message, remote destinations only.
  /// Returns true when the message was absorbed into a batch (ownership
  /// taken, original freed); false sends it the direct way.
  bool offer(cvs::Pe& pe, cvs::PeRank dst, cvs::Message* m) {
    cvs::MsgHeader& h = m->header();
    if (h.handler == handler_) return false;  // batches never re-batch
    trace::Registry::Shard* sh = pe.counters_shard();
    if (h.payload_bytes > cfg_.max_msg_bytes) {
      sh->add(mach_.tram_ids().bypass_oversize);
      return false;
    }
    PeState& st = state_[pe.rank()];
    const std::size_t dp = mach_.process_of(dst);
    Buffer& b = st.by_proc[dp];
    if (mach_.ft_armed()) {
      const auto cur = static_cast<std::uint16_t>(mach_.msg_epoch());
      if (!b.w.empty() && b.epoch != cur) discard_stale(pe, st, b);
      b.epoch = cur;
    }
    if (!b.w.fits(h.payload_bytes, limit_bytes_)) {
      flush(pe, st, dp, b, Why::kBytes);
    }
    if (b.w.empty()) {
      b.born_ns = now_ns();
      b.uniform_dst = dst;
    } else if (b.uniform_dst != dst) {
      b.uniform_dst = kMixedDst;
    }
    b.w.append(h, m->payload());
    pe.free_message(m);
    ++st.staged;
    sh->add(mach_.tram_ids().appends);
    if (b.w.count() >= cfg_.batch_msgs) {
      flush(pe, st, dp, b, Why::kCount);
    } else if (b.w.bytes() >= limit_bytes_) {
      flush(pe, st, dp, b, Why::kBytes);
    }
    return true;
  }

  /// Idle-path tick from the scheduler loop (and the FT quiescence
  /// wait): flush buffers older than the timeout.  Returns true when
  /// anything flushed — the scheduler treats that as progress.
  bool tick(cvs::Pe& pe) {
    PeState& st = state_[pe.rank()];
    if (st.staged == 0) return false;
    const std::uint64_t now = now_ns();
    bool any = false;
    for (std::size_t dp = 0; dp < st.by_proc.size(); ++dp) {
      Buffer& b = st.by_proc[dp];
      if (b.w.empty() || now - b.born_ns < cfg_.flush_ns) continue;
      flush(pe, st, dp, b, Why::kTimeout);
      any = true;
    }
    return any;
  }

  /// Flush everything this PE has staged (worker_barrier, quiescence,
  /// shutdown): after drain returns, no message is parked in a buffer.
  bool drain(cvs::Pe& pe) {
    PeState& st = state_[pe.rank()];
    if (st.staged == 0) return false;
    for (std::size_t dp = 0; dp < st.by_proc.size(); ++dp) {
      Buffer& b = st.by_proc[dp];
      if (!b.w.empty()) flush(pe, st, dp, b, Why::kBarrier);
    }
    return true;
  }

  /// Records currently staged by `pe` (tests / quiescence probes).
  unsigned staged(cvs::PeRank pe) const noexcept {
    return state_[pe].staged;
  }

 private:
  enum class Why { kBytes, kCount, kTimeout, kBarrier };

  static constexpr cvs::PeRank kMixedDst = ~cvs::PeRank{0};

  struct Buffer {
    BatchWriter w;
    std::uint64_t born_ns = 0;  ///< first-append time (timeout base)
    std::uint16_t epoch = 0;    ///< checkpoint epoch of the staged records
    cvs::PeRank uniform_dst = kMixedDst;  ///< sole dst PE, or mixed
  };
  /// Per-PE staging state, padded apart: each PE thread touches only its
  /// own slot, and the padding keeps neighbors off its cache line.
  struct alignas(64) PeState {
    std::vector<Buffer> by_proc;  ///< indexed by destination process
    unsigned staged = 0;          ///< records across all buffers
  };

  void flush(cvs::Pe& pe, PeState& st, std::size_t dst_proc, Buffer& b,
             Why why) {
    if (b.w.empty()) return;
    if (mach_.ft_armed() &&
        b.epoch != static_cast<std::uint16_t>(mach_.msg_epoch())) {
      discard_stale(pe, st, b);
      return;
    }
    trace::EventRing* ring = pe.trace_ring();
    const auto arg = static_cast<std::uint32_t>(dst_proc);
    if (ring != nullptr) {
      ring->emit({now_ns(), arg, trace::EventKind::kTramFlushBegin});
    }
    const unsigned n = b.w.count();
    cvs::Message* batch = pe.alloc_message(b.w.bytes(), handler_);
    std::memcpy(batch->payload(), b.w.data(), b.w.bytes());
    b.w.clear();
    st.staged -= n;
    const cvs::TramIds& ids = mach_.tram_ids();
    trace::Registry::Shard* sh = pe.counters_shard();
    sh->add(ids.batches);
    sh->add(ids.batched_msgs, n);
    switch (why) {
      case Why::kBytes: sh->add(ids.flush_bytes); break;
      case Why::kCount: sh->add(ids.flush_count); break;
      case Why::kTimeout: sh->add(ids.flush_timeout); break;
      case Why::kBarrier: sh->add(ids.flush_barrier); break;
    }
    // A batch whose records all target one PE goes straight to it — the
    // deaggregator then executes every record inline, no re-enqueue.
    // Mixed batches land on one representative PE per destination
    // process; spreading senders over the destination's workers keeps
    // deagg work balanced the way §III-C spreads comm-thread traffic.
    const unsigned wpp = mach_.config().effective_workers_per_process();
    const cvs::PeRank target =
        b.uniform_dst != kMixedDst
            ? b.uniform_dst
            : static_cast<cvs::PeRank>(dst_proc * wpp + (pe.rank() % wpp));
    b.uniform_dst = kMixedDst;
    pe.send_message(target, batch);
    if (ring != nullptr) {
      ring->emit({now_ns(), arg, trace::EventKind::kTramFlushEnd});
    }
  }

  void discard_stale(cvs::Pe& pe, PeState& st, Buffer& b) {
    pe.counters_shard()->add(mach_.tram_ids().stale_discards, b.w.count());
    st.staged -= b.w.count();
    b.w.clear();
  }

  /// Receive side: re-materialize each record and hand it to the normal
  /// process-local delivery path (inline execute in non-SMP, the PE
  /// queue otherwise) — per-record epoch checks, handler dispatch, and
  /// FT accounting all happen exactly as for a lone message.
  void deaggregate(cvs::Pe& pe, cvs::Message* batch) {
    cvs::Process& proc = pe.process();
    alloc::IAllocator& alloc = proc.allocator();
    const alloc::ThreadId tid = cvs::Process::current_tid();
    const cvs::PeRank self = pe.rank();
    // Untraced runs take the streaming fast path for own-PE records:
    // invoke the handler directly and time the whole unpack loop once,
    // instead of paying execute()'s per-record clock reads.  Epoch
    // checks, quiescence accounting and msgs.executed stay per-record
    // exact; only busy-time attribution coarsens to batch granularity.
    // Traced runs keep execute() so every handler span is emitted.
    const bool fast = pe.trace_ring() == nullptr;
    const bool ft = mach_.ft_armed();
    const auto epoch =
        static_cast<std::uint16_t>(ft ? mach_.msg_epoch() : 0);
    std::size_t inline_n = 0;
    const std::uint64_t t0 = now_ns();
    const std::size_t n = for_each_record(
        batch->payload(), batch->payload_bytes(),
        [&](const cvs::MsgHeader& h, const std::byte* payload) {
          if (mach_.process_of(h.dst_pe) != proc.endpoint()) {
            // A record for a PE this process doesn't own can only mean
            // corruption the checksums missed; dropping it beats
            // indexing out of the PE table.
            return;
          }
          const std::size_t total = sizeof(cvs::MsgHeader) + h.payload_bytes;
          auto* m = cvs::Message::from_raw(alloc.allocate(tid, total));
          // Header and payload are contiguous in the record: one copy.
          std::memcpy(m->raw(), payload - sizeof(cvs::MsgHeader), total);
          if (h.dst_pe != self) {
            proc.deliver(m);
            return;
          }
          // The record is already on its PE's thread: run it now instead
          // of bouncing through the MPSC queue.
          if (!fast) {
            pe.execute(m);
            return;
          }
          if (ft && h.epoch != epoch) {
            mach_.note_stale_drop();
            pe.free_message(m);
            return;
          }
          mach_.handler(h.handler)(pe, m);
          if (ft) mach_.note_executed();
          ++inline_n;
        });
    trace::Registry::Shard* sh = pe.counters_shard();
    if (inline_n != 0) {
      const cvs::CounterIds& ids = mach_.counter_ids();
      sh->add(ids.busy_ns, now_ns() - t0);
      sh->add(ids.msgs_executed, inline_n);
    }
    sh->add(mach_.tram_ids().deagg_msgs, n);
    pe.free_message(batch);
  }

  cvs::Machine& mach_;
  const Config cfg_;
  const std::size_t limit_bytes_;  ///< batch_bytes clamped to eager_max
  cvs::HandlerId handler_ = 0;
  std::vector<PeState> state_;  ///< indexed by source PE rank
};

}  // namespace bgq::tram
