// TRAM (topological routing and aggregation) configuration.
//
// Dependency-free POD so converse/config.hpp can embed it by value
// (MachineConfig::tram) the same way it embeds ft::Config.
#pragma once

#include <cstddef>
#include <cstdint>

namespace bgq::tram {

/// Streaming-aggregation knobs.  Aggregation is opt-in: a default
/// Config leaves every send on the direct path.
struct Config {
  /// Master switch: coalesce small remote sends into per-destination
  /// batch buffers.
  bool enabled = false;

  /// Only messages with payloads up to this size are aggregated; larger
  /// ones bypass straight to the direct eager/rendezvous path (the
  /// copy would cost more than the per-message overhead it saves).
  std::size_t max_msg_bytes = 512;

  /// Flush a destination's buffer once its records reach this many
  /// bytes.  Clamped at runtime so a full batch still fits the eager
  /// protocol (MachineConfig::eager_max) — a batch that tripped
  /// rendezvous would add a round-trip to exactly the traffic
  /// aggregation is meant to accelerate.
  std::size_t batch_bytes = 4096;

  /// Flush a destination's buffer once it holds this many messages,
  /// even if under the byte threshold.
  unsigned batch_msgs = 64;

  /// Idle flush: a non-empty buffer older than this is flushed by the
  /// scheduler's timeout tick, bounding the latency a lone message can
  /// be held back (and letting FT quiescence converge while traffic is
  /// buffered).
  std::uint64_t flush_ns = 200'000;
};

}  // namespace bgq::tram
