// Deterministic pseudo-random number generation (xoshiro256**).
//
// Benchmarks and the synthetic molecular-system builder need fast,
// reproducible randomness that does not serialize threads the way a shared
// std::mt19937 would; each thread/chare owns its own Xoshiro256 seeded by a
// SplitMix64 stream so results are stable across runs and platforms.
#pragma once

#include <cstdint>

namespace bgq {

/// SplitMix64: used to expand a single seed into xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality 64-bit generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ull; }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t below(std::uint64_t n) noexcept {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = -n % n;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Marsaglia polar method.
  double gaussian() noexcept {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = __builtin_sqrt(-2.0 * __builtin_log(s) / s);
    spare_ = v * mul;
    have_spare_ = true;
    return u * mul;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace bgq
