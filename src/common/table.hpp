// Minimal fixed-width text-table printer so every bench binary reports the
// same rows/columns the paper's tables and figures use, in aligned form.
#pragma once

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace bgq {

/// Accumulates rows of strings and prints them with per-column alignment.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Append a row; cells convertible via operator<< are accepted.
  template <typename... Cells>
  void row(const Cells&... cells) {
    std::vector<std::string> r;
    r.reserve(sizeof...(cells));
    (r.push_back(to_cell(cells)), ...);
    rows_.push_back(std::move(r));
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> w(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c) w[c] = header_[c].size();
    for (const auto& r : rows_)
      for (std::size_t c = 0; c < r.size() && c < w.size(); ++c)
        w[c] = std::max(w[c], r[c].size());

    auto line = [&](const std::vector<std::string>& r) {
      for (std::size_t c = 0; c < header_.size(); ++c) {
        const std::string& cell = c < r.size() ? r[c] : std::string{};
        os << "  " << std::setw(static_cast<int>(w[c])) << cell;
      }
      os << '\n';
    };
    line(header_);
    std::size_t total = 0;
    for (auto x : w) total += x + 2;
    os << std::string(total, '-') << '\n';
    for (const auto& r : rows_) line(r);
  }

 private:
  template <typename T>
  static std::string to_cell(const T& v) {
    std::ostringstream ss;
    ss << v;
    return ss.str();
  }
  static std::string to_cell(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f", v);
    return buf;
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bgq
