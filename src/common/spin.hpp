// Spin-wait primitives.
//
// Emulates the two idle-wait disciplines discussed in the paper (§III-D):
//   * a hot spin that hammers the core's pipeline (what the unoptimized
//     Charm++ idle poll did), and
//   * the "L2 paced" spin where each probe stalls on an L2 atomic load
//     (~60 cycles on BG/Q), leaving pipeline slots to the sibling hardware
//     threads on the same core.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace bgq {

/// One architectural pause; the cheapest way to yield pipeline slots.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Exponential backoff used inside lock-free retry loops.  Starts with pure
/// pauses and escalates to yielding the OS thread, which matters on hosts
/// with fewer cores than runtime threads.
class Backoff {
 public:
  void pause() noexcept {
    if (count_ < kSpinLimit) {
      for (std::uint32_t i = 0; i < (1u << count_); ++i) cpu_relax();
      ++count_;
    } else {
      std::this_thread::yield();
    }
  }

  void reset() noexcept { count_ = 0; }

  /// True once the backoff has escalated to OS yields.
  bool saturated() const noexcept { return count_ >= kSpinLimit; }

 private:
  static constexpr std::uint32_t kSpinLimit = 6;
  std::uint32_t count_ = 0;
};

/// Idle-poll pacing policies (paper §III-D).
enum class IdlePollPolicy {
  kHotSpin,   ///< re-probe as fast as possible (burns pipeline slots)
  kL2Paced,   ///< each probe behaves like a ~60-cycle L2 atomic load
  kOsYield,   ///< yield to the OS between probes (worst wake latency)
};

/// Emulate the ~60-cycle stall of an L2 atomic load on BG/Q: a short burst
/// of pauses approximating that latency on the host.
inline void l2_paced_delay() noexcept {
  for (int i = 0; i < 8; ++i) cpu_relax();
}

/// Spin until `pred()` is true under the given pacing policy.
template <typename Pred>
void spin_until(Pred&& pred, IdlePollPolicy policy = IdlePollPolicy::kL2Paced) {
  while (!pred()) {
    switch (policy) {
      case IdlePollPolicy::kHotSpin: cpu_relax(); break;
      case IdlePollPolicy::kL2Paced: l2_paced_delay(); break;
      case IdlePollPolicy::kOsYield: std::this_thread::yield(); break;
    }
  }
}

}  // namespace bgq
