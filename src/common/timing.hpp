// Wall-clock timing helpers for benchmarks and the functional runtime.
#pragma once

#include <chrono>
#include <cstdint>

namespace bgq {

/// Monotonic nanoseconds since an unspecified epoch.
inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Monotonic microseconds as a double (convenient for reporting).
inline double now_us() noexcept { return static_cast<double>(now_ns()) * 1e-3; }

/// Simple scoped stopwatch.
class Timer {
 public:
  Timer() : start_(now_ns()) {}

  void reset() noexcept { start_ = now_ns(); }

  std::uint64_t elapsed_ns() const noexcept { return now_ns() - start_; }
  double elapsed_us() const noexcept {
    return static_cast<double>(elapsed_ns()) * 1e-3;
  }
  double elapsed_ms() const noexcept {
    return static_cast<double>(elapsed_ns()) * 1e-6;
  }
  double elapsed_s() const noexcept {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

 private:
  std::uint64_t start_;
};

}  // namespace bgq
