// Streaming statistics and simple fixed-bucket histograms used by the
// benchmark harnesses and the discrete-event simulator's reporting layer.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace bgq {

/// Welford streaming mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }

  void merge(const RunningStats& o) noexcept {
    if (o.n_ == 0) return;
    if (n_ == 0) { *this = o; return; }
    const double total = static_cast<double>(n_ + o.n_);
    const double d = o.mean_ - mean_;
    m2_ += o.m2_ + d * d * static_cast<double>(n_) *
                        static_cast<double>(o.n_) / total;
    mean_ += d * static_cast<double>(o.n_) / total;
    n_ += o.n_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Collects raw samples; supports exact percentiles.  Intended for latency
/// distributions with up to a few million samples.
class SampleSet {
 public:
  void reserve(std::size_t n) { samples_.reserve(n); }
  void add(double x) { samples_.push_back(x); }
  std::size_t count() const noexcept { return samples_.size(); }

  double mean() const noexcept {
    if (samples_.empty()) return 0.0;
    double s = 0.0;
    for (double x : samples_) s += x;
    return s / static_cast<double>(samples_.size());
  }

  /// Exact percentile p in [0, 100]; sorts a copy lazily.
  double percentile(double p) const {
    if (samples_.empty()) return 0.0;
    std::vector<double> v(samples_);
    std::sort(v.begin(), v.end());
    const double idx =
        (p / 100.0) * static_cast<double>(v.size() - 1);
    const auto lo = static_cast<std::size_t>(idx);
    const auto hi = std::min(lo + 1, v.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return v[lo] + (v[hi] - v[lo]) * frac;
  }

  double median() const { return percentile(50.0); }
  double min() const {
    return samples_.empty()
               ? 0.0
               : *std::min_element(samples_.begin(), samples_.end());
  }
  double max() const {
    return samples_.empty()
               ? 0.0
               : *std::max_element(samples_.begin(), samples_.end());
  }

  const std::vector<double>& raw() const noexcept { return samples_; }
  void clear() noexcept { samples_.clear(); }

 private:
  std::vector<double> samples_;
};

}  // namespace bgq
