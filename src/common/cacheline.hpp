// Cache-line layout helpers.
//
// The BG/Q A2 core has 64-byte L1 lines and 128-byte L2 lines; false sharing
// between the producer and consumer halves of a queue costs an L2 round trip
// (~60 cycles on BG/Q).  All concurrently-written fields in this codebase are
// padded to BGQ_L2_LINE so that emulated "L2 atomic" words never share a line
// with unrelated state, mirroring the layout discipline of the real port.
#pragma once

#include <cstddef>
#include <new>

namespace bgq {

/// L1 data-cache line size of the A2 core (and of typical x86-64 hosts).
inline constexpr std::size_t kL1Line = 64;

/// L2 cache line size of the BG/Q compute chip.  Atomic counters are padded
/// to this granularity so each lives on its own L2 line.
inline constexpr std::size_t kL2Line = 128;

/// A value of T alone on its own L2 cache line.
template <typename T>
struct alignas(kL2Line) Padded {
  T value{};

  Padded() = default;
  explicit Padded(const T& v) : value(v) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

/// Round n up to a multiple of `align` (power of two).
constexpr std::size_t align_up(std::size_t n, std::size_t align) noexcept {
  return (n + align - 1) & ~(align - 1);
}

/// True if n is a power of two (n > 0).
constexpr bool is_pow2(std::size_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

/// Smallest power of two >= n (n >= 1).
constexpr std::size_t next_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace bgq
