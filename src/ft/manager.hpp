// The fault-tolerance manager: crash injection, heartbeat failure
// detection, coordinated buddy checkpointing, rollback recovery, and the
// hang watchdog — the runtime service that turns the chaos-tolerant
// machine of PR 3 into a failure-tolerant one.
//
// One Manager per fault-tolerant Machine.  It owns a monitor thread
// (started/stopped by Machine::run) that fires scheduled crash events,
// posts best-effort heartbeats, declares silent processes dead, and
// watches global progress.  The heavyweight protocol work — quiescing,
// snapshotting, restoring — runs on the worker PEs themselves via poll(),
// which the scheduler loop calls when its queue is drained: workers park
// in a progress-aware barrier while the leader (lowest live PE) drives
// the protocol, exactly the shape of Charm++'s in-memory checkpointing.
//
// Epoch discipline: every application message carries the machine's
// 16-bit epoch.  Detection bumps it once (in-flight and queued messages
// go stale immediately); the recovery leader bumps it again inside the
// barrier, after every handler has parked, so messages sent by handlers
// that raced the first bump are stale too.  Only post-resume traffic
// carries the live epoch.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "ft/config.hpp"
#include "ft/store.hpp"
#include "net/fault.hpp"
#include "transport/transport.hpp"

namespace bgq::cvs {
class Machine;
class Pe;
}  // namespace bgq::cvs

namespace bgq::ft {

/// The application-state hooks the checkpoint protocol drives — the
/// charm layer's Runtime implements them (pup of chare-array elements
/// plus in-flight reduction state).
class Client {
 public:
  virtual ~Client() = default;

  /// Serialize process `proc`'s share of application state.
  virtual std::vector<std::byte> save(unsigned proc) = 0;

  /// Roll all application state back to the checkpoint in `blobs`
  /// (proc -> blob, one entry per process saved).  Runs with every live
  /// worker parked; element re-homing onto survivors happens here.
  virtual void restore(
      const std::map<unsigned, std::vector<std::byte>>& blobs) = 0;

  /// Re-kick the application after a checkpoint or recovery (the app
  /// defers its next step while a snapshot is in progress).  Runs on the
  /// leader PE; sends normal epoch-stamped messages.
  virtual void resume(cvs::Pe& pe) = 0;
};

class Manager {
 public:
  Manager(cvs::Machine& mach, Config cfg,
          std::vector<net::CrashEvent> crashes);
  ~Manager();

  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  /// Register the application-state hooks (the charm Runtime).  Must
  /// outlive the run.
  void set_client(Client* c) noexcept { client_ = c; }

  /// Machine::run lifecycle: start() seeds liveness and launches the
  /// monitor thread before workers spawn; stop() joins it after they
  /// exit.
  void start();
  void stop();

  /// Worker-scheduler hook, called when the PE's queue is drained.
  /// Returns true when protocol work ran (checkpoint or recovery).
  bool poll(cvs::Pe& pe);

  /// Ask for a coordinated checkpoint (app-cooperative: call at a step
  /// boundary, when no application messages are outstanding).  Returns
  /// false when a checkpoint or recovery is already in progress.
  bool request_checkpoint();

  /// True when checkpoint_period_ms elapsed since the last snapshot.
  bool checkpoint_due() const;

  /// Bookkeeping hook for Machine::kill_process: the copies a dead
  /// process held are gone.  (In a multi-process job each rank's store
  /// only ever holds copies in its own memory — a dead rank's store dies
  /// with its OS process — so there is nothing to drop.)
  void on_killed(unsigned proc);

  /// FT control frames (ctrl::kFtBase and up) routed here by the machine
  /// layer.  Runs on the transport poller thread.
  void on_ctrl(const transport::CtrlMsg& m);

  /// Set when the watchdog fired with watchdog_abort == false.
  bool hang_detected() const noexcept {
    return hang_.load(std::memory_order_acquire);
  }

  CheckpointStore& store() noexcept { return store_; }

  // ---- counters (ft.* gauges in Machine::metrics_report) ---------------
  std::uint64_t checkpoints() const noexcept { return checkpoints_.load(); }
  std::uint64_t checkpoints_skipped() const noexcept {
    return skipped_.load();
  }
  std::uint64_t recoveries() const noexcept { return recoveries_.load(); }
  std::uint64_t crashes_fired() const noexcept { return crashes_fired_.load(); }
  std::uint64_t heartbeats() const noexcept { return heartbeats_.load(); }
  std::uint64_t watchdog_dumps() const noexcept { return dumps_.load(); }
  std::uint64_t checkpoint_bytes() const noexcept {
    return ckpt_bytes_.load();
  }
  std::uint64_t recovery_ns() const noexcept { return recovery_ns_.load(); }
  std::uint64_t detect_ns() const noexcept { return detect_ns_.load(); }

 private:
  enum class Phase : int { kRun, kCheckpoint, kRecover };

  void monitor_loop();
  void fire_crashes(std::uint64_t now);
  void post_heartbeats(std::uint64_t now);
  void detect_failures(std::uint64_t now);
  void watchdog(std::uint64_t now);
  void unrecoverable(const char* why);
  void dump_diagnostics(const char* why);

  void do_checkpoint(cvs::Pe& pe);
  void do_checkpoint_multi(cvs::Pe& pe);
  void do_recover(cvs::Pe& pe);
  void do_recover_multi(cvs::Pe& pe);
  bool is_leader(const cvs::Pe& pe) const;
  bool wait_quiesce(cvs::Pe& pe);
  bool wait_quiesce_multi(cvs::Pe& pe);
  unsigned buddy_of(unsigned proc) const;
  void snapshot_all(std::uint64_t seq);
  std::uint64_t live_mask() const;
  void record_members(std::uint64_t seq, std::uint64_t mask);

  cvs::Machine& mach_;
  const Config cfg_;
  Client* client_ = nullptr;
  CheckpointStore store_;

  std::vector<net::CrashEvent> crashes_;
  std::vector<bool> crash_fired_;

  std::atomic<Phase> phase_{Phase::kRun};
  std::atomic<std::uint64_t> ckpt_seq_{0};
  std::atomic<std::uint64_t> last_ckpt_ns_{0};

  // ---- multi-process protocol state (idle single-process) --------------
  // Per-rank quiescence registers, fed by each rank's monitor broadcasting
  // kFtRegs every tick.  gen is written last (release) so a reader that
  // sees it advanced sees a row at least that fresh.
  struct alignas(64) RegsRow {
    std::atomic<std::uint64_t> sent{0};
    std::atomic<std::uint64_t> exec{0};
    std::atomic<std::uint64_t> gen{0};
  };
  std::vector<RegsRow> regs_;  ///< by transport rank; sized when multiproc
  std::atomic<std::uint64_t> regs_gen_{0};

  // Leader -> ranks checkpoint plan.  One plan is outstanding at a time
  // (serialized by the protocol barriers); stamp is bumped last.
  std::atomic<std::uint64_t> plan_seq_{0};
  std::atomic<std::uint64_t> plan_go_{0};
  std::atomic<std::uint64_t> plan_members_{0};
  std::atomic<std::uint64_t> plan_stamp_{0};
  std::uint64_t plan_seen_ = 0;  ///< protocol PE only

  std::atomic<std::uint64_t> done_count_{0};  ///< kCkptDone arrivals (leader)

  // Which procs a committed epoch covers (recovery must gather exactly
  // these blobs) and the blob exchange for an in-flight recovery.
  std::mutex members_mu_;
  std::map<std::uint64_t, std::uint64_t> members_by_seq_;
  std::mutex rec_mu_;
  std::map<std::uint64_t, std::map<unsigned, std::vector<std::byte>>>
      rec_blobs_;

  // Monitor thread.
  std::thread monitor_;
  std::mutex mon_mu_;
  std::condition_variable mon_cv_;
  bool mon_stop_ = false;
  std::uint64_t run_start_ns_ = 0;
  std::uint64_t last_hb_ns_ = 0;
  std::uint64_t last_exec_ = 0;
  std::uint64_t last_progress_ns_ = 0;

  std::atomic<bool> hang_{false};
  std::atomic<std::uint64_t> checkpoints_{0};
  std::atomic<std::uint64_t> skipped_{0};
  std::atomic<std::uint64_t> recoveries_{0};
  std::atomic<std::uint64_t> crashes_fired_{0};
  std::atomic<std::uint64_t> heartbeats_{0};
  std::atomic<std::uint64_t> dumps_{0};
  std::atomic<std::uint64_t> ckpt_bytes_{0};
  std::atomic<std::uint64_t> recovery_ns_{0};
  std::atomic<std::uint64_t> detect_ns_{0};
};

}  // namespace bgq::ft
