// Fault-tolerance configuration knobs (part of MachineConfig).
//
// Two independent services share the machinery:
//  - `enabled` arms the full Charm++-style double in-memory checkpoint /
//    restart protocol: heartbeats, the failure detector, buddy snapshots
//    and epoch rollback.
//  - `watchdog_ms` arms only the hang watchdog: a monitor that dumps
//    per-PE diagnostics and aborts when global progress stalls, so a
//    wedged run is diagnosable instead of silent.
//
// Crash events in a FaultPlan are honored only when `armed()` — a
// crash-bearing BGQ_FAULT_PLAN is inert for machines that opted out,
// which lets one env plan cover an entire mixed test suite.
#pragma once

#include <cstdint>

namespace bgq::ft {

struct Config {
  bool enabled = false;  ///< checkpoint/restart protocol on

  /// Suggested checkpoint cadence.  Checkpoints are app-cooperative
  /// (message-driven apps never transiently quiesce on their own): the
  /// app calls Runtime::start_checkpoint() at a step boundary when
  /// Runtime::checkpoint_due() says the period elapsed.  0 = only
  /// explicit start_checkpoint() calls.
  std::uint64_t checkpoint_period_ms = 0;

  /// Cadence of standalone best-effort heartbeat packets (liveness is
  /// also refreshed by *every* fabric transfer from a peer, acks
  /// included, so heartbeats only matter for idle processes).
  std::uint64_t heartbeat_period_ms = 2;

  /// Declare a process dead after this long without hearing from it.
  std::uint64_t failure_timeout_ms = 40;

  /// Hang watchdog: abort (or stop, see watchdog_abort) after this long
  /// with no globally executed message.  0 = watchdog off.
  std::uint64_t watchdog_ms = 0;

  /// True: the watchdog dumps diagnostics and std::abort()s — the
  /// production behaviour (a hang becomes a loud crash).  False: it dumps,
  /// requests a machine stop, and sets a flag tests can read.
  bool watchdog_abort = true;

  /// Reset the metrics registry's epoch during recovery so post-restart
  /// `ft.*`/`net.*` counters aren't conflated with pre-crash traffic.
  bool reset_metrics_epoch = false;

  bool armed() const noexcept { return enabled || watchdog_ms > 0; }
};

}  // namespace bgq::ft
