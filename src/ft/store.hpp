// Double in-memory checkpoint store.
//
// Charm++'s double in-memory scheme keeps rank r's checkpoint on r itself
// and on a buddy (r+1 mod P): one process death leaves every blob
// reachable on a survivor.  The emulation runs all "processes" in one
// address space, so the store is a single structure — but it tracks the
// *holder* of each copy honestly, and a killed process's copies are
// dropped (drop_holder) before recovery reads anything.  A recovery that
// would have been impossible on real hardware (both holders dead) is
// impossible here too.
//
// Epochs are written with put() then sealed with commit(); only the
// latest *committed* epoch is restored from.  The store retains at most
// the two most recent committed epochs (the in-flight one being written
// plus the fallback), mirroring the double-buffering of the real scheme.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

namespace bgq::ft {

class CheckpointStore {
 public:
  /// Store process `proc`'s blob for `epoch` on holders `proc` and
  /// `buddy` (pass buddy == proc to keep a single copy).
  void put(std::uint64_t epoch, unsigned proc, unsigned buddy,
           std::vector<std::byte> blob) {
    std::lock_guard<std::mutex> g(mu_);
    auto& ep = epochs_[epoch];
    ep.copies.push_back({proc, proc, blob});
    if (buddy != proc) ep.copies.push_back({proc, buddy, std::move(blob)});
  }

  /// Seal `epoch`: it becomes restorable, and committed epochs older than
  /// its predecessor are pruned (double buffering).
  void commit(std::uint64_t epoch) {
    std::lock_guard<std::mutex> g(mu_);
    epochs_[epoch].complete = true;
    std::uint64_t keep_from = 0;
    std::uint64_t newest = 0;
    for (const auto& [e, rec] : epochs_) {
      if (!rec.complete) continue;
      keep_from = newest;  // second-newest committed
      newest = e;
    }
    for (auto it = epochs_.begin(); it != epochs_.end();) {
      it = (it->first < keep_from) ? epochs_.erase(it) : std::next(it);
    }
  }

  /// Newest committed epoch, or 0 when nothing is restorable yet.
  std::uint64_t latest_complete() const {
    std::lock_guard<std::mutex> g(mu_);
    std::uint64_t newest = 0;
    for (const auto& [e, rec] : epochs_) {
      if (rec.complete) newest = std::max(newest, e);
    }
    return newest;
  }

  /// All copies held by `proc` vanish with it (called at kill time).
  void drop_holder(unsigned proc) {
    std::lock_guard<std::mutex> g(mu_);
    for (auto& [e, rec] : epochs_) {
      auto& v = rec.copies;
      v.erase(std::remove_if(v.begin(), v.end(),
                             [proc](const Copy& c) {
                               return c.holder == proc;
                             }),
              v.end());
    }
  }

  /// Fetch `proc`'s blob for `epoch` from any surviving holder.
  bool fetch(std::uint64_t epoch, unsigned proc,
             std::vector<std::byte>& out) const {
    std::lock_guard<std::mutex> g(mu_);
    const auto it = epochs_.find(epoch);
    if (it == epochs_.end()) return false;
    for (const auto& c : it->second.copies) {
      if (c.proc == proc) {
        out = c.blob;
        return true;
      }
    }
    return false;
  }

  /// Processes with at least one surviving copy in `epoch`, sorted.
  std::vector<unsigned> procs(std::uint64_t epoch) const {
    std::lock_guard<std::mutex> g(mu_);
    std::vector<unsigned> out;
    const auto it = epochs_.find(epoch);
    if (it == epochs_.end()) return out;
    for (const auto& c : it->second.copies) out.push_back(c.proc);
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

  /// Total bytes resident across all copies (the `ft.checkpoint_bytes`
  /// gauge).
  std::uint64_t resident_bytes() const {
    std::lock_guard<std::mutex> g(mu_);
    std::uint64_t n = 0;
    for (const auto& [e, rec] : epochs_) {
      for (const auto& c : rec.copies) n += c.blob.size();
    }
    return n;
  }

 private:
  struct Copy {
    unsigned proc;    ///< whose state this is
    unsigned holder;  ///< which process's memory it lives in
    std::vector<std::byte> blob;
  };
  struct Epoch {
    bool complete = false;
    std::vector<Copy> copies;
  };

  mutable std::mutex mu_;
  std::map<std::uint64_t, Epoch> epochs_;
};

}  // namespace bgq::ft
