// PUP (pack/unpack) — the minimal serialization contract chare elements
// implement so the runtime can checkpoint and migrate their state.
//
// Mirrors Charm++'s PUP::er in miniature: one `pup(Pup&)` method per
// chare describes its state once, and the same code both sizes/writes a
// checkpoint and reads it back, so the two directions can never drift
// apart.  Only trivially-copyable scalars and vectors thereof are
// supported — enough for the mini-apps, and small enough to audit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <type_traits>
#include <vector>

namespace bgq::ft {

class Pup {
 public:
  /// Packing: start empty and write.
  Pup() : packing_(true) {}

  /// Unpacking: wrap a checkpoint blob and read.
  explicit Pup(const std::vector<std::byte>& data)
      : packing_(false), data_(data) {}

  bool packing() const noexcept { return packing_; }
  bool unpacking() const noexcept { return !packing_; }

  /// Scalar: copied bytewise in either direction.
  template <typename T>
  void operator()(T& v) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "pup() handles trivially-copyable types only");
    if (packing_) {
      const auto* p = reinterpret_cast<const std::byte*>(&v);
      data_.insert(data_.end(), p, p + sizeof(T));
    } else {
      if (pos_ + sizeof(T) > data_.size()) {
        throw std::out_of_range("Pup: checkpoint blob truncated");
      }
      std::memcpy(&v, data_.data() + pos_, sizeof(T));
      pos_ += sizeof(T);
    }
  }

  /// Vector of scalars: length-prefixed; unpacking resizes.
  template <typename T>
  void vec(std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "pup().vec() handles trivially-copyable types only");
    std::uint64_t n = v.size();
    (*this)(n);
    if (unpacking()) v.resize(static_cast<std::size_t>(n));
    const std::size_t bytes = static_cast<std::size_t>(n) * sizeof(T);
    if (bytes == 0) return;
    if (packing_) {
      const auto* p = reinterpret_cast<const std::byte*>(v.data());
      data_.insert(data_.end(), p, p + bytes);
    } else {
      if (pos_ + bytes > data_.size()) {
        throw std::out_of_range("Pup: checkpoint blob truncated");
      }
      std::memcpy(v.data(), data_.data() + pos_, bytes);
      pos_ += bytes;
    }
  }

  /// Raw bytes written so far (packing side).
  const std::vector<std::byte>& bytes() const noexcept { return data_; }
  std::vector<std::byte> take() noexcept { return std::move(data_); }

  /// Unpacking cursor, for callers interleaving their own framing.
  std::size_t remaining() const noexcept { return data_.size() - pos_; }

 private:
  bool packing_;
  std::vector<std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace bgq::ft
