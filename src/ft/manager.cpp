// Fault-tolerance manager implementation: see manager.hpp for the
// protocol overview.  The monitor thread owns the cheap periodic duties
// (crash schedule, heartbeats, failure detection, hang watchdog); the
// checkpoint/recovery protocol itself runs on the worker PEs via poll().
#include "ft/manager.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/timing.hpp"
#include "converse/machine.hpp"
#include "trace/trace.hpp"

namespace bgq::ft {

namespace {
constexpr std::uint64_t kMsPerNs = 1000u * 1000u;

std::uint64_t popcount64(std::uint64_t v) {
  std::uint64_t n = 0;
  for (; v != 0; v &= v - 1) ++n;
  return n;
}
}  // namespace

Manager::Manager(cvs::Machine& mach, Config cfg,
                 std::vector<net::CrashEvent> crashes)
    : mach_(mach),
      cfg_(cfg),
      crashes_(std::move(crashes)),
      crash_fired_(crashes_.size(), false),
      // config-derived count: the machine's Process objects don't exist
      // yet when the manager is built.
      regs_(mach.multiproc() ? mach.config().process_count() : 0) {}

Manager::~Manager() { stop(); }

void Manager::start() {
  const std::uint64_t now = now_ns();
  run_start_ns_ = now;
  last_hb_ns_ = now;
  last_exec_ = 0;
  last_progress_ns_ = now;
  last_ckpt_ns_.store(now, std::memory_order_release);
  // Seed liveness so nobody is declared dead before first traffic.
  for (std::size_t p = 0; p < mach_.process_count(); ++p) {
    mach_.fabric().touch_liveness(static_cast<topo::NodeId>(p), now);
  }
  {
    std::lock_guard<std::mutex> g(mon_mu_);
    mon_stop_ = false;
  }
  monitor_ = std::thread([this] { monitor_loop(); });
}

void Manager::stop() {
  {
    std::lock_guard<std::mutex> g(mon_mu_);
    mon_stop_ = true;
  }
  mon_cv_.notify_all();
  if (monitor_.joinable()) monitor_.join();
}

void Manager::monitor_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mon_mu_);
      mon_cv_.wait_for(lk, std::chrono::milliseconds(1),
                       [this] { return mon_stop_; });
      if (mon_stop_) return;
    }
    const std::uint64_t now = now_ns();
    fire_crashes(now);
    if (cfg_.enabled) {
      post_heartbeats(now);
      detect_failures(now);
      if (mach_.multiproc()) {
        // Publish this rank's quiescence registers every tick; the
        // checkpoint leader sums the latest row from every live rank
        // (wait_quiesce_multi).  gen lets the reader insist on a row
        // newer than its previous sample.
        transport::CtrlMsg rm;
        rm.type = cvs::ctrl::kFtRegs;
        rm.a = mach_.ft_sent();
        rm.b = mach_.ft_executed();
        rm.c = regs_gen_.fetch_add(1, std::memory_order_relaxed) + 1;
        try {
          mach_.send_ctrl(-1, std::move(rm));
        } catch (...) {
          // A peer torn down mid-shutdown: the detector handles it.
        }
      }
    }
    watchdog(now);
  }
}

void Manager::fire_crashes(std::uint64_t now) {
  // A crash landing after the app finished (the stop flag is up) would
  // model a failure nobody is left to recover from — and in a
  // multi-process job would turn a clean run's teardown into a spurious
  // exit-42.  The plan's window is the run, not the teardown.
  if (mach_.stopping()) return;
  for (std::size_t i = 0; i < crashes_.size(); ++i) {
    if (crash_fired_[i]) continue;
    const net::CrashEvent& ev = crashes_[i];
    if (mach_.multiproc() && !mach_.process_local(ev.process)) {
      // Another OS rank owns this event (each rank fires only its own
      // crash — and fires it for real, by exiting).
      crash_fired_[i] = true;
      continue;
    }
    const bool due =
        (ev.at_ms != 0 && now - run_start_ns_ >= ev.at_ms * kMsPerNs) ||
        (ev.at_msgs != 0 && mach_.ft_sent() >= ev.at_msgs);
    if (!due) continue;
    crash_fired_[i] = true;
    if (ev.process >= mach_.process_count()) continue;  // plan oversized
    if (mach_.multiproc()) {
      // A real process death: no destructors, no flushes — the survivors
      // must learn of it from heartbeat silence alone.  bgq-run treats
      // exit code 42 as the planned crash.
      std::fprintf(stderr, "bgq-ft: rank %u crashing on schedule\n",
                   ev.process);
      std::_Exit(42);
    }
    mach_.kill_process(ev.process);
    crashes_fired_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Manager::post_heartbeats(std::uint64_t now) {
  if (now - last_hb_ns_ < cfg_.heartbeat_period_ms * kMsPerNs) return;
  last_hb_ns_ = now;
  for (std::size_t p = 0; p < mach_.process_count(); ++p) {
    // Only a process whose threads run here can post work; a remote
    // rank's Process object is an addressing stub with no one to drain
    // its queues.
    if (!mach_.process_local(p)) continue;
    if (mach_.process_killed(p)) continue;
    mach_.process(p).post_heartbeats();
    heartbeats_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Manager::detect_failures(std::uint64_t now) {
  // Declared deaths drive everything downstream (barrier skips, the
  // leader role, re-homing).  Detection runs during kRun and also during
  // kCheckpoint — a crash landing mid-checkpoint must still be declared,
  // or the survivors cycling the (killed-slot-skipping) barriers would
  // wait forever for a leader that no longer exists.  Only kRecover is
  // off-limits: the restore itself must see a frozen membership.
  if (phase_.load(std::memory_order_acquire) == Phase::kRecover) return;
  if (mach_.stopping()) return;
  bool newly_dead = false;
  for (std::size_t p = 0; p < mach_.process_count(); ++p) {
    if (mach_.process_dead(p)) continue;
    const std::uint64_t heard =
        mach_.fabric().last_heard(static_cast<topo::NodeId>(p));
    const std::uint64_t age = now > heard ? now - heard : 0;
    if (age < cfg_.failure_timeout_ms * kMsPerNs) continue;
    // Silent past the timeout: declare it dead.  kill_process is
    // idempotent — for an injected crash the endpoint is already dead and
    // this is a no-op; for a genuine wedge it also cuts the process off,
    // so the survivors' view and the fabric agree from here on.
    mach_.kill_process(p);
    mach_.declare_dead(p);
    detect_ns_.store(age, std::memory_order_relaxed);
    newly_dead = true;
  }
  if (!newly_dead) return;
  if (mach_.live_process_count() == 0) {
    unrecoverable("all processes dead");
    return;
  }
  if (client_ == nullptr || store_.latest_complete() == 0) {
    unrecoverable("process died before any committed checkpoint");
    return;
  }
  // First epoch bump: every in-flight and queued pre-death message goes
  // stale immediately.  Handlers racing this bump may still emit messages
  // at the new epoch; the recovery leader bumps once more inside the
  // barrier to invalidate those too.
  mach_.bump_msg_epoch();
  phase_.store(Phase::kRecover, std::memory_order_release);
}

void Manager::watchdog(std::uint64_t now) {
  if (cfg_.watchdog_ms == 0) return;
  const std::uint64_t exec = mach_.ft_executed();
  if (mach_.stopping() ||
      phase_.load(std::memory_order_acquire) != Phase::kRun ||
      exec != last_exec_) {
    // Progress (or a protocol phase that legitimately stalls the app):
    // re-arm.  Heartbeats keep the fabric busy during a wedge, so the
    // watchdog watches executed-message count, never raw transfers.
    last_exec_ = exec;
    last_progress_ns_ = now;
    return;
  }
  if (now - last_progress_ns_ < cfg_.watchdog_ms * kMsPerNs) return;
  dumps_.fetch_add(1, std::memory_order_relaxed);
  dump_diagnostics("watchdog: no message executed within deadline");
  if (cfg_.watchdog_abort) std::abort();
  hang_.store(true, std::memory_order_release);
  mach_.request_stop();
}

void Manager::unrecoverable(const char* why) {
  dump_diagnostics(why);
  if (cfg_.watchdog_abort) std::abort();
  hang_.store(true, std::memory_order_release);
  mach_.request_stop();
}

void Manager::dump_diagnostics(const char* why) {
  const std::uint64_t now = now_ns();
  std::fprintf(stderr, "=== bgq ft diagnostic dump: %s ===\n", why);
  std::fprintf(
      stderr,
      "phase=%d epoch=%u ft_sent=%llu ft_executed=%llu stale_drops=%llu\n",
      static_cast<int>(phase_.load(std::memory_order_acquire)),
      mach_.msg_epoch(),
      static_cast<unsigned long long>(mach_.ft_sent()),
      static_cast<unsigned long long>(mach_.ft_executed()),
      static_cast<unsigned long long>(mach_.stale_drops()));
  for (std::size_t p = 0; p < mach_.process_count(); ++p) {
    const std::uint64_t heard =
        mach_.fabric().last_heard(static_cast<topo::NodeId>(p));
    std::fprintf(stderr,
                 "proc %zu: killed=%d dead=%d last_heard_age_ms=%.1f\n", p,
                 mach_.process_killed(p) ? 1 : 0,
                 mach_.process_dead(p) ? 1 : 0,
                 heard != 0 && now > heard
                     ? static_cast<double>(now - heard) / 1e6
                     : -1.0);
    pami::Client& cl = mach_.process(p).client();
    for (unsigned i = 0; i < cl.context_count(); ++i) {
      const pami::Context& ctx = cl.context(i);
      std::fprintf(
          stderr,
          "  ctx%u: outstanding=%zu backlog=%zu retransmits=%llu\n", i,
          ctx.outstanding(), ctx.backlog_size(),
          static_cast<unsigned long long>(ctx.retransmits()));
    }
  }
  std::fprintf(stderr,
               "fabric: blackholed=%llu drops=%llu transfers=%llu\n",
               static_cast<unsigned long long>(mach_.fabric().blackholed()),
               static_cast<unsigned long long>(
                   mach_.fabric().faults_dropped()),
               static_cast<unsigned long long>(mach_.fabric().transfers()));
  if (mach_.trace_session().enabled()) {
    const trace::FlatTrace& ft = mach_.trace_session().collect();
    for (const auto& track : ft.tracks) {
      const std::size_t n = track.events.size();
      if (n == 0) continue;
      std::fprintf(stderr, "trace tail %s:", track.name.c_str());
      for (std::size_t i = n > 4 ? n - 4 : 0; i < n; ++i) {
        const trace::Event& e = track.events[i];
        std::fprintf(stderr, " [%s arg=%u t=%.3fms]",
                     trace::kind_name(e.kind), e.arg,
                     static_cast<double>(e.t_ns) / 1e6);
      }
      std::fprintf(stderr, "\n");
    }
  }
  std::fprintf(stderr, "=== end dump ===\n");
}

bool Manager::poll(cvs::Pe& pe) {
  switch (phase_.load(std::memory_order_acquire)) {
    case Phase::kRun:
      return false;
    case Phase::kCheckpoint:
      mach_.multiproc() ? do_checkpoint_multi(pe) : do_checkpoint(pe);
      return true;
    case Phase::kRecover:
      mach_.multiproc() ? do_recover_multi(pe) : do_recover(pe);
      return true;
  }
  return false;
}

bool Manager::request_checkpoint() {
  if (!cfg_.enabled) return false;
  Phase expected = Phase::kRun;
  if (!phase_.compare_exchange_strong(expected, Phase::kCheckpoint,
                                      std::memory_order_acq_rel)) {
    return false;
  }
  // The request lands on whichever rank hosts the triggering element;
  // pull every other rank's phase over too (receivers CAS kRun ->
  // kCheckpoint, so a request racing a failure loses to recovery).
  if (mach_.multiproc()) {
    transport::CtrlMsg m;
    m.type = cvs::ctrl::kCkptReq;
    mach_.send_ctrl(-1, std::move(m));
  }
  return true;
}

void Manager::on_killed(unsigned proc) {
  // Single-process: the copies the dead emulated process held are gone.
  // Multi-process: each rank's store only ever holds copies in its own
  // memory — a dead rank's store died with its OS process, and dropping
  // by holder here would wrongly discard the *survivor's* buddy copy of
  // the dead rank's state (stored under the dead rank's proc id).
  if (!mach_.multiproc()) store_.drop_holder(proc);
}

void Manager::on_ctrl(const transport::CtrlMsg& m) {
  switch (m.type) {
    case cvs::ctrl::kFtRegs: {
      if (m.origin >= regs_.size()) return;
      RegsRow& r = regs_[m.origin];
      r.sent.store(m.a, std::memory_order_relaxed);
      r.exec.store(m.b, std::memory_order_relaxed);
      r.gen.store(m.c, std::memory_order_release);  // written last
      return;
    }
    case cvs::ctrl::kCkptReq: {
      Phase expected = Phase::kRun;
      phase_.compare_exchange_strong(expected, Phase::kCheckpoint,
                                     std::memory_order_acq_rel);
      return;
    }
    case cvs::ctrl::kCkptPlan: {
      plan_seq_.store(m.a, std::memory_order_relaxed);
      plan_go_.store(m.b, std::memory_order_relaxed);
      plan_members_.store(m.c, std::memory_order_relaxed);
      plan_stamp_.fetch_add(1, std::memory_order_release);  // wakes waiter
      return;
    }
    case cvs::ctrl::kCkptBlob: {
      // This rank is the buddy holder of rank m.b's blob for epoch m.a.
      store_.put(m.a, static_cast<unsigned>(m.b),
                 static_cast<unsigned>(m.b), m.blob);
      return;
    }
    case cvs::ctrl::kCkptDone: {
      // Stale dones from an abandoned round carry an older seq.
      if (m.a == plan_seq_.load(std::memory_order_relaxed)) {
        done_count_.fetch_add(1, std::memory_order_acq_rel);
      }
      return;
    }
    case cvs::ctrl::kCkptCommit: {
      record_members(m.a, m.c);
      store_.commit(m.a);
      std::uint64_t cur = ckpt_seq_.load(std::memory_order_acquire);
      while (cur < m.a &&
             !ckpt_seq_.compare_exchange_weak(cur, m.a,
                                              std::memory_order_acq_rel)) {
      }
      checkpoints_.fetch_add(1, std::memory_order_relaxed);
      ckpt_bytes_.store(store_.resident_bytes(), std::memory_order_relaxed);
      last_ckpt_ns_.store(now_ns(), std::memory_order_release);
      return;
    }
    case cvs::ctrl::kRecBlob: {
      // First copy wins; every holder rebroadcasts what it has, so
      // duplicates are the common case.
      std::lock_guard<std::mutex> g(rec_mu_);
      rec_blobs_[m.a].emplace(static_cast<unsigned>(m.b), m.blob);
      return;
    }
    default:
      return;
  }
}

bool Manager::checkpoint_due() const {
  if (!cfg_.enabled || cfg_.checkpoint_period_ms == 0) return false;
  // Until the first commit any failure is unrecoverable, so the first
  // step boundary always checkpoints regardless of the period.
  if (checkpoints_.load(std::memory_order_relaxed) == 0) return true;
  return now_ns() - last_ckpt_ns_.load(std::memory_order_acquire) >=
         cfg_.checkpoint_period_ms * kMsPerNs;
}

bool Manager::is_leader(const cvs::Pe& pe) const {
  return pe.rank() == mach_.lowest_live_pe();
}

unsigned Manager::buddy_of(unsigned proc) const {
  const std::size_t n = mach_.process_count();
  for (std::size_t k = 1; k < n; ++k) {
    const auto q = static_cast<unsigned>((proc + k) % n);
    if (!mach_.process_dead(q) && !mach_.process_killed(q)) return q;
  }
  return proc;  // no live buddy: single copy
}

bool Manager::wait_quiesce(cvs::Pe& pe) {
  // The other live PEs are parked in the exit barrier, where each keeps
  // advancing its own PAMI context — in the FT configurations (one worker
  // per process) arrivals execute inline from that advance, so straggling
  // messages drain and the sent/executed counts converge.  Bounded: an
  // app that checkpoints mid-step (messages still crossing) makes no
  // progress here and the checkpoint is skipped, not wedged.
  pami::Context* ctx = pe.owned_context();
  for (int iter = 0; iter < 200000; ++iter) {
    if (mach_.ft_sent() == mach_.ft_executed()) return true;
    if (mach_.stopping()) return false;
    // A failure detected while we wait flips the phase to kRecover; the
    // counts then can never converge (sends to the dead process are
    // executed by no one), so give up and let recovery run.
    if (phase_.load(std::memory_order_acquire) != Phase::kCheckpoint) {
      return false;
    }
    if (ctx != nullptr) ctx->advance();
    // Inline-executed arrivals may have staged fresh aggregation records;
    // without the timeout flush the sent/executed counts could not
    // converge while they sit buffered.
    mach_.tram_tick(pe);
    std::this_thread::yield();
  }
  return false;
}

bool Manager::wait_quiesce_multi(cvs::Pe& pe) {
  // Distributed four-counter quiescence (leader only).  Every rank's
  // monitor broadcasts its local (sent, executed) registers each tick;
  // we sum our own live counters with the newest remote rows and succeed
  // when two samples agree, the totals balance, and every live remote
  // generation advanced in between — by counter monotonicity a message
  // in flight across the second sample would leave sent > executed.
  pami::Context* ctx = pe.owned_context();
  const std::size_t n = mach_.process_count();
  const unsigned self = mach_.local_rank();
  std::vector<std::uint64_t> gen0(n, 0);
  std::uint64_t s0 = 0, e0 = 0;
  bool armed = false;
  for (int iter = 0; iter < 400000; ++iter) {
    if (mach_.stopping()) return false;
    if (phase_.load(std::memory_order_acquire) != Phase::kCheckpoint) {
      return false;  // a failure flipped us into recovery
    }
    std::uint64_t s = mach_.ft_sent();
    std::uint64_t e = mach_.ft_executed();
    std::vector<std::uint64_t> gen(n, 0);
    bool have_all = true;
    for (std::size_t p = 0; p < n; ++p) {
      if (p == self || mach_.process_dead(p) || mach_.process_killed(p)) {
        continue;
      }
      gen[p] = regs_[p].gen.load(std::memory_order_acquire);
      if (gen[p] == 0) {
        have_all = false;  // no report from this rank yet
        break;
      }
      s += regs_[p].sent.load(std::memory_order_relaxed);
      e += regs_[p].exec.load(std::memory_order_relaxed);
    }
    if (have_all && s == e) {
      if (armed && s == s0 && e == e0) {
        bool fresher = true;
        for (std::size_t p = 0; p < n; ++p) {
          if (p == self || mach_.process_dead(p) ||
              mach_.process_killed(p)) {
            continue;
          }
          if (gen[p] <= gen0[p]) {
            fresher = false;
            break;
          }
        }
        if (fresher) return true;
      }
      if (!armed) {
        armed = true;
        s0 = s;
        e0 = e;
        gen0 = gen;
      } else if (s != s0 || e != e0) {
        s0 = s;
        e0 = e;
        gen0 = gen;  // totals moved: restart the double sample
      }
    } else {
      armed = false;
    }
    if (ctx != nullptr) ctx->advance();
    mach_.tram_tick(pe);
    std::this_thread::yield();
  }
  return false;
}

void Manager::snapshot_all(std::uint64_t seq) {
  for (std::size_t p = 0; p < mach_.process_count(); ++p) {
    if (mach_.process_dead(p) || mach_.process_killed(p)) continue;
    const auto proc = static_cast<unsigned>(p);
    store_.put(seq, proc, buddy_of(proc), client_->save(proc));
  }
}

void Manager::do_checkpoint(cvs::Pe& pe) {
  // Entry barrier: every live PE is inside the protocol with its local
  // queue drained before anyone snapshots.
  mach_.worker_barrier(&pe);
  if (mach_.process_killed(mach_.process_of(pe.rank()))) return;
  if (is_leader(pe)) {
    const bool quiet = client_ != nullptr && wait_quiesce(pe);
    // A killed-but-undeclared process means home() still maps elements
    // onto it, so its share of the state would be missing from every
    // blob: never commit such an epoch — skip, and let the detector
    // (which also runs during this phase) turn the kill into a recovery.
    bool intact = true;
    for (std::size_t p = 0; p < mach_.process_count(); ++p) {
      if (mach_.process_killed(p) && !mach_.process_dead(p)) intact = false;
    }
    if (quiet && intact) {
      const std::uint64_t seq =
          ckpt_seq_.fetch_add(1, std::memory_order_acq_rel) + 1;
      snapshot_all(seq);
      store_.commit(seq);
      checkpoints_.fetch_add(1, std::memory_order_relaxed);
      ckpt_bytes_.store(store_.resident_bytes(),
                        std::memory_order_relaxed);
    } else {
      skipped_.fetch_add(1, std::memory_order_relaxed);
    }
    last_ckpt_ns_.store(now_ns(), std::memory_order_release);
    // The detector may have flipped the phase to kRecover while we
    // worked; in that case leave it alone and skip the resume — the
    // recovery leader re-kicks the app after the rollback instead.
    Phase expected = Phase::kCheckpoint;
    if (phase_.compare_exchange_strong(expected, Phase::kRun,
                                       std::memory_order_acq_rel) &&
        client_ != nullptr) {
      client_->resume(pe);
    }
  }
  // Exit barrier: non-leaders park here (advancing their contexts) until
  // the leader has committed and reopened the run phase.
  mach_.worker_barrier(&pe);
}

std::uint64_t Manager::live_mask() const {
  std::uint64_t mask = 0;
  for (std::size_t p = 0; p < mach_.process_count() && p < 64; ++p) {
    if (!mach_.process_dead(p) && !mach_.process_killed(p)) {
      mask |= 1ull << p;
    }
  }
  return mask;
}

void Manager::record_members(std::uint64_t seq, std::uint64_t mask) {
  std::lock_guard<std::mutex> g(members_mu_);
  members_by_seq_[seq] = mask;
}

void Manager::do_checkpoint_multi(cvs::Pe& pe) {
  // One emulated process per rank, so this PE is both the local lead and
  // the whole local membership.  Entry barrier: every rank's PE is inside
  // the protocol (kCkptReq pulled the others' phases over) before anyone
  // quiesces or snapshots.
  mach_.worker_barrier(&pe);
  const unsigned self = mach_.local_rank();
  if (mach_.process_killed(self)) return;
  const bool leader = is_leader(pe);
  pami::Context* ctx = pe.owned_context();
  std::uint64_t seq = 0, go = 0, members = 0;
  if (leader) {
    const bool quiet = client_ != nullptr && wait_quiesce_multi(pe);
    bool intact = true;
    for (std::size_t p = 0; p < mach_.process_count(); ++p) {
      if (mach_.process_killed(p) && !mach_.process_dead(p)) intact = false;
    }
    go = (quiet && intact) ? 1 : 0;
    seq = ckpt_seq_.load(std::memory_order_acquire) + 1;
    members = live_mask();
    done_count_.store(0, std::memory_order_release);
    plan_seq_.store(seq, std::memory_order_relaxed);  // filters stale dones
    transport::CtrlMsg pm;
    pm.type = cvs::ctrl::kCkptPlan;
    pm.a = seq;
    pm.b = go;
    pm.c = members;
    mach_.send_ctrl(-1, std::move(pm));
  } else {
    // Wait for the leader's plan (bounded; bail if a failure flips the
    // phase or the run is tearing down — the skipped round costs only a
    // missed checkpoint, never a wedge).
    bool got = false;
    for (int iter = 0; iter < 400000; ++iter) {
      const std::uint64_t st = plan_stamp_.load(std::memory_order_acquire);
      if (st != plan_seen_) {
        plan_seen_ = st;
        got = true;
        break;
      }
      if (mach_.stopping() ||
          phase_.load(std::memory_order_acquire) != Phase::kCheckpoint) {
        break;
      }
      if (ctx != nullptr) ctx->advance();
      mach_.tram_tick(pe);
      std::this_thread::yield();
    }
    if (got) {
      seq = plan_seq_.load(std::memory_order_relaxed);
      go = plan_go_.load(std::memory_order_relaxed);
      members = plan_members_.load(std::memory_order_relaxed);
    }
  }
  if (go != 0 && client_ != nullptr) {
    // Local copy first, then ship the buddy copy out of band; the
    // kCkptBlob lands in the buddy's store regardless of its phase.
    std::vector<std::byte> blob = client_->save(self);
    const unsigned buddy = buddy_of(self);
    store_.put(seq, self, self, blob);
    if (buddy != self) {
      transport::CtrlMsg bm;
      bm.type = cvs::ctrl::kCkptBlob;
      bm.a = seq;
      bm.b = self;
      bm.blob = std::move(blob);
      mach_.send_ctrl(static_cast<int>(buddy), std::move(bm));
    }
    if (leader) {
      done_count_.fetch_add(1, std::memory_order_acq_rel);
    } else {
      transport::CtrlMsg dm;
      dm.type = cvs::ctrl::kCkptDone;
      dm.a = seq;
      mach_.send_ctrl(
          static_cast<int>(mach_.process_of(mach_.lowest_live_pe())),
          std::move(dm));
    }
  }
  if (leader) {
    bool committed = false;
    if (go != 0) {
      // Commit only after every member reported its save: from then on a
      // single further death cannot lose the epoch.
      const std::uint64_t want = popcount64(members);
      for (int iter = 0; iter < 400000; ++iter) {
        if (done_count_.load(std::memory_order_acquire) >= want) {
          committed = true;
          break;
        }
        if (mach_.stopping() ||
            phase_.load(std::memory_order_acquire) != Phase::kCheckpoint) {
          break;
        }
        if (ctx != nullptr) ctx->advance();
        std::this_thread::yield();
      }
    }
    if (committed) {
      record_members(seq, members);
      store_.commit(seq);
      std::uint64_t cur = ckpt_seq_.load(std::memory_order_acquire);
      while (cur < seq &&
             !ckpt_seq_.compare_exchange_weak(cur, seq,
                                              std::memory_order_acq_rel)) {
      }
      checkpoints_.fetch_add(1, std::memory_order_relaxed);
      ckpt_bytes_.store(store_.resident_bytes(), std::memory_order_relaxed);
      // FIFO ordering makes the exit barrier the commit fence: this
      // broadcast precedes our barrier bump on every per-pair stream, so
      // a rank leaving the barrier has already committed.
      transport::CtrlMsg cm;
      cm.type = cvs::ctrl::kCkptCommit;
      cm.a = seq;
      cm.c = members;
      mach_.send_ctrl(-1, std::move(cm));
    } else {
      skipped_.fetch_add(1, std::memory_order_relaxed);
    }
    last_ckpt_ns_.store(now_ns(), std::memory_order_release);
    Phase expected = Phase::kCheckpoint;
    if (phase_.compare_exchange_strong(expected, Phase::kRun,
                                       std::memory_order_acq_rel) &&
        client_ != nullptr) {
      client_->resume(pe);
    }
  } else {
    // Reopen our own phase; the leader's kCkptCommit (when there is one)
    // was handled on the poller thread before its barrier bump reaches
    // us, so there is nothing to wait for here.
    last_ckpt_ns_.store(now_ns(), std::memory_order_release);
    Phase expected = Phase::kCheckpoint;
    phase_.compare_exchange_strong(expected, Phase::kRun,
                                   std::memory_order_acq_rel);
  }
  mach_.worker_barrier(&pe);
}

void Manager::do_recover_multi(cvs::Pe& pe) {
  // Entry barrier: completes only once every surviving rank's own
  // detector declared the death (a rank that has not yet noticed keeps
  // waiting on the dead PE's slot until it does) — membership agreement
  // before anyone touches state.
  mach_.worker_barrier(&pe);
  const unsigned self = mach_.local_rank();
  if (mach_.process_killed(self)) return;
  const std::uint64_t t0 = now_ns();
  pami::Context* ctx = pe.owned_context();
  // Every rank bumps the epoch a second time and resets its counters in
  // lockstep (exactly two bumps per failure keeps the ranks' epochs
  // equal without any exchange); stale quiescence rows go with them.
  mach_.bump_msg_epoch();
  mach_.reset_ft_counters();
  for (auto& r : regs_) {
    r.sent.store(0, std::memory_order_relaxed);
    r.exec.store(0, std::memory_order_relaxed);
    r.gen.store(0, std::memory_order_relaxed);
  }
  const std::uint64_t seq = store_.latest_complete();
  std::uint64_t members = 0;
  {
    std::lock_guard<std::mutex> g(members_mu_);
    const auto it = members_by_seq_.find(seq);
    if (it != members_by_seq_.end()) members = it->second;
  }
  if (seq == 0 || members == 0) {
    unrecoverable("no committed checkpoint epoch to recover from");
    return;
  }
  // Contribute every blob this rank holds for the epoch — its own and
  // any buddy copies — to the shared pool, locally and by broadcast
  // (receivers dedup first-wins).  With the double scheme every blob of
  // a committed epoch survives any single death on some rank.
  {
    std::vector<std::pair<unsigned, std::vector<std::byte>>> held;
    for (unsigned proc : store_.procs(seq)) {
      std::vector<std::byte> b;
      if (store_.fetch(seq, proc, b)) held.emplace_back(proc, std::move(b));
    }
    {
      std::lock_guard<std::mutex> g(rec_mu_);
      auto& pool = rec_blobs_[seq];
      for (const auto& [proc, b] : held) pool.emplace(proc, b);
    }
    for (auto& [proc, b] : held) {
      transport::CtrlMsg rm;
      rm.type = cvs::ctrl::kRecBlob;
      rm.a = seq;
      rm.b = proc;
      rm.blob = std::move(b);
      mach_.send_ctrl(-1, std::move(rm));
    }
  }
  // Wait until the pool covers every member of the epoch.
  std::map<unsigned, std::vector<std::byte>> blobs;
  bool covered = false;
  for (int iter = 0; iter < 400000 && !covered; ++iter) {
    {
      std::lock_guard<std::mutex> g(rec_mu_);
      auto& pool = rec_blobs_[seq];
      covered = true;
      for (std::size_t p = 0; p < mach_.process_count(); ++p) {
        if (((members >> p) & 1) != 0 &&
            pool.find(static_cast<unsigned>(p)) == pool.end()) {
          covered = false;
          break;
        }
      }
      if (covered) blobs = pool;
    }
    if (covered) break;
    if (mach_.stopping()) return;
    if (ctx != nullptr) ctx->advance();
    std::this_thread::yield();
  }
  if (!covered) {
    unrecoverable("checkpoint blob lost with both of its holders");
    return;
  }
  client_->restore(blobs);
  // Re-establish double redundancy with zero communication: after the
  // restore every rank holds the complete rolled-back state, so each
  // re-snapshots every live process's share locally.  All ranks compute
  // the same nseq and the same membership, hence agree forever after.
  const std::uint64_t nseq = seq + 1;
  const std::uint64_t nmembers = live_mask();
  for (std::size_t p = 0; p < mach_.process_count(); ++p) {
    if (((nmembers >> p) & 1) == 0) continue;
    const auto proc = static_cast<unsigned>(p);
    store_.put(nseq, proc, proc, client_->save(proc));
  }
  store_.commit(nseq);
  record_members(nseq, nmembers);
  std::uint64_t cur = ckpt_seq_.load(std::memory_order_acquire);
  while (cur < nseq &&
         !ckpt_seq_.compare_exchange_weak(cur, nseq,
                                          std::memory_order_acq_rel)) {
  }
  {
    std::lock_guard<std::mutex> g(rec_mu_);
    rec_blobs_.clear();
  }
  ckpt_bytes_.store(store_.resident_bytes(), std::memory_order_relaxed);
  if (cfg_.reset_metrics_epoch) mach_.metrics().reset_epoch();
  recoveries_.fetch_add(1, std::memory_order_relaxed);
  recovery_ns_.fetch_add(now_ns() - t0, std::memory_order_relaxed);
  last_ckpt_ns_.store(now_ns(), std::memory_order_release);
  phase_.store(Phase::kRun, std::memory_order_release);
  // Exit barrier *before* the resume: unlike the single-process path,
  // traffic may only restart once every rank has restored.
  mach_.worker_barrier(&pe);
  if (is_leader(pe) && client_ != nullptr) client_->resume(pe);
}

void Manager::do_recover(cvs::Pe& pe) {
  mach_.worker_barrier(&pe);
  if (mach_.process_killed(mach_.process_of(pe.rank()))) return;
  if (is_leader(pe)) {
    const std::uint64_t t0 = now_ns();
    // Second epoch bump, with every survivor parked: messages emitted by
    // handlers that raced the detector's first bump are now stale too.
    // Quiescence accounting restarts from zero — stale discards touch
    // neither counter, so the books stay balanced.
    mach_.bump_msg_epoch();
    mach_.reset_ft_counters();
    const std::uint64_t seq = store_.latest_complete();
    std::map<unsigned, std::vector<std::byte>> blobs;
    for (unsigned proc : store_.procs(seq)) {
      std::vector<std::byte> b;
      if (store_.fetch(seq, proc, b)) blobs.emplace(proc, std::move(b));
    }
    client_->restore(blobs);
    // Re-establish double redundancy immediately: the dead process took
    // one holder of every blob with it, so survivors re-checkpoint the
    // rolled-back state before new work begins.
    const std::uint64_t nseq =
        ckpt_seq_.fetch_add(1, std::memory_order_acq_rel) + 1;
    snapshot_all(nseq);
    store_.commit(nseq);
    ckpt_bytes_.store(store_.resident_bytes(), std::memory_order_relaxed);
    if (cfg_.reset_metrics_epoch) mach_.metrics().reset_epoch();
    recoveries_.fetch_add(1, std::memory_order_relaxed);
    recovery_ns_.fetch_add(now_ns() - t0, std::memory_order_relaxed);
    last_ckpt_ns_.store(now_ns(), std::memory_order_release);
    phase_.store(Phase::kRun, std::memory_order_release);
    client_->resume(pe);
  }
  mach_.worker_barrier(&pe);
}

}  // namespace bgq::ft
