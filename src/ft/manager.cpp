// Fault-tolerance manager implementation: see manager.hpp for the
// protocol overview.  The monitor thread owns the cheap periodic duties
// (crash schedule, heartbeats, failure detection, hang watchdog); the
// checkpoint/recovery protocol itself runs on the worker PEs via poll().
#include "ft/manager.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/timing.hpp"
#include "converse/machine.hpp"
#include "trace/trace.hpp"

namespace bgq::ft {

namespace {
constexpr std::uint64_t kMsPerNs = 1000u * 1000u;
}  // namespace

Manager::Manager(cvs::Machine& mach, Config cfg,
                 std::vector<net::CrashEvent> crashes)
    : mach_(mach),
      cfg_(cfg),
      crashes_(std::move(crashes)),
      crash_fired_(crashes_.size(), false) {}

Manager::~Manager() { stop(); }

void Manager::start() {
  const std::uint64_t now = now_ns();
  run_start_ns_ = now;
  last_hb_ns_ = now;
  last_exec_ = 0;
  last_progress_ns_ = now;
  last_ckpt_ns_.store(now, std::memory_order_release);
  // Seed liveness so nobody is declared dead before first traffic.
  for (std::size_t p = 0; p < mach_.process_count(); ++p) {
    mach_.fabric().touch_liveness(static_cast<topo::NodeId>(p), now);
  }
  {
    std::lock_guard<std::mutex> g(mon_mu_);
    mon_stop_ = false;
  }
  monitor_ = std::thread([this] { monitor_loop(); });
}

void Manager::stop() {
  {
    std::lock_guard<std::mutex> g(mon_mu_);
    mon_stop_ = true;
  }
  mon_cv_.notify_all();
  if (monitor_.joinable()) monitor_.join();
}

void Manager::monitor_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mon_mu_);
      mon_cv_.wait_for(lk, std::chrono::milliseconds(1),
                       [this] { return mon_stop_; });
      if (mon_stop_) return;
    }
    const std::uint64_t now = now_ns();
    fire_crashes(now);
    if (cfg_.enabled) {
      post_heartbeats(now);
      detect_failures(now);
    }
    watchdog(now);
  }
}

void Manager::fire_crashes(std::uint64_t now) {
  for (std::size_t i = 0; i < crashes_.size(); ++i) {
    if (crash_fired_[i]) continue;
    const net::CrashEvent& ev = crashes_[i];
    const bool due =
        (ev.at_ms != 0 && now - run_start_ns_ >= ev.at_ms * kMsPerNs) ||
        (ev.at_msgs != 0 && mach_.ft_sent() >= ev.at_msgs);
    if (!due) continue;
    crash_fired_[i] = true;
    if (ev.process >= mach_.process_count()) continue;  // plan oversized
    mach_.kill_process(ev.process);
    crashes_fired_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Manager::post_heartbeats(std::uint64_t now) {
  if (now - last_hb_ns_ < cfg_.heartbeat_period_ms * kMsPerNs) return;
  last_hb_ns_ = now;
  for (std::size_t p = 0; p < mach_.process_count(); ++p) {
    if (mach_.process_killed(p)) continue;
    mach_.process(p).post_heartbeats();
    heartbeats_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Manager::detect_failures(std::uint64_t now) {
  // Declared deaths drive everything downstream (barrier skips, the
  // leader role, re-homing).  Detection runs during kRun and also during
  // kCheckpoint — a crash landing mid-checkpoint must still be declared,
  // or the survivors cycling the (killed-slot-skipping) barriers would
  // wait forever for a leader that no longer exists.  Only kRecover is
  // off-limits: the restore itself must see a frozen membership.
  if (phase_.load(std::memory_order_acquire) == Phase::kRecover) return;
  if (mach_.stopping()) return;
  bool newly_dead = false;
  for (std::size_t p = 0; p < mach_.process_count(); ++p) {
    if (mach_.process_dead(p)) continue;
    const std::uint64_t heard =
        mach_.fabric().last_heard(static_cast<topo::NodeId>(p));
    const std::uint64_t age = now > heard ? now - heard : 0;
    if (age < cfg_.failure_timeout_ms * kMsPerNs) continue;
    // Silent past the timeout: declare it dead.  kill_process is
    // idempotent — for an injected crash the endpoint is already dead and
    // this is a no-op; for a genuine wedge it also cuts the process off,
    // so the survivors' view and the fabric agree from here on.
    mach_.kill_process(p);
    mach_.declare_dead(p);
    detect_ns_.store(age, std::memory_order_relaxed);
    newly_dead = true;
  }
  if (!newly_dead) return;
  if (mach_.live_process_count() == 0) {
    unrecoverable("all processes dead");
    return;
  }
  if (client_ == nullptr || store_.latest_complete() == 0) {
    unrecoverable("process died before any committed checkpoint");
    return;
  }
  // First epoch bump: every in-flight and queued pre-death message goes
  // stale immediately.  Handlers racing this bump may still emit messages
  // at the new epoch; the recovery leader bumps once more inside the
  // barrier to invalidate those too.
  mach_.bump_msg_epoch();
  phase_.store(Phase::kRecover, std::memory_order_release);
}

void Manager::watchdog(std::uint64_t now) {
  if (cfg_.watchdog_ms == 0) return;
  const std::uint64_t exec = mach_.ft_executed();
  if (mach_.stopping() ||
      phase_.load(std::memory_order_acquire) != Phase::kRun ||
      exec != last_exec_) {
    // Progress (or a protocol phase that legitimately stalls the app):
    // re-arm.  Heartbeats keep the fabric busy during a wedge, so the
    // watchdog watches executed-message count, never raw transfers.
    last_exec_ = exec;
    last_progress_ns_ = now;
    return;
  }
  if (now - last_progress_ns_ < cfg_.watchdog_ms * kMsPerNs) return;
  dumps_.fetch_add(1, std::memory_order_relaxed);
  dump_diagnostics("watchdog: no message executed within deadline");
  if (cfg_.watchdog_abort) std::abort();
  hang_.store(true, std::memory_order_release);
  mach_.request_stop();
}

void Manager::unrecoverable(const char* why) {
  dump_diagnostics(why);
  if (cfg_.watchdog_abort) std::abort();
  hang_.store(true, std::memory_order_release);
  mach_.request_stop();
}

void Manager::dump_diagnostics(const char* why) {
  const std::uint64_t now = now_ns();
  std::fprintf(stderr, "=== bgq ft diagnostic dump: %s ===\n", why);
  std::fprintf(
      stderr,
      "phase=%d epoch=%u ft_sent=%llu ft_executed=%llu stale_drops=%llu\n",
      static_cast<int>(phase_.load(std::memory_order_acquire)),
      mach_.msg_epoch(),
      static_cast<unsigned long long>(mach_.ft_sent()),
      static_cast<unsigned long long>(mach_.ft_executed()),
      static_cast<unsigned long long>(mach_.stale_drops()));
  for (std::size_t p = 0; p < mach_.process_count(); ++p) {
    const std::uint64_t heard =
        mach_.fabric().last_heard(static_cast<topo::NodeId>(p));
    std::fprintf(stderr,
                 "proc %zu: killed=%d dead=%d last_heard_age_ms=%.1f\n", p,
                 mach_.process_killed(p) ? 1 : 0,
                 mach_.process_dead(p) ? 1 : 0,
                 heard != 0 && now > heard
                     ? static_cast<double>(now - heard) / 1e6
                     : -1.0);
    pami::Client& cl = mach_.process(p).client();
    for (unsigned i = 0; i < cl.context_count(); ++i) {
      const pami::Context& ctx = cl.context(i);
      std::fprintf(
          stderr,
          "  ctx%u: outstanding=%zu backlog=%zu retransmits=%llu\n", i,
          ctx.outstanding(), ctx.backlog_size(),
          static_cast<unsigned long long>(ctx.retransmits()));
    }
  }
  std::fprintf(stderr,
               "fabric: blackholed=%llu drops=%llu transfers=%llu\n",
               static_cast<unsigned long long>(mach_.fabric().blackholed()),
               static_cast<unsigned long long>(
                   mach_.fabric().faults_dropped()),
               static_cast<unsigned long long>(mach_.fabric().transfers()));
  if (mach_.trace_session().enabled()) {
    const trace::FlatTrace& ft = mach_.trace_session().collect();
    for (const auto& track : ft.tracks) {
      const std::size_t n = track.events.size();
      if (n == 0) continue;
      std::fprintf(stderr, "trace tail %s:", track.name.c_str());
      for (std::size_t i = n > 4 ? n - 4 : 0; i < n; ++i) {
        const trace::Event& e = track.events[i];
        std::fprintf(stderr, " [%s arg=%u t=%.3fms]",
                     trace::kind_name(e.kind), e.arg,
                     static_cast<double>(e.t_ns) / 1e6);
      }
      std::fprintf(stderr, "\n");
    }
  }
  std::fprintf(stderr, "=== end dump ===\n");
}

bool Manager::poll(cvs::Pe& pe) {
  switch (phase_.load(std::memory_order_acquire)) {
    case Phase::kRun:
      return false;
    case Phase::kCheckpoint:
      do_checkpoint(pe);
      return true;
    case Phase::kRecover:
      do_recover(pe);
      return true;
  }
  return false;
}

bool Manager::request_checkpoint() {
  if (!cfg_.enabled) return false;
  Phase expected = Phase::kRun;
  return phase_.compare_exchange_strong(expected, Phase::kCheckpoint,
                                        std::memory_order_acq_rel);
}

bool Manager::checkpoint_due() const {
  if (!cfg_.enabled || cfg_.checkpoint_period_ms == 0) return false;
  // Until the first commit any failure is unrecoverable, so the first
  // step boundary always checkpoints regardless of the period.
  if (checkpoints_.load(std::memory_order_relaxed) == 0) return true;
  return now_ns() - last_ckpt_ns_.load(std::memory_order_acquire) >=
         cfg_.checkpoint_period_ms * kMsPerNs;
}

bool Manager::is_leader(const cvs::Pe& pe) const {
  return pe.rank() == mach_.lowest_live_pe();
}

unsigned Manager::buddy_of(unsigned proc) const {
  const std::size_t n = mach_.process_count();
  for (std::size_t k = 1; k < n; ++k) {
    const auto q = static_cast<unsigned>((proc + k) % n);
    if (!mach_.process_dead(q) && !mach_.process_killed(q)) return q;
  }
  return proc;  // no live buddy: single copy
}

bool Manager::wait_quiesce(cvs::Pe& pe) {
  // The other live PEs are parked in the exit barrier, where each keeps
  // advancing its own PAMI context — in the FT configurations (one worker
  // per process) arrivals execute inline from that advance, so straggling
  // messages drain and the sent/executed counts converge.  Bounded: an
  // app that checkpoints mid-step (messages still crossing) makes no
  // progress here and the checkpoint is skipped, not wedged.
  pami::Context* ctx = pe.owned_context();
  for (int iter = 0; iter < 200000; ++iter) {
    if (mach_.ft_sent() == mach_.ft_executed()) return true;
    if (mach_.stopping()) return false;
    // A failure detected while we wait flips the phase to kRecover; the
    // counts then can never converge (sends to the dead process are
    // executed by no one), so give up and let recovery run.
    if (phase_.load(std::memory_order_acquire) != Phase::kCheckpoint) {
      return false;
    }
    if (ctx != nullptr) ctx->advance();
    // Inline-executed arrivals may have staged fresh aggregation records;
    // without the timeout flush the sent/executed counts could not
    // converge while they sit buffered.
    mach_.tram_tick(pe);
    std::this_thread::yield();
  }
  return false;
}

void Manager::snapshot_all(std::uint64_t seq) {
  for (std::size_t p = 0; p < mach_.process_count(); ++p) {
    if (mach_.process_dead(p) || mach_.process_killed(p)) continue;
    const auto proc = static_cast<unsigned>(p);
    store_.put(seq, proc, buddy_of(proc), client_->save(proc));
  }
}

void Manager::do_checkpoint(cvs::Pe& pe) {
  // Entry barrier: every live PE is inside the protocol with its local
  // queue drained before anyone snapshots.
  mach_.worker_barrier(&pe);
  if (mach_.process_killed(mach_.process_of(pe.rank()))) return;
  if (is_leader(pe)) {
    const bool quiet = client_ != nullptr && wait_quiesce(pe);
    // A killed-but-undeclared process means home() still maps elements
    // onto it, so its share of the state would be missing from every
    // blob: never commit such an epoch — skip, and let the detector
    // (which also runs during this phase) turn the kill into a recovery.
    bool intact = true;
    for (std::size_t p = 0; p < mach_.process_count(); ++p) {
      if (mach_.process_killed(p) && !mach_.process_dead(p)) intact = false;
    }
    if (quiet && intact) {
      const std::uint64_t seq =
          ckpt_seq_.fetch_add(1, std::memory_order_acq_rel) + 1;
      snapshot_all(seq);
      store_.commit(seq);
      checkpoints_.fetch_add(1, std::memory_order_relaxed);
      ckpt_bytes_.store(store_.resident_bytes(),
                        std::memory_order_relaxed);
    } else {
      skipped_.fetch_add(1, std::memory_order_relaxed);
    }
    last_ckpt_ns_.store(now_ns(), std::memory_order_release);
    // The detector may have flipped the phase to kRecover while we
    // worked; in that case leave it alone and skip the resume — the
    // recovery leader re-kicks the app after the rollback instead.
    Phase expected = Phase::kCheckpoint;
    if (phase_.compare_exchange_strong(expected, Phase::kRun,
                                       std::memory_order_acq_rel) &&
        client_ != nullptr) {
      client_->resume(pe);
    }
  }
  // Exit barrier: non-leaders park here (advancing their contexts) until
  // the leader has committed and reopened the run phase.
  mach_.worker_barrier(&pe);
}

void Manager::do_recover(cvs::Pe& pe) {
  mach_.worker_barrier(&pe);
  if (mach_.process_killed(mach_.process_of(pe.rank()))) return;
  if (is_leader(pe)) {
    const std::uint64_t t0 = now_ns();
    // Second epoch bump, with every survivor parked: messages emitted by
    // handlers that raced the detector's first bump are now stale too.
    // Quiescence accounting restarts from zero — stale discards touch
    // neither counter, so the books stay balanced.
    mach_.bump_msg_epoch();
    mach_.reset_ft_counters();
    const std::uint64_t seq = store_.latest_complete();
    std::map<unsigned, std::vector<std::byte>> blobs;
    for (unsigned proc : store_.procs(seq)) {
      std::vector<std::byte> b;
      if (store_.fetch(seq, proc, b)) blobs.emplace(proc, std::move(b));
    }
    client_->restore(blobs);
    // Re-establish double redundancy immediately: the dead process took
    // one holder of every blob with it, so survivors re-checkpoint the
    // rolled-back state before new work begins.
    const std::uint64_t nseq =
        ckpt_seq_.fetch_add(1, std::memory_order_acq_rel) + 1;
    snapshot_all(nseq);
    store_.commit(nseq);
    ckpt_bytes_.store(store_.resident_bytes(), std::memory_order_relaxed);
    if (cfg_.reset_metrics_epoch) mach_.metrics().reset_epoch();
    recoveries_.fetch_add(1, std::memory_order_relaxed);
    recovery_ns_.fetch_add(now_ns() - t0, std::memory_order_relaxed);
    last_ckpt_ns_.store(now_ns(), std::memory_order_release);
    phase_.store(Phase::kRun, std::memory_order_release);
    client_->resume(pe);
  }
  mach_.worker_barrier(&pe);
}

}  // namespace bgq::ft
