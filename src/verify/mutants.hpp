// Seeded mutants: intentionally broken variants of the lockless runtime
// structures, used to prove the harness has teeth.  Each mutant re-creates
// a bug class the real implementations defend against; the linearizability
// checker (or the deadlock watchdog) must flag every one of them under the
// schedule fuzzer, or the harness is vacuous.
//
//   MutantRacyTicketQueue — replaces the L2 bounded load-increment with a
//       plain read-check-write.  Two producers can claim the same ticket
//       and overwrite each other's slot: a message is lost (BagQueueSpec
//       violation at the post-drain empty probe).
//
//   MutantNoDrainQueue — takes the overflow spill on a full ring but the
//       consumer never drains the overflow queue: every spilled message is
//       lost (the §III-A protocol requires ring-then-overflow draining).
//
//   MutantStaleSlotQueue — the consumer forgets to clear the slot after
//       reading it.  The nulled slot IS the emptiness protocol, so after
//       the ring wraps the consumer re-reads the stale pointer and delivers
//       a message twice (BagQueueSpec duplicate-dequeue violation).
//
//   MutantLatchGate — replaces the wakeup gate's epoch comparison with a
//       sticky boolean latch.  A wake() with no waiter leaves the latch
//       set, so a later commit_wait returns with no justifying wake
//       (GateSpec violation); conversely one wake() can be swallowed by
//       the wrong waiter, parking the other forever (watchdog deadlock).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <type_traits>
#include <vector>

#include "common/cacheline.hpp"
#include "l2atomic/l2_atomic.hpp"
#include "verify/schedule_point.hpp"

namespace bgq::verify {

/// Shared ring plumbing for the queue mutants (capacity, slots, overflow).
template <typename T>
class MutantQueueBase {
  static_assert(std::is_pointer_v<T>);

 public:
  explicit MutantQueueBase(std::size_t capacity)
      : size_(next_pow2(capacity < 2 ? 2 : capacity)),
        mask_(size_ - 1),
        slots_(size_) {
    for (auto& s : slots_) s.store(nullptr, std::memory_order_relaxed);
  }

  std::size_t capacity() const noexcept { return size_; }

  std::size_t overflow_count() const noexcept {
    return overflow_size_.load(std::memory_order_acquire);
  }

 protected:
  void spill(T msg) {
    BGQ_SCHED_BLOCK_BEGIN();
    std::unique_lock<std::mutex> g(overflow_mutex_);
    BGQ_SCHED_BLOCK_END();
    overflow_.push_back(msg);
    overflow_size_.fetch_add(1, std::memory_order_release);
  }

  T drain_overflow() {
    if (overflow_size_.load(std::memory_order_acquire) == 0) return nullptr;
    BGQ_SCHED_BLOCK_BEGIN();
    std::unique_lock<std::mutex> g(overflow_mutex_);
    BGQ_SCHED_BLOCK_END();
    if (overflow_.empty()) return nullptr;
    T m = overflow_.front();
    overflow_.pop_front();
    overflow_size_.fetch_sub(1, std::memory_order_release);
    return m;
  }

  const std::size_t size_;
  const std::size_t mask_;
  std::vector<std::atomic<T>> slots_;
  std::uint64_t consumer_count_ = 0;

  std::atomic<std::size_t> overflow_size_{0};
  std::mutex overflow_mutex_;
  std::deque<T> overflow_;
};

/// BUG: non-atomic ticket claim (read, check bound, write back) instead of
/// the bounded load-increment — the exact race the L2 atomic unit exists
/// to close.
template <typename T = void*>
class MutantRacyTicketQueue : public MutantQueueBase<T> {
  using Base = MutantQueueBase<T>;

 public:
  explicit MutantRacyTicketQueue(std::size_t capacity = 8)
      : Base(capacity), bound_(this->size_) {}

  bool enqueue(T msg) {
    const std::uint64_t cur = counter_.load(std::memory_order_acquire);
    BGQ_SCHED_POINT("mutant.ticket.loaded");
    if (cur >= bound_.load(std::memory_order_acquire)) {
      this->spill(msg);
      return false;
    }
    counter_.store(cur + 1, std::memory_order_release);  // lost-update race
    BGQ_SCHED_POINT("mutant.ticket.claimed");
    this->slots_[cur & this->mask_].store(msg, std::memory_order_release);
    return true;
  }

  T try_dequeue() {
    const std::size_t slot = this->consumer_count_ & this->mask_;
    T msg = this->slots_[slot].load(std::memory_order_acquire);
    BGQ_SCHED_POINT("mutant.dequeue.loaded");
    if (msg != nullptr) {
      this->slots_[slot].store(nullptr, std::memory_order_relaxed);
      ++this->consumer_count_;
      bound_.fetch_add(1, std::memory_order_acq_rel);
      return msg;
    }
    return this->drain_overflow();
  }

 private:
  std::atomic<std::uint64_t> counter_{0};
  std::atomic<std::uint64_t> bound_;
};

/// BUG: the consumer never drains the overflow queue — every message that
/// spilled past the bound is silently dropped.
template <typename T = void*>
class MutantNoDrainQueue : public MutantQueueBase<T> {
  using Base = MutantQueueBase<T>;

 public:
  explicit MutantNoDrainQueue(std::size_t capacity = 8)
      : Base(capacity), counters_(this->size_) {}

  bool enqueue(T msg) {
    const std::uint64_t ticket = counters_.bounded_increment();
    if (ticket == l2::kBoundedFailure) {
      this->spill(msg);
      return false;
    }
    BGQ_SCHED_POINT("mutant.nodrain.publish");
    this->slots_[ticket & this->mask_].store(msg, std::memory_order_release);
    return true;
  }

  T try_dequeue() {
    const std::size_t slot = this->consumer_count_ & this->mask_;
    T msg = this->slots_[slot].load(std::memory_order_acquire);
    if (msg != nullptr) {
      this->slots_[slot].store(nullptr, std::memory_order_relaxed);
      ++this->consumer_count_;
      counters_.advance_bound(1);
      return msg;
    }
    return nullptr;  // overflow drain dropped
  }

 private:
  l2::BoundedCounter counters_;
};

/// BUG: the consumer forgets to null the slot it just read.  After the
/// ring wraps, the stale pointer is re-read and delivered a second time.
template <typename T = void*>
class MutantStaleSlotQueue : public MutantQueueBase<T> {
  using Base = MutantQueueBase<T>;

 public:
  explicit MutantStaleSlotQueue(std::size_t capacity = 4)
      : Base(capacity), counters_(this->size_) {}

  bool enqueue(T msg) {
    const std::uint64_t ticket = counters_.bounded_increment();
    if (ticket == l2::kBoundedFailure) {
      this->spill(msg);
      return false;
    }
    this->slots_[ticket & this->mask_].store(msg, std::memory_order_release);
    return true;
  }

  T try_dequeue() {
    const std::size_t slot = this->consumer_count_ & this->mask_;
    T msg = this->slots_[slot].load(std::memory_order_acquire);
    BGQ_SCHED_POINT("mutant.stale.loaded");
    if (msg != nullptr) {
      // slot clear dropped: the emptiness protocol is broken
      ++this->consumer_count_;
      counters_.advance_bound(1);
      return msg;
    }
    return this->drain_overflow();
  }

 private:
  l2::BoundedCounter counters_;
};

/// BUG: a sticky boolean latch instead of the epoch comparison.  The epoch
/// counter is still maintained so the history recorder can stamp
/// prepare/wake values, but commit_wait ignores it.
class MutantLatchGate {
 public:
  std::uint64_t prepare_wait() noexcept {
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    return epoch_.load(std::memory_order_seq_cst);
  }

  void cancel_wait() noexcept {
    waiters_.fetch_sub(1, std::memory_order_release);
  }

  void commit_wait(std::uint64_t /*seen*/) {
    BGQ_SCHED_POINT("mutant.gate.commit");
    BGQ_SCHED_BLOCK_BEGIN();
    {
      std::unique_lock<std::mutex> lk(mutex_);
      cv_.wait(lk, [&] {
        return signaled_.load(std::memory_order_acquire);
      });
    }
    BGQ_SCHED_BLOCK_END();
    signaled_.store(false, std::memory_order_release);  // consume the latch
    waiters_.fetch_sub(1, std::memory_order_release);
  }

  void wake() noexcept {
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    signaled_.store(true, std::memory_order_seq_cst);
    BGQ_SCHED_BLOCK_BEGIN();
    {
      std::lock_guard<std::mutex> g(mutex_);
    }
    BGQ_SCHED_BLOCK_END();
    cv_.notify_all();
  }

  std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint32_t> waiters_{0};
  std::atomic<bool> signaled_{false};
  std::mutex mutex_;
  std::condition_variable cv_;
};

}  // namespace bgq::verify
