// Concurrent operation-history recorder for the linearizability checker.
//
// Each thread records its operations as invocation/response interval events
// stamped from one global logical clock (a single fetch_add counter, so the
// stamp order is consistent with real time).  The recorder is append-only
// and wait-free so it does not introduce synchronization that would mask
// the races the harness is hunting: begin() and end() each cost two
// fetch_adds on independent cache lines.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace bgq::verify {

enum class OpKind : std::uint8_t {
  kEnqueue,       ///< value = message id
  kDequeue,       ///< result = message id returned
  kDequeueEmpty,  ///< dequeue that returned "empty"
  kAlloc,         ///< result = buffer id handed out
  kAllocFail,     ///< allocation that reported exhaustion
  kFree,          ///< value = buffer id returned to the allocator
  kWake,          ///< gate wake(); advances the epoch
  kPrepare,       ///< prepare_wait(); result = epoch snapshot returned
  kCommit,        ///< commit_wait(seen); value = seen
  kCancel,        ///< cancel_wait()
};

inline const char* op_name(OpKind k) {
  switch (k) {
    case OpKind::kEnqueue: return "enqueue";
    case OpKind::kDequeue: return "dequeue";
    case OpKind::kDequeueEmpty: return "dequeue-empty";
    case OpKind::kAlloc: return "alloc";
    case OpKind::kAllocFail: return "alloc-fail";
    case OpKind::kFree: return "free";
    case OpKind::kWake: return "wake";
    case OpKind::kPrepare: return "prepare";
    case OpKind::kCommit: return "commit";
    case OpKind::kCancel: return "cancel";
  }
  return "?";
}

struct Op {
  OpKind kind{};
  int thread = -1;
  std::uint64_t value = 0;   ///< argument (enqueue payload, commit's seen…)
  std::uint64_t result = 0;  ///< response value (dequeue payload, epoch…)
  std::uint64_t inv = 0;     ///< invocation stamp
  std::uint64_t res = 0;     ///< response stamp
};

inline std::string format_op(const Op& op) {
  std::string s = "t";
  s += std::to_string(op.thread);
  s += ' ';
  s += op_name(op.kind);
  s += "(v=";
  s += std::to_string(op.value);
  s += ", r=";
  s += std::to_string(op.result);
  s += ") @[";
  s += std::to_string(op.inv);
  s += ',';
  s += std::to_string(op.res);
  s += ']';
  return s;
}

/// Fixed-capacity wait-free history.  One instance per schedule run; the
/// driver snapshots ops() only after every recording thread has joined.
class History {
 public:
  explicit History(std::size_t capacity = 4096) : ops_(capacity) {}

  using Handle = std::size_t;
  static constexpr Handle kNoHandle = ~std::size_t{0};

  /// Record an invocation.  Returns a handle to close with end().
  Handle begin(int thread, OpKind kind, std::uint64_t value = 0) {
    const Handle h = next_.fetch_add(1, std::memory_order_relaxed);
    if (h >= ops_.size()) {
      overflowed_.store(true, std::memory_order_relaxed);
      return kNoHandle;
    }
    Op& op = ops_[h];
    op.kind = kind;
    op.thread = thread;
    op.value = value;
    op.inv = clock_.fetch_add(1, std::memory_order_acq_rel);
    return h;
  }

  /// Record the response.  `kind` may refine the invocation's kind (e.g. a
  /// dequeue that found nothing closes as kDequeueEmpty).
  void end(Handle h, std::uint64_t result = 0) {
    if (h == kNoHandle) return;
    Op& op = ops_[h];
    op.result = result;
    op.res = clock_.fetch_add(1, std::memory_order_acq_rel);
  }

  void end(Handle h, OpKind refined, std::uint64_t result = 0) {
    if (h == kNoHandle) return;
    ops_[h].kind = refined;
    end(h, result);
  }

  /// Convenience: a complete (non-interval-interesting) operation.
  void record(int thread, OpKind kind, std::uint64_t value = 0,
              std::uint64_t result = 0) {
    end(begin(thread, kind, value), result);
  }

  bool overflowed() const {
    return overflowed_.load(std::memory_order_relaxed);
  }

  /// Snapshot of all *completed* ops (an op begun but never ended — e.g. a
  /// consumer poll abandoned at its attempt cap — is dropped: keeping it
  /// would assert an effect that never happened).  Quiescent callers only.
  std::vector<Op> ops() const {
    const std::size_t n =
        std::min(next_.load(std::memory_order_acquire), ops_.size());
    std::vector<Op> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (ops_[i].res != 0) out.push_back(ops_[i]);  // clock starts at 1
    }
    return out;
  }

 private:
  std::vector<Op> ops_;
  std::atomic<std::size_t> next_{0};
  std::atomic<std::uint64_t> clock_{1};
  std::atomic<bool> overflowed_{false};
};

}  // namespace bgq::verify
