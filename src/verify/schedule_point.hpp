// Yield-point injection hooks for the concurrency-correctness harness.
//
// The lockless runtime core (l2atomic, queue, alloc, wakeup, comm threads)
// marks its racy windows with BGQ_SCHED_POINT("tag").  In normal builds the
// macro compiles to nothing — the hot paths are untouched.  Translation
// units compiled with -DBGQ_SCHEDULE_POINTS=1 (the tests/harness targets)
// expand the macro into a call through a process-global hook, which the
// schedule fuzzer (src/verify/scheduler.hpp) installs to serialize threads
// and drive chosen interleavings deterministically.
//
// Blocking primitives (mutex acquisitions, condvar waits) inside
// instrumented code must be bracketed with BGQ_SCHED_BLOCK_BEGIN/END so the
// cooperative scheduler knows the thread may stop making progress for
// reasons it does not control; a thread must never wait for the scheduler
// token while holding a lock.  The canonical pattern is:
//
//   BGQ_SCHED_BLOCK_BEGIN();
//   {
//     std::lock_guard<std::mutex> g(m);
//     ... critical section, no schedule points ...
//   }
//   BGQ_SCHED_BLOCK_END();
#pragma once

#include <atomic>

namespace bgq::verify {

/// Interface the schedule fuzzer implements.  Kept abstract so this header
/// stays dependency-free for the core runtime headers that include it.
class SchedulerHook {
 public:
  virtual ~SchedulerHook() = default;

  /// A registered thread reached an instrumented racy window.
  virtual void on_point(const char* tag) noexcept = 0;

  /// The calling thread is about to block on an OS primitive.
  virtual void on_block_begin() noexcept = 0;

  /// The calling thread finished the blocking section.
  virtual void on_block_end() noexcept = 0;
};

namespace detail {
inline std::atomic<SchedulerHook*> g_hook{nullptr};
}  // namespace detail

/// Install `h` as the process-wide hook (nullptr to uninstall).  Returns
/// the previous hook.  Only the harness driver thread calls this, around a
/// fully-joined set of worker threads.
inline SchedulerHook* install_hook(SchedulerHook* h) noexcept {
  return detail::g_hook.exchange(h, std::memory_order_acq_rel);
}

inline SchedulerHook* current_hook() noexcept {
  return detail::g_hook.load(std::memory_order_acquire);
}

inline void schedule_point(const char* tag) noexcept {
  if (SchedulerHook* h = current_hook()) h->on_point(tag);
}

inline void block_begin() noexcept {
  if (SchedulerHook* h = current_hook()) h->on_block_begin();
}

inline void block_end() noexcept {
  if (SchedulerHook* h = current_hook()) h->on_block_end();
}

}  // namespace bgq::verify

#if defined(BGQ_SCHEDULE_POINTS)
#define BGQ_SCHED_POINT(tag) ::bgq::verify::schedule_point(tag)
#define BGQ_SCHED_BLOCK_BEGIN() ::bgq::verify::block_begin()
#define BGQ_SCHED_BLOCK_END() ::bgq::verify::block_end()
#else
#define BGQ_SCHED_POINT(tag) ((void)0)
#define BGQ_SCHED_BLOCK_BEGIN() ((void)0)
#define BGQ_SCHED_BLOCK_END() ((void)0)
#endif
