// Cooperative schedule fuzzer for the lockless runtime core.
//
// Worker threads under test register with a FuzzScheduler; exactly one
// registered thread runs at a time (the token holder) and control changes
// hands only at the BGQ_SCHED_POINT markers compiled into the l2atomic /
// queue / alloc / wakeup hot paths.  At every point with more than one
// runnable thread the scheduler makes a *decision* — from a seeded RNG, or
// replayed from a recorded trace — so an interleaving is reproduced by
// re-running with the same seed (or the exact decision vector, printed on
// failure).
//
// Threads about to block on an OS primitive bracket the blocking call with
// on_block_begin/on_block_end (see schedule_point.hpp for the two idioms:
// mutex acquires re-take the token once the lock is held; condvar sleeps
// stay token-free for the whole wait).  When every live thread is blocked
// the token parks at kIdleToken and the first thread to unblock claims it;
// if nothing can unblock, the driver-side watchdog (harness_util) detects
// the deadlock and rescues the run.
//
// exhaust_schedules() systematically enumerates every decision vector up to
// a bound — the "exhaustive small-bound interleavings" mode.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "verify/schedule_point.hpp"

namespace bgq::verify {

/// Decision trace of one schedule: the choice made at each decision point
/// and how many candidates were available (the branching arity).  Only
/// points with arity > 1 consume a decision.
struct ScheduleTrace {
  std::vector<std::uint8_t> choices;
  std::vector<std::uint8_t> arity;
  std::uint64_t points = 0;    ///< schedule points hit (all, arity-1 too)
  bool truncated = false;      ///< hit max_points and went free-run
};

class FuzzScheduler final : public SchedulerHook {
 public:
  static constexpr int kMaxThreads = 16;

  struct Options {
    std::uint64_t seed = 1;
    /// Forced decision prefix; decisions beyond it fall back to the seeded
    /// RNG (or to candidate 0 when deterministic_fallback is set, as the
    /// exhaustive driver requires).
    const std::vector<std::uint8_t>* replay = nullptr;
    bool deterministic_fallback = false;
    /// Runaway guard: after this many schedule points the scheduler stops
    /// serializing and lets all threads run free so the test can finish.
    std::uint64_t max_points = 200000;
    /// Decisions recorded into the trace (enumeration depth bound).
    std::size_t max_recorded = 4096;
  };

  explicit FuzzScheduler(Options o) : opt_(o), rng_(o.seed) {
    for (auto& s : state_) s.store(kEmpty, std::memory_order_relaxed);
  }

  FuzzScheduler(const FuzzScheduler&) = delete;
  FuzzScheduler& operator=(const FuzzScheduler&) = delete;

  /// Declare how many worker threads will attach.  Driver only.
  void reserve(int nthreads) { expected_ = nthreads; }

  /// Install as the process-wide schedule-point hook.  Driver only.
  void install() { install_hook(this); }
  void uninstall() { install_hook(nullptr); }

  /// Driver: wait for all reserved threads to attach, then hand the token
  /// to the first scheduling choice.  Worker threads park in attach until
  /// this runs.
  void start() {
    while (attached_.load(std::memory_order_acquire) < expected_) {
      std::this_thread::yield();
    }
    grant_first();
  }

  /// RAII registration run at the top of each worker thread body.
  class ThreadGuard {
   public:
    ThreadGuard(FuzzScheduler& s, int slot) : s_(s), slot_(slot) {
      s_.attach(slot);
    }
    ~ThreadGuard() { s_.detach(slot_); }
    ThreadGuard(const ThreadGuard&) = delete;
    ThreadGuard& operator=(const ThreadGuard&) = delete;

   private:
    FuzzScheduler& s_;
    int slot_;
  };

  // ---- SchedulerHook ----------------------------------------------------

  void on_point(const char* /*tag*/) noexcept override {
    const int slot = tls_slot();
    if (slot < 0 || free_run()) return;
    points_.fetch_add(1, std::memory_order_relaxed);
    if (points_.load(std::memory_order_relaxed) > opt_.max_points) {
      enter_free_run(/*truncated=*/true);
      return;
    }
    int next;
    {
      SpinGuard g(lock_);
      next = pick_locked(slot, /*include_self=*/true);
    }
    if (next == slot || next < 0) return;
    active_.store(next, std::memory_order_release);
    wait_for_token(slot);
  }

  void on_block_begin() noexcept override {
    const int slot = tls_slot();
    if (slot < 0 || free_run()) return;
    int next;
    {
      SpinGuard g(lock_);
      state_[slot].store(kBlocked, std::memory_order_relaxed);
      next = pick_locked(slot, /*include_self=*/false);
    }
    active_.store(next >= 0 ? next : kIdleToken, std::memory_order_release);
  }

  void on_block_end() noexcept override {
    const int slot = tls_slot();
    if (slot < 0) return;
    {
      SpinGuard g(lock_);
      state_[slot].store(kRunnable, std::memory_order_relaxed);
    }
    if (free_run()) return;
    // Wait until a token holder schedules us, or claim the parked token.
    for (;;) {
      int a = active_.load(std::memory_order_acquire);
      if (a == slot || a == kFreeToken) return;
      if (a == kIdleToken &&
          active_.compare_exchange_weak(a, slot,
                                        std::memory_order_acq_rel)) {
        return;
      }
      std::this_thread::yield();
    }
  }

  // ---- results ----------------------------------------------------------

  /// Stop serializing; every thread runs free.  Used by the watchdog to
  /// un-wedge a deadlocked mutant run.
  void enter_free_run(bool truncated = false) noexcept {
    if (truncated) truncated_.store(true, std::memory_order_relaxed);
    active_.store(kFreeToken, std::memory_order_release);
  }

  bool deadlock_suspected() const noexcept {
    return active_.load(std::memory_order_acquire) == kIdleToken;
  }

  ScheduleTrace trace() const {
    ScheduleTrace t;
    t.choices = choices_;
    t.arity = arity_;
    t.points = points_.load(std::memory_order_relaxed);
    t.truncated = truncated_.load(std::memory_order_relaxed);
    return t;
  }

 private:
  enum : int { kNoToken = -1, kFreeToken = -2, kIdleToken = -3 };
  enum : std::uint8_t { kEmpty, kRunnable, kBlocked, kDone };

  // A tiny spinlock: the critical sections are a few loads/stores, and a
  // std::mutex here could park the token holder behind an unrelated OS
  // decision, perturbing replay.
  struct SpinGuard {
    explicit SpinGuard(std::atomic_flag& f) : f_(f) {
      while (f_.test_and_set(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    }
    ~SpinGuard() { f_.clear(std::memory_order_release); }
    std::atomic_flag& f_;
  };

  static int& tls_slot_ref() {
    static thread_local int slot = -1;
    return slot;
  }
  static int tls_slot() { return tls_slot_ref(); }

  bool free_run() const noexcept {
    return active_.load(std::memory_order_acquire) == kFreeToken;
  }

  void attach(int slot) {
    tls_slot_ref() = slot;
    {
      SpinGuard g(lock_);
      state_[slot].store(kRunnable, std::memory_order_relaxed);
    }
    attached_.fetch_add(1, std::memory_order_release);
    wait_for_token(slot);
  }

  void detach(int slot) {
    if (free_run()) {
      SpinGuard g(lock_);
      state_[slot].store(kDone, std::memory_order_relaxed);
      tls_slot_ref() = -1;
      return;
    }
    int next;
    {
      SpinGuard g(lock_);
      state_[slot].store(kDone, std::memory_order_relaxed);
      next = pick_locked(slot, /*include_self=*/false);
    }
    active_.store(next >= 0 ? next : kIdleToken, std::memory_order_release);
    tls_slot_ref() = -1;
  }

  void grant_first() {
    int next;
    {
      SpinGuard g(lock_);
      next = pick_locked(/*self=*/-1, /*include_self=*/false);
    }
    active_.store(next >= 0 ? next : kIdleToken, std::memory_order_release);
  }

  void wait_for_token(int slot) {
    for (;;) {
      const int a = active_.load(std::memory_order_acquire);
      if (a == slot || a == kFreeToken) return;
      std::this_thread::yield();
    }
  }

  /// Pick the next thread to run among runnable slots.  Called under
  /// lock_.  Returns -1 when nothing is runnable.
  int pick_locked(int self, bool include_self) {
    int candidates[kMaxThreads];
    int k = 0;
    for (int i = 0; i < kMaxThreads; ++i) {
      if (state_[i].load(std::memory_order_relaxed) != kRunnable) continue;
      if (i == self && !include_self) continue;
      candidates[k++] = i;
    }
    if (k == 0) return -1;
    if (k == 1) return candidates[0];  // arity-1: not a decision
    std::uint32_t c;
    const std::size_t d = decision_count_++;
    if (opt_.replay && d < opt_.replay->size()) {
      c = (*opt_.replay)[d];
      if (c >= static_cast<std::uint32_t>(k)) c = k - 1;  // defensive clamp
    } else if (opt_.deterministic_fallback) {
      c = 0;
    } else {
      c = static_cast<std::uint32_t>(rng_.below(k));
    }
    if (choices_.size() < opt_.max_recorded) {
      choices_.push_back(static_cast<std::uint8_t>(c));
      arity_.push_back(static_cast<std::uint8_t>(k));
    }
    return candidates[c];
  }

  const Options opt_;
  Xoshiro256 rng_;

  int expected_ = 0;
  std::atomic<int> attached_{0};
  std::atomic<int> active_{kNoToken};
  std::atomic<std::uint64_t> points_{0};
  std::atomic<bool> truncated_{false};

  std::atomic_flag lock_ = ATOMIC_FLAG_INIT;
  std::atomic<std::uint8_t> state_[kMaxThreads];

  // Decision log; mutated only under lock_.
  std::size_t decision_count_ = 0;
  std::vector<std::uint8_t> choices_;
  std::vector<std::uint8_t> arity_;
};

/// Systematically enumerate every schedule whose decision vector (at the
/// points the scheduler actually branched) has length <= max_decisions.
///
/// `run_one` receives the forced decision prefix, must execute one full
/// schedule with a FuzzScheduler configured with {replay = &prefix,
/// deterministic_fallback = true}, and return the resulting trace.  The
/// enumeration walks the decision tree depth-first by bumping the deepest
/// advanceable choice, exactly like a stateless model checker.  Returns
/// the number of schedules executed.
template <typename RunFn>
std::uint64_t exhaust_schedules(int max_decisions, std::uint64_t max_runs,
                                RunFn run_one) {
  std::vector<std::uint8_t> prefix;
  std::uint64_t runs = 0;
  for (;;) {
    ScheduleTrace t = run_one(static_cast<const std::vector<std::uint8_t>&>(prefix));
    ++runs;
    if (runs >= max_runs) break;
    int limit = static_cast<int>(t.choices.size());
    if (limit > max_decisions) limit = max_decisions;
    int i = limit - 1;
    while (i >= 0 && t.choices[i] + 1 >= t.arity[i]) --i;
    if (i < 0) break;
    prefix.assign(t.choices.begin(), t.choices.begin() + i);
    prefix.push_back(static_cast<std::uint8_t>(t.choices[i] + 1));
  }
  return runs;
}

}  // namespace bgq::verify
