// Linearizability checker (Wing & Gong style DFS with memoization).
//
// Given a concurrent history of invocation/response intervals (history.hpp)
// and the *sequential specification* of the structure, the checker searches
// for a total order of the operations that (a) respects real time — an
// operation that completed before another began must come first — and (b)
// is legal under the spec.  If no such order exists the history witnesses a
// linearizability violation: a lost message, a doubly-issued buffer, a
// wakeup that returned without a justifying wake.
//
// Histories here are small (one fuzzed schedule each, <= 64 ops) so the
// exponential worst case never bites; the memo on (linearized-set, spec
// state) keeps the common case near-linear.
//
// Sequential specs for the paper's structures:
//   * BagQueueSpec   — the Charm++ L2AtomicQueue: no inter-producer order
//                      (§III-A: "Charm++ does not have any ordering
//                      requirement"), so the spec is a multiset;
//   * FifoQueueSpec  — OrderedL2Queue / SpscRing: strict global FIFO;
//   * AllocSpec      — pool allocator: a live buffer is owned by exactly
//                      one caller between alloc and free;
//   * GateSpec       — wakeup gate epochs: prepare snapshots the epoch,
//                      commit may only return once the epoch has advanced
//                      past the snapshot.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "verify/history.hpp"

namespace bgq::verify {

enum class LinVerdict {
  kOk,         ///< a legal linearization exists
  kViolation,  ///< no legal linearization — the structure misbehaved
  kLimit,      ///< search budget exhausted (inconclusive; treated as fail)
  kTooLarge,   ///< history exceeds the 64-op checker capacity
};

struct LinResult {
  LinVerdict verdict = LinVerdict::kOk;
  std::string message;

  bool ok() const { return verdict == LinVerdict::kOk; }
};

inline std::string describe_history(const std::vector<Op>& ops) {
  std::string s;
  for (const Op& op : ops) {
    s += "  ";
    s += format_op(op);
    s += '\n';
  }
  return s;
}

namespace detail {

inline void key_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (i * 8)));
}

}  // namespace detail

/// Unordered MPSC queue spec: a bag of in-flight message ids.
struct BagQueueSpec {
  using State = std::multiset<std::uint64_t>;

  static bool apply(State& s, const Op& op) {
    switch (op.kind) {
      case OpKind::kEnqueue:
        s.insert(op.value);
        return true;
      case OpKind::kDequeue: {
        auto it = s.find(op.result);
        if (it == s.end()) return false;
        s.erase(it);
        return true;
      }
      case OpKind::kDequeueEmpty:
        return s.empty();
      default:
        return false;
    }
  }

  static void key(const State& s, std::string& out) {
    for (std::uint64_t v : s) detail::key_u64(out, v);
  }
};

/// Strict-FIFO queue spec (single producer, or the MPI-ordered variant
/// driven from one producer).
struct FifoQueueSpec {
  using State = std::deque<std::uint64_t>;

  static bool apply(State& s, const Op& op) {
    switch (op.kind) {
      case OpKind::kEnqueue:
        s.push_back(op.value);
        return true;
      case OpKind::kDequeue:
        if (s.empty() || s.front() != op.result) return false;
        s.pop_front();
        return true;
      case OpKind::kDequeueEmpty:
        return s.empty();
      default:
        return false;
    }
  }

  static void key(const State& s, std::string& out) {
    for (std::uint64_t v : s) detail::key_u64(out, v);
  }
};

/// Allocator exclusivity spec: the set of live buffer ids.  A buffer may
/// not be issued while live (double-issue) nor freed while not live
/// (double-free / foreign free).
struct AllocSpec {
  using State = std::set<std::uint64_t>;

  static bool apply(State& s, const Op& op) {
    switch (op.kind) {
      case OpKind::kAlloc:
        return s.insert(op.result).second;
      case OpKind::kAllocFail:
        return true;
      case OpKind::kFree:
        return s.erase(op.value) == 1;
      default:
        return false;
    }
  }

  static void key(const State& s, std::string& out) {
    for (std::uint64_t v : s) detail::key_u64(out, v);
  }
};

/// Wakeup-gate epoch spec.  wake() advances the epoch; prepare_wait()
/// returns the current epoch; commit_wait(seen) may only return once the
/// epoch exceeds `seen` — a commit with no justifying wake is exactly the
/// "slept through the signal / spurious resume" failure of a racy gate.
struct GateSpec {
  using State = std::uint64_t;  // the epoch

  static bool apply(State& s, const Op& op) {
    switch (op.kind) {
      case OpKind::kWake:
        ++s;
        return true;
      case OpKind::kPrepare:
        return op.result == s;
      case OpKind::kCommit:
        return s > op.value;
      case OpKind::kCancel:
        return true;
      default:
        return false;
    }
  }

  static void key(const State& s, std::string& out) {
    detail::key_u64(out, s);
  }
};

template <typename Spec>
class LinearizabilityChecker {
 public:
  static LinResult check(const std::vector<Op>& ops,
                         std::uint64_t node_limit = 4'000'000) {
    LinResult r;
    const std::size_t n = ops.size();
    if (n == 0) return r;
    if (n > 64) {
      r.verdict = LinVerdict::kTooLarge;
      r.message = "history has " + std::to_string(n) + " ops (checker max 64)";
      return r;
    }

    Dfs dfs{ops, node_limit};
    typename Spec::State init{};
    const std::uint64_t full = (n == 64) ? ~std::uint64_t{0}
                                         : ((std::uint64_t{1} << n) - 1);
    if (dfs.run(0, init, full)) return r;

    if (dfs.nodes > node_limit) {
      r.verdict = LinVerdict::kLimit;
      r.message = "search budget exhausted after " +
                  std::to_string(dfs.nodes) + " nodes\n" +
                  describe_history(ops);
    } else {
      r.verdict = LinVerdict::kViolation;
      r.message = "no legal linearization of:\n" + describe_history(ops);
    }
    return r;
  }

 private:
  struct Dfs {
    const std::vector<Op>& ops;
    const std::uint64_t node_limit;
    std::uint64_t nodes = 0;
    std::unordered_set<std::string> memo{};

    bool run(std::uint64_t mask, const typename Spec::State& state,
             std::uint64_t full) {
      if (mask == full) return true;
      if (++nodes > node_limit) return false;

      std::string key;
      key.reserve(8 + 16);
      detail::key_u64(key, mask);
      Spec::key(state, key);
      if (!memo.insert(std::move(key)).second) return false;

      // An op may linearize first iff no other pending op *responded*
      // before it was invoked.
      std::uint64_t min_res = ~std::uint64_t{0};
      std::size_t min_idx = 0;
      for (std::size_t i = 0; i < ops.size(); ++i) {
        if (mask & (std::uint64_t{1} << i)) continue;
        if (ops[i].res < min_res) {
          min_res = ops[i].res;
          min_idx = i;
        }
      }
      for (std::size_t i = 0; i < ops.size(); ++i) {
        if (mask & (std::uint64_t{1} << i)) continue;
        if (i != min_idx && ops[i].inv > min_res) continue;
        typename Spec::State next = state;
        if (!Spec::apply(next, ops[i])) continue;
        if (run(mask | (std::uint64_t{1} << i), next, full)) return true;
      }
      return false;
    }
  };
};

template <typename Spec>
LinResult check_linearizable(const std::vector<Op>& ops,
                             std::uint64_t node_limit = 4'000'000) {
  return LinearizabilityChecker<Spec>::check(ops, node_limit);
}

}  // namespace bgq::verify
