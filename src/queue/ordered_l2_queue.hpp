// The PAMI/MPI-semantics variant of the L2 atomic queue (paper §III-A).
//
// "As MPI has a match ordering requirement, lockless queues in PAMI must
//  lock the overflow queue and check if the overflow queue has messages
//  before incrementing the bound resulting in higher overheads."
//
// This queue preserves global FIFO order across the lockless ring and the
// overflow queue: once any message has spilled to overflow, producers keep
// appending to overflow (under the lock) until the consumer has drained it,
// so a newer message can never overtake an older one.  The cost is a lock
// acquisition on the consumer's bound advance and on every producer path
// while overflow is non-empty — measured against L2AtomicQueue by
// bench_queue as the ablation behind the paper's design argument.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <mutex>
#include <type_traits>
#include <vector>

#include "common/cacheline.hpp"
#include "l2atomic/l2_atomic.hpp"
#include "verify/schedule_point.hpp"

namespace bgq::queue {

/// Multi-producer single-consumer queue with MPI-style FIFO across the
/// ring + overflow pair.
template <typename T = void*>
class OrderedL2Queue {
  static_assert(std::is_pointer_v<T>, "slots hold message pointers");

 public:
  explicit OrderedL2Queue(std::size_t capacity = 1024)
      : size_(next_pow2(capacity < 2 ? 2 : capacity)),
        mask_(size_ - 1),
        counters_(size_),
        slots_(size_) {
    for (auto& s : slots_) s.store(nullptr, std::memory_order_relaxed);
  }

  OrderedL2Queue(const OrderedL2Queue&) = delete;
  OrderedL2Queue& operator=(const OrderedL2Queue&) = delete;

  bool enqueue(T msg) {
    // The paper's §III-A point, verbatim: "lockless queues in PAMI must
    // lock the overflow queue and check if the overflow queue has
    // messages before incrementing the bound" — the overflow-emptiness
    // check and the bounded increment must be one atomic step, or a
    // producer could put a newer message into the ring while an older one
    // sits in overflow.  The higher overhead of this lock is exactly what
    // Charm++'s unordered L2AtomicQueue avoids.
    std::uint64_t ticket;
    {
      BGQ_SCHED_BLOCK_BEGIN();
      std::unique_lock<std::mutex> g(overflow_mutex_);
      BGQ_SCHED_BLOCK_END();
      if (!overflow_.empty()) {
        overflow_.push_back(msg);
        overflow_size_.fetch_add(1, std::memory_order_release);
        return false;
      }
      ticket = counters_.bounded_increment();
      if (ticket == l2::kBoundedFailure) {
        overflow_.push_back(msg);
        overflow_size_.fetch_add(1, std::memory_order_release);
        return false;
      }
    }
    BGQ_SCHED_POINT("oqueue.enqueue.claimed");
    slots_[ticket & mask_].store(msg, std::memory_order_release);
    return true;
  }

  T try_dequeue() {
    const std::size_t slot = consumer_count_ & mask_;
    T msg = slots_[slot].load(std::memory_order_acquire);
    BGQ_SCHED_POINT("oqueue.dequeue.loaded");
    if (msg != nullptr) {
      slots_[slot].store(nullptr, std::memory_order_relaxed);
      ++consumer_count_;
      // The MPI-semantics cost: the bound may only be raised while holding
      // the overflow lock, so a producer serialized behind overflow cannot
      // slip into a freshly-opened ring slot ahead of older messages.
      BGQ_SCHED_BLOCK_BEGIN();
      std::unique_lock<std::mutex> g(overflow_mutex_);
      BGQ_SCHED_BLOCK_END();
      counters_.advance_bound(1);
      return msg;
    }
    // Ring messages are always OLDER than overflow messages (a producer
    // that finds overflow non-empty appends behind it), so the overflow
    // may only be popped when the ring is *genuinely* empty — no claimed
    // ticket outstanding.  Unsynchronized check-then-check is not enough
    // (the slot/counter reads can predate a producer's ring publishes
    // while the overflow read sees its newer spill), so the emptiness
    // check happens under the same lock producers claim tickets under.
    if (overflow_size_.load(std::memory_order_acquire) > 0) {
      BGQ_SCHED_BLOCK_BEGIN();
      std::unique_lock<std::mutex> g(overflow_mutex_);
      BGQ_SCHED_BLOCK_END();
      if (counters_.counter() != consumer_count_) return nullptr;
      if (!overflow_.empty()) {
        T m = overflow_.front();
        overflow_.pop_front();
        overflow_size_.fetch_sub(1, std::memory_order_release);
        return m;
      }
    }
    return nullptr;
  }

  bool empty() const noexcept {
    return counters_.counter() == consumer_count_ &&
           overflow_size_.load(std::memory_order_acquire) == 0;
  }

  std::size_t capacity() const noexcept { return size_; }

 private:
  const std::size_t size_;
  const std::size_t mask_;

  l2::BoundedCounter counters_;
  std::vector<std::atomic<T>> slots_;

  alignas(kL2Line) std::uint64_t consumer_count_ = 0;

  alignas(kL2Line) std::atomic<std::size_t> overflow_size_{0};
  std::mutex overflow_mutex_;
  std::deque<T> overflow_;
};

}  // namespace bgq::queue
