// Prioritized message queue (paper §VII future work).
//
// "We plan to explore fine-grained schedulers to take advantage of all
//  four threads on the BG/Q core even when step times are very small."
//
// Charm++'s scheduler drains a prioritized queue (CqsPrioQueue) after the
// network queue; fine-grained scheduling hinges on cheap strict-priority
// dequeue with FIFO order within a priority class.  This is that
// structure: integer priorities (smaller = more urgent, the Charm++
// convention), O(log P) per operation in the number of *distinct live
// priorities* P (tiny in practice: NAMD uses a handful of classes), and
// stable FIFO within a class via a monotone sequence number.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <type_traits>

namespace bgq::queue {

/// Single-threaded priority queue of message pointers (the consumer-side
/// scheduler structure; cross-thread handoff happens in the lockless
/// queues upstream).
template <typename T = void*>
class PriorityMsgQueue {
  static_assert(std::is_pointer_v<T>, "slots hold message pointers");

 public:
  using Priority = std::int32_t;

  void enqueue(T msg, Priority prio) {
    buckets_[prio].push_back(msg);
    ++size_;
  }

  /// Highest-urgency (numerically smallest priority), FIFO within class.
  T try_dequeue() {
    if (buckets_.empty()) return nullptr;
    auto it = buckets_.begin();
    T m = it->second.front();
    it->second.pop_front();
    if (it->second.empty()) buckets_.erase(it);
    --size_;
    return m;
  }

  /// Priority of the next message (valid only when !empty()).
  Priority top_priority() const { return buckets_.begin()->first; }

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }

  /// Number of distinct live priority classes.
  std::size_t classes() const noexcept { return buckets_.size(); }

 private:
  std::map<Priority, std::deque<T>> buckets_;
  std::size_t size_ = 0;
};

}  // namespace bgq::queue
