// Lockless producer–consumer queue over L2 atomics (paper §III-A, Fig. 2).
//
// Layout and protocol follow the paper exactly:
//   * a pair of L2 counters in adjacent memory locations — the producer
//     counter and the bound;
//   * a vector of slots for message pointers;
//   * producers claim a slot with a bounded load-increment; the slot index
//     is old_counter % queue_size;
//   * when the bounded increment fails (counter == bound, queue full) the
//     producer inserts into a mutex-protected overflow queue;
//   * the consumer drains the L2 atomic queue first, then the overflow
//     queue; each drained slot raises the bound, re-opening it.
//
// Because Charm++ has no message-ordering requirement the consumer touches
// the overflow queue only when the lockless queue is empty — the cheap path
// never takes a lock.  (Contrast OrderedL2Queue, the PAMI/MPI-semantics
// variant, in ordered_l2_queue.hpp.)
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "common/cacheline.hpp"
#include "l2atomic/l2_atomic.hpp"
#include "trace/trace.hpp"
#include "verify/schedule_point.hpp"

namespace bgq::queue {

/// Multi-producer single-consumer lockless queue of pointers.
///
/// T must be a pointer type; nullptr marks an empty slot (messages are
/// heap-allocated in the runtime, so a null payload never occurs).
template <typename T = void*>
class L2AtomicQueue {
  static_assert(std::is_pointer_v<T>, "slots hold message pointers");

 public:
  /// Capacity is rounded up to a power of two (slot index becomes a mask,
  /// like the production queue).  Default matches the Charm++ PAMI layer.
  explicit L2AtomicQueue(std::size_t capacity = 1024)
      : size_(next_pow2(capacity < 2 ? 2 : capacity)),
        mask_(size_ - 1),
        counters_(size_),
        slots_(size_) {
    for (auto& s : slots_) s.store(nullptr, std::memory_order_relaxed);
  }

  L2AtomicQueue(const L2AtomicQueue&) = delete;
  L2AtomicQueue& operator=(const L2AtomicQueue&) = delete;

  /// Producer side; callable concurrently from any number of threads.
  /// Never fails: overflows spill to the mutex-protected overflow queue.
  /// Returns true when the fast lockless path was taken.
  bool enqueue(T msg) {
    const std::uint64_t ticket = counters_.bounded_increment();
    if (ticket != l2::kBoundedFailure) {
      BGQ_SCHED_POINT("queue.enqueue.claimed");
      slots_[ticket & mask_].store(msg, std::memory_order_release);
      return true;
    }
    BGQ_SCHED_POINT("queue.enqueue.spill");
    BGQ_TRACE_EVENT(::bgq::trace::EventKind::kQueueSpill, size_);
    {
      BGQ_SCHED_BLOCK_BEGIN();
      std::unique_lock<std::mutex> g(overflow_mutex_);
      BGQ_SCHED_BLOCK_END();
      overflow_.push_back(msg);
    }
    overflow_size_.fetch_add(1, std::memory_order_release);
    return false;
  }

  /// Producer side, no-spill variant: returns false when the lockless ring
  /// is full instead of spilling to overflow.  The pool allocator uses this
  /// — a buffer that does not fit in the pool is freed to the heap
  /// (§III-B's pool threshold), never queued under a lock.
  bool try_enqueue(T msg) {
    const std::uint64_t ticket = counters_.bounded_increment();
    if (ticket == l2::kBoundedFailure) return false;
    BGQ_SCHED_POINT("queue.try_enqueue.claimed");
    slots_[ticket & mask_].store(msg, std::memory_order_release);
    return true;
  }

  /// Consumer side; single thread only.  Returns nullptr when empty.
  T try_dequeue() {
    const std::size_t slot = consumer_count_ & mask_;
    T msg = slots_[slot].load(std::memory_order_acquire);
    BGQ_SCHED_POINT("queue.dequeue.loaded");
    if (msg != nullptr) {
      slots_[slot].store(nullptr, std::memory_order_relaxed);
      ++consumer_count_;
      BGQ_SCHED_POINT("queue.dequeue.cleared");
      counters_.advance_bound(1);
      return msg;
    }
    // Lockless queue empty (or a producer is mid-publish on this slot —
    // the caller re-polls either way).  Only now may the overflow queue be
    // touched, and only if the size hint says it is non-empty.
    if (overflow_size_.load(std::memory_order_acquire) > 0) {
      BGQ_SCHED_BLOCK_BEGIN();
      std::unique_lock<std::mutex> g(overflow_mutex_);
      BGQ_SCHED_BLOCK_END();
      if (!overflow_.empty()) {
        T m = overflow_.front();
        overflow_.pop_front();
        overflow_size_.fetch_sub(1, std::memory_order_release);
        return m;
      }
    }
    return nullptr;
  }

  /// Cheap emptiness probe for the idle-poll loop (§III-D): a single L2
  /// load on the producer counter — exactly what the optimized BG/Q idle
  /// poll spins on.  Consumer thread only (reads the consumer cursor).
  bool probably_empty() const noexcept {
    return counters_.counter() == consumed_count_estimate() &&
           overflow_size_.load(std::memory_order_acquire) == 0;
  }

  std::size_t capacity() const noexcept { return size_; }

  /// Number of messages currently in the lockless ring (approximate under
  /// concurrency; exact when quiescent).
  std::size_t ring_size() const noexcept {
    const std::uint64_t produced = counters_.counter();
    return static_cast<std::size_t>(produced - consumer_count_);
  }

  std::size_t overflow_count() const noexcept {
    return overflow_size_.load(std::memory_order_acquire);
  }

  bool empty() const noexcept {
    return ring_size() == 0 && overflow_count() == 0;
  }

 private:
  std::uint64_t consumed_count_estimate() const noexcept {
    return consumer_count_;
  }

  const std::size_t size_;
  const std::size_t mask_;

  l2::BoundedCounter counters_;  // producer counter + bound, own L2 line

  std::vector<std::atomic<T>> slots_;

  // Consumer-private cursor; padded away from the shared counters.
  alignas(kL2Line) std::uint64_t consumer_count_ = 0;

  alignas(kL2Line) std::atomic<std::size_t> overflow_size_{0};
  std::mutex overflow_mutex_;
  std::deque<T> overflow_;
};

}  // namespace bgq::queue
