// Baseline mutex-guarded producer–consumer queue.
//
// This is the "typical" implementation the paper replaces (§III-A: "this
// mutex can be a bottleneck when several peers simultaneously send messages
// to the same rank").  Kept as the comparison point for bench_queue and for
// Fig. 8 (L2 atomics on/off), and as the queue used when a node is built
// with UseL2Atomics = false.
#pragma once

#include <cstddef>
#include <deque>
#include <mutex>
#include <type_traits>

namespace bgq::queue {

/// Multi-producer single-consumer queue guarded by one mutex.
template <typename T = void*>
class MutexQueue {
  static_assert(std::is_pointer_v<T>, "slots hold message pointers");

 public:
  MutexQueue() = default;
  MutexQueue(const MutexQueue&) = delete;
  MutexQueue& operator=(const MutexQueue&) = delete;

  /// Always succeeds; returns false to mirror L2AtomicQueue's "fast path
  /// taken" signal (a mutex path is never the fast path).
  bool enqueue(T msg) {
    std::lock_guard<std::mutex> g(mutex_);
    q_.push_back(msg);
    return false;
  }

  T try_dequeue() {
    std::lock_guard<std::mutex> g(mutex_);
    if (q_.empty()) return nullptr;
    T m = q_.front();
    q_.pop_front();
    return m;
  }

  bool empty() const {
    std::lock_guard<std::mutex> g(mutex_);
    return q_.empty();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> g(mutex_);
    return q_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::deque<T> q_;
};

}  // namespace bgq::queue
