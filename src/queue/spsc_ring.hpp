// Single-producer single-consumer ring buffer.
//
// Used for the per-communication-thread work queues (paper §III-C): a
// worker thread posts work descriptors to its assigned comm thread; with a
// fixed producer/consumer pairing the full MPSC machinery is unnecessary
// and a classic Lamport ring with cached indices is the cheapest correct
// structure.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <vector>

#include "common/cacheline.hpp"
#include "verify/schedule_point.hpp"

namespace bgq::queue {

/// Bounded SPSC ring of trivially-movable values.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity = 1024)
      : size_(next_pow2(capacity < 2 ? 2 : capacity)),
        mask_(size_ - 1),
        slots_(size_) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side.  Returns false when full.
  bool try_enqueue(T v) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head - cached_tail_ >= size_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head - cached_tail_ >= size_) {
        BGQ_SCHED_POINT("spsc.enqueue.full");
        return false;
      }
    }
    slots_[head & mask_] = std::move(v);
    BGQ_SCHED_POINT("spsc.enqueue.stored");
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side.  Returns nullopt when empty.
  std::optional<T> try_dequeue() {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == cached_head_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail == cached_head_) {
        BGQ_SCHED_POINT("spsc.dequeue.empty");
        return std::nullopt;
      }
    }
    T v = std::move(slots_[tail & mask_]);
    BGQ_SCHED_POINT("spsc.dequeue.moved");
    tail_.store(tail + 1, std::memory_order_release);
    return v;
  }

  /// Approximate size (exact when quiescent).
  std::size_t size_estimate() const noexcept {
    return head_.load(std::memory_order_acquire) -
           tail_.load(std::memory_order_acquire);
  }

  bool empty() const noexcept { return size_estimate() == 0; }
  std::size_t capacity() const noexcept { return size_; }

 private:
  const std::size_t size_;
  const std::size_t mask_;
  std::vector<T> slots_;

  alignas(kL2Line) std::atomic<std::size_t> head_{0};  // producer writes
  alignas(kL2Line) std::size_t cached_tail_ = 0;       // producer private

  alignas(kL2Line) std::atomic<std::size_t> tail_{0};  // consumer writes
  alignas(kL2Line) std::size_t cached_head_ = 0;       // consumer private
};

}  // namespace bgq::queue
