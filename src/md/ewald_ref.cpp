#include "md/ewald_ref.hpp"

#include <cmath>
#include <complex>
#include <numbers>

namespace bgq::md {

EwaldResult ewald_reference(const System& sys, double beta, int kmax) {
  using std::numbers::pi;
  EwaldResult out;
  const std::size_t n = sys.natoms();
  out.f_real.assign(n, {});
  out.f_recip.assign(n, {});
  const double L = sys.box;
  const double volume = L * L * L;

  // Real space: every pair once, minimum image.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const Vec3 d = sys.min_image(sys.pos[i], sys.pos[j]);
      const double r2 = d.norm2();
      const double r = std::sqrt(r2);
      const double qq = kCoulomb * sys.charge[i] * sys.charge[j];
      const double br = beta * r;
      out.e_real += qq * std::erfc(br) / r;
      const double fscalar =
          qq * (std::erfc(br) / (r2 * r) +
                (2.0 * beta / std::sqrt(pi)) * std::exp(-br * br) / r2);
      const Vec3 fv = d * fscalar;
      out.f_real[i] += fv;
      out.f_real[j] -= fv;
    }
  }

  // Reciprocal space: E = (1/2V) sum_{k!=0} (4 pi / k^2) e^{-k^2/4b^2}
  // |S(k)|^2, S(k) = sum_i q_i e^{i k.r_i}, k = 2 pi m / L.
  for (int mx = -kmax; mx <= kmax; ++mx) {
    for (int my = -kmax; my <= kmax; ++my) {
      for (int mz = -kmax; mz <= kmax; ++mz) {
        if (mx == 0 && my == 0 && mz == 0) continue;
        const double kx = 2.0 * pi * mx / L;
        const double ky = 2.0 * pi * my / L;
        const double kz = 2.0 * pi * mz / L;
        const double k2 = kx * kx + ky * ky + kz * kz;
        const double factor =
            (4.0 * pi / k2) * std::exp(-k2 / (4.0 * beta * beta));

        std::complex<double> s(0, 0);
        for (std::size_t i = 0; i < n; ++i) {
          const double phase = kx * sys.pos[i].x + ky * sys.pos[i].y +
                               kz * sys.pos[i].z;
          s += sys.charge[i] *
               std::complex<double>(std::cos(phase), std::sin(phase));
        }
        out.e_recip +=
            kCoulomb / (2.0 * volume) * factor * std::norm(s);

        // F_i = (q_i / V) * factor * k * Im(e^{-i k r_i} S(k))
        for (std::size_t i = 0; i < n; ++i) {
          const double phase = kx * sys.pos[i].x + ky * sys.pos[i].y +
                               kz * sys.pos[i].z;
          const std::complex<double> ei(std::cos(phase), std::sin(phase));
          const double im = (ei * std::conj(s)).imag();
          const double c =
              kCoulomb * sys.charge[i] / volume * factor * im;
          out.f_recip[i] += Vec3{kx, ky, kz} * c;
        }
      }
    }
  }

  // Self energy.
  double q2 = 0;
  for (double q : sys.charge) q2 += q * q;
  out.e_self = -kCoulomb * beta / std::sqrt(pi) * q2;

  return out;
}

}  // namespace bgq::md
