// NAMD-style interpolation tables for the nonbonded inner loop (§IV-B.1).
//
// NAMD evaluates Lennard-Jones and real-space (erfc) electrostatics via a
// table indexed by r^2 — the "large interpolation table" whose L1P load
// latency drove the paper's unroll/load-to-use-distance work.  We tabulate
// six functions of r^2 on uniform bins with linear interpolation:
//
//   u_vdwA = S(r)/r^12          f_vdwA = 12 S/r^14 - 2 S'/r^12
//   u_vdwB = S(r)/r^6           f_vdwB =  6 S/r^8  - 2 S'/r^6
//   u_elec = erfc(br)/r         f_elec = erfc(br)/r^3
//                                        + (2b/sqrt(pi)) e^{-b^2 r^2}/r^2
//
// where S is the NAMD C1 switching function between switch_dist and
// cutoff (applied to van der Waals only; the erfc factor already decays
// smoothly) and f is the scalar in F_vec = f * (ri - rj).  The kernel
// multiplies by the pair's A, B and C*qi*qj.
#pragma once

#include <cstddef>
#include <vector>

namespace bgq::md {

class ForceTable {
 public:
  ForceTable(double cutoff, double beta, double switch_dist,
             std::size_t bins = 4096);

  double cutoff() const noexcept { return cutoff_; }
  double cutoff2() const noexcept { return cutoff_ * cutoff_; }
  double beta() const noexcept { return beta_; }
  std::size_t bins() const noexcept { return bins_; }

  struct Terms {
    double f_vdwA, f_vdwB, f_elec;
    double u_vdwA, u_vdwB, u_elec;
  };

  /// Interpolated terms at r2 (r2 <= cutoff^2; values below the table
  /// floor clamp to the first bin, as NAMD does for unphysically close
  /// contacts).
  void lookup(double r2, Terms& t) const noexcept {
    double x = (r2 - r2_min_) * inv_step_;
    if (x < 0) x = 0;
    auto k = static_cast<std::size_t>(x);
    if (k >= bins_) k = bins_ - 1;
    const double frac = x - static_cast<double>(k);
    t.f_vdwA = lerp(f_vdwA_, k, frac);
    t.f_vdwB = lerp(f_vdwB_, k, frac);
    t.f_elec = lerp(f_elec_, k, frac);
    t.u_vdwA = lerp(u_vdwA_, k, frac);
    t.u_vdwB = lerp(u_vdwB_, k, frac);
    t.u_elec = lerp(u_elec_, k, frac);
  }

  /// Bin coordinates for the QPX kernel's gathered lookups.
  double r2_min() const noexcept { return r2_min_; }
  double inv_step() const noexcept { return inv_step_; }
  const double* f_vdwA() const noexcept { return f_vdwA_.data(); }
  const double* f_vdwB() const noexcept { return f_vdwB_.data(); }
  const double* f_elec() const noexcept { return f_elec_.data(); }
  const double* u_vdwA() const noexcept { return u_vdwA_.data(); }
  const double* u_vdwB() const noexcept { return u_vdwB_.data(); }
  const double* u_elec() const noexcept { return u_elec_.data(); }

 private:
  static double lerp(const std::vector<double>& t, std::size_t k,
                     double frac) noexcept {
    return t[k] + frac * (t[k + 1] - t[k]);
  }

  double cutoff_;
  double beta_;
  double switch_dist_;
  std::size_t bins_;
  double r2_min_;
  double inv_step_;
  // bins_+1 samples each so bin bins_-1 can interpolate to the cutoff.
  std::vector<double> f_vdwA_, f_vdwB_, f_elec_;
  std::vector<double> u_vdwA_, u_vdwB_, u_elec_;
};

}  // namespace bgq::md
