// Synthetic molecular systems for the mini-NAMD benchmarks (§IV-B).
//
// The paper's inputs (ApoA1 92k atoms, STMV 20M/100M) are proprietary
// PDB/PSF data we do not have; per the substitution rule the builder
// produces condensed-phase systems with the same atom density
// (~0.1 atoms/A^3, water-like), charge neutrality, bonded topology and
// Lennard-Jones types, so the force kernels and communication phases do
// the same work per atom.  Named presets mirror the paper's benchmarks at
// configurable scale.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace bgq::md {

/// 3-vector in Angstroms (positions) or Angstrom/fs (velocities).
struct Vec3 {
  double x = 0, y = 0, z = 0;

  Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  double norm2() const { return dot(*this); }
};

/// Harmonic bond i-j: U = k (r - r0)^2.
struct Bond {
  std::uint32_t i, j;
  double k;   ///< kcal/mol/A^2
  double r0;  ///< A
};

/// Harmonic angle i-j-k (j is the centre): U = k (theta - theta0)^2.
struct Angle {
  std::uint32_t i, j, k;
  double k_theta;  ///< kcal/mol/rad^2
  double theta0;   ///< rad
};

/// Lennard-Jones type parameters (NAMD convention: U = eps[(rm/r)^12 -
/// 2(rm/r)^6] rewritten as A/r^12 - B/r^6).
struct LjType {
  double epsilon;  ///< kcal/mol
  double rmin;     ///< A (rmin/2 doubled already)
};

/// Physical constants in MD units (A, fs, amu, kcal/mol, e).
inline constexpr double kCoulomb = 332.0636;     ///< kcal*A/(mol*e^2)
inline constexpr double kBoltzmann = 0.0019872;  ///< kcal/(mol*K)
/// F [kcal/mol/A] -> a [A/fs^2] divided by mass [amu].
inline constexpr double kForceToAccel = 4.184e-4;

/// A complete simulation input.
struct System {
  double box = 0;  ///< cubic box edge, A (orthorhombic cube)
  std::vector<Vec3> pos;
  std::vector<Vec3> vel;
  std::vector<double> charge;  ///< e
  std::vector<double> mass;    ///< amu
  std::vector<std::uint16_t> type;
  std::vector<LjType> lj_types;
  std::vector<Bond> bonds;
  std::vector<Angle> angles;
  /// Excluded nonbonded pairs (bonded 1-2 and 1-3), sorted (i < j).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> exclusions;

  std::size_t natoms() const noexcept { return pos.size(); }

  /// Minimum-image displacement a - b.
  Vec3 min_image(const Vec3& a, const Vec3& b) const;

  /// Wrap a position into [0, box).
  Vec3 wrap(Vec3 p) const;

  /// Net charge (should be ~0 for Ewald).
  double total_charge() const;
};

/// Builder options.
struct BuildOptions {
  double box = 32.0;              ///< A
  double density = 0.1;           ///< atoms / A^3 (condensed phase)
  double temperature = 300.0;     ///< K, for initial velocities
  std::uint64_t seed = 2013;
  bool with_bonds = true;         ///< 3-atom "water-like" molecules
};

/// Build a water-like molecular system: rigid-ish 3-site molecules on a
/// jittered lattice, zero net charge, Maxwell-Boltzmann velocities.
System build_system(const BuildOptions& opt);

/// Presets mirroring the paper's benchmarks.  `scale` divides the atom
/// count (scale=1 is the paper's size; functional tests use >= 16).
System apoa1_like(double scale = 24.0);    ///< ~92k atoms at scale 1
System stmv20m_like(double scale = 4096);  ///< ~20M atoms at scale 1

/// Periodic cell list for cutoff pair enumeration.
class CellList {
 public:
  /// Bins `pos` (all inside [0, box)^3) into cells of edge >= cutoff.
  CellList(const std::vector<Vec3>& pos, double box, double cutoff);

  /// Visit all unordered pairs (i < j) within the cutoff *candidate* set
  /// (same or neighbouring cell); the callback applies the exact r^2 test.
  template <typename F>
  void for_each_pair(F&& f) const {
    for (int cz = 0; cz < ncell_; ++cz)
      for (int cy = 0; cy < ncell_; ++cy)
        for (int cx = 0; cx < ncell_; ++cx) visit_cell(cx, cy, cz, f);
  }

  int cells_per_dim() const noexcept { return ncell_; }

 private:
  template <typename F>
  void visit_cell(int cx, int cy, int cz, F&& f) const;

  int ncell_;
  std::vector<std::vector<std::uint32_t>> cells_;

  std::size_t cell_index(int cx, int cy, int cz) const {
    auto wrap = [this](int c) { return (c + ncell_) % ncell_; };
    return (static_cast<std::size_t>(wrap(cz)) * ncell_ + wrap(cy)) *
               ncell_ +
           wrap(cx);
  }

  template <typename F>
  friend class CellPairVisitor;
};

template <typename F>
void CellList::visit_cell(int cx, int cy, int cz, F&& f) const {
  const auto& home = cells_[cell_index(cx, cy, cz)];
  // Pairs within the home cell.
  for (std::size_t a = 0; a < home.size(); ++a)
    for (std::size_t b = a + 1; b < home.size(); ++b) f(home[a], home[b]);
  // Half the 26 neighbours (forward stencil avoids double counting).
  static constexpr int kStencil[13][3] = {
      {1, 0, 0},  {0, 1, 0},  {0, 0, 1},  {1, 1, 0},  {1, -1, 0},
      {1, 0, 1},  {1, 0, -1}, {0, 1, 1},  {0, 1, -1}, {1, 1, 1},
      {1, 1, -1}, {1, -1, 1}, {1, -1, -1}};
  for (const auto& s : kStencil) {
    // A stencil cell that wraps back onto the home cell would duplicate
    // home-cell pairs (extents <= 2 make (+1) and (-1) coincide).
    const int nx = cx + s[0], ny = cy + s[1], nz = cz + s[2];
    if (cell_index(nx, ny, nz) == cell_index(cx, cy, cz)) continue;
    const auto& other = cells_[cell_index(nx, ny, nz)];
    for (std::uint32_t i : home)
      for (std::uint32_t j : other) f(i, j);
  }
}

}  // namespace bgq::md
