#include "md/parallel_md.hpp"

#include "common/timing.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <numbers>
#include <stdexcept>
#include <thread>

namespace bgq::md {

namespace {

/// Direction index helpers for the 8 grid-exchange regions: index
/// 0..7 <-> (dx,dy) in row-major order skipping (0,0).
constexpr int kDirs[8][2] = {{-1, -1}, {-1, 0}, {-1, 1}, {0, -1},
                             {0, 1},   {1, -1}, {1, 0},  {1, 1}};

std::size_t dir_index(int dx, int dy) {
  for (std::size_t i = 0; i < 8; ++i) {
    if (kDirs[i][0] == dx && kDirs[i][1] == dy) return i;
  }
  throw std::logic_error("bad direction");
}

std::size_t mirror(std::size_t r) {
  return dir_index(-kDirs[r][0], -kDirs[r][1]);
}

struct HaloHeader {
  std::uint32_t peer_index;  ///< receiver-side index into halo_peers
  std::uint32_t epoch;       ///< sender's step epoch (parity = slab)
};

struct GridHeader {
  std::uint32_t slot;
};

std::size_t int_sqrt(std::size_t p) {
  auto g = static_cast<std::size_t>(std::sqrt(static_cast<double>(p)));
  while (g * g > p) --g;
  while ((g + 1) * (g + 1) <= p) ++g;
  return g;
}

}  // namespace

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

ParallelMd::ParallelMd(cvs::Machine& machine, m2m::Coordinator* coord,
                       System sys, MdConfig cfg)
    : machine_(machine),
      coord_(coord),
      cfg_(cfg),
      sys_(std::move(sys)),
      table_(cfg.cutoff, cfg.beta, cfg.switch_dist),
      lj_(sys_.lj_types),
      pme_(cfg.pme_grid, cfg.beta, sys_.box) {
  g_ = int_sqrt(machine.pe_count());
  if (g_ * g_ != machine.pe_count() || g_ < 2) {
    throw std::invalid_argument("PE count must be G^2 with G >= 2");
  }
  if (cfg_.pme_grid % g_ != 0) {
    throw std::invalid_argument("PME grid must divide by G");
  }
  bk_ = cfg_.pme_grid / g_;
  if (bk_ < kPadLo + 1) {
    throw std::invalid_argument("PME grid too small for this PE grid");
  }
  padded_ = bk_ + kPadLo + kPadHi;
  patch_w_ = sys_.box / static_cast<double>(g_);
  if (cfg_.transport == fft::Transport::kM2M && coord_ == nullptr) {
    throw std::invalid_argument("m2m transport needs a Coordinator");
  }
  self_energy_ = pme_.self_energy(sys_.charge);

  fft_ = std::make_unique<fft::Pencil3DFFT>(
      machine_, cfg_.pme_grid, cfg_.transport, coord_,
      cfg_.m2m_tag_base + 16);

  build_regions();

  // ---- assign molecules to patches --------------------------------------
  const std::size_t npes = machine.pe_count();
  patches_.reserve(npes);
  for (std::size_t p = 0; p < npes; ++p) {
    patches_.push_back(std::make_unique<Patch>());
  }

  // Union-find over bonds groups atoms into molecules.
  std::vector<std::uint32_t> root(sys_.natoms());
  for (std::uint32_t i = 0; i < root.size(); ++i) root[i] = i;
  std::function<std::uint32_t(std::uint32_t)> find =
      [&](std::uint32_t x) {
        while (root[x] != x) x = root[x] = root[root[x]];
        return x;
      };
  for (const Bond& b : sys_.bonds) root[find(b.i)] = find(b.j);

  auto patch_of_pos = [&](const Vec3& p) {
    auto clamp = [&](double v) {
      auto c = static_cast<std::size_t>(v / patch_w_);
      return c >= g_ ? g_ - 1 : c;
    };
    return clamp(p.x) * g_ + clamp(p.y);
  };
  std::vector<std::size_t> owner(sys_.natoms());
  for (std::uint32_t i = 0; i < sys_.natoms(); ++i) {
    owner[i] = patch_of_pos(sys_.pos[find(i)]);
  }

  std::vector<std::uint32_t> local_id(sys_.natoms());
  for (std::uint32_t i = 0; i < sys_.natoms(); ++i) {
    Patch& p = *patches_[owner[i]];
    local_id[i] = static_cast<std::uint32_t>(p.gid.size());
    p.gid.push_back(i);
    p.pos.push_back(sys_.pos[i]);
    p.vel.push_back(sys_.vel[i]);
    p.charge.push_back(sys_.charge[i]);
    p.mass.push_back(sys_.mass[i]);
    p.type.push_back(sys_.type[i]);
  }
  for (const Bond& b : sys_.bonds) {
    Patch& p = *patches_[owner[b.i]];
    p.bonds.push_back({local_id[b.i], local_id[b.j], b.k, b.r0});
  }
  for (const Angle& a : sys_.angles) {
    Patch& p = *patches_[owner[a.j]];  // molecules are never split
    p.angles.push_back({local_id[a.i], local_id[a.j], local_id[a.k],
                        a.k_theta, a.theta0});
  }
  for (const auto& [a, b] : sys_.exclusions) {
    Patch& p = *patches_[owner[a]];
    auto la = local_id[a], lb = local_id[b];
    if (la > lb) std::swap(la, lb);
    p.exclusions.emplace_back(la, lb);
  }
  for (auto& p : patches_) {
    std::sort(p->exclusions.begin(), p->exclusions.end());
    p->force.assign(p->gid.size(), {});
    p->recip_force.assign(p->gid.size(), {});
    p->spread_grid.assign(padded_ * padded_ * cfg_.pme_grid, 0.0);
    p->phi_grid.assign(padded_ * padded_ * cfg_.pme_grid, 0.0);
  }

  // ---- halo peers: every patch within the cutoff in (x, y) --------------
  const int rings =
      static_cast<int>(std::ceil(cfg_.cutoff / patch_w_));
  for (std::size_t r = 0; r < g_; ++r) {
    for (std::size_t c = 0; c < g_; ++c) {
      Patch& p = *patches_[r * g_ + c];
      for (int dx = -rings; dx <= rings; ++dx) {
        for (int dy = -rings; dy <= rings; ++dy) {
          const auto nb = grid_neighbor(
              static_cast<cvs::PeRank>(r * g_ + c), dx, dy);
          if (nb == r * g_ + c) continue;
          if (std::find(p.halo_peers.begin(), p.halo_peers.end(), nb) ==
              p.halo_peers.end()) {
            p.halo_peers.push_back(nb);
          }
        }
      }
      std::sort(p.halo_peers.begin(), p.halo_peers.end());
    }
  }

  // Ghost layout is static (no migration): locals first, then each peer's
  // atoms in peer order.
  for (std::size_t pr = 0; pr < npes; ++pr) {
    Patch& p = *patches_[pr];
    const std::size_t nl = p.gid.size();
    p.all_pos.assign(p.pos.begin(), p.pos.end());
    p.all_charge.assign(p.charge.begin(), p.charge.end());
    p.all_type.assign(p.type.begin(), p.type.end());
    std::size_t off = nl;
    for (cvs::PeRank peer : p.halo_peers) {
      p.ghost_offset.push_back(off);
      const Patch& q = *patches_[peer];
      p.ghost_count.push_back(q.gid.size());
      for (std::size_t k = 0; k < q.gid.size(); ++k) {
        p.ghost_gid.push_back(q.gid[k]);
        p.all_pos.push_back(q.pos[k]);
        p.all_charge.push_back(q.charge[k]);
        p.all_type.push_back(q.type[k]);
      }
      off += q.gid.size();
    }
    p.ghost_staging[0].assign(p.all_pos.size() - nl, {});
    p.ghost_staging[1].assign(p.all_pos.size() - nl, {});
    p.peer_epoch = std::make_unique<bgq::l2::AtomicWord[]>(
        p.halo_peers.size());
  }

  // ---- converse handlers -------------------------------------------------
  halo_handler_ = machine_.register_handler(
      [this](cvs::Pe& pe, cvs::Message* m) {
        HaloHeader hdr;
        std::memcpy(&hdr, m->payload(), sizeof(hdr));
        Patch& p = *patches_[pe.rank()];
        const std::size_t nl = p.gid.size();
        const std::size_t off = p.ghost_offset[hdr.peer_index] - nl;
        const std::size_t bytes = m->payload_bytes() - sizeof(hdr);
        auto& slab = p.ghost_staging[hdr.epoch & 1];
        std::memcpy(slab.data() + off, m->payload() + sizeof(hdr), bytes);
        // Publish: the watermark store-max makes the slab write visible
        // before the waiter reads it (release/acquire on the word).
        p.peer_epoch[hdr.peer_index].store_max(hdr.epoch);
        pe.free_message(m);
      });

  const std::size_t K = cfg_.pme_grid;
  charge_handler_ = machine_.register_handler(
      [this, K](cvs::Pe& pe, cvs::Message* m) {
        GridHeader hdr;
        std::memcpy(&hdr, m->payload(), sizeof(hdr));
        Patch& p = *patches_[pe.rank()];
        // Chunk geometry is that of my mirror region.
        const std::size_t r = mirror(hdr.slot);
        std::memcpy(p.charge_recv.data() + region_offset(r),
                    m->payload() + sizeof(hdr),
                    regions_[r].nx * regions_[r].ny * K * sizeof(double));
        pe.free_message(m);
        p.charges_arrived.complete();
      });

  pot_handler_ = machine_.register_handler(
      [this, K](cvs::Pe& pe, cvs::Message* m) {
        GridHeader hdr;
        std::memcpy(&hdr, m->payload(), sizeof(hdr));
        Patch& p = *patches_[pe.rank()];
        const std::size_t r = hdr.slot;  // my own region index
        std::memcpy(p.pot_recv.data() + region_offset(r),
                    m->payload() + sizeof(hdr),
                    regions_[r].nx * regions_[r].ny * K * sizeof(double));
        pe.free_message(m);
        p.potentials_arrived.complete();
      });

  // ---- staging + m2m handles ---------------------------------------------
  const std::size_t staging = region_offset(8);
  for (std::size_t pr = 0; pr < npes; ++pr) {
    Patch& p = *patches_[pr];
    p.charge_pack.assign(staging, 0.0);
    p.charge_recv.assign(staging, 0.0);
    p.pot_pack.assign(staging, 0.0);
    p.pot_recv.assign(staging, 0.0);

    if (cfg_.transport == fft::Transport::kM2M) {
      auto rank = static_cast<cvs::PeRank>(pr);
      m2m::Handle& hc =
          coord_->create(rank, cfg_.m2m_tag_base + 0, 8, 8);
      hc.set_send_base(
          reinterpret_cast<const std::byte*>(p.charge_pack.data()));
      hc.set_recv_base(reinterpret_cast<std::byte*>(p.charge_recv.data()));
      m2m::Handle& hp =
          coord_->create(rank, cfg_.m2m_tag_base + 1, 8, 8);
      hp.set_send_base(
          reinterpret_cast<const std::byte*>(p.pot_pack.data()));
      hp.set_recv_base(reinterpret_cast<std::byte*>(p.pot_recv.data()));
      for (std::size_t r = 0; r < 8; ++r) {
        const auto bytes = regions_[r].nx * regions_[r].ny * K *
                           sizeof(double);
        // Charge: my region r -> neighbour(dir r), lands in its slot
        // mirror(r); slot geometry at the receiver is region r itself.
        hc.set_send(r, grid_neighbor(rank, regions_[r].dx, regions_[r].dy),
                    static_cast<std::uint32_t>(mirror(r)),
                    region_offset(r) * sizeof(double), bytes);
        // My charge-recv slot s holds mirror(s) geometry.
        const std::size_t ms = mirror(r);
        hc.set_recv(r, region_offset(ms) * sizeof(double),
                    regions_[ms].nx * regions_[ms].ny * K * sizeof(double));
        // Potential: I send to neighbour(-dir) the chunk that is ITS
        // region mirror(r); my pack slot for it sits at mirror(r).
        const auto pbytes = regions_[ms].nx * regions_[ms].ny * K *
                            sizeof(double);
        hp.set_send(r,
                    grid_neighbor(rank, -regions_[ms].dx, -regions_[ms].dy),
                    static_cast<std::uint32_t>(ms),
                    region_offset(ms) * sizeof(double), pbytes);
        hp.set_recv(r, region_offset(r) * sizeof(double), bytes);
      }
      p.charge_handle = &hc;
      p.pot_handle = &hp;
    }
  }

  energy_log_.resize(npes);
}

void ParallelMd::build_regions() {
  regions_.clear();
  auto band = [&](int d, std::size_t& o, std::size_t& n, std::size_t& g0) {
    if (d < 0) {
      o = 0;
      n = kPadLo;
      g0 = bk_ - kPadLo;
    } else if (d == 0) {
      o = kPadLo;
      n = bk_;
      g0 = 0;
    } else {
      o = kPadLo + bk_;
      n = kPadHi;
      g0 = 0;
    }
  };
  for (const auto& d : kDirs) {
    Region r{};
    r.dx = d[0];
    r.dy = d[1];
    band(d[0], r.px0, r.nx, r.gx0);
    band(d[1], r.py0, r.ny, r.gy0);
    regions_.push_back(r);
  }
}

std::size_t ParallelMd::region_offset(std::size_t r) const {
  std::size_t off = 0;
  for (std::size_t i = 0; i < r; ++i) {
    off += regions_[i].nx * regions_[i].ny * cfg_.pme_grid;
  }
  return off;
}

cvs::PeRank ParallelMd::grid_neighbor(cvs::PeRank pe, int dx, int dy) const {
  const auto G = static_cast<int>(g_);
  const int r = (static_cast<int>(pe) / G + dx % G + G) % G;
  const int c = (static_cast<int>(pe) % G + dy % G + G) % G;
  return static_cast<cvs::PeRank>(r * G + c);
}

// ---------------------------------------------------------------------------
// Step phases
// ---------------------------------------------------------------------------

void ParallelMd::exchange_positions(cvs::Pe& pe) {
  Patch& p = *patches_[pe.rank()];
  const std::size_t bytes = p.gid.size() * sizeof(Vec3);
  const std::uint64_t epoch = ++p.halo_epoch;
  for (cvs::PeRank peer : p.halo_peers) {
    // My index in the peer's peer list = its slot for me.
    const Patch& q = *patches_[peer];
    const auto it =
        std::find(q.halo_peers.begin(), q.halo_peers.end(), pe.rank());
    const auto my_idx = static_cast<std::uint32_t>(
        it - q.halo_peers.begin());
    cvs::Message* m =
        pe.alloc_message(sizeof(HaloHeader) + bytes, halo_handler_);
    HaloHeader hdr{my_idx, static_cast<std::uint32_t>(epoch)};
    std::memcpy(m->payload(), &hdr, sizeof(hdr));
    std::memcpy(m->payload() + sizeof(hdr), p.pos.data(), bytes);
    pe.send_message(peer, m);
  }
  // Locals into the combined array while ghosts arrive.
  std::memcpy(p.all_pos.data(), p.pos.data(), bytes);
  // Wait until every peer's watermark reaches this epoch, then install
  // the epoch-parity slab into the working array.
  for (std::size_t i = 0; i < p.halo_peers.size(); ++i) {
    while (p.peer_epoch[i].load() < epoch) {
      if (!pe.pump_one()) std::this_thread::yield();
    }
  }
  const auto& slab = p.ghost_staging[epoch & 1];
  const std::size_t nl = p.gid.size();
  std::memcpy(p.all_pos.data() + nl, slab.data(),
              slab.size() * sizeof(Vec3));
}

void ParallelMd::compute_short_range(cvs::Pe& pe, StepEnergies& e) {
  Patch& p = *patches_[pe.rank()];
  trace::EventRing* ring = pe.trace_ring();
  if (ring) ring->emit({now_ns(), kPhaseCutoff, trace::EventKind::kPhaseBegin});
  const std::size_t nl = p.gid.size();
  p.force.assign(nl, {});

  e.bond = compute_bonds(p.all_pos, p.bonds, sys_.box, p.force);
  e.angle = compute_angles(p.all_pos, p.angles, sys_.box, p.force);

  // Pair lists over locals + ghosts; ghost-ghost pairs are other owners'
  // work; (local, ghost) pairs are one-sided with half energy.
  PairBlock local_pairs, ghost_pairs;
  ghost_pairs.newton = false;
  const double cutoff2 = cfg_.cutoff * cfg_.cutoff;
  CellList cells(p.all_pos, sys_.box, cfg_.cutoff);
  auto excluded = [&](std::uint32_t a, std::uint32_t b) {
    if (a > b) std::swap(a, b);
    return std::binary_search(p.exclusions.begin(), p.exclusions.end(),
                              std::make_pair(a, b));
  };
  cells.for_each_pair([&](std::uint32_t a, std::uint32_t b) {
    const bool al = a < nl, bl = b < nl;
    if (!al && !bl) return;  // ghost-ghost
    const Vec3 d = sys_.min_image(p.all_pos[a], p.all_pos[b]);
    if (d.norm2() > cutoff2) return;
    if (al && bl) {
      if (excluded(a, b)) return;
      local_pairs.add(a, b, lj_.a(p.all_type[a], p.all_type[b]),
                      lj_.b(p.all_type[a], p.all_type[b]));
    } else {
      const std::uint32_t loc = al ? a : b;
      const std::uint32_t gho = al ? b : a;
      ghost_pairs.add(loc, gho, lj_.a(p.all_type[loc], p.all_type[gho]),
                      lj_.b(p.all_type[loc], p.all_type[gho]));
    }
  });

  // Force array sized for locals only; ghost entries (never written in
  // the non-newton block) still need slots for the kernel's indexing.
  std::vector<Vec3> forces(p.all_pos.size());
  auto kernel = cfg_.use_qpx ? compute_nonbonded_qpx
                             : compute_nonbonded_scalar;
  NonbondedEnergy e1 = kernel(p.all_pos, p.all_charge, local_pairs, table_,
                              sys_.box, forces);
  NonbondedEnergy e2 = kernel(p.all_pos, p.all_charge, ghost_pairs, table_,
                              sys_.box, forces);
  e.vdw = e1.vdw + e2.vdw;
  e.elec_real = e1.elec_real + e2.elec_real;
  for (std::size_t i = 0; i < nl; ++i) p.force[i] += forces[i];
  if (ring) ring->emit({now_ns(), kPhaseCutoff, trace::EventKind::kPhaseEnd});
}

void ParallelMd::spread_local(Patch& p, std::size_t rank) {
  const std::size_t K = cfg_.pme_grid;
  std::fill(p.spread_grid.begin(), p.spread_grid.end(), 0.0);
  const double scale = static_cast<double>(K) / sys_.box;
  // Patch origin in grid cells.
  const std::size_t r = rank / g_, c = rank % g_;
  const double ox = static_cast<double>(r * bk_);
  const double oy = static_cast<double>(c * bk_);

  double wx[4], wy[4], wz[4], dummy[4];
  const auto P = static_cast<std::ptrdiff_t>(padded_);
  for (std::size_t a = 0; a < p.gid.size(); ++a) {
    const double ux = p.pos[a].x * scale;
    const double uy = p.pos[a].y * scale;
    const double uz = p.pos[a].z * scale;
    bspline4(ux, wx, dummy);
    bspline4(uy, wy, dummy);
    bspline4(uz, wz, dummy);
    // Patch-relative padded indices; wrap only in z.
    const auto ix = static_cast<std::ptrdiff_t>(std::floor(ux - ox)) +
                    static_cast<std::ptrdiff_t>(kPadLo);
    const auto iy = static_cast<std::ptrdiff_t>(std::floor(uy - oy)) +
                    static_cast<std::ptrdiff_t>(kPadLo);
    const auto iz = static_cast<std::ptrdiff_t>(std::floor(uz));
    if (ix - 3 < 0 || ix >= P || iy - 3 < 0 || iy >= P) {
      throw std::runtime_error(
          "atom drifted beyond the PME spread pad; shorten the run "
          "segment or enlarge pads");
    }
    const auto Kz = static_cast<std::ptrdiff_t>(K);
    const double q = p.charge[a];
    for (int jx = 0; jx < 4; ++jx) {
      const auto gx = static_cast<std::size_t>(ix - jx);
      for (int jy = 0; jy < 4; ++jy) {
        const auto gy = static_cast<std::size_t>(iy - jy);
        const double qxy = q * wx[jx] * wy[jy];
        double* line = &p.spread_grid[(gx * padded_ + gy) * K];
        for (int jz = 0; jz < 4; ++jz) {
          const auto gz =
              static_cast<std::size_t>(((iz - jz) % Kz + Kz) % Kz);
          line[gz] += qxy * wz[jz];
        }
      }
    }
  }
}

void ParallelMd::exchange_charges(cvs::Pe& pe) {
  Patch& p = *patches_[pe.rank()];
  const std::size_t K = cfg_.pme_grid;

  // Own mid region accumulates straight into my FFT pencil.
  auto* pencil = fft_->local_data(pe.rank());
  for (std::size_t i = 0; i < bk_; ++i) {
    for (std::size_t j = 0; j < bk_; ++j) {
      const double* src =
          &p.spread_grid[((i + kPadLo) * padded_ + (j + kPadLo)) * K];
      fft::cplx* dst = pencil + fft_->z_index(i, j, 0);
      for (std::size_t z = 0; z < K; ++z) {
        dst[z] += fft::cplx(src[z], 0.0);
      }
    }
  }

  // Pack the 8 pad regions.
  for (std::size_t r = 0; r < 8; ++r) {
    const Region& reg = regions_[r];
    double* out = p.charge_pack.data() + region_offset(r);
    for (std::size_t i = 0; i < reg.nx; ++i) {
      for (std::size_t j = 0; j < reg.ny; ++j) {
        std::memcpy(out + (i * reg.ny + j) * K,
                    &p.spread_grid[((reg.px0 + i) * padded_ +
                                    (reg.py0 + j)) *
                                   K],
                    K * sizeof(double));
      }
    }
  }

  const std::uint64_t epoch = ++p.pme_epoch;
  if (cfg_.transport == fft::Transport::kM2M) {
    p.charge_handle->start();
    while (!p.charge_handle->recv_done(epoch) ||
           !p.charge_handle->send_done(epoch)) {
      if (!pe.pump_one()) std::this_thread::yield();
    }
  } else {
    for (std::size_t r = 0; r < 8; ++r) {
      const auto bytes =
          regions_[r].nx * regions_[r].ny * K * sizeof(double);
      cvs::Message* m = pe.alloc_message(sizeof(GridHeader) + bytes,
                                         charge_handler_);
      GridHeader hdr{static_cast<std::uint32_t>(mirror(r))};
      std::memcpy(m->payload(), &hdr, sizeof(hdr));
      std::memcpy(m->payload() + sizeof(hdr),
                  p.charge_pack.data() + region_offset(r), bytes);
      pe.send_message(grid_neighbor(pe.rank(), regions_[r].dx,
                                    regions_[r].dy),
                      m);
    }
    while (!p.charges_arrived.reached(epoch * 8)) {
      if (!pe.pump_one()) std::this_thread::yield();
    }
  }

  // Accumulate arrived chunks: my recv slot s carries mirror(s) geometry,
  // landing at that region's (gx0, gy0) in my pencil block.
  for (std::size_t s = 0; s < 8; ++s) {
    const std::size_t ms = mirror(s);
    const Region& reg = regions_[ms];
    const double* in = p.charge_recv.data() + region_offset(ms);
    for (std::size_t i = 0; i < reg.nx; ++i) {
      for (std::size_t j = 0; j < reg.ny; ++j) {
        fft::cplx* dst =
            pencil + fft_->z_index(reg.gx0 + i, reg.gy0 + j, 0);
        const double* src = in + (i * reg.ny + j) * K;
        for (std::size_t z = 0; z < K; ++z) {
          dst[z] += fft::cplx(src[z], 0.0);
        }
      }
    }
  }
}

void ParallelMd::exchange_potentials(cvs::Pe& pe) {
  Patch& p = *patches_[pe.rank()];
  const std::size_t K = cfg_.pme_grid;
  const auto* pencil = fft_->local_data(pe.rank());

  // My own mid region.
  for (std::size_t i = 0; i < bk_; ++i) {
    for (std::size_t j = 0; j < bk_; ++j) {
      double* dst =
          &p.phi_grid[((i + kPadLo) * padded_ + (j + kPadLo)) * K];
      const fft::cplx* src = pencil + fft_->z_index(i, j, 0);
      for (std::size_t z = 0; z < K; ++z) dst[z] = src[z].real();
    }
  }

  // Send each neighbour the chunk that is ITS pad region pointing at me.
  for (std::size_t s = 0; s < 8; ++s) {
    const std::size_t ms = mirror(s);
    const Region& reg = regions_[ms];
    double* out = p.pot_pack.data() + region_offset(ms);
    for (std::size_t i = 0; i < reg.nx; ++i) {
      for (std::size_t j = 0; j < reg.ny; ++j) {
        const fft::cplx* src =
            pencil + fft_->z_index(reg.gx0 + i, reg.gy0 + j, 0);
        double* line = out + (i * reg.ny + j) * K;
        for (std::size_t z = 0; z < K; ++z) line[z] = src[z].real();
      }
    }
  }

  const std::uint64_t epoch = p.pme_epoch;  // same epoch as charges
  if (cfg_.transport == fft::Transport::kM2M) {
    p.pot_handle->start();
    while (!p.pot_handle->recv_done(epoch) ||
           !p.pot_handle->send_done(epoch)) {
      if (!pe.pump_one()) std::this_thread::yield();
    }
  } else {
    for (std::size_t s = 0; s < 8; ++s) {
      const std::size_t ms = mirror(s);
      const auto bytes =
          regions_[ms].nx * regions_[ms].ny * K * sizeof(double);
      cvs::Message* m =
          pe.alloc_message(sizeof(GridHeader) + bytes, pot_handler_);
      GridHeader hdr{static_cast<std::uint32_t>(ms)};
      std::memcpy(m->payload(), &hdr, sizeof(hdr));
      std::memcpy(m->payload() + sizeof(hdr),
                  p.pot_pack.data() + region_offset(ms), bytes);
      pe.send_message(
          grid_neighbor(pe.rank(), -regions_[ms].dx, -regions_[ms].dy), m);
    }
    while (!p.potentials_arrived.reached(epoch * 8)) {
      if (!pe.pump_one()) std::this_thread::yield();
    }
  }

  // Unpack my pad regions.
  for (std::size_t r = 0; r < 8; ++r) {
    const Region& reg = regions_[r];
    const double* in = p.pot_recv.data() + region_offset(r);
    for (std::size_t i = 0; i < reg.nx; ++i) {
      for (std::size_t j = 0; j < reg.ny; ++j) {
        std::memcpy(&p.phi_grid[((reg.px0 + i) * padded_ +
                                 (reg.py0 + j)) *
                                K],
                    in + (i * reg.ny + j) * K, K * sizeof(double));
      }
    }
  }
}

void ParallelMd::interpolate_recip_forces(Patch& p, std::size_t rank) {
  const std::size_t K = cfg_.pme_grid;
  const double scale = static_cast<double>(K) / sys_.box;
  const std::size_t r = rank / g_, c = rank % g_;
  const double ox = static_cast<double>(r * bk_);
  const double oy = static_cast<double>(c * bk_);

  p.recip_force.assign(p.gid.size(), {});
  double wx[4], wy[4], wz[4], dwx[4], dwy[4], dwz[4];
  const auto Kz = static_cast<std::ptrdiff_t>(K);
  for (std::size_t a = 0; a < p.gid.size(); ++a) {
    const double ux = p.pos[a].x * scale;
    const double uy = p.pos[a].y * scale;
    const double uz = p.pos[a].z * scale;
    bspline4(ux, wx, dwx);
    bspline4(uy, wy, dwy);
    bspline4(uz, wz, dwz);
    const auto ix = static_cast<std::ptrdiff_t>(std::floor(ux - ox)) +
                    static_cast<std::ptrdiff_t>(kPadLo);
    const auto iy = static_cast<std::ptrdiff_t>(std::floor(uy - oy)) +
                    static_cast<std::ptrdiff_t>(kPadLo);
    const auto iz = static_cast<std::ptrdiff_t>(std::floor(uz));
    const double q = p.charge[a];
    Vec3 f{};
    for (int jx = 0; jx < 4; ++jx) {
      const auto gx = static_cast<std::size_t>(ix - jx);
      for (int jy = 0; jy < 4; ++jy) {
        const auto gy = static_cast<std::size_t>(iy - jy);
        const double* line = &p.phi_grid[(gx * padded_ + gy) * K];
        for (int jz = 0; jz < 4; ++jz) {
          const auto gz =
              static_cast<std::size_t>(((iz - jz) % Kz + Kz) % Kz);
          const double phi = line[gz];
          f.x -= q * phi * dwx[jx] * wy[jy] * wz[jz] * scale;
          f.y -= q * phi * wx[jx] * dwy[jy] * wz[jz] * scale;
          f.z -= q * phi * wx[jx] * wy[jy] * dwz[jz] * scale;
        }
      }
    }
    p.recip_force[a] += f;
  }
}

void ParallelMd::apply_exclusion_corrections(Patch& p, StepEnergies& e) {
  using std::numbers::pi;
  const double beta = cfg_.beta;
  for (const auto& [a, b] : p.exclusions) {
    const Vec3 d = sys_.min_image(p.pos[a], p.pos[b]);
    const double r2 = d.norm2();
    const double r = std::sqrt(r2);
    const double A = kCoulomb * p.charge[a] * p.charge[b];
    const double erf_term = std::erf(beta * r);
    e.excl_corr += -A * erf_term / r;
    const double fscalar =
        A * ((2.0 * beta / std::sqrt(pi)) * std::exp(-beta * beta * r2) /
                 r2 -
             erf_term / (r2 * r));
    const Vec3 fv = d * fscalar;
    p.recip_force[a] += fv;
    p.recip_force[b] -= fv;
  }
}

void ParallelMd::compute_pme(cvs::Pe& pe, StepEnergies& e) {
  Patch& p = *patches_[pe.rank()];
  trace::EventRing* ring = pe.trace_ring();
  if (ring) ring->emit({now_ns(), kPhasePme, trace::EventKind::kPhaseBegin});
  const std::size_t K = cfg_.pme_grid;

  // Zero my pencil, then spread + exchange charges into it.
  auto* pencil = fft_->local_data(pe.rank());
  std::fill(pencil, pencil + fft_->local_elems(), fft::cplx(0, 0));
  spread_local(p, pe.rank());
  exchange_charges(pe);

  fft_->forward(pe);

  // K-space: I own modes (all mx, my in my row block, mz in my col block).
  const std::size_t r = pe.rank() / g_, c = pe.rank() % g_;
  double energy = 0;
  for (std::size_t by = 0; by < bk_; ++by) {
    for (std::size_t bz = 0; bz < bk_; ++bz) {
      fft::cplx* line = pencil + fft_->x_index(by, bz, 0);
      const std::size_t my = r * bk_ + by, mz = c * bk_ + bz;
      for (std::size_t mx = 0; mx < K; ++mx) {
        const double factor = pme_.kspace_factor(mx, my, mz);
        energy += 0.5 * factor * std::norm(line[mx]);
        line[mx] *= factor;
      }
    }
  }
  e.recip = energy;

  fft_->backward(pe);
  exchange_potentials(pe);
  interpolate_recip_forces(p, pe.rank());
  apply_exclusion_corrections(p, e);
  if (ring) ring->emit({now_ns(), kPhasePme, trace::EventKind::kPhaseEnd});
}

// ---------------------------------------------------------------------------
// Integration
// ---------------------------------------------------------------------------

void ParallelMd::run_steps(cvs::Pe& pe, unsigned nsteps) {
  if (nsteps % cfg_.pme_every != 0) {
    throw std::invalid_argument("nsteps must be a multiple of pme_every");
  }
  Patch& p = *patches_[pe.rank()];
  const double dt = cfg_.dt;
  const unsigned k = cfg_.pme_every;

  auto fast_kick = [&](double h) {
    for (std::size_t i = 0; i < p.gid.size(); ++i) {
      p.vel[i] += p.force[i] * (h * kForceToAccel / p.mass[i]);
    }
  };
  auto slow_kick = [&](double h) {
    for (std::size_t i = 0; i < p.gid.size(); ++i) {
      p.vel[i] += p.recip_force[i] * (h * kForceToAccel / p.mass[i]);
    }
  };
  auto drift = [&] {
    for (std::size_t i = 0; i < p.gid.size(); ++i) {
      p.pos[i] += p.vel[i] * dt;
    }
  };

  if (!p.forces_ready) {
    exchange_positions(pe);
    StepEnergies e0{};
    compute_short_range(pe, e0);
    compute_pme(pe, e0);
    p.forces_ready = true;
  }

  for (unsigned outer = 0; outer < nsteps / k; ++outer) {
    slow_kick(k * dt / 2);
    StepEnergies e{};
    for (unsigned inner = 0; inner < k; ++inner) {
      fast_kick(dt / 2);
      drift();
      exchange_positions(pe);
      e = StepEnergies{};
      compute_short_range(pe, e);
      fast_kick(dt / 2);
    }
    StepEnergies e_pme{};
    compute_pme(pe, e_pme);
    slow_kick(k * dt / 2);

    e.recip = e_pme.recip;
    e.excl_corr = e_pme.excl_corr;
    e.kinetic = kinetic_energy(p.vel, p.mass);
    energy_log_[pe.rank()].push_back(e);
  }
}

StepEnergies ParallelMd::total_energies(std::size_t step) const {
  StepEnergies t{};
  for (const auto& log : energy_log_) {
    const StepEnergies& e = log[step];
    t.bond += e.bond;
    t.angle += e.angle;
    t.vdw += e.vdw;
    t.elec_real += e.elec_real;
    t.excl_corr += e.excl_corr;
    t.recip += e.recip;
    t.kinetic += e.kinetic;
  }
  return t;
}

}  // namespace bgq::md
