#include "md/system.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"

namespace bgq::md {

Vec3 System::min_image(const Vec3& a, const Vec3& b) const {
  Vec3 d = a - b;
  d.x -= box * std::round(d.x / box);
  d.y -= box * std::round(d.y / box);
  d.z -= box * std::round(d.z / box);
  return d;
}

Vec3 System::wrap(Vec3 p) const {
  auto w = [this](double v) {
    v = std::fmod(v, box);
    return v < 0 ? v + box : v;
  };
  return {w(p.x), w(p.y), w(p.z)};
}

double System::total_charge() const {
  double q = 0;
  for (double c : charge) q += c;
  return q;
}

System build_system(const BuildOptions& opt) {
  System sys;
  sys.box = opt.box;

  // Two LJ types: "oxygen-like" heavy sites and "hydrogen-like" light
  // sites (TIP3P-flavoured parameters).
  sys.lj_types.push_back({0.1521, 3.536});   // O: eps, rmin
  sys.lj_types.push_back({0.0460, 0.449});   // H

  const double volume = opt.box * opt.box * opt.box;
  const auto nmol = static_cast<std::size_t>(opt.density * volume / 3.0);
  if (nmol == 0) throw std::invalid_argument("box too small for density");

  // Jittered lattice of molecule centres: condensed-phase spacing without
  // hard overlaps.
  const auto grid =
      static_cast<std::size_t>(std::ceil(std::cbrt(double(nmol))));
  const double spacing = opt.box / static_cast<double>(grid);

  bgq::Xoshiro256 rng(opt.seed);
  const double qO = -0.834, qH = 0.417;
  // Compact arms: at condensed-phase lattice spacing (~3.1 A) full-length
  // O-H arms (0.96 A) from adjacent molecules can overlap below the force
  // table's floor, making the dynamics non-conservative.  0.55 A arms keep
  // the minimum intermolecular contact near 1.5 A while preserving the
  // bonded topology and charge structure the kernels exercise.
  constexpr double kOH = 0.55;

  std::size_t placed = 0;
  for (std::size_t gz = 0; gz < grid && placed < nmol; ++gz) {
    for (std::size_t gy = 0; gy < grid && placed < nmol; ++gy) {
      for (std::size_t gx = 0; gx < grid && placed < nmol; ++gx) {
        const Vec3 centre{(gx + 0.5 + rng.uniform(-0.08, 0.08)) * spacing,
                          (gy + 0.5 + rng.uniform(-0.08, 0.08)) * spacing,
                          (gz + 0.5 + rng.uniform(-0.08, 0.08)) * spacing};
        const auto o = static_cast<std::uint32_t>(sys.pos.size());

        // Random molecular orientation.
        const double phi = rng.uniform(0, 2 * 3.14159265358979);
        const double ct = rng.uniform(-1, 1);
        const double st = std::sqrt(std::max(0.0, 1 - ct * ct));
        const Vec3 d1{st * std::cos(phi), st * std::sin(phi), ct};
        Vec3 d2{-st * std::sin(phi), st * std::cos(phi), -ct * 0.5};
        const double d2n = std::sqrt(d2.norm2());
        d2 = d2 * (1.0 / d2n);

        sys.pos.push_back(sys.wrap(centre));
        sys.pos.push_back(sys.wrap(centre + d1 * kOH));
        sys.pos.push_back(sys.wrap(centre + d2 * kOH));
        sys.charge.insert(sys.charge.end(), {qO, qH, qH});
        sys.mass.insert(sys.mass.end(), {15.9994, 1.008, 1.008});
        sys.type.insert(sys.type.end(), {0, 1, 1});

        if (opt.with_bonds) {
          sys.bonds.push_back({o, o + 1, 450.0, kOH});
          sys.bonds.push_back({o, o + 2, 450.0, kOH});
          // H-O-H harmonic angle at the molecule's built geometry (TIP3P
          // k_theta; theta0 from the actual arm directions so the
          // construction starts at an energy minimum).
          const double cosang =
              d1.dot(d2) / std::sqrt(d1.norm2() * d2.norm2());
          sys.angles.push_back(
              {o + 1, o, o + 2, 55.0, std::acos(cosang)});
          sys.exclusions.emplace_back(o, o + 1);
          sys.exclusions.emplace_back(o, o + 2);
          sys.exclusions.emplace_back(o + 1, o + 2);
        }
        ++placed;
      }
    }
  }

  // Maxwell-Boltzmann velocities at the requested temperature, with the
  // centre-of-mass drift removed.
  sys.vel.resize(sys.natoms());
  Vec3 momentum{};
  double total_mass = 0;
  for (std::size_t i = 0; i < sys.natoms(); ++i) {
    // sigma for each velocity component in A/fs: sqrt(kB T / m), with
    // kForceToAccel converting kcal/mol/amu to A^2/fs^2.
    const double s = std::sqrt(kBoltzmann * opt.temperature *
                               kForceToAccel / sys.mass[i]);
    sys.vel[i] = {s * rng.gaussian(), s * rng.gaussian(),
                  s * rng.gaussian()};
    momentum += sys.vel[i] * sys.mass[i];
    total_mass += sys.mass[i];
  }
  const Vec3 drift = momentum * (1.0 / total_mass);
  for (auto& v : sys.vel) v -= drift;

  std::sort(sys.exclusions.begin(), sys.exclusions.end());
  return sys;
}

System apoa1_like(double scale) {
  // ApoA1: 92,224 atoms, 108.86 x 108.86 x 77.76 A box.  We keep the
  // density and shrink the (cubic) box by cbrt(scale).
  BuildOptions opt;
  const double volume = 108.86 * 108.86 * 77.76 / scale;
  opt.box = std::cbrt(volume);
  opt.density = 92224.0 / (108.86 * 108.86 * 77.76);
  opt.seed = 92224;
  return build_system(opt);
}

System stmv20m_like(double scale) {
  // STMV 20M: ~20e6 atoms; same condensed-phase density.
  BuildOptions opt;
  const double volume = 20.0e6 / 0.1 / scale;
  opt.box = std::cbrt(volume);
  opt.density = 0.1;
  opt.seed = 216;
  return build_system(opt);
}

CellList::CellList(const std::vector<Vec3>& pos, double box, double cutoff) {
  if (cutoff <= 0 || box <= 0) {
    throw std::invalid_argument("cell list needs positive box and cutoff");
  }
  ncell_ = static_cast<int>(box / cutoff);
  // Fewer than 3 cells per dimension makes the forward stencil wrap onto
  // itself (double counting); fall back to one all-pairs cell.
  if (ncell_ < 3) ncell_ = 1;
  cells_.assign(static_cast<std::size_t>(ncell_) * ncell_ * ncell_, {});
  const double inv = ncell_ / box;
  for (std::uint32_t i = 0; i < pos.size(); ++i) {
    auto clamp = [this](int c) { return std::min(std::max(c, 0), ncell_ - 1); };
    const int cx = clamp(static_cast<int>(pos[i].x * inv));
    const int cy = clamp(static_cast<int>(pos[i].y * inv));
    const int cz = clamp(static_cast<int>(pos[i].z * inv));
    cells_[cell_index(cx, cy, cz)].push_back(i);
  }
}

}  // namespace bgq::md
