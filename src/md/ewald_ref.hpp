// Naive Ewald summation — the O(N^2 + N K^3) reference that validates the
// PME implementation (tests compare energies and forces).
#pragma once

#include <vector>

#include "md/system.hpp"

namespace bgq::md {

struct EwaldResult {
  double e_real = 0;   ///< erfc-screened real-space sum (all pairs, min image)
  double e_recip = 0;  ///< reciprocal-space sum
  double e_self = 0;   ///< self-energy correction (negative)
  std::vector<Vec3> f_real;
  std::vector<Vec3> f_recip;

  double total() const { return e_real + e_recip + e_self; }
};

/// Direct Ewald sum.  `kmax`: reciprocal vectors with |m_i| <= kmax.
/// Real-space part uses minimum image only, so beta*box/2 must make the
/// erfc tail negligible.
EwaldResult ewald_reference(const System& sys, double beta, int kmax);

}  // namespace bgq::md
