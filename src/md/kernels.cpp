#include "md/kernels.hpp"

#include <algorithm>
#include <cmath>

#include "qpx/qpx.hpp"

namespace bgq::md {

LjPairTable::LjPairTable(const std::vector<LjType>& types)
    : n_(types.size()), a_(n_ * n_), b_(n_ * n_) {
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      const double eps = std::sqrt(types[i].epsilon * types[j].epsilon);
      const double rm = 0.5 * (types[i].rmin + types[j].rmin);
      const double rm6 = rm * rm * rm * rm * rm * rm;
      a_[i * n_ + j] = eps * rm6 * rm6;
      b_[i * n_ + j] = 2.0 * eps * rm6;
    }
  }
}

PairBlock build_pairs(
    const std::vector<Vec3>& pos, const std::vector<std::uint16_t>& type,
    const LjPairTable& lj, double box, double cutoff,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& exclusions) {
  PairBlock block;
  const double cutoff2 = cutoff * cutoff;
  CellList cells(pos, box, cutoff);
  auto excluded = [&](std::uint32_t a, std::uint32_t b) {
    if (a > b) std::swap(a, b);
    return std::binary_search(exclusions.begin(), exclusions.end(),
                              std::make_pair(a, b));
  };
  auto min_image = [box](double d) {
    return d - box * std::round(d / box);
  };
  cells.for_each_pair([&](std::uint32_t a, std::uint32_t b) {
    const double dx = min_image(pos[a].x - pos[b].x);
    const double dy = min_image(pos[a].y - pos[b].y);
    const double dz = min_image(pos[a].z - pos[b].z);
    if (dx * dx + dy * dy + dz * dz > cutoff2) return;
    if (excluded(a, b)) return;
    block.add(a, b, lj.a(type[a], type[b]), lj.b(type[a], type[b]));
  });
  return block;
}

NonbondedEnergy compute_nonbonded_scalar(const std::vector<Vec3>& pos,
                                         const std::vector<double>& charge,
                                         const PairBlock& pairs,
                                         const ForceTable& table, double box,
                                         std::vector<Vec3>& force) {
  NonbondedEnergy e;
  const double cutoff2 = table.cutoff2();
  const double escale = pairs.newton ? 1.0 : 0.5;
  ForceTable::Terms t;
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    const std::uint32_t i = pairs.i[p], j = pairs.j[p];
    Vec3 d = pos[i] - pos[j];
    d.x -= box * std::round(d.x / box);
    d.y -= box * std::round(d.y / box);
    d.z -= box * std::round(d.z / box);
    const double r2 = d.norm2();
    if (r2 > cutoff2) continue;
    table.lookup(r2, t);
    const double qq = kCoulomb * charge[i] * charge[j];
    const double a = pairs.lj_a[p], b = pairs.lj_b[p];
    e.vdw += escale * (a * t.u_vdwA - b * t.u_vdwB);
    e.elec_real += escale * qq * t.u_elec;
    const double f = a * t.f_vdwA - b * t.f_vdwB + qq * t.f_elec;
    const Vec3 fv = d * f;
    force[i] += fv;
    if (pairs.newton) force[j] -= fv;
  }
  return e;
}

NonbondedEnergy compute_nonbonded_qpx(const std::vector<Vec3>& pos,
                                      const std::vector<double>& charge,
                                      const PairBlock& pairs,
                                      const ForceTable& table, double box,
                                      std::vector<Vec3>& force) {
  using namespace bgq::qpx;
  NonbondedEnergy e;
  const double cutoff2 = table.cutoff2();
  const double escale = pairs.newton ? 1.0 : 0.5;

  const std::size_t n = pairs.size();
  const std::size_t n4 = n / 4 * 4;

  v4d e_vdw_acc = vec_splats(0.0);
  v4d e_elec_acc = vec_splats(0.0);
  const v4d vbox = vec_splats(box);
  const v4d vinv_box = vec_splats(1.0 / box);

  for (std::size_t p = 0; p < n4; p += 4) {
    // Gather the four pairs' displacement components (QPX lfd x4).
    alignas(32) double dx[4], dy[4], dz[4], qq[4], la[4], lb[4];
    for (int l = 0; l < 4; ++l) {
      const std::uint32_t i = pairs.i[p + l], j = pairs.j[p + l];
      dx[l] = pos[i].x - pos[j].x;
      dy[l] = pos[i].y - pos[j].y;
      dz[l] = pos[i].z - pos[j].z;
      qq[l] = kCoulomb * charge[i] * charge[j];
      la[l] = pairs.lj_a[p + l];
      lb[l] = pairs.lj_b[p + l];
    }
    // Minimum image: d -= box * round(d / box).  QPX rounds with
    // vec_round; the emulation keeps the lanewise form.
    auto minimg = [&](v4d d) {
      v4d t = vec_mul(d, vinv_box);
      for (int l = 0; l < 4; ++l) t.v[l] = std::round(t.v[l]);
      return vec_nmsub(t, vbox, d);
    };
    const v4d vdx = minimg(vec_ld(dx));
    const v4d vdy = minimg(vec_ld(dy));
    const v4d vdz = minimg(vec_ld(dz));
    const v4d r2 =
        vec_madd(vdz, vdz, vec_madd(vdy, vdy, vec_mul(vdx, vdx)));

    // Table bins (integer lanes stay scalar on QPX too).
    int bin[4];
    double frac[4];
    bool in_range[4];
    const double r2min = table.r2_min(), inv_step = table.inv_step();
    const auto bins = static_cast<int>(table.bins());
    for (int l = 0; l < 4; ++l) {
      in_range[l] = r2.v[l] <= cutoff2;
      double x = (r2.v[l] - r2min) * inv_step;
      if (x < 0) x = 0;
      int k = static_cast<int>(x);
      if (k >= bins) k = bins - 1;
      bin[l] = k;
      frac[l] = x - k;
    }
    int bin1[4] = {bin[0] + 1, bin[1] + 1, bin[2] + 1, bin[3] + 1};

    // Issue all gathered loads up front — the load-to-use-distance
    // scheduling the paper tuned with the XL compiler.
    const v4d fA0 = vec_gather(table.f_vdwA(), bin);
    const v4d fA1 = vec_gather(table.f_vdwA(), bin1);
    const v4d fB0 = vec_gather(table.f_vdwB(), bin);
    const v4d fB1 = vec_gather(table.f_vdwB(), bin1);
    const v4d fE0 = vec_gather(table.f_elec(), bin);
    const v4d fE1 = vec_gather(table.f_elec(), bin1);
    const v4d uA0 = vec_gather(table.u_vdwA(), bin);
    const v4d uA1 = vec_gather(table.u_vdwA(), bin1);
    const v4d uB0 = vec_gather(table.u_vdwB(), bin);
    const v4d uB1 = vec_gather(table.u_vdwB(), bin1);
    const v4d uE0 = vec_gather(table.u_elec(), bin);
    const v4d uE1 = vec_gather(table.u_elec(), bin1);

    const v4d vfrac = vec_ld(frac);
    auto lerp = [&](const v4d& t0, const v4d& t1) {
      return vec_madd(vfrac, vec_sub(t1, t0), t0);
    };
    const v4d va = vec_ld(la), vb = vec_ld(lb), vqq = vec_ld(qq);

    // Cutoff mask: lanes beyond the cutoff contribute zero.
    v4d mask = vec_splats(1.0);
    for (int l = 0; l < 4; ++l) mask.v[l] = in_range[l] ? 1.0 : 0.0;

    const v4d u_vdw = vec_mul(
        mask, vec_msub(va, lerp(uA0, uA1), vec_mul(vb, lerp(uB0, uB1))));
    const v4d u_elec = vec_mul(mask, vec_mul(vqq, lerp(uE0, uE1)));
    e_vdw_acc = vec_add(e_vdw_acc, u_vdw);
    e_elec_acc = vec_add(e_elec_acc, u_elec);

    const v4d f = vec_mul(
        mask,
        vec_madd(vqq, lerp(fE0, fE1),
                 vec_msub(va, lerp(fA0, fA1),
                          vec_mul(vb, lerp(fB0, fB1)))));

    const v4d fx = vec_mul(f, vdx);
    const v4d fy = vec_mul(f, vdy);
    const v4d fz = vec_mul(f, vdz);
    // Force scatter stays scalar (write conflicts), as in the real code.
    for (int l = 0; l < 4; ++l) {
      const std::uint32_t i = pairs.i[p + l], j = pairs.j[p + l];
      force[i].x += fx.v[l];
      force[i].y += fy.v[l];
      force[i].z += fz.v[l];
      if (pairs.newton) {
        force[j].x -= fx.v[l];
        force[j].y -= fy.v[l];
        force[j].z -= fz.v[l];
      }
    }
  }
  e.vdw = escale * vec_reduce_add(e_vdw_acc);
  e.elec_real = escale * vec_reduce_add(e_elec_acc);

  // Scalar remainder (< 4 pairs).
  if (n4 < n) {
    PairBlock tail;
    tail.newton = pairs.newton;
    for (std::size_t p = n4; p < n; ++p) {
      tail.add(pairs.i[p], pairs.j[p], pairs.lj_a[p], pairs.lj_b[p]);
    }
    const NonbondedEnergy te = compute_nonbonded_scalar(
        pos, charge, tail, table, box, force);
    e.vdw += te.vdw;
    e.elec_real += te.elec_real;
  }
  return e;
}

double compute_bonds(const std::vector<Vec3>& pos,
                     const std::vector<Bond>& bonds, double box,
                     std::vector<Vec3>& force) {
  double energy = 0;
  for (const Bond& b : bonds) {
    Vec3 d = pos[b.i] - pos[b.j];
    d.x -= box * std::round(d.x / box);
    d.y -= box * std::round(d.y / box);
    d.z -= box * std::round(d.z / box);
    const double r = std::sqrt(d.norm2());
    const double dr = r - b.r0;
    energy += b.k * dr * dr;
    // F_i = -dU/dr * r_hat = -2k dr / r * d
    const double f = -2.0 * b.k * dr / r;
    const Vec3 fv = d * f;
    force[b.i] += fv;
    force[b.j] -= fv;
  }
  return energy;
}

double compute_angles(const std::vector<Vec3>& pos,
                      const std::vector<Angle>& angles, double box,
                      std::vector<Vec3>& force) {
  auto min_image = [box](Vec3 d) {
    d.x -= box * std::round(d.x / box);
    d.y -= box * std::round(d.y / box);
    d.z -= box * std::round(d.z / box);
    return d;
  };
  double energy = 0;
  for (const Angle& a : angles) {
    // r_ij = i - j (centre j), r_kj = k - j.
    const Vec3 rij = min_image(pos[a.i] - pos[a.j]);
    const Vec3 rkj = min_image(pos[a.k] - pos[a.j]);
    const double lij2 = rij.norm2(), lkj2 = rkj.norm2();
    const double lij = std::sqrt(lij2), lkj = std::sqrt(lkj2);
    double c = rij.dot(rkj) / (lij * lkj);
    c = std::min(1.0, std::max(-1.0, c));
    const double theta = std::acos(c);
    const double dtheta = theta - a.theta0;
    energy += a.k_theta * dtheta * dtheta;

    // F_i = -dU/dr_i with dtheta/dc = -1/sin(theta):
    // F_i = (2 k dtheta / sin) * (rkj/(lij*lkj) - c*rij/lij^2), etc.
    const double s = std::sqrt(std::max(1e-12, 1.0 - c * c));
    const double coef = 2.0 * a.k_theta * dtheta / s;
    const Vec3 fi = (rkj * (1.0 / (lij * lkj)) - rij * (c / lij2)) * coef;
    const Vec3 fk = (rij * (1.0 / (lij * lkj)) - rkj * (c / lkj2)) * coef;
    force[a.i] += fi;
    force[a.k] += fk;
    force[a.j] -= fi + fk;
  }
  return energy;
}

double kinetic_energy(const std::vector<Vec3>& vel,
                      const std::vector<double>& mass) {
  double ke = 0;
  for (std::size_t i = 0; i < vel.size(); ++i) {
    ke += 0.5 * mass[i] * vel[i].norm2();
  }
  return ke / kForceToAccel;  // amu*(A/fs)^2 -> kcal/mol
}

}  // namespace bgq::md
