// Nonbonded and bonded force kernels (§IV-B.1).
//
// Two interchangeable nonbonded implementations over the same pair lists
// and interpolation table:
//   * compute_nonbonded_scalar — the reference loop;
//   * compute_nonbonded_qpx    — the paper's QPX vectorization: four pairs
//     per iteration, gathered table loads issued early (the "increase the
//     load-to-use distance" optimization), FMA accumulation.
// bench_qpx_kernels compares them; tests require identical results.
#pragma once

#include <cstdint>
#include <vector>

#include "md/system.hpp"
#include "md/tables.hpp"

namespace bgq::md {

/// A batch of interacting pairs with precomputed LJ coefficients.
/// `newton == true`: i<j local pairs — force applied to both, full energy.
/// `newton == false`: (local, ghost) pairs — force applied to i only and
/// half energy counted (the other owner computes the mirror pair).
struct PairBlock {
  std::vector<std::uint32_t> i, j;
  std::vector<double> lj_a, lj_b;  ///< A = eps*rm^12, B = 2*eps*rm^6
  bool newton = true;

  std::size_t size() const noexcept { return i.size(); }
  void add(std::uint32_t a, std::uint32_t b, double lj_a_v, double lj_b_v) {
    i.push_back(a);
    j.push_back(b);
    lj_a.push_back(lj_a_v);
    lj_b.push_back(lj_b_v);
  }
};

/// Combined Lorentz-Berthelot LJ coefficients for a type pair.
struct LjPairTable {
  explicit LjPairTable(const std::vector<LjType>& types);
  double a(std::uint16_t ti, std::uint16_t tj) const {
    return a_[ti * n_ + tj];
  }
  double b(std::uint16_t ti, std::uint16_t tj) const {
    return b_[ti * n_ + tj];
  }

 private:
  std::size_t n_;
  std::vector<double> a_, b_;
};

/// Build the i<j pair block for one atom set with exclusions applied
/// (cell-list candidates filtered by the cutoff).
PairBlock build_pairs(
    const std::vector<Vec3>& pos, const std::vector<std::uint16_t>& type,
    const LjPairTable& lj, double box, double cutoff,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& exclusions);

struct NonbondedEnergy {
  double vdw = 0;        ///< kcal/mol
  double elec_real = 0;  ///< kcal/mol (erfc-screened real-space part)
};

/// Reference scalar kernel.  Positions/charges indexed by the pair block;
/// forces accumulated (not zeroed).  `box` for minimum image.
NonbondedEnergy compute_nonbonded_scalar(const std::vector<Vec3>& pos,
                                         const std::vector<double>& charge,
                                         const PairBlock& pairs,
                                         const ForceTable& table, double box,
                                         std::vector<Vec3>& force);

/// QPX-vectorized kernel; bit-compatible results are not guaranteed (sum
/// order differs) but agreement is to ~1e-12 relative.
NonbondedEnergy compute_nonbonded_qpx(const std::vector<Vec3>& pos,
                                      const std::vector<double>& charge,
                                      const PairBlock& pairs,
                                      const ForceTable& table, double box,
                                      std::vector<Vec3>& force);

/// Harmonic bonds: returns bond energy, accumulates forces.
double compute_bonds(const std::vector<Vec3>& pos,
                     const std::vector<Bond>& bonds, double box,
                     std::vector<Vec3>& force);

/// Harmonic angles: returns angle energy, accumulates forces.
double compute_angles(const std::vector<Vec3>& pos,
                      const std::vector<Angle>& angles, double box,
                      std::vector<Vec3>& force);

/// Kinetic energy (kcal/mol) of the given velocities.
double kinetic_energy(const std::vector<Vec3>& vel,
                      const std::vector<double>& mass);

}  // namespace bgq::md
