// Serial smooth Particle-Mesh Ewald (Essmann et al.) — the reference PME
// whose reciprocal energy/forces the parallel implementation must match,
// and the validation target against the naive Ewald sum.
//
// 4th-order (cubic) B-spline charge assignment, 3-D FFT via the in-repo
// mixed-radix kernel, k-space convolution with B-spline deconvolution.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "fft/fft1d.hpp"
#include "md/system.hpp"

namespace bgq::md {

/// Order-4 cardinal B-spline weights and derivatives for fractional
/// position u in grid units.  w[j] multiplies grid point floor(u) - j
/// (j = 0..3); dw is d(w)/du.
void bspline4(double u, double w[4], double dw[4]);

class PmeSerial {
 public:
  /// `grid`: points per dimension (2,3,5-smooth).  `beta`: Ewald split.
  PmeSerial(std::size_t grid, double beta, double box);

  std::size_t grid() const noexcept { return k_; }
  double beta() const noexcept { return beta_; }

  struct Result {
    double e_recip = 0;
    std::vector<Vec3> force;
  };

  /// Full reciprocal-space computation for the given charges/positions.
  Result compute(const std::vector<Vec3>& pos,
                 const std::vector<double>& charge);

  /// Self-energy correction matching this beta.
  double self_energy(const std::vector<double>& charge) const;

  // ---- exposed stages (the parallel PME reuses these) -------------------

  /// Stage 1: spread charges onto the (zeroed) K^3 grid, layout
  /// q[(gx*K + gy)*K + gz].
  void spread(const std::vector<Vec3>& pos,
              const std::vector<double>& charge,
              std::vector<double>& grid_q) const;

  /// Stage 3: multiply the forward-transformed grid (same layout, complex)
  /// by the Ewald/deconvolution kernel in place; returns reciprocal
  /// energy.  `transform` layout: t[(mx*K + my)*K + mz].
  double kspace_multiply(std::vector<std::complex<double>>& t) const;

  /// The k-space factor for one mode (exposed for the distributed PME,
  /// which owns only a pencil of modes).  Includes volume and Coulomb
  /// constants; zero for the excluded modes.
  double kspace_factor(std::size_t mx, std::size_t my,
                       std::size_t mz) const;

  /// Stage 5: interpolate forces from the real-space potential grid.
  void interpolate_forces(const std::vector<Vec3>& pos,
                          const std::vector<double>& charge,
                          const std::vector<double>& phi,
                          std::vector<Vec3>& force) const;

 private:
  std::size_t k_;
  double beta_;
  double box_;
  std::vector<double> bsp_mod_;  ///< |b(m)|^-2 denominator per dimension
  fft::Fft1D plan_;
};

}  // namespace bgq::md
