// Parallel mini-NAMD driver (§IV-B): spatial decomposition over the
// Converse runtime, cutoff nonbonded + bonded forces, and a distributed
// smooth-PME long-range solver with the paper's two communication
// strategies (point-to-point messages vs persistent many-to-many).
//
// Decomposition: PEs form a G x G grid over (x, y); each PE owns the
// molecules whose first atom sits in its column of the box (all z).  The
// same G x G grid owns the PME charge-grid pencils, so the PME charge /
// potential exchanges are the 8-neighbour boundary transfers NAMD's PME
// performs, and the 3-D FFT is the in-repo Pencil3DFFT.
//
// Multiple timestepping (the paper's "PME every 4 steps") follows the
// impulse scheme: reciprocal forces are applied on PME steps scaled by
// pme_every.
//
// Simplifications vs full NAMD, documented in DESIGN.md: no atom
// migration between patches during a run segment (runs are short), bond
// and angle terms but no dihedrals, single charge grid (which matches the
// paper's *optimized* PME).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "converse/machine.hpp"
#include "fft/pencil3d.hpp"
#include "l2atomic/completion.hpp"
#include "l2atomic/l2_atomic.hpp"
#include "m2m/manytomany.hpp"
#include "md/kernels.hpp"
#include "md/pme_serial.hpp"
#include "md/system.hpp"
#include "md/tables.hpp"

namespace bgq::md {

struct MdConfig {
  double cutoff = 10.0;        ///< A (ApoA1 runs used 12)
  double switch_dist = 8.5;
  double beta = 0.34;          ///< Ewald splitting parameter
  std::size_t pme_grid = 32;   ///< K, divisible by G, 2,3,5-smooth
  unsigned pme_every = 4;      ///< MTS interval (1 = every step)
  double dt = 1.0;             ///< fs
  fft::Transport transport = fft::Transport::kP2P;
  bool use_qpx = true;         ///< nonbonded kernel selection
  std::uint32_t m2m_tag_base = 200;  ///< tags for PME grid exchanges
};

/// Phase tags carried in the kPhaseBegin/kPhaseEnd trace events the MD
/// driver emits to each PE's ring (MachineConfig::trace_events) — the
/// Fig. 9/10 time-profile source.  Recover spans with
/// trace::extract_spans(track, EventKind::kPhaseBegin).
inline constexpr std::uint32_t kPhaseCutoff = 0;  ///< cutoff + integration
inline constexpr std::uint32_t kPhasePme = 1;     ///< PME work

/// Per-step energy ledger (per PE; sum across PEs for totals).
struct StepEnergies {
  double bond = 0;
  double angle = 0;
  double vdw = 0;
  double elec_real = 0;
  double excl_corr = 0;  ///< reciprocal-space exclusion correction
  double recip = 0;      ///< this PE's share of the PME energy
  double kinetic = 0;

  double potential() const {
    return bond + angle + vdw + elec_real + excl_corr + recip;
  }
  double total() const { return potential() + kinetic; }
};

class ParallelMd {
 public:
  /// Construct before Machine::run().  `coord` is required (both PME
  /// transports register many-to-many handles only in kM2M mode, but the
  /// coordinator also provides the p2p handler space).
  ParallelMd(cvs::Machine& machine, m2m::Coordinator* coord, System sys,
             MdConfig cfg);

  /// Collective: every PE runs `nsteps` velocity-Verlet steps.
  void run_steps(cvs::Pe& pe, unsigned nsteps);

  /// Per-PE energy ledger for step s of the last run (indexed from 0).
  const StepEnergies& energies(cvs::PeRank pe, std::size_t step) const {
    return energy_log_[pe][step];
  }
  std::size_t steps_logged() const {
    return energy_log_.empty() ? 0 : energy_log_[0].size();
  }

  /// Sum of a step's ledger over all PEs (call after run()).
  StepEnergies total_energies(std::size_t step) const;

  const MdConfig& config() const noexcept { return cfg_; }
  std::size_t local_atoms(cvs::PeRank pe) const {
    return patches_[pe]->gid.size();
  }

  /// Self energy constant (added once to reported electrostatics).
  double self_energy() const { return self_energy_; }

 private:
  struct Patch;

  // Step phases.
  void exchange_positions(cvs::Pe& pe);
  void compute_short_range(cvs::Pe& pe, StepEnergies& e);
  void compute_pme(cvs::Pe& pe, StepEnergies& e);
  void spread_local(Patch& p, std::size_t rank);
  void exchange_charges(cvs::Pe& pe);
  void exchange_potentials(cvs::Pe& pe);
  void interpolate_recip_forces(Patch& p, std::size_t rank);
  void apply_exclusion_corrections(Patch& p, StepEnergies& e);

  // Grid-exchange helpers.
  struct Region {
    int dx, dy;                  ///< neighbour offset
    std::size_t px0, py0;        ///< origin in my padded grid
    std::size_t nx, ny;          ///< extent (z extent is always K)
    std::size_t gx0, gy0;        ///< origin in the neighbour's pencil block
  };
  void build_regions();
  cvs::PeRank grid_neighbor(cvs::PeRank pe, int dx, int dy) const;

  cvs::Machine& machine_;
  m2m::Coordinator* coord_;
  MdConfig cfg_;
  System sys_;  // global system (reference copy; patches hold the state)

  std::size_t g_ = 0;       ///< PE grid dimension
  std::size_t bk_ = 0;      ///< PME pencil block (K / G)
  double patch_w_ = 0;      ///< box / G

  // Padded spread grid geometry: x,y in [-kPadLo, B + kPadHi).
  static constexpr std::size_t kPadLo = 5;
  static constexpr std::size_t kPadHi = 3;
  std::size_t padded_ = 0;  ///< bk_ + kPadLo + kPadHi

  ForceTable table_;
  LjPairTable lj_;
  PmeSerial pme_;  // reused for weights/kspace factors
  std::unique_ptr<fft::Pencil3DFFT> fft_;
  double self_energy_ = 0;

  std::vector<Region> regions_;

  struct Patch {
    // Owned atoms (global ids + state).
    std::vector<std::uint32_t> gid;
    std::vector<Vec3> pos, vel, force;
    std::vector<double> charge, mass;
    std::vector<std::uint16_t> type;
    std::vector<Bond> bonds;          ///< re-indexed to local ids
    std::vector<Angle> angles;        ///< re-indexed to local ids
    std::vector<std::pair<std::uint32_t, std::uint32_t>> exclusions;

    // Ghosts (appended to pos/charge/type when computing).
    std::vector<cvs::PeRank> halo_peers;
    std::vector<std::uint32_t> ghost_gid;
    std::vector<Vec3> all_pos;        ///< locals + ghosts
    std::vector<double> all_charge;
    std::vector<std::uint16_t> all_type;
    std::vector<std::size_t> ghost_offset;  ///< per peer, into ghosts
    std::vector<std::size_t> ghost_count;   ///< per peer

    // Halo staging: a fast peer may send step e+1 before we consumed its
    // step-e positions, so arrivals land in an epoch-parity slab and are
    // copied into all_pos only once every peer's watermark reaches the
    // epoch being waited on (peer skew is bounded by 2, so two slabs
    // suffice).
    std::vector<Vec3> ghost_staging[2];
    std::unique_ptr<l2::AtomicWord[]> peer_epoch;  ///< per-peer watermark
    std::uint64_t halo_epoch = 0;

    // PME state.
    std::vector<double> spread_grid;  ///< padded^2 * K
    std::vector<double> phi_grid;     ///< padded^2 * K
    l2::CompletionCounter charges_arrived;
    l2::CompletionCounter potentials_arrived;
    std::uint64_t pme_epoch = 0;
    std::vector<double> charge_pack;  ///< per-region staging, charge send
    std::vector<double> charge_recv;
    std::vector<double> pot_pack;
    std::vector<double> pot_recv;
    m2m::Handle* charge_handle = nullptr;
    m2m::Handle* pot_handle = nullptr;

    std::vector<Vec3> recip_force;

    bool forces_ready = false;
  };

  cvs::HandlerId halo_handler_ = 0;
  cvs::HandlerId charge_handler_ = 0;
  cvs::HandlerId pot_handler_ = 0;

  std::vector<std::unique_ptr<Patch>> patches_;
  std::vector<std::vector<StepEnergies>> energy_log_;

  std::size_t region_offset(std::size_t r) const;
};

}  // namespace bgq::md
