#include "md/pme_serial.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace bgq::md {

using std::numbers::pi;
using cplx = std::complex<double>;

namespace {

/// Cardinal B-spline M4(t) on [0,4) and its derivative.
inline void m4(double t, double& v, double& d) {
  if (t < 1.0) {
    v = t * t * t / 6.0;
    d = t * t / 2.0;
  } else if (t < 2.0) {
    v = (-3 * t * t * t + 12 * t * t - 12 * t + 4) / 6.0;
    d = (-9 * t * t + 24 * t - 12) / 6.0;
  } else if (t < 3.0) {
    v = (3 * t * t * t - 24 * t * t + 60 * t - 44) / 6.0;
    d = (9 * t * t - 48 * t + 60) / 6.0;
  } else {
    const double s = 4.0 - t;
    v = s * s * s / 6.0;
    d = -s * s / 2.0;
  }
}

}  // namespace

void bspline4(double u, double w[4], double dw[4]) {
  const double f = u - std::floor(u);
  for (int j = 0; j < 4; ++j) m4(f + j, w[j], dw[j]);
}

PmeSerial::PmeSerial(std::size_t grid, double beta, double box)
    : k_(grid), beta_(beta), box_(box), plan_(grid) {
  if (!fft::Fft1D::smooth(grid) || grid < 4) {
    throw std::invalid_argument("PME grid must be 2,3,5-smooth and >= 4");
  }
  // |b(m)|^2 per dimension: b(m) = e^{2 pi i (n-1) m / K} / sum_{j=0}^{n-2}
  // M4(j+1) e^{2 pi i m j / K}; store its squared modulus.
  bsp_mod_.resize(k_);
  const double m4_vals[3] = {1.0 / 6.0, 2.0 / 3.0, 1.0 / 6.0};
  for (std::size_t m = 0; m < k_; ++m) {
    cplx denom(0, 0);
    for (int j = 0; j < 3; ++j) {
      const double ang = 2.0 * pi * static_cast<double>(m) * j /
                         static_cast<double>(k_);
      denom += m4_vals[j] * cplx(std::cos(ang), std::sin(ang));
    }
    const double n2 = std::norm(denom);
    // Even-order splines cannot represent the Nyquist mode; kill it.
    bsp_mod_[m] = n2 < 1e-10 ? 0.0 : 1.0 / n2;
  }
}

double PmeSerial::self_energy(const std::vector<double>& charge) const {
  double q2 = 0;
  for (double q : charge) q2 += q * q;
  return -kCoulomb * beta_ / std::sqrt(pi) * q2;
}

void PmeSerial::spread(const std::vector<Vec3>& pos,
                       const std::vector<double>& charge,
                       std::vector<double>& grid_q) const {
  const auto K = static_cast<std::ptrdiff_t>(k_);
  grid_q.assign(k_ * k_ * k_, 0.0);
  const double scale = static_cast<double>(k_) / box_;
  double wx[4], wy[4], wz[4], dummy[4];
  for (std::size_t a = 0; a < pos.size(); ++a) {
    const double ux = pos[a].x * scale;
    const double uy = pos[a].y * scale;
    const double uz = pos[a].z * scale;
    bspline4(ux, wx, dummy);
    bspline4(uy, wy, dummy);
    bspline4(uz, wz, dummy);
    const auto ix = static_cast<std::ptrdiff_t>(std::floor(ux));
    const auto iy = static_cast<std::ptrdiff_t>(std::floor(uy));
    const auto iz = static_cast<std::ptrdiff_t>(std::floor(uz));
    const double q = charge[a];
    for (int jx = 0; jx < 4; ++jx) {
      const std::size_t gx = static_cast<std::size_t>(
          ((ix - jx) % K + K) % K);
      for (int jy = 0; jy < 4; ++jy) {
        const std::size_t gy = static_cast<std::size_t>(
            ((iy - jy) % K + K) % K);
        const double qxy = q * wx[jx] * wy[jy];
        for (int jz = 0; jz < 4; ++jz) {
          const std::size_t gz = static_cast<std::size_t>(
              ((iz - jz) % K + K) % K);
          grid_q[(gx * k_ + gy) * k_ + gz] += qxy * wz[jz];
        }
      }
    }
  }
}

double PmeSerial::kspace_factor(std::size_t mx, std::size_t my,
                                std::size_t mz) const {
  if (mx == 0 && my == 0 && mz == 0) return 0.0;
  auto fold = [this](std::size_t m) {
    return m <= k_ / 2 ? static_cast<double>(m)
                       : static_cast<double>(m) - static_cast<double>(k_);
  };
  const double gx = 2.0 * pi * fold(mx) / box_;
  const double gy = 2.0 * pi * fold(my) / box_;
  const double gz = 2.0 * pi * fold(mz) / box_;
  const double k2 = gx * gx + gy * gy + gz * gz;
  const double volume = box_ * box_ * box_;
  const double b = bsp_mod_[mx] * bsp_mod_[my] * bsp_mod_[mz];
  return kCoulomb / volume * 4.0 * pi / k2 *
         std::exp(-k2 / (4.0 * beta_ * beta_)) * b;
}

double PmeSerial::kspace_multiply(std::vector<cplx>& t) const {
  double energy = 0;
  for (std::size_t mx = 0; mx < k_; ++mx) {
    for (std::size_t my = 0; my < k_; ++my) {
      for (std::size_t mz = 0; mz < k_; ++mz) {
        const std::size_t idx = (mx * k_ + my) * k_ + mz;
        const double factor = kspace_factor(mx, my, mz);
        energy += 0.5 * factor * std::norm(t[idx]);
        t[idx] *= factor;
      }
    }
  }
  return energy;
}

void PmeSerial::interpolate_forces(const std::vector<Vec3>& pos,
                                   const std::vector<double>& charge,
                                   const std::vector<double>& phi,
                                   std::vector<Vec3>& force) const {
  const auto K = static_cast<std::ptrdiff_t>(k_);
  const double scale = static_cast<double>(k_) / box_;
  double wx[4], wy[4], wz[4], dwx[4], dwy[4], dwz[4];
  for (std::size_t a = 0; a < pos.size(); ++a) {
    bspline4(pos[a].x * scale, wx, dwx);
    bspline4(pos[a].y * scale, wy, dwy);
    bspline4(pos[a].z * scale, wz, dwz);
    const auto ix =
        static_cast<std::ptrdiff_t>(std::floor(pos[a].x * scale));
    const auto iy =
        static_cast<std::ptrdiff_t>(std::floor(pos[a].y * scale));
    const auto iz =
        static_cast<std::ptrdiff_t>(std::floor(pos[a].z * scale));
    const double q = charge[a];
    Vec3 f{};
    for (int jx = 0; jx < 4; ++jx) {
      const std::size_t gx =
          static_cast<std::size_t>(((ix - jx) % K + K) % K);
      for (int jy = 0; jy < 4; ++jy) {
        const std::size_t gy =
            static_cast<std::size_t>(((iy - jy) % K + K) % K);
        for (int jz = 0; jz < 4; ++jz) {
          const std::size_t gz =
              static_cast<std::size_t>(((iz - jz) % K + K) % K);
          const double p = phi[(gx * k_ + gy) * k_ + gz];
          f.x -= q * p * dwx[jx] * wy[jy] * wz[jz] * scale;
          f.y -= q * p * wx[jx] * dwy[jy] * wz[jz] * scale;
          f.z -= q * p * wx[jx] * wy[jy] * dwz[jz] * scale;
        }
      }
    }
    force[a] += f;
  }
}

PmeSerial::Result PmeSerial::compute(const std::vector<Vec3>& pos,
                                     const std::vector<double>& charge) {
  Result out;
  out.force.assign(pos.size(), {});

  std::vector<double> grid_q;
  spread(pos, charge, grid_q);

  std::vector<cplx> t(grid_q.begin(), grid_q.end());
  // Forward 3-D DFT: z lines are contiguous; y and x via gather/scatter.
  const std::size_t K = k_;
  for (std::size_t x = 0; x < K; ++x)
    for (std::size_t y = 0; y < K; ++y) plan_.forward(&t[(x * K + y) * K]);
  std::vector<cplx> line(K);
  for (std::size_t x = 0; x < K; ++x)
    for (std::size_t z = 0; z < K; ++z) {
      for (std::size_t y = 0; y < K; ++y) line[y] = t[(x * K + y) * K + z];
      plan_.forward(line.data());
      for (std::size_t y = 0; y < K; ++y) t[(x * K + y) * K + z] = line[y];
    }
  for (std::size_t y = 0; y < K; ++y)
    for (std::size_t z = 0; z < K; ++z) {
      for (std::size_t x = 0; x < K; ++x) line[x] = t[(x * K + y) * K + z];
      plan_.forward(line.data());
      for (std::size_t x = 0; x < K; ++x) t[(x * K + y) * K + z] = line[x];
    }

  out.e_recip = kspace_multiply(t);

  // Unscaled inverse transform back to the potential grid.
  for (std::size_t x = 0; x < K; ++x)
    for (std::size_t y = 0; y < K; ++y) plan_.backward(&t[(x * K + y) * K]);
  for (std::size_t x = 0; x < K; ++x)
    for (std::size_t z = 0; z < K; ++z) {
      for (std::size_t y = 0; y < K; ++y) line[y] = t[(x * K + y) * K + z];
      plan_.backward(line.data());
      for (std::size_t y = 0; y < K; ++y) t[(x * K + y) * K + z] = line[y];
    }
  for (std::size_t y = 0; y < K; ++y)
    for (std::size_t z = 0; z < K; ++z) {
      for (std::size_t x = 0; x < K; ++x) line[x] = t[(x * K + y) * K + z];
      plan_.backward(line.data());
      for (std::size_t x = 0; x < K; ++x) t[(x * K + y) * K + z] = line[x];
    }

  std::vector<double> phi(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) phi[i] = t[i].real();
  interpolate_forces(pos, charge, phi, out.force);
  return out;
}

}  // namespace bgq::md
