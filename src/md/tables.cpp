#include "md/tables.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace bgq::md {

ForceTable::ForceTable(double cutoff, double beta, double switch_dist,
                       std::size_t bins)
    : cutoff_(cutoff), beta_(beta), switch_dist_(switch_dist), bins_(bins) {
  if (cutoff <= 0 || switch_dist <= 0 || switch_dist >= cutoff) {
    throw std::invalid_argument("need 0 < switch_dist < cutoff");
  }
  if (bins < 16) throw std::invalid_argument("table too coarse");

  r2_min_ = 1.0;  // below 1 A the table clamps (excluded/unphysical range)
  const double r2_max = cutoff * cutoff;
  const double step = (r2_max - r2_min_) / static_cast<double>(bins);
  inv_step_ = 1.0 / step;

  const double rc2 = cutoff * cutoff;
  const double rs2 = switch_dist * switch_dist;
  const double denom = (rc2 - rs2) * (rc2 - rs2) * (rc2 - rs2);

  f_vdwA_.resize(bins + 1);
  f_vdwB_.resize(bins + 1);
  f_elec_.resize(bins + 1);
  u_vdwA_.resize(bins + 1);
  u_vdwB_.resize(bins + 1);
  u_elec_.resize(bins + 1);

  for (std::size_t k = 0; k <= bins; ++k) {
    const double r2 = r2_min_ + step * static_cast<double>(k);
    const double r = std::sqrt(r2);

    // NAMD switching function S(r^2) and dS/d(r^2).
    double s = 1.0, ds = 0.0;
    if (r2 > rs2) {
      const double a = rc2 - r2;
      s = a * a * (rc2 + 2 * r2 - 3 * rs2) / denom;
      ds = 6.0 * a * (rs2 - r2) / denom;
    }

    const double inv_r2 = 1.0 / r2;
    const double inv_r6 = inv_r2 * inv_r2 * inv_r2;
    const double inv_r12 = inv_r6 * inv_r6;

    u_vdwA_[k] = s * inv_r12;
    u_vdwB_[k] = s * inv_r6;
    // F = -dU/dr / r = -2 dU/d(r^2); U = S * g.
    f_vdwA_[k] = 12.0 * s * inv_r12 * inv_r2 - 2.0 * ds * inv_r12;
    f_vdwB_[k] = 6.0 * s * inv_r6 * inv_r2 - 2.0 * ds * inv_r6;

    const double br = beta * r;
    const double erfc_term = std::erfc(br);
    u_elec_[k] = erfc_term / r;
    f_elec_[k] = erfc_term / (r2 * r) +
                 (2.0 * beta / std::sqrt(std::numbers::pi)) *
                     std::exp(-br * br) * inv_r2;
  }
}

}  // namespace bgq::md
