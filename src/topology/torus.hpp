// N-dimensional torus topology (BG/Q 5D, BG/P 3D) — §II-A.
//
// Provides coordinates <-> rank mapping, dimension-ordered (e-cube) routing,
// wraparound hop distances and link enumeration.  Used both by the
// functional in-process fabric (src/net) to delay packets per-hop and by
// the discrete-event machine models (src/model) for scale-out runs.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace bgq::topo {

/// Node rank within a partition.
using NodeId = std::uint32_t;

/// Up to 6 torus dimensions (5 network + padding); BG/Q uses 5 (A..E).
inline constexpr int kMaxDims = 6;
using Coord = std::array<int, kMaxDims>;

/// A directed link (node, dimension, direction).
struct Link {
  NodeId from;
  int dim;
  int dir;  ///< +1 or -1
};

/// An N-dimensional torus.
class Torus {
 public:
  /// dims must be non-empty; every extent >= 1.  An extent of 1 or 2 has
  /// no distinct +/- wrap (matching real BG/Q sub-tori).
  explicit Torus(std::vector<int> dims);

  int ndims() const noexcept { return static_cast<int>(dims_.size()); }
  const std::vector<int>& dims() const noexcept { return dims_; }
  std::size_t node_count() const noexcept { return nodes_; }

  NodeId rank_of(const Coord& c) const noexcept;
  Coord coord_of(NodeId r) const noexcept;

  /// Signed minimal displacement along `dim` from a to b (wraparound).
  int delta(int dim, int a, int b) const noexcept;

  /// Minimal hop count between two ranks.
  int hops(NodeId a, NodeId b) const noexcept;

  /// Dimension-ordered route a -> b, as the sequence of intermediate node
  /// ranks including b, excluding a.  Empty when a == b.
  std::vector<NodeId> route(NodeId a, NodeId b) const;

  /// Rank of the neighbour of r one step along dim in direction dir.
  NodeId neighbor(NodeId r, int dim, int dir) const noexcept;

  /// Network diameter (max hops between any pair).
  int diameter() const noexcept;

  /// Average hop distance from a node to all others (uniform traffic).
  double average_hops() const noexcept;

  /// Number of unidirectional links crossing the bisection of the longest
  /// dimension — the standard bisection measure for tori.
  std::size_t bisection_links() const noexcept;

  /// Total number of unidirectional links in the torus.
  std::size_t total_links() const noexcept;

  // ---- Standard machine partitions -------------------------------------

  /// The 5D shapes real BG/Q partitions use for power-of-two node counts
  /// (E dimension fixed at 2, as on hardware).  Falls back to a balanced
  /// factorization for non-standard counts.
  static Torus bgq_partition(std::size_t nodes);

  /// 3D torus shapes for BG/P partitions (Fig. 11 baseline).
  static Torus bgp_partition(std::size_t nodes);

 private:
  std::vector<int> dims_;
  std::vector<std::size_t> strides_;
  std::size_t nodes_;
};

}  // namespace bgq::topo
