// Topology-aware placement (paper §VII future work).
//
// "On larger BG/Q configurations we expect topological placement will
//  improve performance and we plan to explore that as well."
//
// The FFT/PME pencil grids and the NAMD patch grid are logical 2-D/3-D
// meshes of communicating ranks; this module maps such meshes onto torus
// nodes and scores mappings by the average hop distance between logical
// neighbours (the transpose partners / halo partners that actually talk).
#pragma once

#include <cstddef>
#include <vector>

#include "topology/torus.hpp"

namespace bgq::topo {

enum class Placement {
  kLinear,  ///< rank r*G2+c -> torus node of the same index (oblivious)
  kFolded,  ///< embed (r, c) into the torus dims by mixed-radix folding
};

/// Map a logical g1 x g2 grid onto `torus` nodes (g1*g2 <= node count).
/// Returns node id per logical rank (row-major).
std::vector<NodeId> map_grid(const Torus& torus, std::size_t g1,
                             std::size_t g2, Placement placement);

/// Mean torus hop distance between logical row neighbours and column
/// neighbours under a mapping — the cost proxy for transpose phases.
struct NeighborHops {
  double row_mean = 0;  ///< (r, c) <-> (r, c+1 mod g2)
  double col_mean = 0;  ///< (r, c) <-> (r+1 mod g1, c)
  double overall() const { return 0.5 * (row_mean + col_mean); }
};
NeighborHops neighbor_hops(const Torus& torus,
                           const std::vector<NodeId>& map, std::size_t g1,
                           std::size_t g2);

}  // namespace bgq::topo
