#include "topology/torus.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace bgq::topo {

Torus::Torus(std::vector<int> dims) : dims_(std::move(dims)) {
  if (dims_.empty() || dims_.size() > kMaxDims) {
    throw std::invalid_argument("torus needs 1..6 dimensions");
  }
  nodes_ = 1;
  strides_.resize(dims_.size());
  // Row-major: last dimension varies fastest (E on BG/Q).
  for (int d = ndims() - 1; d >= 0; --d) {
    if (dims_[d] < 1) throw std::invalid_argument("extent must be >= 1");
    strides_[d] = nodes_;
    nodes_ *= static_cast<std::size_t>(dims_[d]);
  }
}

NodeId Torus::rank_of(const Coord& c) const noexcept {
  std::size_t r = 0;
  for (int d = 0; d < ndims(); ++d) {
    r += static_cast<std::size_t>(c[d]) * strides_[d];
  }
  return static_cast<NodeId>(r);
}

Coord Torus::coord_of(NodeId r) const noexcept {
  Coord c{};
  std::size_t rem = r;
  for (int d = 0; d < ndims(); ++d) {
    c[d] = static_cast<int>(rem / strides_[d]);
    rem %= strides_[d];
  }
  return c;
}

int Torus::delta(int dim, int a, int b) const noexcept {
  const int n = dims_[dim];
  int fwd = b - a;
  if (fwd < 0) fwd += n;
  const int bwd = fwd - n;  // negative
  return fwd <= -bwd ? fwd : bwd;
}

int Torus::hops(NodeId a, NodeId b) const noexcept {
  const Coord ca = coord_of(a), cb = coord_of(b);
  int h = 0;
  for (int d = 0; d < ndims(); ++d) h += std::abs(delta(d, ca[d], cb[d]));
  return h;
}

std::vector<NodeId> Torus::route(NodeId a, NodeId b) const {
  std::vector<NodeId> path;
  Coord cur = coord_of(a);
  const Coord dst = coord_of(b);
  for (int d = 0; d < ndims(); ++d) {
    int dd = delta(d, cur[d], dst[d]);
    const int step = dd > 0 ? 1 : -1;
    while (dd != 0) {
      cur[d] = (cur[d] + step + dims_[d]) % dims_[d];
      path.push_back(rank_of(cur));
      dd -= step;
    }
  }
  return path;
}

NodeId Torus::neighbor(NodeId r, int dim, int dir) const noexcept {
  Coord c = coord_of(r);
  c[dim] = (c[dim] + dir + dims_[dim]) % dims_[dim];
  return rank_of(c);
}

int Torus::diameter() const noexcept {
  int d = 0;
  for (int i = 0; i < ndims(); ++i) d += dims_[i] / 2;
  return d;
}

double Torus::average_hops() const noexcept {
  // Dimensions are independent, so the mean hop count is the sum of the
  // per-dimension mean wrap distances.
  double total = 0.0;
  for (int i = 0; i < ndims(); ++i) {
    const int n = dims_[i];
    double s = 0.0;
    for (int k = 0; k < n; ++k) s += std::min(k, n - k);
    total += s / n;
  }
  return total;
}

std::size_t Torus::bisection_links() const noexcept {
  // Cut the longest dimension in half: nodes/longest planes on each side,
  // each plane contributing 2 wrap directions x (extent>2 ? 2 : 1) cuts.
  const auto longest =
      std::max_element(dims_.begin(), dims_.end()) - dims_.begin();
  const int n = dims_[longest];
  const std::size_t plane = nodes_ / static_cast<std::size_t>(n);
  const std::size_t cuts = n > 2 ? 2 : 1;  // torus wrap doubles the cut
  return plane * cuts * 2;                 // unidirectional links
}

std::size_t Torus::total_links() const noexcept {
  std::size_t links = 0;
  for (int d = 0; d < ndims(); ++d) {
    if (dims_[d] == 1) continue;
    const std::size_t dirs = dims_[d] == 2 ? 1 : 2;
    links += nodes_ * dirs;
  }
  return links;
}

namespace {

/// Balanced factorization of `nodes` into `nd` extents (descending),
/// with an optional fixed last extent.
std::vector<int> balanced_dims(std::size_t nodes, int nd, int fixed_last) {
  std::vector<int> dims(static_cast<std::size_t>(nd), 1);
  std::size_t rem = nodes;
  if (fixed_last > 0) {
    if (nodes % static_cast<std::size_t>(fixed_last) == 0) {
      dims[static_cast<std::size_t>(nd) - 1] = fixed_last;
      rem /= static_cast<std::size_t>(fixed_last);
      --nd;
    }
  }
  // Repeatedly peel the smallest prime factor onto the smallest extent.
  while (rem > 1) {
    std::size_t f = 2;
    while (rem % f != 0) ++f;
    auto it = std::min_element(dims.begin(), dims.begin() + nd);
    *it = static_cast<int>(static_cast<std::size_t>(*it) * f);
    rem /= f;
  }
  std::sort(dims.begin(), dims.begin() + nd, std::greater<int>());
  return dims;
}

}  // namespace

Torus Torus::bgq_partition(std::size_t nodes) {
  // Shapes of real BG/Q partitions (A B C D E), E fixed at 2.
  switch (nodes) {
    case 32: return Torus({2, 2, 2, 2, 2});
    case 64: return Torus({4, 2, 2, 2, 2});
    case 128: return Torus({4, 4, 2, 2, 2});
    case 256: return Torus({4, 4, 4, 2, 2});
    case 512: return Torus({4, 4, 4, 4, 2});   // one midplane
    case 1024: return Torus({4, 4, 4, 8, 2});  // one rack
    case 2048: return Torus({8, 4, 4, 8, 2});
    case 4096: return Torus({8, 8, 4, 8, 2});
    case 8192: return Torus({8, 8, 8, 8, 2});
    case 16384: return Torus({8, 8, 8, 16, 2});
    default: return Torus(balanced_dims(nodes, 5, nodes % 2 == 0 ? 2 : 0));
  }
}

Torus Torus::bgp_partition(std::size_t nodes) {
  switch (nodes) {
    case 32: return Torus({4, 4, 2});
    case 64: return Torus({4, 4, 4});
    case 128: return Torus({8, 4, 4});
    case 256: return Torus({8, 8, 4});
    case 512: return Torus({8, 8, 8});
    case 1024: return Torus({16, 8, 8});
    case 2048: return Torus({16, 16, 8});
    case 4096: return Torus({16, 16, 16});
    case 8192: return Torus({32, 16, 16});
    case 16384: return Torus({32, 32, 16});
    default: return Torus(balanced_dims(nodes, 3, 0));
  }
}

}  // namespace bgq::topo
