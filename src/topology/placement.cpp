#include "topology/placement.hpp"

#include <stdexcept>

namespace bgq::topo {

namespace {

/// Split the torus dimensions into two groups whose extents multiply to
/// at least (g1, g2): row coordinates advance through the first group,
/// column coordinates through the second.  This keeps logical rows and
/// columns inside low-diameter sub-tori instead of striding across the
/// whole machine the way linear rank order does.
std::vector<NodeId> folded_map(const Torus& torus, std::size_t g1,
                               std::size_t g2) {
  const auto& dims = torus.dims();
  // Greedily take leading dimensions for the row group until their
  // product covers g1.
  std::size_t row_cap = 1;
  int split = 0;
  while (split < torus.ndims() - 1 && row_cap < g1) {
    row_cap *= static_cast<std::size_t>(dims[split]);
    ++split;
  }
  std::size_t col_cap = 1;
  for (int d = split; d < torus.ndims(); ++d) {
    col_cap *= static_cast<std::size_t>(dims[d]);
  }
  if (row_cap < g1 || col_cap < g2) {
    // Shapes don't factor cleanly; fall back to linear.
    std::vector<NodeId> map(g1 * g2);
    for (std::size_t i = 0; i < map.size(); ++i) {
      map[i] = static_cast<NodeId>(i);
    }
    return map;
  }

  std::vector<NodeId> map(g1 * g2);
  for (std::size_t r = 0; r < g1; ++r) {
    for (std::size_t c = 0; c < g2; ++c) {
      Coord coord{};
      // Mixed-radix expansion of r over the row dims, c over the rest.
      std::size_t rem = r;
      for (int d = 0; d < split; ++d) {
        coord[d] = static_cast<int>(rem % dims[d]);
        rem /= dims[d];
      }
      rem = c;
      for (int d = split; d < torus.ndims(); ++d) {
        coord[d] = static_cast<int>(rem % dims[d]);
        rem /= dims[d];
      }
      map[r * g2 + c] = torus.rank_of(coord);
    }
  }
  return map;
}

}  // namespace

std::vector<NodeId> map_grid(const Torus& torus, std::size_t g1,
                             std::size_t g2, Placement placement) {
  if (g1 * g2 > torus.node_count()) {
    throw std::invalid_argument("grid larger than the torus");
  }
  switch (placement) {
    case Placement::kLinear: {
      std::vector<NodeId> map(g1 * g2);
      for (std::size_t i = 0; i < map.size(); ++i) {
        map[i] = static_cast<NodeId>(i);
      }
      return map;
    }
    case Placement::kFolded:
      return folded_map(torus, g1, g2);
  }
  return {};
}

NeighborHops neighbor_hops(const Torus& torus,
                           const std::vector<NodeId>& map, std::size_t g1,
                           std::size_t g2) {
  NeighborHops out;
  double rows = 0, cols = 0;
  for (std::size_t r = 0; r < g1; ++r) {
    for (std::size_t c = 0; c < g2; ++c) {
      rows += torus.hops(map[r * g2 + c], map[r * g2 + (c + 1) % g2]);
      cols += torus.hops(map[r * g2 + c], map[((r + 1) % g1) * g2 + c]);
    }
  }
  const double n = static_cast<double>(g1 * g2);
  out.row_mean = rows / n;
  out.col_mean = cols / n;
  return out;
}

}  // namespace bgq::topo
