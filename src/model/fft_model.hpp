// Scale-out model of the pencil-decomposed 3-D FFT (Table I).
//
// Replays the communication/computation structure of the Charm++ FFT
// library (the same structure as src/fft's Pencil3DFFT) on the simulated
// torus: P = G^2 pencil owners, four transpose phases per
// forward+backward step, G messages of (N/G)^3 complex numbers per node
// per phase, with per-message software costs from RuntimeParams and link
// contention from sim::PhaseNetwork.
#pragma once

#include <cstddef>

#include "model/params.hpp"
#include "sim/phase_network.hpp"
#include "topology/torus.hpp"

namespace bgq::model {

struct FftResult {
  double step_us = 0;      ///< forward + backward wall time
  double compute_us = 0;   ///< per-node 1-D FFT compute (serialized share)
  double comm_cpu_us = 0;  ///< per-node software messaging cost
  double network_us = 0;   ///< network residency of the slowest phase
};

/// Options for one Table-I cell.
struct FftRun {
  std::size_t n = 128;        ///< grid edge (N^3 total)
  std::size_t nodes = 64;     ///< torus nodes (one pencil owner per node)
  bool use_m2m = false;       ///< CmiDirectManytomany vs point-to-point
  RuntimeParams runtime{};
  MachineModel machine = MachineModel::bgq();
  /// Worker threads doing FFT compute per node.
  unsigned workers = 16;
};

/// Simulate one forward+backward complex-to-complex 3-D FFT.
FftResult simulate_fft(const FftRun& run);

}  // namespace bgq::model
