// Scale-out NAMD step-time model (Figs. 7, 8, 11, 12; Table II).
//
// Replays the per-step structure of NAMD on the machine model: patch
// position multicasts and force reductions (cutoff phase, every step),
// bonded/nonbonded/integration compute, and the PME long-range phase
// (charge-grid exchange + pencil FFT + potential return) every
// `pme_every` steps, with the FFT itself costed by simulate_fft.  The
// absolute constants are calibrated to the paper's reported points (see
// EXPERIMENTS.md); the *shape* — which configuration wins where, how m2m
// and comm threads move the crossovers — emerges from the structure.
#pragma once

#include <cstddef>
#include <string>

#include "model/fft_model.hpp"
#include "model/params.hpp"

namespace bgq::model {

struct NamdSystem {
  std::string name;
  double natoms = 0;
  std::size_t grid_x = 0, grid_y = 0, grid_z = 0;  ///< PME grid
  double cutoff = 12.0;
  unsigned pme_every = 4;
  unsigned nonbonded_every = 1;  ///< STMV runs do nonbonded every 2 steps
  double atoms_per_patch = 640;  ///< NAMD 2-away patch size at rc = 12

  static NamdSystem apoa1();     ///< 92,224 atoms, 108x108x80 grid
  static NamdSystem stmv20m();   ///< 20 M atoms, 216x1080x864 grid
  static NamdSystem stmv100m();  ///< 100 M atoms, 1080x1080x864 grid
};

struct NamdRun {
  NamdSystem system = NamdSystem::apoa1();
  std::size_t nodes = 512;
  unsigned workers = 48;  ///< worker threads per node
  bool m2m_pme = false;   ///< optimized PME via CmiDirectManytomany
  RuntimeParams runtime{};
  MachineModel machine = MachineModel::bgq();
};

struct NamdStep {
  double compute_us = 0;
  double cutoff_comm_us = 0;  ///< software + network, cutoff phase
  double pme_us = 0;          ///< amortized per step
  double total_us = 0;
};

NamdStep simulate_namd_step(const NamdRun& run);

}  // namespace bgq::model
