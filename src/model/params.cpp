#include "model/params.hpp"

namespace bgq::model {

MachineModel MachineModel::bgq() { return MachineModel{}; }

MachineModel MachineModel::bgp() {
  MachineModel m;
  m.net = net::bgp_network_params();
  m.cores = 4;
  m.max_threads_per_core = 1;
  m.smt_speedup[0] = 1.0;
  m.smt_speedup[1] = 1.0;
  m.smt_speedup[2] = 1.0;
  m.smt_speedup[3] = 1.0;
  // 850 MHz PPC450 vs 1.6 GHz A2 with QPX-capable pipelines: roughly a
  // third of the per-thread arithmetic throughput on these kernels.
  m.pair_cost_us = 0.021 * 3.0;
  m.atom_cost_us = 0.012 * 3.0;
  m.fft_point_cost_us = 0.004 * 3.0;
  m.qpx_speedup = 1.0;  // no QPX on BG/P (double hummer ignored)
  return m;
}

}  // namespace bgq::model
