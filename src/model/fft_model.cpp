#include "model/fft_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace bgq::model {

namespace {

/// Balanced factorization nodes = g1 * g2 with g1 >= g2, both powers of
/// the node count's factors (Table I uses power-of-two node counts).
void pencil_grid(std::size_t nodes, std::size_t& g1, std::size_t& g2) {
  g1 = 1;
  g2 = 1;
  std::size_t rem = nodes;
  bool to_g1 = true;
  while (rem > 1) {
    std::size_t f = 2;
    while (rem % f != 0) ++f;
    (to_g1 ? g1 : g2) *= f;
    to_g1 = !to_g1;
    rem /= f;
  }
  if (g2 > g1) std::swap(g1, g2);
}

struct Msg {
  sim::Time inj;
  topo::NodeId src, dst;
  std::size_t bytes;
};

}  // namespace

FftResult simulate_fft(const FftRun& run) {
  const std::size_t N = run.n;
  std::size_t g1 = 0, g2 = 0;
  pencil_grid(run.nodes, g1, g2);
  // The pencil grid must divide the FFT grid; shrink to the nearest
  // divisors (the leftover nodes idle during the FFT, exactly as NAMD's
  // PME uses a subset of the machine for grid pencils).
  while (g1 > 1 && N % g1 != 0) --g1;
  while (g2 > 1 && N % g2 != 0) --g2;
  const std::size_t active = g1 * g2;
  if (active == 0 || N % g1 != 0 || N % g2 != 0) {
    throw std::invalid_argument("grid must divide by the pencil grid");
  }

  const topo::Torus torus = topo::Torus::bgq_partition(run.nodes);
  sim::PhaseNetwork net(torus, run.machine.net);
  const RuntimeParams& rt = run.runtime;

  // Per-node messaging CPU: workers inject in p2p mode; comm threads
  // inject in m2m mode (several in parallel).
  const unsigned injectors =
      run.use_m2m ? std::max(1u, rt.comm_threads) : 1u;
  std::vector<std::vector<sim::Server>> cpu(active);
  for (auto& v : cpu) v.resize(injectors);

  // One 1-D FFT pass over the node-local data (N^3 / active points).
  const double pass_us = static_cast<double>(N) * N * N /
                         static_cast<double>(active) *
                         std::log2(static_cast<double>(N)) *
                         run.machine.fft_point_cost_us /
                         run.machine.node_throughput(run.workers);

  std::vector<sim::Time> ready(active, 0.0);
  double total_comm_cpu = 0;
  double network_max = 0;

  // Phases: row exchange, column exchange (forward), column, row (back).
  // A compute pass precedes each phase and one follows the last.
  const bool phase_is_row[4] = {true, false, false, true};

  for (int phase = 0; phase < 4; ++phase) {
    for (auto& r : ready) r += pass_us;  // FFT pass before the exchange

    // Bulk-synchronous phase boundary: the next pass on any node needs
    // blocks from every peer, and peers' sends depend on their own pass.
    const sim::Time start = *std::max_element(ready.begin(), ready.end());

    const std::size_t peers = phase_is_row[phase] ? g2 : g1;
    const std::size_t bytes_total =
        N * N * N / active * 16;  // complex<double>
    const std::size_t msg_bytes = bytes_total / peers;

    std::vector<Msg> msgs;
    msgs.reserve(active * peers);
    std::vector<sim::Time> inj_done(active, start);

    for (std::size_t node = 0; node < active; ++node) {
      const std::size_t r = node / g2, c = node % g2;
      sim::Time burst_ready = start;
      if (run.use_m2m) burst_ready += rt.m2m_burst_setup;

      for (std::size_t i = 0; i < peers; ++i) {
        const std::size_t peer_node =
            phase_is_row[phase] ? r * g2 + i : i * g2 + c;
        if (peer_node == node) continue;
        const double send_cost =
            run.use_m2m ? rt.m2m_per_message : rt.worker_send_cost();
        sim::Server& inj_cpu = cpu[node][i % injectors];
        const sim::Time inj = inj_cpu.submit(burst_ready, send_cost);
        msgs.push_back({inj, static_cast<topo::NodeId>(node),
                        static_cast<topo::NodeId>(peer_node), msg_bytes});
        total_comm_cpu += send_cost;
        inj_done[node] = std::max(inj_done[node], inj);
      }
      // In comm-thread p2p mode the comm threads also pay their share.
      if (!run.use_m2m && rt.mode == Mode::kSmpCommThreads) {
        const double ct_cost = rt.commthread_send_cost() *
                               static_cast<double>(peers - 1) /
                               std::max(1u, rt.comm_threads);
        inj_done[node] += ct_cost;
        total_comm_cpu += ct_cost;
      }
    }

    // Network delivery in injection order (FCFS per link).
    std::sort(msgs.begin(), msgs.end(),
              [](const Msg& a, const Msg& b) { return a.inj < b.inj; });
    std::vector<sim::Time> recv_done(active, start);
    for (const Msg& m : msgs) {
      const sim::Time arr = net.deliver(m.inj, m.src, m.dst, m.bytes);
      const double recv_cost =
          run.use_m2m
              ? rt.m2m_per_message
              : rt.poll_recv_cost() + rt.worker_sched_cost();
      sim::Server& rcpu = cpu[m.dst][m.src % injectors];
      const sim::Time done = rcpu.submit(arr, recv_cost);
      recv_done[m.dst] = std::max(recv_done[m.dst], done);
      total_comm_cpu += recv_cost;
      network_max = std::max(network_max, arr - m.inj);
    }

    for (std::size_t node = 0; node < active; ++node) {
      ready[node] = std::max(inj_done[node], recv_done[node]);
    }
  }

  // Final compute passes (one per direction's last axis).
  for (auto& r : ready) r += 2 * pass_us;

  FftResult out;
  out.step_us = *std::max_element(ready.begin(), ready.end());
  out.compute_us = 6 * pass_us;
  out.comm_cpu_us = total_comm_cpu / static_cast<double>(active);
  out.network_us = network_max;
  return out;
}

}  // namespace bgq::model
