#include "model/namd_model.hpp"

#include <algorithm>
#include <cmath>

namespace bgq::model {

NamdSystem NamdSystem::apoa1() {
  NamdSystem s;
  s.name = "ApoA1";
  s.natoms = 92224;
  s.grid_x = 108;
  s.grid_y = 108;
  s.grid_z = 80;
  s.pme_every = 4;
  return s;
}

NamdSystem NamdSystem::stmv20m() {
  NamdSystem s;
  s.name = "STMV-20M";
  s.natoms = 20e6;
  s.grid_x = 216;
  s.grid_y = 1080;
  s.grid_z = 864;
  s.pme_every = 4;
  s.nonbonded_every = 2;
  return s;
}

NamdSystem NamdSystem::stmv100m() {
  NamdSystem s;
  s.name = "STMV-100M";
  s.natoms = 100e6;
  s.grid_x = 1080;
  s.grid_y = 1080;
  s.grid_z = 864;
  s.pme_every = 4;
  s.nonbonded_every = 2;
  return s;
}

namespace {

bool smooth235(std::size_t n) {
  for (std::size_t f : {std::size_t{2}, std::size_t{3}, std::size_t{5}}) {
    while (n % f == 0) n /= f;
  }
  return n == 1;
}

/// Nearest 2,3,5-smooth size (PME grids are smooth; the cube-equivalent
/// edge must be too, or the pencil grid fractures).
std::size_t nearest_smooth(std::size_t n) {
  for (std::size_t d = 0; d <= n; ++d) {
    if (smooth235(n - d)) return n - d;
    if (smooth235(n + d)) return n + d;
  }
  return 4;
}

/// One-way short-message latency for the mode (paper Fig. 4 anchor).
double one_way_latency(const RuntimeParams& rt, const MachineModel& m) {
  return rt.worker_send_cost() + rt.commthread_send_cost() +
         rt.poll_recv_cost() + rt.worker_sched_cost() +
         m.net.base_latency_ns * 1e-3;
}

}  // namespace

NamdStep simulate_namd_step(const NamdRun& run) {
  const NamdSystem& sys = run.system;
  const RuntimeParams& rt = run.runtime;
  const MachineModel& mach = run.machine;
  const double nodes = static_cast<double>(run.nodes);

  NamdStep out;

  // ---- compute -----------------------------------------------------------
  // Half-shell pair count per atom at condensed-phase density.
  const double density = 0.1;
  const double pairs_per_atom =
      0.5 * density * 4.0 / 3.0 * 3.14159265358979 * sys.cutoff *
      sys.cutoff * sys.cutoff;
  const double atoms_per_node = sys.natoms / nodes;
  const double per_node_work_us =
      atoms_per_node *
      (pairs_per_atom * mach.pair_cost_us / mach.qpx_speedup /
           sys.nonbonded_every +
       mach.atom_cost_us);
  out.compute_us = per_node_work_us / mach.node_throughput(run.workers);

  // ---- cutoff-phase communication ----------------------------------------
  const double patches = sys.natoms / sys.atoms_per_patch;
  // Position multicasts + force reductions: ~26 neighbour transfers per
  // patch; with more nodes than patches the computes are split and the
  // per-node message count floors at the proxy fan-in/out.
  //
  // Non-SMP runs one process per hardware thread: every patch proxy is
  // per-process, intra-node traffic loses the pointer-exchange path, and
  // each single-threaded process services its own messages — this is the
  // §III argument for SMP mode.  The effective endpoint count is
  // processes, not nodes.
  const double endpoints =
      rt.mode == Mode::kNonSmp ? nodes * run.workers : nodes;
  const double msgs_per_endpoint =
      std::max(rt.mode == Mode::kNonSmp ? 14.0 : 30.0,
               26.0 * 2.0 * patches / endpoints);
  const double msgs_per_node =
      msgs_per_endpoint * (endpoints / nodes);
  const double bytes_per_msg =
      std::min(sys.natoms / endpoints, sys.atoms_per_patch) * 48.0 * 0.5;

  const topo::Torus torus = topo::Torus::bgq_partition(run.nodes);
  const double avg_hops = torus.average_hops();

  // Worker-side software cost; with comm threads the heavy part runs on
  // the C comm threads in parallel.
  const unsigned ct = std::max(1u, rt.comm_threads);
  double sw_cpu = 0;
  if (rt.mode == Mode::kSmpCommThreads) {
    sw_cpu = msgs_per_node * rt.worker_send_cost() +
             msgs_per_node *
                 (rt.commthread_send_cost() + rt.poll_recv_cost()) / ct +
             msgs_per_node * rt.worker_sched_cost() /
                 std::max(1u, run.workers);
  } else if (rt.mode == Mode::kNonSmp) {
    // Each process's single thread services its own messages; the node's
    // critical path is one process's share, not the node aggregate.
    sw_cpu = msgs_per_endpoint * (rt.worker_send_cost() +
                                  rt.poll_recv_cost() +
                                  rt.worker_sched_cost());
  } else {
    sw_cpu = msgs_per_node *
             (rt.worker_send_cost() + rt.poll_recv_cost() +
              rt.worker_sched_cost()) /
             std::max(1u, run.workers);
  }

  // Network: per-node halo volume over the node's 10 torus links, plus a
  // dependency chain of multicast/reduction hops on the critical path.
  const double halo_bytes = msgs_per_node * bytes_per_msg;
  const double bw_node_us =
      halo_bytes / (10.0 * mach.net.link_bandwidth_gb_s) * 1e-3;
  const double net_us =
      bw_node_us +
      mach.net.wire_time_ns(static_cast<std::size_t>(bytes_per_msg),
                            static_cast<int>(avg_hops)) *
          1e-3;
  const double chain_us = 6.0 * one_way_latency(rt, mach);

  // Computation overlaps the network but not the software messaging.
  out.cutoff_comm_us =
      sw_cpu + chain_us + std::max(0.0, net_us - 0.7 * out.compute_us);

  // ---- PME phase (amortized) ----------------------------------------------
  const double grid_pts = static_cast<double>(sys.grid_x) * sys.grid_y *
                          static_cast<double>(sys.grid_z);
  FftRun fft;
  fft.n = nearest_smooth(
      static_cast<std::size_t>(std::llround(std::cbrt(grid_pts))));
  // Pencil owners: at most one per node, at most one pencil per grid line.
  fft.nodes = std::min<std::size_t>(
      run.nodes, static_cast<std::size_t>(fft.n) * fft.n / 4);
  fft.nodes = std::max<std::size_t>(fft.nodes, 4);
  fft.use_m2m = run.m2m_pme;
  fft.runtime = rt;
  fft.machine = mach;
  fft.workers = run.workers;
  const FftResult fr = simulate_fft(fft);

  // Charge-grid scatter + potential return: ~8 neighbour-region messages
  // each way per node plus spreading/interpolation compute.
  const double grid_msgs = 16.0;
  const double grid_msg_cost =
      run.m2m_pme
          ? rt.m2m_burst_setup / 8.0 + rt.m2m_per_message
          : rt.worker_send_cost() + rt.poll_recv_cost() +
                rt.worker_sched_cost();
  const double spread_us = atoms_per_node * 64.0 * 0.004 /
                           mach.node_throughput(run.workers);
  const double pme_phase_us = fr.step_us + grid_msgs * grid_msg_cost +
                              2.0 * spread_us +
                              4.0 * one_way_latency(rt, mach);
  out.pme_us = pme_phase_us / sys.pme_every;

  out.total_us = out.compute_us + out.cutoff_comm_us + out.pme_us;
  return out;
}

}  // namespace bgq::model
