// Cost-model parameters for the scale-out simulations (src/model).
//
// Absolute BG/Q timings cannot be measured on this host, so the per-
// message software costs are calibrated against the paper's own
// micro-benchmarks (Fig. 4/5: 2.9/3.3/3.7 us one-way short-message
// latency; Fig. 6 allocator costs; Fig. 8's ~67% L2-atomics effect at one
// process per node) and the published BG/Q network characteristics (§II).
// EXPERIMENTS.md records, per experiment, how the simulated shapes compare
// with the paper's tables/figures.
#pragma once

#include <cstddef>

#include "net/params.hpp"

namespace bgq::model {

/// Charm++ execution modes (paper §III).
enum class Mode {
  kNonSmp,
  kSmp,
  kSmpCommThreads,
};

/// Per-message software costs in microseconds.
struct RuntimeParams {
  double send_overhead = 0.85;     ///< alloc + Converse + PAMI send path
  double recv_overhead = 0.80;     ///< dispatch + buffer alloc + copy
  double scheduler_per_msg = 0.55; ///< Charm++ scheduler dequeue + handler
  double smp_queue_hop = 0.20;     ///< lockless PE-queue enqueue/dequeue
  double commthread_post = 0.15;   ///< work post to a comm thread
  double commthread_wake = 0.25;   ///< wakeup-unit resume latency
  double m2m_per_message = 0.30;   ///< per-send inside a registered burst
  double m2m_burst_setup = 2.0;    ///< handle start/completion per burst
  /// Fig. 8: mutex queues + glibc arena allocator instead of L2 atomics.
  double l2_off_multiplier = 2.5;

  bool use_l2_atomics = true;
  Mode mode = Mode::kSmpCommThreads;
  unsigned comm_threads = 8;  ///< per node (kSmpCommThreads)

  double software_multiplier() const {
    return use_l2_atomics ? 1.0 : l2_off_multiplier;
  }

  /// Worker-side CPU time to hand one p2p message to the network.
  double worker_send_cost() const {
    const double m = software_multiplier();
    switch (mode) {
      case Mode::kNonSmp: return m * send_overhead;
      case Mode::kSmp: return m * (send_overhead + smp_queue_hop);
      case Mode::kSmpCommThreads: return m * commthread_post;
    }
    return 0;
  }

  /// Comm-thread-side CPU time per p2p send (0 when workers send).
  double commthread_send_cost() const {
    return mode == Mode::kSmpCommThreads
               ? software_multiplier() * (send_overhead + commthread_wake)
               : 0.0;
  }

  /// Receive-side CPU cost on the polling thread.
  double poll_recv_cost() const {
    const double m = software_multiplier();
    switch (mode) {
      case Mode::kNonSmp: return m * recv_overhead;
      case Mode::kSmp: return m * (recv_overhead + smp_queue_hop);
      case Mode::kSmpCommThreads:
        return m * (recv_overhead + commthread_wake);
    }
    return 0;
  }

  /// Worker-side CPU cost to schedule/execute a received message's
  /// handler entry (excluded for m2m, which lands in registered buffers).
  double worker_sched_cost() const {
    return software_multiplier() * scheduler_per_msg;
  }
};

/// Per-node compute capability.
struct MachineModel {
  net::NetworkParams net{};
  unsigned cores = 16;
  unsigned max_threads_per_core = 4;
  /// Node-relative double-precision throughput at 1 thread/core = 1.0.
  /// Paper §IV-B.1: 2.3x with 4 threads/core on the A2.
  double smt_speedup[4] = {1.0, 1.65, 2.05, 2.3};
  /// Scalar pair-interaction cost on one A2 thread, microseconds.
  double pair_cost_us = 0.021;
  /// Per-atom integration/bonded cost, microseconds.
  double atom_cost_us = 0.012;
  /// QPX-vectorized inner loop speedup (15.8% serial gain, §IV-B.1).
  double qpx_speedup = 1.158;
  /// 1-D FFT cost per point per log2(N) on one thread, microseconds.
  double fft_point_cost_us = 0.004;

  /// Aggregate node compute throughput (relative units) for `workers`
  /// worker threads.
  double node_throughput(unsigned workers) const {
    if (workers == 0) return 0;
    const unsigned full = workers / cores;  // threads on every core
    const unsigned rem = workers % cores;
    double thr = 0;
    if (full > 0) {
      const unsigned idx = full > 4 ? 3 : full - 1;
      thr += (cores - rem) * smt_speedup[idx];
    }
    if (rem > 0) {
      const unsigned idx = full + 1 > 4 ? 3 : full;  // rem cores run +1
      thr += rem * smt_speedup[idx];
    }
    if (full == 0) thr = rem * smt_speedup[0];
    return thr;
  }

  static MachineModel bgq();
  static MachineModel bgp();
};

}  // namespace bgq::model
