// Allocator interface shared by the baseline arena allocator and the
// paper's lockless pool allocator, so benches and the runtime can swap
// implementations (Fig. 6 and Fig. 8 compare them).
#pragma once

#include <cstddef>
#include <cstdint>

namespace bgq::alloc {

/// Thread identifier within one SMP node (worker PE or comm thread index).
using ThreadId = std::uint32_t;

/// Abstract message-buffer allocator.
///
/// Threads must be registered up front (the Charm++ runtime knows its
/// thread count at node boot); `tid` is the caller's slot.  deallocate()
/// may be called from *any* registered thread — cross-thread frees are the
/// contended case the paper optimizes.
class IAllocator {
 public:
  virtual ~IAllocator() = default;

  /// Allocate at least `bytes` bytes, aligned to 16.
  virtual void* allocate(ThreadId tid, std::size_t bytes) = 0;

  /// Return a buffer obtained from allocate(); callable from any thread.
  virtual void deallocate(ThreadId tid, void* p) = 0;

  /// Number of registered threads.
  virtual ThreadId thread_count() const = 0;
};

namespace detail {

/// Header prepended to every buffer; 16 bytes keeps user data 16-aligned.
struct BufferHeader {
  std::uint32_t owner;       ///< allocating thread (pool) or arena id
  std::uint16_t size_class;  ///< index into the size-class table
  std::uint16_t kind;        ///< BufferKind discriminator
  std::uint64_t magic;       ///< corruption / double-free canary
};
static_assert(sizeof(BufferHeader) == 16);

enum BufferKind : std::uint16_t {
  kKindArena = 0xA1,
  kKindPool = 0xB2,
  kKindHeapDirect = 0xC3,  ///< larger than the largest size class
  kKindSlab = 0xD4,        ///< carved from a per-thread slab block; its
                           ///< memory is freed with the block, never alone
};

inline constexpr std::uint64_t kLiveMagic = 0xB19B1005A110Cull;
inline constexpr std::uint64_t kFreeMagic = 0xDEADF4EEDEADF4EEull;

/// Size classes: 32 B .. 64 KiB in powers of two (the message-size range
/// Charm++ allocates on the fast path); larger requests go to the heap.
inline constexpr std::size_t kNumSizeClasses = 12;

inline constexpr std::size_t class_bytes(std::size_t cls) {
  return std::size_t{32} << cls;
}

/// Smallest class that fits `bytes`, or kNumSizeClasses if too large.
inline std::size_t size_class_for(std::size_t bytes) {
  std::size_t cls = 0;
  while (cls < kNumSizeClasses && class_bytes(cls) < bytes) ++cls;
  return cls;
}

}  // namespace detail
}  // namespace bgq::alloc
