// The paper's lockless pool allocator (§III-B).
//
// "To eliminate this lock contention on the free call, we enabled an L2
//  atomic queue for each thread to store a pool of temporary buffers.  Free
//  calls can do a lockless enqueue to the L2 atomic queue belonging to the
//  thread that created the buffer.  There is a threshold for the memory
//  pools after which buffers are freed to the memory heap.  Future malloc
//  calls directly dequeue from the thread's L2 atomic pool via a lockless
//  dequeue."
//
// Mapping onto our queue primitive: each (thread, size-class) pair owns an
// L2AtomicQueue whose *producers* are any threads freeing buffers that this
// thread allocated, and whose single *consumer* is the owning thread's
// allocate path — exactly the MPSC shape the queue implements.  A free that
// finds the pool full (the threshold) releases the buffer to the heap.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "alloc/allocator.hpp"
#include "queue/l2_atomic_queue.hpp"

namespace bgq::alloc {

/// Per-thread lockless pool allocator.
///
/// Slab fast path: the dominant small-message size class (`slab_class`,
/// default 128 B — a lean message header plus the small payloads that
/// dominate fine-grained chare traffic) is carved from per-thread slab
/// blocks instead of hitting `operator new` per buffer.  A slab buffer
/// that misses the recycling ring on free (ring full) is parked on a
/// lockless MPSC spill stack owned by the carving thread rather than
/// heap-freed — slab memory is only ever released wholesale, with its
/// block.  Allocation misses therefore probe: own ring -> spill stack ->
/// carve -> heap.
class PoolAllocator final : public IAllocator {
 public:
  /// `pool_slots` is the per-(thread, class) pool threshold — buffers
  /// beyond it are freed to the heap (slab buffers: to the spill
  /// stack).  It also caps how many slab buffers each thread carves;
  /// `slab_class` = kNumSizeClasses disables the slab path.
  explicit PoolAllocator(ThreadId nthreads, std::size_t pool_slots = 512,
                         std::size_t slab_class = 2);
  ~PoolAllocator() override;

  void* allocate(ThreadId tid, std::size_t bytes) override;
  void deallocate(ThreadId tid, void* p) override;
  ThreadId thread_count() const override { return nthreads_; }

  /// Observability for tests/benches.
  std::uint64_t pool_hits() const;   ///< allocs served from a pool
  std::uint64_t heap_allocs() const; ///< allocs that went to the heap
  std::uint64_t heap_frees() const;  ///< frees spilled past the threshold
  std::uint64_t slab_hits() const;   ///< allocs served from slab memory
  std::uint64_t slab_carves() const; ///< buffers carved from slab blocks

 private:
  struct ThreadPools;

  void* carve(ThreadPools& mine, ThreadId tid);

  const ThreadId nthreads_;
  const std::size_t pool_slots_;
  const std::size_t slab_class_;
  std::vector<std::unique_ptr<ThreadPools>> pools_;  // one per thread
};

}  // namespace bgq::alloc
