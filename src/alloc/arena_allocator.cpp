#include "alloc/arena_allocator.hpp"

#include <cstdlib>
#include <new>
#include <stdexcept>

namespace bgq::alloc {

using detail::BufferHeader;
using detail::class_bytes;
using detail::kFreeMagic;
using detail::kKindArena;
using detail::kKindHeapDirect;
using detail::kLiveMagic;
using detail::kNumSizeClasses;
using detail::size_class_for;

namespace {

BufferHeader* header_of(void* user) {
  return reinterpret_cast<BufferHeader*>(static_cast<char*>(user) -
                                         sizeof(BufferHeader));
}

void* raw_new(std::size_t user_bytes) {
  return ::operator new(sizeof(BufferHeader) + user_bytes,
                        std::align_val_t{16});
}

void raw_delete(BufferHeader* h) {
  ::operator delete(h, std::align_val_t{16});
}

}  // namespace

ArenaAllocator::ArenaAllocator(ThreadId nthreads, std::size_t narenas)
    : nthreads_(nthreads),
      arenas_(narenas != 0 ? narenas
                           : std::max<std::size_t>(1, nthreads / 4)) {
  if (nthreads == 0) throw std::invalid_argument("nthreads must be > 0");
}

ArenaAllocator::~ArenaAllocator() {
  for (auto& arena : arenas_) {
    for (auto& list : arena.free_lists) {
      for (void* user : list) raw_delete(header_of(user));
      list.clear();
    }
  }
}

void* ArenaAllocator::allocate_from(Arena& arena, std::uint32_t arena_id,
                                    std::size_t bytes) {
  const std::size_t cls = size_class_for(bytes);
  void* user = nullptr;
  if (cls < kNumSizeClasses && !arena.free_lists[cls].empty()) {
    user = arena.free_lists[cls].back();
    arena.free_lists[cls].pop_back();
  } else {
    const std::size_t user_bytes =
        cls < kNumSizeClasses ? class_bytes(cls) : bytes;
    user = static_cast<char*>(raw_new(user_bytes)) + sizeof(BufferHeader);
  }
  auto* h = header_of(user);
  h->owner = arena_id;
  h->size_class = static_cast<std::uint16_t>(cls);
  h->kind = cls < kNumSizeClasses ? kKindArena : kKindHeapDirect;
  h->magic = kLiveMagic;
  return user;
}

void* ArenaAllocator::allocate(ThreadId tid, std::size_t bytes) {
  // ptmalloc-style arena selection: start at the thread's preferred arena,
  // take the first one whose mutex is free; if all are busy, block on the
  // preferred one (and count the contention event).
  const std::size_t n = arenas_.size();
  const std::size_t preferred = tid % n;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t a = (preferred + i) % n;
    if (arenas_[a].mutex.try_lock()) {
      std::lock_guard<std::mutex> g(arenas_[a].mutex, std::adopt_lock);
      return allocate_from(arenas_[a], static_cast<std::uint32_t>(a), bytes);
    }
  }
  Arena& arena = arenas_[preferred];
  {
    std::lock_guard<std::mutex> g(arena.mutex);
    ++arena.contended;
    return allocate_from(arena, static_cast<std::uint32_t>(preferred),
                         bytes);
  }
}

void ArenaAllocator::deallocate(ThreadId /*tid*/, void* p) {
  auto* h = header_of(p);
  if (h->magic != kLiveMagic) throw std::logic_error("bad free (arena)");
  h->magic = kFreeMagic;

  if (h->kind == kKindHeapDirect) {
    raw_delete(h);
    return;
  }

  // The modelled ptmalloc cost: the free MUST lock the owning arena.
  Arena& arena = arenas_[h->owner];
  const bool contended = !arena.mutex.try_lock();
  if (contended) arena.mutex.lock();
  std::lock_guard<std::mutex> g(arena.mutex, std::adopt_lock);
  if (contended) ++arena.contended;
  arena.free_lists[h->size_class].push_back(p);
}

std::uint64_t ArenaAllocator::contention_events() const {
  std::uint64_t total = 0;
  for (auto& arena : arenas_) {
    std::lock_guard<std::mutex> g(
        const_cast<std::mutex&>(arena.mutex));
    total += arena.contended;
  }
  return total;
}

}  // namespace bgq::alloc
