#include "alloc/pool_allocator.hpp"

#include <atomic>
#include <new>
#include <stdexcept>

#include "common/cacheline.hpp"
#include "trace/trace.hpp"
#include "verify/schedule_point.hpp"

namespace bgq::alloc {

using detail::BufferHeader;
using detail::class_bytes;
using detail::kFreeMagic;
using detail::kKindHeapDirect;
using detail::kKindPool;
using detail::kLiveMagic;
using detail::kNumSizeClasses;
using detail::size_class_for;

namespace {

BufferHeader* header_of(void* user) {
  return reinterpret_cast<BufferHeader*>(static_cast<char*>(user) -
                                         sizeof(BufferHeader));
}

void* raw_new(std::size_t user_bytes) {
  return ::operator new(sizeof(BufferHeader) + user_bytes,
                        std::align_val_t{16});
}

void raw_delete(BufferHeader* h) {
  ::operator delete(h, std::align_val_t{16});
}

}  // namespace

/// One L2 atomic pool per size class, owned by one thread.
struct PoolAllocator::ThreadPools {
  explicit ThreadPools(std::size_t slots)
      : pools{queue::L2AtomicQueue<void*>(slots),
              queue::L2AtomicQueue<void*>(slots),
              queue::L2AtomicQueue<void*>(slots),
              queue::L2AtomicQueue<void*>(slots),
              queue::L2AtomicQueue<void*>(slots),
              queue::L2AtomicQueue<void*>(slots),
              queue::L2AtomicQueue<void*>(slots),
              queue::L2AtomicQueue<void*>(slots),
              queue::L2AtomicQueue<void*>(slots),
              queue::L2AtomicQueue<void*>(slots),
              queue::L2AtomicQueue<void*>(slots),
              queue::L2AtomicQueue<void*>(slots)} {}

  queue::L2AtomicQueue<void*> pools[kNumSizeClasses];

  alignas(kL2Line) std::atomic<std::uint64_t> pool_hits{0};
  std::atomic<std::uint64_t> heap_allocs{0};
  std::atomic<std::uint64_t> heap_frees{0};
};

static_assert(kNumSizeClasses == 12,
              "ThreadPools initializer list must match kNumSizeClasses");

PoolAllocator::PoolAllocator(ThreadId nthreads, std::size_t pool_slots)
    : nthreads_(nthreads), pool_slots_(pool_slots) {
  if (nthreads == 0) throw std::invalid_argument("nthreads must be > 0");
  pools_.reserve(nthreads);
  for (ThreadId t = 0; t < nthreads; ++t) {
    pools_.push_back(std::make_unique<ThreadPools>(pool_slots_));
  }
}

PoolAllocator::~PoolAllocator() {
  for (auto& tp : pools_) {
    for (auto& pool : tp->pools) {
      while (void* user = pool.try_dequeue()) raw_delete(header_of(user));
    }
  }
}

void* PoolAllocator::allocate(ThreadId tid, std::size_t bytes) {
  const std::size_t cls = size_class_for(bytes);
  ThreadPools& mine = *pools_[tid];

  if (cls < kNumSizeClasses) {
    // Lockless dequeue from this thread's own pool (we are the single
    // consumer of our own pools).
    BGQ_SCHED_POINT("alloc.pool.poll");
    if (void* user = mine.pools[cls].try_dequeue()) {
      auto* h = header_of(user);
      BGQ_SCHED_POINT("alloc.pool.hit");
      BGQ_TRACE_EVENT(::bgq::trace::EventKind::kAllocPoolHit, cls);
      h->magic = kLiveMagic;
      h->owner = tid;  // ownership is stable, but keep the header honest
      mine.pool_hits.fetch_add(1, std::memory_order_relaxed);
      return user;
    }
  }

  const std::size_t user_bytes =
      cls < kNumSizeClasses ? class_bytes(cls) : bytes;
  void* user = static_cast<char*>(raw_new(user_bytes)) + sizeof(BufferHeader);
  auto* h = header_of(user);
  h->owner = tid;
  h->size_class = static_cast<std::uint16_t>(cls);
  h->kind = cls < kNumSizeClasses ? kKindPool : kKindHeapDirect;
  h->magic = kLiveMagic;
  mine.heap_allocs.fetch_add(1, std::memory_order_relaxed);
  BGQ_TRACE_EVENT(::bgq::trace::EventKind::kAllocHeapGrow, cls);
  return user;
}

void PoolAllocator::deallocate(ThreadId tid, void* p) {
  auto* h = header_of(p);
  if (h->magic != kLiveMagic) throw std::logic_error("bad free (pool)");

  if (h->kind == kKindHeapDirect) {
    h->magic = kFreeMagic;
    raw_delete(h);
    return;
  }

  // Lockless enqueue to the pool of the thread that created the buffer —
  // any thread may do this concurrently.  Past the threshold (ring full),
  // free to the heap.  Mark the buffer free *before* publishing it so a
  // double free is caught whether the buffer is pooled or re-issued.
  h->magic = kFreeMagic;
  BGQ_SCHED_POINT("alloc.free.marked");
  ThreadPools& owner = *pools_[h->owner];
  if (!owner.pools[h->size_class].try_enqueue(p)) {
    [[maybe_unused]] const std::uint16_t cls = h->size_class;
    raw_delete(h);
    pools_[tid]->heap_frees.fetch_add(1, std::memory_order_relaxed);
    BGQ_TRACE_EVENT(::bgq::trace::EventKind::kAllocHeapSpill, cls);
  }
}

std::uint64_t PoolAllocator::pool_hits() const {
  std::uint64_t n = 0;
  for (auto& tp : pools_) n += tp->pool_hits.load(std::memory_order_relaxed);
  return n;
}

std::uint64_t PoolAllocator::heap_allocs() const {
  std::uint64_t n = 0;
  for (auto& tp : pools_)
    n += tp->heap_allocs.load(std::memory_order_relaxed);
  return n;
}

std::uint64_t PoolAllocator::heap_frees() const {
  std::uint64_t n = 0;
  for (auto& tp : pools_) n += tp->heap_frees.load(std::memory_order_relaxed);
  return n;
}

}  // namespace bgq::alloc
