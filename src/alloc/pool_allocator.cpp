#include "alloc/pool_allocator.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <new>
#include <stdexcept>

#include "common/cacheline.hpp"
#include "trace/trace.hpp"
#include "verify/schedule_point.hpp"

namespace bgq::alloc {

using detail::BufferHeader;
using detail::class_bytes;
using detail::kFreeMagic;
using detail::kKindHeapDirect;
using detail::kKindPool;
using detail::kKindSlab;
using detail::kLiveMagic;
using detail::kNumSizeClasses;
using detail::size_class_for;

namespace {

BufferHeader* header_of(void* user) {
  return reinterpret_cast<BufferHeader*>(static_cast<char*>(user) -
                                         sizeof(BufferHeader));
}

void* raw_new(std::size_t user_bytes) {
  return ::operator new(sizeof(BufferHeader) + user_bytes,
                        std::align_val_t{16});
}

void raw_delete(BufferHeader* h) {
  ::operator delete(h, std::align_val_t{16});
}

}  // namespace

/// One L2 atomic pool per size class, owned by one thread — plus the
/// thread's slab state: the block being carved, every block ever carved
/// (wholesale free in the destructor), and the lockless spill stack that
/// catches slab buffers whose recycling ring was full.  The stack is a
/// Treiber list threaded through the (free) buffers' own user bytes:
/// producers CAS-push from any thread, and only the owning thread pops,
/// which is what makes the pop CAS ABA-safe (a node can't be recycled
/// out from under the single popper).
struct PoolAllocator::ThreadPools {
  explicit ThreadPools(std::size_t slots)
      : pools{queue::L2AtomicQueue<void*>(slots),
              queue::L2AtomicQueue<void*>(slots),
              queue::L2AtomicQueue<void*>(slots),
              queue::L2AtomicQueue<void*>(slots),
              queue::L2AtomicQueue<void*>(slots),
              queue::L2AtomicQueue<void*>(slots),
              queue::L2AtomicQueue<void*>(slots),
              queue::L2AtomicQueue<void*>(slots),
              queue::L2AtomicQueue<void*>(slots),
              queue::L2AtomicQueue<void*>(slots),
              queue::L2AtomicQueue<void*>(slots),
              queue::L2AtomicQueue<void*>(slots)} {}

  queue::L2AtomicQueue<void*> pools[kNumSizeClasses];

  alignas(kL2Line) std::atomic<std::uint64_t> pool_hits{0};
  std::atomic<std::uint64_t> heap_allocs{0};
  std::atomic<std::uint64_t> heap_frees{0};
  std::atomic<std::uint64_t> slab_hits{0};
  std::atomic<std::uint64_t> slab_carves{0};

  // Slab state.  `spill` holds user pointers of free slab buffers.
  alignas(kL2Line) std::atomic<void*> spill{nullptr};
  char* carve_at = nullptr;        ///< next buffer in the current block
  char* carve_end = nullptr;       ///< end of the current block
  std::size_t carved = 0;          ///< buffers carved so far (capped)
  std::vector<void*> slab_blocks;  ///< owner-thread mutation only

  // The next-link lives in the free buffer's first user bytes, written
  // with plain memcpy: each producer writes only its own node's link
  // before the release CAS publishes it, and the single popper reads it
  // after the acquire load — no concurrent access to any link.
  void spill_push(void* user) noexcept {
    void* head = spill.load(std::memory_order_relaxed);
    do {
      std::memcpy(user, &head, sizeof head);
      BGQ_SCHED_POINT("alloc.slab.push");
    } while (!spill.compare_exchange_weak(head, user,
                                          std::memory_order_release,
                                          std::memory_order_relaxed));
  }

  void* spill_pop() noexcept {
    void* head = spill.load(std::memory_order_acquire);
    while (head != nullptr) {
      BGQ_SCHED_POINT("alloc.slab.pop");
      void* next;
      std::memcpy(&next, head, sizeof next);
      if (spill.compare_exchange_weak(head, next,
                                      std::memory_order_acquire,
                                      std::memory_order_acquire)) {
        return head;
      }
    }
    return nullptr;
  }
};

static_assert(kNumSizeClasses == 12,
              "ThreadPools initializer list must match kNumSizeClasses");

PoolAllocator::PoolAllocator(ThreadId nthreads, std::size_t pool_slots,
                             std::size_t slab_class)
    : nthreads_(nthreads), pool_slots_(pool_slots), slab_class_(slab_class) {
  if (nthreads == 0) throw std::invalid_argument("nthreads must be > 0");
  pools_.reserve(nthreads);
  for (ThreadId t = 0; t < nthreads; ++t) {
    pools_.push_back(std::make_unique<ThreadPools>(pool_slots_));
  }
}

PoolAllocator::~PoolAllocator() {
  // Rings may hold slab buffers: their memory belongs to the blocks and
  // is released wholesale below, never buffer-by-buffer.
  for (auto& tp : pools_) {
    for (auto& pool : tp->pools) {
      while (void* user = pool.try_dequeue()) {
        if (header_of(user)->kind != kKindSlab) raw_delete(header_of(user));
      }
    }
    for (void* block : tp->slab_blocks) {
      ::operator delete(block, std::align_val_t{16});
    }
  }
}

/// Slab carve: hand out the next buffer of the current block, starting a
/// fresh block when the current one is exhausted.  Owner thread only.
/// Returns nullptr once this thread's carve budget (pool_slots_) is
/// spent — steady state should recycle, not grow the slab forever.
void* PoolAllocator::carve(ThreadPools& mine, ThreadId tid) {
  const std::size_t stride =
      sizeof(BufferHeader) + class_bytes(slab_class_);
  if (mine.carve_at == mine.carve_end) {
    if (mine.carved >= pool_slots_) return nullptr;
    // One block per 64 buffers (or the remaining budget, if smaller).
    const std::size_t n = std::min<std::size_t>(64, pool_slots_ - mine.carved);
    auto* block = static_cast<char*>(
        ::operator new(n * stride, std::align_val_t{16}));
    mine.slab_blocks.push_back(block);
    mine.carve_at = block;
    mine.carve_end = block + n * stride;
  }
  void* user = mine.carve_at + sizeof(BufferHeader);
  mine.carve_at += stride;
  ++mine.carved;
  auto* h = header_of(user);
  h->owner = tid;
  h->size_class = static_cast<std::uint16_t>(slab_class_);
  h->kind = kKindSlab;
  h->magic = kLiveMagic;
  mine.slab_carves.fetch_add(1, std::memory_order_relaxed);
  return user;
}

void* PoolAllocator::allocate(ThreadId tid, std::size_t bytes) {
  const std::size_t cls = size_class_for(bytes);
  ThreadPools& mine = *pools_[tid];

  if (cls < kNumSizeClasses) {
    // Lockless dequeue from this thread's own pool (we are the single
    // consumer of our own pools).
    BGQ_SCHED_POINT("alloc.pool.poll");
    if (void* user = mine.pools[cls].try_dequeue()) {
      auto* h = header_of(user);
      BGQ_SCHED_POINT("alloc.pool.hit");
      BGQ_TRACE_EVENT(::bgq::trace::EventKind::kAllocPoolHit, cls);
      h->magic = kLiveMagic;
      h->owner = tid;  // ownership is stable, but keep the header honest
      mine.pool_hits.fetch_add(1, std::memory_order_relaxed);
      if (h->kind == kKindSlab) {
        mine.slab_hits.fetch_add(1, std::memory_order_relaxed);
      }
      return user;
    }
    if (cls == slab_class_) {
      // Ring miss on the dominant class: probe the spill stack (slab
      // buffers whose free found the ring full), then carve.
      if (void* user = mine.spill_pop()) {
        auto* h = header_of(user);
        if (h->magic != kLiveMagic) {  // always true: spilled frees
          h->magic = kLiveMagic;
        }
        h->owner = tid;
        mine.slab_hits.fetch_add(1, std::memory_order_relaxed);
        return user;
      }
      if (void* user = carve(mine, tid)) return user;
    }
  }

  const std::size_t user_bytes =
      cls < kNumSizeClasses ? class_bytes(cls) : bytes;
  void* user = static_cast<char*>(raw_new(user_bytes)) + sizeof(BufferHeader);
  auto* h = header_of(user);
  h->owner = tid;
  h->size_class = static_cast<std::uint16_t>(cls);
  h->kind = cls < kNumSizeClasses ? kKindPool : kKindHeapDirect;
  h->magic = kLiveMagic;
  mine.heap_allocs.fetch_add(1, std::memory_order_relaxed);
  BGQ_TRACE_EVENT(::bgq::trace::EventKind::kAllocHeapGrow, cls);
  return user;
}

void PoolAllocator::deallocate(ThreadId tid, void* p) {
  auto* h = header_of(p);
  if (h->magic != kLiveMagic) throw std::logic_error("bad free (pool)");

  if (h->kind == kKindHeapDirect) {
    h->magic = kFreeMagic;
    raw_delete(h);
    return;
  }

  // Lockless enqueue to the pool of the thread that created the buffer —
  // any thread may do this concurrently.  Past the threshold (ring full),
  // free to the heap.  Mark the buffer free *before* publishing it so a
  // double free is caught whether the buffer is pooled or re-issued.
  h->magic = kFreeMagic;
  BGQ_SCHED_POINT("alloc.free.marked");
  ThreadPools& owner = *pools_[h->owner];
  if (!owner.pools[h->size_class].try_enqueue(p)) {
    if (h->kind == kKindSlab) {
      // Slab memory is never heap-freed buffer-by-buffer: park it on the
      // carving thread's spill stack for its next ring miss.
      owner.spill_push(p);
      return;
    }
    [[maybe_unused]] const std::uint16_t cls = h->size_class;
    raw_delete(h);
    pools_[tid]->heap_frees.fetch_add(1, std::memory_order_relaxed);
    BGQ_TRACE_EVENT(::bgq::trace::EventKind::kAllocHeapSpill, cls);
  }
}

std::uint64_t PoolAllocator::pool_hits() const {
  std::uint64_t n = 0;
  for (auto& tp : pools_) n += tp->pool_hits.load(std::memory_order_relaxed);
  return n;
}

std::uint64_t PoolAllocator::heap_allocs() const {
  std::uint64_t n = 0;
  for (auto& tp : pools_)
    n += tp->heap_allocs.load(std::memory_order_relaxed);
  return n;
}

std::uint64_t PoolAllocator::heap_frees() const {
  std::uint64_t n = 0;
  for (auto& tp : pools_) n += tp->heap_frees.load(std::memory_order_relaxed);
  return n;
}

std::uint64_t PoolAllocator::slab_hits() const {
  std::uint64_t n = 0;
  for (auto& tp : pools_) n += tp->slab_hits.load(std::memory_order_relaxed);
  return n;
}

std::uint64_t PoolAllocator::slab_carves() const {
  std::uint64_t n = 0;
  for (auto& tp : pools_)
    n += tp->slab_carves.load(std::memory_order_relaxed);
  return n;
}

}  // namespace bgq::alloc
