// Baseline allocator emulating the GNU (ptmalloc2) arena design the paper
// measures against (§III-B).
//
// ptmalloc behaviour being modelled:
//   * allocate: the thread tries to take an arena that is not currently in
//     use by another thread (trylock scan from its preferred arena), and
//     locks it for the duration of the allocation;
//   * free: must lock the mutex of *the arena the buffer came from* —
//     regardless of which thread is freeing.  When many threads free
//     buffers allocated from one arena (the "many receivers free messages
//     from one source" pattern), they all contend on that one mutex.
//
// That free-side contention is exactly what Fig. 6 shows and what the
// lockless pool allocator removes.
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

#include "alloc/allocator.hpp"
#include "common/cacheline.hpp"

namespace bgq::alloc {

/// Mutex-per-arena allocator with per-size-class free lists.
class ArenaAllocator final : public IAllocator {
 public:
  /// glibc creates roughly `8 * cores` arenas, but a 64-thread BG/Q node
  /// saw heavy sharing; `arenas_per_thread` below 1 reproduces that
  /// pressure.  Default: one arena per four threads, the regime the paper's
  /// contention observation corresponds to.
  explicit ArenaAllocator(ThreadId nthreads, std::size_t narenas = 0);
  ~ArenaAllocator() override;

  void* allocate(ThreadId tid, std::size_t bytes) override;
  void deallocate(ThreadId tid, void* p) override;
  ThreadId thread_count() const override { return nthreads_; }

  std::size_t arena_count() const { return arenas_.size(); }

  /// Total number of times an allocate/free had to *wait* for an arena
  /// mutex (contention events); used by tests and reported by bench_alloc.
  std::uint64_t contention_events() const;

 private:
  struct alignas(kL2Line) Arena {
    std::mutex mutex;
    std::vector<void*> free_lists[detail::kNumSizeClasses];
    std::uint64_t contended = 0;  // guarded by mutex
  };

  void* allocate_from(Arena& arena, std::uint32_t arena_id,
                      std::size_t bytes);

  const ThreadId nthreads_;
  std::vector<Arena> arenas_;
};

}  // namespace bgq::alloc
