// Thin Charm++-style chare layer over the Converse runtime.
//
// The paper's contribution is the machine layer underneath Charm++; this
// module provides the programming-model surface a Charm++ user sees —
// chare arrays with entry methods, location-transparent sends, broadcasts
// and sum-reductions — so the examples read like Charm++ programs.  The
// load "balancer" is a static round-robin placement (element e lives on
// PE e mod P), which is what NAMD-style static decompositions reduce to.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "converse/machine.hpp"
#include "ft/manager.hpp"
#include "ft/pup.hpp"

namespace bgq::charm {

class ChareArray;
class Runtime;

/// Reserved entry id: the runtime invokes Chare::resume instead of
/// Chare::entry when a message carries it (checkpoint/recovery re-kick).
inline constexpr int kResumeEntry = 0xFFFF;

/// Context passed to an entry method: the element's identity plus the
/// messaging verbs available inside a chare.
class EntryContext {
 public:
  EntryContext(ChareArray& array, std::size_t index, cvs::Pe& pe)
      : array_(array), index_(index), pe_(pe) {}

  std::size_t index() const noexcept { return index_; }
  std::size_t array_size() const noexcept;
  cvs::Pe& pe() noexcept { return pe_; }

  /// Asynchronous method invocation on another element.
  void send(std::size_t to, int entry, const void* data, std::size_t bytes);

  /// Invoke `entry` on every element (including self).
  void broadcast(int entry, const void* data, std::size_t bytes);

  /// Contribute to a sum reduction; when all elements of the array have
  /// contributed, the runtime delivers the total to the registered
  /// reduction client.
  void contribute(double value);

  /// The owning runtime (checkpoint_due / start_checkpoint live there).
  Runtime& runtime() noexcept;

 private:
  ChareArray& array_;
  std::size_t index_;
  cvs::Pe& pe_;
};

/// Base class for user chares.
class Chare {
 public:
  virtual ~Chare() = default;

  /// Entry-method dispatch: `entry` selects the method, data is the
  /// marshalled parameters (valid only during the call).
  virtual void entry(int entry, const void* data, std::size_t bytes,
                     EntryContext& ctx) = 0;

  /// Serialize/deserialize this element's state (checkpoint contract; the
  /// same code runs both directions — see ft/pup.hpp).  The default
  /// refuses loudly: a chare that never checkpoints needs no pup, but one
  /// that reaches a checkpoint without implementing it is a bug.
  virtual void pup(ft::Pup&) {
    throw std::logic_error("chare reached a checkpoint without a pup()");
  }

  /// Re-kick after a checkpoint commits or a rollback restores this
  /// element (the kResumeEntry message).  Elements that drive the app
  /// (coordinators) re-broadcast their current step; default is a no-op.
  virtual void resume(EntryContext&) {}
};

/// A distributed array of chares.
class ChareArray {
 public:
  using Factory = std::function<std::unique_ptr<Chare>(std::size_t)>;
  using ReductionClient = std::function<void(double, cvs::Pe&)>;

  std::size_t size() const noexcept { return n_; }

  /// PE owning element e: static round-robin placement, failure-aware.
  /// With nobody declared dead this is exactly `e mod P` (the original
  /// static map).  After a failure, elements whose home survives stay
  /// put; orphaned elements re-home round-robin onto the live PEs.  The
  /// map is a pure function of (e, dead mask), so every PE computes the
  /// same placement without coordination.
  cvs::PeRank home(std::size_t e) const {
    const auto np = static_cast<cvs::PeRank>(machine_->pe_count());
    const auto h = static_cast<cvs::PeRank>(e % np);
    if (!machine_->ft_armed() || machine_->dead_mask() == 0) return h;
    if (!machine_->process_dead(machine_->process_of(h))) return h;
    // Orphaned element: deterministic round-robin over surviving PEs.
    std::vector<cvs::PeRank> live;
    live.reserve(np);
    for (cvs::PeRank p = 0; p < np; ++p) {
      if (!machine_->process_dead(machine_->process_of(p))) live.push_back(p);
    }
    if (live.empty()) return h;
    return live[e % live.size()];
  }

  /// Register the callback that receives completed sum reductions (runs
  /// on the reduction root: PE 0, or the lowest live PE once failures are
  /// in play).  Set before Machine::run().
  void set_reduction_client(ReductionClient fn) {
    reduction_client_ = std::move(fn);
  }

  /// Send from outside any chare (e.g. from the init function).
  void send_from(cvs::Pe& pe, std::size_t to, int entry, const void* data,
                 std::size_t bytes);

  /// Contributions that arrived twice for the same element in one
  /// reduction round (replayed pre-rollback traffic); detected and
  /// dropped, never double-folded.
  std::uint64_t reduction_duplicates() const noexcept { return red_dups_; }

 private:
  friend class Runtime;
  friend class EntryContext;

  ChareArray(Runtime& rt, cvs::Machine& machine, std::size_t n,
             std::uint16_t id, Factory factory);

  void deliver(cvs::Pe& pe, std::size_t elem, int entry, const void* data,
               std::size_t bytes);
  void contribute(cvs::Pe& pe, std::size_t elem, double value);
  void reduction_reset();

  Runtime& rt_;
  cvs::Machine* machine_;
  std::size_t n_;
  std::uint16_t id_;
  std::vector<std::unique_ptr<Chare>> elements_;  // by element index

  // Reduction state (owned by the root PE's thread via messages).
  // Per-element contribution slots, folded in index order when full:
  // the total is bit-identical regardless of message arrival order, and
  // a duplicate contribution (pre-rollback replay) is detectable.
  ReductionClient reduction_client_;
  std::vector<double> red_vals_;
  std::vector<std::uint8_t> red_got_;
  std::size_t red_count_ = 0;
  std::uint64_t red_dups_ = 0;
};

/// Owns the chare arrays of one Machine and the Converse handler they
/// share.  Create before Machine::run(); create all arrays before run().
///
/// On an FT-armed machine the Runtime is also the checkpoint protocol's
/// application client: save() packs every element homed on a process
/// (plus in-flight reduction slots) via pup, restore() unpacks the blobs
/// back into the elements after a rollback, and resume() re-kicks every
/// element with a kResumeEntry message.
class Runtime : public ft::Client {
 public:
  explicit Runtime(cvs::Machine& machine);

  /// Create an array of `n` chares; `factory(i)` builds element i.
  ChareArray& create_array(std::size_t n, ChareArray::Factory factory);

  cvs::Machine& machine() noexcept { return machine_; }

  // ---- checkpoint control (app-cooperative) ------------------------------
  // A message-driven app never quiesces on its own; the app asks for a
  // checkpoint at a step boundary (no application messages outstanding).

  /// True when the configured checkpoint period has elapsed.
  bool checkpoint_due() const;

  /// Request a coordinated checkpoint; workers run it when their queues
  /// drain.  The app must defer its next step until resume() re-kicks it.
  bool start_checkpoint();

  // ---- ft::Client --------------------------------------------------------
  std::vector<std::byte> save(unsigned proc) override;
  void restore(
      const std::map<unsigned, std::vector<std::byte>>& blobs) override;
  void resume(cvs::Pe& pe) override;

 private:
  friend class ChareArray;
  friend class EntryContext;

  cvs::Machine& machine_;
  cvs::HandlerId handler_;
  cvs::HandlerId reduce_handler_;
  std::vector<std::unique_ptr<ChareArray>> arrays_;
};

}  // namespace bgq::charm
