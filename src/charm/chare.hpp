// Thin Charm++-style chare layer over the Converse runtime.
//
// The paper's contribution is the machine layer underneath Charm++; this
// module provides the programming-model surface a Charm++ user sees —
// chare arrays with entry methods, location-transparent sends, broadcasts
// and sum-reductions — so the examples read like Charm++ programs.  The
// load "balancer" is a static round-robin placement (element e lives on
// PE e mod P), which is what NAMD-style static decompositions reduce to.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "converse/machine.hpp"

namespace bgq::charm {

class ChareArray;
class Runtime;

/// Context passed to an entry method: the element's identity plus the
/// messaging verbs available inside a chare.
class EntryContext {
 public:
  EntryContext(ChareArray& array, std::size_t index, cvs::Pe& pe)
      : array_(array), index_(index), pe_(pe) {}

  std::size_t index() const noexcept { return index_; }
  std::size_t array_size() const noexcept;
  cvs::Pe& pe() noexcept { return pe_; }

  /// Asynchronous method invocation on another element.
  void send(std::size_t to, int entry, const void* data, std::size_t bytes);

  /// Invoke `entry` on every element (including self).
  void broadcast(int entry, const void* data, std::size_t bytes);

  /// Contribute to a sum reduction; when all elements of the array have
  /// contributed, the runtime delivers the total to the registered
  /// reduction client.
  void contribute(double value);

 private:
  ChareArray& array_;
  std::size_t index_;
  cvs::Pe& pe_;
};

/// Base class for user chares.
class Chare {
 public:
  virtual ~Chare() = default;

  /// Entry-method dispatch: `entry` selects the method, data is the
  /// marshalled parameters (valid only during the call).
  virtual void entry(int entry, const void* data, std::size_t bytes,
                     EntryContext& ctx) = 0;
};

/// A distributed array of chares.
class ChareArray {
 public:
  using Factory = std::function<std::unique_ptr<Chare>(std::size_t)>;
  using ReductionClient = std::function<void(double, cvs::Pe&)>;

  std::size_t size() const noexcept { return n_; }

  /// PE owning element e (static round-robin placement).
  cvs::PeRank home(std::size_t e) const {
    return static_cast<cvs::PeRank>(e % machine_->pe_count());
  }

  /// Register the callback that receives completed sum reductions (runs
  /// on PE 0).  Set before Machine::run().
  void set_reduction_client(ReductionClient fn) {
    reduction_client_ = std::move(fn);
  }

  /// Send from outside any chare (e.g. from the init function).
  void send_from(cvs::Pe& pe, std::size_t to, int entry, const void* data,
                 std::size_t bytes);

 private:
  friend class Runtime;
  friend class EntryContext;

  ChareArray(Runtime& rt, cvs::Machine& machine, std::size_t n,
             std::uint16_t id, Factory factory);

  void deliver(cvs::Pe& pe, std::size_t elem, int entry, const void* data,
               std::size_t bytes);
  void contribute(cvs::Pe& pe, double value);

  Runtime& rt_;
  cvs::Machine* machine_;
  std::size_t n_;
  std::uint16_t id_;
  std::vector<std::unique_ptr<Chare>> elements_;  // by element index

  // Reduction state (owned by PE 0's thread via messages).
  ReductionClient reduction_client_;
  double red_sum_ = 0;
  std::size_t red_count_ = 0;
};

/// Owns the chare arrays of one Machine and the Converse handler they
/// share.  Create before Machine::run(); create all arrays before run().
class Runtime {
 public:
  explicit Runtime(cvs::Machine& machine);

  /// Create an array of `n` chares; `factory(i)` builds element i.
  ChareArray& create_array(std::size_t n, ChareArray::Factory factory);

  cvs::Machine& machine() noexcept { return machine_; }

 private:
  friend class ChareArray;
  friend class EntryContext;

  cvs::Machine& machine_;
  cvs::HandlerId handler_;
  cvs::HandlerId reduce_handler_;
  std::vector<std::unique_ptr<ChareArray>> arrays_;
};

}  // namespace bgq::charm
