#include "charm/chare.hpp"

#include <cstring>
#include <stdexcept>

namespace bgq::charm {

namespace {

struct EntryHeader {
  std::uint16_t array_id;
  std::uint16_t entry;
  std::uint32_t element;
};

struct ReduceHeader {
  std::uint16_t array_id;
  std::uint16_t pad = 0;
  double value;
};

}  // namespace

// ---------------------------------------------------------------------------
// EntryContext
// ---------------------------------------------------------------------------

std::size_t EntryContext::array_size() const noexcept {
  return array_.size();
}

void EntryContext::send(std::size_t to, int entry, const void* data,
                        std::size_t bytes) {
  array_.send_from(pe_, to, entry, data, bytes);
}

void EntryContext::broadcast(int entry, const void* data,
                             std::size_t bytes) {
  for (std::size_t e = 0; e < array_.size(); ++e) {
    array_.send_from(pe_, e, entry, data, bytes);
  }
}

void EntryContext::contribute(double value) {
  array_.contribute(pe_, value);
}

// ---------------------------------------------------------------------------
// ChareArray
// ---------------------------------------------------------------------------

ChareArray::ChareArray(Runtime& rt, cvs::Machine& machine, std::size_t n,
                       std::uint16_t id, Factory factory)
    : rt_(rt), machine_(&machine), n_(n), id_(id) {
  elements_.resize(n);
  for (std::size_t e = 0; e < n; ++e) elements_[e] = factory(e);
}

void ChareArray::send_from(cvs::Pe& pe, std::size_t to, int entry,
                           const void* data, std::size_t bytes) {
  if (to >= n_) throw std::out_of_range("chare element out of range");
  cvs::Message* m =
      pe.alloc_message(sizeof(EntryHeader) + bytes, rt_.handler_);
  EntryHeader hdr{id_, static_cast<std::uint16_t>(entry),
                  static_cast<std::uint32_t>(to)};
  std::memcpy(m->payload(), &hdr, sizeof(hdr));
  if (bytes != 0) {
    std::memcpy(m->payload() + sizeof(hdr), data, bytes);
  }
  pe.send_message(home(to), m);
}

void ChareArray::deliver(cvs::Pe& pe, std::size_t elem, int entry,
                         const void* data, std::size_t bytes) {
  EntryContext ctx(*this, elem, pe);
  elements_[elem]->entry(entry, data, bytes, ctx);
}

void ChareArray::contribute(cvs::Pe& pe, double value) {
  cvs::Message* m =
      pe.alloc_message(sizeof(ReduceHeader), rt_.reduce_handler_);
  ReduceHeader hdr{id_, 0, value};
  std::memcpy(m->payload(), &hdr, sizeof(hdr));
  pe.send_message(0, m);  // reductions root on PE 0
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

Runtime::Runtime(cvs::Machine& machine) : machine_(machine) {
  handler_ = machine.register_handler([this](cvs::Pe& pe,
                                             cvs::Message* m) {
    EntryHeader hdr;
    std::memcpy(&hdr, m->payload(), sizeof(hdr));
    ChareArray& arr = *arrays_[hdr.array_id];
    arr.deliver(pe, hdr.element, hdr.entry, m->payload() + sizeof(hdr),
                m->payload_bytes() - sizeof(hdr));
    pe.free_message(m);
  });

  reduce_handler_ = machine.register_handler(
      [this](cvs::Pe& pe, cvs::Message* m) {
        ReduceHeader hdr;
        std::memcpy(&hdr, m->payload(), sizeof(hdr));
        pe.free_message(m);
        ChareArray& arr = *arrays_[hdr.array_id];
        // Runs only on PE 0: single-threaded reduction fold.
        arr.red_sum_ += hdr.value;
        if (++arr.red_count_ == arr.size()) {
          const double total = arr.red_sum_;
          arr.red_sum_ = 0;
          arr.red_count_ = 0;
          if (arr.reduction_client_) arr.reduction_client_(total, pe);
        }
      });
}

ChareArray& Runtime::create_array(std::size_t n,
                                  ChareArray::Factory factory) {
  const auto id = static_cast<std::uint16_t>(arrays_.size());
  arrays_.push_back(std::unique_ptr<ChareArray>(
      new ChareArray(*this, machine_, n, id, std::move(factory))));
  return *arrays_.back();
}

}  // namespace bgq::charm
