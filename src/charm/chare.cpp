#include "charm/chare.hpp"

#include <cstring>
#include <stdexcept>

namespace bgq::charm {

namespace {

struct EntryHeader {
  std::uint16_t array_id;
  std::uint16_t entry;
  std::uint32_t element;
};

struct ReduceHeader {
  std::uint16_t array_id;
  std::uint16_t pad = 0;
  std::uint32_t element;  ///< contributor (duplicate detection)
  double value;
};

// Checkpoint blob framing: a run of records, each
//   { array_id u16, kind u16, element u32, len u64, payload[len] }.
// kind 0 = one element's pup bytes; kind 1 = the array's in-flight
// reduction slots (saved with the reduction root's process).
struct RecordHeader {
  std::uint16_t array_id;
  std::uint16_t kind;
  std::uint32_t element;
  std::uint64_t len;
};
constexpr std::uint16_t kRecElement = 0;
constexpr std::uint16_t kRecReduction = 1;

void append_record(std::vector<std::byte>& out, std::uint16_t array_id,
                   std::uint16_t kind, std::uint32_t element,
                   const std::vector<std::byte>& payload) {
  RecordHeader h{array_id, kind, element, payload.size()};
  const auto* p = reinterpret_cast<const std::byte*>(&h);
  out.insert(out.end(), p, p + sizeof(h));
  out.insert(out.end(), payload.begin(), payload.end());
}

}  // namespace

// ---------------------------------------------------------------------------
// EntryContext
// ---------------------------------------------------------------------------

std::size_t EntryContext::array_size() const noexcept {
  return array_.size();
}

void EntryContext::send(std::size_t to, int entry, const void* data,
                        std::size_t bytes) {
  array_.send_from(pe_, to, entry, data, bytes);
}

void EntryContext::broadcast(int entry, const void* data,
                             std::size_t bytes) {
  for (std::size_t e = 0; e < array_.size(); ++e) {
    array_.send_from(pe_, e, entry, data, bytes);
  }
}

void EntryContext::contribute(double value) {
  array_.contribute(pe_, index_, value);
}

Runtime& EntryContext::runtime() noexcept { return array_.rt_; }

// ---------------------------------------------------------------------------
// ChareArray
// ---------------------------------------------------------------------------

ChareArray::ChareArray(Runtime& rt, cvs::Machine& machine, std::size_t n,
                       std::uint16_t id, Factory factory)
    : rt_(rt), machine_(&machine), n_(n), id_(id) {
  elements_.resize(n);
  for (std::size_t e = 0; e < n; ++e) elements_[e] = factory(e);
  red_vals_.assign(n, 0.0);
  red_got_.assign(n, 0);
}

void ChareArray::send_from(cvs::Pe& pe, std::size_t to, int entry,
                           const void* data, std::size_t bytes) {
  if (to >= n_) throw std::out_of_range("chare element out of range");
  cvs::Message* m =
      pe.alloc_message(sizeof(EntryHeader) + bytes, rt_.handler_);
  EntryHeader hdr{id_, static_cast<std::uint16_t>(entry),
                  static_cast<std::uint32_t>(to)};
  std::memcpy(m->payload(), &hdr, sizeof(hdr));
  if (bytes != 0) {
    std::memcpy(m->payload() + sizeof(hdr), data, bytes);
  }
  pe.send_message(home(to), m);
}

void ChareArray::deliver(cvs::Pe& pe, std::size_t elem, int entry,
                         const void* data, std::size_t bytes) {
  EntryContext ctx(*this, elem, pe);
  if (entry == kResumeEntry) {
    elements_[elem]->resume(ctx);
    return;
  }
  elements_[elem]->entry(entry, data, bytes, ctx);
}

void ChareArray::contribute(cvs::Pe& pe, std::size_t elem, double value) {
  cvs::Message* m =
      pe.alloc_message(sizeof(ReduceHeader), rt_.reduce_handler_);
  ReduceHeader hdr{id_, 0, static_cast<std::uint32_t>(elem), value};
  std::memcpy(m->payload(), &hdr, sizeof(hdr));
  // Reductions root on the lowest live PE (PE 0 until a failure).
  pe.send_message(machine_->ft_armed() ? machine_->lowest_live_pe() : 0, m);
}

void ChareArray::reduction_reset() {
  red_vals_.assign(n_, 0.0);
  red_got_.assign(n_, 0);
  red_count_ = 0;
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

Runtime::Runtime(cvs::Machine& machine) : machine_(machine) {
  handler_ = machine.register_handler([this](cvs::Pe& pe,
                                             cvs::Message* m) {
    EntryHeader hdr;
    std::memcpy(&hdr, m->payload(), sizeof(hdr));
    ChareArray& arr = *arrays_[hdr.array_id];
    arr.deliver(pe, hdr.element, hdr.entry, m->payload() + sizeof(hdr),
                m->payload_bytes() - sizeof(hdr));
    pe.free_message(m);
  });

  reduce_handler_ = machine.register_handler(
      [this](cvs::Pe& pe, cvs::Message* m) {
        ReduceHeader hdr;
        std::memcpy(&hdr, m->payload(), sizeof(hdr));
        pe.free_message(m);
        ChareArray& arr = *arrays_[hdr.array_id];
        // Runs only on the root PE: single-threaded reduction fold.
        // Per-element slots folded in index order make the total
        // independent of arrival order (bit-identical across runs) and
        // catch duplicate contributions from replayed traffic.
        if (arr.red_got_[hdr.element] != 0) {
          ++arr.red_dups_;
          return;
        }
        arr.red_got_[hdr.element] = 1;
        arr.red_vals_[hdr.element] = hdr.value;
        if (++arr.red_count_ == arr.size()) {
          double total = 0;
          for (std::size_t e = 0; e < arr.size(); ++e) {
            total += arr.red_vals_[e];
          }
          arr.reduction_reset();
          if (arr.reduction_client_) arr.reduction_client_(total, pe);
        }
      });

  if (machine_.ft_armed() && machine_.ft_manager() != nullptr) {
    machine_.ft_manager()->set_client(this);
  }
}

ChareArray& Runtime::create_array(std::size_t n,
                                  ChareArray::Factory factory) {
  const auto id = static_cast<std::uint16_t>(arrays_.size());
  arrays_.push_back(std::unique_ptr<ChareArray>(
      new ChareArray(*this, machine_, n, id, std::move(factory))));
  return *arrays_.back();
}

bool Runtime::checkpoint_due() const {
  ft::Manager* mgr = machine_.ft_manager();
  return mgr != nullptr && mgr->checkpoint_due();
}

bool Runtime::start_checkpoint() {
  ft::Manager* mgr = machine_.ft_manager();
  return mgr != nullptr && mgr->request_checkpoint();
}

std::vector<std::byte> Runtime::save(unsigned proc) {
  std::vector<std::byte> out;
  const cvs::PeRank root =
      machine_.ft_armed() ? machine_.lowest_live_pe() : 0;
  for (const auto& arr : arrays_) {
    for (std::size_t e = 0; e < arr->size(); ++e) {
      if (machine_.process_of(arr->home(e)) != proc) continue;
      ft::Pup p;
      arr->elements_[e]->pup(p);
      append_record(out, arr->id_, kRecElement,
                    static_cast<std::uint32_t>(e), p.bytes());
    }
    if (machine_.process_of(root) == proc) {
      // In-flight reduction slots travel with the root's blob: a rollback
      // must also roll back partial folds, or a re-contributed value
      // would double-count.
      ft::Pup p;
      p.vec(arr->red_vals_);
      p.vec(arr->red_got_);
      std::uint64_t cnt = arr->red_count_;
      p(cnt);
      append_record(out, arr->id_, kRecReduction, 0, p.bytes());
    }
  }
  return out;
}

void Runtime::restore(
    const std::map<unsigned, std::vector<std::byte>>& blobs) {
  // Every array's reduction state is either restored from a blob below or
  // genuinely empty at the checkpoint; reset first so stale partial folds
  // from the failed run never survive.
  for (const auto& arr : arrays_) arr->reduction_reset();
  for (const auto& [proc, blob] : blobs) {
    std::size_t pos = 0;
    while (pos + sizeof(RecordHeader) <= blob.size()) {
      RecordHeader h;
      std::memcpy(&h, blob.data() + pos, sizeof(h));
      pos += sizeof(h);
      if (pos + h.len > blob.size()) {
        throw std::runtime_error("charm: truncated checkpoint record");
      }
      std::vector<std::byte> payload(blob.begin() + pos,
                                     blob.begin() + pos + h.len);
      pos += h.len;
      ChareArray& arr = *arrays_.at(h.array_id);
      ft::Pup p(payload);
      if (h.kind == kRecElement) {
        arr.elements_.at(h.element)->pup(p);
      } else if (h.kind == kRecReduction) {
        p.vec(arr.red_vals_);
        p.vec(arr.red_got_);
        std::uint64_t cnt = 0;
        p(cnt);
        arr.red_count_ = static_cast<std::size_t>(cnt);
      }
    }
  }
}

void Runtime::resume(cvs::Pe& pe) {
  // Re-kick every element.  Coordinator elements restart the app's
  // message flow from their (restored) step; everyone else's default
  // resume() is a no-op message.
  for (const auto& arr : arrays_) {
    for (std::size_t e = 0; e < arr->size(); ++e) {
      arr->send_from(pe, e, kResumeEntry, nullptr, 0);
    }
  }
}

}  // namespace bgq::charm
