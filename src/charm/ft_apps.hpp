// Checkpoint-aware mini-apps for the fault-tolerance tests and benches.
//
// Two small chare-array programs written the way a Charm++ user writes a
// fault-tolerant app: all mutable state lives in pup()-able elements, the
// app advances in globally-sequenced steps driven by a coordinator
// element through reductions, and at every step boundary the coordinator
// asks the runtime whether a checkpoint is due.  Both apps are strictly
// deterministic — every iteration is a pure function of (state, iter) —
// so a run that crashes, rolls back and replays must end bit-identical
// to a crash-free run; the tests compare FNV-1a digests of the final
// element state to prove it.
//
//   FtFft2D  — an N x N complex grid row-decomposed over R elements; each
//              step perturbs one cell, runs a forward+inverse 2-D FFT
//              (two block-transpose exchanges), and reduces a checksum.
//   FtMdRing — R patches of particles on a 1-D ring; each step exchanges
//              position halos with both neighbours, applies a smooth
//              bounded pair force, integrates, and reduces the energy.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "charm/chare.hpp"
#include "fft/fft1d.hpp"

namespace bgq::charm {

/// FNV-1a over raw bytes — the digest the determinism tests compare.
inline std::uint64_t fnv1a(std::uint64_t h, const void* data,
                           std::size_t bytes) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

// ---------------------------------------------------------------------------
// FtFft2D
// ---------------------------------------------------------------------------

class FtFft2D {
 public:
  /// `n` grid edge (2,3,5-smooth), `elems` must divide n, `iters` steps.
  FtFft2D(Runtime& rt, std::size_t n, std::size_t elems,
          std::uint32_t iters);

  /// Kick iteration 0.  Call from exactly one PE's init function.
  void start(cvs::Pe& pe) { arr_->send_from(pe, 0, kKick, nullptr, 0); }

  /// Sum-reduction total of the final iteration (valid after run()).
  double final_total() const { return final_total_.load(); }
  bool finished() const { return done_.load(); }

  /// FNV-1a digest of every element's grid rows, in element order.
  std::uint64_t digest() const;

  /// Per-element view for multi-process runs, where a rank's digest() is
  /// only meaningful over locally-homed elements: the launcher merges the
  /// ranks' per-element digests and folds them in element order, which
  /// reproduces digest() bit-for-bit.
  std::size_t element_count() const { return elems_; }
  cvs::PeRank element_home(std::size_t e) const { return arr_->home(e); }
  std::uint64_t element_digest(std::size_t e) const;

 private:
  class Elem;

  // Entry ids.
  static constexpr int kKick = 0;     ///< to element 0: begin iteration 0
  static constexpr int kStep = 1;     ///< broadcast: begin an iteration
  static constexpr int kBlockA = 2;   ///< forward transpose block
  static constexpr int kBlockB = 3;   ///< inverse transpose block
  static constexpr int kAdvance = 4;  ///< to element 0: reduction landed

  struct BlockHdr {
    std::uint32_t iter;
    std::uint32_t src;
  };

  Runtime& rt_;
  ChareArray* arr_ = nullptr;
  const std::size_t n_;
  const std::size_t elems_;
  const std::size_t rpe_;  ///< rows per element
  const std::uint32_t iters_;
  std::vector<Elem*> raw_;  ///< owned by the array; for digest()
  std::atomic<double> final_total_{0.0};
  std::atomic<bool> done_{false};
};

class FtFft2D::Elem : public Chare {
 public:
  Elem(FtFft2D& app, std::size_t index)
      : app_(app),
        index_(index),
        plan_(app.n_),
        rows_(app.rpe_ * app.n_),
        recv_a_(app.rpe_ * app.n_),
        recv_b_(app.rpe_ * app.n_) {
    // Deterministic nontrivial initial grid.
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const auto g = static_cast<double>(index_ * rows_.size() + i);
      rows_[i] = {std::sin(0.37 * g), std::cos(0.73 * g)};
    }
  }

  void entry(int entry, const void* data, std::size_t bytes,
             EntryContext& ctx) override {
    switch (entry) {
      case kKick:
        ctx.broadcast(kStep, &iter_, sizeof(iter_));
        return;
      case kStep: {
        std::uint32_t it;
        std::memcpy(&it, data, sizeof(it));
        if (it != iter_) return;  // replayed kick; state already past it
        begin_step(ctx);
        return;
      }
      case kBlockA:
      case kBlockB:
        on_block(entry, data, bytes, ctx);
        return;
      case kAdvance: {
        double total;
        std::memcpy(&total, data, sizeof(total));
        advance(total, ctx);
        return;
      }
      default:
        return;
    }
  }

  void pup(ft::Pup& p) override {
    // Only step-boundary state: checkpoints run quiesced, so the phase
    // buffers and counters are always empty/zero when packing.  A restore
    // may land on an element caught mid-phase by the crash, so unpacking
    // also clears the transient phase state the blob doesn't carry.
    p.vec(rows_);
    p(iter_);
    if (p.unpacking()) {
      got_a_ = got_b_ = 0;
      a_done_ = false;
    }
  }

  void resume(EntryContext& ctx) override {
    // Post-checkpoint / post-rollback re-kick: the coordinator restarts
    // the current iteration from (restored) boundary state.
    if (index_ == 0 && iter_ < app_.iters_) {
      ctx.broadcast(kStep, &iter_, sizeof(iter_));
    }
  }

  std::uint64_t digest_into(std::uint64_t h) const {
    h = fnv1a(h, rows_.data(), rows_.size() * sizeof(fft::cplx));
    return fnv1a(h, &iter_, sizeof(iter_));
  }

 private:
  void begin_step(EntryContext& ctx) {
    if (index_ == 0) {
      // The per-iteration perturbation that makes steps non-idempotent:
      // replaying an un-rolled-back iteration would change the digest.
      const double f = 1e-3 * (iter_ + 1) *
                       (static_cast<double>(iter_ % 7) - 3.0);
      rows_[0] += fft::cplx{f, -f};
    }
    a_done_ = false;
    plan_.forward_many(rows_.data(), app_.rpe_);
    send_blocks(ctx, kBlockA);
  }

  /// Ship the rpe x rpe block destined for each element: the transpose
  /// both directions use (the map is an involution).
  void send_blocks(EntryContext& ctx, int entry) {
    const std::size_t rpe = app_.rpe_;
    std::vector<std::byte> buf(sizeof(BlockHdr) +
                               rpe * rpe * sizeof(fft::cplx));
    for (std::size_t d = 0; d < app_.elems_; ++d) {
      BlockHdr hdr{iter_, static_cast<std::uint32_t>(index_)};
      std::memcpy(buf.data(), &hdr, sizeof(hdr));
      auto* blk = reinterpret_cast<fft::cplx*>(buf.data() + sizeof(hdr));
      for (std::size_t r = 0; r < rpe; ++r) {
        for (std::size_t c = 0; c < rpe; ++c) {
          blk[r * rpe + c] = rows_[r * app_.n_ + d * rpe + c];
        }
      }
      ctx.send(d, entry, buf.data(), buf.size());
    }
  }

  void on_block(int entry, const void* data, std::size_t bytes,
                EntryContext& ctx) {
    BlockHdr hdr;
    std::memcpy(&hdr, data, sizeof(hdr));
    if (hdr.iter != iter_) return;  // stale replay
    const std::size_t rpe = app_.rpe_;
    const auto* blk = reinterpret_cast<const fft::cplx*>(
        static_cast<const std::byte*>(data) + sizeof(hdr));
    (void)bytes;
    std::vector<fft::cplx>& dst = entry == kBlockA ? recv_a_ : recv_b_;
    for (std::size_t r = 0; r < rpe; ++r) {
      for (std::size_t c = 0; c < rpe; ++c) {
        // Transposed placement: sender row r lands in column slot r of
        // the sender's stripe, sender column c becomes our row c.
        dst[c * app_.n_ + hdr.src * rpe + r] = blk[r * rpe + c];
      }
    }
    if (entry == kBlockA) {
      if (++got_a_ == app_.elems_) {
        a_done_ = true;
        rows_ = recv_a_;
        // Second-dimension forward completes the 2-D transform; the
        // inverse of that dimension runs right here before transposing
        // back (no spectral-domain work in this mini-app).
        plan_.forward_many(rows_.data(), app_.rpe_);
        plan_.backward_many(rows_.data(), app_.rpe_);
        send_blocks(ctx, kBlockB);
        if (got_b_ == app_.elems_) finish_step(ctx);
      }
    } else {
      if (++got_b_ == app_.elems_ && a_done_) finish_step(ctx);
    }
  }

  void finish_step(EntryContext& ctx) {
    rows_ = recv_b_;
    plan_.backward_many(rows_.data(), app_.rpe_);
    const double s = 1.0 / static_cast<double>(app_.n_);
    double sum = 0;
    for (auto& v : rows_) {
      v *= s * s;  // undo the two unscaled backward passes
      sum += v.real() + v.imag();
    }
    got_a_ = got_b_ = 0;
    a_done_ = false;
    ++iter_;
    ctx.contribute(sum);
  }

  void advance(double total, EntryContext& ctx) {
    if (iter_ >= app_.iters_) {
      app_.final_total_.store(total);
      app_.done_.store(true);
      ctx.pe().exit_all();
      return;
    }
    if (app_.rt_.checkpoint_due() && app_.rt_.start_checkpoint()) {
      return;  // resume() re-kicks this iteration after the commit
    }
    ctx.broadcast(kStep, &iter_, sizeof(iter_));
  }

  FtFft2D& app_;
  const std::size_t index_;
  fft::Fft1D plan_;
  std::vector<fft::cplx> rows_;
  std::vector<fft::cplx> recv_a_;
  std::vector<fft::cplx> recv_b_;
  std::uint32_t iter_ = 0;
  std::uint32_t got_a_ = 0;
  std::uint32_t got_b_ = 0;
  bool a_done_ = false;

  friend class FtFft2D;
};

inline FtFft2D::FtFft2D(Runtime& rt, std::size_t n, std::size_t elems,
                        std::uint32_t iters)
    : rt_(rt), n_(n), elems_(elems), rpe_(n / elems), iters_(iters) {
  raw_.resize(elems_);
  arr_ = &rt_.create_array(elems_, [this](std::size_t i) {
    auto e = std::make_unique<Elem>(*this, i);
    raw_[i] = e.get();
    return e;
  });
  arr_->set_reduction_client([this](double total, cvs::Pe& pe) {
    arr_->send_from(pe, 0, kAdvance, &total, sizeof(total));
  });
}

inline std::uint64_t FtFft2D::digest() const {
  std::uint64_t h = 14695981039346656037ull;
  for (const Elem* e : raw_) h = e->digest_into(h);
  return h;
}

inline std::uint64_t FtFft2D::element_digest(std::size_t e) const {
  return raw_[e]->digest_into(14695981039346656037ull);
}

// ---------------------------------------------------------------------------
// FtMdRing
// ---------------------------------------------------------------------------

class FtMdRing {
 public:
  FtMdRing(Runtime& rt, std::size_t patches, std::size_t particles,
           std::uint32_t steps);

  void start(cvs::Pe& pe) { arr_->send_from(pe, 0, kKick, nullptr, 0); }

  double final_energy() const { return final_energy_.load(); }
  bool finished() const { return done_.load(); }
  std::uint64_t digest() const;

  /// Per-element view (see FtFft2D::element_digest).
  std::size_t element_count() const { return patches_; }
  cvs::PeRank element_home(std::size_t e) const { return arr_->home(e); }
  std::uint64_t element_digest(std::size_t e) const;

 private:
  class Patch;

  static constexpr int kKick = 0;
  static constexpr int kStep = 1;
  static constexpr int kHalo = 2;     ///< neighbour positions
  static constexpr int kAdvance = 3;  ///< to patch 0: reduction landed

  struct HaloHdr {
    std::uint32_t step;
    std::uint32_t src;
  };

  Runtime& rt_;
  ChareArray* arr_ = nullptr;
  const std::size_t patches_;
  const std::size_t m_;  ///< particles per patch
  const std::uint32_t steps_;
  std::vector<Patch*> raw_;
  std::atomic<double> final_energy_{0.0};
  std::atomic<bool> done_{false};
};

class FtMdRing::Patch : public Chare {
 public:
  Patch(FtMdRing& app, std::size_t index)
      : app_(app), index_(index), pos_(app.m_), vel_(app.m_) {
    for (std::size_t i = 0; i < app_.m_; ++i) {
      const auto g = static_cast<double>(index_ * app_.m_ + i);
      pos_[i] = static_cast<double>(index_) + 0.9 * (i + 0.5) /
                    static_cast<double>(app_.m_);
      vel_[i] = 0.01 * std::sin(1.7 * g);
    }
  }

  void entry(int entry, const void* data, std::size_t bytes,
             EntryContext& ctx) override {
    switch (entry) {
      case kKick:
        ctx.broadcast(kStep, &step_, sizeof(step_));
        return;
      case kStep: {
        std::uint32_t s;
        std::memcpy(&s, data, sizeof(s));
        if (s != step_) return;
        send_halos(ctx);
        return;
      }
      case kHalo:
        on_halo(data, bytes, ctx);
        return;
      case kAdvance: {
        double total;
        std::memcpy(&total, data, sizeof(total));
        advance(total, ctx);
        return;
      }
      default:
        return;
    }
  }

  void pup(ft::Pup& p) override {
    p.vec(pos_);
    p.vec(vel_);
    p(step_);
    if (p.unpacking()) {
      // Mid-step halves of a crashed exchange must not leak into the
      // replayed step.
      halo_l_.clear();
      halo_r_.clear();
    }
  }

  void resume(EntryContext& ctx) override {
    if (index_ == 0 && step_ < app_.steps_) {
      ctx.broadcast(kStep, &step_, sizeof(step_));
    }
  }

  std::uint64_t digest_into(std::uint64_t h) const {
    h = fnv1a(h, pos_.data(), pos_.size() * sizeof(double));
    h = fnv1a(h, vel_.data(), vel_.size() * sizeof(double));
    return fnv1a(h, &step_, sizeof(step_));
  }

 private:
  void send_halos(EntryContext& ctx) {
    const std::size_t r = app_.patches_;
    std::vector<std::byte> buf(sizeof(HaloHdr) + app_.m_ * sizeof(double));
    HaloHdr hdr{step_, static_cast<std::uint32_t>(index_)};
    std::memcpy(buf.data(), &hdr, sizeof(hdr));
    std::memcpy(buf.data() + sizeof(hdr), pos_.data(),
                app_.m_ * sizeof(double));
    ctx.send((index_ + 1) % r, kHalo, buf.data(), buf.size());
    ctx.send((index_ + r - 1) % r, kHalo, buf.data(), buf.size());
  }

  void on_halo(const void* data, std::size_t bytes, EntryContext& ctx) {
    HaloHdr hdr;
    std::memcpy(&hdr, data, sizeof(hdr));
    if (hdr.step != step_) return;
    (void)bytes;
    const auto* p = reinterpret_cast<const double*>(
        static_cast<const std::byte*>(data) + sizeof(hdr));
    const bool right = hdr.src == (index_ + 1) % app_.patches_;
    std::vector<double>& dst = right ? halo_r_ : halo_l_;
    dst.assign(p, p + app_.m_);
    if (halo_l_.size() == app_.m_ && halo_r_.size() == app_.m_) {
      integrate(ctx);
    }
  }

  /// Smooth bounded pair force f(dx) = dx / (1 + dx^2)^2: deterministic,
  /// no cutoff branches, LJ-like shape near the origin.
  static double pair_force(double dx) noexcept {
    const double d = 1.0 + dx * dx;
    return dx / (d * d);
  }

  void integrate(EntryContext& ctx) {
    constexpr double kDt = 1e-3;
    double energy = 0;
    for (std::size_t i = 0; i < app_.m_; ++i) {
      double f = 0;
      for (std::size_t j = 0; j < app_.m_; ++j) {
        if (j != i) f += pair_force(pos_[i] - pos_[j]);
        f += pair_force(pos_[i] - halo_l_[j]);
        f += pair_force(pos_[i] - halo_r_[j]);
      }
      vel_[i] += kDt * f;
      pos_[i] += kDt * vel_[i];
      energy += 0.5 * vel_[i] * vel_[i];
    }
    halo_l_.clear();
    halo_r_.clear();
    ++step_;
    ctx.contribute(energy);
  }

  void advance(double total, EntryContext& ctx) {
    if (step_ >= app_.steps_) {
      app_.final_energy_.store(total);
      app_.done_.store(true);
      ctx.pe().exit_all();
      return;
    }
    if (app_.rt_.checkpoint_due() && app_.rt_.start_checkpoint()) {
      return;
    }
    ctx.broadcast(kStep, &step_, sizeof(step_));
  }

  FtMdRing& app_;
  const std::size_t index_;
  std::vector<double> pos_;
  std::vector<double> vel_;
  std::vector<double> halo_l_;  ///< empty = not yet arrived this step
  std::vector<double> halo_r_;
  std::uint32_t step_ = 0;

  friend class FtMdRing;
};

inline FtMdRing::FtMdRing(Runtime& rt, std::size_t patches,
                          std::size_t particles, std::uint32_t steps)
    : rt_(rt), patches_(patches), m_(particles), steps_(steps) {
  if (patches < 3) {
    // With 2 patches both halos come from the same neighbour and the
    // left/right distinction collapses.
    throw std::invalid_argument("FtMdRing needs at least 3 patches");
  }
  raw_.resize(patches_);
  arr_ = &rt_.create_array(patches_, [this](std::size_t i) {
    auto p = std::make_unique<Patch>(*this, i);
    raw_[i] = p.get();
    return p;
  });
  arr_->set_reduction_client([this](double total, cvs::Pe& pe) {
    arr_->send_from(pe, 0, kAdvance, &total, sizeof(total));
  });
}

inline std::uint64_t FtMdRing::digest() const {
  std::uint64_t h = 14695981039346656037ull;
  for (const Patch* p : raw_) h = p->digest_into(h);
  return h;
}

inline std::uint64_t FtMdRing::element_digest(std::size_t e) const {
  return raw_[e]->digest_into(14695981039346656037ull);
}

}  // namespace bgq::charm
