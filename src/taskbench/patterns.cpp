#include "taskbench/patterns.hpp"

#include <algorithm>

namespace bgq::taskbench {

namespace {

/// splitmix64 — the stateless mixer used wherever the pattern needs
/// "random" but reproducible choices.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint32_t log2_ceil(std::uint32_t w) noexcept {
  std::uint32_t b = 0;
  while ((1u << b) < w) ++b;
  return b == 0 ? 1 : b;
}

void finish(std::vector<std::uint32_t>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

}  // namespace

const char* pattern_name(Pattern p) noexcept {
  switch (p) {
    case Pattern::kStencil: return "stencil";
    case Pattern::kFft: return "fft";
    case Pattern::kTree: return "tree";
    case Pattern::kRandom: return "random";
    case Pattern::kSpread: return "spread";
  }
  return "?";
}

std::optional<Pattern> parse_pattern(std::string_view name) noexcept {
  for (Pattern p : kAllPatterns) {
    if (name == pattern_name(p)) return p;
  }
  return std::nullopt;
}

std::vector<std::uint32_t> dependencies(Pattern p, std::uint32_t width,
                                        std::uint32_t step,
                                        std::uint32_t task) {
  std::vector<std::uint32_t> deps;
  if (step == 0 || width == 0 || task >= width) return deps;
  switch (p) {
    case Pattern::kStencil:
      if (task > 0) deps.push_back(task - 1);
      deps.push_back(task);
      if (task + 1 < width) deps.push_back(task + 1);
      break;
    case Pattern::kFft: {
      deps.push_back(task);
      const std::uint32_t partner =
          task ^ (1u << ((step - 1) % log2_ceil(width)));
      if (partner < width) deps.push_back(partner);
      break;
    }
    case Pattern::kTree:
      if (step % 2 == 1) {
        // Fan-in: children fold upward; tasks past the fold have no
        // dependencies and fire on the step broadcast alone.
        if (2 * task < width) deps.push_back(2 * task);
        if (2 * task + 1 < width) deps.push_back(2 * task + 1);
      } else {
        deps.push_back(task / 2);  // fan-out: parent re-seeds children
      }
      break;
    case Pattern::kRandom:
      deps.push_back(task);  // self-dep keeps every chain alive
      for (std::uint32_t s = 0; s < 2; ++s) {
        const std::uint64_t h =
            mix64((std::uint64_t{step} << 40) ^ (std::uint64_t{task} << 8) ^
                  s);
        deps.push_back(static_cast<std::uint32_t>(h % width));
      }
      break;
    case Pattern::kSpread: {
      deps.push_back(task);
      const std::uint32_t stride = width / 3 == 0 ? 1 : width / 3;
      for (std::uint32_t s = 1; s <= 2; ++s) {
        deps.push_back((task + step + s * stride) % width);
      }
      break;
    }
  }
  finish(deps);
  return deps;
}

std::vector<std::uint32_t> dependents(Pattern p, std::uint32_t width,
                                      std::uint32_t step,
                                      std::uint32_t task) {
  // The patterns are cheap pure functions over a small width, so the
  // inverse is an exact scan — no chance of drifting from dependencies().
  std::vector<std::uint32_t> out;
  for (std::uint32_t j = 0; j < width; ++j) {
    const auto deps = dependencies(p, width, step + 1, j);
    if (std::binary_search(deps.begin(), deps.end(), task)) out.push_back(j);
  }
  return out;
}

std::uint64_t message_count(Pattern p, std::uint32_t width,
                            std::uint32_t steps) {
  std::uint64_t n = 0;
  for (std::uint32_t t = 1; t < steps; ++t) {
    for (std::uint32_t j = 0; j < width; ++j) {
      n += dependencies(p, width, t, j).size();
    }
  }
  return n;
}

}  // namespace bgq::taskbench
