// The Task Bench conformance/overhead runner: one chare element per
// task-column, advancing through the dependence pattern in globally
// sequenced steps.
//
// A task at step t executes once (a) the coordinator has broadcast step
// t and (b) the outputs of all its step-(t-1) dependencies have arrived.
// Executing means: run `grain` units of a fixed deterministic kernel,
// fold the received payload digests into the task state *in dependency
// order* (so the state is independent of message arrival order), ship
// the new output to every step-(t+1) dependent, and contribute the
// state digest to the step reduction.  Every step of every task is a
// pure function of (state, step), which is what makes the end-of-run
// digest comparable across machine configurations: aggregated vs
// unaggregated runs — or crash-free vs rollback-replayed runs — must be
// bit-identical.
//
// Like the ft_apps, all mutable state lives in pup()-able elements and
// the coordinator offers the runtime a checkpoint at each step boundary,
// so the same program doubles as a crash-recovery conformance test.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <vector>

#include "charm/chare.hpp"
#include "charm/ft_apps.hpp"  // fnv1a
#include "common/timing.hpp"
#include "taskbench/patterns.hpp"

namespace bgq::taskbench {

struct Params {
  Pattern pattern = Pattern::kStencil;
  std::uint32_t width = 16;        ///< tasks per step (chare elements)
  std::uint32_t steps = 8;         ///< dependence-graph depth
  std::uint32_t payload_bytes = 32;///< task output size on the wire
  std::uint32_t grain = 0;         ///< kernel iterations per task
};

class TaskBenchApp {
 public:
  TaskBenchApp(charm::Runtime& rt, Params prm);

  /// Kick step 0.  Call from exactly one PE's init function.
  void start(cvs::Pe& pe) { arr_->send_from(pe, 0, kKick, nullptr, 0); }

  bool finished() const { return done_.load(); }

  /// Final-step reduction total: the sum of every task's 32-bit state
  /// digest — exact in a double, so bit-comparable across runs.
  double final_total() const { return final_total_.load(); }

  /// FNV-1a fold of every task's (state, step), in task order.
  std::uint64_t digest() const;

  // Communication/work accounting for the overhead report.
  std::uint64_t data_messages() const { return data_msgs_.load(); }
  std::uint64_t data_payload_bytes() const { return data_bytes_.load(); }
  std::uint64_t busy_ns() const { return busy_ns_.load(); }
  std::uint64_t stale_drops() const { return stale_drops_.load(); }

 private:
  class Task;

  static constexpr int kKick = 0;     ///< to task 0: begin step 0
  static constexpr int kStep = 1;     ///< broadcast: step barrier release
  static constexpr int kData = 2;     ///< a dependency's output payload
  static constexpr int kAdvance = 3;  ///< to task 0: reduction landed

  struct DataHdr {
    std::uint32_t consume_step;  ///< step whose execution eats this
    std::uint32_t src;           ///< producing task
  };

  charm::Runtime& rt_;
  charm::ChareArray* arr_ = nullptr;
  const Params prm_;
  std::vector<Task*> raw_;  ///< owned by the array; for digest()
  std::atomic<double> final_total_{0.0};
  std::atomic<bool> done_{false};
  std::atomic<std::uint64_t> data_msgs_{0};
  std::atomic<std::uint64_t> data_bytes_{0};
  std::atomic<std::uint64_t> busy_ns_{0};
  std::atomic<std::uint64_t> stale_drops_{0};
};

class TaskBenchApp::Task : public charm::Chare {
 public:
  Task(TaskBenchApp& app, std::size_t index)
      : app_(app),
        index_(static_cast<std::uint32_t>(index)),
        state_(charm::fnv1a(14695981039346656037ull, &index_,
                            sizeof(index_))) {}

  void entry(int entry, const void* data, std::size_t bytes,
             charm::EntryContext& ctx) override {
    switch (entry) {
      case kKick:
        ctx.broadcast(kStep, &step_, sizeof(step_));
        return;
      case kStep: {
        std::uint32_t s;
        std::memcpy(&s, data, sizeof(s));
        if (s != step_) return;  // replayed kick; already past it
        started_ = true;
        Bank& b = bank_for(step_);
        if (b.arrived == b.deps.size()) execute(ctx);
        return;
      }
      case kData:
        on_data(data, bytes, ctx);
        return;
      case kAdvance: {
        double total;
        std::memcpy(&total, data, sizeof(total));
        advance(total, ctx);
        return;
      }
      default:
        return;
    }
  }

  void pup(ft::Pup& p) override {
    // Only step-boundary state checkpoints; a restore may land on a task
    // caught mid-step by the crash, so unpacking clears the transient
    // receive banks the blob doesn't carry.
    p(state_);
    p(step_);
    if (p.unpacking()) {
      banks_[0] = Bank{};
      banks_[1] = Bank{};
      started_ = false;
    }
  }

  void resume(charm::EntryContext& ctx) override {
    // The restore cleared the receive banks, but the inputs for step_
    // were shipped during step_-1 execution — before the checkpoint.
    // Every output is a pure function of the checkpointed state, so each
    // task regenerates and re-ships them; the banks refill exactly as
    // they stood when the checkpoint committed.
    ship_outputs(ctx);
    if (index_ == 0 && step_ < app_.prm_.steps) {
      ctx.broadcast(kStep, &step_, sizeof(step_));
    }
  }

  std::uint64_t digest_into(std::uint64_t h) const {
    h = charm::fnv1a(h, &state_, sizeof(state_));
    return charm::fnv1a(h, &step_, sizeof(step_));
  }

 private:
  /// Per-consume-step receive state.  At most two steps are in flight at
  /// once — the barrier reduction for step t completes before anyone
  /// executes t+1 and ships t+2 data — so two parity-indexed banks
  /// suffice.
  struct Bank {
    std::uint32_t step = UINT32_MAX;
    std::vector<std::uint32_t> deps;       ///< sorted dependency list
    std::vector<std::uint64_t> slot;       ///< payload digest per dep
    std::vector<std::uint8_t> got;
    std::uint32_t arrived = 0;
  };

  Bank& bank_for(std::uint32_t s) {
    Bank& b = banks_[s % 2];
    if (b.step != s) {
      b.step = s;
      b.deps = dependencies(app_.prm_.pattern, app_.prm_.width, s, index_);
      b.slot.assign(b.deps.size(), 0);
      b.got.assign(b.deps.size(), 0);
      b.arrived = 0;
    }
    return b;
  }

  void on_data(const void* data, std::size_t bytes,
               charm::EntryContext& ctx) {
    DataHdr hdr;
    std::memcpy(&hdr, data, sizeof(hdr));
    // Only the current step (still collecting) and the next (senders run
    // ahead of the barrier) are live; anything else is pre-rollback
    // replay or a duplicate past its window.
    if (hdr.consume_step != step_ && hdr.consume_step != step_ + 1) {
      app_.stale_drops_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Bank& b = bank_for(hdr.consume_step);
    const auto it =
        std::lower_bound(b.deps.begin(), b.deps.end(), hdr.src);
    if (it == b.deps.end() || *it != hdr.src) return;  // not a dep: drop
    const auto slot = static_cast<std::size_t>(it - b.deps.begin());
    if (b.got[slot] != 0) {  // replayed duplicate
      app_.stale_drops_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    b.got[slot] = 1;
    b.slot[slot] = charm::fnv1a(
        14695981039346656037ull,
        static_cast<const std::byte*>(data) + sizeof(hdr),
        bytes - sizeof(hdr));
    ++b.arrived;
    if (hdr.consume_step == step_ && started_ &&
        b.arrived == b.deps.size()) {
      execute(ctx);
    }
  }

  void execute(charm::EntryContext& ctx) {
    Bank& b = bank_for(step_);
    // The fixed task kernel: `grain` LCG rounds over the state.  Timed so
    // the bench can subtract compute from elapsed; the timer never feeds
    // back into the state, so timing cannot perturb the digest.
    const std::uint64_t t0 = now_ns();
    std::uint64_t x = state_;
    for (std::uint32_t i = 0; i < app_.prm_.grain; ++i) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
    }
    app_.busy_ns_.fetch_add(now_ns() - t0, std::memory_order_relaxed);
    state_ ^= x;
    state_ = charm::fnv1a(state_, &step_, sizeof(step_));
    for (std::size_t i = 0; i < b.slot.size(); ++i) {
      state_ = charm::fnv1a(state_, &b.slot[i], sizeof(b.slot[i]));
    }
    banks_[step_ % 2] = Bank{};
    started_ = false;

    ++step_;
    ship_outputs(ctx);
    // Truncated 32-bit digest: W of them sum exactly in a double.
    ctx.contribute(
        static_cast<double>(static_cast<std::uint32_t>(state_)));
  }

  /// Ship this task's step_-1 output to every step_ consumer.  A pure
  /// function of (state_, step_), so a post-rollback resume() re-sends
  /// byte-identical payloads.
  void ship_outputs(charm::EntryContext& ctx) {
    if (step_ == 0 || step_ >= app_.prm_.steps) return;
    const std::uint32_t nbytes = app_.prm_.payload_bytes;
    std::vector<std::byte> buf(sizeof(DataHdr) + nbytes);
    DataHdr hdr{step_, index_};
    std::memcpy(buf.data(), &hdr, sizeof(hdr));
    for (std::uint32_t i = 0; i < nbytes; ++i) {
      buf[sizeof(hdr) + i] = static_cast<std::byte>(
          (state_ >> ((i % 8) * 8)) ^ (std::uint64_t{i} * 131));
    }
    const auto outs =
        dependents(app_.prm_.pattern, app_.prm_.width, step_ - 1, index_);
    for (std::uint32_t d : outs) {
      ctx.send(d, kData, buf.data(), buf.size());
    }
    app_.data_msgs_.fetch_add(outs.size(), std::memory_order_relaxed);
    app_.data_bytes_.fetch_add(
        static_cast<std::uint64_t>(outs.size()) * buf.size(),
        std::memory_order_relaxed);
  }

  void advance(double total, charm::EntryContext& ctx) {
    if (step_ >= app_.prm_.steps) {
      app_.final_total_.store(total);
      app_.done_.store(true);
      ctx.pe().exit_all();
      return;
    }
    if (app_.rt_.checkpoint_due() && app_.rt_.start_checkpoint()) {
      return;  // resume() re-kicks this step after the commit
    }
    ctx.broadcast(kStep, &step_, sizeof(step_));
  }

  TaskBenchApp& app_;
  const std::uint32_t index_;
  std::uint64_t state_;
  std::uint32_t step_ = 0;
  bool started_ = false;  ///< kStep for step_ has arrived
  Bank banks_[2];

  friend class TaskBenchApp;
};

inline TaskBenchApp::TaskBenchApp(charm::Runtime& rt, Params prm)
    : rt_(rt), prm_(prm) {
  raw_.resize(prm_.width);
  arr_ = &rt_.create_array(prm_.width, [this](std::size_t i) {
    auto t = std::make_unique<Task>(*this, i);
    raw_[i] = t.get();
    return t;
  });
  arr_->set_reduction_client([this](double total, cvs::Pe& pe) {
    arr_->send_from(pe, 0, kAdvance, &total, sizeof(total));
  });
}

inline std::uint64_t TaskBenchApp::digest() const {
  std::uint64_t h = 14695981039346656037ull;
  for (const Task* t : raw_) h = t->digest_into(h);
  return h;
}

}  // namespace bgq::taskbench
