// Task Bench-style dependence patterns (Slaughter et al., SC'20).
//
// Task Bench parameterizes a task graph as a grid: `width` tasks per
// step, `steps` steps, and a *dependence pattern* that says which tasks
// of step t-1 each task of step t consumes.  Running the same patterns
// over different runtime configurations isolates the runtime's
// per-message overhead from the application: the task work is a fixed
// deterministic kernel, so any wall-clock difference is communication.
//
// Every pattern here is a pure function of (pattern, width, step, task):
// sender and receiver sides compute identical lists with no
// coordination, and a replay after a rollback recomputes the same graph.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace bgq::taskbench {

enum class Pattern : std::uint8_t {
  kStencil,  ///< 1-D 3-point stencil (clamped at the edges)
  kFft,      ///< butterfly: partner distance doubles each step (mod log2)
  kTree,     ///< alternating binary fan-in / fan-out sweeps
  kRandom,   ///< self + seeded pseudo-random picks (varies per step)
  kSpread,   ///< self + strided far-away picks (shifts per step)
};

inline constexpr Pattern kAllPatterns[] = {
    Pattern::kStencil, Pattern::kFft, Pattern::kTree, Pattern::kRandom,
    Pattern::kSpread};

const char* pattern_name(Pattern p) noexcept;
std::optional<Pattern> parse_pattern(std::string_view name) noexcept;

/// Tasks of step `step-1` whose output task (`step`, `task`) consumes.
/// Step 0 has no dependencies.  Sorted, duplicate-free, all < width.
std::vector<std::uint32_t> dependencies(Pattern p, std::uint32_t width,
                                        std::uint32_t step,
                                        std::uint32_t task);

/// Tasks of step `step+1` that consume the output of (`step`, `task`) —
/// the inverse of dependencies(), which is what a sender needs.
std::vector<std::uint32_t> dependents(Pattern p, std::uint32_t width,
                                      std::uint32_t step,
                                      std::uint32_t task);

/// Total point-to-point messages a (width x steps) run of `p` sends:
/// the sum of every task's dependency count over steps 1..steps-1.
std::uint64_t message_count(Pattern p, std::uint32_t width,
                            std::uint32_t steps);

}  // namespace bgq::taskbench
