// Summary exporter: reduce a flushed trace to per-track statistics and a
// machine-readable JSON report.  Layered on common/stats.hpp — the same
// RunningStats the benches already use — so a bench can print its table
// from exactly the numbers it serializes.
#pragma once

#include <array>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "trace/json.hpp"
#include "trace/registry.hpp"
#include "trace/session.hpp"

namespace bgq::trace {

/// A closed span reconstructed from a begin/end pair.
struct Span {
  std::uint64_t t0, t1;
  std::uint32_t arg;
  EventKind begin_kind;
  std::uint64_t duration_ns() const noexcept { return t1 - t0; }
};

/// Reconstruct the spans of one track opened by `begin` (matched with
/// `end_of(begin)`), in completion order.  Nested pairs of the same kind
/// match innermost-first; unmatched begins/ends are ignored.
inline std::vector<Span> extract_spans(const Track& track, EventKind begin) {
  std::vector<Span> out;
  std::vector<Event> open;
  const EventKind end = end_of(begin);
  for (const Event& e : track.events) {
    if (e.kind == begin) {
      open.push_back(e);
    } else if (e.kind == end && !open.empty()) {
      out.push_back({open.back().t_ns, e.t_ns, open.back().arg, begin});
      open.pop_back();
    }
  }
  return out;
}

/// Per-track reduction.
struct TrackSummary {
  std::string name;
  std::uint32_t pid = 0, tid = 0;
  std::size_t events = 0;
  std::uint64_t dropped = 0;
  std::uint64_t first_ns = 0, last_ns = 0;
  std::array<std::uint64_t, kEventKindCount> kind_counts{};
  RunningStats handler_ns;  ///< handler span durations
  RunningStats idle_ns;     ///< idle-poll span durations
  double busy_fraction = 0;  ///< handler+phase time / track extent
};

struct Summary {
  std::vector<TrackSummary> tracks;
  std::size_t total_events = 0;
  std::uint64_t total_dropped = 0;
};

inline Summary summarize(const FlatTrace& trace) {
  Summary s;
  for (const Track& tr : trace.tracks) {
    TrackSummary t;
    t.name = tr.name;
    t.pid = tr.pid;
    t.tid = tr.tid;
    t.events = tr.events.size();
    t.dropped = tr.dropped;
    if (!tr.events.empty()) {
      t.first_ns = tr.events.front().t_ns;
      t.last_ns = tr.events.front().t_ns;
      for (const Event& e : tr.events) {
        ++t.kind_counts[static_cast<unsigned>(e.kind)];
        if (e.t_ns < t.first_ns) t.first_ns = e.t_ns;
        if (e.t_ns > t.last_ns) t.last_ns = e.t_ns;
      }
    }
    std::uint64_t busy = 0;
    for (const Span& sp : extract_spans(tr, EventKind::kHandlerBegin)) {
      t.handler_ns.add(static_cast<double>(sp.duration_ns()));
      busy += sp.duration_ns();
    }
    for (const Span& sp : extract_spans(tr, EventKind::kPhaseBegin)) {
      busy += sp.duration_ns();
    }
    for (const Span& sp : extract_spans(tr, EventKind::kIdleBegin)) {
      t.idle_ns.add(static_cast<double>(sp.duration_ns()));
    }
    const std::uint64_t extent = t.last_ns - t.first_ns;
    t.busy_fraction =
        extent ? static_cast<double>(busy) / static_cast<double>(extent) : 0;
    s.total_events += t.events;
    s.total_dropped += t.dropped;
    s.tracks.push_back(std::move(t));
  }
  return s;
}

namespace detail {
inline void write_stats(JsonWriter& w, const RunningStats& st) {
  w.begin_object();
  w.kv("count", static_cast<std::uint64_t>(st.count()));
  w.kv("mean", st.mean());
  w.kv("min", st.min());
  w.kv("max", st.max());
  w.kv("stddev", st.stddev());
  w.end_object();
}
}  // namespace detail

/// JSON form of a summary, optionally bundling a counter-registry report
/// so one file carries both the timeline reduction and the counters.
inline void write_summary_json(std::ostream& os, const Summary& s,
                               const Report* counters = nullptr) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "bgq-trace-summary-v1");
  w.kv("total_events", static_cast<std::uint64_t>(s.total_events));
  w.kv("total_dropped", s.total_dropped);
  w.key("tracks");
  w.begin_array();
  for (const TrackSummary& t : s.tracks) {
    w.begin_object();
    w.kv("name", t.name);
    w.kv("pid", t.pid);
    w.kv("tid", t.tid);
    w.kv("events", static_cast<std::uint64_t>(t.events));
    w.kv("dropped", t.dropped);
    w.kv("extent_ns", t.last_ns - t.first_ns);
    w.kv("busy_fraction", t.busy_fraction);
    w.key("handler_ns");
    detail::write_stats(w, t.handler_ns);
    w.key("idle_ns");
    detail::write_stats(w, t.idle_ns);
    w.key("kinds");
    w.begin_object();
    for (unsigned k = 0; k < kEventKindCount; ++k) {
      if (t.kind_counts[k] == 0) continue;
      // Begin/end pairs share a label; fold them into one entry.
      const auto kind = static_cast<EventKind>(k);
      if (is_end(kind)) continue;
      std::uint64_t n = t.kind_counts[k];
      w.kv(kind_name(kind), n);
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  if (counters != nullptr) {
    w.key("counters");
    w.begin_object();
    for (const auto& [k, v] : counters->entries) w.kv(k, v);
    w.end_object();
  }
  w.end_object();
  os << '\n';
}

}  // namespace bgq::trace
