// Minimal strict JSON parser — the read side of the trace tooling
// (bgq-prof consumes bgq-trace-v1 files) and the validation parser the
// tests use against every exporter.  Parses into a tiny value tree; any
// syntax error throws, so "this byte stream is valid JSON" is an
// assertion by construction.  Not a general library: no \uXXXX decoding
// beyond pass-through, numbers land in a double (exact for the integers
// the exporters emit below 2^53 — trace ids are constructed to fit, and
// flat-trace timestamps are re-based to a run-relative origin).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace bgq::trace::json {

struct Value;
using ValuePtr = std::shared_ptr<Value>;

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<ValuePtr> arr;
  std::map<std::string, ValuePtr> obj;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  /// Object member or nullptr.
  const Value* get(const std::string& key) const {
    auto it = obj.find(key);
    return it == obj.end() ? nullptr : it->second.get();
  }
  /// Object member that must exist (throws otherwise).
  const Value& at(const std::string& key) const {
    const Value* v = get(key);
    if (v == nullptr) throw std::runtime_error("missing key: " + key);
    return *v;
  }
  /// Number member coerced to uint64 (throws when absent or non-numeric).
  std::uint64_t u64(const std::string& key) const {
    const Value& v = at(key);
    if (!v.is_number()) throw std::runtime_error("not a number: " + key);
    return static_cast<std::uint64_t>(v.num);
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  ValuePtr parse() {
    ValuePtr v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing bytes after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("JSON error at byte " + std::to_string(pos_) +
                             ": " + why);
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  ValuePtr value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': return word("true", [](Value& v) {
        v.type = Value::Type::kBool;
        v.b = true;
      });
      case 'f': return word("false", [](Value& v) {
        v.type = Value::Type::kBool;
        v.b = false;
      });
      case 'n':
        return word("null", [](Value& v) { v.type = Value::Type::kNull; });
      default: return number();
    }
  }

  template <typename F>
  ValuePtr word(const char* w, F fill) {
    for (const char* p = w; *p != '\0'; ++p) expect(*p);
    auto v = std::make_shared<Value>();
    fill(*v);
    return v;
  }

  std::string raw_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control char");
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("dangling escape");
        char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) fail("short \\u escape");
            for (int i = 0; i < 4; ++i) {
              char h = s_[pos_ + i];
              if (!((h >= '0' && h <= '9') || (h >= 'a' && h <= 'f') ||
                    (h >= 'A' && h <= 'F'))) {
                fail("bad \\u escape");
              }
            }
            out += "\\u";
            out.append(s_, pos_, 4);
            pos_ += 4;
            break;
          }
          default: fail("bad escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  ValuePtr string_value() {
    auto v = std::make_shared<Value>();
    v->type = Value::Type::kString;
    v->str = raw_string();
    return v;
  }

  ValuePtr number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    if (!consume('0')) {
      if (peek() < '1' || peek() > '9') fail("bad number");
      while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    }
    if (consume('.')) {
      if (peek() < '0' || peek() > '9') fail("bad fraction");
      while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (peek() < '0' || peek() > '9') fail("bad exponent");
      while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    }
    auto v = std::make_shared<Value>();
    v->type = Value::Type::kNumber;
    v->num = std::stod(s_.substr(start, pos_ - start));
    return v;
  }

  ValuePtr array() {
    expect('[');
    auto v = std::make_shared<Value>();
    v->type = Value::Type::kArray;
    skip_ws();
    if (consume(']')) return v;
    while (true) {
      v->arr.push_back(value());
      skip_ws();
      if (consume(']')) return v;
      expect(',');
    }
  }

  ValuePtr object() {
    expect('{');
    auto v = std::make_shared<Value>();
    v->type = Value::Type::kObject;
    skip_ws();
    if (consume('}')) return v;
    while (true) {
      skip_ws();
      std::string key = raw_string();
      skip_ws();
      expect(':');
      v->obj[key] = value();
      skip_ws();
      if (consume('}')) return v;
      expect(',');
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

inline ValuePtr parse(const std::string& text) { return Parser(text).parse(); }

}  // namespace bgq::trace::json
