// Minimal streaming JSON writer shared by the trace exporters and the
// bench `--json` reporter.  Handles comma placement and string escaping;
// the caller is responsible for well-formed nesting (begin/end pairing),
// which the exporters keep trivially structured.
#pragma once

#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string_view>
#include <vector>

namespace bgq::trace {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array() { open('['); }
  void end_array() { close(']'); }

  void key(std::string_view k) {
    comma();
    string(k);
    os_ << ':';
    expect_value_ = true;
  }

  void value(std::string_view v) {
    comma();
    string(v);
  }
  void value(const char* v) { value(std::string_view(v)); }
  void value(bool v) {
    comma();
    os_ << (v ? "true" : "false");
  }
  void value(double v) {
    comma();
    if (!std::isfinite(v)) {
      os_ << "null";  // JSON has no Inf/NaN
      return;
    }
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    os_ << buf;
  }
  void value(std::uint64_t v) {
    comma();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    os_ << buf;
  }
  void value(std::int64_t v) {
    comma();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRId64, v);
    os_ << buf;
  }
  void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
  void value(int v) { value(static_cast<std::int64_t>(v)); }

  /// key + scalar in one call.
  template <typename T>
  void kv(std::string_view k, const T& v) {
    key(k);
    value(v);
  }

 private:
  void open(char c) {
    comma();
    os_ << c;
    need_comma_.push_back(false);
  }
  void close(char c) {
    os_ << c;
    need_comma_.pop_back();
    if (!need_comma_.empty()) need_comma_.back() = true;
    expect_value_ = false;
  }
  void comma() {
    if (expect_value_) {
      expect_value_ = false;  // value right after key: no comma
      return;
    }
    if (!need_comma_.empty()) {
      if (need_comma_.back()) os_ << ',';
      need_comma_.back() = true;
    }
  }
  void string(std::string_view s) {
    os_ << '"';
    for (char c : s) {
      switch (c) {
        case '"': os_ << "\\\""; break;
        case '\\': os_ << "\\\\"; break;
        case '\n': os_ << "\\n"; break;
        case '\t': os_ << "\\t"; break;
        case '\r': os_ << "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            os_ << buf;
          } else {
            os_ << c;
          }
      }
    }
    os_ << '"';
  }

  std::ostream& os_;
  std::vector<bool> need_comma_;
  bool expect_value_ = false;
};

}  // namespace bgq::trace
