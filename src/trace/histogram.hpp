// Log-linear (HDR-style) latency histogram.
//
// Values bucket into 32 linear sub-buckets per power of two (kSubBits=5),
// which bounds relative quantile error at 1/32 ≈ 3% while covering the
// full uint64 range in a fixed 1920-cell array — no allocation after
// construction, no dependence on knowing the value range up front.  The
// first two powers of two are exact (values < 2*kSubCount land in their
// own cell), so short queue waits measured in single nanoseconds don't
// smear.
//
// Thread model mirrors the registry's Shard counters: record() is an
// owner-thread, non-atomic operation; cross-thread aggregation happens by
// merge()-ing per-thread instances at report time (exact at quiesce,
// advisory while threads are live).  merge() is cell-wise addition, so it
// is associative and order-independent — the property that lets the
// analyzer fold any number of PE-local histograms into one.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>

namespace bgq::trace {

class Histogram {
 public:
  static constexpr unsigned kSubBits = 5;                  // 32 sub-buckets
  static constexpr unsigned kSubCount = 1u << kSubBits;
  // Powers of two above the exact range: 64-kSubBits-1 halves, each split
  // into kSubCount cells, plus the 2*kSubCount exact low cells.
  static constexpr unsigned kBuckets =
      2 * kSubCount + (64 - kSubBits - 1) * kSubCount;

  /// Bucket index for a value.  Exact for v < 2*kSubCount; above that the
  /// top kSubBits bits below the leading bit pick the linear sub-bucket.
  static constexpr unsigned bucket_index(std::uint64_t v) noexcept {
    if (v < 2 * kSubCount) return static_cast<unsigned>(v);
    const unsigned msb = 63u - static_cast<unsigned>(countl_zero_(v));
    const unsigned sub =
        static_cast<unsigned>((v >> (msb - kSubBits)) & (kSubCount - 1));
    return (msb - kSubBits) * kSubCount + kSubCount + sub;
  }

  /// Largest value that maps into bucket `i` — the value percentile
  /// extraction reports, so quantiles are conservative (never under-read).
  static constexpr std::uint64_t bucket_high(unsigned i) noexcept {
    if (i < 2 * kSubCount) return i;
    const unsigned msb = (i - kSubCount) / kSubCount + kSubBits;
    const unsigned sub = i & (kSubCount - 1);
    const std::uint64_t base = std::uint64_t{1} << msb;
    const std::uint64_t step = base >> kSubBits;
    return base + std::uint64_t{sub + 1} * step - 1;
  }

  void record(std::uint64_t v, std::uint64_t weight = 1) noexcept {
    cells_[bucket_index(v)] += weight;
    count_ += weight;
    sum_ += v * weight;
    min_ = count_ == weight ? v : std::min(min_, v);
    max_ = std::max(max_, v);
  }

  void merge(const Histogram& o) noexcept {
    for (unsigned i = 0; i < kBuckets; ++i) cells_[i] += o.cells_[i];
    if (o.count_ == 0) return;
    min_ = count_ == 0 ? o.min_ : std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
    count_ += o.count_;
    sum_ += o.sum_;
  }

  void reset() noexcept {
    cells_.fill(0);
    count_ = 0;
    sum_ = 0;
    min_ = 0;
    max_ = 0;
  }

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t sum() const noexcept { return sum_; }
  std::uint64_t min() const noexcept { return count_ ? min_ : 0; }
  std::uint64_t max() const noexcept { return max_; }
  double mean() const noexcept {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }
  std::uint64_t cell(unsigned i) const noexcept {
    return i < kBuckets ? cells_[i] : 0;
  }

  /// Value at quantile q in [0,1]: the bucket_high of the first bucket
  /// whose cumulative count reaches ceil(q*count), clamped to the exact
  /// observed max so p100 never over-reads.
  std::uint64_t percentile(double q) const noexcept {
    if (count_ == 0) return 0;
    if (q <= 0.0) return min_;
    if (q >= 1.0) return max_;
    const std::uint64_t rank = static_cast<std::uint64_t>(
        q * static_cast<double>(count_) + 0.9999999);
    std::uint64_t cum = 0;
    for (unsigned i = 0; i < kBuckets; ++i) {
      cum += cells_[i];
      if (cum >= rank) return std::min(bucket_high(i), max_);
    }
    return max_;
  }

 private:
  // constexpr-friendly countl_zero for pre-C++20 <bit> portability.
  static constexpr int countl_zero_(std::uint64_t v) noexcept {
    int n = 0;
    for (std::uint64_t probe = std::uint64_t{1} << 63; probe; probe >>= 1) {
      if (v & probe) break;
      ++n;
    }
    return n;
  }

  std::array<std::uint64_t, kBuckets> cells_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace bgq::trace
