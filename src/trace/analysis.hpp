// Post-mortem analysis over a collected (or re-read) flat trace — the
// Projections-style half of the tracing subsystem.  Everything here is
// pure computation on a FlatTrace; the online side (rings, histograms,
// hop stamping) lives in session.hpp / registry.hpp and the machine layer.
//
// Four products, mirroring how the paper argues its optimizations:
//   * per-message latency decomposition — each causal-id lifecycle is
//     reassembled across tracks and split into named hop segments
//     (injection / network / reception / dispatch / queueing / sched /
//     handler) whose deltas telescope to exactly the end-to-end latency;
//   * Projections-style time profile — work/idle/overhead fractions per
//     track per time bin (the NAMD time-profile figure's shape), plus
//     per-phase coverage for application phase spans;
//   * critical-path extraction over the causal send→dispatch DAG — the
//     predecessor of a message is the handler execution that sent it;
//   * load-imbalance summary over per-worker busy time.
//
// Retransmit/backpressure detours (PR 3) are counted per lifecycle but
// deliberately kept out of the segment math: segments use each hop's
// *first* occurrence, so a duplicated network traversal shows up as
// `retransmits`/extra occurrence counts, never as a corrupted latency.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/event.hpp"
#include "trace/histogram.hpp"
#include "trace/json.hpp"
#include "trace/session.hpp"

namespace bgq::trace {

// ---------------------------------------------------------------------------
// Lifecycles
// ---------------------------------------------------------------------------

/// Canonical hop order of one message's journey.  A lifecycle may skip
/// hops (intra-process sends have no net hops; non-SMP dispatch runs the
/// handler inline with no queue pass) — segments are taken between
/// consecutive *present* hops, which keeps the telescoping-sum property.
enum Hop : unsigned {
  kHopSend = 0,
  kHopInject,
  kHopDeliver,
  kHopRecv,
  kHopEnqueue,
  kHopDequeue,
  kHopHandlerBegin,
  kHopHandlerEnd,
  kHopCount,
};

/// Segment names, indexed by the hop that *closes* the segment (Hop - 1):
/// the gap ending at kHopInject is "injection", at kHopDeliver "network",
/// and so on.
inline constexpr const char* kSegmentNames[kHopCount - 1] = {
    "injection",  // send    -> inject
    "network",    // inject  -> deliver
    "reception",  // deliver -> recv
    "dispatch",   // recv    -> enqueue
    "queueing",   // enqueue -> dequeue
    "sched",      // dequeue -> handler begin
    "handler",    // handler begin -> end
};

/// One message's reassembled journey.  Hop timestamps are the *first*
/// occurrence (earliest emit) of the hop's event kind for this cid; zero
/// means the hop never happened.
struct Lifecycle {
  std::uint64_t cid = 0;
  std::uint32_t origin_pe = 0;  ///< decoded from the cid's high half
  std::uint32_t send_arg = 0;   ///< destination PE (kMsgSend's arg)
  int send_track = -1;          ///< track index the send was emitted on
  std::uint64_t hops[kHopCount] = {};
  // Detour accounting (multiple occurrences beyond the first).
  std::uint32_t injects = 0;
  std::uint32_t delivers = 0;
  std::uint32_t retransmits = 0;
  std::uint32_t backlogs = 0;

  bool complete() const noexcept {
    return hops[kHopSend] != 0 && hops[kHopHandlerEnd] != 0;
  }
  std::uint64_t t_send() const noexcept { return hops[kHopSend]; }
  std::uint64_t t_done() const noexcept { return hops[kHopHandlerEnd]; }
};

/// Latency decomposition over every complete lifecycle.  `seg_sum_ns`
/// keeps exact signed sums (per-message deltas can't be negative on a
/// correct trace, but exactness is what the hop-sum check verifies), and
/// the histograms give the percentile view.
struct Decomposition {
  Histogram segments[kHopCount - 1];
  std::int64_t seg_sum_ns[kHopCount - 1] = {};
  Histogram end_to_end;
  std::int64_t end_to_end_sum_ns = 0;
  std::uint64_t messages = 0;       ///< complete lifecycles folded in
  std::uint64_t incomplete = 0;     ///< cids missing send or handler end
  std::uint64_t retransmitted = 0;  ///< lifecycles with >=1 retransmit
  std::uint64_t backlogged = 0;     ///< lifecycles that hit backpressure

  std::int64_t hop_sum_ns() const noexcept {
    std::int64_t s = 0;
    for (const std::int64_t v : seg_sum_ns) s += v;
    return s;
  }
};

/// Work/idle/overhead time profile: per track, `bins` equal slices of
/// [t0_ns, t1_ns), each holding the fraction of the slice spent in
/// handler/task spans (work), idle/park spans (idle), and neither
/// (overhead).  Phase spans additionally accumulate into per-phase-arg
/// machine-wide coverage (the mini-NAMD cutoff/PME profile).
struct TimeProfile {
  std::uint64_t t0_ns = 0;
  std::uint64_t t1_ns = 0;
  unsigned bins = 0;
  struct TrackProfile {
    std::string name;
    std::vector<double> work;      // fraction of bin, [0,1]
    std::vector<double> idle;      // fraction of bin, [0,1]
    std::vector<double> overhead;  // 1 - work - idle
  };
  std::vector<TrackProfile> tracks;
  /// Per phase-arg: mean number of tracks inside that phase per bin
  /// (machine-wide; > 1 when several PEs run the phase concurrently).
  std::map<std::uint32_t, std::vector<double>> phases;
  /// Per phase-arg: span count and total in-window time across tracks —
  /// what a "mean phase duration" or "phase share of busy time" needs
  /// without re-walking the trace.
  struct PhaseStat {
    std::uint64_t spans = 0;
    std::uint64_t total_ns = 0;
  };
  std::map<std::uint32_t, PhaseStat> phase_stats;
};

/// Critical path over the causal DAG: predecessor of message m is the
/// message whose handler execution emitted m's send.  The path backtracks
/// from the latest-finishing lifecycle to a root send (one with no
/// containing handler), in causal order root-first.
struct CriticalPath {
  struct Step {
    std::uint64_t cid = 0;
    std::uint32_t origin_pe = 0;
    std::uint32_t send_arg = 0;
    std::uint64_t t_send = 0;
    std::uint64_t t_done = 0;
  };
  std::vector<Step> steps;
  std::uint64_t span_ns = 0;  ///< t_done(last) - t_send(first)
};

/// Busy-time load balance across worker tracks (tracks that executed at
/// least one handler).
struct LoadImbalance {
  struct TrackLoad {
    std::string name;
    std::uint64_t busy_ns = 0;
    std::uint64_t handlers = 0;
  };
  std::vector<TrackLoad> tracks;
  std::uint64_t max_busy_ns = 0;
  std::uint64_t min_busy_ns = 0;
  double mean_busy_ns = 0;
  double stddev_busy_ns = 0;
  /// max/mean — 1.0 is perfectly balanced; the Projections metric.
  double imbalance = 0;
};

struct Analysis {
  std::vector<Lifecycle> lifecycles;  // sorted by t_send
  Decomposition decomp;
  TimeProfile profile;
  CriticalPath critical;
  LoadImbalance imbalance;
  std::uint64_t total_events = 0;
  std::uint64_t total_dropped = 0;
  std::uint64_t span_events = 0;  ///< begin/end events seen
};

namespace detail {

/// A closed handler span on one track, for predecessor lookup.
struct HandlerSpan {
  std::uint64_t t0 = 0;
  std::uint64_t t1 = 0;
  std::uint64_t cid = 0;
};

inline void take_first(std::uint64_t& slot, std::uint64_t t) noexcept {
  if (slot == 0 || t < slot) slot = t;
}

/// Accumulate [a,b) into `bins` ns-weighted (caller divides by bin width).
inline void accumulate(std::vector<double>& bins, std::uint64_t t0,
                       double inv_width, std::uint64_t a,
                       std::uint64_t b) noexcept {
  if (b <= a || bins.empty()) return;
  const double fa = static_cast<double>(a - t0) * inv_width;
  const double fb = static_cast<double>(b - t0) * inv_width;
  const auto nbins = bins.size();
  auto lo = static_cast<std::size_t>(std::max(0.0, fa));
  auto hi = static_cast<std::size_t>(std::max(0.0, fb));
  if (lo >= nbins) return;
  if (hi >= nbins) hi = nbins - 1;
  if (lo == hi) {
    bins[lo] += fb - fa;
    return;
  }
  bins[lo] += static_cast<double>(lo + 1) - fa;
  for (std::size_t i = lo + 1; i < hi; ++i) bins[i] += 1.0;
  bins[hi] += fb - static_cast<double>(hi);
}

}  // namespace detail

/// Run the whole analysis.  `profile_bins` sets the time-profile
/// resolution (64 matches the paper's NAMD figures).  A non-empty
/// [window_t0, window_t1) restricts the *time profile* (bins and phase
/// stats) to that measurement window — e.g. to cut warmup steps — while
/// lifecycles, critical path, and load balance still cover the whole
/// trace.
inline Analysis analyze(const FlatTrace& flat, unsigned profile_bins = 64,
                        std::uint64_t window_t0 = 0,
                        std::uint64_t window_t1 = 0) {
  Analysis out;
  out.total_events = flat.total_events();
  out.total_dropped = flat.total_dropped();

  // ---- pass 1: lifecycles, handler spans, trace extent ------------------
  std::unordered_map<std::uint64_t, Lifecycle> life;
  std::vector<std::vector<detail::HandlerSpan>> spans(flat.tracks.size());
  std::uint64_t t_min = UINT64_MAX, t_max = 0;

  for (std::size_t ti = 0; ti < flat.tracks.size(); ++ti) {
    const Track& tr = flat.tracks[ti];
    // Per-track stack of open handler spans (events are emit-ordered).
    std::vector<detail::HandlerSpan> open;
    for (const Event& e : tr.events) {
      t_min = std::min(t_min, e.t_ns);
      t_max = std::max(t_max, e.t_ns);
      if (is_begin(e.kind) || is_end(e.kind)) ++out.span_events;
      if (e.kind == EventKind::kHandlerBegin) {
        open.push_back({e.t_ns, 0, e.cid});
      } else if (e.kind == EventKind::kHandlerEnd) {
        if (!open.empty()) {
          detail::HandlerSpan s = open.back();
          open.pop_back();
          s.t1 = e.t_ns;
          spans[ti].push_back(s);
        }
      }
      if (e.cid == 0) continue;
      Lifecycle& lc = life[e.cid];
      lc.cid = e.cid;
      lc.origin_pe = static_cast<std::uint32_t>((e.cid >> 32) - 1);
      switch (e.kind) {
        case EventKind::kMsgSend:
          if (lc.hops[kHopSend] == 0 || e.t_ns < lc.hops[kHopSend]) {
            lc.send_arg = e.arg;
            lc.send_track = static_cast<int>(ti);
          }
          detail::take_first(lc.hops[kHopSend], e.t_ns);
          break;
        case EventKind::kNetInject:
          detail::take_first(lc.hops[kHopInject], e.t_ns);
          ++lc.injects;
          break;
        case EventKind::kNetDeliver:
          detail::take_first(lc.hops[kHopDeliver], e.t_ns);
          ++lc.delivers;
          break;
        case EventKind::kNetRetransmit: ++lc.retransmits; break;
        case EventKind::kNetBacklog: ++lc.backlogs; break;
        case EventKind::kMsgRecv:
          detail::take_first(lc.hops[kHopRecv], e.t_ns);
          break;
        case EventKind::kMsgEnqueue:
          detail::take_first(lc.hops[kHopEnqueue], e.t_ns);
          break;
        case EventKind::kMsgDequeue:
          detail::take_first(lc.hops[kHopDequeue], e.t_ns);
          break;
        case EventKind::kHandlerBegin:
          detail::take_first(lc.hops[kHopHandlerBegin], e.t_ns);
          break;
        case EventKind::kHandlerEnd:
          detail::take_first(lc.hops[kHopHandlerEnd], e.t_ns);
          break;
        default: break;
      }
    }
  }
  for (auto& per_track : spans) {
    std::sort(per_track.begin(), per_track.end(),
              [](const detail::HandlerSpan& a, const detail::HandlerSpan& b) {
                return a.t0 < b.t0;
              });
  }

  out.lifecycles.reserve(life.size());
  for (auto& [cid, lc] : life) out.lifecycles.push_back(lc);
  std::sort(out.lifecycles.begin(), out.lifecycles.end(),
            [](const Lifecycle& a, const Lifecycle& b) {
              return a.t_send() != b.t_send() ? a.t_send() < b.t_send()
                                              : a.cid < b.cid;
            });

  // ---- decomposition ----------------------------------------------------
  Decomposition& d = out.decomp;
  for (const Lifecycle& lc : out.lifecycles) {
    if (!lc.complete()) {
      ++d.incomplete;
      continue;
    }
    ++d.messages;
    if (lc.retransmits != 0) ++d.retransmitted;
    if (lc.backlogs != 0) ++d.backlogged;
    std::uint64_t prev = lc.hops[kHopSend];
    for (unsigned h = kHopInject; h < kHopCount; ++h) {
      const std::uint64_t t = lc.hops[h];
      if (t == 0) continue;  // hop absent: gap folds into the next segment
      const std::int64_t delta =
          static_cast<std::int64_t>(t) - static_cast<std::int64_t>(prev);
      d.seg_sum_ns[h - 1] += delta;
      d.segments[h - 1].record(delta > 0 ? static_cast<std::uint64_t>(delta)
                                         : 0);
      prev = t;
    }
    const std::int64_t e2e =
        static_cast<std::int64_t>(lc.t_done()) -
        static_cast<std::int64_t>(lc.t_send());
    d.end_to_end_sum_ns += e2e;
    d.end_to_end.record(e2e > 0 ? static_cast<std::uint64_t>(e2e) : 0);
  }

  // ---- time profile -----------------------------------------------------
  TimeProfile& tp = out.profile;
  if (t_min == UINT64_MAX) t_min = t_max = 0;
  if (window_t1 > window_t0) {
    tp.t0_ns = window_t0;
    tp.t1_ns = window_t1;
  } else {
    tp.t0_ns = t_min;
    tp.t1_ns = std::max(t_max, t_min + 1);
  }
  tp.bins = profile_bins == 0 ? 1 : profile_bins;
  const double inv_width =
      static_cast<double>(tp.bins) / static_cast<double>(tp.t1_ns - tp.t0_ns);
  // Clamp every span to the profiled window before binning (spans can
  // straddle the window when one was requested).
  const auto acc = [&](std::vector<double>& bins, std::uint64_t a,
                       std::uint64_t b) {
    a = std::max(a, tp.t0_ns);
    b = std::min(b, tp.t1_ns);
    detail::accumulate(bins, tp.t0_ns, inv_width, a, b);
  };
  for (const Track& tr : flat.tracks) {
    TimeProfile::TrackProfile prof;
    prof.name = tr.name;
    prof.work.assign(tp.bins, 0.0);
    prof.idle.assign(tp.bins, 0.0);
    prof.overhead.assign(tp.bins, 0.0);
    // Depth-counted union of work spans and of idle spans; phase spans
    // feed the machine-wide phase coverage as well as this track's work.
    unsigned work_depth = 0, idle_depth = 0;
    std::uint64_t work_open = 0, idle_open = 0;
    std::unordered_map<std::uint32_t, std::uint64_t> phase_open;
    bool any = false;
    std::uint64_t last_t = 0;
    for (const Event& e : tr.events) {
      any = true;
      last_t = e.t_ns;
      switch (e.kind) {
        case EventKind::kHandlerBegin:
        case EventKind::kTaskBegin:
        case EventKind::kPhaseBegin:
          if (work_depth++ == 0) work_open = e.t_ns;
          if (e.kind == EventKind::kPhaseBegin) phase_open[e.arg] = e.t_ns;
          break;
        case EventKind::kHandlerEnd:
        case EventKind::kTaskEnd:
        case EventKind::kPhaseEnd:
          if (work_depth != 0 && --work_depth == 0) {
            acc(prof.work, work_open, e.t_ns);
          }
          if (e.kind == EventKind::kPhaseEnd) {
            auto it = phase_open.find(e.arg);
            if (it != phase_open.end()) {
              auto& bins = tp.phases[e.arg];
              if (bins.empty()) bins.assign(tp.bins, 0.0);
              acc(bins, it->second, e.t_ns);
              const std::uint64_t a = std::max(it->second, tp.t0_ns);
              const std::uint64_t b = std::min(e.t_ns, tp.t1_ns);
              if (b > a) {
                auto& ps = tp.phase_stats[e.arg];
                ++ps.spans;
                ps.total_ns += b - a;
              }
              phase_open.erase(it);
            }
          }
          break;
        case EventKind::kIdleBegin:
        case EventKind::kParkBegin:
          if (idle_depth++ == 0) idle_open = e.t_ns;
          break;
        case EventKind::kIdleEnd:
        case EventKind::kParkEnd:
          if (idle_depth != 0 && --idle_depth == 0) {
            acc(prof.idle, idle_open, e.t_ns);
          }
          break;
        default: break;
      }
    }
    // Close truncated spans at the track's last timestamp.
    if (work_depth != 0) acc(prof.work, work_open, last_t);
    if (idle_depth != 0) acc(prof.idle, idle_open, last_t);
    if (!any) continue;
    for (unsigned b = 0; b < tp.bins; ++b) {
      prof.work[b] = std::min(prof.work[b], 1.0);
      prof.idle[b] = std::min(prof.idle[b], 1.0 - prof.work[b]);
      prof.overhead[b] = 1.0 - prof.work[b] - prof.idle[b];
    }
    tp.tracks.push_back(std::move(prof));
  }

  // ---- critical path ----------------------------------------------------
  // Backtrack from the latest-finishing lifecycle: the predecessor is the
  // innermost handler span containing the send on the sending track; that
  // span's cid names the message whose processing produced this one.
  {
    const Lifecycle* cur = nullptr;
    for (const Lifecycle& lc : out.lifecycles) {
      if (lc.complete() && (cur == nullptr || lc.t_done() > cur->t_done())) {
        cur = &lc;
      }
    }
    std::vector<CriticalPath::Step> rev;
    std::unordered_map<std::uint64_t, bool> visited;
    while (cur != nullptr && !visited[cur->cid]) {
      visited[cur->cid] = true;
      rev.push_back({cur->cid, cur->origin_pe, cur->send_arg, cur->t_send(),
                     cur->t_done()});
      const Lifecycle* pred = nullptr;
      if (cur->send_track >= 0 &&
          static_cast<std::size_t>(cur->send_track) < spans.size()) {
        const auto& ts = spans[cur->send_track];
        const std::uint64_t t = cur->t_send();
        // Innermost containing span = latest t0 among spans with
        // t0 <= t < t1; scanning back from the first t0 > t finds it
        // first.
        auto it = std::upper_bound(
            ts.begin(), ts.end(), t,
            [](std::uint64_t v, const detail::HandlerSpan& s) {
              return v < s.t0;
            });
        while (it != ts.begin()) {
          --it;
          if (it->t1 > t) {
            if (it->cid != 0) {
              auto lit = life.find(it->cid);
              if (lit != life.end() && lit->second.cid != cur->cid) {
                pred = &lit->second;
              }
            }
            break;
          }
        }
      }
      cur = pred;
    }
    CriticalPath& cp = out.critical;
    cp.steps.assign(rev.rbegin(), rev.rend());
    if (!cp.steps.empty()) {
      cp.span_ns = cp.steps.back().t_done - cp.steps.front().t_send;
    }
  }

  // ---- load imbalance ---------------------------------------------------
  {
    LoadImbalance& li = out.imbalance;
    for (std::size_t ti = 0; ti < flat.tracks.size(); ++ti) {
      if (spans[ti].empty()) continue;  // no handler ran: not a worker
      LoadImbalance::TrackLoad tl;
      tl.name = flat.tracks[ti].name;
      for (const detail::HandlerSpan& s : spans[ti]) {
        tl.busy_ns += s.t1 - s.t0;
        ++tl.handlers;
      }
      li.tracks.push_back(std::move(tl));
    }
    if (!li.tracks.empty()) {
      double sum = 0, sq = 0;
      li.min_busy_ns = UINT64_MAX;
      for (const auto& tl : li.tracks) {
        li.max_busy_ns = std::max(li.max_busy_ns, tl.busy_ns);
        li.min_busy_ns = std::min(li.min_busy_ns, tl.busy_ns);
        sum += static_cast<double>(tl.busy_ns);
      }
      li.mean_busy_ns = sum / static_cast<double>(li.tracks.size());
      for (const auto& tl : li.tracks) {
        const double d = static_cast<double>(tl.busy_ns) - li.mean_busy_ns;
        sq += d * d;
      }
      li.stddev_busy_ns =
          std::sqrt(sq / static_cast<double>(li.tracks.size()));
      li.imbalance = li.mean_busy_ns > 0
                         ? static_cast<double>(li.max_busy_ns) /
                               li.mean_busy_ns
                         : 0.0;
    } else {
      li.min_busy_ns = 0;
    }
  }

  return out;
}

// ---------------------------------------------------------------------------
// Exports
// ---------------------------------------------------------------------------

namespace detail {

inline void write_hist(JsonWriter& w, const Histogram& h) {
  w.begin_object();
  w.kv("count", h.count());
  w.kv("sum_ns", h.sum());
  w.kv("min_ns", h.min());
  w.kv("max_ns", h.max());
  w.kv("mean_ns", h.mean());
  w.kv("p50_ns", h.percentile(0.50));
  w.kv("p90_ns", h.percentile(0.90));
  w.kv("p99_ns", h.percentile(0.99));
  w.end_object();
}

}  // namespace detail

/// Emit the `bgq-prof-v1` JSON document.
inline void write_prof_json(std::ostream& os, const Analysis& a) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "bgq-prof-v1");
  w.kv("events", a.total_events);
  w.kv("dropped", a.total_dropped);
  w.kv("span_events", a.span_events);

  w.key("messages");
  w.begin_object();
  w.kv("traced", static_cast<std::uint64_t>(a.lifecycles.size()));
  w.kv("complete", a.decomp.messages);
  w.kv("incomplete", a.decomp.incomplete);
  w.kv("retransmitted", a.decomp.retransmitted);
  w.kv("backlogged", a.decomp.backlogged);
  w.end_object();

  w.key("decomposition");
  w.begin_object();
  w.key("end_to_end");
  detail::write_hist(w, a.decomp.end_to_end);
  w.kv("end_to_end_sum_ns", a.decomp.end_to_end_sum_ns);
  w.kv("hop_sum_ns", a.decomp.hop_sum_ns());
  w.key("segments");
  w.begin_object();
  for (unsigned s = 0; s < kHopCount - 1; ++s) {
    if (a.decomp.segments[s].count() == 0) continue;
    w.key(kSegmentNames[s]);
    detail::write_hist(w, a.decomp.segments[s]);
  }
  w.end_object();
  w.end_object();

  w.key("time_profile");
  w.begin_object();
  w.kv("t0_ns", a.profile.t0_ns);
  w.kv("span_ns", a.profile.t1_ns - a.profile.t0_ns);
  w.kv("bins", a.profile.bins);
  w.key("tracks");
  w.begin_array();
  for (const auto& tr : a.profile.tracks) {
    w.begin_object();
    w.kv("name", std::string_view(tr.name));
    w.key("work");
    w.begin_array();
    for (const double v : tr.work) w.value(v);
    w.end_array();
    w.key("idle");
    w.begin_array();
    for (const double v : tr.idle) w.value(v);
    w.end_array();
    w.key("overhead");
    w.begin_array();
    for (const double v : tr.overhead) w.value(v);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("phases");
  w.begin_array();
  for (const auto& [arg, bins] : a.profile.phases) {
    w.begin_object();
    w.kv("arg", arg);
    const auto ps = a.profile.phase_stats.find(arg);
    if (ps != a.profile.phase_stats.end()) {
      w.kv("spans", ps->second.spans);
      w.kv("total_ns", ps->second.total_ns);
    }
    w.key("coverage");
    w.begin_array();
    for (const double v : bins) w.value(v);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("critical_path");
  w.begin_object();
  w.kv("span_ns", a.critical.span_ns);
  w.kv("length", static_cast<std::uint64_t>(a.critical.steps.size()));
  w.key("steps");
  w.begin_array();
  for (const auto& s : a.critical.steps) {
    w.begin_object();
    w.kv("cid", s.cid);
    w.kv("origin_pe", s.origin_pe);
    w.kv("dst_pe", s.send_arg);
    w.kv("t_send_ns", s.t_send - a.profile.t0_ns);
    w.kv("t_done_ns", s.t_done - a.profile.t0_ns);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("load_imbalance");
  w.begin_object();
  w.kv("workers", static_cast<std::uint64_t>(a.imbalance.tracks.size()));
  w.kv("max_busy_ns", a.imbalance.max_busy_ns);
  w.kv("min_busy_ns", a.imbalance.min_busy_ns);
  w.kv("mean_busy_ns", a.imbalance.mean_busy_ns);
  w.kv("stddev_busy_ns", a.imbalance.stddev_busy_ns);
  w.kv("imbalance", a.imbalance.imbalance);
  w.key("tracks");
  w.begin_array();
  for (const auto& tl : a.imbalance.tracks) {
    w.begin_object();
    w.kv("name", std::string_view(tl.name));
    w.kv("busy_ns", tl.busy_ns);
    w.kv("handlers", tl.handlers);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.end_object();
  os << '\n';
}

/// Human-readable report (the text half of bgq-prof).
inline void write_prof_text(std::ostream& os, const Analysis& a) {
  auto us = [](double ns) { return ns / 1000.0; };
  os << "== bgq-prof ==\n";
  os << "events " << a.total_events << "  dropped " << a.total_dropped
     << "  traced msgs " << a.lifecycles.size() << " (complete "
     << a.decomp.messages << ", retransmitted " << a.decomp.retransmitted
     << ", backlogged " << a.decomp.backlogged << ")\n";

  os << "\n-- latency decomposition (us) --\n";
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-10s %10s %10s %10s %10s %10s\n",
                "segment", "count", "mean", "p50", "p99", "max");
  os << buf;
  for (unsigned s = 0; s < kHopCount - 1; ++s) {
    const Histogram& h = a.decomp.segments[s];
    if (h.count() == 0) continue;
    std::snprintf(buf, sizeof(buf),
                  "%-10s %10llu %10.2f %10.2f %10.2f %10.2f\n",
                  kSegmentNames[s],
                  static_cast<unsigned long long>(h.count()), us(h.mean()),
                  us(static_cast<double>(h.percentile(0.50))),
                  us(static_cast<double>(h.percentile(0.99))),
                  us(static_cast<double>(h.max())));
    os << buf;
  }
  const Histogram& e2e = a.decomp.end_to_end;
  std::snprintf(buf, sizeof(buf),
                "%-10s %10llu %10.2f %10.2f %10.2f %10.2f\n", "end-to-end",
                static_cast<unsigned long long>(e2e.count()), us(e2e.mean()),
                us(static_cast<double>(e2e.percentile(0.50))),
                us(static_cast<double>(e2e.percentile(0.99))),
                us(static_cast<double>(e2e.max())));
  os << buf;
  if (a.decomp.end_to_end_sum_ns > 0) {
    const double cover =
        100.0 * static_cast<double>(a.decomp.hop_sum_ns()) /
        static_cast<double>(a.decomp.end_to_end_sum_ns);
    std::snprintf(buf, sizeof(buf), "hop sum covers %.2f%% of end-to-end\n",
                  cover);
    os << buf;
  }

  os << "\n-- time profile (" << a.profile.bins << " bins over "
     << (a.profile.t1_ns - a.profile.t0_ns) / 1000 << " us; #=work .=idle "
     << "~=overhead) --\n";
  for (const auto& tr : a.profile.tracks) {
    std::snprintf(buf, sizeof(buf), "%-10s ", tr.name.c_str());
    os << buf;
    for (unsigned b = 0; b < a.profile.bins; ++b) {
      const double w0 = tr.work[b], i0 = tr.idle[b];
      os << (w0 >= 0.5 ? '#' : (i0 >= 0.5 ? '.' : '~'));
    }
    os << '\n';
  }

  os << "\n-- critical path --\n";
  os << "length " << a.critical.steps.size() << "  span "
     << a.critical.span_ns / 1000 << " us\n";
  // Long chains (a ping-pong's whole history is one path) are elided in
  // the text view; the JSON report always carries every step.
  constexpr std::size_t kHeadTail = 8;
  const std::size_t n = a.critical.steps.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (n > 2 * kHeadTail + 1 && i == kHeadTail) {
      std::snprintf(buf, sizeof(buf), "  ... %zu more steps ...\n",
                    n - 2 * kHeadTail);
      os << buf;
      i = n - kHeadTail - 1;
      continue;
    }
    const auto& s = a.critical.steps[i];
    std::snprintf(buf, sizeof(buf),
                  "  cid %llu  pe%u -> pe%u  send+%llu us  done+%llu us\n",
                  static_cast<unsigned long long>(s.cid), s.origin_pe,
                  s.send_arg,
                  static_cast<unsigned long long>(
                      (s.t_send - a.profile.t0_ns) / 1000),
                  static_cast<unsigned long long>(
                      (s.t_done - a.profile.t0_ns) / 1000));
    os << buf;
  }

  os << "\n-- load imbalance --\n";
  std::snprintf(buf, sizeof(buf),
                "workers %zu  mean %.1f us  max %.1f us  imbalance %.3f\n",
                a.imbalance.tracks.size(), us(a.imbalance.mean_busy_ns),
                us(static_cast<double>(a.imbalance.max_busy_ns)),
                a.imbalance.imbalance);
  os << buf;
}

}  // namespace bgq::trace
